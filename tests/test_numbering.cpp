#include <gtest/gtest.h>

#include <set>

#include "core/measure.hpp"
#include "dist/numbering.hpp"
#include "dist/partedmesh.hpp"
#include "meshgen/boxmesh.hpp"
#include "part/partition.hpp"

namespace {

using core::Ent;
using dist::PartId;

std::unique_ptr<dist::PartedMesh> parted(meshgen::Generated& gen, int nparts) {
  const auto assign = part::partition(*gen.mesh, nparts, part::Method::RCB);
  return dist::PartedMesh::distribute(
      *gen.mesh, gen.model.get(), assign,
      dist::PartMap(nparts, pcu::Machine::flat(nparts)));
}

class NumberDims : public ::testing::TestWithParam<int> {};

TEST_P(NumberDims, IdsAreContiguousUniqueAndShared) {
  const int d = GetParam();
  auto gen = meshgen::boxTets(3, 3, 3);
  auto pm = parted(gen, 4);
  const std::size_t total = dist::numberEntities(*pm, d);
  EXPECT_EQ(total, gen.mesh->count(d));

  // Owned ids across all parts are exactly 0..total-1.
  std::set<long> seen;
  for (PartId p = 0; p < pm->parts(); ++p) {
    const auto& part = pm->part(p);
    for (Ent e : part.mesh().entities(d)) {
      if (!part.isOwned(e)) continue;
      const long id = dist::globalId(*pm, p, e);
      EXPECT_TRUE(seen.insert(id).second) << "duplicate id " << id;
      EXPECT_GE(id, 0);
      EXPECT_LT(id, static_cast<long>(total));
    }
  }
  EXPECT_EQ(seen.size(), total);

  // Every copy of a shared entity agrees with its owner's id.
  for (PartId p = 0; p < pm->parts(); ++p) {
    const auto& part = pm->part(p);
    for (Ent e : part.mesh().entities(d)) {
      const dist::Remote* r = part.remote(e);
      if (r == nullptr) continue;
      const long mine = dist::globalId(*pm, p, e);
      for (const dist::Copy& c : r->copies)
        EXPECT_EQ(dist::globalId(*pm, c.part, c.ent), mine);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, NumberDims, ::testing::Values(0, 1, 2, 3));

TEST(Numbering, SurvivesMigration) {
  auto gen = meshgen::boxTets(3, 3, 3);
  auto pm = parted(gen, 3);
  dist::numberEntities(*pm, 0, "vtx_gid");
  // Snapshot: map coordinates -> id (coordinates identify vertices).
  auto idAt = [&](const dist::PartedMesh& m, PartId p, Ent v) {
    return dist::globalId(m, p, v, "vtx_gid");
  };
  std::map<std::tuple<double, double, double>, long> before;
  for (PartId p = 0; p < pm->parts(); ++p)
    for (Ent v : pm->part(p).mesh().entities(0)) {
      const auto x = pm->part(p).mesh().point(v);
      before[{x.x, x.y, x.z}] = idAt(*pm, p, v);
    }
  // Migrate a slab; ids ride along as tags.
  dist::MigrationPlan plan(3);
  for (Ent e : pm->part(0).elements())
    if (core::centroid(pm->part(0).mesh(), e).x > 0.3) plan[0][e] = 2;
  pm->migrate(plan);
  pm->verify();
  for (PartId p = 0; p < pm->parts(); ++p)
    for (Ent v : pm->part(p).mesh().entities(0)) {
      const auto x = pm->part(p).mesh().point(v);
      EXPECT_EQ(idAt(*pm, p, v), before.at({x.x, x.y, x.z}));
    }
}

TEST(Numbering, ThrowsOnUnknownName) {
  auto gen = meshgen::boxTets(2, 2, 2);
  auto pm = parted(gen, 2);
  const Ent v = *pm->part(0).mesh().entities(0).begin();
  EXPECT_THROW(dist::globalId(*pm, 0, v, "nope"), std::invalid_argument);
}

TEST(Numbering, RenumberOverwrites) {
  auto gen = meshgen::boxTets(2, 2, 2);
  auto pm = parted(gen, 2);
  dist::numberEntities(*pm, 3);
  // Move elements, then renumber: still contiguous and unique.
  dist::MigrationPlan plan(2);
  int i = 0;
  for (Ent e : pm->part(0).elements())
    if (i++ % 3 == 0) plan[0][e] = 1;
  pm->migrate(plan);
  const std::size_t total = dist::numberEntities(*pm, 3);
  std::set<long> seen;
  for (PartId p = 0; p < pm->parts(); ++p)
    for (Ent e : pm->part(p).elements())
      seen.insert(dist::globalId(*pm, p, e));
  EXPECT_EQ(seen.size(), total);
  EXPECT_EQ(*seen.begin(), 0L);
  EXPECT_EQ(*seen.rbegin(), static_cast<long>(total) - 1);
}

}  // namespace
