#include <gtest/gtest.h>

#include "adapt/collapse.hpp"
#include "adapt/quality.hpp"
#include "adapt/refine.hpp"
#include "adapt/split.hpp"
#include "adapt/transfer.hpp"
#include "core/measure.hpp"
#include "core/verify.hpp"
#include "field/field.hpp"
#include "meshgen/boxmesh.hpp"
#include "meshgen/workloads.hpp"

namespace {

using common::Vec3;
using core::Ent;
using core::Topo;

TEST(Quality, EquilateralIsOne) {
  core::Mesh m;
  // Regular tetrahedron.
  const double s = 1.0 / std::sqrt(2.0);
  const Ent v0 = m.createVertex({1, 0, -s});
  const Ent v1 = m.createVertex({-1, 0, -s});
  const Ent v2 = m.createVertex({0, 1, s});
  const Ent v3 = m.createVertex({0, -1, s});
  const Ent tet = m.buildElement(Topo::Tet, std::array{v0, v1, v2, v3});
  EXPECT_NEAR(adapt::quality(m, tet), 1.0, 1e-12);
  // Equilateral triangle.
  core::Mesh m2;
  const Ent a = m2.createVertex({0, 0, 0});
  const Ent b = m2.createVertex({1, 0, 0});
  const Ent c = m2.createVertex({0.5, std::sqrt(3.0) / 2.0, 0});
  const Ent tri = m2.buildElement(Topo::Tri, std::array{a, b, c});
  EXPECT_NEAR(adapt::quality(m2, tri), 1.0, 1e-12);
}

TEST(Quality, SliverScoresLow) {
  core::Mesh m;
  const Ent v0 = m.createVertex({0, 0, 0});
  const Ent v1 = m.createVertex({1, 0, 0});
  const Ent v2 = m.createVertex({0, 1, 0});
  const Ent v3 = m.createVertex({0.33, 0.33, 1e-4});  // nearly coplanar
  const Ent tet = m.buildElement(Topo::Tet, std::array{v0, v1, v2, v3});
  EXPECT_LT(adapt::quality(m, tet), 0.01);
}

TEST(Quality, MeshStats) {
  auto gen = meshgen::boxTets(3, 3, 3);
  const auto s = adapt::meshQuality(*gen.mesh);
  EXPECT_GT(s.min, 0.3);  // Kuhn tets are decent
  EXPECT_GT(s.mean, s.min);
  EXPECT_LE(s.mean, 1.0);
  EXPECT_EQ(s.below_03, 0u);
}

TEST(Smooth, ImprovesJiggledMesh) {
  auto gen = meshgen::boxTets(5, 5, 5);
  common::Rng rng(3);
  meshgen::jiggle(*gen.mesh, 0.25, rng);
  const auto before = adapt::meshQuality(*gen.mesh);
  const auto stats = adapt::smooth(*gen.mesh, []{ adapt::SmoothOptions o; o.passes = 5; return o; }());
  const auto after = adapt::meshQuality(*gen.mesh);
  EXPECT_GT(stats.moved, 0u);
  EXPECT_GE(after.min, before.min);
  EXPECT_GT(after.mean, before.mean);
  core::verify(*gen.mesh, {.check_volumes = true});
  // Volume exactly preserved (only interior vertices move).
  double vol = 0.0;
  for (Ent e : gen.mesh->entities(3)) vol += core::measure(*gen.mesh, e);
  EXPECT_NEAR(vol, 1.0, 1e-9);
}

TEST(Smooth, NeverWorsensWorstQuality) {
  auto gen = meshgen::vessel({.circumferential = 4, .axial = 8});
  common::Rng rng(8);
  meshgen::jiggle(*gen.mesh, 0.2, rng);
  const double worst_before = adapt::meshQuality(*gen.mesh).min;
  adapt::smooth(*gen.mesh, []{ adapt::SmoothOptions o; o.passes = 3; return o; }());
  EXPECT_GE(adapt::meshQuality(*gen.mesh).min, worst_before - 1e-12);
}

TEST(Transfer, LinearFieldExactThroughRefinement) {
  auto gen = meshgen::boxTets(2, 2, 2);
  auto& m = *gen.mesh;
  field::Field temp(m, "T", field::ValueType::Scalar,
                    field::Location::Vertex);
  auto lin = [](const Vec3& x) { return 3.0 * x.x - x.y + 2.0 * x.z + 1.0; };
  temp.assign(lin);
  adapt::LinearTransfer transfer;
  adapt::refine(m, adapt::UniformSize(0.3),
                {.max_passes = 6, .transfer = &transfer});
  core::verify(m);
  // Every vertex (old and new) carries the exact linear value.
  for (Ent v : m.entities(0)) {
    ASSERT_TRUE(temp.hasValue(v));
    EXPECT_NEAR(temp.getScalar(v), lin(m.point(v)), 1e-9);
  }
}

TEST(Transfer, VectorFieldInterpolated) {
  auto gen = meshgen::boxTets(1, 1, 1);
  auto& m = *gen.mesh;
  field::Field vel(m, "v", field::ValueType::Vector,
                   field::Location::Vertex);
  for (Ent v : m.entities(0)) {
    const Vec3 x = m.point(v);
    vel.setVector(v, {x.x, 2.0 * x.y, -x.z});
  }
  adapt::LinearTransfer transfer;
  const Ent mid = adapt::splitEdge(m, *m.entities(1).begin(), &transfer);
  ASSERT_TRUE(vel.hasValue(mid));
  const Vec3 x = m.point(mid);
  const Vec3 got = vel.getVector(mid);
  EXPECT_NEAR(got.x, x.x, 1e-12);
  EXPECT_NEAR(got.y, 2.0 * x.y, 1e-12);
  EXPECT_NEAR(got.z, -x.z, 1e-12);
}

TEST(Transfer, FilterRestrictsToNamedFields) {
  auto gen = meshgen::boxTets(1, 1, 1);
  auto& m = *gen.mesh;
  field::Field a(m, "a", field::ValueType::Scalar, field::Location::Vertex);
  field::Field b(m, "b", field::ValueType::Scalar, field::Location::Vertex);
  a.fillScalar(1.0);
  b.fillScalar(2.0);
  adapt::LinearTransfer only_a({"a"});
  const Ent mid = adapt::splitEdge(m, *m.entities(1).begin(), &only_a);
  EXPECT_TRUE(a.hasValue(mid));
  EXPECT_FALSE(b.hasValue(mid));
}

TEST(Transfer, SurvivesCoarsening) {
  auto gen = meshgen::boxTets(2, 2, 2);
  auto& m = *gen.mesh;
  field::Field temp(m, "T", field::ValueType::Scalar,
                    field::Location::Vertex);
  auto lin = [](const Vec3& x) { return x.x + x.y + x.z; };
  temp.assign(lin);
  adapt::LinearTransfer transfer;
  adapt::refine(m, adapt::UniformSize(0.3),
                {.max_passes = 6, .transfer = &transfer});
  adapt::coarsen(m, adapt::UniformSize(1.0),
                 {.ratio = 0.9, .max_passes = 6, .transfer = &transfer});
  core::verify(m);
  for (Ent v : m.entities(0)) {
    ASSERT_TRUE(temp.hasValue(v));
    EXPECT_NEAR(temp.getScalar(v), lin(m.point(v)), 1e-9);
  }
}

}  // namespace
