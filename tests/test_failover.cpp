/// \file test_failover.cpp
/// \brief Tests for rank-failure tolerance: heartbeat detection, group
/// shrink, and live part evacuation.
///
/// Contract under test (ISSUE: rank-failure tolerance): a run completes
/// even when ranks die or hang mid-operation. At the pcu layer a kill=/
/// hang= fault condemns one rank; its peers detect the silence within the
/// heartbeat deadline, every collective raises a structured kRankFailed
/// naming the dead rank, and the survivors shrink() onto a dense N-1
/// group that is fully operational. At the dist layer the aborted
/// operation rolls back, the transport poisons the dead rank's parts, and
/// failover::evacuate rebuilds them from the buddy journal (or checkpoint)
/// bit-identically — zero lost elements — before parma repairs the
/// post-adoption imbalance.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "dist/checkpoint.hpp"
#include "dist/failover.hpp"
#include "dist/partedmesh.hpp"
#include "meshgen/boxmesh.hpp"
#include "parma/balance.hpp"
#include "part/partition.hpp"
#include "pcu/arq.hpp"
#include "pcu/error.hpp"
#include "pcu/failure.hpp"
#include "pcu/faults.hpp"
#include "pcu/phased.hpp"
#include "pcu/runtime.hpp"
#include "pcu/stats.hpp"
#include "pcu/trace.hpp"

namespace {

using core::Ent;
using dist::PartId;
using pcu::Error;
using pcu::ErrorCode;
namespace failure = pcu::failure;
namespace failover = dist::failover;
namespace faults = pcu::faults;
namespace arq = pcu::arq;

/// Installs a plan for the scope of one test body; always clears on exit so
/// a failing assertion cannot leak fault state into later tests.
struct PlanGuard {
  explicit PlanGuard(const faults::FaultPlan& p) { faults::setPlan(p); }
  ~PlanGuard() { faults::clearPlan(); }
  PlanGuard(const PlanGuard&) = delete;
  PlanGuard& operator=(const PlanGuard&) = delete;
};

/// Turns reliable delivery on for one test body (fresh stats), off on exit.
struct ReliableGuard {
  ReliableGuard() {
    arq::resetStats();
    arq::setReliable(true);
  }
  ~ReliableGuard() { arq::setReliable(false); }
  ReliableGuard(const ReliableGuard&) = delete;
  ReliableGuard& operator=(const ReliableGuard&) = delete;
};

/// --- PUMI_FAULTS kill/hang parsing (strict) ------------------------------

TEST(RankFaultSpec, ParsesKillHangAndDeadline) {
  const auto p = faults::parsePlan("seed=7,kill=3@2,hang=1@0,deadline=25");
  EXPECT_EQ(p.kill.rank, 3);
  EXPECT_EQ(p.kill.phase, 2);
  EXPECT_TRUE(p.kill.scheduled());
  EXPECT_EQ(p.hang.rank, 1);
  EXPECT_EQ(p.hang.phase, 0);
  EXPECT_TRUE(p.hang.scheduled());
  EXPECT_EQ(p.deadline_ms, 25);
  EXPECT_TRUE(p.injects()) << "a scheduled rank fault must arm the framing";
}

TEST(RankFaultSpec, DefaultDeadlineAppliesWhileRankFaultScheduled) {
  // No deadline= token: the detector still needs one, so installing a plan
  // with a scheduled kill supplies the documented default.
  PlanGuard g(faults::parsePlan("kill=2@1"));
  EXPECT_TRUE(faults::hasRankFault());
  EXPECT_EQ(faults::deadlineMs(), faults::kDefaultRankFaultDeadlineMs);
}

TEST(RankFaultSpec, NoRankFaultLeavesDetectorDisarmed) {
  PlanGuard g(faults::parsePlan("drop=0.01"));
  EXPECT_FALSE(faults::hasRankFault());
  EXPECT_EQ(faults::deadlineMs(), 0) << "historical plans must not arm "
                                        "failure detection";
}

TEST(RankFaultSpec, MalformedTokensAreRejectedByName) {
  for (const char* bad :
       {"kill=3", "kill=@2", "kill=3@", "kill=x@2", "kill=3@y", "kill=-1@2",
        "kill=3@2x", "kill=3@@2", "hang=", "hang=1:2", "deadline=abc",
        "deadline=-5", "deadline="}) {
    try {
      faults::parsePlan(bad);
      FAIL() << "accepted malformed PUMI_FAULTS token: " << bad;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kValidation) << bad;
      const std::string spec(bad);
      const std::string key = spec.substr(0, spec.find('='));
      EXPECT_NE(e.detail().find(key), std::string::npos)
          << "error must name the bad token: " << bad << " -> " << e.what();
    }
  }
}

/// --- pcu: detection, revocation, shrink ----------------------------------

/// One ring phased exchange on `c`; returns the payload received.
int ringStep(pcu::Comm& c) {
  std::vector<std::pair<int, pcu::OutBuffer>> out;
  pcu::OutBuffer b;
  b.pack<int>(c.rank());
  out.emplace_back((c.rank() + 1) % c.size(), std::move(b));
  auto msgs = pcu::phasedExchange(c, std::move(out));
  EXPECT_EQ(msgs.size(), 1u);
  return msgs.empty() ? -1 : msgs.front().body.unpack<int>();
}

/// Run `nranks` ranks under a plan condemning `victim`; every survivor must
/// observe kRankFailed naming the victim, shrink to a dense (nranks-1)
/// group, and complete one more exchange there. Returns detector stats.
failure::Stats runCondemned(int nranks, const faults::FaultPlan& p,
                            int victim) {
  failure::resetStats();
  PlanGuard g(p);
  std::atomic<int> survivors{0};
  std::atomic<int> killed{0};
  std::atomic<int> named{-1};
  pcu::run(nranks, [&](pcu::Comm& c) {
    try {
      for (int round = 0; round < 50; ++round) ringStep(c);
      ADD_FAILURE() << "rank " << c.rank() << " never observed the failure";
    } catch (const failure::RankKilled&) {
      // The condemned rank's "process death": it simply disappears.
      killed += 1;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kRankFailed) << e.what();
      named = e.peer();
      // ULFM continuation: agree on the survivor set, renumber densely,
      // and prove the shrunken group still communicates.
      pcu::Comm sub = c.shrink();
      EXPECT_EQ(sub.size(), nranks - 1);
      ASSERT_GE(sub.rank(), 0);
      ASSERT_LT(sub.rank(), sub.size());
      EXPECT_EQ(ringStep(sub), (sub.rank() + sub.size() - 1) % sub.size());
      survivors += 1;
    }
  });
  EXPECT_EQ(killed.load(), 1) << "exactly one rank must die";
  EXPECT_EQ(survivors.load(), nranks - 1);
  EXPECT_EQ(named.load(), victim) << "the error must name the dead rank";
  return failure::stats();
}

TEST(PcuFailover, KilledRankIsDetectedSurvivorsShrinkAndContinue) {
  faults::FaultPlan p;
  p.seed = 3;
  p.kill = {2, 1};
  p.deadline_ms = 40;
  const auto st = runCondemned(8, p, 2);
  EXPECT_GE(st.heartbeats, 1u);
  EXPECT_GE(st.suspicions, 1u);
  EXPECT_GE(st.shrinks, 1u);
  // Detection latency: the victim was declared dead only after the full
  // silence deadline, and promptly after it (slack covers scheduling under
  // sanitizers, not a second detection mechanism).
  EXPECT_GE(st.last_detect_us, 40 * 1000);
  EXPECT_LE(st.last_detect_us, 40 * 1000 * 100);
}

TEST(PcuFailover, HungRankIsDetectedWithinDeadline) {
  faults::FaultPlan p;
  p.seed = 5;
  p.hang = {5, 1};
  p.deadline_ms = 40;
  const auto st = runCondemned(8, p, 5);
  EXPECT_GE(st.suspicions, 1u);
  EXPECT_GE(st.shrinks, 1u);
  EXPECT_GE(st.last_detect_us, 40 * 1000);
  EXPECT_LE(st.last_detect_us, 40 * 1000 * 100);
}

TEST(PcuFailover, DetectorCountersReachTheTraceReport) {
  // Satellite: fd:* counters must flow through pcu::trace into the
  // per-phase report (and therefore the Chrome export, which serializes
  // the same counter events).
  pcu::trace::clear();
  pcu::trace::setEnabled(true);
  faults::FaultPlan p;
  p.seed = 11;
  p.kill = {1, 1};
  p.deadline_ms = 30;
  runCondemned(4, p, 1);
  const auto report = pcu::buildTraceReport();
  pcu::trace::setEnabled(false);
  pcu::trace::clear();
  std::set<std::string> names;
  for (const auto& c : report.counters) names.insert(c.name);
  EXPECT_TRUE(names.count("fd:suspicions")) << "suspicions counter missing";
  EXPECT_TRUE(names.count("fd:suspicion_latency_us"));
  EXPECT_TRUE(names.count("fd:heartbeats"));
  EXPECT_TRUE(names.count("fd:shrink_events"));
  for (const auto& c : report.counters) {
    if (c.name == "fd:suspicion_latency_us") {
      EXPECT_GE(c.last, 30 * 1000) << "latency counter must carry the "
                                      "measured silence span";
    }
  }
}

/// --- dist: the evacuation matrix -----------------------------------------

std::unique_ptr<dist::PartedMesh> makeMesh(const meshgen::Generated& gen,
                                           int nparts) {
  const auto assign = part::partition(*gen.mesh, nparts, part::Method::RCB);
  return dist::PartedMesh::distribute(
      *gen.mesh, gen.model.get(), assign,
      dist::PartMap(nparts, pcu::Machine::flat(nparts)));
}

dist::MigrationPlan randomPlan(dist::PartedMesh& pm, common::Rng& rng,
                               double move_prob) {
  dist::MigrationPlan plan(static_cast<std::size_t>(pm.parts()));
  for (PartId p = 0; p < pm.parts(); ++p)
    for (Ent e : pm.part(p).elements()) {
      if (rng.uniform() >= move_prob) continue;
      const auto dest = static_cast<PartId>(
          rng.below(static_cast<std::uint64_t>(pm.parts())));
      if (dest != p) plan[static_cast<std::size_t>(p)][e] = dest;
    }
  return plan;
}

/// Geometric digest of one element: hash of its sorted vertex coordinates.
/// Stable across handle rebuilds and part moves, so the multiset over the
/// whole mesh is the "no element lost or duplicated" witness.
std::uint64_t elementDigest(const core::Mesh& m, Ent e) {
  std::vector<std::array<double, 3>> pts;
  for (Ent v : m.verts(e)) {
    const auto x = m.point(v);
    pts.push_back({x.x, x.y, x.z});
  }
  std::sort(pts.begin(), pts.end());
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const auto& pt : pts)
    for (double d : pt) {
      std::uint64_t bits = 0;
      std::memcpy(&bits, &d, sizeof bits);
      h = (h ^ bits) * 0x100000001b3ull;
    }
  return h;
}

std::multiset<std::uint64_t> elementDigests(const dist::PartedMesh& pm) {
  std::multiset<std::uint64_t> out;
  for (PartId p = 0; p < pm.parts(); ++p) {
    const core::Mesh& m = pm.part(p).mesh();
    for (Ent e : pm.part(p).elements()) out.insert(elementDigest(m, e));
  }
  return out;
}

struct FailoverCase {
  bool hang;      ///< kill vs hang
  bool coalesce;  ///< transport coalescing on/off
  bool reliable;  ///< PUMI_RELIABLE-style ARQ on/off
  bool three_d;   ///< tets vs tris
};

class FailoverMatrix : public ::testing::TestWithParam<FailoverCase> {};

TEST_P(FailoverMatrix, DeadRankIsEvacuatedWithZeroElementLoss) {
  const auto [hang, coalesce, reliable, three_d] = GetParam();
  failure::resetStats();
  auto gen = three_d ? meshgen::boxTets(3, 3, 3) : meshgen::boxTris(5, 5);
  const int nparts = 8;  // flat(8) machine: rank r hosts exactly part r
  auto pm = makeMesh(gen, nparts);
  pm->network().setCoalescing(coalesce);
  std::optional<ReliableGuard> rel;
  if (reliable) rel.emplace();

  const std::uint64_t fp = pm->fingerprint();
  const auto covered = elementDigests(*pm);

  // Quiescent point: the journal records exactly the state a transactional
  // rollback will land the survivors on.
  failover::BuddyJournal journal;
  journal.record(*pm);
  EXPECT_GT(journal.bytesStreamed(), 0u);

  const int victim = 3;
  faults::FaultPlan p;
  p.seed = 29;
  if (hang)
    p.hang = {victim, 2};
  else
    p.kill = {victim, 2};
  p.deadline_ms = 30;
  PlanGuard g(p);

  common::Rng rng(7 + static_cast<std::uint64_t>(three_d));
  try {
    pm->migrate(randomPlan(*pm, rng, 0.2));
    FAIL() << "migration crossing a dead rank committed";
  } catch (const Error& e) {
    ASSERT_EQ(e.code(), ErrorCode::kRankFailed) << e.what();
    EXPECT_EQ(e.peer(), victim) << "the error must name the dead rank";
    EXPECT_EQ(e.tag(), dist::kNetChannelTag);
  }

  // Rolled back bit-exactly, but the transport is poisoned: nothing may
  // communicate while a part is still pinned to the dead rank.
  EXPECT_EQ(pm->fingerprint(), fp);
  ASSERT_EQ(pm->network().deadRanks(), std::vector<int>{victim});
  try {
    pm->ghostLayers(1);
    FAIL() << "operation on a poisoned part map committed";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kRankFailed) << e.what();
  }

  const auto rep = failover::evacuate(*pm, journal);
  EXPECT_NO_THROW(pm->verify());
  EXPECT_EQ(pm->fingerprint(), fp)
      << "evacuation must reproduce the pre-fault state exactly";
  EXPECT_EQ(elementDigests(*pm), covered) << "zero lost elements";
  ASSERT_EQ(rep.ranks_lost, std::vector<int>{victim});
  ASSERT_EQ(rep.parts_evacuated, std::vector<PartId>{victim});
  EXPECT_GT(rep.entities_adopted, 0u);
  EXPECT_GT(rep.journal_bytes_replayed, 0u);
  // The dead rank's part now lives on its buddy (the next surviving rank).
  EXPECT_EQ(pm->network().partMap().rankOf(victim), victim + 1);
  if (hang) {
    EXPECT_GE(rep.detect_ms, 30.0)
        << "a hang is only detectable by waiting out the deadline";
  }

  // Fully operational on the survivors: a real migration commits clean.
  common::Rng rng2(99);
  EXPECT_NO_THROW(pm->migrate(randomPlan(*pm, rng2, 0.15)));
  EXPECT_NO_THROW(pm->verify());
  EXPECT_EQ(elementDigests(*pm), covered);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FailoverMatrix, ::testing::ValuesIn([] {
      std::vector<FailoverCase> cases;
      for (bool hang : {false, true})
        for (bool coalesce : {true, false})
          for (bool reliable : {false, true})
            for (bool three_d : {false, true})
              cases.push_back({hang, coalesce, reliable, three_d});
      return cases;
    }()),
    [](const ::testing::TestParamInfo<FailoverCase>& info) {
      return std::string(info.param.hang ? "hang" : "kill") +
             (info.param.coalesce ? "_coalesced" : "_uncoalesced") +
             (info.param.reliable ? "_reliable" : "_plain") +
             (info.param.three_d ? "_tets" : "_tris");
    });

/// --- the buddy journal ----------------------------------------------------

TEST(BuddyJournal, DedupsUnchangedParts) {
  auto gen = meshgen::boxTris(4, 4);
  auto pm = makeMesh(gen, 4);
  failover::BuddyJournal j;
  j.record(*pm);
  const auto bytes1 = j.bytesStreamed();
  EXPECT_GT(bytes1, 0u);
  for (PartId p = 0; p < 4; ++p) EXPECT_TRUE(j.hasPart(p));

  j.record(*pm);  // nothing changed: every part dedups, zero traffic
  EXPECT_EQ(j.bytesStreamed(), bytes1);
  EXPECT_EQ(j.recordsSkipped(), 4u);

  common::Rng rng(2);
  pm->migrate(randomPlan(*pm, rng, 0.3));
  j.record(*pm);  // the migration touched parts: they stream again
  EXPECT_GT(j.bytesStreamed(), bytes1);
  EXPECT_EQ(j.records(), 3u);
}

TEST(Failover, FallsBackToCheckpointWhenJournalLacksThePart) {
  namespace fs = std::filesystem;
  const fs::path dirp =
      fs::temp_directory_path() / "pumi_test_failover" / "fallback";
  fs::remove_all(dirp);
  const std::string dir = dirp.string();

  auto gen = meshgen::boxTris(5, 5);
  auto pm = makeMesh(gen, 6);
  const std::uint64_t fp = pm->fingerprint();
  dist::checkpoint(*pm, dir);

  faults::FaultPlan p;
  p.seed = 5;
  p.kill = {2, 1};
  p.deadline_ms = 25;
  PlanGuard g(p);
  common::Rng rng(9);
  try {
    pm->migrate(randomPlan(*pm, rng, 0.25));
    FAIL() << "migration crossing a dead rank committed";
  } catch (const Error& e) {
    ASSERT_EQ(e.code(), ErrorCode::kRankFailed) << e.what();
  }

  failover::BuddyJournal empty;
  // No replica anywhere: the evacuation must refuse, naming the part, and
  // leave the (rolled-back) mesh untouched.
  try {
    failover::evacuate(*pm, empty);
    FAIL() << "evacuation invented a replica";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kValidation);
    EXPECT_NE(e.detail().find("part 2"), std::string::npos) << e.what();
  }
  EXPECT_EQ(pm->fingerprint(), fp);

  // With the checkpoint as fallback the same evacuation completes.
  const auto rep = failover::evacuate(*pm, empty, dir);
  EXPECT_EQ(pm->fingerprint(), fp);
  EXPECT_NO_THROW(pm->verify());
  EXPECT_EQ(rep.parts_evacuated, std::vector<PartId>{2});
}

/// --- checkpoint restore onto fewer ranks ---------------------------------

TEST(CheckpointShrink, RestoresOntoFewerRanksDeterministically) {
  namespace fs = std::filesystem;
  const fs::path dirp =
      fs::temp_directory_path() / "pumi_test_failover" / "shrink";
  fs::remove_all(dirp);
  const std::string dir = dirp.string();

  auto gen = meshgen::boxTets(3, 3, 3);
  auto pm = makeMesh(gen, 8);
  common::Rng rng(3);
  pm->migrate(randomPlan(*pm, rng, 0.2));
  const std::uint64_t fp = pm->fingerprint();
  dist::checkpoint(*pm, dir);

  // A checkpoint written by 8 ranks restores onto the 5 survivors: every
  // part keeps its identity, orphans land at p % 5 — the deterministic
  // assignment every survivor computes without communicating.
  auto restored = dist::restore(dir, gen.model.get(), 5);
  EXPECT_EQ(restored->parts(), 8);
  EXPECT_EQ(restored->fingerprint(), fp);
  EXPECT_NO_THROW(restored->verify());
  const auto& map = restored->network().partMap();
  EXPECT_EQ(map.machine().totalCores(), 5);
  for (PartId p = 0; p < restored->parts(); ++p)
    EXPECT_EQ(map.rankOf(p), p % 5) << "part " << p;

  // Operational, not just structurally equal.
  common::Rng rng2(4);
  EXPECT_NO_THROW(restored->migrate(randomPlan(*restored, rng2, 0.2)));
  EXPECT_NO_THROW(restored->verify());

  EXPECT_THROW(dist::restore(dir, gen.model.get(), 0), Error);
}

/// --- the acceptance scenario ---------------------------------------------

TEST(FailoverAcceptance, SixteenPartsKillMidMigrateThenHangMidBalance) {
  failure::resetStats();
  auto gen = meshgen::boxTets(4, 4, 4);
  auto pm = makeMesh(gen, 16);
  const auto covered = elementDigests(*pm);
  failover::BuddyJournal journal;

  // Incident 1: rank 5 dies mid-migrate.
  journal.record(*pm);
  {
    faults::FaultPlan p;
    p.seed = 101;
    p.kill = {5, 2};
    p.deadline_ms = 30;
    PlanGuard g(p);
    common::Rng rng(55);
    try {
      pm->migrate(randomPlan(*pm, rng, 0.15));
      FAIL() << "migration crossing the killed rank committed";
    } catch (const Error& e) {
      ASSERT_EQ(e.code(), ErrorCode::kRankFailed) << e.what();
      EXPECT_EQ(e.peer(), 5);
    }
    const auto rep = failover::evacuate(*pm, journal);
    EXPECT_EQ(rep.ranks_lost, std::vector<int>{5});
    EXPECT_EQ(rep.parts_evacuated, std::vector<PartId>{5});
  }
  EXPECT_NO_THROW(pm->verify());
  EXPECT_EQ(elementDigests(*pm), covered);

  // The run continues on the 15 survivors: a real migration commits.
  {
    common::Rng rng(56);
    EXPECT_NO_THROW(pm->migrate(randomPlan(*pm, rng, 0.1)));
  }

  // Incident 2: rank 11 goes silent mid-balance.
  journal.record(*pm);
  const auto covered2 = elementDigests(*pm);
  failover::EvacuationReport rep2;
  {
    faults::FaultPlan p;
    p.seed = 102;
    p.hang = {11, 1};
    p.deadline_ms = 30;
    PlanGuard g(p);
    parma::BalanceOptions opts;
    opts.max_rounds = 2;
    try {
      parma::balance(*pm, "Rgn", opts);
      FAIL() << "balance crossing the hung rank completed";
    } catch (const Error& e) {
      ASSERT_EQ(e.code(), ErrorCode::kRankFailed) << e.what();
      EXPECT_EQ(e.peer(), 11)
          << "balance must propagate the rank failure, not absorb it";
    }
    rep2 = failover::evacuate(*pm, journal);
  }
  EXPECT_NO_THROW(pm->verify());
  EXPECT_EQ(elementDigests(*pm), covered2) << "zero lost elements";
  // Both incidents are on the books; only rank 11's parts needed moving.
  EXPECT_EQ(rep2.ranks_lost, (std::vector<int>{5, 11}));
  EXPECT_EQ(rep2.parts_evacuated, std::vector<PartId>{11});
  EXPECT_GE(rep2.detect_ms, 30.0)
      << "hang detection pays the configured deadline";
  EXPECT_LE(rep2.detect_ms, 30.0 * 100);

  // Post-evacuation repair: parma rebalances and reports the incident.
  const auto report = parma::balanceAfterEvacuation(*pm, "Rgn", rep2);
  EXPECT_EQ(report.ranks_lost, 2);
  EXPECT_EQ(report.entities_adopted, rep2.entities_adopted);
  EXPECT_GE(report.rounds, 1);
  EXPECT_NO_THROW(pm->verify());
  EXPECT_EQ(elementDigests(*pm), covered2)
      << "balancing moves elements, never loses them";
}

}  // namespace
