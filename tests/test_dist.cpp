#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.hpp"
#include "core/measure.hpp"
#include "core/verify.hpp"
#include "dist/partedmesh.hpp"
#include "dist/ptnmodel.hpp"
#include "meshgen/boxmesh.hpp"

namespace {

using common::Vec3;
using core::Ent;
using dist::PartId;

/// Stripe elements across parts by iteration order.
std::vector<PartId> stripe(const core::Mesh& serial, int nparts) {
  const std::size_t n = serial.count(serial.dim());
  std::vector<PartId> dest(n);
  for (std::size_t i = 0; i < n; ++i)
    dest[i] = static_cast<PartId>(i * static_cast<std::size_t>(nparts) / n);
  return dest;
}

/// Geometric striping along x (produces contiguous chunks).
std::vector<PartId> stripeByX(const core::Mesh& serial, int nparts) {
  const int dim = serial.dim();
  std::vector<std::pair<double, std::size_t>> order;
  std::size_t i = 0;
  for (Ent e : serial.entities(dim))
    order.emplace_back(core::centroid(serial, e).x, i++);
  std::sort(order.begin(), order.end());
  std::vector<PartId> dest(order.size());
  for (std::size_t k = 0; k < order.size(); ++k)
    dest[order[k].second] =
        static_cast<PartId>(k * static_cast<std::size_t>(nparts) / order.size());
  return dest;
}

dist::PartMap flatMap(int nparts) {
  return dist::PartMap(nparts, pcu::Machine::flat(nparts));
}

class DistributeParts : public ::testing::TestWithParam<int> {};

TEST_P(DistributeParts, GlobalCountsMatchSerial) {
  const int nparts = GetParam();
  auto gen = meshgen::boxTets(4, 4, 4);
  auto pm = dist::PartedMesh::distribute(
      *gen.mesh, gen.model.get(), stripeByX(*gen.mesh, nparts),
      flatMap(nparts));
  pm->verify();
  for (int d = 0; d <= 3; ++d)
    EXPECT_EQ(pm->globalCount(d), gen.mesh->count(d)) << "dim " << d;
  // Every part's local mesh is structurally valid.
  std::size_t total_elems = 0;
  for (PartId p = 0; p < pm->parts(); ++p) {
    core::verify(pm->part(p).mesh(), {.check_volumes = true});
    total_elems += pm->part(p).elementCount();
  }
  EXPECT_EQ(total_elems, gen.mesh->count(3));
}

TEST_P(DistributeParts, SharedEntitiesHaveSymmetricCopies) {
  const int nparts = GetParam();
  auto gen = meshgen::boxTets(3, 3, 3);
  auto pm = dist::PartedMesh::distribute(
      *gen.mesh, gen.model.get(), stripeByX(*gen.mesh, nparts),
      flatMap(nparts));
  std::size_t shared_seen = 0;
  for (PartId p = 0; p < pm->parts(); ++p) {
    const auto& part = pm->part(p);
    for (int d = 0; d < 3; ++d) {
      for (Ent e : part.mesh().entities(d)) {
        if (const dist::Remote* r = part.remote(e)) {
          ++shared_seen;
          EXPECT_GE(r->owner, 0);
          // Owner is the smallest residence part (MinPartId rule).
          const auto res = part.residence(e);
          EXPECT_EQ(r->owner, res.front());
        }
      }
    }
  }
  if (nparts > 1) {
    EXPECT_GT(shared_seen, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(PartCounts, DistributeParts,
                         ::testing::Values(1, 2, 3, 5, 8, 16));

TEST(Distribute, RejectsBadInput) {
  auto gen = meshgen::boxTets(2, 2, 2);
  EXPECT_THROW(dist::PartedMesh::distribute(*gen.mesh, gen.model.get(),
                                            {0, 1, 2},  // wrong length
                                            flatMap(3)),
               std::invalid_argument);
  auto dest = stripe(*gen.mesh, 2);
  dest[0] = 7;  // out of range
  EXPECT_THROW(dist::PartedMesh::distribute(*gen.mesh, gen.model.get(), dest,
                                            flatMap(2)),
               std::invalid_argument);
}

TEST(PaperFigure3, ThreePartMeshOnTwoNodes) {
  // The paper's running example: a 2D mesh on three parts over two nodes.
  auto gen = meshgen::boxTris(4, 4);
  auto& serial = *gen.mesh;
  // Assign left/mid/right thirds of triangles to parts 0/1/2.
  std::vector<PartId> dest;
  for (Ent e : serial.entities(2)) {
    const double x = core::centroid(serial, e).x;
    dest.push_back(x < 1.0 / 3 ? 0 : (x < 2.0 / 3 ? 1 : 2));
  }
  // Two nodes: parts 0,1 on node i; part 2 on node j (2 ranks/node).
  dist::PartMap map(3, pcu::Machine(2, 2));
  auto pm = dist::PartedMesh::distribute(serial, gen.model.get(), dest, map);
  pm->verify();
  EXPECT_EQ(map.nodeOf(0), map.nodeOf(1));
  EXPECT_NE(map.nodeOf(0), map.nodeOf(2));

  dist::PtnModel ptn(*pm);
  // Partition faces: one per part interior.
  EXPECT_EQ(ptn.count(2), 3u);
  // Partition edges: interfaces 0|1 and 1|2 (parts 0 and 2 do not touch).
  EXPECT_EQ(ptn.count(1), 2u);
  EXPECT_NE(ptn.find({0, 1}), nullptr);
  EXPECT_NE(ptn.find({1, 2}), nullptr);
  EXPECT_EQ(ptn.find({0, 2}), nullptr);
  // Partition classification of a shared vertex: residence {0,1} -> the
  // partition edge; owner is part 0.
  const auto* pe01 = ptn.find({0, 1});
  EXPECT_EQ(pe01->dim, 1);
  EXPECT_EQ(pe01->owner, 0);
}

TEST(PtnModel, TripleJunctionIsPartitionVertex) {
  // Quadrant partition of a 2D mesh: the center vertex is shared by >= 3
  // parts and must classify on a dim-0 partition entity (paper Fig. 4).
  auto gen = meshgen::boxTris(4, 4);
  auto& serial = *gen.mesh;
  std::vector<PartId> dest;
  for (Ent e : serial.entities(2)) {
    const Vec3 c = core::centroid(serial, e);
    dest.push_back((c.x < 0.5 ? 0 : 1) + (c.y < 0.5 ? 0 : 2));
  }
  auto pm = dist::PartedMesh::distribute(serial, gen.model.get(), dest,
                                         flatMap(4));
  pm->verify();
  dist::PtnModel ptn(*pm);
  const auto* center = ptn.find({0, 1, 2, 3});
  ASSERT_NE(center, nullptr);
  EXPECT_EQ(center->dim, 0);
  EXPECT_EQ(ptn.count(2), 4u);
  // Four pairwise interfaces: 0|1, 0|2, 1|3, 2|3.
  EXPECT_EQ(ptn.count(1), 4u);
}

TEST(Migrate, MoveOneElement) {
  auto gen = meshgen::boxTets(2, 2, 2);
  const std::size_t serial_counts[4] = {gen.mesh->count(0), gen.mesh->count(1),
                                        gen.mesh->count(2), gen.mesh->count(3)};
  auto pm = dist::PartedMesh::distribute(*gen.mesh, gen.model.get(),
                                         stripeByX(*gen.mesh, 2), flatMap(2));
  const std::size_t before0 = pm->part(0).elementCount();
  dist::MigrationPlan plan(2);
  const Ent victim = pm->part(0).elements().front();
  plan[0][victim] = 1;
  pm->migrate(plan);
  pm->verify();
  EXPECT_EQ(pm->part(0).elementCount(), before0 - 1);
  for (int d = 0; d <= 3; ++d)
    EXPECT_EQ(pm->globalCount(d), serial_counts[d]) << "dim " << d;
  for (PartId p = 0; p < 2; ++p) core::verify(pm->part(p).mesh());
}

TEST(Migrate, EmptyPlanIsNoOp) {
  auto gen = meshgen::boxTets(2, 2, 2);
  auto pm = dist::PartedMesh::distribute(*gen.mesh, gen.model.get(),
                                         stripeByX(*gen.mesh, 3), flatMap(3));
  const std::size_t e0 = pm->part(0).elementCount();
  pm->migrate(dist::MigrationPlan(3));
  pm->verify();
  EXPECT_EQ(pm->part(0).elementCount(), e0);
}

TEST(Migrate, EvacuateWholePart) {
  auto gen = meshgen::boxTets(3, 3, 3);
  auto pm = dist::PartedMesh::distribute(*gen.mesh, gen.model.get(),
                                         stripeByX(*gen.mesh, 3), flatMap(3));
  dist::MigrationPlan plan(3);
  for (Ent e : pm->part(1).elements()) plan[1][e] = 2;
  pm->migrate(plan);
  pm->verify();
  EXPECT_EQ(pm->part(1).elementCount(), 0u);
  EXPECT_EQ(pm->part(1).mesh().count(0), 0u);  // closure fully released
  for (int d = 0; d <= 3; ++d)
    EXPECT_EQ(pm->globalCount(d), gen.mesh->count(d));
}

TEST(Migrate, RoundTripRestoresCounts) {
  auto gen = meshgen::boxTets(3, 3, 3);
  auto pm = dist::PartedMesh::distribute(*gen.mesh, gen.model.get(),
                                         stripeByX(*gen.mesh, 2), flatMap(2));
  const std::size_t e0 = pm->part(0).elementCount();
  const std::size_t e1 = pm->part(1).elementCount();
  // Move a slab of part 0's elements to part 1 and back.
  std::vector<Ent> moved;
  dist::MigrationPlan plan(2);
  for (Ent e : pm->part(0).elements())
    if (core::centroid(pm->part(0).mesh(), e).x > 0.25) plan[0][e] = 1;
  const std::size_t nmoved = plan[0].size();
  ASSERT_GT(nmoved, 0u);
  pm->migrate(plan);
  pm->verify();
  EXPECT_EQ(pm->part(0).elementCount(), e0 - nmoved);
  EXPECT_EQ(pm->part(1).elementCount(), e1 + nmoved);
  // Move everything with x < 0.5 back to part 0.
  dist::MigrationPlan back(2);
  for (Ent e : pm->part(1).elements())
    if (core::centroid(pm->part(1).mesh(), e).x < 0.5) back[1][e] = 0;
  pm->migrate(back);
  pm->verify();
  for (int d = 0; d <= 3; ++d)
    EXPECT_EQ(pm->globalCount(d), gen.mesh->count(d));
}

TEST(Migrate, TagsTravelWithElements) {
  auto gen = meshgen::boxTets(2, 2, 2);
  auto pm = dist::PartedMesh::distribute(*gen.mesh, gen.model.get(),
                                         stripeByX(*gen.mesh, 2), flatMap(2));
  auto& m0 = pm->part(0).mesh();
  auto* w = m0.tags().create<double>("weight");
  const Ent victim = pm->part(0).elements().front();
  m0.tags().setScalar<double>(w, victim, 42.5);
  const std::size_t before1 = pm->part(1).elementCount();
  dist::MigrationPlan plan(2);
  plan[0][victim] = 1;
  pm->migrate(plan);
  // Find the tagged element on part 1.
  auto& m1 = pm->part(1).mesh();
  auto* w1 = m1.tags().find("weight");
  ASSERT_NE(w1, nullptr);
  std::size_t tagged = 0;
  for (Ent e : pm->part(1).elements())
    if (w1->has(e)) {
      ++tagged;
      EXPECT_EQ(m1.tags().getScalar<double>(w1, e), 42.5);
    }
  EXPECT_EQ(tagged, 1u);
  EXPECT_EQ(pm->part(1).elementCount(), before1 + 1);
}

TEST(Migrate, RandomChurnPreservesInvariants) {
  auto gen = meshgen::boxTets(3, 3, 3);
  const int nparts = 4;
  auto pm = dist::PartedMesh::distribute(
      *gen.mesh, gen.model.get(), stripeByX(*gen.mesh, nparts),
      flatMap(nparts));
  common::Rng rng(2026);
  for (int round = 0; round < 6; ++round) {
    dist::MigrationPlan plan(nparts);
    for (PartId p = 0; p < nparts; ++p) {
      for (Ent e : pm->part(p).elements()) {
        if (rng.uniform() < 0.15)
          plan[p][e] = static_cast<PartId>(rng.below(nparts));
      }
    }
    pm->migrate(plan);
    pm->verify();
    for (int d = 0; d <= 3; ++d)
      EXPECT_EQ(pm->globalCount(d), gen.mesh->count(d))
          << "round " << round << " dim " << d;
  }
  for (PartId p = 0; p < nparts; ++p)
    core::verify(pm->part(p).mesh(), {.check_volumes = true});
}

TEST(Migrate, IntoFreshlyAddedPart) {
  auto gen = meshgen::boxTets(2, 2, 2);
  auto pm = dist::PartedMesh::distribute(*gen.mesh, gen.model.get(),
                                         stripeByX(*gen.mesh, 2), flatMap(2));
  const PartId fresh = pm->addPart();
  EXPECT_EQ(fresh, 2);
  dist::MigrationPlan plan(3);
  int i = 0;
  for (Ent e : pm->part(0).elements())
    if (i++ % 2 == 0) plan[0][e] = fresh;
  pm->migrate(plan);
  pm->verify();
  EXPECT_GT(pm->part(fresh).elementCount(), 0u);
  for (int d = 0; d <= 3; ++d)
    EXPECT_EQ(pm->globalCount(d), gen.mesh->count(d));
}

TEST(Migrate, TwoDimensionalMesh) {
  auto gen = meshgen::boxTris(6, 6);
  auto pm = dist::PartedMesh::distribute(*gen.mesh, gen.model.get(),
                                         stripeByX(*gen.mesh, 3), flatMap(3));
  pm->verify();
  dist::MigrationPlan plan(3);
  for (Ent e : pm->part(0).elements())
    if (core::centroid(pm->part(0).mesh(), e).y > 0.5) plan[0][e] = 2;
  ASSERT_FALSE(plan[0].empty());
  pm->migrate(plan);
  pm->verify();
  for (int d = 0; d <= 2; ++d)
    EXPECT_EQ(pm->globalCount(d), gen.mesh->count(d));
}

TEST(Neighbors, DetectedPerDimension) {
  auto gen = meshgen::boxTets(4, 1, 1);
  // Parts along x: 0 | 1 | 2 | 3; only consecutive parts are face-neighbors.
  auto pm = dist::PartedMesh::distribute(*gen.mesh, gen.model.get(),
                                         stripeByX(*gen.mesh, 4), flatMap(4));
  pm->verify();
  const auto n1 = pm->part(1).neighborParts(2);
  EXPECT_EQ(n1, (std::vector<PartId>{0, 2}));
  const auto n0 = pm->part(0).neighborParts(0);
  EXPECT_TRUE(std::find(n0.begin(), n0.end(), 1) != n0.end());
  // Part 0 and part 3 share nothing.
  const auto n0v = pm->part(0).neighborParts(0);
  EXPECT_TRUE(std::find(n0v.begin(), n0v.end(), 3) == n0v.end());
}

TEST(Ghost, OneLayerCreatesReadOnlyCopies) {
  auto gen = meshgen::boxTets(3, 3, 3);
  auto pm = dist::PartedMesh::distribute(*gen.mesh, gen.model.get(),
                                         stripeByX(*gen.mesh, 3), flatMap(3));
  const std::size_t local_before = pm->part(1).mesh().count(3);
  pm->ghostLayers(1);
  pm->verify();
  EXPECT_GT(pm->part(1).ghostCount(), 0u);
  // Ghosts do not change owned counts.
  for (int d = 0; d <= 3; ++d)
    EXPECT_EQ(pm->globalCount(d), gen.mesh->count(d));
  // elementCount excludes ghosts; raw mesh count includes them.
  EXPECT_EQ(pm->part(1).elementCount(), local_before);
  EXPECT_GT(pm->part(1).mesh().count(3), local_before);
  for (PartId p = 0; p < 3; ++p) core::verify(pm->part(p).mesh());
}

TEST(Ghost, UnghostRestoresLocalCounts) {
  auto gen = meshgen::boxTets(3, 3, 3);
  auto pm = dist::PartedMesh::distribute(*gen.mesh, gen.model.get(),
                                         stripeByX(*gen.mesh, 4), flatMap(4));
  std::vector<std::size_t> counts;
  for (PartId p = 0; p < 4; ++p)
    for (int d = 0; d <= 3; ++d) counts.push_back(pm->part(p).mesh().count(d));
  pm->ghostLayers(1);
  pm->unghost();
  pm->verify();
  std::size_t i = 0;
  for (PartId p = 0; p < 4; ++p)
    for (int d = 0; d <= 3; ++d)
      EXPECT_EQ(pm->part(p).mesh().count(d), counts[i++])
          << "part " << p << " dim " << d;
}

TEST(Ghost, TwoLayersStrictlyLarger) {
  auto gen = meshgen::boxTets(6, 2, 2);
  auto pm = dist::PartedMesh::distribute(*gen.mesh, gen.model.get(),
                                         stripeByX(*gen.mesh, 3), flatMap(3));
  pm->ghostLayers(1);
  const std::size_t one = pm->part(0).ghostCount();
  pm->unghost();
  pm->ghostLayers(2);
  pm->verify();
  const std::size_t two = pm->part(0).ghostCount();
  EXPECT_GT(two, one);
  pm->unghost();
  pm->verify();
}

TEST(Ghost, TagsSyncToGhosts) {
  auto gen = meshgen::boxTets(3, 3, 3);
  auto pm = dist::PartedMesh::distribute(*gen.mesh, gen.model.get(),
                                         stripeByX(*gen.mesh, 2), flatMap(2));
  // Tag every element on its home part before ghosting.
  for (PartId p = 0; p < 2; ++p) {
    auto& m = pm->part(p).mesh();
    auto* t = m.tags().create<int>("home");
    for (Ent e : pm->part(p).elements()) m.tags().setScalar<int>(t, e, p);
  }
  pm->ghostLayers(1);
  // Ghost copies carried the tag at creation.
  for (PartId p = 0; p < 2; ++p) {
    const auto& part = pm->part(p);
    auto* t = part.mesh().tags().find("home");
    ASSERT_NE(t, nullptr);
    for (Ent e : part.mesh().entities(3)) {
      if (!part.isGhost(e)) continue;
      EXPECT_EQ(part.mesh().tags().getScalar<int>(t, e),
                part.ghostSource(e).part);
    }
  }
  //

  // Owner updates a value; syncGhostTags pushes it to ghosts.
  auto& m0 = pm->part(0).mesh();
  auto* t0 = m0.tags().find("home");
  for (Ent e : pm->part(0).elements()) m0.tags().setScalar<int>(t0, e, 100);
  pm->syncGhostTags();
  const auto& part1 = pm->part(1);
  auto* t1 = part1.mesh().tags().find("home");
  for (Ent e : part1.mesh().entities(3)) {
    if (!part1.isGhost(e)) continue;
    if (part1.ghostSource(e).part == 0) {
      EXPECT_EQ(part1.mesh().tags().getScalar<int>(t1, e), 100);
    }
  }
}

TEST(Ghost, MigrateRefusesWhileGhosted) {
  auto gen = meshgen::boxTets(2, 2, 2);
  auto pm = dist::PartedMesh::distribute(*gen.mesh, gen.model.get(),
                                         stripeByX(*gen.mesh, 2), flatMap(2));
  pm->ghostLayers(1);
  dist::MigrationPlan plan(2);
  plan[0][pm->part(0).elements().front()] = 1;
  EXPECT_THROW(pm->migrate(plan), std::logic_error);
  pm->unghost();
  EXPECT_NO_THROW(pm->migrate(plan));
  pm->verify();
}

TEST(Network, TwoLevelTrafficAccounting) {
  auto gen = meshgen::boxTets(4, 2, 2);
  // 4 parts on 2 nodes x 2 cores: parts {0,1} on node 0, {2,3} on node 1.
  dist::PartMap map(4, pcu::Machine(2, 2));
  auto pm = dist::PartedMesh::distribute(*gen.mesh, gen.model.get(),
                                         stripeByX(*gen.mesh, 4), map);
  pm->network().resetStats();
  pm->ghostLayers(1);
  const auto& s = pm->network().stats();
  EXPECT_GT(s.on_node_messages, 0u);
  EXPECT_GT(s.off_node_messages, 0u);
  EXPECT_EQ(s.messages_sent, s.on_node_messages + s.off_node_messages);
  EXPECT_EQ(s.bytes_sent, s.on_node_bytes + s.off_node_bytes);
}

TEST(OwnerRule, LeastLoadedPicksLighterPart) {
  auto gen = meshgen::boxTets(4, 2, 2);
  // Unbalanced distribution: part 0 heavy, part 1 light.
  std::vector<PartId> dest(gen.mesh->count(3), 0);
  for (std::size_t i = dest.size() - 12; i < dest.size(); ++i) dest[i] = 1;
  auto pm = dist::PartedMesh::distribute(*gen.mesh, gen.model.get(), dest,
                                         flatMap(2), dist::OwnerRule::LeastLoaded);
  // distribute() uses MinPartId; migrations re-choose owners for entities
  // they touch. Move a slab so most of the part boundary is touched.
  dist::MigrationPlan plan(2);
  int i = 0;
  for (Ent e : pm->part(0).elements())
    if (i++ % 2 == 0) plan[0][e] = 1;
  pm->migrate(plan);
  pm->verify();
  // Touched shared entities are now owned by the lighter part (part 1),
  // per LeastLoaded; untouched ones keep their previous owner.
  std::size_t owned_by_1 = 0, shared_total = 0;
  for (int d = 0; d < 3; ++d) {
    for (Ent e : pm->part(1).mesh().entities(d)) {
      if (const dist::Remote* r = pm->part(1).remote(e)) {
        ++shared_total;
        if (r->owner == 1) ++owned_by_1;
      }
    }
  }
  ASSERT_GT(shared_total, 0u);
  EXPECT_GT(owned_by_1, shared_total / 2);
}

}  // namespace
