/// \file test_layout.cpp
/// \brief The data-layout overhaul must be semantics-free.
///
/// Three gates:
///  1. The CSR adjacency view (adjacentSpan/adjacentInto) answers every
///     (dim -> dim) interrogation identically to the allocating adjacent(),
///     and is invalidated by topology changes but not by coordinate moves.
///  2. RCM reordering actually improves vertex-graph bandwidth.
///  3. Locality reordering on vs off (PUMI_NO_REORDER) leaves the full
///     distributed pipeline — distribute, random migration, ghosting,
///     unghosting, diffusive balancing — bit-identical in both the
///     geometric element-digest multiset and the canonical fingerprint,
///     across the 20-seed chaos matrix.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/order.hpp"
#include "dist/digest.hpp"
#include "dist/partedmesh.hpp"
#include "meshgen/boxmesh.hpp"
#include "parma/improve.hpp"
#include "part/partition.hpp"

namespace {

using core::Ent;
using dist::PartId;

std::vector<Ent> sorted(std::vector<Ent> es) {
  std::sort(es.begin(), es.end());
  return es;
}

// --- gate 1: CSR view vs allocating accessor -----------------------------

void checkAllPairs(const core::Mesh& mesh, int dim) {
  for (int from = 0; from <= dim; ++from) {
    for (int to = 0; to <= dim; ++to) {
      if (from == to) continue;
      core::AdjVec adj;
      for (Ent e : mesh.all(from)) {
        const auto legacy = sorted(mesh.adjacent(e, to));
        const auto span = mesh.adjacentSpan(e, to);
        ASSERT_EQ(legacy, sorted({span.begin(), span.end()}))
            << "span mismatch at (" << from << "->" << to << ")";
        const int n = mesh.adjacentInto(e, to, adj);
        ASSERT_EQ(static_cast<std::size_t>(n), legacy.size());
        ASSERT_EQ(legacy, sorted({adj.begin(), adj.begin() + n}))
            << "into mismatch at (" << from << "->" << to << ")";
      }
    }
  }
}

TEST(CsrAdjacency, MatchesAllocatingAccessorAcrossAllDimPairs3D) {
  auto gen = meshgen::boxTets(4, 4, 4);
  checkAllPairs(*gen.mesh, 3);
}

TEST(CsrAdjacency, MatchesAllocatingAccessorAcrossAllDimPairs2D) {
  auto gen = meshgen::boxTris(6, 6);
  checkAllPairs(*gen.mesh, 2);
}

TEST(CsrAdjacency, GeometryMovesKeepTheViewTopologyChangesRebuildIt) {
  auto gen = meshgen::boxTets(3, 3, 3);
  auto& mesh = *gen.mesh;
  const Ent v = mesh.all(0).front();
  const auto before = sorted(mesh.adjacent(v, 3));
  const std::uint64_t version = mesh.topoVersion();

  // Coordinate-only change: version stays, cached rows stay valid (this is
  // what lets smoothing sweeps hold a span across setPoint calls).
  mesh.setPoint(v, mesh.point(v) + common::Vec3{1e-3, 0, 0});
  EXPECT_EQ(mesh.topoVersion(), version);
  const auto span = mesh.adjacentSpan(v, 3);
  EXPECT_EQ(before, sorted({span.begin(), span.end()}));

  // Topology change: version bumps and the lazily rebuilt view agrees with
  // the allocating accessor again.
  mesh.destroy(mesh.all(3).back());
  EXPECT_GT(mesh.topoVersion(), version);
  for (Ent u : mesh.all(0)) {
    const auto legacy = sorted(mesh.adjacent(u, 3));
    const auto s = mesh.adjacentSpan(u, 3);
    ASSERT_EQ(legacy, sorted({s.begin(), s.end()}));
  }
}

// --- gate 2: RCM bandwidth -----------------------------------------------

TEST(Reorder, RcmBeatsShuffledBandwidth) {
  auto gen = meshgen::boxTets(6, 6, 6);
  const auto& mesh = *gen.mesh;
  const auto rcm = core::order::rcmVertices(mesh);
  const auto rcm_ranks = core::order::ranksOf(mesh, rcm);

  auto shuffled = mesh.all(0);
  common::Rng rng(7);
  for (std::size_t i = shuffled.size(); i > 1; --i)
    std::swap(shuffled[i - 1], shuffled[rng.below(i)]);
  const auto shuf_ranks = core::order::ranksOf(mesh, shuffled);

  EXPECT_LT(core::order::bandwidth(mesh, rcm_ranks),
            core::order::bandwidth(mesh, shuf_ranks));
}

// --- gate 3: reorder on/off equality over the chaos matrix ---------------

struct LayoutCase {
  bool three_d;
  std::uint64_t seed;
};

/// One stage checkpoint: the geometric element-digest multiset (content:
/// no element lost, duplicated or mis-partitioned) plus the canonical
/// structural fingerprint (partition + remotes + ghosts, relabeling-proof).
struct Checkpoint {
  std::multiset<std::uint64_t> digests;
  std::uint64_t print = 0;

  bool operator==(const Checkpoint&) const = default;
};

Checkpoint checkpoint(dist::PartedMesh& pm) {
  return {dist::digest::elementDigests(pm), pm.fingerprint()};
}

/// Random migration plan chosen by *content*, not by handle: elements are
/// visited in element-digest order (identical between layouts), so the two
/// runs draw the same rng decisions for the same geometric elements.
dist::MigrationPlan contentPlan(dist::PartedMesh& pm, common::Rng& rng,
                                double prob) {
  dist::MigrationPlan plan(static_cast<std::size_t>(pm.parts()));
  for (PartId p = 0; p < pm.parts(); ++p) {
    const auto& mesh = pm.part(p).mesh();
    std::vector<std::pair<std::uint64_t, Ent>> keyed;
    for (Ent e : pm.part(p).elements())
      keyed.emplace_back(dist::digest::elementDigest(mesh, e), e);
    std::sort(keyed.begin(), keyed.end());
    for (const auto& [key, e] : keyed) {
      (void)key;
      if (rng.uniform() < prob)
        plan[static_cast<std::size_t>(p)][e] =
            static_cast<PartId>(rng.below(static_cast<std::uint64_t>(pm.parts())));
    }
  }
  return plan;
}

/// Full pipeline under one layout; returns a checkpoint per stage.
std::vector<Checkpoint> runScenario(const LayoutCase& c, bool reorder) {
  if (reorder)
    unsetenv("PUMI_NO_REORDER");
  else
    setenv("PUMI_NO_REORDER", "1", 1);

  auto gen = c.three_d ? meshgen::boxTets(4, 4, 4) : meshgen::boxTris(6, 6);
  const int nparts = c.three_d ? 5 : 4;
  const auto assignment =
      part::partition(*gen.mesh, nparts, part::Method::RCB);
  auto pm = dist::PartedMesh::distribute(
      *gen.mesh, gen.model.get(), assignment,
      dist::PartMap(nparts, pcu::Machine::flat(nparts)));
  unsetenv("PUMI_NO_REORDER");

  std::vector<Checkpoint> out;
  out.push_back(checkpoint(*pm));  // distribute

  common::Rng rng(c.seed * 0x9e3779b97f4a7c15ull + 1);
  for (int round = 0; round < 4; ++round) {
    pm->migrate(contentPlan(*pm, rng, 0.15));
    out.push_back(checkpoint(*pm));  // migrate
  }

  pm->ghostLayers(1);
  out.push_back(checkpoint(*pm));  // ghost

  pm->unghost();
  out.push_back(checkpoint(*pm));  // unghost

  parma::improve(*pm, c.three_d ? "Rgn" : "Face", {.tolerance = 0.05});
  out.push_back(checkpoint(*pm));  // balance

  pm->verify();  // throws on any broken invariant
  return out;
}

class ReorderEquality : public ::testing::TestWithParam<LayoutCase> {};

TEST_P(ReorderEquality, DigestsAndFingerprintsBitIdenticalOnVsOff) {
  const auto on = runScenario(GetParam(), true);
  const auto off = runScenario(GetParam(), false);
  ASSERT_EQ(on.size(), off.size());
  for (std::size_t i = 0; i < on.size(); ++i) {
    EXPECT_EQ(on[i].digests, off[i].digests) << "digest drift at stage " << i;
    EXPECT_EQ(on[i].print, off[i].print) << "fingerprint drift at stage " << i;
  }
}

std::vector<LayoutCase> chaosMatrix() {
  std::vector<LayoutCase> cases;
  for (std::uint64_t s = 0; s < 10; ++s) cases.push_back({true, s});
  for (std::uint64_t s = 0; s < 10; ++s) cases.push_back({false, s});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    ChaosMatrix, ReorderEquality, ::testing::ValuesIn(chaosMatrix()),
    [](const ::testing::TestParamInfo<LayoutCase>& info) {
      return std::string(info.param.three_d ? "tets" : "tris") + "_seed" +
             std::to_string(info.param.seed);
    });

}  // namespace
