/// \file test_svc.cpp
/// \brief Multi-tenant mesh service: subgroup fault isolation, admission
/// control against the rank-pool ledger, bounded-queue shedding, and
/// blast-radius containment.
///
/// Contracts under test (ISSUE: multi-tenant service):
///  - pcu::Comm::split(color, key, {.isolate_faults}) carves disjoint
///    subgroups whose fault domains are tenant-scoped: a chaotic plan
///    installed for one color never touches a sibling color's traffic;
///  - PUMI_FAULTS plans compose deterministically: same-phase tokens fire
///    join before kill before hang, and exact duplicate keys are rejected
///    with kValidation naming both tokens;
///  - svc::Scheduler admits against the ledger's live capacity (structured
///    kAdmission naming the reason), bounds its queue, sheds only
///    strictly-lower-priority work by name, packs same-tenant jobs onto a
///    shared grant, and absorbs rank failures inside the owning tenant:
///    the dead rank is reclaimed from the pool, and a concurrent clean
///    tenant's element digest is bit-identical to its solo run across a
///    seed matrix replayed twice.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <future>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "dist/checkpoint.hpp"
#include "dist/digest.hpp"
#include "dist/partedmesh.hpp"
#include "meshgen/boxmesh.hpp"
#include "pcu/comm.hpp"
#include "pcu/error.hpp"
#include "pcu/failure.hpp"
#include "pcu/faults.hpp"
#include "pcu/phased.hpp"
#include "pcu/runtime.hpp"
#include "pcu/stats.hpp"
#include "pcu/trace.hpp"
#include "svc/job.hpp"
#include "svc/ledger.hpp"
#include "svc/report.hpp"
#include "svc/scheduler.hpp"

namespace {

using pcu::Error;
using pcu::ErrorCode;
namespace faults = pcu::faults;

/// Installs a plan on the ambient domain for one test body.
struct PlanGuard {
  explicit PlanGuard(const faults::FaultPlan& p) { faults::setPlan(p); }
  ~PlanGuard() { faults::clearPlan(); }
  PlanGuard(const PlanGuard&) = delete;
  PlanGuard& operator=(const PlanGuard&) = delete;
};

/// One ring phased exchange on `c`; returns the payload received.
int ringStep(pcu::Comm& c) {
  std::vector<std::pair<int, pcu::OutBuffer>> out;
  pcu::OutBuffer b;
  b.pack<int>(c.rank());
  out.emplace_back((c.rank() + 1) % c.size(), std::move(b));
  auto msgs = pcu::phasedExchange(c, std::move(out));
  return msgs.empty() ? -1 : msgs.front().body.unpack<int>();
}

/// --- PUMI_FAULTS plan composition (satellite: deterministic order) -------

TEST(PlanComposition, DuplicateKeysAreRejectedNamingBothTokens) {
  try {
    faults::parsePlan("seed=3,drop=0.5,drop=0.25");
    FAIL() << "accepted a duplicate drop= token";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kValidation);
    EXPECT_NE(e.detail().find("duplicate"), std::string::npos) << e.what();
    EXPECT_NE(e.detail().find("drop=0.5"), std::string::npos)
        << "must name the first token: " << e.what();
    EXPECT_NE(e.detail().find("drop=0.25"), std::string::npos)
        << "must name the second token: " << e.what();
  }
  EXPECT_THROW(faults::parsePlan("kill=1@2,kill=1@2"), Error)
      << "exact duplicates are rejected too";
  // Distinct keys still compose.
  EXPECT_NO_THROW(faults::parsePlan("seed=3,drop=0.5,corrupt=0.25,kill=1@2"));
}

TEST(PlanComposition, SamePhaseEventsFireJoinThenKillThenHang) {
  faults::Domain d;
  d.install(faults::parsePlan("join=2@1,kill=0@1,deadline=25"));
  // Nothing fires before the scheduled boundary.
  EXPECT_EQ(d.fireJoin(0), 0);
  EXPECT_FALSE(d.fireKill(0, 0));
  // At the boundary the join is consumable before the kill: the scale-out
  // knock is recorded even though the same boundary then aborts the rank.
  EXPECT_EQ(d.fireJoin(1), 2);
  EXPECT_TRUE(d.fireKill(0, 1));
  // Consume-once: neither fires twice.
  EXPECT_EQ(d.fireJoin(1), 0);
  EXPECT_FALSE(d.fireKill(0, 1));
}

TEST(PlanComposition, JoinKnockIsRecordedBeforeTheSamePhaseKillAborts) {
  // Integration form of the ordering contract: 3 ranks, join=2 and kill of
  // rank 2 both scheduled at phase boundary 2. The group must come out of
  // the incident with the join pending — the knock beat the kill.
  std::atomic<int> join_pending{-1};
  std::atomic<int> survivors{0};
  PlanGuard g(faults::parsePlan("seed=11,join=2@2,kill=2@2,deadline=30"));
  pcu::run(3, [&](pcu::Comm& c) {
    try {
      for (int step = 0; step < 8; ++step) (void)ringStep(c);
      ADD_FAILURE() << "rank " << c.rank() << " outlived the kill plan";
    } catch (const pcu::failure::RankKilled&) {
      return;  // the condemned rank
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kRankFailed) << e.what();
    }
    auto sub = c.shrink();
    ++survivors;
    join_pending.store(c.joinPending(), std::memory_order_relaxed);
  });
  EXPECT_EQ(survivors.load(), 2);
  EXPECT_EQ(join_pending.load(), 2)
      << "the join knock must be recorded before the same-phase kill";
}

/// --- pcu split: fault-isolated subgroups ---------------------------------

TEST(SplitDomains, DefaultSplitInheritsParentDomainIsolatedGetsFresh) {
  PlanGuard g(faults::parsePlan("seed=5,corrupt=0.0,checksum=1"));
  pcu::run(4, [&](pcu::Comm& c) {
    auto inherit = c.split(0, c.rank());
    EXPECT_EQ(inherit.faultDomainHandle(), c.faultDomainHandle());
    EXPECT_TRUE(inherit.framingEnabled());
    auto isolated =
        c.split(0, c.rank(), pcu::Comm::SplitOptions{.isolate_faults = true});
    EXPECT_NE(isolated.faultDomainHandle(), c.faultDomainHandle());
    EXPECT_FALSE(isolated.framingEnabled())
        << "an isolated subgroup starts with an empty domain";
  });
}

TEST(SplitDomains, ChaosInOneColorNeverTouchesTheSibling) {
  // Colors 0 (ranks 0-2) and 1 (ranks 3-5), both fault-isolated. Color 0
  // installs a total-drop plan on its own domain and must abort with
  // structured errors; color 1 exchanges identical traffic and must see
  // zero faults.
  std::atomic<int> a_errors{0};
  std::atomic<int> b_errors{0};
  std::atomic<int> b_ok{0};
  pcu::run(6, [&](pcu::Comm& c) {
    const int color = c.rank() / 3;
    auto sub =
        c.split(color, c.rank(), pcu::Comm::SplitOptions{.isolate_faults = true});
    ASSERT_EQ(sub.size(), 3);
    if (color == 0) {
      if (sub.rank() == 0)
        sub.faultDomain().install(
            faults::parsePlan("seed=13,drop=1.0,watchdog=60"));
      sub.barrier();  // plan visible to the whole color before traffic
      try {
        (void)ringStep(sub);
        ADD_FAILURE() << "total drop still delivered";
      } catch (const Error&) {
        ++a_errors;
      }
    } else {
      sub.barrier();
      try {
        const int got = ringStep(sub);
        EXPECT_EQ(got, (sub.rank() + sub.size() - 1) % sub.size());
        ++b_ok;
      } catch (const Error&) {
        ++b_errors;
      }
    }
  });
  EXPECT_EQ(a_errors.load(), 3) << "every chaotic rank aborts structurally";
  EXPECT_EQ(b_errors.load(), 0) << "sibling tenant must never see the chaos";
  EXPECT_EQ(b_ok.load(), 3);
}

TEST(SplitDomains, TenantScopedReliableOverrideRecoversOnlyItsColor) {
  // Color 0 runs drop chaos *with* a tenant-scoped reliable override on its
  // domain: traffic recovers via ARQ. Color 1 keeps the process-global
  // (off) setting and stays unframed plain delivery.
  std::atomic<int> a_ok{0};
  std::atomic<int> b_ok{0};
  pcu::run(4, [&](pcu::Comm& c) {
    const int color = c.rank() / 2;
    auto sub =
        c.split(color, c.rank(), pcu::Comm::SplitOptions{.isolate_faults = true});
    ASSERT_EQ(sub.size(), 2);
    if (color == 0) {
      if (sub.rank() == 0) {
        sub.faultDomain().install(faults::parsePlan("seed=17,drop=0.5"));
        sub.faultDomain().setReliable(true);
      }
      sub.barrier();
      EXPECT_TRUE(sub.faultDomain().reliableEnabled());
      for (int step = 0; step < 6; ++step)
        EXPECT_EQ(ringStep(sub), (sub.rank() + 1) % 2);
      ++a_ok;
    } else {
      sub.barrier();
      EXPECT_FALSE(sub.faultDomain().reliableEnabled());
      EXPECT_FALSE(sub.framingEnabled());
      for (int step = 0; step < 6; ++step)
        EXPECT_EQ(ringStep(sub), (sub.rank() + 1) % 2);
      ++b_ok;
    }
  });
  EXPECT_EQ(a_ok.load(), 2);
  EXPECT_EQ(b_ok.load(), 2);
}

TEST(SplitRendezvous, ConsecutiveSplitsAreGenerationSafe) {
  // Back-to-back splits on the same parent group: the shared rendezvous
  // state must reset cleanly between rounds even when ranks race ahead.
  pcu::run(4, [](pcu::Comm& c) {
    for (int round = 0; round < 5; ++round) {
      auto sub = c.split(c.rank() % 2, c.rank());
      ASSERT_EQ(sub.size(), 2);
      EXPECT_EQ(sub.rank(), c.rank() / 2);
      EXPECT_EQ(ringStep(sub), (sub.rank() + 1) % 2);
    }
  });
}

TEST(SplitRendezvous, OrdersByKeyThenRank) {
  pcu::run(4, [](pcu::Comm& c) {
    auto sub = c.split(0, -c.rank());  // descending keys reverse the order
    ASSERT_EQ(sub.size(), 4);
    EXPECT_EQ(sub.rank(), 3 - c.rank());
  });
}

/// --- the rank-pool ledger ------------------------------------------------

TEST(Ledger, LeasesAreDisjointAndReturn) {
  svc::Ledger ledger(6);
  EXPECT_EQ(ledger.poolSize(), 6);
  EXPECT_EQ(ledger.liveCapacity(), 6);
  auto a = ledger.tryAcquire(4);
  ASSERT_EQ(a.size(), 4u);
  auto b = ledger.tryAcquire(2);
  ASSERT_EQ(b.size(), 2u);
  for (int r : a)
    EXPECT_EQ(std::count(b.begin(), b.end(), r), 0) << "leases overlap";
  EXPECT_TRUE(ledger.tryAcquire(1).empty()) << "pool exhausted";
  ledger.release(a);
  EXPECT_EQ(ledger.freeCount(), 4);
  ledger.release(b);
  EXPECT_EQ(ledger.freeCount(), 6);
}

TEST(Ledger, DeadRanksNeverReturnToThePool) {
  svc::Ledger ledger(4);
  auto lease = ledger.tryAcquire(2);
  ASSERT_EQ(lease.size(), 2u);
  ledger.markDead(lease[0]);      // died while leased
  ledger.markDead(3);             // died while free
  EXPECT_EQ(ledger.deadCount(), 2);
  EXPECT_EQ(ledger.liveCapacity(), 2);
  ledger.release(lease);
  EXPECT_EQ(ledger.freeCount(), 2) << "the corpse must not be freed";
  auto rest = ledger.tryAcquire(2);
  ASSERT_EQ(rest.size(), 2u) << "the two live survivors are leasable";
  for (int r : rest) {
    EXPECT_NE(r, lease[0]) << "a dead rank was leased again";
    EXPECT_NE(r, 3) << "a dead rank was leased again";
  }
  EXPECT_TRUE(ledger.tryAcquire(1).empty()) << "nothing live remains";
  const auto dead = ledger.deadRanks();
  EXPECT_EQ(dead.size(), 2u);
}

/// --- admission control ---------------------------------------------------

svc::JobSpec smallJob(const std::string& tenant, const std::string& name,
                      int width = 4, std::uint64_t seed = 1) {
  svc::JobSpec s;
  s.tenant = tenant;
  s.name = name;
  s.width = width;
  s.seed = seed;
  s.nx = s.ny = s.nz = 3;
  s.migrate_rounds = 2;
  s.balance = true;
  return s;
}

TEST(Admission, WidthBeyondPoolCapacityIsRejectedByName) {
  svc::Scheduler sched({.pool_size = 8, .workers = 1});
  try {
    (void)sched.submit(smallJob("acme", "too-wide", 9));
    FAIL() << "admitted a job wider than the pool";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kAdmission);
    EXPECT_STREQ(pcu::errorCodeName(e.code()), "admission");
    EXPECT_NE(e.detail().find("exceeds live pool capacity"), std::string::npos)
        << e.what();
    EXPECT_NE(e.detail().find("acme/too-wide"), std::string::npos)
        << "the rejection must name the job: " << e.what();
  }
  const auto rep = sched.report();
  const auto* t = rep.tenant("acme");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->rejected, 1);
}

TEST(Admission, InvalidWidthIsAValidationError) {
  svc::Scheduler sched({.pool_size = 4, .workers = 1});
  EXPECT_THROW((void)sched.submit(smallJob("acme", "zero", 0)), Error);
}

TEST(Admission, FullQueueRejectsEqualPriorityNamingDepth) {
  svc::Scheduler sched(
      {.pool_size = 4, .workers = 1, .queue_capacity = 2});
  // Occupy the worker, then fill the bounded queue.
  auto running = sched.submit(smallJob("t0", "running", 4, 1));
  while (sched.queueDepth() > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  auto q1 = sched.submit(smallJob("t1", "queued-1", 4, 2));
  auto q2 = sched.submit(smallJob("t2", "queued-2", 4, 3));
  try {
    (void)sched.submit(smallJob("t3", "overflow", 4, 4));
    FAIL() << "queue bound not enforced";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kAdmission);
    EXPECT_NE(e.detail().find("queue full"), std::string::npos) << e.what();
    EXPECT_NE(e.detail().find("capacity 2"), std::string::npos) << e.what();
  }
  EXPECT_EQ(running.get().state, svc::JobState::kCompleted);
  EXPECT_EQ(q1.get().state, svc::JobState::kCompleted);
  EXPECT_EQ(q2.get().state, svc::JobState::kCompleted);
  const auto rep = sched.report();
  EXPECT_LE(rep.peak_queue_depth, rep.queue_capacity);
}

TEST(Admission, HigherPrioritySubmissionShedsTheLowestQueuedJob) {
  svc::Scheduler sched(
      {.pool_size = 4, .workers = 1, .queue_capacity = 2});
  auto running = sched.submit(smallJob("t0", "running", 4, 1));
  while (sched.queueDepth() > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  auto low = sched.submit([&] {
    auto s = smallJob("bulk", "low-batch", 4, 2);
    s.priority = svc::Priority::kLow;
    return s;
  }());
  auto normal = sched.submit(smallJob("app", "normal", 4, 3));
  auto high = sched.submit([&] {
    auto s = smallJob("ops", "urgent", 4, 4);
    s.priority = svc::Priority::kHigh;
    return s;
  }());
  const auto shed = low.get();
  EXPECT_EQ(shed.state, svc::JobState::kShed);
  EXPECT_NE(shed.reason.find("preempted"), std::string::npos) << shed.reason;
  EXPECT_NE(shed.reason.find("ops/urgent"), std::string::npos)
      << "the shed reason must name the preempting job: " << shed.reason;
  EXPECT_EQ(running.get().state, svc::JobState::kCompleted);
  EXPECT_EQ(normal.get().state, svc::JobState::kCompleted);
  EXPECT_EQ(high.get().state, svc::JobState::kCompleted);
  const auto rep = sched.report();
  ASSERT_NE(rep.tenant("bulk"), nullptr);
  EXPECT_EQ(rep.tenant("bulk")->shed, 1);
  ASSERT_EQ(rep.shed_jobs.size(), 1u);
  EXPECT_NE(rep.shed_jobs.front().find("bulk/low-batch"), std::string::npos);
}

/// --- packing -------------------------------------------------------------

TEST(Packing, SameTenantJobsShareOneGrant) {
  svc::Scheduler sched(
      {.pool_size = 4, .workers = 1, .queue_capacity = 8});
  auto filler = sched.submit(smallJob("warmup", "filler", 4, 1));
  while (sched.queueDepth() > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  auto lead = sched.submit(smallJob("acme", "lead", 4, 2));
  auto rider1 = sched.submit(smallJob("acme", "rider-1", 2, 3));
  auto rider2 = sched.submit(smallJob("acme", "rider-2", 3, 4));
  auto other = sched.submit(smallJob("rival", "solo", 4, 5));
  EXPECT_EQ(filler.get().state, svc::JobState::kCompleted);
  const auto r_lead = lead.get();
  const auto r1 = rider1.get();
  const auto r2 = rider2.get();
  const auto r_other = other.get();
  EXPECT_EQ(r_lead.state, svc::JobState::kCompleted);
  EXPECT_FALSE(r_lead.packed);
  EXPECT_EQ(r1.state, svc::JobState::kCompleted);
  EXPECT_TRUE(r1.packed) << "same-tenant fit must ride the lead's grant";
  EXPECT_EQ(r1.ranks, 4) << "a packed job runs at the grant's width";
  EXPECT_EQ(r2.state, svc::JobState::kCompleted);
  EXPECT_TRUE(r2.packed);
  EXPECT_EQ(r_other.state, svc::JobState::kCompleted);
  EXPECT_FALSE(r_other.packed) << "packing never crosses tenants";
  const auto rep = sched.report();
  ASSERT_NE(rep.tenant("acme"), nullptr);
  EXPECT_EQ(rep.tenant("acme")->packed, 2);
}

/// --- tenant isolation: the digest matrix ---------------------------------

TEST(Isolation, ChaoticTenantNeverPerturbsCleanSiblingAcrossSeedMatrix) {
  // The acceptance matrix: tenant A runs drop+corrupt chaos (with a
  // tenant-scoped reliable override so it completes); tenant B runs clean,
  // concurrently, every time. Across 20 seeds replayed twice, B's element
  // digest must be bit-identical to its solo (uncontended, chaos-free)
  // run, and B must observe zero faults and zero failovers.
  constexpr int kSeeds = 20;
  constexpr int kReplays = 2;
  // Solo reference digests, one per seed.
  std::map<std::uint64_t, std::uint64_t> reference;
  {
    svc::Scheduler solo({.pool_size = 4, .workers = 1});
    for (int s = 0; s < kSeeds; ++s) {
      const auto r =
          solo.run(smallJob("bravo", "solo-" + std::to_string(s), 4,
                            100 + static_cast<std::uint64_t>(s)));
      ASSERT_EQ(r.state, svc::JobState::kCompleted) << r.reason;
      ASSERT_GT(r.elements, 0u);
      reference[100 + static_cast<std::uint64_t>(s)] = r.digest;
    }
  }
  for (int replay = 0; replay < kReplays; ++replay) {
    svc::Scheduler sched({.pool_size = 8, .workers = 2, .queue_capacity = 8});
    for (int s = 0; s < kSeeds; ++s) {
      const auto seed = 100 + static_cast<std::uint64_t>(s);
      auto chaotic = smallJob("alpha", "chaos-" + std::to_string(s), 4, seed);
      chaotic.chaos.faults = "seed=" + std::to_string(1000 + s) +
                             ",drop=0.2,corrupt=0.1";
      chaotic.chaos.reliable = true;
      auto clean = smallJob("bravo", "clean-" + std::to_string(s), 4, seed);
      auto fa = sched.submit(std::move(chaotic));
      auto fb = sched.submit(std::move(clean));
      const auto ra = fa.get();
      const auto rb = fb.get();
      EXPECT_EQ(ra.state, svc::JobState::kCompleted)
          << "seed " << seed << ": " << ra.reason;
      ASSERT_EQ(rb.state, svc::JobState::kCompleted)
          << "seed " << seed << ": " << rb.reason;
      EXPECT_EQ(rb.digest, reference[seed])
          << "seed " << seed << " replay " << replay
          << ": clean tenant's digest drifted under sibling chaos";
      EXPECT_EQ(rb.failovers, 0);
      EXPECT_EQ(rb.faults_recovered, 0)
          << "clean tenant observed a fault that was not its own";
    }
    sched.drain();
    const auto rep = sched.report();
    const auto* bravo = rep.tenant("bravo");
    ASSERT_NE(bravo, nullptr);
    EXPECT_EQ(bravo->completed, kSeeds);
    EXPECT_EQ(bravo->failovers, 0);
    EXPECT_EQ(bravo->faults_recovered, 0);
  }
}

/// --- blast radius: rank failure stays inside its tenant ------------------

TEST(BlastRadius, RankFailureShrinksThePoolAndSparesTheSibling) {
  svc::Scheduler sched({.pool_size = 8, .workers = 2, .queue_capacity = 8});
  // Reference digest for the clean tenant.
  std::uint64_t reference = 0;
  {
    svc::Scheduler solo({.pool_size = 4, .workers = 1});
    const auto r = solo.run(smallJob("bravo", "solo", 4, 42));
    ASSERT_EQ(r.state, svc::JobState::kCompleted) << r.reason;
    reference = r.digest;
  }
  auto doomed = smallJob("alpha", "doomed", 4, 7);
  doomed.chaos.faults = "seed=7,kill=2@1,deadline=30";
  auto fa = sched.submit(std::move(doomed));
  auto fb = sched.submit(smallJob("bravo", "clean", 4, 42));
  const auto ra = fa.get();
  const auto rb = fb.get();
  ASSERT_EQ(ra.state, svc::JobState::kCompleted) << ra.reason;
  EXPECT_EQ(ra.failovers, 1)
      << "the kill must be absorbed as exactly one failover";
  ASSERT_EQ(rb.state, svc::JobState::kCompleted) << rb.reason;
  EXPECT_EQ(rb.digest, reference)
      << "sibling tenant's digest must not move under A's rank failure";
  EXPECT_EQ(rb.failovers, 0);
  EXPECT_EQ(rb.faults_recovered, 0);
  sched.drain();
  // The ledger reclaimed the corpse: pool capacity shrank by one, and a
  // full-pool job no longer fits.
  EXPECT_EQ(sched.ledger().deadCount(), 1);
  EXPECT_EQ(sched.ledger().liveCapacity(), 7);
  try {
    (void)sched.submit(smallJob("alpha", "full-width", 8));
    FAIL() << "a dead rank was leased again";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kAdmission);
    EXPECT_NE(e.detail().find("capacity 7"), std::string::npos) << e.what();
    EXPECT_NE(e.detail().find("dead 1"), std::string::npos) << e.what();
  }
  const auto rep = sched.report();
  EXPECT_EQ(rep.ranks_dead, 1);
}

/// --- overload ------------------------------------------------------------

TEST(Overload, TwoXCapacityDegradesStructurallyNotByAborting) {
  // Offer ~2x what the service can hold (1 worker, queue of 3): every job
  // ends in exactly one structured outcome — completed, shed (named), or
  // rejected (named) — and the queue never exceeds its bound.
  svc::SchedulerOptions opts;
  opts.pool_size = 4;
  opts.workers = 1;
  opts.queue_capacity = 3;
  opts.max_resubmits = 2;
  opts.backoff_ms = 2;
  opts.max_backoff_ms = 8;
  opts.pack_same_tenant = false;  // distinct tenants stress the queue
  svc::Scheduler sched(opts);
  std::vector<std::future<svc::JobResult>> futures;
  int rejected = 0;
  for (int j = 0; j < 12; ++j) {
    auto spec = smallJob("tenant-" + std::to_string(j % 4),
                         "burst-" + std::to_string(j), 4,
                         static_cast<std::uint64_t>(j));
    spec.priority = (j % 3 == 0) ? svc::Priority::kHigh
                                 : (j % 3 == 1 ? svc::Priority::kNormal
                                               : svc::Priority::kLow);
    try {
      futures.push_back(sched.submitWithRetry(std::move(spec)));
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kAdmission) << e.what();
      ++rejected;
    }
  }
  int completed = 0;
  int shed = 0;
  for (auto& f : futures) {
    const auto r = f.get();
    if (r.state == svc::JobState::kCompleted) {
      ++completed;
    } else {
      ASSERT_EQ(r.state, svc::JobState::kShed) << r.reason;
      EXPECT_FALSE(r.reason.empty()) << "shed jobs must carry a reason";
      ++shed;
    }
  }
  sched.drain();
  EXPECT_EQ(completed + shed + rejected, 12) << "every job has one outcome";
  EXPECT_GT(completed, 0);
  const auto rep = sched.report();
  EXPECT_LE(rep.peak_queue_depth, rep.queue_capacity)
      << "the queue bound must hold under 2x pressure";
  EXPECT_EQ(static_cast<int>(rep.shed_jobs.size()), shed)
      << "every shed job is named in the report";
}

/// --- per-tenant observability --------------------------------------------

TEST(Observability, TraceEventsAreTenantScopedAndReportsFilter) {
  pcu::trace::clear();
  pcu::trace::setEnabled(true);
  {
    svc::Scheduler sched({.pool_size = 8, .workers = 2});
    auto fa = sched.submit(smallJob("alpha", "traced", 4, 1));
    auto fb = sched.submit(smallJob("bravo", "traced", 4, 2));
    ASSERT_EQ(fa.get().state, svc::JobState::kCompleted);
    ASSERT_EQ(fb.get().state, svc::JobState::kCompleted);
    sched.drain();
  }
  pcu::trace::setEnabled(false);
  const auto merged = pcu::trace::snapshot();
  pcu::trace::clear();
  const auto alpha = pcu::buildTraceReport(merged, "alpha");
  const auto bravo = pcu::buildTraceReport(merged, "bravo");
  const auto nobody = pcu::buildTraceReport(merged, "charlie");
  ASSERT_FALSE(alpha.phases.empty());
  ASSERT_FALSE(bravo.phases.empty());
  EXPECT_TRUE(nobody.phases.empty());
  auto hasPhase = [](const pcu::TraceReport& r, const std::string& needle) {
    for (const auto& p : r.phases)
      if (p.name.find(needle) != std::string::npos) return true;
    return false;
  };
  EXPECT_TRUE(hasPhase(alpha, "svc:alpha/traced"));
  EXPECT_FALSE(hasPhase(alpha, "svc:bravo"))
      << "tenant alpha's view must not contain bravo's phases";
  EXPECT_TRUE(hasPhase(bravo, "svc:bravo/traced"));
  EXPECT_FALSE(hasPhase(bravo, "svc:alpha"));
}

TEST(ReportJson, EmitsPerTenantPercentilesAndShedNames) {
  EXPECT_EQ(svc::percentile({}, 99.0), 0.0);
  EXPECT_DOUBLE_EQ(svc::percentile({5.0, 1.0, 3.0}, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(svc::percentile({5.0, 1.0, 3.0}, 99.0), 5.0);
  svc::Scheduler sched({.pool_size = 4, .workers = 1});
  ASSERT_EQ(sched.run(smallJob("acme", "a", 4, 1)).state,
            svc::JobState::kCompleted);
  ASSERT_EQ(sched.run(smallJob("acme", "b", 4, 2)).state,
            svc::JobState::kCompleted);
  const auto rep = sched.report();
  const auto* t = rep.tenant("acme");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->completed, 2);
  EXPECT_GT(t->p50_ms, 0.0);
  EXPECT_GE(t->p99_ms, t->p50_ms);
  EXPECT_GE(t->max_ms, t->p99_ms);
  std::ostringstream os;
  rep.writeJson(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"acme\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"shed_jobs\""), std::string::npos);
  EXPECT_NE(json.find("\"pool_size\": 4"), std::string::npos);
}

/// --- scheduler checkpoint hooks (parallel I/O tentpole) ------------------

std::string freshCkptDir(const std::string& leaf) {
  namespace fs = std::filesystem;
  const fs::path d = fs::temp_directory_path() / "pumi_test_svc_ckpt" / leaf;
  fs::remove_all(d);
  return d.string();
}

TEST(CheckpointHooks, JobCommitsRestorableStateAtPhaseBoundaries) {
  const auto dir = freshCkptDir("basic");
  svc::Scheduler sched({.pool_size = 4, .workers = 1});
  auto spec = smallJob("acme", "ckpt", 4, 7);
  spec.checkpoint_dir = dir;
  const auto res = sched.run(std::move(spec));
  ASSERT_EQ(res.state, svc::JobState::kCompleted) << res.reason;
  // Every phase boundary committed: initial build, each migrate round,
  // the balance pass, and the final state.
  EXPECT_GE(res.checkpoints, 4);
  ASSERT_TRUE(dist::checkpointValid(dir));

  // The last committed checkpoint is the completed mesh: restoring it
  // reproduces the job's element count and order-independent digest.
  auto gen = meshgen::boxTets(3, 3, 3);
  auto restored = dist::restore(dir, gen.model.get());
  EXPECT_NO_THROW(restored->verify());
  const auto digests = dist::digest::elementDigests(*restored);
  EXPECT_EQ(digests.size(), res.elements);
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::uint64_t d : digests) {
    h ^= d;
    h *= 0x100000001b3ull;
  }
  EXPECT_EQ(h, res.digest);
}

TEST(CheckpointHooks, StorageChaosInTenantPlanIsAbsorbedNotFatal) {
  // The tenant's own storage chaos (injected ENOSPC) hits its checkpoint
  // writes; the job must absorb every failed attempt (the journal still
  // holds the state) and complete with the same digest as a clean run.
  svc::Scheduler clean_sched({.pool_size = 4, .workers = 1});
  const auto clean = clean_sched.run(smallJob("acme", "ref", 4, 11));
  ASSERT_EQ(clean.state, svc::JobState::kCompleted) << clean.reason;

  const auto dir = freshCkptDir("chaos");
  svc::Scheduler sched({.pool_size = 4, .workers = 1});
  auto spec = smallJob("acme", "ckpt-chaos", 4, 11);
  spec.checkpoint_dir = dir;
  spec.chaos.faults = "seed=23,ioenospc=0.4";
  const auto res = sched.run(std::move(spec));
  ASSERT_EQ(res.state, svc::JobState::kCompleted) << res.reason;
  EXPECT_EQ(res.digest, clean.digest);
  EXPECT_EQ(res.elements, clean.elements);
  // Failed checkpoint attempts were counted, not fatal; and a directory
  // that claims validity must actually restore.
  if (dist::checkpointValid(dir)) {
    auto gen = meshgen::boxTets(3, 3, 3);
    EXPECT_NO_THROW(dist::restore(dir, gen.model.get())->verify());
  } else {
    EXPECT_GT(res.faults_recovered, 0);
  }
}

}  // namespace
