#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "pcu/comm.hpp"
#include "pcu/phased.hpp"
#include "pcu/runtime.hpp"

namespace {

/// Rank counts used for parameterized sweeps, including non-powers of two.
class PcuCommSizes : public ::testing::TestWithParam<int> {};

TEST_P(PcuCommSizes, SendRecvRing) {
  const int n = GetParam();
  pcu::run(n, [&](pcu::Comm& c) {
    const int next = (c.rank() + 1) % n;
    const int prev = (c.rank() - 1 + n) % n;
    pcu::OutBuffer b;
    b.pack<int>(c.rank() * 10);
    c.send(next, 7, b);
    pcu::Message m = c.recv(prev, 7);
    EXPECT_EQ(m.source, prev);
    EXPECT_EQ(m.tag, 7);
    EXPECT_EQ(m.body.unpack<int>(), prev * 10);
  });
}

TEST_P(PcuCommSizes, Barrier) {
  const int n = GetParam();
  std::atomic<int> phase_count{0};
  pcu::run(n, [&](pcu::Comm& c) {
    for (int i = 0; i < 5; ++i) {
      phase_count.fetch_add(1);
      c.barrier();
      // After the barrier, everyone must have contributed to this phase.
      EXPECT_GE(phase_count.load(), (i + 1) * n);
      c.barrier();
    }
  });
  EXPECT_EQ(phase_count.load(), 5 * n);
}

TEST_P(PcuCommSizes, BroadcastFromEveryRoot) {
  const int n = GetParam();
  pcu::run(n, [&](pcu::Comm& c) {
    for (int root = 0; root < n; ++root) {
      pcu::OutBuffer b;
      if (c.rank() == root) {
        b.pack<int>(root * 100 + 13);
        b.packString("payload");
      }
      auto bytes = c.broadcast(root, std::move(b).take());
      pcu::InBuffer in(std::move(bytes));
      EXPECT_EQ(in.unpack<int>(), root * 100 + 13);
      EXPECT_EQ(in.unpackString(), "payload");
    }
  });
}

TEST_P(PcuCommSizes, AllreduceSumMinMax) {
  const int n = GetParam();
  pcu::run(n, [&](pcu::Comm& c) {
    const long sum = c.allreduceSum<long>(c.rank() + 1);
    EXPECT_EQ(sum, static_cast<long>(n) * (n + 1) / 2);
    EXPECT_EQ(c.allreduceMin<int>(c.rank()), 0);
    EXPECT_EQ(c.allreduceMax<int>(c.rank()), n - 1);
    const double dsum = c.allreduceSum<double>(0.5);
    EXPECT_DOUBLE_EQ(dsum, 0.5 * n);
  });
}

TEST_P(PcuCommSizes, AllreduceVector) {
  const int n = GetParam();
  pcu::run(n, [&](pcu::Comm& c) {
    std::vector<int> local(3);
    local[0] = 1;
    local[1] = c.rank();
    local[2] = -c.rank();
    auto r = c.allreduce(std::move(local), [](int a, int b) { return a + b; });
    EXPECT_EQ(r[0], n);
    EXPECT_EQ(r[1], n * (n - 1) / 2);
    EXPECT_EQ(r[2], -n * (n - 1) / 2);
  });
}

TEST_P(PcuCommSizes, GatherAllgather) {
  const int n = GetParam();
  pcu::run(n, [&](pcu::Comm& c) {
    pcu::OutBuffer b;
    b.pack<int>(c.rank() * c.rank());
    auto gathered = c.gather(0, std::move(b).take());
    if (c.rank() == 0) {
      ASSERT_EQ(gathered.size(), static_cast<std::size_t>(n));
      for (int r = 0; r < n; ++r) {
        pcu::InBuffer in(std::move(gathered[r]));
        EXPECT_EQ(in.unpack<int>(), r * r);
      }
    }
    auto values = c.allgatherValue<int>(c.rank() + 5);
    ASSERT_EQ(values.size(), static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) EXPECT_EQ(values[r], r + 5);
  });
}

TEST_P(PcuCommSizes, ExclusiveScan) {
  const int n = GetParam();
  pcu::run(n, [&](pcu::Comm& c) {
    const long prefix = c.exscanSum<long>(c.rank() + 1);
    long expected = 0;
    for (int r = 0; r < c.rank(); ++r) expected += r + 1;
    EXPECT_EQ(prefix, expected);
  });
}

TEST_P(PcuCommSizes, PhasedExchangeAllToAll) {
  const int n = GetParam();
  pcu::run(n, [&](pcu::Comm& c) {
    // Every rank sends one message to every other rank.
    std::vector<std::pair<int, pcu::OutBuffer>> outgoing;
    for (int d = 0; d < n; ++d) {
      if (d == c.rank()) continue;
      pcu::OutBuffer b;
      b.pack<int>(c.rank() * 1000 + d);
      outgoing.emplace_back(d, std::move(b));
    }
    auto received = pcu::phasedExchange(c, std::move(outgoing));
    ASSERT_EQ(received.size(), static_cast<std::size_t>(n - 1));
    std::vector<int> sources;
    for (auto& m : received) {
      sources.push_back(m.source);
      EXPECT_EQ(m.body.unpack<int>(), m.source * 1000 + c.rank());
    }
    std::sort(sources.begin(), sources.end());
    for (int i = 0, r = 0; r < n; ++r) {
      if (r == c.rank()) continue;
      EXPECT_EQ(sources[i++], r);
    }
  });
}

TEST_P(PcuCommSizes, PhasedExchangeSparse) {
  const int n = GetParam();
  pcu::run(n, [&](pcu::Comm& c) {
    // Only rank 0 sends, to the last rank.
    std::vector<std::pair<int, pcu::OutBuffer>> outgoing;
    if (c.rank() == 0) {
      pcu::OutBuffer b;
      b.packString("lonely");
      outgoing.emplace_back(n - 1, std::move(b));
    }
    auto received = pcu::phasedExchange(c, std::move(outgoing));
    if (c.rank() == n - 1 && n > 1) {
      ASSERT_EQ(received.size(), 1u);
      EXPECT_EQ(received[0].source, 0);
      EXPECT_EQ(received[0].body.unpackString(), "lonely");
    } else if (c.rank() == n - 1 && n == 1) {
      ASSERT_EQ(received.size(), 1u);  // self-send
    } else {
      EXPECT_TRUE(received.empty());
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, PcuCommSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16, 32));

TEST(PcuComm, MessageOrderingFifoPerSourceAndTag) {
  pcu::run(2, [](pcu::Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 10; ++i) {
        pcu::OutBuffer b;
        b.pack<int>(i);
        c.send(1, 3, b);
      }
    } else {
      for (int i = 0; i < 10; ++i) {
        pcu::Message m = c.recv(0, 3);
        EXPECT_EQ(m.body.unpack<int>(), i);
      }
    }
  });
}

TEST(PcuComm, TagsSelectMessages) {
  pcu::run(2, [](pcu::Comm& c) {
    if (c.rank() == 0) {
      pcu::OutBuffer a;
      a.pack<int>(111);
      c.send(1, 1, a);
      pcu::OutBuffer b;
      b.pack<int>(222);
      c.send(1, 2, b);
    } else {
      // Receive tag 2 first even though tag 1 arrived first.
      pcu::Message m2 = c.recv(0, 2);
      EXPECT_EQ(m2.body.unpack<int>(), 222);
      pcu::Message m1 = c.recv(0, 1);
      EXPECT_EQ(m1.body.unpack<int>(), 111);
    }
  });
}

TEST(PcuComm, AnySourceReceivesAll) {
  const int n = 4;
  pcu::run(n, [&](pcu::Comm& c) {
    if (c.rank() == 0) {
      std::vector<bool> seen(n, false);
      for (int i = 0; i < n - 1; ++i) {
        pcu::Message m = c.recv(pcu::kAnySource, 9);
        EXPECT_EQ(m.body.unpack<int>(), m.source);
        seen[m.source] = true;
      }
      for (int r = 1; r < n; ++r) EXPECT_TRUE(seen[r]);
    } else {
      pcu::OutBuffer b;
      b.pack<int>(c.rank());
      c.send(0, 9, b);
    }
  });
}

TEST(PcuComm, SplitByNodeFormsNodeComms) {
  // 2 nodes x 3 cores.
  pcu::run(6, pcu::Machine(2, 3), [](pcu::Comm& c) {
    EXPECT_EQ(c.machine().nodes(), 2);
    pcu::Comm node = c.splitByNode();
    EXPECT_EQ(node.size(), 3);
    EXPECT_EQ(node.rank(), c.rank() % 3);
    // Node comm works for collectives.
    const int sum = node.allreduceSum<int>(1);
    EXPECT_EQ(sum, 3);
    // Members of a node comm share the global node index.
    auto ranks = node.allgatherValue<int>(c.rank());
    for (int r : ranks)
      EXPECT_EQ(c.machine().nodeOf(r), c.machine().nodeOf(c.rank()));
  });
}

TEST(PcuComm, SplitByKeyReordersRanks) {
  pcu::run(4, [](pcu::Comm& c) {
    // All ranks same color; key reverses the order.
    pcu::Comm rev = c.split(0, -c.rank());
    EXPECT_EQ(rev.size(), 4);
    EXPECT_EQ(rev.rank(), 3 - c.rank());
  });
}

TEST(PcuComm, StatsClassifyOnAndOffNode) {
  pcu::run(4, pcu::Machine(2, 2), [](pcu::Comm& c) {
    if (c.rank() == 0) {
      pcu::OutBuffer b;
      b.pack<int>(1);
      c.send(1, 5, b);  // same node (node 0: ranks 0,1)
      c.send(2, 5, b);  // off node (node 1: ranks 2,3)
      EXPECT_EQ(c.stats().on_node_messages, 1u);
      EXPECT_EQ(c.stats().off_node_messages, 1u);
      EXPECT_EQ(c.stats().messages_sent, 2u);
      EXPECT_GT(c.stats().bytes_sent, 0u);
    }
    if (c.rank() == 1) (void)c.recv(0, 5);
    if (c.rank() == 2) (void)c.recv(0, 5);
  });
}

TEST(PcuComm, ExceptionInOneRankPropagates) {
  EXPECT_THROW(
      pcu::run(2,
               [](pcu::Comm& c) {
                 if (c.rank() == 1) throw std::runtime_error("rank failure");
               }),
      std::runtime_error);
}

TEST(PcuComm, LargePayloadRoundTrip) {
  pcu::run(2, [](pcu::Comm& c) {
    const std::size_t big = 1 << 20;  // 1M ints = 4MB
    if (c.rank() == 0) {
      std::vector<int> data(big);
      std::iota(data.begin(), data.end(), 0);
      pcu::OutBuffer b;
      b.packVector(data);
      c.send(1, 4, b);
    } else {
      pcu::Message m = c.recv(0, 4);
      auto data = m.body.unpackVector<int>();
      ASSERT_EQ(data.size(), big);
      EXPECT_EQ(data[0], 0);
      EXPECT_EQ(data[big - 1], static_cast<int>(big) - 1);
    }
  });
}

}  // namespace
