#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "pcu/buffer.hpp"

namespace {

TEST(PcuBuffer, RoundTripScalars) {
  pcu::OutBuffer out;
  out.pack<int>(42);
  out.pack<double>(3.5);
  out.pack<std::uint64_t>(1ull << 40);
  out.pack<char>('x');
  pcu::InBuffer in(std::move(out).take());
  EXPECT_EQ(in.unpack<int>(), 42);
  EXPECT_EQ(in.unpack<double>(), 3.5);
  EXPECT_EQ(in.unpack<std::uint64_t>(), 1ull << 40);
  EXPECT_EQ(in.unpack<char>(), 'x');
  EXPECT_TRUE(in.done());
}

TEST(PcuBuffer, RoundTripString) {
  pcu::OutBuffer out;
  out.packString("hello mesh");
  out.packString("");
  pcu::InBuffer in(std::move(out).take());
  EXPECT_EQ(in.unpackString(), "hello mesh");
  EXPECT_EQ(in.unpackString(), "");
  EXPECT_TRUE(in.done());
}

TEST(PcuBuffer, RoundTripVector) {
  pcu::OutBuffer out;
  std::vector<int> v{1, 2, 3, 4, 5};
  std::vector<double> w;
  out.packVector(v);
  out.packVector(w);
  pcu::InBuffer in(std::move(out).take());
  EXPECT_EQ(in.unpackVector<int>(), v);
  EXPECT_TRUE(in.unpackVector<double>().empty());
  EXPECT_TRUE(in.done());
}

TEST(PcuBuffer, MixedSequencePreservesOrder) {
  pcu::OutBuffer out;
  out.pack<int>(7);
  out.packString("abc");
  out.packVector(std::vector<long>{10, 20});
  out.pack<float>(1.25f);
  pcu::InBuffer in(std::move(out).take());
  EXPECT_EQ(in.unpack<int>(), 7);
  EXPECT_EQ(in.unpackString(), "abc");
  EXPECT_EQ(in.unpackVector<long>(), (std::vector<long>{10, 20}));
  EXPECT_EQ(in.unpack<float>(), 1.25f);
}

TEST(PcuBuffer, RemainingTracksConsumption) {
  pcu::OutBuffer out;
  out.pack<std::uint32_t>(1);
  out.pack<std::uint32_t>(2);
  pcu::InBuffer in(std::move(out).take());
  EXPECT_EQ(in.remaining(), 8u);
  (void)in.unpack<std::uint32_t>();
  EXPECT_EQ(in.remaining(), 4u);
  (void)in.unpack<std::uint32_t>();
  EXPECT_EQ(in.remaining(), 0u);
  EXPECT_TRUE(in.done());
}

TEST(PcuBuffer, StructPackUnpack) {
  struct Pod {
    int a;
    double b;
  };
  pcu::OutBuffer out;
  out.pack(Pod{5, -2.5});
  pcu::InBuffer in(std::move(out).take());
  auto p = in.unpack<Pod>();
  EXPECT_EQ(p.a, 5);
  EXPECT_EQ(p.b, -2.5);
}

TEST(PcuBuffer, ClearResets) {
  pcu::OutBuffer out;
  out.pack<int>(1);
  EXPECT_FALSE(out.empty());
  out.clear();
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(out.size(), 0u);
}

TEST(PcuBuffer, PackBytesRaw) {
  pcu::OutBuffer out;
  const char raw[4] = {'a', 'b', 'c', 'd'};
  out.packBytes(raw, 4);
  EXPECT_EQ(out.size(), 4u);
  pcu::InBuffer in(std::move(out).take());
  EXPECT_EQ(in.unpack<char>(), 'a');
  EXPECT_EQ(in.unpack<char>(), 'b');
  EXPECT_EQ(in.unpack<char>(), 'c');
  EXPECT_EQ(in.unpack<char>(), 'd');
}

}  // namespace
