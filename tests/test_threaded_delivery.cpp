#include <gtest/gtest.h>

#include "adapt/sizefield.hpp"
#include "core/measure.hpp"
#include "core/verify.hpp"
#include "dist/padapt.hpp"
#include "dist/partedmesh.hpp"
#include "field/field.hpp"
#include "meshgen/boxmesh.hpp"
#include "parma/balance.hpp"
#include "parma/metrics.hpp"
#include "part/partition.hpp"
#include "solver/poisson.hpp"

namespace {

using core::Ent;
using dist::PartId;

/// All distributed operations must produce semantically identical results
/// under threaded part processing (paper Sec. II-D: "part manipulations
/// take place in parallel threads").

std::unique_ptr<dist::PartedMesh> parted(meshgen::Generated& gen, int nparts,
                                         int threads) {
  const auto assign =
      part::partition(*gen.mesh, nparts, part::Method::GraphRB);
  auto pm = dist::PartedMesh::distribute(
      *gen.mesh, gen.model.get(), assign,
      dist::PartMap(nparts, pcu::Machine(2, (nparts + 1) / 2)));
  pm->network().setDeliveryThreads(threads);
  return pm;
}

class ThreadCounts : public ::testing::TestWithParam<int> {};

TEST_P(ThreadCounts, MigrationUnderThreadedDelivery) {
  const int threads = GetParam();
  auto gen = meshgen::boxTets(3, 3, 3);
  auto pm = parted(gen, 4, threads);
  dist::MigrationPlan plan(4);
  for (Ent e : pm->part(0).elements())
    if (core::centroid(pm->part(0).mesh(), e).x > 0.4) plan[0][e] = 2;
  for (Ent e : pm->part(1).elements())
    if (core::centroid(pm->part(1).mesh(), e).y > 0.6) plan[1][e] = 3;
  pm->migrate(plan);
  pm->verify();
  for (int d = 0; d <= 3; ++d)
    EXPECT_EQ(pm->globalCount(d), gen.mesh->count(d));
}

TEST_P(ThreadCounts, GhostingUnderThreadedDelivery) {
  const int threads = GetParam();
  auto gen = meshgen::boxTets(3, 3, 3);
  auto pm = parted(gen, 4, threads);
  pm->ghostLayers(1);
  pm->verify();
  std::size_t ghosts = 0;
  for (PartId p = 0; p < 4; ++p) ghosts += pm->part(p).ghostCount();
  EXPECT_GT(ghosts, 0u);
  pm->unghost();
  pm->verify();
}

TEST_P(ThreadCounts, ParallelAdaptUnderThreadedDelivery) {
  const int threads = GetParam();
  auto gen = meshgen::boxTets(2, 2, 2);
  auto pm = parted(gen, 3, threads);
  dist::refineParted(*pm, adapt::UniformSize(0.3), {.max_passes = 6});
  pm->verify();
  for (PartId p = 0; p < 3; ++p)
    core::verify(pm->part(p).mesh(), {.check_volumes = true});
}

TEST_P(ThreadCounts, BalanceUnderThreadedDelivery) {
  const int threads = GetParam();
  auto gen = meshgen::boxTets(4, 4, 4);
  // Spiked distribution.
  std::vector<PartId> dest(gen.mesh->count(3));
  std::size_t i = 0;
  for (Ent e : gen.mesh->entities(3)) {
    (void)e;
    dest[i] = static_cast<PartId>(i * 8 / dest.size());
    ++i;
  }
  for (auto& d : dest)
    if (d == 3) d = 2;
  auto pm = dist::PartedMesh::distribute(
      *gen.mesh, gen.model.get(), dest,
      dist::PartMap(8, pcu::Machine(2, 4)));
  pm->network().setDeliveryThreads(threads);
  const auto report = parma::balance(*pm, "Rgn", {.tolerance = 0.05});
  pm->verify();
  EXPECT_LE(report.final_imbalance, 1.10);
}

TEST_P(ThreadCounts, SolverUnderThreadedDelivery) {
  const int threads = GetParam();
  auto gen = meshgen::boxTets(3, 3, 3);
  auto pm = parted(gen, 4, threads);
  auto exact = [](const common::Vec3& x) { return x.x + 2.0 * x.y - x.z; };
  const auto report = solver::solvePoisson(
      *pm, [](const common::Vec3&) { return 0.0; }, exact,
      {.tolerance = 1e-11});
  EXPECT_TRUE(report.converged);
  for (PartId p = 0; p < 4; ++p) {
    auto& mesh = pm->part(p).mesh();
    field::Field u(mesh, "u", field::ValueType::Scalar,
                   field::Location::Vertex);
    for (Ent v : mesh.entities(0))
      EXPECT_NEAR(u.getScalar(v), exact(mesh.point(v)), 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadCounts, ::testing::Values(2, 4, 8));

TEST(ThreadedDelivery, SameGlobalCountsAsSequential) {
  adapt::UniformSize size(0.3);
  auto gen_seq = meshgen::boxTets(2, 2, 2);
  auto pm_seq = parted(gen_seq, 4, 0);
  dist::refineParted(*pm_seq, size, {.max_passes = 6});
  auto gen_thr = meshgen::boxTets(2, 2, 2);
  auto pm_thr = parted(gen_thr, 4, 4);
  dist::refineParted(*pm_thr, size, {.max_passes = 6});
  for (int d = 0; d <= 3; ++d)
    EXPECT_EQ(pm_thr->globalCount(d), pm_seq->globalCount(d)) << "dim " << d;
}

}  // namespace
