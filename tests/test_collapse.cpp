#include <gtest/gtest.h>

#include "adapt/collapse.hpp"
#include "adapt/refine.hpp"
#include "adapt/split.hpp"
#include "core/measure.hpp"
#include "core/verify.hpp"
#include "gmi/model.hpp"
#include "meshgen/boxmesh.hpp"

namespace {

using core::Ent;
using core::Topo;

double totalMeasure(const core::Mesh& m) {
  double v = 0.0;
  for (Ent e : m.entities(m.dim())) v += core::measure(m, e);
  return v;
}

/// Find an edge classified on the model region (fully interior).
Ent interiorEdge(const core::Mesh& m) {
  for (Ent e : m.entities(1))
    if (m.classification(e)->dim() == m.dim()) return e;
  return {};
}

TEST(Collapse, SplitThenCollapseRestoresCounts) {
  auto gen = meshgen::boxTets(2, 2, 2);
  auto& m = *gen.mesh;
  const std::size_t counts[4] = {m.count(0), m.count(1), m.count(2),
                                 m.count(3)};
  // Split an interior edge, then collapse one of its halves by removing
  // the midpoint (which is classified on the region, hence removable).
  Ent victim = interiorEdge(m);
  ASSERT_TRUE(victim);
  const Ent mid = adapt::splitEdge(m, victim);
  EXPECT_GT(m.count(3), counts[3]);
  // One of the midpoint's edges leads back to an original vertex.
  Ent half;
  for (Ent e : m.up(mid)) {
    half = e;
    break;
  }
  ASSERT_TRUE(adapt::collapseEdge(m, half, mid));
  core::verify(m, {.check_volumes = true});
  for (int d = 0; d <= 3; ++d)
    EXPECT_EQ(m.count(d), counts[static_cast<std::size_t>(d)]) << "dim " << d;
  EXPECT_NEAR(totalMeasure(m), 1.0, 1e-9);
}

TEST(Collapse, RefusesBoundaryVertexOntoInterior) {
  auto gen = meshgen::boxTets(2, 2, 2);
  auto& m = *gen.mesh;
  // An edge from a surface vertex to an interior vertex: removing the
  // surface vertex would dent the geometry; classification forbids it.
  for (Ent e : m.entities(1)) {
    const auto vs = m.verts(e);
    gmi::Entity* c0 = m.classification(vs[0]);
    gmi::Entity* c1 = m.classification(vs[1]);
    if (c0->dim() < 3 && c1->dim() == 3) {
      EXPECT_FALSE(adapt::canCollapse(m, e, vs[0]));
      break;
    }
  }
}

TEST(Collapse, VolumePreservedOnInteriorCollapse) {
  auto gen = meshgen::boxTets(3, 3, 3);
  auto& m = *gen.mesh;
  const double vol = totalMeasure(m);
  std::size_t done = 0;
  for (Ent e : m.all(1)) {
    if (!m.alive(e)) continue;
    const auto vs = m.verts(e);
    for (Ent v : {vs[0], vs[1]}) {
      if (adapt::collapseEdge(m, e, v)) {
        ++done;
        break;
      }
    }
    if (done >= 5) break;
  }
  EXPECT_GE(done, 1u);
  core::verify(m, {.check_volumes = true});
  EXPECT_NEAR(totalMeasure(m), vol, 1e-9);
}

TEST(Collapse, TriangleMeshCollapse) {
  auto gen = meshgen::boxTris(4, 4);
  auto& m = *gen.mesh;
  const double area = totalMeasure(m);
  // Collapse an interior edge.
  Ent e = interiorEdge(m);
  ASSERT_TRUE(e);
  const auto vs = m.verts(e);
  Ent removable;
  for (Ent v : {vs[0], vs[1]})
    if (m.classification(v) == m.classification(e)) removable = v;
  ASSERT_TRUE(removable);
  EXPECT_TRUE(adapt::collapseEdge(m, e, removable));
  core::verify(m);
  EXPECT_NEAR(totalMeasure(m), area, 1e-12);
}

TEST(Collapse, TagsSurviveRebuild) {
  auto gen = meshgen::boxTets(2, 2, 2);
  auto& m = *gen.mesh;
  auto* t = m.tags().create<int>("part");
  for (Ent e : m.entities(3)) m.tags().setScalar<int>(t, e, 3);
  bool collapsed = false;
  for (Ent e : m.all(1)) {
    if (collapsed) break;
    if (!m.alive(e)) continue;
    const auto vs = m.verts(e);
    for (Ent v : {vs[0], vs[1]})
      if (adapt::collapseEdge(m, e, v)) {
        collapsed = true;
        break;
      }
  }
  ASSERT_TRUE(collapsed);
  for (Ent elem : m.entities(3)) {
    ASSERT_TRUE(t->has(elem));
    EXPECT_EQ(m.tags().getScalar<int>(t, elem), 3);
  }
}

TEST(Coarsen, UndoesRefinement) {
  auto gen = meshgen::boxTets(2, 2, 2);
  auto& m = *gen.mesh;
  const std::size_t original = m.count(3);
  // Refine to a fine target, then coarsen back toward a coarse one.
  adapt::refine(m, adapt::UniformSize(0.25), {.max_passes = 8});
  const std::size_t refined = m.count(3);
  ASSERT_GT(refined, original);
  const auto stats = adapt::coarsen(m, adapt::UniformSize(1.2),
                                    {.ratio = 0.9, .max_passes = 12});
  core::verify(m, {.check_volumes = true});
  EXPECT_GT(stats.collapses, 0u);
  EXPECT_LT(m.count(3), refined);
  EXPECT_NEAR(totalMeasure(m), 1.0, 1e-9);
}

TEST(Coarsen, NoOpOnConformingMesh) {
  auto gen = meshgen::boxTets(3, 3, 3);
  const auto stats =
      adapt::coarsen(*gen.mesh, adapt::UniformSize(0.05), {.ratio = 0.6});
  EXPECT_EQ(stats.collapses, 0u);
}

TEST(Coarsen, BoundaryStaysOnModel) {
  auto gen = meshgen::boxTets(3, 3, 3);
  auto& m = *gen.mesh;
  adapt::refine(m, adapt::UniformSize(0.22), {.max_passes = 6});
  adapt::coarsen(m, adapt::UniformSize(0.8), {.ratio = 0.9, .max_passes = 8});
  core::verify(m, {.check_volumes = true});
  // All boundary-classified vertices still lie on the unit box surface.
  for (Ent v : m.entities(0)) {
    if (m.classification(v)->dim() == 3) continue;
    const auto p = m.point(v);
    const bool on_surface = p.x == 0.0 || p.x == 1.0 || p.y == 0.0 ||
                            p.y == 1.0 || p.z == 0.0 || p.z == 1.0;
    EXPECT_TRUE(on_surface) << "vertex drifted off the model boundary";
  }
  EXPECT_NEAR(totalMeasure(m), 1.0, 1e-9);
}

}  // namespace
