#include <gtest/gtest.h>

#include <set>

#include "core/measure.hpp"
#include "dist/partedmesh.hpp"
#include "meshgen/boxmesh.hpp"
#include "meshgen/workloads.hpp"
#include "part/localsplit.hpp"
#include "part/partition.hpp"

namespace {

using core::Ent;
using dist::PartId;

struct MethodCase {
  part::Method method;
  int nparts;
};

class AllMethods : public ::testing::TestWithParam<MethodCase> {};

TEST_P(AllMethods, BalancedCompleteAssignment) {
  const auto [method, nparts] = GetParam();
  auto gen = meshgen::boxTets(6, 6, 6);  // 1296 tets
  const auto g = part::buildElemGraph(*gen.mesh);
  const auto assign = part::partitionGraph(g, nparts, method);
  ASSERT_EQ(assign.size(), gen.mesh->count(3));
  // Every part non-empty; ids in range.
  std::vector<int> counts(static_cast<std::size_t>(nparts), 0);
  for (PartId p : assign) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, nparts);
    counts[static_cast<std::size_t>(p)]++;
  }
  for (int c : counts) EXPECT_GT(c, 0);
  // Element imbalance within a reasonable bound.
  const double imb = part::imbalanceOf(assign, g.weights, nparts);
  EXPECT_LT(imb, 1.30) << part::methodName(method);
}

TEST_P(AllMethods, DistributesAndVerifies) {
  const auto [method, nparts] = GetParam();
  auto gen = meshgen::boxTets(4, 4, 4);
  const auto assign = part::partition(*gen.mesh, nparts, method);
  auto pm = dist::PartedMesh::distribute(
      *gen.mesh, gen.model.get(), assign,
      dist::PartMap(nparts, pcu::Machine::flat(nparts)));
  pm->verify();
  for (int d = 0; d <= 3; ++d)
    EXPECT_EQ(pm->globalCount(d), gen.mesh->count(d));
}

TEST_P(AllMethods, DeterministicAcrossRuns) {
  const auto [method, nparts] = GetParam();
  auto gen = meshgen::boxTets(3, 3, 3);
  const auto a = part::partition(*gen.mesh, nparts, method);
  const auto b = part::partition(*gen.mesh, nparts, method);
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(
    Methods, AllMethods,
    ::testing::Values(MethodCase{part::Method::RCB, 4},
                      MethodCase{part::Method::RCB, 7},
                      MethodCase{part::Method::RIB, 4},
                      MethodCase{part::Method::GreedyGrow, 6},
                      MethodCase{part::Method::GraphRB, 4},
                      MethodCase{part::Method::GraphRB, 8},
                      MethodCase{part::Method::HypergraphRB, 4},
                      MethodCase{part::Method::HypergraphRB, 8}),
    [](const auto& info) {
      return std::string(part::methodName(info.param.method)) + "_" +
             std::to_string(info.param.nparts);
    });

TEST(ElemGraph, StructureMatchesMesh) {
  auto gen = meshgen::boxTets(2, 2, 2);
  const auto g = part::buildElemGraph(*gen.mesh);
  EXPECT_EQ(g.size(), 48);
  EXPECT_EQ(g.vert_nodes.size(), gen.mesh->count(0));
  // Adjacency symmetric, no self loops, at most 4 face neighbours per tet.
  for (int i = 0; i < g.size(); ++i) {
    EXPECT_LE(g.adj[static_cast<std::size_t>(i)].size(), 4u);
    for (int nb : g.adj[static_cast<std::size_t>(i)]) {
      EXPECT_NE(nb, i);
      const auto& back = g.adj[static_cast<std::size_t>(nb)];
      EXPECT_TRUE(std::find(back.begin(), back.end(), i) != back.end());
    }
    EXPECT_EQ(g.node_verts[static_cast<std::size_t>(i)].size(), 4u);
  }
}

TEST(ElemGraph, WeightsDefaultToOne) {
  auto gen = meshgen::boxTris(3, 3);
  const auto g = part::buildElemGraph(*gen.mesh);
  for (double w : g.weights) EXPECT_EQ(w, 1.0);
}

TEST(PartitionQuality, RefinedBeatsUnrefinedCut) {
  // Graph-refined bisection should cut no more faces than plain RCB.
  auto gen = meshgen::vessel({.circumferential = 6, .axial = 20});
  const auto g = part::buildElemGraph(*gen.mesh);
  const auto rcb = part::partitionGraph(g, 8, part::Method::RCB);
  const auto grb = part::partitionGraph(g, 8, part::Method::GraphRB);
  EXPECT_LT(part::edgeCut(g, grb), part::edgeCut(g, rcb) * 2);
  // Hypergraph refinement optimizes vertex connectivity.
  const auto hg = part::partitionGraph(g, 8, part::Method::HypergraphRB);
  EXPECT_LE(part::hyperedgeCut(g, hg), part::hyperedgeCut(g, rcb));
}

TEST(PartitionQuality, MetricsOnKnownAssignment) {
  auto gen = meshgen::boxTets(2, 1, 1);  // 12 tets
  const auto g = part::buildElemGraph(*gen.mesh);
  // All in one part: zero cuts, imbalance = nparts with empties... use 1.
  std::vector<PartId> all_zero(12, 0);
  EXPECT_EQ(part::edgeCut(g, all_zero), 0u);
  EXPECT_EQ(part::hyperedgeCut(g, all_zero), 0u);
  EXPECT_DOUBLE_EQ(part::imbalanceOf(all_zero, g.weights, 1), 1.0);
  // Split into 2 parts of 6: imbalance 1.0, cuts positive.
  std::vector<PartId> halves(12, 0);
  for (std::size_t i = 6; i < 12; ++i) halves[i] = 1;
  EXPECT_DOUBLE_EQ(part::imbalanceOf(halves, g.weights, 2), 1.0);
  EXPECT_GT(part::edgeCut(g, halves), 0u);
  EXPECT_GT(part::hyperedgeCut(g, halves), 0u);
}

TEST(Partition, EdgeCases) {
  auto gen = meshgen::boxTets(1, 1, 1);
  const auto g = part::buildElemGraph(*gen.mesh);
  // One part: all zeros.
  const auto one = part::partitionGraph(g, 1, part::Method::GraphRB);
  for (PartId p : one) EXPECT_EQ(p, 0);
  // More parts than elements: rejected.
  EXPECT_THROW(part::partitionGraph(g, 7, part::Method::RCB),
               std::invalid_argument);
  EXPECT_THROW(part::partitionGraph(g, 0, part::Method::RCB),
               std::invalid_argument);
  // nparts == elements: every part exactly one element.
  const auto six = part::partitionGraph(g, 6, part::Method::RCB);
  std::set<PartId> distinct(six.begin(), six.end());
  EXPECT_EQ(distinct.size(), 6u);
}

TEST(Partition, TwoDimensionalMeshes) {
  auto gen = meshgen::boxTris(8, 8);
  for (auto method : {part::Method::RCB, part::Method::GraphRB,
                      part::Method::HypergraphRB}) {
    const auto assign = part::partition(*gen.mesh, 4, method);
    const auto g = part::buildElemGraph(*gen.mesh);
    EXPECT_LT(part::imbalanceOf(assign, g.weights, 4), 1.2)
        << part::methodName(method);
  }
}

TEST(Partition, RespectsWeights) {
  auto gen = meshgen::boxTets(4, 4, 4);
  auto g = part::buildElemGraph(*gen.mesh);
  // Make the left half 10x heavier; RCB should put far fewer elements in
  // the parts covering it.
  for (int i = 0; i < g.size(); ++i)
    if (g.centroids[static_cast<std::size_t>(i)].x < 0.5)
      g.weights[static_cast<std::size_t>(i)] = 10.0;
  const auto assign = part::partitionGraph(g, 2, part::Method::RCB);
  const double imb = part::imbalanceOf(assign, g.weights, 2);
  EXPECT_LT(imb, 1.15);
  // Unweighted element counts are therefore very different.
  int c0 = 0, c1 = 0;
  for (PartId p : assign) (p == 0 ? c0 : c1)++;
  EXPECT_GT(std::max(c0, c1), 2 * std::min(c0, c1));
}

TEST(LocalSplit, MultipliesPartsAndVerifies) {
  auto gen = meshgen::boxTets(4, 4, 4);
  const auto assign = part::partition(*gen.mesh, 2, part::Method::RCB);
  auto pm = dist::PartedMesh::distribute(*gen.mesh, gen.model.get(), assign,
                                         dist::PartMap(2, pcu::Machine(2, 1)));
  const auto created = part::localSplit(*pm, 4, part::Method::GraphRB);
  EXPECT_EQ(pm->parts(), 8);
  EXPECT_EQ(created.size(), 6u);
  pm->verify();
  for (int d = 0; d <= 3; ++d)
    EXPECT_EQ(pm->globalCount(d), gen.mesh->count(d));
  // All parts hold elements.
  for (PartId p = 0; p < pm->parts(); ++p)
    EXPECT_GT(pm->part(p).elementCount(), 0u) << "part " << p;
}

TEST(LocalSplit, RejectsFactorOne) {
  auto gen = meshgen::boxTets(2, 2, 2);
  auto pm = dist::PartedMesh::distribute(
      *gen.mesh, gen.model.get(),
      std::vector<PartId>(gen.mesh->count(3), 0),
      dist::PartMap(1, pcu::Machine::flat(1)));
  EXPECT_THROW(part::localSplit(*pm, 1, part::Method::RCB),
               std::invalid_argument);
}

}  // namespace
