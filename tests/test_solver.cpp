#include <gtest/gtest.h>

#include "core/measure.hpp"
#include "dist/partedmesh.hpp"
#include "field/field.hpp"
#include "meshgen/boxmesh.hpp"
#include "part/partition.hpp"
#include "solver/poisson.hpp"

namespace {

using common::Vec3;
using core::Ent;
using dist::PartId;

std::unique_ptr<dist::PartedMesh> parted(meshgen::Generated& gen, int nparts) {
  const auto assign =
      part::partition(*gen.mesh, nparts, part::Method::GraphRB);
  return dist::PartedMesh::distribute(
      *gen.mesh, gen.model.get(), assign,
      dist::PartMap(nparts, pcu::Machine::flat(nparts)));
}

/// Max |u - exact| over all parts' vertices.
double maxError(dist::PartedMesh& pm,
                const std::function<double(const Vec3&)>& exact) {
  double err = 0.0;
  for (PartId p = 0; p < pm.parts(); ++p) {
    auto& mesh = pm.part(p).mesh();
    field::Field u(mesh, "u", field::ValueType::Scalar,
                   field::Location::Vertex);
    for (Ent v : mesh.entities(0))
      err = std::max(err, std::fabs(u.getScalar(v) - exact(mesh.point(v))));
  }
  return err;
}

class PoissonParts : public ::testing::TestWithParam<int> {};

TEST_P(PoissonParts, LinearSolutionIsExact) {
  // Harmonic linear field: P1 elements represent it exactly, so the solver
  // must reproduce it to solver tolerance for any partition.
  const int nparts = GetParam();
  auto gen = meshgen::boxTets(4, 4, 4);
  auto pm = parted(gen, nparts);
  auto exact = [](const Vec3& x) { return 1.0 + 2.0 * x.x - x.y + 0.5 * x.z; };
  const auto report = solver::solvePoisson(
      *pm, [](const Vec3&) { return 0.0; }, exact, {.tolerance = 1e-12});
  EXPECT_TRUE(report.converged);
  EXPECT_LT(maxError(*pm, exact), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(PartCounts, PoissonParts, ::testing::Values(1, 2, 4, 8));

TEST(Poisson, SolutionConsistentAcrossCopies) {
  auto gen = meshgen::boxTets(4, 4, 4);
  auto pm = parted(gen, 4);
  solver::solvePoisson(
      *pm, [](const Vec3&) { return 1.0; }, [](const Vec3&) { return 0.0; },
      {.tolerance = 1e-11});
  for (PartId p = 0; p < pm->parts(); ++p) {
    auto& mesh = pm->part(p).mesh();
    field::Field u(mesh, "u", field::ValueType::Scalar,
                   field::Location::Vertex);
    for (Ent v : mesh.entities(0)) {
      const dist::Remote* r = pm->part(p).remote(v);
      if (r == nullptr) continue;
      for (const dist::Copy& c : r->copies) {
        field::Field uq(pm->part(c.part).mesh(), "u",
                        field::ValueType::Scalar, field::Location::Vertex);
        EXPECT_NEAR(uq.getScalar(c.ent), u.getScalar(v), 1e-12);
      }
    }
  }
}

TEST(Poisson, PartitionIndependence) {
  // The discrete solution is a property of the mesh, not the partition:
  // different part counts must agree at matching locations.
  auto gen1 = meshgen::boxTets(3, 3, 3);
  auto gen2 = meshgen::boxTets(3, 3, 3);
  auto pm1 = parted(gen1, 2);
  auto pm2 = parted(gen2, 7);
  auto f = [](const Vec3& x) { return x.x + 1.0; };
  auto g = [](const Vec3& x) { return x.y; };
  solver::solvePoisson(*pm1, f, g, {.tolerance = 1e-12});
  solver::solvePoisson(*pm2, f, g, {.tolerance = 1e-12});
  // Collect position -> value from both and compare.
  std::map<std::tuple<double, double, double>, double> sol1;
  for (PartId p = 0; p < pm1->parts(); ++p) {
    auto& mesh = pm1->part(p).mesh();
    field::Field u(mesh, "u", field::ValueType::Scalar,
                   field::Location::Vertex);
    for (Ent v : mesh.entities(0)) {
      const auto x = mesh.point(v);
      sol1[{x.x, x.y, x.z}] = u.getScalar(v);
    }
  }
  for (PartId p = 0; p < pm2->parts(); ++p) {
    auto& mesh = pm2->part(p).mesh();
    field::Field u(mesh, "u", field::ValueType::Scalar,
                   field::Location::Vertex);
    for (Ent v : mesh.entities(0)) {
      const auto x = mesh.point(v);
      EXPECT_NEAR(u.getScalar(v), sol1.at({x.x, x.y, x.z}), 1e-8);
    }
  }
}

TEST(Poisson, ManufacturedSolutionConverges) {
  // u = sin(pi x) sin(pi y) sin(pi z), f = 3 pi^2 u, u = 0 on the boundary.
  auto exact = [](const Vec3& x) {
    return std::sin(M_PI * x.x) * std::sin(M_PI * x.y) * std::sin(M_PI * x.z);
  };
  auto f = [&](const Vec3& x) { return 3.0 * M_PI * M_PI * exact(x); };
  auto zero = [](const Vec3&) { return 0.0; };
  double prev_err = 1e300;
  for (int n : {4, 8}) {
    auto gen = meshgen::boxTets(n, n, n);
    auto pm = parted(gen, 4);
    const auto report =
        solver::solvePoisson(*pm, f, zero, {.max_iterations = 2000,
                                            .tolerance = 1e-10});
    EXPECT_TRUE(report.converged);
    const double err = maxError(*pm, exact);
    EXPECT_LT(err, prev_err * 0.45);  // ~2nd order: 4x fewer error per halving
    prev_err = err;
  }
  EXPECT_LT(prev_err, 0.03);
}

TEST(Poisson, TwoDimensionalMesh) {
  auto gen = meshgen::boxTris(8, 8);
  auto pm = parted(gen, 3);
  auto exact = [](const Vec3& x) { return 2.0 * x.x + 3.0 * x.y; };
  const auto report = solver::solvePoisson(
      *pm, [](const Vec3&) { return 0.0; }, exact, {.tolerance = 1e-12});
  EXPECT_TRUE(report.converged);
  EXPECT_LT(maxError(*pm, exact), 1e-9);
}

TEST(Poisson, RefusesGhostedMesh) {
  auto gen = meshgen::boxTets(2, 2, 2);
  auto pm = parted(gen, 2);
  pm->ghostLayers(1);
  EXPECT_THROW(solver::solvePoisson(
                   *pm, [](const Vec3&) { return 0.0; },
                   [](const Vec3&) { return 0.0; }),
               std::logic_error);
}

}  // namespace
