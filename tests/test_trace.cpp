/// \file test_trace.cpp
/// \brief Validation harness for the pcu::trace observability subsystem:
/// multi-rank workloads must produce consistent traces (every begin has a
/// matching end, per-rank-pair send bytes equal recv bytes, rank count and
/// phase names round-trip through the Chrome trace JSON).

#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "dist/partedmesh.hpp"
#include "meshgen/boxmesh.hpp"
#include "parma/balance.hpp"
#include "part/partition.hpp"
#include "pcu/phased.hpp"
#include "pcu/runtime.hpp"
#include "pcu/stats.hpp"
#include "pcu/trace.hpp"

namespace {

/// Enable tracing for one test body, restoring the disabled state after.
struct TraceSession {
  TraceSession() {
    pcu::trace::clear();
    pcu::trace::setEnabled(true);
  }
  ~TraceSession() {
    pcu::trace::setEnabled(false);
    pcu::trace::clear();
  }
};

/// --- a minimal JSON reader (enough to validate a Chrome trace) ----------

struct Json {
  enum Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Json> array;
  std::map<std::string, Json> object;

  [[nodiscard]] const Json* find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text)
      : p_(text.data()), end_(text.data() + text.size()) {}

  /// Parses the whole document; ok() reports success.
  Json parse() {
    Json v = value();
    skipWs();
    if (p_ != end_) ok_ = false;
    return v;
  }
  [[nodiscard]] bool ok() const { return ok_; }

 private:
  void skipWs() {
    while (p_ != end_ && std::isspace(static_cast<unsigned char>(*p_))) ++p_;
  }
  bool consume(char c) {
    skipWs();
    if (p_ == end_ || *p_ != c) return false;
    ++p_;
    return true;
  }
  Json value() {
    skipWs();
    if (p_ == end_) return fail();
    switch (*p_) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't':
      case 'f': return boolean();
      case 'n': return null();
      default: return number();
    }
  }
  Json fail() {
    ok_ = false;
    p_ = end_;
    return Json{};
  }
  Json object() {
    Json v;
    v.type = Json::kObject;
    ++p_;  // '{'
    skipWs();
    if (consume('}')) return v;
    for (;;) {
      Json key = string();
      if (!ok_ || !consume(':')) return fail();
      v.object.emplace(key.str, value());
      if (!ok_) return fail();
      if (consume('}')) return v;
      if (!consume(',')) return fail();
      skipWs();
    }
  }
  Json array() {
    Json v;
    v.type = Json::kArray;
    ++p_;  // '['
    if (consume(']')) return v;
    for (;;) {
      v.array.push_back(value());
      if (!ok_) return fail();
      if (consume(']')) return v;
      if (!consume(',')) return fail();
    }
  }
  Json string() {
    skipWs();
    if (p_ == end_ || *p_ != '"') return fail();
    ++p_;
    Json v;
    v.type = Json::kString;
    while (p_ != end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ == end_) return fail();
        switch (*p_) {
          case 'n': v.str += '\n'; break;
          case 't': v.str += '\t'; break;
          case 'r': v.str += '\r'; break;
          case 'u':
            if (end_ - p_ < 5) return fail();
            p_ += 4;  // keep validation simple: skip the code point
            v.str += '?';
            break;
          default: v.str += *p_;
        }
        ++p_;
      } else {
        v.str += *p_++;
      }
    }
    if (p_ == end_) return fail();
    ++p_;  // closing quote
    return v;
  }
  Json boolean() {
    Json v;
    v.type = Json::kBool;
    if (end_ - p_ >= 4 && std::strncmp(p_, "true", 4) == 0) {
      v.boolean = true;
      p_ += 4;
      return v;
    }
    if (end_ - p_ >= 5 && std::strncmp(p_, "false", 5) == 0) {
      v.boolean = false;
      p_ += 5;
      return v;
    }
    return fail();
  }
  Json null() {
    if (end_ - p_ >= 4 && std::strncmp(p_, "null", 4) == 0) {
      p_ += 4;
      return Json{};
    }
    return fail();
  }
  Json number() {
    const char* start = p_;
    while (p_ != end_ &&
           (std::isdigit(static_cast<unsigned char>(*p_)) || *p_ == '-' ||
            *p_ == '+' || *p_ == '.' || *p_ == 'e' || *p_ == 'E'))
      ++p_;
    if (p_ == start) return fail();
    Json v;
    v.type = Json::kNumber;
    v.number = std::stod(std::string(start, p_));
    return v;
  }

  const char* p_;
  const char* end_;
  bool ok_ = true;
};

/// --- workloads -----------------------------------------------------------

/// Every rank scopes some work, exchanges with its ring neighbours, and
/// reduces — the traffic pattern of a mesh boundary update.
void ringWorkload(int ranks, int rounds) {
  pcu::run(ranks, [&](pcu::Comm& c) {
    pcu::trace::Scope s("test:rank-work");
    for (int round = 0; round < rounds; ++round) {
      std::vector<std::pair<int, pcu::OutBuffer>> out;
      for (int d : {(c.rank() + 1) % ranks, (c.rank() + ranks - 1) % ranks}) {
        pcu::OutBuffer b;
        b.pack<int>(c.rank());
        std::vector<double> payload(16 + 8 * static_cast<std::size_t>(c.rank()),
                                    1.0);
        b.packVector(payload);
        out.emplace_back(d, std::move(b));
      }
      auto msgs = pcu::phasedExchange(c, std::move(out));
      ASSERT_EQ(msgs.size(), 2u);
      (void)c.allreduceSum<long>(c.rank());
    }
  });
}

std::unique_ptr<dist::PartedMesh> makeParted(meshgen::Generated& gen,
                                             int nparts) {
  const auto assign = part::partition(*gen.mesh, nparts, part::Method::RCB);
  return dist::PartedMesh::distribute(
      *gen.mesh, gen.model.get(), assign,
      dist::PartMap(nparts, pcu::Machine(2, nparts / 2)));
}

/// Begin/end pairing with name agreement, per recording thread; returns
/// the phase names seen, attributed rank -> names.
std::map<int, std::set<std::string>> checkScopePairing(
    const pcu::trace::Merged& merged) {
  std::map<int, std::set<std::string>> by_rank;
  for (const auto& t : merged.threads) {
    std::vector<const pcu::trace::Event*> stack;
    for (const auto& e : t.events) {
      if (e.kind == pcu::trace::Kind::kBegin) {
        stack.push_back(&e);
      } else if (e.kind == pcu::trace::Kind::kEnd) {
        if (stack.empty()) {
          ADD_FAILURE() << "end without begin: " << e.name << " (thread "
                        << t.tid << ")";
          continue;
        }
        EXPECT_STREQ(stack.back()->name, e.name)
            << "interleaved scopes in thread " << t.tid;
        EXPECT_EQ(stack.back()->rank, e.rank) << e.name;
        EXPECT_LE(stack.back()->ts, e.ts) << e.name;
        by_rank[e.rank].insert(e.name);
        stack.pop_back();
      }
    }
    EXPECT_TRUE(stack.empty())
        << "unclosed scope " << stack.size() << " in thread " << t.tid
        << " (first: " << (stack.empty() ? "" : stack.front()->name) << ")";
  }
  return by_rank;
}

/// Per (channel, src, dst): bytes and message counts recorded by the
/// sender must equal those recorded by the receiver.
void checkPairBalance(const pcu::TraceReport& report) {
  for (const auto& p : report.pairs) {
    EXPECT_EQ(p.send_messages, p.recv_messages)
        << p.channel << " " << p.src << "->" << p.dst;
    EXPECT_EQ(p.send_bytes, p.recv_bytes)
        << p.channel << " " << p.src << "->" << p.dst;
  }
}

/// --- tests ---------------------------------------------------------------

TEST(Trace, DisabledRecordsNothingAndScopesAreFree) {
  pcu::trace::clear();
  pcu::trace::setEnabled(false);
  ringWorkload(4, 2);
  { pcu::trace::Scope s("test:disabled"); }
  EXPECT_EQ(pcu::trace::snapshot().totalEvents(), 0u);
}

TEST(Trace, RankWorkloadScopesPairAndCoverEveryRank) {
  TraceSession session;
  const int ranks = 8;
  ringWorkload(ranks, 3);
  const auto merged = pcu::trace::snapshot();
  ASSERT_GT(merged.totalEvents(), 0u);
  const auto by_rank = checkScopePairing(merged);
  for (int r = 0; r < ranks; ++r) {
    ASSERT_TRUE(by_rank.count(r)) << "no scopes from rank " << r;
    EXPECT_TRUE(by_rank.at(r).count("test:rank-work")) << "rank " << r;
    EXPECT_TRUE(by_rank.at(r).count("pcu:phasedExchange")) << "rank " << r;
  }
}

TEST(Trace, SendRecvBytesBalancePerRankPair) {
  TraceSession session;
  ringWorkload(8, 3);
  const auto report = pcu::buildTraceReport();
  ASSERT_FALSE(report.pairs.empty());
  checkPairBalance(report);
  // The ring pattern sends to both neighbours every round: every adjacent
  // ordered pair of the "pcu" channel must appear.
  std::set<std::pair<int, int>> seen;
  for (const auto& p : report.pairs)
    if (p.channel == "pcu") seen.emplace(p.src, p.dst);
  for (int r = 0; r < 8; ++r) {
    EXPECT_TRUE(seen.count({r, (r + 1) % 8})) << r;
    EXPECT_TRUE(seen.count({r, (r + 7) % 8})) << r;
  }
  // Channel totals are self-consistent with the pair totals.
  for (const auto& c : report.channels) {
    std::uint64_t bytes = 0;
    for (const auto& p : report.pairs)
      if (p.channel == c.channel) bytes += p.send_bytes;
    EXPECT_EQ(bytes, c.send_bytes) << c.channel;
    EXPECT_EQ(c.send_bytes, c.recv_bytes) << c.channel;
    EXPECT_EQ(c.send_messages, c.recv_messages) << c.channel;
  }
}

TEST(Trace, DistWorkloadTracesMigrationGhostingAndBalance) {
  TraceSession session;
  auto gen = meshgen::boxTets(4, 4, 4);
  const int nparts = 4;
  auto pm = makeParted(gen, nparts);

  // A boundary-shift migration, one ghost/unghost cycle, one ParMA round.
  dist::MigrationPlan plan(static_cast<std::size_t>(nparts));
  int i = 0;
  for (core::Ent e : pm->part(0).elements())
    if (i++ % 4 == 0) plan[0][e] = 1;
  pm->migrate(plan);
  pm->ghostLayers(1);
  pm->syncGhostTags();
  pm->unghost();
  parma::balance(*pm, "Rgn", {.tolerance = 0.05, .max_rounds = 1});
  pm->verify();

  const auto merged = pcu::trace::snapshot();
  const auto by_rank = checkScopePairing(merged);
  // Driver-phase scopes (rank -1): the migration sub-phases, ghosting, and
  // the ParMA iteration structure.
  ASSERT_TRUE(by_rank.count(-1));
  const auto& driver = by_rank.at(-1);
  for (const char* phase :
       {"dist:migrate", "migrate:A0-participants", "migrate:A-residence",
        "migrate:B-create", "migrate:C-finalize", "migrate:D-delete",
        "dist:ghostLayers", "dist:syncGhostTags", "dist:unghost",
        "parma:balance", "parma:balance-round", "parma:improve"})
    EXPECT_TRUE(driver.count(phase)) << "missing phase " << phase;
  // Per-part delivery scopes: every part received something.
  for (int p = 0; p < nparts; ++p) {
    ASSERT_TRUE(by_rank.count(p)) << "no delivery events for part " << p;
    EXPECT_TRUE(by_rank.at(p).count("net:deliver")) << "part " << p;
  }
  // Message volume on the "net" channel balances per part pair.
  const auto report = pcu::buildTraceReport(merged);
  checkPairBalance(report);
  bool has_net = false;
  for (const auto& c : report.channels)
    if (c.channel == "net") {
      has_net = true;
      EXPECT_GT(c.send_bytes, 0u);
    }
  EXPECT_TRUE(has_net);
}

TEST(Trace, ChromeJsonIsValidAndRoundTripsRanksAndPhases) {
  TraceSession session;
  const int ranks = 6;
  ringWorkload(ranks, 2);
  const auto merged = pcu::trace::snapshot();

  std::ostringstream os;
  pcu::trace::writeChromeTrace(os, merged);
  const std::string text = os.str();

  JsonParser parser(text);
  const Json doc = parser.parse();
  ASSERT_TRUE(parser.ok()) << "Chrome trace is not valid JSON";
  ASSERT_EQ(doc.type, Json::kObject);
  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->type, Json::kArray);
  ASSERT_GT(events->array.size(), 0u);

  std::set<int> phase_tids;
  std::set<std::string> names;
  std::size_t begins = 0, ends = 0;
  for (const Json& e : events->array) {
    ASSERT_EQ(e.type, Json::kObject);
    const Json* name = e.find("name");
    const Json* ph = e.find("ph");
    ASSERT_NE(name, nullptr);
    ASSERT_NE(ph, nullptr);
    ASSERT_EQ(ph->type, Json::kString);
    if (ph->str == "M") continue;  // metadata
    const Json* ts = e.find("ts");
    const Json* pid = e.find("pid");
    const Json* tid = e.find("tid");
    ASSERT_NE(ts, nullptr);
    ASSERT_NE(pid, nullptr);
    ASSERT_NE(tid, nullptr);
    EXPECT_GE(ts->number, 0.0);
    names.insert(name->str);
    if (ph->str == "B" || ph->str == "E") {
      phase_tids.insert(static_cast<int>(tid->number));
      if (ph->str == "B")
        ++begins;
      else
        ++ends;
    }
  }
  EXPECT_EQ(begins, ends);
  // Rank count round-trips: one trace lane per rank, no extras below the
  // driver range.
  std::set<int> expected;
  for (int r = 0; r < ranks; ++r) expected.insert(r);
  EXPECT_EQ(phase_tids, expected);
  EXPECT_TRUE(names.count("test:rank-work"));
  EXPECT_TRUE(names.count("pcu:phasedExchange"));
  EXPECT_TRUE(names.count("pcu"));  // message records survive as instants
}

TEST(Trace, ReportAggregatesMinMaxMeanImbalance) {
  using pcu::trace::Event;
  using pcu::trace::Kind;
  pcu::trace::Merged merged;
  // Rank 0 spends 1s, rank 1 spends 3s in "phase"; rank 1 twice.
  pcu::trace::ThreadEvents t0;
  t0.tid = 0;
  t0.events = {Event{Kind::kBegin, 0, -1, 0, 10.0, "phase"},
               Event{Kind::kEnd, 0, -1, 0, 11.0, "phase"},
               Event{Kind::kSend, 0, 1, 256, 11.5, "chan"}};
  pcu::trace::ThreadEvents t1;
  t1.tid = 1;
  t1.events = {Event{Kind::kBegin, 1, -1, 0, 10.0, "phase"},
               Event{Kind::kEnd, 1, -1, 0, 12.0, "phase"},
               Event{Kind::kBegin, 1, -1, 0, 13.0, "phase"},
               Event{Kind::kEnd, 1, -1, 0, 14.0, "phase"},
               Event{Kind::kRecv, 1, 0, 256, 14.5, "chan"}};
  merged.threads = {t0, t1};

  const auto report = pcu::buildTraceReport(merged);
  ASSERT_EQ(report.phases.size(), 1u);
  const auto& p = report.phases.front();
  EXPECT_EQ(p.name, "phase");
  EXPECT_EQ(p.ranks, 2);
  EXPECT_EQ(p.calls, 3u);
  EXPECT_DOUBLE_EQ(p.min_seconds, 1.0);
  EXPECT_DOUBLE_EQ(p.max_seconds, 3.0);
  EXPECT_DOUBLE_EQ(p.mean_seconds, 2.0);
  EXPECT_DOUBLE_EQ(p.imbalance, 1.5);

  ASSERT_EQ(report.pairs.size(), 1u);
  EXPECT_EQ(report.pairs[0].src, 0);
  EXPECT_EQ(report.pairs[0].dst, 1);
  EXPECT_EQ(report.pairs[0].send_bytes, 256u);
  EXPECT_EQ(report.pairs[0].recv_bytes, 256u);

  // And the printer runs without tripping anything.
  std::ostringstream os;
  pcu::printTraceReport(report, os);
  EXPECT_NE(os.str().find("phase"), std::string::npos);
  EXPECT_NE(os.str().find("chan"), std::string::npos);
}

TEST(Trace, ClearDropsEventsAndInternedNamesAreStable) {
  TraceSession session;
  const char* a = pcu::trace::intern("dynamic-phase-1");
  const char* b = pcu::trace::intern("dynamic-phase-1");
  EXPECT_EQ(a, b);  // same pooled pointer
  {
    pcu::trace::Scope s(a);
  }
  EXPECT_GT(pcu::trace::snapshot().totalEvents(), 0u);
  pcu::trace::clear();
  EXPECT_EQ(pcu::trace::snapshot().totalEvents(), 0u);
  EXPECT_STREQ(a, "dynamic-phase-1");
}

TEST(Trace, ThreadedDeliveryStillPairsAndBalances) {
  TraceSession session;
  auto gen = meshgen::boxTets(4, 4, 4);
  auto pm = makeParted(gen, 4);
  pm->network().setDeliveryThreads(4);
  dist::MigrationPlan plan(4);
  int i = 0;
  for (core::Ent e : pm->part(0).elements())
    if (i++ % 3 == 0) plan[0][e] = (i % 2) ? 1 : 2;
  pm->migrate(plan);
  pm->verify();
  const auto merged = pcu::trace::snapshot();
  (void)checkScopePairing(merged);
  checkPairBalance(pcu::buildTraceReport(merged));
}

}  // namespace
