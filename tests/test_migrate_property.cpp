/// \file test_migrate_property.cpp
/// \brief Property test for migration: many rounds of random plans must
/// preserve the global entity counts per dimension, unique ownership of
/// every shared entity, remote-copy symmetry, and the total mesh measure.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "common/rng.hpp"
#include "core/measure.hpp"
#include "core/verify.hpp"
#include "dist/partedmesh.hpp"
#include "meshgen/boxmesh.hpp"
#include "part/partition.hpp"

namespace {

using core::Ent;
using dist::PartId;

double globalMeasure(dist::PartedMesh& pm) {
  double v = 0.0;
  for (PartId p = 0; p < pm.parts(); ++p)
    for (Ent e : pm.part(p).elements())
      v += core::measure(pm.part(p).mesh(), e);
  return v;
}

/// Explicit re-statement of the paper's part-boundary invariants, checked
/// independently of PartedMesh::verify():
///  - every shared entity names exactly one owner, agreed by all copies;
///  - if part p lists a copy (q, eq), then part q lists (p, ep) back, with
///    the same owner.
void checkSharedInvariants(dist::PartedMesh& pm) {
  for (PartId p = 0; p < pm.parts(); ++p) {
    const auto& part = pm.part(p);
    for (const auto& [e, r] : part.remotes()) {
      // Owner is one of the holders.
      bool owner_is_holder = r.owner == p;
      for (const dist::Copy& c : r.copies)
        owner_is_holder = owner_is_holder || c.part == r.owner;
      ASSERT_TRUE(owner_is_holder)
          << "part " << p << ": owner " << r.owner << " holds no copy";
      for (const dist::Copy& c : r.copies) {
        ASSERT_NE(c.part, p) << "self copy on part " << p;
        const dist::Remote* back = pm.part(c.part).remote(c.ent);
        ASSERT_NE(back, nullptr)
            << "part " << c.part << " missing back-reference to part " << p;
        ASSERT_EQ(back->owner, r.owner) << "owner disagreement between parts "
                                        << p << " and " << c.part;
        const bool symmetric = std::any_of(
            back->copies.begin(), back->copies.end(),
            [&](const dist::Copy& bc) { return bc.part == p && bc.ent == e; });
        ASSERT_TRUE(symmetric) << "copy asymmetry between parts " << p
                               << " and " << c.part;
      }
    }
  }
}

struct PropertyCase {
  bool three_d;
  std::uint64_t seed;
};

class MigrateProperty : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(MigrateProperty, RandomRoundsPreserveAllInvariants) {
  const auto [three_d, seed] = GetParam();
  common::Rng rng(seed);
  auto gen = three_d ? meshgen::boxTets(4, 4, 4) : meshgen::boxTris(6, 6);
  const int dim = gen.mesh->dim();
  const int nparts = three_d ? 5 : 4;
  const auto assign = part::partition(*gen.mesh, nparts, part::Method::RCB);
  auto pm = dist::PartedMesh::distribute(
      *gen.mesh, gen.model.get(), assign,
      dist::PartMap(nparts, pcu::Machine::flat(nparts)));

  std::vector<std::size_t> counts(static_cast<std::size_t>(dim) + 1);
  for (int d = 0; d <= dim; ++d)
    counts[static_cast<std::size_t>(d)] = pm->globalCount(d);
  const double volume = globalMeasure(*pm);

  const int rounds = 20;
  for (int round = 0; round < rounds; ++round) {
    // Each element moves with probability 0.15 to a uniformly random part.
    dist::MigrationPlan plan(static_cast<std::size_t>(nparts));
    std::size_t moved = 0;
    for (PartId p = 0; p < nparts; ++p) {
      for (Ent e : pm->part(p).elements()) {
        if (rng.uniform() >= 0.15) continue;
        const auto dest =
            static_cast<PartId>(rng.below(static_cast<std::uint64_t>(nparts)));
        if (dest == p) continue;
        plan[static_cast<std::size_t>(p)][e] = dest;
        ++moved;
      }
    }
    pm->migrate(plan);

    pm->verify();
    checkSharedInvariants(*pm);
    for (int d = 0; d <= dim; ++d)
      EXPECT_EQ(pm->globalCount(d), counts[static_cast<std::size_t>(d)])
          << "dim " << d << " after round " << round << " (moved " << moved
          << ")";
    EXPECT_NEAR(globalMeasure(*pm), volume, 1e-9) << "round " << round;
    for (PartId p = 0; p < nparts; ++p)
      core::verify(pm->part(p).mesh(), {.check_volumes = true});
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MigrateProperty,
    ::testing::Values(PropertyCase{true, 11}, PropertyCase{true, 5150},
                      PropertyCase{false, 23}, PropertyCase{false, 77}),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      return std::string(info.param.three_d ? "tets" : "tris") + "_seed" +
             std::to_string(info.param.seed);
    });

/// Degenerate plans: empty plan and everything-to-one-part both preserve
/// the invariants (the paper's migration must tolerate any valid plan).
TEST(MigrateProperty, EmptyAndFunnelPlans) {
  auto gen = meshgen::boxTets(3, 3, 3);
  const auto assign = part::partition(*gen.mesh, 4, part::Method::RCB);
  auto pm = dist::PartedMesh::distribute(
      *gen.mesh, gen.model.get(), assign,
      dist::PartMap(4, pcu::Machine::flat(4)));
  const double volume = globalMeasure(*pm);

  pm->migrate(dist::MigrationPlan(4));
  pm->verify();
  checkSharedInvariants(*pm);

  dist::MigrationPlan funnel(4);
  for (PartId p = 1; p < 4; ++p)
    for (Ent e : pm->part(p).elements())
      funnel[static_cast<std::size_t>(p)][e] = 0;
  pm->migrate(funnel);
  pm->verify();
  checkSharedInvariants(*pm);
  EXPECT_EQ(pm->part(0).elements().size(), gen.mesh->count(3));
  EXPECT_NEAR(globalMeasure(*pm), volume, 1e-9);
}

}  // namespace
