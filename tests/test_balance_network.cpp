#include <gtest/gtest.h>

#include "core/measure.hpp"
#include "dist/network.hpp"
#include "meshgen/boxmesh.hpp"
#include "parma/balance.hpp"
#include "parma/metrics.hpp"
#include "part/partition.hpp"
#include "repro/table.hpp"
#include "repro/workloads.hpp"

namespace {

using core::Ent;
using dist::PartId;

TEST(Network, SendDeliverRoundTrip) {
  dist::Network net(dist::PartMap(3, pcu::Machine::flat(3)));
  pcu::OutBuffer b;
  b.pack<int>(42);
  net.send(0, 2, std::move(b));
  EXPECT_TRUE(net.pending());
  int received = 0;
  net.deliverAll([&](PartId to, PartId from, pcu::InBuffer body) {
    EXPECT_EQ(to, 2);
    EXPECT_EQ(from, 0);
    EXPECT_EQ(body.unpack<int>(), 42);
    ++received;
  });
  EXPECT_EQ(received, 1);
  EXPECT_FALSE(net.pending());
}

TEST(Network, HandlerPostsGoToNextRound) {
  dist::Network net(dist::PartMap(2, pcu::Machine::flat(2)));
  pcu::OutBuffer b;
  b.pack<int>(1);
  net.send(0, 1, std::move(b));
  int first_round = 0;
  net.deliverAll([&](PartId, PartId, pcu::InBuffer body) {
    ++first_round;
    const int v = body.unpack<int>();
    if (v == 1) {
      pcu::OutBuffer reply;
      reply.pack<int>(2);
      net.send(1, 0, std::move(reply));
    }
  });
  EXPECT_EQ(first_round, 1);
  EXPECT_TRUE(net.pending());  // the reply waits for the next superstep
  int second_round = 0;
  net.deliverAll([&](PartId, PartId, pcu::InBuffer body) {
    EXPECT_EQ(body.unpack<int>(), 2);
    ++second_round;
  });
  EXPECT_EQ(second_round, 1);
}

TEST(Network, DeterministicDeliveryOrder) {
  dist::Network net(dist::PartMap(2, pcu::Machine::flat(2)));
  for (int i = 0; i < 5; ++i) {
    pcu::OutBuffer b;
    b.pack<int>(i);
    net.send(0, 1, std::move(b));
  }
  std::vector<int> order;
  net.deliverAll([&](PartId, PartId, pcu::InBuffer body) {
    order.push_back(body.unpack<int>());
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

/// Run one fixed traffic pattern through a Network: `per_pair` payloads for
/// each (from, to) pair of a 2-node/4-part machine, crossing both on-node
/// and off-node edges. Returns the stats after delivery.
pcu::CommStats runPattern(bool coalesce, int per_pair,
                          std::size_t* delivered = nullptr) {
  dist::Network net(dist::PartMap(4, pcu::Machine(2, 2)));
  net.setCoalescing(coalesce);
  for (PartId from = 0; from < 4; ++from)
    for (PartId to = 0; to < 4; ++to) {
      if (to == from) continue;
      for (int i = 0; i < per_pair; ++i) {
        pcu::OutBuffer b;
        b.pack<int>(i);
        b.pack<int>(static_cast<int>(from) * 100 + static_cast<int>(to));
        net.send(from, to, std::move(b));
      }
    }
  std::size_t count = 0;
  net.deliverAll([&](PartId to, PartId from, pcu::InBuffer body) {
    EXPECT_LT(body.unpack<int>(), per_pair);
    EXPECT_EQ(body.unpack<int>(),
              static_cast<int>(from) * 100 + static_cast<int>(to));
    ++count;
  });
  if (delivered) *delivered = count;
  return net.stats();
}

TEST(Network, StatsSplitLogicalFromPhysicalAndCoalescingPreservesTotals) {
  const int per_pair = 8;
  std::size_t delivered_on = 0, delivered_off = 0;
  const auto with = runPattern(true, per_pair, &delivered_on);
  const auto without = runPattern(false, per_pair, &delivered_off);
  // Same logical traffic delivered either way.
  EXPECT_EQ(delivered_on, delivered_off);
  EXPECT_EQ(delivered_on, static_cast<std::size_t>(4 * 3 * per_pair));
  // Logical counters and the on/off-node byte split are invariant under
  // coalescing; only the physical counters may differ.
  EXPECT_EQ(with.messages_sent, without.messages_sent);
  EXPECT_EQ(with.bytes_sent, without.bytes_sent);
  EXPECT_EQ(with.on_node_messages, without.on_node_messages);
  EXPECT_EQ(with.on_node_bytes, without.on_node_bytes);
  EXPECT_EQ(with.off_node_messages, without.off_node_messages);
  EXPECT_EQ(with.off_node_bytes, without.off_node_bytes);
  // Physical never exceeds logical; coalescing collapses each pair's
  // `per_pair` payloads into one segment, uncoalesced ships one each.
  EXPECT_LE(with.physical_messages, with.messages_sent);
  EXPECT_LE(without.physical_messages, without.messages_sent);
  EXPECT_EQ(with.physical_messages, 4u * 3u);
  EXPECT_EQ(without.physical_messages, without.messages_sent);
}

TEST(PartMap, ExplicitRanksOverrideBlockLayout) {
  dist::PartMap map(4, pcu::Machine(2, 2));
  EXPECT_EQ(map.rankOf(0), 0);
  EXPECT_EQ(map.rankOf(3), 3);
  EXPECT_TRUE(map.sameNode(0, 1));
  EXPECT_FALSE(map.sameNode(1, 2));
  map.setPartRanks({3, 2, 1, 0});
  EXPECT_EQ(map.rankOf(0), 3);
  EXPECT_TRUE(map.sameNode(0, 1));   // ranks 3, 2: node 1
  EXPECT_FALSE(map.sameNode(1, 2));  // ranks 2, 1
}

TEST(Balance, FacadeFixesAdaptationSpike) {
  auto gen = meshgen::boxTets(6, 6, 6);
  // Fold several stripes to create adjacent spikes + overload.
  std::vector<PartId> dest(gen.mesh->count(3));
  std::vector<std::pair<double, std::size_t>> order;
  std::size_t i = 0;
  for (Ent e : gen.mesh->entities(3))
    order.emplace_back(core::centroid(*gen.mesh, e).x, i++);
  std::sort(order.begin(), order.end());
  for (std::size_t k = 0; k < order.size(); ++k)
    dest[order[k].second] = static_cast<PartId>(k * 16 / order.size());
  for (auto& d : dest)
    if (d >= 5 && d < 11 && d % 2 == 1) d -= 1;
  auto pm = dist::PartedMesh::distribute(
      *gen.mesh, gen.model.get(), dest,
      dist::PartMap(16, pcu::Machine::flat(16)));
  const auto report = parma::balance(*pm, "Rgn", {.tolerance = 0.05});
  pm->verify();
  EXPECT_TRUE(report.converged);
  EXPECT_LE(report.final_imbalance, 1.05 + 1e-9);
  EXPECT_GT(report.initial_imbalance, 1.5);
  EXPECT_GT(report.elements_migrated, 0u);
  // Balance rounds ride on the coalescing transport: the report's traffic
  // delta must show fewer (never more) physical messages than payloads.
  EXPECT_GT(report.messages_logical, 0u);
  EXPECT_LE(report.messages_physical, report.messages_logical);
}

TEST(Balance, MultiCriteriaFacade) {
  auto w = repro::makeAaa(repro::Scale::Small);
  auto pm = repro::distributeT0(w, nullptr);
  const auto report = parma::balance(*pm, "Vtx>Rgn", {.tolerance = 0.06});
  pm->verify();
  EXPECT_LE(parma::entityBalance(*pm, 0).imbalance, 1.07);
  EXPECT_GE(report.rounds, 1);
}

TEST(ReproTable, FormatsAndAligns) {
  repro::Table t({"a", "long-header"});
  t.row({"x", "1"});
  t.row({"yyyyy", "2"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("yyyyy"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(repro::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(repro::fmt(std::size_t{42}), "42");
}

TEST(ReproScale, EnvSelection) {
  ::setenv("PUMI_REPRO_SCALE", "small", 1);
  EXPECT_EQ(repro::scaleFromEnv(), repro::Scale::Small);
  ::setenv("PUMI_REPRO_SCALE", "large", 1);
  EXPECT_EQ(repro::scaleFromEnv(), repro::Scale::Large);
  ::setenv("PUMI_REPRO_SCALE", "bogus", 1);
  EXPECT_EQ(repro::scaleFromEnv(), repro::Scale::Default);
  ::unsetenv("PUMI_REPRO_SCALE");
  EXPECT_EQ(repro::scaleFromEnv(), repro::Scale::Default);
  EXPECT_STREQ(repro::scaleName(repro::Scale::Small), "small");
}

}  // namespace
