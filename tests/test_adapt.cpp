#include <gtest/gtest.h>

#include "adapt/refine.hpp"
#include "adapt/sizefield.hpp"
#include "adapt/split.hpp"
#include "core/measure.hpp"
#include "core/verify.hpp"
#include "gmi/model.hpp"
#include "meshgen/boxmesh.hpp"
#include "meshgen/workloads.hpp"

namespace {

using common::Vec3;
using core::Ent;
using core::Topo;

double totalVolume(const core::Mesh& m) {
  double v = 0.0;
  for (Ent e : m.entities(m.dim())) v += core::measure(m, e);
  return v;
}

TEST(SplitEdge, SingleTetInteriorSplit) {
  core::Mesh m;
  const Ent v0 = m.createVertex({0, 0, 0});
  const Ent v1 = m.createVertex({1, 0, 0});
  const Ent v2 = m.createVertex({0, 1, 0});
  const Ent v3 = m.createVertex({0, 0, 1});
  m.buildElement(Topo::Tet, std::array{v0, v1, v2, v3});
  const double vol = totalVolume(m);
  const Ent e01 = m.findEntity(Topo::Edge, std::array{v0, v1});
  const Ent mid = adapt::splitEdge(m, e01);
  EXPECT_TRUE(m.alive(mid));
  EXPECT_EQ(m.point(mid), Vec3(0.5, 0, 0));
  EXPECT_EQ(m.count(3), 2u);
  EXPECT_EQ(m.count(0), 5u);
  EXPECT_NEAR(totalVolume(m), vol, 1e-12);
  core::verify(m, {.check_volumes = true});
}

TEST(SplitEdge, SharedEdgeSplitsBothTets) {
  core::Mesh m;
  const Ent v0 = m.createVertex({0, 0, 0});
  const Ent v1 = m.createVertex({1, 0, 0});
  const Ent v2 = m.createVertex({0, 1, 0});
  const Ent v3 = m.createVertex({0, 0, 1});
  const Ent v4 = m.createVertex({1, 1, 1});
  m.buildElement(Topo::Tet, std::array{v0, v1, v2, v3});
  m.buildElement(Topo::Tet, std::array{v1, v2, v3, v4});
  const double vol = totalVolume(m);
  // Edge (v1, v2) is shared by both tets.
  const Ent shared = m.findEntity(Topo::Edge, std::array{v1, v2});
  adapt::splitEdge(m, shared);
  EXPECT_EQ(m.count(3), 4u);
  EXPECT_NEAR(totalVolume(m), vol, 1e-12);
  core::verify(m, {.check_volumes = true});
}

TEST(SplitEdge, TriangleMesh) {
  auto gen = meshgen::boxTris(2, 2);
  auto& m = *gen.mesh;
  const std::size_t tris = m.count(2);
  // Split an interior edge (classified on the model face).
  Ent interior;
  for (Ent e : m.entities(1))
    if (m.classification(e)->dim() == 2) interior = e;
  ASSERT_TRUE(interior);
  const std::size_t adjacent = m.up(interior).size();
  adapt::splitEdge(m, interior);
  EXPECT_EQ(m.count(2), tris + adjacent);
  EXPECT_NEAR(totalVolume(m), 1.0, 1e-12);
  core::verify(m);
}

TEST(SplitEdge, BoundaryClassificationInherited) {
  auto gen = meshgen::boxTets(2, 2, 2);
  auto& m = *gen.mesh;
  // Split an edge classified on a model edge (box rim).
  Ent rim;
  for (Ent e : m.entities(1))
    if (m.classification(e)->dim() == 1) rim = e;
  ASSERT_TRUE(rim);
  gmi::Entity* cls = m.classification(rim);
  const Ent mid = adapt::splitEdge(m, rim);
  EXPECT_EQ(m.classification(mid), cls);
  // Both halves classify on the same model edge.
  std::size_t halves = 0;
  for (Ent e : m.up(mid))
    if (m.classification(e) == cls) ++halves;
  EXPECT_EQ(halves, 2u);
  core::verify(m, {.check_volumes = true});
}

TEST(SplitEdge, SnapsToCurvedBoundary) {
  meshgen::VesselSpec spec;
  spec.circumferential = 4;
  spec.axial = 6;
  spec.bulge = 0.0;
  spec.bend = 0.0;
  auto gen = meshgen::vessel(spec);
  auto& m = *gen.mesh;
  // Pick a wall edge (classified on the cylinder side face).
  Ent wall;
  for (Ent e : m.entities(1)) {
    auto* c = m.classification(e);
    if (c->dim() == 2 && c->tag() == 0) wall = e;
  }
  ASSERT_TRUE(wall);
  const Ent mid = adapt::splitEdge(m, wall);
  // The midpoint was snapped onto the radius-1 cylinder.
  const Vec3 p = m.point(mid);
  EXPECT_NEAR(std::hypot(p.x, p.y), spec.radius, 1e-9);
  core::verify(m, {.check_volumes = true});
}

TEST(SplitEdge, ElementTagsFlowToChildren) {
  auto gen = meshgen::boxTets(1, 1, 1);
  auto& m = *gen.mesh;
  auto* part = m.tags().create<int>("part");
  for (Ent e : m.entities(3)) m.tags().setScalar<int>(part, e, 7);
  Ent victim = *m.entities(1).begin();
  adapt::splitEdge(m, victim);
  for (Ent e : m.entities(3)) {
    ASSERT_TRUE(part->has(e));
    EXPECT_EQ(m.tags().getScalar<int>(part, e), 7);
  }
}

class UniformRefine : public ::testing::TestWithParam<double> {};

TEST_P(UniformRefine, ConvergesToTargetSize) {
  const double h = GetParam();
  auto gen = meshgen::boxTets(2, 2, 2);
  auto& m = *gen.mesh;
  adapt::UniformSize size(h);
  const auto stats = adapt::refine(m, size, {.ratio = 1.5, .max_passes = 12});
  EXPECT_GT(stats.splits, 0u);
  // All edges now satisfy the criterion.
  for (Ent e : m.entities(1))
    EXPECT_LE(core::measure(m, e), 1.5 * h + 1e-12);
  EXPECT_NEAR(totalVolume(m), 1.0, 1e-9);
  core::verify(m, {.check_volumes = true});
}

INSTANTIATE_TEST_SUITE_P(TargetSizes, UniformRefine,
                         ::testing::Values(0.35, 0.25, 0.18));

TEST(Refine, ShockFrontLocalizesRefinement) {
  auto gen = meshgen::wingBox(2);
  auto& m = *gen.mesh;
  const std::size_t before = m.count(3);
  // Oblique shock plane through the domain.
  adapt::ShockFrontSize size({2.0, 1.0, 0.5}, {1.0, 0.0, 0.4}, 0.25, 0.06,
                             0.9);
  adapt::refine(m, size, {.max_passes = 6, .max_splits = 60000});
  EXPECT_GT(m.count(3), 2 * before);
  core::verify(m, {.check_volumes = true});
  // Elements near the shock are much smaller than far away.
  double near_max = 0.0, far_min = 1e300;
  for (Ent e : m.entities(3)) {
    const Vec3 c = core::centroid(m, e);
    const double d = std::fabs(common::dot(
        c - Vec3{2.0, 1.0, 0.5}, common::normalized(Vec3{1.0, 0.0, 0.4})));
    const double vol = core::measure(m, e);
    if (d < 0.1) near_max = std::max(near_max, vol);
    if (d > 1.0) far_min = std::min(far_min, vol);
  }
  EXPECT_LT(near_max, far_min * 0.51);
}

TEST(Refine, NoOpWhenMeshAlreadyFine) {
  auto gen = meshgen::boxTets(4, 4, 4);
  adapt::UniformSize size(10.0);
  const auto stats = adapt::refine(*gen.mesh, size);
  EXPECT_EQ(stats.splits, 0u);
  EXPECT_EQ(stats.passes, 0);
}

TEST(Refine, MaxSplitsRespected) {
  auto gen = meshgen::boxTets(2, 2, 2);
  adapt::UniformSize size(0.01);
  const auto stats =
      adapt::refine(*gen.mesh, size, {.max_passes = 50, .max_splits = 100});
  EXPECT_EQ(stats.splits, 100u);
  core::verify(*gen.mesh);
}

TEST(EstimateElements, ScalesWithRefinementCube) {
  auto gen = meshgen::boxTets(4, 4, 4);
  // Halving the size should predict ~8x elements in 3D.
  const double est_same =
      adapt::estimateElements(*gen.mesh, adapt::UniformSize(1.0 / 4));
  const double est_half =
      adapt::estimateElements(*gen.mesh, adapt::UniformSize(1.0 / 8));
  EXPECT_GT(est_half, 5.0 * est_same);
  EXPECT_LT(est_half, 12.0 * est_same);
}

TEST(SizeFields, Values) {
  adapt::UniformSize u(0.2);
  EXPECT_EQ(u.value({1, 2, 3}), 0.2);
  adapt::AnalyticSize a([](const Vec3& x) { return x.x; });
  EXPECT_EQ(a.value({0.7, 0, 0}), 0.7);
  adapt::ShockFrontSize s({0, 0, 0}, {1, 0, 0}, 0.1, 0.01, 1.0);
  EXPECT_NEAR(s.value({0, 5, 5}), 0.01, 1e-12);  // on the front
  EXPECT_NEAR(s.value({3, 0, 0}), 1.0, 1e-6);    // far away
  EXPECT_GT(s.value({0.1, 0, 0}), 0.01);         // blending
  EXPECT_LT(s.value({0.1, 0, 0}), 1.0);
}

}  // namespace
