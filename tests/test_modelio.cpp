#include <gtest/gtest.h>

#include <cstdio>

#include "core/meshio.hpp"
#include "core/verify.hpp"
#include "gmi/builders.hpp"
#include "gmi/modelio.hpp"
#include "meshgen/boxmesh.hpp"
#include "meshgen/workloads.hpp"

namespace {

using common::Vec3;

std::string tmp(const char* name) { return testing::TempDir() + "/" + name; }

TEST(ShapeSerialize, RoundTripsEveryKind) {
  const std::vector<std::unique_ptr<gmi::Shape>> shapes = [] {
    std::vector<std::unique_ptr<gmi::Shape>> v;
    v.push_back(std::make_unique<gmi::PointShape>(Vec3{1, 2, 3}));
    v.push_back(std::make_unique<gmi::SegmentShape>(Vec3{0, 0, 0},
                                                    Vec3{1, 0.5, -2}));
    v.push_back(std::make_unique<gmi::PlaneShape>(Vec3{0, 0, 1},
                                                  Vec3{2, 0, 0},
                                                  Vec3{0, 3, 0}));
    v.push_back(std::make_unique<gmi::CylinderShape>(Vec3{0, 0, 0},
                                                     Vec3{0, 0, 1}, 1.5, 4));
    v.push_back(std::make_unique<gmi::SphereShape>(Vec3{1, 1, 1}, 2.5));
    return v;
  }();
  for (const auto& s : shapes) {
    auto back = gmi::parseShape(s->serialize());
    ASSERT_NE(back, nullptr) << s->serialize();
    // Functional equality: snapping arbitrary probes agrees.
    for (const Vec3 probe : {Vec3{5, -3, 2}, Vec3{0.1, 0.2, 0.3}}) {
      EXPECT_NEAR(common::distance(s->snap(probe), back->snap(probe)), 0.0,
                  1e-12)
          << s->serialize();
    }
  }
  EXPECT_EQ(gmi::parseShape("none"), nullptr);
  EXPECT_EQ(gmi::parseShape(""), nullptr);
  EXPECT_THROW(gmi::parseShape("torus 1 2 3"), std::invalid_argument);
}

TEST(ModelIo, RoundTripBox) {
  auto model = gmi::makeBox({0, 0, 0}, {2, 1, 3});
  const std::string path = tmp("box.dmg");
  gmi::writeModel(*model, path);
  auto back = gmi::readModel(path);
  std::remove(path.c_str());
  for (int d = 0; d <= 3; ++d)
    EXPECT_EQ(back->count(d), model->count(d)) << "dim " << d;
  back->check();
  // Adjacency preserved: every face has 4 edges; shape snapping agrees.
  for (const auto& f : back->entities(2)) {
    EXPECT_EQ(f->boundary().size(), 4u);
    gmi::Entity* orig = model->find(2, f->tag());
    const Vec3 probe{0.3, 0.4, 1.7};
    EXPECT_NEAR(common::distance(f->snap(probe), orig->snap(probe)), 0.0,
                1e-12);
  }
}

TEST(ModelIo, RoundTripCylinderAndSphere) {
  for (auto make : {+[]() { return gmi::makeCylinder({0, 0, 0}, {0, 0, 1},
                                                     1.0, 5.0); },
                    +[]() { return gmi::makeSphere({1, 2, 3}, 4.0); }}) {
    auto model = make();
    const std::string path = tmp("m.dmg");
    gmi::writeModel(*model, path);
    auto back = gmi::readModel(path);
    std::remove(path.c_str());
    for (int d = 0; d <= 3; ++d) EXPECT_EQ(back->count(d), model->count(d));
    back->check();
  }
}

TEST(ModelIo, MeshAndModelPersistTogether) {
  // The full persistence workflow: write model + mesh, read both back,
  // classification intact (the role of .dmg + mesh files in real PUMI).
  // Straight tube (no bulge/bend): the wall coincides with the model
  // cylinder, so reloaded classification is geometrically checkable.
  auto gen = meshgen::vessel(
      {.circumferential = 4, .axial = 6, .bulge = 0.0, .bend = 0.0});
  const std::string mpath = tmp("vessel.dmg");
  const std::string mesh_path = tmp("vessel.pumi");
  gmi::writeModel(*gen.model, mpath);
  core::writeMesh(*gen.mesh, mesh_path);

  auto model = gmi::readModel(mpath);
  auto mesh = core::readMesh(mesh_path, model.get());
  std::remove(mpath.c_str());
  std::remove(mesh_path.c_str());

  core::verify(*mesh, {.check_volumes = true});
  // Wall vertices classify on the reloaded model's side face and still
  // snap onto it.
  gmi::Entity* side = model->find(2, 0);
  std::size_t wall = 0;
  for (core::Ent v : mesh->entities(0)) {
    if (mesh->classification(v) != side) continue;
    ++wall;
    const Vec3 p = mesh->point(v);
    EXPECT_NEAR(common::distance(p, side->snap(p)), 0.0, 1e-9);
  }
  EXPECT_GT(wall, 0u);
}

TEST(ModelIo, RejectsBadFiles) {
  EXPECT_THROW(gmi::readModel(tmp("missing.dmg")), std::runtime_error);
  const std::string path = tmp("bad.dmg");
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("not a model\n", f);
  std::fclose(f);
  EXPECT_THROW(gmi::readModel(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
