/// \file test_pario.cpp
/// \brief Tests for crash-consistent parallel streaming mesh I/O.
///
/// Contract under test (ISSUE: parallel I/O with storage fault injection
/// and self-healing restore): a checkpoint is one chunked, CRC'd,
/// buddy-replicated image committed by an atomically-renamed MANIFEST.
/// Any single chunk copy corrupted or torn must read-repair back to a
/// fingerprint-identical mesh; both copies destroyed must degrade to a
/// partial restore naming exactly the lost parts — never a crash or a
/// hang. Storage faults (iobitrot/iotorn/ioshort/ioenospc/iostall) are
/// seeded and replayable, and a failed checkpoint attempt strands no
/// temp files.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "dist/checkpoint.hpp"
#include "dist/pario.hpp"
#include "dist/partedmesh.hpp"
#include "meshgen/boxmesh.hpp"
#include "part/partition.hpp"
#include "pcu/error.hpp"
#include "pcu/faults.hpp"

namespace {

namespace fs = std::filesystem;
namespace pario = dist::pario;
namespace faults = pcu::faults;
using core::Ent;
using dist::PartId;
using pcu::Error;
using pcu::ErrorCode;

struct PlanGuard {
  explicit PlanGuard(const faults::FaultPlan& p) { faults::setPlan(p); }
  ~PlanGuard() { faults::clearPlan(); }
  PlanGuard(const PlanGuard&) = delete;
  PlanGuard& operator=(const PlanGuard&) = delete;
};

std::string freshDir(const std::string& leaf) {
  const fs::path d = fs::temp_directory_path() / "pumi_test_pario" / leaf;
  fs::remove_all(d);
  return d.string();
}

std::unique_ptr<dist::PartedMesh> makeMesh(const meshgen::Generated& gen,
                                           int nparts) {
  const auto assign = part::partition(*gen.mesh, nparts, part::Method::RCB);
  return dist::PartedMesh::distribute(
      *gen.mesh, gen.model.get(), assign,
      dist::PartMap(nparts, pcu::Machine::flat(nparts)));
}

/// Flip one byte of `path` at `offset`.
void flipByte(const std::string& path, std::uint64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good()) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x40);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
}

/// Zero the second half of a chunk copy — the on-disk shape of a torn
/// write whose prefix persisted.
void tearChunk(const std::string& path, std::uint64_t chunk_off,
               std::uint64_t payload_len) {
  const std::uint64_t total = pario::kChunkHeaderBytes + payload_len;
  const std::uint64_t keep = total / 2;
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good()) << path;
  std::vector<char> zeros(static_cast<std::size_t>(total - keep), 0);
  f.seekp(static_cast<std::streamoff>(chunk_off + keep));
  f.write(zeros.data(), static_cast<std::streamsize>(zeros.size()));
}

std::vector<std::string> tmpFilesIn(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(dir, ec)) {
    const std::string name = e.path().filename().string();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0)
      out.push_back(name);
  }
  return out;
}

std::vector<std::string> imageFilesIn(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(dir, ec)) {
    const std::string name = e.path().filename().string();
    if (name.rfind("IMAGE.", 0) == 0) out.push_back(name);
  }
  return out;
}

/// --- fault-plan grammar ---------------------------------------------------

TEST(IoFaultPlan, ParsesStorageTokens) {
  const auto p = faults::parsePlan(
      "seed=7,iobitrot=0.5,iotorn=0.125,ioshort=0.25,ioenospc=0.0625,"
      "iostall=0.03125,iostallms=3");
  EXPECT_EQ(p.seed, 7u);
  EXPECT_DOUBLE_EQ(p.iobitrot, 0.5);
  EXPECT_DOUBLE_EQ(p.iotorn, 0.125);
  EXPECT_DOUBLE_EQ(p.ioshort, 0.25);
  EXPECT_DOUBLE_EQ(p.ioenospc, 0.0625);
  EXPECT_DOUBLE_EQ(p.iostall, 0.03125);
  EXPECT_EQ(p.iostall_ms, 3);
  EXPECT_TRUE(p.ioInjects());
  // Storage-only plans never arm the message path.
  EXPECT_FALSE(p.injects());
}

TEST(IoFaultPlan, RejectsMalformedStorageTokens) {
  EXPECT_THROW(faults::parsePlan("iobitrot=1.5"), Error);
  EXPECT_THROW(faults::parsePlan("ioenospc=-0.1"), Error);
  EXPECT_THROW(faults::parsePlan("iotorn=0.1x"), Error);
  EXPECT_THROW(faults::parsePlan("iostallms=-1"), Error);
  EXPECT_THROW(faults::parsePlan("iotorn=0.1,iotorn=0.2"), Error);
}

TEST(IoFaultPlan, StorageOnlyPlanGatesOnlyTheShim) {
  faults::FaultPlan p;
  p.seed = 11;
  p.iobitrot = 0.5;
  PlanGuard g(p);
  EXPECT_TRUE(faults::ioEnabled());
  // No message injection, no framing: the transport path is untouched.
  EXPECT_FALSE(faults::enabled());
}

TEST(IoFaultPlan, DecisionsArePureAndSeeded) {
  faults::FaultPlan p;
  p.seed = 42;
  p.iobitrot = 0.3;
  p.ioshort = 0.2;
  p.iostall = 0.1;
  const std::uint64_t h = faults::ioPathHash("/a/b/IMAGE.1");
  std::vector<faults::IoAction> first;
  {
    PlanGuard g(p);
    for (std::uint64_t off = 0; off < 4096; off += 64)
      first.push_back(faults::decideIo(faults::IoOp::kRead, h, off));
  }
  {
    PlanGuard g(p);
    std::size_t i = 0;
    for (std::uint64_t off = 0; off < 4096; off += 64)
      EXPECT_EQ(faults::decideIo(faults::IoOp::kRead, h, off), first[i++]);
  }
  // A different seed must not replay the same decision stream.
  p.seed = 43;
  {
    PlanGuard g(p);
    std::size_t same = 0, i = 0;
    for (std::uint64_t off = 0; off < 4096; off += 64)
      if (faults::decideIo(faults::IoOp::kRead, h, off) == first[i++]) ++same;
    EXPECT_LT(same, first.size());
  }
}

TEST(IoFaultPlan, PathHashCoversBasenameOnly) {
  EXPECT_EQ(faults::ioPathHash("/tmp/run1/IMAGE.1"),
            faults::ioPathHash("/var/other/IMAGE.1"));
  EXPECT_NE(faults::ioPathHash("/tmp/IMAGE.1"),
            faults::ioPathHash("/tmp/IMAGE.2"));
}

/// --- the io-chaos matrix (acceptance) ------------------------------------

struct ChaosCase {
  std::uint64_t seed;
  bool three_d;
};

class IoChaosMatrix : public ::testing::TestWithParam<ChaosCase> {};

/// Single chunk copy corrupted (even seeds) or torn (odd seeds): restore
/// must read-repair from the buddy replica and rebuild the identical mesh
/// — zero elements lost, and the repair persists on disk.
TEST_P(IoChaosMatrix, SingleCopyDamageRepairsToIdenticalMesh) {
  const auto [seed, three_d] = GetParam();
  auto gen = three_d ? meshgen::boxTets(3, 3, 3) : meshgen::boxTris(5, 5);
  const int nparts = 4;
  auto pm = makeMesh(gen, nparts);
  const std::uint64_t fp = pm->fingerprint();
  const std::size_t nelem = pm->globalCount(pm->dim());

  const auto dir =
      freshDir("chaos1_" + std::to_string(seed) + (three_d ? "_3d" : "_2d"));
  dist::checkpoint(*pm, dir);

  // Pick the victim chunk copy from the seed: part, mesh-or-meta chunk,
  // primary-or-replica copy, and the damage mode.
  common::Rng rng(seed * 1315423911ull + 17);
  const auto idx = pario::loadIndex(dir);
  const auto victim_part =
      static_cast<int>(rng.below(static_cast<std::uint64_t>(nparts)));
  const auto& slots = idx.parts[static_cast<std::size_t>(victim_part)];
  const auto& slot = (rng.below(2) == 0) ? slots.mesh : slots.meta;
  const bool hit_primary = rng.below(2) == 0;
  const std::uint64_t off = hit_primary ? slot.primary : slot.replica;
  const std::string image = dir + "/" + idx.image;
  if (seed % 2 == 0) {
    const std::uint64_t payload_at =
        off + pario::kChunkHeaderBytes +
        rng.below(slot.length > 0 ? slot.length : 1);
    flipByte(image, payload_at);
  } else {
    tearChunk(image, off, slot.length);
  }

  pario::RestoreReport report;
  auto restored = pario::restoreImage(dir, gen.model.get(),
                                      pario::OnLoss::kFail, &report);
  EXPECT_EQ(restored->fingerprint(), fp) << "seed " << seed;
  EXPECT_EQ(restored->globalCount(restored->dim()), nelem);
  EXPECT_TRUE(report.lost.empty());
  EXPECT_EQ(report.chunks_lost, 0u);
  if (hit_primary) {
    // Restore noticed the bad primary, served the replica, and wrote the
    // repair back: nothing left for a scrub to fix.
    EXPECT_EQ(report.chunks_repaired, 1u);
    EXPECT_EQ(pario::scrub(dir).chunks_repaired, 0u) << "seed " << seed;
  } else {
    // A damaged replica is invisible to the restore fast path (the good
    // primary serves the read); the offline scrub is what heals it.
    EXPECT_EQ(report.chunks_repaired, 0u);
    EXPECT_EQ(pario::scrub(dir).chunks_repaired, 1u) << "seed " << seed;
  }
  // Either way the directory ends fully intact.
  const auto after = pario::scrub(dir);
  EXPECT_EQ(after.chunks_repaired, 0u);
  EXPECT_TRUE(after.clean());
}

/// Both copies of a chunk destroyed: OnLoss::kFail names the lost part
/// and throws; OnLoss::kPartial loads every surviving part, reports
/// exactly the lost one, and the partial mesh passes verify().
TEST_P(IoChaosMatrix, BothCopiesGoneDegradesToPartialRestore) {
  const auto [seed, three_d] = GetParam();
  auto gen = three_d ? meshgen::boxTets(3, 3, 3) : meshgen::boxTris(5, 5);
  const int nparts = 4;
  auto pm = makeMesh(gen, nparts);
  const int dim = pm->dim();
  const std::size_t nelem = pm->globalCount(dim);

  const auto dir =
      freshDir("chaos2_" + std::to_string(seed) + (three_d ? "_3d" : "_2d"));
  dist::checkpoint(*pm, dir);

  common::Rng rng(seed * 2654435761ull + 3);
  const auto idx = pario::loadIndex(dir);
  const auto victim_part =
      static_cast<int>(rng.below(static_cast<std::uint64_t>(nparts)));
  const std::size_t victim_elems =
      pm->part(victim_part).elements().size();
  const auto& slots = idx.parts[static_cast<std::size_t>(victim_part)];
  const auto& slot = (rng.below(2) == 0) ? slots.mesh : slots.meta;
  const std::string image = dir + "/" + idx.image;
  for (const std::uint64_t off : {slot.primary, slot.replica}) {
    if (seed % 2 == 0)
      flipByte(image, off + pario::kChunkHeaderBytes + slot.length / 2);
    else
      tearChunk(image, off, slot.length);
  }

  EXPECT_FALSE(dist::checkpointValid(dir));
  try {
    pario::restoreImage(dir, gen.model.get(), pario::OnLoss::kFail);
    FAIL() << "fail-fast restore accepted unrecoverable loss, seed " << seed;
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kValidation);
    EXPECT_NE(
        e.detail().find("lost part(s) " + std::to_string(victim_part)),
        std::string::npos)
        << e.what();
  }

  pario::RestoreReport report;
  auto restored = pario::restoreImage(dir, gen.model.get(),
                                      pario::OnLoss::kPartial, &report);
  ASSERT_EQ(report.lost.size(), 1u) << "seed " << seed;
  EXPECT_EQ(report.lost[0], victim_part);
  EXPECT_TRUE(report.partial());
  // Every surviving part loaded: the lost part is empty, the rest carry
  // exactly the elements they checkpointed.
  EXPECT_EQ(restored->part(victim_part).elements().size(), 0u);
  EXPECT_EQ(restored->globalCount(dim), nelem - victim_elems);
  EXPECT_NO_THROW(restored->verify()) << "seed " << seed;
}

std::vector<ChaosCase> chaosCases() {
  std::vector<ChaosCase> cases;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    cases.push_back({seed, false});
    cases.push_back({seed, true});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Matrix, IoChaosMatrix,
                         ::testing::ValuesIn(chaosCases()),
                         [](const auto& info) {
                           return "seed" +
                                  std::to_string(info.param.seed) +
                                  (info.param.three_d ? "_3d" : "_2d");
                         });

/// Under seeded injected storage chaos on the read path, restore must
/// always terminate with either a correct mesh or a structured error —
/// never a crash, never silently wrong data.
TEST(IoChaos, RestoreNeverCrashesUnderInjectedReadFaults) {
  auto gen = meshgen::boxTris(5, 5);
  auto pm = makeMesh(gen, 4);
  const std::uint64_t fp = pm->fingerprint();
  const auto dir = freshDir("injected_read");
  dist::checkpoint(*pm, dir);

  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    faults::FaultPlan p;
    p.seed = seed;
    p.iobitrot = 0.02;
    p.ioshort = 0.01;
    PlanGuard g(p);
    try {
      auto restored = pario::restoreImage(dir, gen.model.get(),
                                          pario::OnLoss::kPartial);
      if (!restored) continue;
      // Loaded parts are CRC-gated, so a full restore is bit-identical.
      if (restored->parts() == 4 && restored->globalCount(2) > 0) {
        EXPECT_NO_THROW(restored->verify()) << "seed " << seed;
      }
    } catch (const Error& e) {
      EXPECT_FALSE(std::string(e.what()).empty()) << "seed " << seed;
    }
  }
  // With the plan cleared the checkpoint is still intact on disk.
  faults::clearPlan();
  auto restored = dist::restore(dir, gen.model.get());
  EXPECT_EQ(restored->fingerprint(), fp);
}

/// Injected write chaos: a checkpoint either commits (and then restores,
/// possibly via read-repair of torn copies) or fails structured with the
/// directory's previous state intact — never a half-committed manifest.
TEST(IoChaos, CheckpointUnderInjectedWriteFaultsIsAtomic) {
  auto gen = meshgen::boxTris(5, 5);
  auto pm = makeMesh(gen, 4);
  const std::uint64_t fp = pm->fingerprint();
  const auto dir = freshDir("injected_write");
  dist::checkpoint(*pm, dir);  // a known-good generation-1 checkpoint

  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    faults::FaultPlan p;
    p.seed = seed;
    p.iotorn = 0.05;
    p.ioenospc = 0.02;
    {
      PlanGuard g(p);
      try {
        dist::checkpoint(*pm, dir);
      } catch (const Error& e) {
        EXPECT_TRUE(e.code() == ErrorCode::kIoFault ||
                    e.code() == ErrorCode::kValidation)
            << e.what();
      }
    }
    // Whatever happened, no temp files survive and the directory holds a
    // checkpoint that restores to the identical mesh (torn chunk copies
    // are read-repaired; an aborted attempt left generation 1 alone).
    EXPECT_TRUE(tmpFilesIn(dir).empty()) << "seed " << seed;
    auto restored = pario::restoreImage(dir, gen.model.get(),
                                        pario::OnLoss::kPartial);
    EXPECT_EQ(restored->fingerprint(), fp) << "seed " << seed;
  }
}

/// --- crash consistency ----------------------------------------------------

TEST(PariaCrash, EnospcMidCheckpointLeaksNoTempFiles) {
  auto gen = meshgen::boxTris(4, 4);
  auto pm = makeMesh(gen, 3);
  const auto dir = freshDir("enospc");

  faults::FaultPlan p;
  p.seed = 5;
  p.ioenospc = 1.0;  // every write fails: the attempt dies immediately
  {
    PlanGuard g(p);
    try {
      dist::checkpoint(*pm, dir);
      FAIL() << "checkpoint succeeded with every write failing ENOSPC";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kIoFault);
      EXPECT_NE(e.detail().find("ENOSPC"), std::string::npos) << e.what();
    }
  }
  // The regression: the failed attempt must strand nothing — no *.tmp, no
  // orphan image, no manifest.
  EXPECT_TRUE(tmpFilesIn(dir).empty());
  EXPECT_TRUE(imageFilesIn(dir).empty());
  EXPECT_FALSE(fs::exists(fs::path(dir) / "MANIFEST"));
  EXPECT_FALSE(dist::checkpointValid(dir));
}

TEST(PariaCrash, EnospcRecheckpointPreservesPreviousGeneration) {
  auto gen = meshgen::boxTris(4, 4);
  auto pm = makeMesh(gen, 3);
  const std::uint64_t fp = pm->fingerprint();
  const auto dir = freshDir("enospc2");
  dist::checkpoint(*pm, dir);
  ASSERT_TRUE(dist::checkpointValid(dir));

  faults::FaultPlan p;
  p.seed = 6;
  p.ioenospc = 1.0;
  {
    PlanGuard g(p);
    EXPECT_THROW(dist::checkpoint(*pm, dir), Error);
  }
  EXPECT_TRUE(tmpFilesIn(dir).empty());
  EXPECT_TRUE(dist::checkpointValid(dir));
  auto restored = dist::restore(dir, gen.model.get());
  EXPECT_EQ(restored->fingerprint(), fp);
  EXPECT_EQ(pario::loadIndex(dir).generation, 1u);
}

/// A crash between the image rename and the MANIFEST rename (the state a
/// double-checkpoint interrupts into): the directory must keep restoring
/// the previous generation, and the next checkpoint must sweep the orphan
/// image and stray temp file on its way to committing.
TEST(PariaCrash, CrashBetweenRenamesKeepsPreviousGenerationRestorable) {
  auto gen = meshgen::boxTris(4, 4);
  auto pm = makeMesh(gen, 3);
  const std::uint64_t fp = pm->fingerprint();
  const auto dir = freshDir("between_renames");
  dist::checkpoint(*pm, dir);
  const auto idx1 = pario::loadIndex(dir);
  ASSERT_EQ(idx1.generation, 1u);

  // Fabricate the crash state: IMAGE.2 fully renamed in, MANIFEST.tmp
  // written but never renamed over MANIFEST.
  fs::copy_file(fs::path(dir) / idx1.image, fs::path(dir) / "IMAGE.2");
  {
    std::ofstream tmp(fs::path(dir) / "MANIFEST.tmp", std::ios::binary);
    tmp << "half-written manifest bytes";
  }

  // The old MANIFEST still commits generation 1: valid and restorable.
  EXPECT_TRUE(dist::checkpointValid(dir));
  EXPECT_EQ(pario::loadIndex(dir).generation, 1u);
  auto restored = dist::restore(dir, gen.model.get());
  EXPECT_EQ(restored->fingerprint(), fp);

  // The next checkpoint sweeps the leavings and commits generation 2:
  // exactly one image file, no temp files, restores identically.
  dist::checkpoint(*pm, dir);
  EXPECT_TRUE(tmpFilesIn(dir).empty());
  EXPECT_EQ(imageFilesIn(dir), std::vector<std::string>{"IMAGE.2"});
  EXPECT_EQ(pario::loadIndex(dir).generation, 2u);
  auto restored2 = dist::restore(dir, gen.model.get());
  EXPECT_EQ(restored2->fingerprint(), fp);
}

/// --- unreadable directories ----------------------------------------------

TEST(PariaValidation, MissingDirectoryIsStructuredError) {
  const std::string dir = "/nonexistent/pumi/checkpoint";
  auto gen = meshgen::boxTris(2, 2);
  try {
    dist::restore(dir, gen.model.get());
    FAIL() << "restore accepted a nonexistent directory";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kValidation);
    EXPECT_NE(e.detail().find(dir), std::string::npos) << e.what();
  }
  EXPECT_FALSE(dist::checkpointValid(dir));
}

TEST(PariaValidation, NotADirectoryIsStructuredError) {
  // /dev/null/sub can never be a directory (ENOTDIR on every syscall).
  const std::string dir = "/dev/null/sub";
  auto gen = meshgen::boxTris(2, 2);
  try {
    dist::restore(dir, gen.model.get());
    FAIL() << "restore accepted a path under a non-directory";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kValidation);
    EXPECT_NE(e.detail().find(dir), std::string::npos) << e.what();
  }
}

TEST(PariaValidation, FileInPlaceOfDirectoryIsStructuredError) {
  const auto parent = freshDir("notadir");
  fs::create_directories(parent);
  const std::string dir = parent + "/plainfile";
  {
    std::ofstream f(dir);
    f << "not a directory";
  }
  auto gen = meshgen::boxTris(2, 2);
  try {
    dist::restore(dir, gen.model.get());
    FAIL() << "restore accepted a plain file as a checkpoint directory";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kValidation);
    EXPECT_NE(e.detail().find("not a directory"), std::string::npos)
        << e.what();
  }
}

TEST(PariaValidation, PermissionDeniedDirectoryIsStructuredError) {
  if (::geteuid() == 0) GTEST_SKIP() << "root ignores directory modes";
  auto gen = meshgen::boxTris(4, 4);
  auto pm = makeMesh(gen, 2);
  const auto dir = freshDir("denied");
  dist::checkpoint(*pm, dir);
  fs::permissions(dir, fs::perms::none);
  try {
    dist::restore(dir, gen.model.get());
    FAIL() << "restore accepted an unreadable directory";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kValidation);
    EXPECT_NE(e.detail().find(dir), std::string::npos) << e.what();
  }
  fs::permissions(dir, fs::perms::owner_all);
}

TEST(PariaValidation, TruncatedManifestIsStructuredError) {
  auto gen = meshgen::boxTris(4, 4);
  auto pm = makeMesh(gen, 2);
  const auto dir = freshDir("truncman");
  dist::checkpoint(*pm, dir);
  fs::resize_file(fs::path(dir) / "MANIFEST", 13);
  EXPECT_FALSE(dist::checkpointValid(dir));
  EXPECT_THROW(dist::restore(dir, gen.model.get()), Error);
}

TEST(PariaValidation, BitflippedManifestFailsItsOwnCrc) {
  auto gen = meshgen::boxTris(4, 4);
  auto pm = makeMesh(gen, 2);
  const auto dir = freshDir("manflip");
  dist::checkpoint(*pm, dir);
  flipByte(dir + "/MANIFEST", 20);
  try {
    dist::restore(dir, gen.model.get());
    FAIL() << "restore accepted a bit-flipped MANIFEST";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kValidation);
    EXPECT_NE(e.detail().find("CRC"), std::string::npos) << e.what();
  }
}

/// --- edge cases -----------------------------------------------------------

TEST(PariaEdge, ZeroEntityPartsRoundTrip) {
  // All elements pinned to part 0 of a 3-part mesh: parts 1 and 2 are
  // completely empty and must survive the chunk round trip as such.
  auto gen = meshgen::boxTris(4, 4);
  const std::size_t nelem = gen.mesh->all(2).size();
  std::vector<dist::PartId> assign(nelem, 0);
  auto pm = dist::PartedMesh::distribute(
      *gen.mesh, gen.model.get(), assign,
      dist::PartMap(3, pcu::Machine::flat(3)));
  const std::uint64_t fp = pm->fingerprint();

  const auto dir = freshDir("emptyparts");
  dist::checkpoint(*pm, dir);
  EXPECT_TRUE(dist::checkpointValid(dir));
  EXPECT_EQ(pario::scrub(dir).chunks_lost, 0u);
  auto restored = dist::restore(dir, gen.model.get());
  EXPECT_EQ(restored->fingerprint(), fp);
  EXPECT_EQ(restored->part(1).elements().size(), 0u);
  EXPECT_EQ(restored->part(2).elements().size(), 0u);
}

TEST(PariaEdge, ZeroLengthTagPayloadRoundTrips) {
  // CRC-of-empty edge: a transportable tag attached with an empty value
  // vector serializes as a zero-length payload inside the mesh stream.
  EXPECT_EQ(faults::crc32(nullptr, 0), 0u);

  auto gen = meshgen::boxTris(3, 3);
  auto* marks = gen.mesh->tags().create<double>("marks", 0);
  const Ent v0 = gen.mesh->all(0).front();
  gen.mesh->tags().set<double>(marks, v0, {});
  auto pm = makeMesh(gen, 2);
  const std::uint64_t fp = pm->fingerprint();

  const auto dir = freshDir("emptytag");
  dist::checkpoint(*pm, dir);
  auto restored = dist::restore(dir, gen.model.get());
  EXPECT_EQ(restored->fingerprint(), fp);
  // The empty-valued tag survived on whichever part owns that vertex.
  bool found = false;
  for (PartId p = 0; p < restored->parts(); ++p) {
    auto* t = restored->part(p).mesh().tags().find("marks");
    if (t == nullptr) continue;
    for (Ent v : restored->part(p).mesh().entities(0))
      if (t->has(v)) {
        EXPECT_TRUE(
            restored->part(p).mesh().tags().get<double>(t, v).empty());
        found = true;
      }
  }
  EXPECT_TRUE(found);
}

/// --- partition-on-read ----------------------------------------------------

TEST(PariaRead, PartitionOnReadMapsPartsToTargetRanks) {
  auto gen = meshgen::boxTets(3, 3, 3);
  auto pm = makeMesh(gen, 6);
  const std::uint64_t fp = pm->fingerprint();
  const auto dir = freshDir("n_to_m");
  dist::checkpoint(*pm, dir);

  // 6 writers -> 2 readers: part p must land on rank p % 2.
  auto onto2 = dist::restore(dir, gen.model.get(), 2);
  EXPECT_EQ(onto2->fingerprint(), fp);
  for (PartId p = 0; p < onto2->parts(); ++p)
    EXPECT_EQ(onto2->network().partMap().rankOf(p), p % 2);

  // 6 writers -> 8 readers: identity assignment, two idle ranks.
  auto onto8 = dist::restore(dir, gen.model.get(), 8);
  EXPECT_EQ(onto8->fingerprint(), fp);
  for (PartId p = 0; p < onto8->parts(); ++p)
    EXPECT_EQ(onto8->network().partMap().rankOf(p), p);
}

TEST(PariaRead, PartBytesReadRepairsDamagedCopy) {
  auto gen = meshgen::boxTris(4, 4);
  auto pm = makeMesh(gen, 3);
  const auto dir = freshDir("partbytes");
  dist::checkpoint(*pm, dir);
  const auto clean = dist::checkpointPartBytes(dir, 1);

  const auto idx = pario::loadIndex(dir);
  const auto& slot = idx.parts[1].mesh;
  flipByte(dir + "/" + idx.image,
           slot.primary + pario::kChunkHeaderBytes + slot.length / 3);
  const auto repaired = dist::checkpointPartBytes(dir, 1);
  EXPECT_EQ(repaired.first, clean.first);
  EXPECT_EQ(repaired.second, clean.second);

  // Both copies gone: structured kCorruptPayload, not a crash.
  const auto idx2 = pario::loadIndex(dir);
  for (const std::uint64_t off :
       {idx2.parts[1].mesh.primary, idx2.parts[1].mesh.replica})
    flipByte(dir + "/" + idx2.image,
             off + pario::kChunkHeaderBytes + slot.length / 3);
  EXPECT_THROW(
      {
        try {
          dist::checkpointPartBytes(dir, 1);
        } catch (const Error& e) {
          EXPECT_EQ(e.code(), ErrorCode::kCorruptPayload);
          throw;
        }
      },
      Error);
}

/// --- scrub ----------------------------------------------------------------

TEST(PariaScrub, RepairsEveryDamagedCopyOnce) {
  auto gen = meshgen::boxTets(3, 3, 3);
  auto pm = makeMesh(gen, 4);
  const std::uint64_t fp = pm->fingerprint();
  const auto dir = freshDir("scrub");
  dist::checkpoint(*pm, dir);

  const auto clean = pario::scrub(dir);
  EXPECT_TRUE(clean.clean());
  EXPECT_EQ(clean.chunks_repaired, 0u);
  EXPECT_EQ(clean.chunks_ok, 8u);  // 4 parts x {mesh, meta}

  // Damage three different copies across parts and chunk types.
  const auto idx = pario::loadIndex(dir);
  const std::string image = dir + "/" + idx.image;
  flipByte(image, idx.parts[0].mesh.primary + pario::kChunkHeaderBytes + 5);
  flipByte(image, idx.parts[2].meta.replica + pario::kChunkHeaderBytes + 1);
  tearChunk(image, idx.parts[3].mesh.replica, idx.parts[3].mesh.length);

  const auto fixed = pario::scrub(dir);
  EXPECT_TRUE(fixed.clean());
  EXPECT_EQ(fixed.chunks_repaired, 3u);
  EXPECT_TRUE(fixed.lost_parts.empty());
  // Idempotent: a second scrub finds a fully clean checkpoint.
  const auto again = pario::scrub(dir);
  EXPECT_EQ(again.chunks_repaired, 0u);
  EXPECT_EQ(again.chunks_ok, 8u);
  auto restored = dist::restore(dir, gen.model.get());
  EXPECT_EQ(restored->fingerprint(), fp);
}

TEST(PariaScrub, ReportsLostChunksWithoutThrowing) {
  auto gen = meshgen::boxTris(4, 4);
  auto pm = makeMesh(gen, 3);
  const auto dir = freshDir("scrublost");
  dist::checkpoint(*pm, dir);
  const auto idx = pario::loadIndex(dir);
  const std::string image = dir + "/" + idx.image;
  for (const std::uint64_t off :
       {idx.parts[2].meta.primary, idx.parts[2].meta.replica})
    flipByte(image, off + pario::kChunkHeaderBytes + 2);

  const auto rep = pario::scrub(dir);
  EXPECT_FALSE(rep.clean());
  EXPECT_EQ(rep.chunks_lost, 1u);
  EXPECT_EQ(rep.lost_parts, std::vector<PartId>{2});
}

/// --- double checkpoint ----------------------------------------------------

TEST(PariaWrite, RecheckpointAdvancesGenerationAndSweepsOldImage) {
  auto gen = meshgen::boxTris(4, 4);
  auto pm = makeMesh(gen, 3);
  const auto dir = freshDir("regen");
  const auto s1 = pario::checkpointImage(*pm, dir);
  EXPECT_EQ(s1.generation, 1u);
  EXPECT_EQ(s1.chunks, 3u * 2u * 2u);  // parts x {mesh,meta} x {pri,rep}
  const auto s2 = pario::checkpointImage(*pm, dir);
  EXPECT_EQ(s2.generation, 2u);
  EXPECT_EQ(imageFilesIn(dir), std::vector<std::string>{"IMAGE.2"});
  EXPECT_TRUE(dist::checkpointValid(dir));
}

/// --- report determinism (integrity armor rides on these lists) -----------

/// Multi-part loss: the lost-part list must come back SORTED and
/// bit-identical across reruns of the same damaged image — the integrity
/// and failover reports are diffed by tooling and replayed by seed, so a
/// hash-map iteration order leaking into the list would break both.
TEST(PariaReport, LostPartListIsSortedAndDeterministicAcrossReruns) {
  auto gen = meshgen::boxTris(6, 6);
  const int nparts = 6;
  auto pm = makeMesh(gen, nparts);
  const auto dir = freshDir("report_determinism");
  dist::checkpoint(*pm, dir);

  // Destroy both copies of three parts' mesh chunks, deliberately in
  // non-sorted order (4, then 1, then 3).
  const auto idx = pario::loadIndex(dir);
  const std::string image = dir + "/" + idx.image;
  for (const int victim : {4, 1, 3}) {
    const auto& slot = idx.parts[static_cast<std::size_t>(victim)].mesh;
    for (const std::uint64_t off : {slot.primary, slot.replica})
      flipByte(image, off + pario::kChunkHeaderBytes + slot.length / 3);
  }

  auto runOnce = [&] {
    pario::RestoreReport report;
    auto restored = pario::restoreImage(dir, gen.model.get(),
                                        pario::OnLoss::kPartial, &report);
    EXPECT_NO_THROW(restored->verify());
    return report;
  };
  const auto a = runOnce();
  const auto b = runOnce();

  EXPECT_EQ(a.lost, (std::vector<dist::PartId>{1, 3, 4}))
      << "lost parts must be sorted, not in damage/discovery order";
  EXPECT_EQ(b.lost, a.lost) << "rerun diverged: the list is not a function "
                               "of the image content";
  EXPECT_EQ(b.chunks_lost, a.chunks_lost);
  EXPECT_EQ(b.chunks_repaired, a.chunks_repaired);
  EXPECT_TRUE(a.partial());
}

}  // namespace
