#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/crc32.hpp"
#include "common/mat.hpp"
#include "common/rng.hpp"
#include "common/set.hpp"
#include "common/smallvec.hpp"
#include "common/tag.hpp"
#include "common/vec.hpp"

namespace {

using common::Vec3;

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, Vec3(5, 7, 9));
  EXPECT_EQ(b - a, Vec3(3, 3, 3));
  EXPECT_EQ(a * 2.0, Vec3(2, 4, 6));
  EXPECT_EQ(2.0 * a, Vec3(2, 4, 6));
  EXPECT_EQ(a / 2.0, Vec3(0.5, 1, 1.5));
  EXPECT_EQ(-a, Vec3(-1, -2, -3));
}

TEST(Vec3, DotCrossNorm) {
  const Vec3 x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
  EXPECT_EQ(common::dot(x, y), 0.0);
  EXPECT_EQ(common::cross(x, y), z);
  EXPECT_EQ(common::cross(y, z), x);
  EXPECT_DOUBLE_EQ(common::norm(Vec3{3, 4, 0}), 5.0);
  EXPECT_EQ(common::normalized(Vec3{0, 0, 0}), Vec3(0, 0, 0));
  EXPECT_DOUBLE_EQ(common::norm(common::normalized(Vec3{1, 2, 3})), 1.0);
}

TEST(Vec3, Indexing) {
  Vec3 v{7, 8, 9};
  EXPECT_EQ(v[0], 7);
  EXPECT_EQ(v[1], 8);
  EXPECT_EQ(v[2], 9);
  v[1] = -1;
  EXPECT_EQ(v.y, -1);
}

TEST(Box3, IncludeAndQueries) {
  common::Box3 box;
  box.include(Vec3{0, 0, 0});
  box.include(Vec3{2, 1, 3});
  EXPECT_EQ(box.center(), Vec3(1, 0.5, 1.5));
  EXPECT_EQ(box.extent(), Vec3(2, 1, 3));
  EXPECT_EQ(box.longestAxis(), 2);
  EXPECT_TRUE(box.contains(Vec3{1, 0.5, 1}));
  EXPECT_FALSE(box.contains(Vec3{3, 0, 0}));
  EXPECT_TRUE(box.contains(Vec3{2.05, 1, 3}, 0.1));
}

TEST(Mat3, Identity) {
  const auto m = common::Mat3::identity();
  const Vec3 v{1, 2, 3};
  EXPECT_EQ(m * v, v);
}

TEST(Mat3, EigenDiagonal) {
  common::Mat3 m;
  m(0, 0) = 3;
  m(1, 1) = 1;
  m(2, 2) = 2;
  const auto e = common::symmetricEigen(m);
  EXPECT_NEAR(e.values[0], 3.0, 1e-12);
  EXPECT_NEAR(e.values[1], 2.0, 1e-12);
  EXPECT_NEAR(e.values[2], 1.0, 1e-12);
  EXPECT_NEAR(std::fabs(e.vectors[0].x), 1.0, 1e-12);
  EXPECT_NEAR(std::fabs(e.vectors[1].z), 1.0, 1e-12);
  EXPECT_NEAR(std::fabs(e.vectors[2].y), 1.0, 1e-12);
}

TEST(Mat3, EigenGeneralSymmetric) {
  // Matrix with known spectrum: A = Q D Q^T built from a rotation.
  common::Mat3 m;
  // Symmetric matrix [[2,1,0],[1,2,0],[0,0,5]]: eigenvalues 5, 3, 1.
  m(0, 0) = 2;
  m(0, 1) = m(1, 0) = 1;
  m(1, 1) = 2;
  m(2, 2) = 5;
  const auto e = common::symmetricEigen(m);
  EXPECT_NEAR(e.values[0], 5.0, 1e-10);
  EXPECT_NEAR(e.values[1], 3.0, 1e-10);
  EXPECT_NEAR(e.values[2], 1.0, 1e-10);
  // Eigenvector check: m * v = lambda * v.
  for (int i = 0; i < 3; ++i) {
    const Vec3 mv = m * e.vectors[i];
    const Vec3 lv = e.vectors[i] * e.values[i];
    EXPECT_NEAR(common::distance(mv, lv), 0.0, 1e-9);
  }
}

TEST(Rng, DeterministicGivenSeed) {
  common::Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
  }
  bool all_same = true;
  common::Rng a2(42);
  for (int i = 0; i < 10; ++i) all_same = all_same && (a2.next() == c.next());
  EXPECT_FALSE(all_same);
}

TEST(Rng, UniformRanges) {
  common::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
    const long r = rng.range(5, 9);
    EXPECT_GE(r, 5);
    EXPECT_LE(r, 9);
  }
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, UniformCoversRange) {
  common::Rng rng(11);
  int low = 0, high = 0;
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    if (u < 0.25) ++low;
    if (u > 0.75) ++high;
  }
  // Loose sanity: both quartiles populated.
  EXPECT_GT(low, 150);
  EXPECT_GT(high, 150);
}

TEST(SmallVec, InlineThenSpill) {
  common::SmallVec<int, 4> v;
  EXPECT_TRUE(v.empty());
  for (int i = 0; i < 10; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(v[static_cast<std::uint32_t>(i)], i);
}

TEST(SmallVec, EraseValue) {
  common::SmallVec<int, 4> v;
  for (int i = 0; i < 6; ++i) v.push_back(i);
  EXPECT_TRUE(v.eraseValue(3));
  EXPECT_EQ(v.size(), 5u);
  EXPECT_FALSE(v.contains(3));
  EXPECT_FALSE(v.eraseValue(99));
  // All other elements still present.
  for (int i : {0, 1, 2, 4, 5}) EXPECT_TRUE(v.contains(i));
}

TEST(SmallVec, CopyAndMove) {
  common::SmallVec<int, 2> v;
  for (int i = 0; i < 5; ++i) v.push_back(i * i);
  common::SmallVec<int, 2> copy(v);
  EXPECT_EQ(copy.size(), 5u);
  EXPECT_EQ(copy[4], 16);
  common::SmallVec<int, 2> moved(std::move(v));
  EXPECT_EQ(moved.size(), 5u);
  EXPECT_EQ(moved[3], 9);
  copy = moved;
  EXPECT_EQ(copy[2], 4);
  moved = std::move(copy);
  EXPECT_EQ(moved[1], 1);
}

TEST(SmallVec, ClearKeepsCapacity) {
  common::SmallVec<int, 2> v;
  for (int i = 0; i < 8; ++i) v.push_back(i);
  v.clear();
  EXPECT_TRUE(v.empty());
  v.push_back(42);
  EXPECT_EQ(v[0], 42);
}

TEST(ItemSet, AddRemoveContains) {
  common::ItemSet<int> s("regions");
  EXPECT_EQ(s.name(), "regions");
  EXPECT_TRUE(s.add(5));
  EXPECT_TRUE(s.add(7));
  EXPECT_FALSE(s.add(5));  // duplicate
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.contains(5));
  EXPECT_TRUE(s.remove(5));
  EXPECT_FALSE(s.remove(5));
  EXPECT_FALSE(s.contains(5));
  EXPECT_EQ(s.size(), 1u);
}

TEST(ItemSet, PreservesInsertionOrder) {
  common::ItemSet<int> s;
  for (int i : {9, 3, 7, 1}) s.add(i);
  EXPECT_EQ(s.items(), (std::vector<int>{9, 3, 7, 1}));
  s.remove(3);
  EXPECT_EQ(s.items(), (std::vector<int>{9, 7, 1}));
  s.add(3);
  EXPECT_EQ(s.items(), (std::vector<int>{9, 7, 1, 3}));
}

TEST(TagRegistry, CreateFindDestroy) {
  common::TagRegistry<int> tags;
  auto* weight = tags.create<double>("weight");
  EXPECT_EQ(tags.find("weight"), weight);
  EXPECT_EQ(tags.find("missing"), nullptr);
  EXPECT_THROW(tags.create<int>("weight"), std::invalid_argument);
  EXPECT_EQ(tags.list().size(), 1u);
  tags.destroy(weight);
  EXPECT_EQ(tags.find("weight"), nullptr);
}

TEST(TagRegistry, SetGetScalar) {
  common::TagRegistry<int> tags;
  auto* t = tags.create<long>("gid");
  tags.setScalar<long>(t, 3, 42L);
  EXPECT_EQ(tags.getScalar<long>(t, 3), 42L);
  EXPECT_TRUE(t->has(3));
  EXPECT_FALSE(t->has(4));
  EXPECT_THROW((void)tags.getScalar<long>(t, 4), std::out_of_range);
}

TEST(TagRegistry, MultiComponent) {
  common::TagRegistry<int> tags;
  auto* t = tags.create<double>("velocity", 3);
  EXPECT_EQ(t->components(), 3u);
  tags.set<double>(t, 1, {1.0, 2.0, 3.0});
  EXPECT_EQ(tags.get<double>(t, 1), (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(TagRegistry, TypeMismatchThrows) {
  common::TagRegistry<int> tags;
  auto* t = tags.create<int>("count");
  tags.setScalar<int>(t, 0, 5);
  EXPECT_THROW((void)tags.getScalar<double>(t, 0), std::invalid_argument);
}

TEST(TagRegistry, RemoveAllAndCopyAll) {
  common::TagRegistry<int> tags;
  auto* a = tags.create<int>("a");
  auto* b = tags.create<double>("b");
  tags.setScalar<int>(a, 1, 10);
  tags.setScalar<double>(b, 1, 2.5);
  tags.copyAll(1, 2);
  EXPECT_EQ(tags.getScalar<int>(a, 2), 10);
  EXPECT_EQ(tags.getScalar<double>(b, 2), 2.5);
  tags.removeAll(1);
  EXPECT_FALSE(a->has(1));
  EXPECT_FALSE(b->has(1));
  EXPECT_TRUE(a->has(2));
  EXPECT_EQ(a->count(), 1u);
}

/// --- checksum primitives --------------------------------------------------

TEST(Crc32, MatchesIeeeKnownAnswers) {
  // CRC-32 (IEEE 802.3, reflected) — the persisted-format checksum. Its
  // byte-for-byte output is a compatibility contract (frames, pario chunk
  // trailers, journal dedup keys, fingerprints all store it), so pin the
  // standard vector set.
  const auto crcOf = [](const std::string& s) {
    return common::crc32(reinterpret_cast<const std::byte*>(s.data()),
                         s.size());
  };
  EXPECT_EQ(crcOf(""), 0x00000000u);
  EXPECT_EQ(crcOf("a"), 0xE8B7BE43u);
  EXPECT_EQ(crcOf("abc"), 0x352441C2u);
  EXPECT_EQ(crcOf("message digest"), 0x20159D7Fu);
  EXPECT_EQ(crcOf("123456789"), 0xCBF43926u);
  EXPECT_EQ(crcOf("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);
}

TEST(Crc32c, MatchesCastagnoliKnownAnswersOnEveryPath) {
  // CRC-32C (Castagnoli) — the in-memory integrity checksum. The SSE4.2
  // hardware path and the scalar table fallback must agree bit-for-bit, so
  // exercise every alignment/length mix around the 8-byte fast loop.
  const std::string s = "123456789";
  const auto* b = reinterpret_cast<const std::byte*>(s.data());
  EXPECT_EQ(common::crc32c(b, 9), 0xE3069283u);
  EXPECT_EQ(common::crc32c(b, 0), 0u);
  // Seeded chaining: crc32c(suffix, crc32c(prefix)) == crc32c(whole), for
  // every split — this is what lets the ledger hash sections in blocks.
  for (std::size_t cut = 0; cut <= s.size(); ++cut)
    EXPECT_EQ(common::crc32c(b + cut, s.size() - cut, common::crc32c(b, cut)),
              0xE3069283u)
        << "chain split at " << cut;
  // Misaligned starts hit the scalar pre-loop before the 64-bit stride:
  // identical content must hash identically at every alignment.
  const std::string long_s(70, 'x');
  const auto* lb = reinterpret_cast<const std::byte*>(long_s.data());
  for (std::size_t off = 1; off < 8; ++off)
    EXPECT_EQ(common::crc32c(lb + off, 32), common::crc32c(lb, 32))
        << "alignment offset " << off;
  // The two polynomials are deliberately different checksums.
  EXPECT_NE(common::crc32c(b, 9), common::crc32(b, 9));
  // The public entry may dispatch to the SSE4.2 instruction at runtime;
  // whatever it picked must agree bit-for-bit with the scalar table walk
  // over a buffer long enough to exercise the 64-bit stride.
  std::vector<std::byte> buf(1024);
  for (std::size_t i = 0; i < buf.size(); ++i)
    buf[i] = static_cast<std::byte>((i * 131) ^ (i >> 3));
  const std::uint32_t scalar =
      common::detail::crcUpdateScalar<0x82F63B78u>(0xFFFFFFFFu, buf.data(),
                                                   buf.size()) ^
      0xFFFFFFFFu;
  EXPECT_EQ(common::crc32c(buf.data(), buf.size()), scalar);
}

}  // namespace
