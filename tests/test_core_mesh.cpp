#include <gtest/gtest.h>

#include <array>
#include <set>

#include "core/measure.hpp"
#include "core/mesh.hpp"
#include "core/topo.hpp"
#include "core/verify.hpp"

namespace {

using core::Ent;
using core::Mesh;
using core::Topo;
using common::Vec3;

/// Reference element coordinates for each 3D type.
std::vector<Vec3> referenceCoords(Topo t) {
  switch (t) {
    case Topo::Tet:
      return {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
    case Topo::Hex:
      return {{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0},
              {0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {0, 1, 1}};
    case Topo::Prism:
      return {{0, 0, 0}, {1, 0, 0}, {0, 1, 0},
              {0, 0, 1}, {1, 0, 1}, {0, 1, 1}};
    case Topo::Pyramid:
      return {{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0}, {0.5, 0.5, 1}};
    default:
      return {};
  }
}

TEST(Topo, TableShapes) {
  EXPECT_EQ(core::topoDim(Topo::Vertex), 0);
  EXPECT_EQ(core::topoDim(Topo::Edge), 1);
  EXPECT_EQ(core::topoDim(Topo::Tri), 2);
  EXPECT_EQ(core::topoDim(Topo::Hex), 3);
  EXPECT_EQ(core::topoVertexCount(Topo::Tet), 4);
  EXPECT_EQ(core::topoVertexCount(Topo::Hex), 8);
  EXPECT_EQ(core::topoBoundaryCount(Topo::Tet, 1), 6);
  EXPECT_EQ(core::topoBoundaryCount(Topo::Tet, 2), 4);
  EXPECT_EQ(core::topoBoundaryCount(Topo::Hex, 1), 12);
  EXPECT_EQ(core::topoBoundaryCount(Topo::Prism, 2), 5);
  EXPECT_EQ(core::topoBoundaryCount(Topo::Pyramid, 2), 5);
  EXPECT_STREQ(core::topoName(Topo::Prism), "prism");
}

TEST(Topo, EveryBoundaryVertexIndexInRange) {
  for (Topo t : {Topo::Tri, Topo::Quad, Topo::Tet, Topo::Hex, Topo::Prism,
                 Topo::Pyramid}) {
    const int dim = core::topoDim(t);
    const int nv = core::topoVertexCount(t);
    for (int d = 0; d < dim; ++d) {
      for (int i = 0; i < core::topoBoundaryCount(t, d); ++i) {
        const auto idxs = core::topoBoundaryVerts(t, d, i);
        EXPECT_EQ(static_cast<int>(idxs.size()),
                  core::topoVertexCount(core::topoBoundaryTopo(t, d, i)));
        for (int idx : idxs) {
          EXPECT_GE(idx, 0);
          EXPECT_LT(idx, nv);
        }
      }
    }
  }
}

TEST(Topo, EdgesOfFacesAreFaceBoundary) {
  // Property: every region's face template's edges appear in the region's
  // edge template (closure consistency).
  for (Topo t : {Topo::Tet, Topo::Hex, Topo::Prism, Topo::Pyramid}) {
    std::set<std::set<int>> region_edges;
    for (int i = 0; i < core::topoBoundaryCount(t, 1); ++i) {
      const auto e = core::topoBoundaryVerts(t, 1, i);
      region_edges.insert({e[0], e[1]});
    }
    for (int f = 0; f < core::topoBoundaryCount(t, 2); ++f) {
      const Topo ft = core::topoBoundaryTopo(t, 2, f);
      const auto fverts = core::topoBoundaryVerts(t, 2, f);
      for (int fe = 0; fe < core::topoBoundaryCount(ft, 1); ++fe) {
        const auto fev = core::topoBoundaryVerts(ft, 1, fe);
        const std::set<int> edge{fverts[fev[0]], fverts[fev[1]]};
        EXPECT_TRUE(region_edges.count(edge))
            << "face edge not an element edge for " << core::topoName(t);
      }
    }
  }
}

class SingleElement : public ::testing::TestWithParam<Topo> {};

TEST_P(SingleElement, BuildCreatesFullClosure) {
  const Topo t = GetParam();
  Mesh m;
  std::vector<Ent> vs;
  for (const Vec3& p : referenceCoords(t)) vs.push_back(m.createVertex(p));
  const Ent e = m.buildElement(t, vs);
  ASSERT_TRUE(m.alive(e));
  EXPECT_EQ(m.count(0), static_cast<std::size_t>(core::topoVertexCount(t)));
  EXPECT_EQ(m.count(1), static_cast<std::size_t>(core::topoBoundaryCount(t, 1)));
  EXPECT_EQ(m.count(2), static_cast<std::size_t>(core::topoBoundaryCount(t, 2)));
  EXPECT_EQ(m.count(3), 1u);
  EXPECT_NO_THROW(core::verify(m, {.check_volumes = true}));
}

TEST_P(SingleElement, DownwardCanonicalOrder) {
  const Topo t = GetParam();
  Mesh m;
  std::vector<Ent> vs;
  for (const Vec3& p : referenceCoords(t)) vs.push_back(m.createVertex(p));
  const Ent e = m.buildElement(t, vs);
  std::array<Ent, core::kMaxDown> buf{};
  // Vertices come back in canonical order.
  const int nv = m.downward(e, 0, buf.data());
  ASSERT_EQ(nv, core::topoVertexCount(t));
  for (int i = 0; i < nv; ++i) EXPECT_EQ(buf[static_cast<std::size_t>(i)], vs[static_cast<std::size_t>(i)]);
  // Edges match templates.
  const int ne = m.downward(e, 1, buf.data());
  ASSERT_EQ(ne, core::topoBoundaryCount(t, 1));
  for (int i = 0; i < ne; ++i) {
    const auto idxs = core::topoBoundaryVerts(t, 1, i);
    const Ent expect = m.findEntity(
        Topo::Edge, std::array<Ent, 2>{vs[static_cast<std::size_t>(idxs[0])],
                                       vs[static_cast<std::size_t>(idxs[1])]});
    EXPECT_EQ(buf[static_cast<std::size_t>(i)], expect);
  }
}

TEST_P(SingleElement, BuildIsIdempotent) {
  const Topo t = GetParam();
  Mesh m;
  std::vector<Ent> vs;
  for (const Vec3& p : referenceCoords(t)) vs.push_back(m.createVertex(p));
  const Ent a = m.buildElement(t, vs);
  const Ent b = m.buildElement(t, vs);
  EXPECT_EQ(a, b);
  EXPECT_EQ(m.count(3), 1u);
}

TEST_P(SingleElement, PositiveMeasure) {
  const Topo t = GetParam();
  Mesh m;
  std::vector<Ent> vs;
  for (const Vec3& p : referenceCoords(t)) vs.push_back(m.createVertex(p));
  const Ent e = m.buildElement(t, vs);
  EXPECT_GT(core::measure(m, e), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllRegions, SingleElement,
                         ::testing::Values(Topo::Tet, Topo::Hex, Topo::Prism,
                                           Topo::Pyramid),
                         [](const auto& info) {
                           return core::topoName(info.param);
                         });

TEST(Mesh, TwoTetsShareAFace) {
  Mesh m;
  const Ent v0 = m.createVertex({0, 0, 0});
  const Ent v1 = m.createVertex({1, 0, 0});
  const Ent v2 = m.createVertex({0, 1, 0});
  const Ent v3 = m.createVertex({0, 0, 1});
  const Ent v4 = m.createVertex({1, 1, 1});
  const Ent t0 = m.buildElement(Topo::Tet, std::array{v0, v1, v2, v3});
  const Ent t1 = m.buildElement(Topo::Tet, std::array{v1, v2, v3, v4});
  EXPECT_EQ(m.count(3), 2u);
  // Faces: 4 + 4 - 1 shared.
  EXPECT_EQ(m.count(2), 7u);
  // Edges: 6 + 6 - 3 shared.
  EXPECT_EQ(m.count(1), 9u);
  const Ent shared = m.findEntity(Topo::Tri, std::array{v1, v2, v3});
  ASSERT_TRUE(shared);
  EXPECT_EQ(m.up(shared).size(), 2u);
  EXPECT_TRUE(m.up(shared).contains(t0));
  EXPECT_TRUE(m.up(shared).contains(t1));
  core::verify(m);
}

TEST(Mesh, AdjacentUpwardTraversal) {
  Mesh m;
  const Ent v0 = m.createVertex({0, 0, 0});
  const Ent v1 = m.createVertex({1, 0, 0});
  const Ent v2 = m.createVertex({0, 1, 0});
  const Ent v3 = m.createVertex({0, 0, 1});
  const Ent v4 = m.createVertex({1, 1, 1});
  m.buildElement(Topo::Tet, std::array{v0, v1, v2, v3});
  m.buildElement(Topo::Tet, std::array{v1, v2, v3, v4});
  // v1 touches both regions.
  EXPECT_EQ(m.adjacent(v1, 3).size(), 2u);
  // v0 touches one.
  EXPECT_EQ(m.adjacent(v0, 3).size(), 1u);
  // Vertex to itself.
  EXPECT_EQ(m.adjacent(v0, 0), std::vector<Ent>{v0});
  // Edge (v1,v2) bounds both tets.
  const Ent e12 = m.findEntity(Topo::Edge, std::array{v1, v2});
  ASSERT_TRUE(e12);
  EXPECT_EQ(m.adjacent(e12, 3).size(), 2u);
  // Region downward to vertices.
  const Ent t0 = m.findEntity(Topo::Tet, std::array{v0, v1, v2, v3});
  EXPECT_EQ(m.adjacent(t0, 0).size(), 4u);
}

TEST(Mesh, FindEntityNegative) {
  Mesh m;
  const Ent v0 = m.createVertex({0, 0, 0});
  const Ent v1 = m.createVertex({1, 0, 0});
  const Ent v2 = m.createVertex({0, 1, 0});
  m.buildElement(Topo::Tri, std::array{v0, v1, v2});
  const Ent v3 = m.createVertex({5, 5, 5});
  EXPECT_FALSE(m.findEntity(Topo::Edge, std::array{v0, v3}));
  EXPECT_FALSE(m.findEntity(Topo::Tri, std::array{v0, v1, v3}));
  EXPECT_TRUE(m.findEntity(Topo::Tri, std::array{v2, v0, v1}));  // any order
}

TEST(Mesh, DestroyElementThenOrphans) {
  Mesh m;
  const Ent v0 = m.createVertex({0, 0, 0});
  const Ent v1 = m.createVertex({1, 0, 0});
  const Ent v2 = m.createVertex({0, 1, 0});
  const Ent v3 = m.createVertex({0, 0, 1});
  const Ent tet = m.buildElement(Topo::Tet, std::array{v0, v1, v2, v3});
  // Cannot destroy a face still bounding the tet.
  const Ent f = m.findEntity(Topo::Tri, std::array{v0, v1, v2});
  EXPECT_THROW(m.destroy(f), std::logic_error);
  m.destroy(tet);
  EXPECT_EQ(m.count(3), 0u);
  // Now faces are free.
  for (Ent face : m.all(2)) m.destroy(face);
  for (Ent edge : m.all(1)) m.destroy(edge);
  for (Ent v : m.all(0)) m.destroy(v);
  EXPECT_EQ(m.count(0), 0u);
  EXPECT_EQ(m.dim(), -1);
  core::verify(m);
}

TEST(Mesh, SlotReuseAfterDestroy) {
  Mesh m;
  const Ent v0 = m.createVertex({0, 0, 0});
  m.destroy(v0);
  const Ent v1 = m.createVertex({1, 1, 1});
  EXPECT_EQ(v1.index(), v0.index());  // free list reuses the slot
  EXPECT_EQ(m.point(v1), Vec3(1, 1, 1));
  EXPECT_EQ(m.count(0), 1u);
}

TEST(Mesh, IterationSkipsDead) {
  Mesh m;
  std::vector<Ent> vs;
  for (int i = 0; i < 10; ++i)
    vs.push_back(m.createVertex({static_cast<double>(i), 0, 0}));
  m.destroy(vs[3]);
  m.destroy(vs[7]);
  std::size_t n = 0;
  for (Ent v : m.entities(0)) {
    EXPECT_TRUE(m.alive(v));
    ++n;
  }
  EXPECT_EQ(n, 8u);
  EXPECT_EQ(m.all(0).size(), 8u);
}

TEST(Mesh, MixedTopologyDimension) {
  // A tet and a hex coexisting; iteration over dim 3 sees both.
  Mesh m;
  std::vector<Ent> tv, hv;
  for (const Vec3& p : referenceCoords(Topo::Tet))
    tv.push_back(m.createVertex(p + Vec3{10, 0, 0}));
  for (const Vec3& p : referenceCoords(Topo::Hex))
    hv.push_back(m.createVertex(p));
  m.buildElement(Topo::Tet, tv);
  m.buildElement(Topo::Hex, hv);
  EXPECT_EQ(m.count(3), 2u);
  EXPECT_EQ(m.countTopo(Topo::Tet), 1u);
  EXPECT_EQ(m.countTopo(Topo::Hex), 1u);
  std::size_t seen = 0;
  for ([[maybe_unused]] Ent e : m.entities(3)) ++seen;
  EXPECT_EQ(seen, 2u);
  core::verify(m);
}

TEST(Mesh, PointsAndSetPoint) {
  Mesh m;
  const Ent v = m.createVertex({1, 2, 3});
  EXPECT_EQ(m.point(v), Vec3(1, 2, 3));
  m.setPoint(v, {4, 5, 6});
  EXPECT_EQ(m.point(v), Vec3(4, 5, 6));
}

TEST(Mesh, TagsOnEntities) {
  Mesh m;
  const Ent v = m.createVertex({0, 0, 0});
  auto* weight = m.tags().create<double>("weight");
  m.tags().setScalar<double>(weight, v, 2.5);
  EXPECT_EQ(m.tags().getScalar<double>(weight, v), 2.5);
  // Destroy removes tag values.
  m.destroy(v);
  const Ent v2 = m.createVertex({1, 1, 1});
  EXPECT_EQ(v2.index(), v.index());
  EXPECT_FALSE(weight->has(v2));
}

TEST(Mesh, EntitySets) {
  Mesh m;
  const Ent a = m.createVertex({0, 0, 0});
  const Ent b = m.createVertex({1, 0, 0});
  auto& s = m.createSet("boundary_layer");
  s.add(a);
  s.add(b);
  EXPECT_EQ(m.findSet("boundary_layer")->size(), 2u);
  EXPECT_EQ(m.findSet("nope"), nullptr);
  EXPECT_THROW(m.createSet("boundary_layer"), std::invalid_argument);
  m.destroySet("boundary_layer");
  EXPECT_EQ(m.findSet("boundary_layer"), nullptr);
}

TEST(Mesh, EntHandleBasics) {
  const Ent null;
  EXPECT_TRUE(null.null());
  EXPECT_FALSE(null);
  const Ent e(Topo::Tet, 42);
  EXPECT_TRUE(e);
  EXPECT_EQ(e.topo(), Topo::Tet);
  EXPECT_EQ(e.index(), 42u);
  EXPECT_EQ(Ent::unpack(e.packed()), e);
  EXPECT_NE(e, Ent(Topo::Tet, 43));
  EXPECT_NE(e, Ent(Topo::Hex, 42));
  EXPECT_LT(Ent(Topo::Tri, 5), Ent(Topo::Tet, 0));
}

TEST(Measure, TetVolumeSigned) {
  const double v = core::tetVolume({0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1});
  EXPECT_NEAR(v, 1.0 / 6.0, 1e-15);
  const double w = core::tetVolume({0, 0, 0}, {0, 1, 0}, {1, 0, 0}, {0, 0, 1});
  EXPECT_NEAR(w, -1.0 / 6.0, 1e-15);
}

TEST(Measure, UnitShapes) {
  Mesh m;
  // Unit hex volume 1.
  std::vector<Ent> hv;
  for (const Vec3& p : referenceCoords(Topo::Hex)) hv.push_back(m.createVertex(p));
  const Ent hex = m.buildElement(Topo::Hex, hv);
  EXPECT_NEAR(core::measure(m, hex), 1.0, 1e-12);
  // A face of it has area 1, an edge length 1.
  std::array<Ent, core::kMaxDown> buf{};
  m.downward(hex, 2, buf.data());
  EXPECT_NEAR(core::measure(m, buf[0]), 1.0, 1e-12);
  m.downward(hex, 1, buf.data());
  EXPECT_NEAR(core::measure(m, buf[0]), 1.0, 1e-12);
  EXPECT_EQ(core::measure(m, hv[0]), 0.0);
  // Centroid of the hex is the cube center.
  EXPECT_EQ(core::centroid(m, hex), Vec3(0.5, 0.5, 0.5));
}

TEST(Measure, MeshBounds) {
  Mesh m;
  m.createVertex({-1, 0, 2});
  m.createVertex({3, -2, 5});
  const auto box = core::bounds(m);
  EXPECT_EQ(box.lo, Vec3(-1, -2, 2));
  EXPECT_EQ(box.hi, Vec3(3, 0, 5));
}

}  // namespace
