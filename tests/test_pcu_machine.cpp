#include <gtest/gtest.h>

#include "pcu/machine.hpp"

namespace {

TEST(Machine, DefaultIsOneCore) {
  pcu::Machine m;
  EXPECT_EQ(m.nodes(), 1);
  EXPECT_EQ(m.coresPerNode(), 1);
  EXPECT_EQ(m.totalCores(), 1);
}

TEST(Machine, BlockLayout) {
  pcu::Machine m(3, 4);
  EXPECT_EQ(m.totalCores(), 12);
  EXPECT_EQ(m.nodeOf(0), 0);
  EXPECT_EQ(m.nodeOf(3), 0);
  EXPECT_EQ(m.nodeOf(4), 1);
  EXPECT_EQ(m.nodeOf(11), 2);
  EXPECT_EQ(m.coreOf(0), 0);
  EXPECT_EQ(m.coreOf(5), 1);
  EXPECT_EQ(m.coreOf(11), 3);
}

TEST(Machine, RankAtInvertsMapping) {
  pcu::Machine m(4, 8);
  for (int r = 0; r < m.totalCores(); ++r)
    EXPECT_EQ(m.rankAt(m.nodeOf(r), m.coreOf(r)), r);
}

TEST(Machine, SameNode) {
  pcu::Machine m(2, 2);
  EXPECT_TRUE(m.sameNode(0, 1));
  EXPECT_TRUE(m.sameNode(2, 3));
  EXPECT_FALSE(m.sameNode(1, 2));
  EXPECT_TRUE(m.sameNode(0, 0));
}

TEST(Machine, Factories) {
  auto sn = pcu::Machine::singleNode(16);
  EXPECT_EQ(sn.nodes(), 1);
  EXPECT_EQ(sn.coresPerNode(), 16);
  auto fl = pcu::Machine::flat(16);
  EXPECT_EQ(fl.nodes(), 16);
  EXPECT_EQ(fl.coresPerNode(), 1);
  EXPECT_FALSE(fl.sameNode(0, 1));
}

TEST(Machine, Describe) {
  pcu::Machine m(2, 32);
  EXPECT_EQ(m.describe(), "2 node(s) x 32 core(s)");
}

TEST(Machine, Equality) {
  EXPECT_EQ(pcu::Machine(2, 3), pcu::Machine(2, 3));
  EXPECT_FALSE(pcu::Machine(2, 3) == pcu::Machine(3, 2));
}

}  // namespace
