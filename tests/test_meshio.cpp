#include <gtest/gtest.h>

#include <cstdio>

#include "core/measure.hpp"
#include "core/meshio.hpp"
#include "core/verify.hpp"
#include "gmi/model.hpp"
#include "meshgen/boxmesh.hpp"
#include "meshgen/workloads.hpp"

namespace {

using core::Ent;

std::string tmpPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(MeshIo, RoundTripBoxTets) {
  auto gen = meshgen::boxTets(3, 3, 3);
  const std::string path = tmpPath("box.pumi");
  core::writeMesh(*gen.mesh, path);
  auto back = core::readMesh(path, gen.model.get());
  std::remove(path.c_str());

  for (int d = 0; d <= 3; ++d)
    EXPECT_EQ(back->count(d), gen.mesh->count(d)) << "dim " << d;
  core::verify(*back, {.check_volumes = true});

  // Coordinates and classification agree vertex-by-vertex (iteration order
  // is preserved by the format).
  auto ita = gen.mesh->entities(0).begin();
  for (Ent vb : back->entities(0)) {
    EXPECT_EQ(back->point(vb), gen.mesh->point(*ita));
    EXPECT_EQ(back->classification(vb), gen.mesh->classification(*ita));
    ++ita;
  }
  // Boundary faces kept their model-face classification.
  std::size_t boundary = 0;
  for (Ent f : back->entities(2))
    if (back->classification(f)->dim() == 2) ++boundary;
  std::size_t boundary_orig = 0;
  for (Ent f : gen.mesh->entities(2))
    if (gen.mesh->classification(f)->dim() == 2) ++boundary_orig;
  EXPECT_EQ(boundary, boundary_orig);
}

TEST(MeshIo, RoundTripTagsAndCurvedClassification) {
  auto gen = meshgen::vessel({.circumferential = 4, .axial = 8});
  auto& m = *gen.mesh;
  auto* weight = m.tags().create<double>("weight");
  auto* ids = m.tags().create<long>("ids", 2);
  std::size_t i = 0;
  for (Ent e : m.entities(3)) {
    m.tags().setScalar<double>(weight, e, 0.5 + static_cast<double>(i));
    m.tags().set<long>(ids, e, {static_cast<long>(i), -static_cast<long>(i)});
    ++i;
  }
  const std::string path = tmpPath("vessel.pumi");
  core::writeMesh(m, path);
  auto back = core::readMesh(path, gen.model.get());
  std::remove(path.c_str());

  core::verify(*back, {.check_volumes = true});
  auto* weight2 = back->tags().find("weight");
  auto* ids2 = back->tags().find("ids");
  ASSERT_NE(weight2, nullptr);
  ASSERT_NE(ids2, nullptr);
  EXPECT_EQ(ids2->components(), 2u);
  std::size_t j = 0;
  for (Ent e : back->entities(3)) {
    EXPECT_EQ(back->tags().getScalar<double>(weight2, e),
              0.5 + static_cast<double>(j));
    EXPECT_EQ(back->tags().get<long>(ids2, e)[1], -static_cast<long>(j));
    ++j;
  }
}

TEST(MeshIo, RoundTripTwoDimensional) {
  auto gen = meshgen::boxTris(4, 4);
  const std::string path = tmpPath("tris.pumi");
  core::writeMesh(*gen.mesh, path);
  auto back = core::readMesh(path, gen.model.get());
  std::remove(path.c_str());
  EXPECT_EQ(back->dim(), 2);
  EXPECT_EQ(back->count(2), gen.mesh->count(2));
  core::verify(*back);
  double area = 0.0;
  for (Ent f : back->entities(2)) area += core::measure(*back, f);
  EXPECT_NEAR(area, 1.0, 1e-12);
}

TEST(MeshIo, RejectsGarbageAndMissingFiles) {
  EXPECT_THROW(core::readMesh(tmpPath("does_not_exist.pumi"), nullptr),
               std::runtime_error);
  const std::string path = tmpPath("garbage.pumi");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("this is not a mesh", f);
  std::fclose(f);
  EXPECT_THROW(core::readMesh(path, nullptr), std::runtime_error);
  std::remove(path.c_str());
}

TEST(MeshIo, MissingModelEntityThrows) {
  auto gen = meshgen::boxTets(1, 1, 1);
  const std::string path = tmpPath("box1.pumi");
  core::writeMesh(*gen.mesh, path);
  gmi::Model empty;  // wrong model: no entities
  EXPECT_THROW(core::readMesh(path, &empty), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
