#include <gtest/gtest.h>

#include "core/measure.hpp"
#include "meshgen/boxmesh.hpp"
#include "meshgen/workloads.hpp"
#include "parma/heavysplit.hpp"
#include "parma/improve.hpp"
#include "parma/metrics.hpp"
#include "parma/priority.hpp"
#include "part/partition.hpp"

namespace {

using core::Ent;
using dist::PartId;

TEST(Priority, ParseSingle) {
  const auto p = parma::parsePriority("Rgn");
  ASSERT_EQ(p.levels.size(), 1u);
  EXPECT_EQ(p.levels[0], (parma::Level{3}));
  EXPECT_EQ(p.describe(), "Rgn");
}

TEST(Priority, ParsePaperExamples) {
  const auto t1 = parma::parsePriority("Vtx>Rgn");
  ASSERT_EQ(t1.levels.size(), 2u);
  EXPECT_EQ(t1.levels[0], (parma::Level{0}));
  EXPECT_EQ(t1.levels[1], (parma::Level{3}));

  const auto t2 = parma::parsePriority("Vtx=Edge>Rgn");
  ASSERT_EQ(t2.levels.size(), 2u);
  EXPECT_EQ(t2.levels[0], (parma::Level{0, 1}));  // ascending dim

  const auto big = parma::parsePriority("Rgn > Face = Edge > Vtx");
  ASSERT_EQ(big.levels.size(), 3u);
  EXPECT_EQ(big.levels[0], (parma::Level{3}));
  EXPECT_EQ(big.levels[1], (parma::Level{1, 2}));
  EXPECT_EQ(big.levels[2], (parma::Level{0}));
  EXPECT_EQ(big.describe(), "Rgn > Edge = Face > Vtx");
}

TEST(Priority, HigherLowerQueries) {
  const auto p = parma::parsePriority("Rgn>Face=Edge>Vtx");
  EXPECT_EQ(p.higherThan(0), (std::vector<int>{}));
  EXPECT_EQ(p.higherThan(1), (std::vector<int>{3}));
  EXPECT_EQ(p.lowerThan(1), (std::vector<int>{0}));
  EXPECT_EQ(p.lowerThan(0), (std::vector<int>{1, 2, 0}));
  EXPECT_EQ(p.allDims(), (std::vector<int>{3, 1, 2, 0}));
}

TEST(Priority, RejectsMalformed) {
  EXPECT_THROW(parma::parsePriority(""), std::invalid_argument);
  EXPECT_THROW(parma::parsePriority("Vtx>>Rgn"), std::invalid_argument);
  EXPECT_THROW(parma::parsePriority("Blob"), std::invalid_argument);
  EXPECT_THROW(parma::parsePriority("Vtx>Vtx"), std::invalid_argument);
  EXPECT_THROW(parma::parsePriority("Vtx>"), std::invalid_argument);
}

TEST(Metrics, BalanceOfUniformStripes) {
  auto gen = meshgen::boxTets(4, 2, 2);
  std::vector<PartId> dest(gen.mesh->count(3));
  for (std::size_t i = 0; i < dest.size(); ++i)
    dest[i] = static_cast<PartId>(i * 4 / dest.size());
  auto pm = dist::PartedMesh::distribute(*gen.mesh, gen.model.get(), dest,
                                         dist::PartMap(4, pcu::Machine::flat(4)));
  const auto b = parma::entityBalance(*pm, 3);
  EXPECT_EQ(b.per_part.size(), 4u);
  EXPECT_EQ(b.peak, 24u);
  EXPECT_DOUBLE_EQ(b.mean, 24.0);
  EXPECT_DOUBLE_EQ(b.imbalance, 1.0);
  EXPECT_DOUBLE_EQ(b.imbalancePercent(), 0.0);
  // Vertex balance counts duplicated boundary copies.
  const auto bv = parma::entityBalance(*pm, 0);
  std::size_t local_sum = 0;
  for (auto c : bv.per_part) local_sum += c;
  EXPECT_GT(local_sum, gen.mesh->count(0));  // duplication
  EXPECT_GT(parma::boundaryCopies(*pm, 0), 0u);
}

TEST(Metrics, HistogramBinsCoverParts) {
  parma::Balance b;
  b.per_part = {10, 10, 10, 10, 40, 2};
  b.mean = 82.0 / 6.0;
  b.peak = 40;
  b.imbalance = 40.0 / b.mean;
  const auto h = parma::imbalanceHistogram(b, 5);
  ASSERT_EQ(h.frequency.size(), 5u);
  std::size_t total = 0;
  for (auto f : h.frequency) total += f;
  EXPECT_EQ(total, 6u);
  // The peak lands in the last bin.
  EXPECT_GE(h.frequency.back(), 1u);
}

/// Build a deliberately element-imbalanced partition: part 0 takes an extra
/// slab of part 1's elements.
std::unique_ptr<dist::PartedMesh> imbalancedPartition(
    const meshgen::Generated& gen, int nparts, double spike_frac) {
  const auto g = part::buildElemGraph(*gen.mesh);
  auto base = part::partitionGraph(g, nparts, part::Method::GraphRB);
  // Steal elements from part 1 into part 0 until part 0 holds
  // (1 + spike_frac) of its fair share.
  const std::size_t fair = gen.mesh->count(3) / static_cast<std::size_t>(nparts);
  std::size_t want = static_cast<std::size_t>(spike_frac * fair);
  for (std::size_t i = 0; i < base.size() && want > 0; ++i) {
    if (base[i] == 1) {
      base[i] = 0;
      --want;
    }
  }
  return dist::PartedMesh::distribute(
      *gen.mesh, gen.model.get(), base,
      dist::PartMap(nparts, pcu::Machine::flat(nparts)));
}

TEST(Improve, RegionBalanceConverges) {
  auto gen = meshgen::boxTets(6, 6, 6);
  auto pm = imbalancedPartition(gen, 8, 0.5);
  const double before = parma::entityBalance(*pm, 3).imbalance;
  ASSERT_GT(before, 1.2);
  const auto report = parma::improve(*pm, "Rgn", {.tolerance = 0.05});
  pm->verify();
  ASSERT_EQ(report.levels.size(), 1u);
  EXPECT_EQ(report.levels[0].dim, 3);
  EXPECT_LE(report.levels[0].final_imbalance, 1.05 + 1e-9);
  EXPECT_TRUE(report.levels[0].converged);
  EXPECT_GT(report.totalMigrated(), 0u);
  // Mesh integrity preserved.
  for (int d = 0; d <= 3; ++d)
    EXPECT_EQ(pm->globalCount(d), gen.mesh->count(d));
}

TEST(Improve, VertexBalanceConverges) {
  auto gen = meshgen::vessel({.circumferential = 6, .axial = 24});
  auto pm = imbalancedPartition(gen, 8, 0.4);
  const double before = parma::entityBalance(*pm, 0).imbalance;
  ASSERT_GT(before, 1.1);
  const auto report = parma::improve(*pm, "Vtx>Rgn", {.tolerance = 0.05});
  pm->verify();
  ASSERT_EQ(report.levels.size(), 2u);
  // An adversarial stolen-slab spike at this granularity plateaus slightly
  // above the 5% tolerance; require a large reduction and a sane endpoint.
  // (The paper-shaped experiment, bench_parma_tables, reaches ~5%.)
  EXPECT_LE(report.levels[0].final_imbalance, 1.09) << "vertex imbalance";
  EXPECT_LT(report.levels[0].final_imbalance,
            report.levels[0].initial_imbalance - 0.03);
  // Region imbalance may grow, but stays moderate (paper: 4.3% -> ~6%).
  EXPECT_LE(report.levels[1].final_imbalance, 1.15);
  for (int d = 0; d <= 3; ++d)
    EXPECT_EQ(pm->globalCount(d), gen.mesh->count(d));
}

TEST(Improve, MultiCriteriaRespectsHigherPriority) {
  auto gen = meshgen::boxTets(6, 6, 6);
  auto pm = imbalancedPartition(gen, 8, 0.5);
  // First balance regions strictly, then edges without harming regions.
  const auto report = parma::improve(*pm, "Rgn>Edge", {.tolerance = 0.05});
  pm->verify();
  ASSERT_EQ(report.levels.size(), 2u);
  EXPECT_EQ(report.levels[0].dim, 3);
  EXPECT_EQ(report.levels[1].dim, 1);
  // After everything, region balance still within tolerance (+ slack for
  // boundary-entity churn during edge balancing).
  EXPECT_LE(parma::entityBalance(*pm, 3).imbalance, 1.10);
}

TEST(Improve, AlreadyBalancedIsNoOp) {
  auto gen = meshgen::boxTets(4, 4, 4);
  const auto assign = part::partition(*gen.mesh, 4, part::Method::GraphRB);
  auto pm = dist::PartedMesh::distribute(*gen.mesh, gen.model.get(), assign,
                                         dist::PartMap(4, pcu::Machine::flat(4)));
  const double rgn_before = parma::entityBalance(*pm, 3).imbalance;
  ASSERT_LE(rgn_before, 1.05);
  const auto report = parma::improve(*pm, "Rgn", {.tolerance = 0.05});
  EXPECT_EQ(report.levels[0].iterations, 0);
  EXPECT_EQ(report.totalMigrated(), 0u);
}

TEST(Improve, ReducesBoundaryOrKeepsItModerate) {
  auto gen = meshgen::vessel({.circumferential = 6, .axial = 20});
  auto pm = imbalancedPartition(gen, 6, 0.4);
  const std::size_t boundary_before = parma::boundaryCopies(*pm, 0);
  parma::improve(*pm, "Vtx>Rgn", {.tolerance = 0.05});
  const std::size_t boundary_after = parma::boundaryCopies(*pm, 0);
  // Careful element selection must not blow the boundary up (paper: the
  // total number of boundary entities is *reduced*).
  EXPECT_LE(boundary_after, boundary_before * 11 / 10);
}

TEST(Improve, TwoDimensionalMesh) {
  auto gen = meshgen::boxTris(16, 16);
  const auto g = part::buildElemGraph(*gen.mesh);
  auto assign = part::partitionGraph(g, 6, part::Method::GraphRB);
  // Spike part 0.
  std::size_t steal = 30;
  for (std::size_t i = 0; i < assign.size() && steal > 0; ++i)
    if (assign[i] == 1) {
      assign[i] = 0;
      --steal;
    }
  auto pm = dist::PartedMesh::distribute(*gen.mesh, gen.model.get(), assign,
                                         dist::PartMap(6, pcu::Machine::flat(6)));
  const auto report = parma::improve(*pm, "Face", {.tolerance = 0.05});
  pm->verify();
  EXPECT_LE(report.levels[0].final_imbalance,
            report.levels[0].initial_imbalance);
  EXPECT_LE(report.levels[0].final_imbalance, 1.08);
}

TEST(HeavySplit, SplitsMegapartIntoEmptyParts) {
  auto gen = meshgen::boxTets(6, 6, 6);
  // Pathological: part 0 has ~half the mesh; parts 1-3 empty; 4-7 normal.
  std::vector<PartId> dest(gen.mesh->count(3));
  const auto g = part::buildElemGraph(*gen.mesh);
  const auto base = part::partitionGraph(g, 8, part::Method::RCB);
  for (std::size_t i = 0; i < dest.size(); ++i)
    dest[i] = base[i] <= 3 ? 0 : base[i];  // merge parts 0-3 into a megapart
  auto pm = dist::PartedMesh::distribute(*gen.mesh, gen.model.get(), dest,
                                         dist::PartMap(8, pcu::Machine::flat(8)));
  const double before = parma::entityBalance(*pm, 3).imbalance;
  ASSERT_GT(before, 2.0);
  const auto report = parma::heavyPartSplit(*pm, {.tolerance = 0.05});
  pm->verify();
  // No merging needed (empties pre-exist); the megapart must be split.
  EXPECT_GT(report.parts_split, 0);
  EXPECT_LT(report.final_imbalance, before * 0.6);
  for (int d = 0; d <= 3; ++d)
    EXPECT_EQ(pm->globalCount(d), gen.mesh->count(d));
}

TEST(HeavySplit, MergesLightNeighborsThenSplits) {
  auto gen = meshgen::boxTets(8, 4, 4);
  // X-striped parts 0..7; drain parts 2 and 3 into part 1: part 1 becomes
  // a ~2.6x spike while 2 and 3 are light neighbours of each other.
  std::vector<std::pair<double, std::size_t>> order;
  std::size_t idx = 0;
  for (Ent e : gen.mesh->entities(3))
    order.emplace_back(core::centroid(*gen.mesh, e).x, idx++);
  std::sort(order.begin(), order.end());
  std::vector<PartId> dest(order.size());
  for (std::size_t k = 0; k < order.size(); ++k)
    dest[order[k].second] = static_cast<PartId>(k * 8 / order.size());
  common::Rng rng(5);
  for (std::size_t i = 0; i < dest.size(); ++i)
    if ((dest[i] == 2 || dest[i] == 3) && rng.uniform() < 0.8) dest[i] = 1;
  auto pm = dist::PartedMesh::distribute(*gen.mesh, gen.model.get(), dest,
                                         dist::PartMap(8, pcu::Machine::flat(8)));
  const double before = parma::entityBalance(*pm, 3).imbalance;
  ASSERT_GT(before, 1.8);
  const auto report = parma::heavyPartSplit(*pm, {.tolerance = 0.05});
  pm->verify();
  EXPECT_GT(report.merges, 0);
  EXPECT_GT(report.parts_emptied, 0);
  EXPECT_GT(report.parts_split, 0);
  EXPECT_LT(report.final_imbalance, before * 0.7);
  for (int d = 0; d <= 3; ++d)
    EXPECT_EQ(pm->globalCount(d), gen.mesh->count(d));
}

TEST(HeavySplit, FollowedByDiffusionReachesTolerance) {
  auto gen = meshgen::boxTets(6, 6, 6);
  std::vector<PartId> dest(gen.mesh->count(3));
  const auto g = part::buildElemGraph(*gen.mesh);
  const auto base = part::partitionGraph(g, 8, part::Method::RCB);
  for (std::size_t i = 0; i < dest.size(); ++i)
    dest[i] = base[i] <= 2 ? 0 : base[i];
  auto pm = dist::PartedMesh::distribute(*gen.mesh, gen.model.get(), dest,
                                         dist::PartMap(8, pcu::Machine::flat(8)));
  parma::heavyPartSplit(*pm, {.tolerance = 0.05});
  const auto report = parma::improve(*pm, "Rgn", {.tolerance = 0.08});
  pm->verify();
  EXPECT_LE(report.levels[0].final_imbalance, 1.12);
}

TEST(Improve, WeightedElementBalancing) {
  // Element counts are perfectly balanced, but weights (e.g. predicted
  // post-adaptation counts) are skewed: weighted diffusion must move
  // elements until the weighted balance meets tolerance.
  auto gen = meshgen::boxTets(6, 6, 6);
  const auto g = part::buildElemGraph(*gen.mesh);
  const auto assign = part::partitionGraph(g, 8, part::Method::RCB);
  auto pm = dist::PartedMesh::distribute(
      *gen.mesh, gen.model.get(), assign,
      dist::PartMap(8, pcu::Machine::flat(8)));
  // Weight: elements near x=0 are 4x heavier.
  for (PartId p = 0; p < 8; ++p) {
    auto& m = pm->part(p).mesh();
    auto* w = m.tags().create<double>("load");
    for (Ent e : pm->part(p).elements())
      m.tags().setScalar<double>(
          w, e, core::centroid(m, e).x < 0.25 ? 4.0 : 1.0);
  }
  const double count_before = parma::entityBalance(*pm, 3).imbalance;
  const double weighted_before =
      parma::weightedElementBalance(*pm, "load").imbalance;
  ASSERT_LE(count_before, 1.05);     // counts balanced
  ASSERT_GE(weighted_before, 1.35);  // weights are not
  parma::ImproveOptions opts{.tolerance = 0.08, .max_iterations = 60};
  opts.element_weight_tag = "load";
  const auto report = parma::improve(*pm, "Rgn", opts);
  pm->verify();
  const double weighted_after =
      parma::weightedElementBalance(*pm, "load").imbalance;
  EXPECT_LT(weighted_after, weighted_before - 0.15);
  EXPECT_LE(weighted_after, 1.25);
  EXPECT_GT(report.totalMigrated(), 0u);
}

TEST(HeavySplit, NoOpOnBalancedPartition) {
  auto gen = meshgen::boxTets(4, 4, 4);
  const auto assign = part::partition(*gen.mesh, 4, part::Method::GraphRB);
  auto pm = dist::PartedMesh::distribute(*gen.mesh, gen.model.get(), assign,
                                         dist::PartMap(4, pcu::Machine::flat(4)));
  const auto report = parma::heavyPartSplit(*pm, {.tolerance = 0.10});
  EXPECT_EQ(report.merges, 0);
  EXPECT_EQ(report.parts_split, 0);
  pm->verify();
}

TEST(HeavySplit, LegacyPathNeverChangesPartCount) {
  // Regression for the injectable split-target option (elastic scale-out):
  // the historical no-target call must still merge-then-split with the
  // part count untouched, whatever the skew.
  auto gen = meshgen::boxTets(6, 6, 6);
  std::vector<PartId> dest(gen.mesh->count(3));
  const auto g = part::buildElemGraph(*gen.mesh);
  const auto base = part::partitionGraph(g, 8, part::Method::RCB);
  for (std::size_t i = 0; i < dest.size(); ++i)
    dest[i] = base[i] <= 2 ? 0 : base[i];
  auto pm = dist::PartedMesh::distribute(*gen.mesh, gen.model.get(), dest,
                                         dist::PartMap(8, pcu::Machine::flat(8)));
  const int nparts = pm->parts();
  const auto report = parma::heavyPartSplit(*pm, {.tolerance = 0.05});
  EXPECT_EQ(pm->parts(), nparts)
      << "legacy heavyPartSplit must keep the part count invariant";
  EXPECT_GT(report.parts_split, 0);
  pm->verify();
  for (int d = 0; d <= 3; ++d)
    EXPECT_EQ(pm->globalCount(d), gen.mesh->count(d));
}

}  // namespace
