#include <gtest/gtest.h>

#include "core/measure.hpp"
#include "gmi/builders.hpp"
#include "gmi/model.hpp"
#include "meshgen/boxmesh.hpp"
#include "part/partition.hpp"
#include "pcu/comm.hpp"
#include "pcu/runtime.hpp"

namespace {

using core::Ent;

/// Odds-and-ends edge cases across modules that the main suites leave out.

TEST(PcuSplit, ThreeDisjointColorsEachCollectivelyFunctional) {
  pcu::run(9, [](pcu::Comm& c) {
    const int color = c.rank() % 3;
    pcu::Comm sub = c.split(color, c.rank());
    EXPECT_EQ(sub.size(), 3);
    // Each subgroup sums only its members' global ranks.
    const long sum = sub.allreduceSum<long>(c.rank());
    long expect = 0;
    for (int r = color; r < 9; r += 3) expect += r;
    EXPECT_EQ(sum, expect);
    // Subgroups can message internally without crosstalk.
    pcu::OutBuffer b;
    b.pack<int>(c.rank());
    sub.send((sub.rank() + 1) % sub.size(), 3, b);
    pcu::Message m = sub.recv(pcu::kAnySource, 3);
    EXPECT_EQ(m.body.unpack<int>() % 3, color);
  });
}

TEST(PcuProbe, SeesOnlyMatchingMessages) {
  pcu::run(2, [](pcu::Comm& c) {
    if (c.rank() == 0) {
      pcu::OutBuffer b;
      b.pack<int>(9);
      c.send(1, 5, b);
      c.barrier();
    } else {
      c.barrier();  // message from 0 is now enqueued
      EXPECT_TRUE(c.probe(0, 5));
      EXPECT_FALSE(c.probe(0, 6));
      EXPECT_TRUE(c.probe(pcu::kAnySource, 5));
      (void)c.recv(0, 5);
      EXPECT_FALSE(c.probe(0, 5));
    }
  });
}

TEST(PcuSplit, SingletonGroups) {
  pcu::run(4, [](pcu::Comm& c) {
    // Every rank its own color: groups of one.
    pcu::Comm solo = c.split(c.rank(), 0);
    EXPECT_EQ(solo.size(), 1);
    EXPECT_EQ(solo.rank(), 0);
    EXPECT_EQ(solo.allreduceSum<int>(7), 7);
    solo.barrier();
  });
}

TEST(GmiTraversal, CylinderRimToRegion) {
  auto model = gmi::makeCylinder({0, 0, 0}, {0, 0, 1}, 1.0, 2.0);
  auto* rim = model->find(1, 0);
  // Rim bounds side + bottom cap.
  EXPECT_EQ(rim->bounded().size(), 2u);
  // Multi-hop traversal: rim -> region.
  const auto regions = rim->adjacent(3);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0]->dim(), 3);
  // Region -> edges gives both rims.
  auto* region = model->find(3, 0);
  EXPECT_EQ(region->adjacent(1).size(), 2u);
}

TEST(GmiTraversal, SphereModelMinimal) {
  auto model = gmi::makeSphere({0, 0, 0}, 1.0);
  auto* region = model->find(3, 0);
  EXPECT_EQ(region->adjacent(2).size(), 1u);
  EXPECT_TRUE(region->adjacent(1).empty());
  EXPECT_TRUE(region->adjacent(0).empty());
}

TEST(WeightedPartition, GraphMethodRespectsWeights) {
  auto gen = meshgen::boxTets(4, 4, 4);
  auto g = part::buildElemGraph(*gen.mesh);
  // Left half 5x heavier.
  for (int i = 0; i < g.size(); ++i)
    if (g.centroids[static_cast<std::size_t>(i)].x < 0.5)
      g.weights[static_cast<std::size_t>(i)] = 5.0;
  for (auto method : {part::Method::GraphRB, part::Method::HypergraphRB,
                      part::Method::GreedyGrow}) {
    const auto assign = part::partitionGraph(g, 4, method);
    EXPECT_LT(part::imbalanceOf(assign, g.weights, 4), 1.25)
        << part::methodName(method);
  }
}

TEST(MeshEdgeCases, EmptyMeshQueries) {
  core::Mesh m;
  EXPECT_EQ(m.dim(), -1);
  EXPECT_EQ(m.count(0), 0u);
  EXPECT_EQ(m.count(3), 0u);
  EXPECT_EQ(m.all(2).size(), 0u);
  std::size_t seen = 0;
  for ([[maybe_unused]] Ent e : m.entities(1)) ++seen;
  EXPECT_EQ(seen, 0u);
  EXPECT_FALSE(m.alive(Ent{}));
  EXPECT_FALSE(m.alive(Ent(core::Topo::Tet, 99)));
}

TEST(MeshEdgeCases, SingleVertexMesh) {
  core::Mesh m;
  const Ent v = m.createVertex({1, 2, 3});
  EXPECT_EQ(m.dim(), 0);
  EXPECT_EQ(m.adjacent(v, 0), std::vector<Ent>{v});
  EXPECT_TRUE(m.up(v).empty());
  const auto box = core::bounds(m);
  EXPECT_EQ(box.lo, common::Vec3(1, 2, 3));
  EXPECT_EQ(box.hi, common::Vec3(1, 2, 3));
}

TEST(MeshEdgeCases, DestroyRecreateManyTimes) {
  core::Mesh m;
  for (int round = 0; round < 20; ++round) {
    const Ent v0 = m.createVertex({0, 0, 0});
    const Ent v1 = m.createVertex({1, 0, 0});
    const Ent v2 = m.createVertex({0, 1, 0});
    const Ent tri = m.buildElement(core::Topo::Tri, std::array{v0, v1, v2});
    m.destroy(tri);
    for (Ent e : m.all(1)) m.destroy(e);
    for (Ent v : m.all(0)) m.destroy(v);
    EXPECT_EQ(m.count(0), 0u);
    EXPECT_EQ(m.count(1), 0u);
    EXPECT_EQ(m.count(2), 0u);
  }
}

}  // namespace
