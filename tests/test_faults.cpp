/// \file test_faults.cpp
/// \brief Chaos suite for the fault-injection subsystem and the hardened
/// distributed operations.
///
/// The contract under test (ISSUE: robustness): with any seeded fault
/// schedule active, every distributed operation either COMMITS — completes
/// with PartedMesh::verify() and the independent invariants passing — or
/// ABORTS collectively with a structured pcu::Error naming the failing
/// part/channel, leaving the mesh bit-identical (fingerprint-equal) to its
/// pre-operation state. No hangs, no silent corruption.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/measure.hpp"
#include "dist/partedmesh.hpp"
#include "meshgen/boxmesh.hpp"
#include "parma/balance.hpp"
#include "part/partition.hpp"
#include "pcu/error.hpp"
#include "pcu/faults.hpp"
#include "pcu/phased.hpp"
#include "pcu/runtime.hpp"

namespace {

using core::Ent;
using dist::PartId;
using pcu::Error;
using pcu::ErrorCode;
namespace faults = pcu::faults;

/// Installs a plan for the scope of one test body; always clears on exit so
/// a failing assertion cannot leak fault state into later tests.
struct PlanGuard {
  explicit PlanGuard(const faults::FaultPlan& p) { faults::setPlan(p); }
  ~PlanGuard() { faults::clearPlan(); }
  PlanGuard(const PlanGuard&) = delete;
  PlanGuard& operator=(const PlanGuard&) = delete;
};

/// --- plan parsing --------------------------------------------------------

TEST(FaultPlan, ParsesFullSpec) {
  const auto p = faults::parsePlan(
      "seed=42,corrupt=0.01,drop=0.02,dup=0.03,delay=0.04,stall=2:5,"
      "stallms=7,watchdog=250,checksum=1");
  EXPECT_EQ(p.seed, 42u);
  EXPECT_DOUBLE_EQ(p.corrupt, 0.01);
  EXPECT_DOUBLE_EQ(p.drop, 0.02);
  EXPECT_DOUBLE_EQ(p.duplicate, 0.03);
  EXPECT_DOUBLE_EQ(p.delay, 0.04);
  EXPECT_EQ(p.stall_rank, 2);
  EXPECT_EQ(p.stall_steps, 5);
  EXPECT_EQ(p.stall_ms, 7);
  EXPECT_EQ(p.watchdog_ms, 250);
  EXPECT_TRUE(p.checksum_only);
  EXPECT_TRUE(p.injects());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  for (const char* bad : {"corrupt", "corrupt=x", "corrupt=1.5", "drop=-0.1",
                          "unknown=1", "stall=3", "seed="}) {
    try {
      faults::parsePlan(bad);
      FAIL() << "accepted malformed spec: " << bad;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kValidation) << bad;
    }
  }
}

TEST(FaultPlan, RejectsPartialAndOutOfRangeTokens) {
  // Strict parsing: every value must consume its whole token. The old
  // stod/stoull-based parser silently accepted all of these.
  for (const char* bad :
       {"drop=0.5xyz", "seed=-1", "seed=+1", "stallms=-5", "checksum=yes",
        "watchdog=10ms", "corrupt=inf", "corrupt=nan", "drop= 0.5",
        "stall=1:2:3", "stall=-1:4"}) {
    try {
      faults::parsePlan(bad);
      FAIL() << "accepted malformed spec: " << bad;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kValidation) << bad;
      // The error must name the offending token so the user can fix it.
      const std::string what = e.what();
      const std::string spec(bad);
      const std::string val = spec.substr(spec.find('=') + 1);
      if (!val.empty() && spec.find(':') == std::string::npos) {
        EXPECT_NE(what.find(val), std::string::npos)
            << "error for \"" << bad << "\" does not name the bad token: "
            << what;
      }
    }
  }
}

TEST(FaultPlan, DefaultPlanInjectsNothing) {
  EXPECT_FALSE(faults::FaultPlan{}.injects());
  if (std::getenv("PUMI_FAULTS") != nullptr) {
    GTEST_SKIP() << "PUMI_FAULTS is set in the environment; the latched "
                    "plan makes the disabled-state checks meaningless here";
  }
  EXPECT_FALSE(faults::enabled());
  EXPECT_FALSE(faults::framingEnabled());
}

/// --- determinism ---------------------------------------------------------

TEST(FaultDecide, PureFunctionOfSeedAndChannel) {
  faults::FaultPlan p;
  p.seed = 7;
  p.corrupt = p.drop = p.duplicate = p.delay = 0.1;
  std::vector<faults::Action> first;
  {
    PlanGuard g(p);
    for (std::uint64_t s = 0; s < 512; ++s)
      first.push_back(faults::decide(1, 2, 5, s));
  }
  {
    PlanGuard g(p);  // same seed: identical decision stream
    for (std::uint64_t s = 0; s < 512; ++s)
      EXPECT_EQ(faults::decide(1, 2, 5, s), first[s]) << "seq " << s;
  }
  p.seed = 8;
  {
    PlanGuard g(p);  // different seed: the stream must differ somewhere
    bool differs = false;
    for (std::uint64_t s = 0; s < 512; ++s)
      differs = differs || faults::decide(1, 2, 5, s) != first[s];
    EXPECT_TRUE(differs);
  }
  // Distinct channels get decorrelated streams under one seed.
  p.seed = 7;
  {
    PlanGuard g(p);
    bool differs = false;
    for (std::uint64_t s = 0; s < 512; ++s)
      differs = differs || faults::decide(2, 1, 5, s) != first[s];
    EXPECT_TRUE(differs);
  }
}

/// --- framing -------------------------------------------------------------

TEST(Framing, RoundTripPreservesPayload) {
  std::vector<std::byte> payload;
  for (int i = 0; i < 300; ++i) payload.push_back(std::byte(i * 7));
  auto framed = faults::frame(42, payload);
  EXPECT_EQ(framed.size(), payload.size() + faults::kFrameHeaderBytes);
  std::uint64_t seq = 0;
  auto out = faults::unframe(std::move(framed), seq, 0, 1, 5);
  EXPECT_EQ(seq, 42u);
  EXPECT_EQ(out, payload);
}

TEST(Framing, DetectsCorruptionAnywhereInCheckedRegion) {
  std::vector<std::byte> payload(64, std::byte{0xAB});
  for (std::uint64_t seq = 0; seq < 32; ++seq) {
    auto framed = faults::frame(seq, payload);
    faults::corruptFrame(framed, 3, 4, 9, seq);
    std::uint64_t got = 0;
    try {
      faults::unframe(std::move(framed), got, 4, 3, 9);
      FAIL() << "corruption not detected at seq " << seq;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kCorruptPayload);
      EXPECT_EQ(e.rank(), 4);
      EXPECT_EQ(e.peer(), 3);
      EXPECT_EQ(e.tag(), 9);
    }
  }
}

TEST(Framing, RejectsTruncatedFrame) {
  auto framed = faults::frame(1, std::vector<std::byte>(16, std::byte{1}));
  framed.resize(faults::kFrameHeaderBytes - 2);
  std::uint64_t seq = 0;
  EXPECT_THROW(faults::unframe(std::move(framed), seq, 0, 1, 2), Error);
}

TEST(Crc32, MatchesStandardKnownAnswers) {
  // IEEE 802.3 reflected CRC32 test vectors (the "check" value CBF43926
  // plus the classic string set). Pins the framing checksum against any
  // regression in table generation or bit order.
  const auto crcOf = [](const std::string& s) {
    return faults::crc32(reinterpret_cast<const std::byte*>(s.data()),
                         s.size());
  };
  EXPECT_EQ(crcOf(""), 0x00000000u);
  EXPECT_EQ(crcOf("a"), 0xE8B7BE43u);
  EXPECT_EQ(crcOf("abc"), 0x352441C2u);
  EXPECT_EQ(crcOf("message digest"), 0x20159D7Fu);
  EXPECT_EQ(crcOf("abcdefghijklmnopqrstuvwxyz"), 0x4C2750BDu);
  EXPECT_EQ(crcOf("123456789"), 0xCBF43926u);
  EXPECT_EQ(crcOf("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);
  const std::byte zero{0};
  EXPECT_EQ(faults::crc32(&zero, 1), 0xD202EF8Du);
  const std::byte ff{0xff};
  EXPECT_EQ(faults::crc32(&ff, 1), 0xFF000000u);
}

/// --- pcu-level chaos -----------------------------------------------------

/// Random phased exchanges on n ranks; returns the payload sum every rank
/// received (for conservation checks in clean modes).
long chaosExchanges(int n, int rounds, std::uint64_t seed) {
  std::atomic<long> received_total{0};
  pcu::run(n, [&](pcu::Comm& c) {
    common::Rng rng(seed + 1000 * static_cast<std::uint64_t>(c.rank()));
    for (int r = 0; r < rounds; ++r) {
      std::vector<std::pair<int, pcu::OutBuffer>> out;
      const int nmsg = static_cast<int>(rng.below(4));
      for (int m = 0; m < nmsg; ++m) {
        pcu::OutBuffer b;
        b.pack<long>(static_cast<long>(rng.below(1000)));
        out.emplace_back(static_cast<int>(rng.below(
                             static_cast<std::uint64_t>(n))),
                         std::move(b));
      }
      auto msgs = pcu::phasedExchange(c, std::move(out));
      for (auto& m : msgs) received_total += m.body.unpack<long>();
    }
  });
  return received_total.load();
}

TEST(PcuChaos, ChecksumOnlyModeDeliversIntactPayloads) {
  faults::FaultPlan p;
  p.checksum_only = true;
  PlanGuard g(p);
  // Framing on, injection off: every exchange completes with intact data.
  EXPECT_NO_THROW(chaosExchanges(6, 10, 77));
}

TEST(PcuChaos, DelayOnlyPlanRestoresOrderAndCompletes) {
  faults::FaultPlan p;
  p.seed = 5;
  p.delay = 0.3;
  p.watchdog_ms = 2000;
  PlanGuard g(p);
  // Reordering is injected aggressively; the receive path must restore
  // per-channel order and terminate without error.
  EXPECT_NO_THROW(chaosExchanges(6, 10, 91));
}

TEST(PcuChaos, SeededFaultsCompleteOrFailStructurally) {
  // 20 seeds of mixed corruption/drop/duplication. Every run must either
  // complete or abort with a structured error on every rank — never hang
  // (the watchdog converts any wait-on-dropped-message into kTimeout) and
  // never deliver corrupted bytes.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    faults::FaultPlan p;
    p.seed = seed;
    p.corrupt = 0.05;
    p.drop = 0.05;
    p.duplicate = 0.05;
    p.watchdog_ms = 500;
    PlanGuard g(p);
    try {
      chaosExchanges(5, 6, seed * 31);
    } catch (const Error& e) {
      const auto c = e.code();
      EXPECT_TRUE(c == ErrorCode::kCorruptPayload ||
                  c == ErrorCode::kDuplicateMessage ||
                  c == ErrorCode::kMessageLost || c == ErrorCode::kTimeout ||
                  c == ErrorCode::kRemoteAbort)
          << "seed " << seed << ": unexpected " << e.what();
    }
  }
}

TEST(PcuChaos, StalledRankIsToleratedByWatchdog) {
  faults::FaultPlan p;
  p.seed = 3;
  p.stall_rank = 1;
  p.stall_steps = 4;
  p.stall_ms = 5;
  p.watchdog_ms = 2000;
  PlanGuard g(p);
  // A slow rank is not an error: the watchdog outlasts the stall.
  EXPECT_NO_THROW(chaosExchanges(4, 8, 13));
}

TEST(PcuChaos, CertainDropTriggersCollectiveAbortNotHang) {
  faults::FaultPlan p;
  p.seed = 9;
  p.drop = 1.0;
  p.watchdog_ms = 200;
  PlanGuard g(p);
  // Every message is dropped; receivers must time out and all ranks must
  // agree on the abort instead of waiting forever.
  try {
    pcu::run(4, [&](pcu::Comm& c) {
      std::vector<std::pair<int, pcu::OutBuffer>> out;
      pcu::OutBuffer b;
      b.pack<int>(c.rank());
      out.emplace_back((c.rank() + 1) % 4, std::move(b));
      pcu::phasedExchange(c, std::move(out));
    });
    FAIL() << "dropped exchange completed";
  } catch (const Error& e) {
    EXPECT_TRUE(e.code() == ErrorCode::kTimeout ||
                e.code() == ErrorCode::kRemoteAbort)
        << e.what();
    if (e.code() == ErrorCode::kTimeout) {
      EXPECT_NE(e.detail().find("last phase"), std::string::npos)
          << "timeout must dump the rank's last-known phase: " << e.what();
    }
  }
}

TEST(PcuChaos, CorruptedCoalescedFrameAbortsPhaseCollectively) {
  // With >= 8 payloads per peer the exchange ships one coalesced segment
  // per neighbour, framed with a single seq/CRC. Corrupting every physical
  // frame must abort the phase on *every* rank (local detection or
  // kRemoteAbort via the error agreement), never deliver a payload.
  faults::FaultPlan p;
  p.seed = 4;
  p.corrupt = 1.0;
  p.watchdog_ms = 1000;
  PlanGuard g(p);
  std::atomic<int> aborted{0};
  try {
    pcu::run(6, [&](pcu::Comm& c) {
      std::vector<std::pair<int, pcu::OutBuffer>> out;
      for (int i = 0; i < 8; ++i) {
        pcu::OutBuffer b;
        b.pack<int>(i);
        out.emplace_back((c.rank() + 1) % 6, std::move(b));
      }
      try {
        pcu::phasedExchange(c, std::move(out));
      } catch (const Error& e) {
        EXPECT_TRUE(e.code() == ErrorCode::kCorruptPayload ||
                    e.code() == ErrorCode::kRemoteAbort)
            << e.what();
        ++aborted;
        throw;
      }
    });
    FAIL() << "exchange with every coalesced frame corrupted completed";
  } catch (const Error&) {
  }
  EXPECT_EQ(aborted.load(), 6) << "abort must be collective across ranks";
}

/// --- dist-level chaos ----------------------------------------------------

double globalMeasure(dist::PartedMesh& pm) {
  double v = 0.0;
  for (PartId p = 0; p < pm.parts(); ++p)
    for (Ent e : pm.part(p).elements())
      v += core::measure(pm.part(p).mesh(), e);
  return v;
}

struct MeshCase {
  bool three_d;
  std::uint64_t seed;
};

std::unique_ptr<dist::PartedMesh> makeMesh(const meshgen::Generated& gen,
                                           int nparts) {
  const auto assign = part::partition(*gen.mesh, nparts, part::Method::RCB);
  return dist::PartedMesh::distribute(
      *gen.mesh, gen.model.get(), assign,
      dist::PartMap(nparts, pcu::Machine::flat(nparts)));
}

dist::MigrationPlan randomPlan(dist::PartedMesh& pm, common::Rng& rng,
                               double move_prob) {
  dist::MigrationPlan plan(static_cast<std::size_t>(pm.parts()));
  for (PartId p = 0; p < pm.parts(); ++p)
    for (Ent e : pm.part(p).elements()) {
      if (rng.uniform() >= move_prob) continue;
      const auto dest = static_cast<PartId>(
          rng.below(static_cast<std::uint64_t>(pm.parts())));
      if (dest != p) plan[static_cast<std::size_t>(p)][e] = dest;
    }
  return plan;
}

class DistChaos : public ::testing::TestWithParam<MeshCase> {};

TEST_P(DistChaos, OpsCommitCleanOrAbortToExactPreState) {
  const auto [three_d, seed] = GetParam();
  auto gen = three_d ? meshgen::boxTets(4, 4, 4) : meshgen::boxTris(6, 6);
  const int nparts = three_d ? 5 : 4;
  auto pm = makeMesh(gen, nparts);
  const int dim = pm->dim();
  std::vector<std::size_t> counts(static_cast<std::size_t>(dim) + 1);
  for (int d = 0; d <= dim; ++d)
    counts[static_cast<std::size_t>(d)] = pm->globalCount(d);
  const double volume = globalMeasure(*pm);
  common::Rng rng(seed);

  faults::FaultPlan p;
  p.seed = seed;
  p.corrupt = 0.01;
  p.drop = 0.01;
  p.duplicate = 0.01;
  p.delay = 0.03;

  int commits = 0;
  int aborts = 0;
  for (int round = 0; round < 6; ++round) {
    // Each op is its own transaction: commit, or abort to the exact state
    // fingerprinted immediately before that op.
    auto attempt = [&](const std::function<void()>& op) {
      const std::uint64_t before = pm->fingerprint();
      try {
        op();
        ++commits;
      } catch (const Error& e) {
        EXPECT_NE(e.code(), ErrorCode::kNone);
        EXPECT_EQ(pm->fingerprint(), before)
            << "seed " << seed << " round " << round
            << ": aborted op left a different mesh: " << e.what();
        ++aborts;
      }
    };
    {
      PlanGuard g(p);
      if (round % 3 != 2) {
        const auto plan = randomPlan(*pm, rng, 0.15);
        attempt([&] { pm->migrate(plan); });
      } else {
        attempt([&] { pm->ghostLayers(1); });
        attempt([&] { pm->syncGhostTags(); });
      }
    }
    // Committed or rolled back, all invariants must hold, faults cleared.
    ASSERT_NO_THROW(pm->verify()) << "seed " << seed << " round " << round;
    bool any_ghosts = false;
    for (PartId q = 0; q < pm->parts(); ++q)
      any_ghosts = any_ghosts || pm->part(q).ghostCount() > 0;
    if (any_ghosts) pm->unghost();
    for (int d = 0; d <= dim; ++d)
      ASSERT_EQ(pm->globalCount(d), counts[static_cast<std::size_t>(d)])
          << "seed " << seed << " round " << round << " dim " << d;
    ASSERT_NEAR(globalMeasure(*pm), volume, 1e-9);
  }
  // The schedule must exercise at least one of the two outcomes; both
  // counters are reported for seed tuning.
  EXPECT_GT(commits + aborts, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, DistChaos, ::testing::ValuesIn([] {
      std::vector<MeshCase> cases;
      for (std::uint64_t s = 1; s <= 11; ++s) {
        cases.push_back({false, s});
        cases.push_back({true, s});
      }
      return cases;
    }()),
    [](const ::testing::TestParamInfo<MeshCase>& info) {
      return std::string(info.param.three_d ? "tets" : "tris") + "_seed" +
             std::to_string(info.param.seed);
    });

TEST(DistChaos, CertainLossAbortsMigrationWithExactRollback) {
  auto gen = meshgen::boxTets(3, 3, 3);
  auto pm = makeMesh(gen, 4);
  common::Rng rng(17);
  const auto plan = randomPlan(*pm, rng, 0.3);
  const std::uint64_t before = pm->fingerprint();

  faults::FaultPlan p;
  p.seed = 2;
  p.drop = 1.0;
  PlanGuard g(p);
  try {
    pm->migrate(plan);
    FAIL() << "migration with all messages dropped committed";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kMessageLost) << e.what();
    EXPECT_EQ(e.tag(), dist::kNetChannelTag);
  }
  EXPECT_EQ(pm->fingerprint(), before);
  EXPECT_NO_THROW(pm->verify());
}

TEST(DistChaos, CertainCorruptionAbortsMigrationWithExactRollback) {
  // Migration traffic is coalesced into one segment per (from, to) pair;
  // corrupting every segment's frame must surface as a structured
  // kCorruptPayload on the transport channel and roll the mesh back to the
  // exact pre-migration state.
  auto gen = meshgen::boxTets(3, 3, 3);
  auto pm = makeMesh(gen, 4);
  common::Rng rng(29);
  const auto plan = randomPlan(*pm, rng, 0.3);
  const std::uint64_t before = pm->fingerprint();

  faults::FaultPlan p;
  p.seed = 8;
  p.corrupt = 1.0;
  PlanGuard g(p);
  try {
    pm->migrate(plan);
    FAIL() << "migration with every coalesced segment corrupted committed";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCorruptPayload) << e.what();
    EXPECT_EQ(e.tag(), dist::kNetChannelTag);
  }
  EXPECT_EQ(pm->fingerprint(), before);
  EXPECT_NO_THROW(pm->verify());
}

TEST(DistChaos, BalanceSkipsFaultedRoundsAndKeepsMeshValid) {
  auto gen = meshgen::boxTets(4, 4, 4);
  auto pm = makeMesh(gen, 5);
  const auto n3 = pm->globalCount(3);

  faults::FaultPlan p;
  p.seed = 6;
  p.corrupt = 0.02;
  p.drop = 0.02;
  PlanGuard g(p);
  parma::BalanceOptions opts;
  opts.max_rounds = 4;
  const auto report = parma::balance(*pm, "Rgn", opts);
  // Faulted rounds are recorded and skipped; the mesh survives them all.
  if (report.rounds_faulted > 0) {
    EXPECT_NE(report.last_error.find("pcu::Error"), std::string::npos);
  }
  EXPECT_NO_THROW(pm->verify());
  EXPECT_EQ(pm->globalCount(3), n3);
}

TEST(DistChaos, ChecksumOnlyModeIsTransparentToMigration) {
  auto gen = meshgen::boxTris(6, 6);
  auto pm = makeMesh(gen, 4);
  common::Rng rng(23);
  const auto n2 = pm->globalCount(2);

  faults::FaultPlan p;
  p.checksum_only = true;
  PlanGuard g(p);
  for (int round = 0; round < 3; ++round) {
    pm->migrate(randomPlan(*pm, rng, 0.2));
    pm->verify();
  }
  EXPECT_EQ(pm->globalCount(2), n2);
}

/// --- plan validation (satellite a) ---------------------------------------

TEST(MigrateValidation, OutOfRangeDestinationIsStructuredError) {
  auto gen = meshgen::boxTris(4, 4);
  auto pm = makeMesh(gen, 3);
  const std::uint64_t before = pm->fingerprint();
  dist::MigrationPlan plan(3);
  plan[0][pm->part(0).elements().front()] = 99;
  try {
    pm->migrate(plan);
    FAIL() << "accepted out-of-range destination";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kValidation);
    EXPECT_EQ(e.rank(), 0);
    EXPECT_NE(e.detail().find("out of range"), std::string::npos);
  }
  EXPECT_EQ(pm->fingerprint(), before) << "validation must not mutate";
}

TEST(MigrateValidation, DeadEntityInPlanIsStructuredError) {
  auto gen = meshgen::boxTris(4, 4);
  auto pm = makeMesh(gen, 3);
  // An element of part 1 is not a live handle on part 0.
  dist::MigrationPlan plan(3);
  Ent foreign = pm->part(1).elements().front();
  // Make sure the handle really is dead on part 0 (pool sizes may differ).
  if (pm->part(0).mesh().alive(foreign)) {
    // Destroy the same-handle element on part 0 to force deadness.
    pm->part(0).mesh().destroy(foreign);
    pm->part(0).sweepDeadRemotes();
  }
  plan[0][foreign] = 1;
  const std::uint64_t before = pm->fingerprint();
  try {
    pm->migrate(plan);
    FAIL() << "accepted dead entity";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kValidation);
    EXPECT_NE(e.detail().find("dead entity"), std::string::npos);
  }
  EXPECT_EQ(pm->fingerprint(), before);
}

TEST(MigrateValidation, NonElementEntryIsStructuredError) {
  auto gen = meshgen::boxTris(4, 4);
  auto pm = makeMesh(gen, 3);
  dist::MigrationPlan plan(3);
  // A vertex is not an element; the plan must be rejected up front.
  Ent v;
  for (Ent e : pm->part(0).mesh().entities(0)) {
    v = e;
    break;
  }
  plan[0][v] = 1;
  const std::uint64_t before = pm->fingerprint();
  try {
    pm->migrate(plan);
    FAIL() << "accepted non-element entry";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kValidation);
    EXPECT_NE(e.detail().find("not an element"), std::string::npos);
  }
  EXPECT_EQ(pm->fingerprint(), before);
}

/// --- verify() ghost diagnostics (satellite b) ----------------------------

TEST(VerifyGhosts, DetectsDeadGhostWithNamedInvariant) {
  auto gen = meshgen::boxTris(5, 5);
  auto pm = makeMesh(gen, 3);
  pm->ghostLayers(1);
  ASSERT_NO_THROW(pm->verify());
  // Destroy one ghost element behind the bookkeeping's back: verify() must
  // name the broken ghost invariant instead of passing or crashing.
  bool destroyed = false;
  for (PartId p = 0; p < pm->parts() && !destroyed; ++p) {
    auto& part = pm->part(p);
    for (Ent e : part.mesh().entities(pm->dim())) {
      if (!part.isGhost(e)) continue;
      part.mesh().destroy(e);
      destroyed = true;
      break;
    }
  }
  ASSERT_TRUE(destroyed) << "ghosting produced no ghost elements";
  try {
    pm->verify();
    FAIL() << "verify passed with a dead ghost";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("ghost"), std::string::npos)
        << e.what();
  }
}

TEST(VerifyGhosts, DetectsGhostTrackingBrokenOnOwner) {
  auto gen = meshgen::boxTris(5, 5);
  auto pm = makeMesh(gen, 3);
  pm->ghostLayers(1);
  // Break one owner-side tracked copy by corrupting the ghost's source
  // part's record via a round-trip: destroy the ghost AND remove its
  // ghost_source record, leaving the owner pointing at a dead target (a
  // stale syncGhostTags destination).
  bool broke = false;
  for (PartId p = 0; p < pm->parts() && !broke; ++p) {
    auto& part = pm->part(p);
    for (Ent e : part.mesh().entities(pm->dim())) {
      if (part.ghostCopies(e) == nullptr) continue;
      // e is a real entity with tracked ghost copies; kill one target.
      const auto copies = *part.ghostCopies(e);
      auto& qpart = pm->part(copies.front().part);
      qpart.mesh().destroy(copies.front().ent);
      broke = true;
      break;
    }
  }
  ASSERT_TRUE(broke) << "no tracked ghost copies found";
  EXPECT_THROW(pm->verify(), std::logic_error);
}

/// --- explicit transactional mode ----------------------------------------

TEST(Transactional, ModeIsStickyAndHarmlessWithoutFaults) {
  auto gen = meshgen::boxTris(4, 4);
  auto pm = makeMesh(gen, 3);
  pm->setTransactional(true);
  EXPECT_TRUE(pm->transactional());
  common::Rng rng(3);
  const auto n2 = pm->globalCount(2);
  // Clean run under transactional mode: snapshots taken, commits happen.
  for (int round = 0; round < 3; ++round) {
    pm->migrate(randomPlan(*pm, rng, 0.2));
    pm->verify();
  }
  EXPECT_EQ(pm->globalCount(2), n2);
}

TEST(Transactional, FingerprintIsStateSensitive) {
  auto gen = meshgen::boxTris(4, 4);
  auto pm = makeMesh(gen, 3);
  const auto before = pm->fingerprint();
  EXPECT_EQ(before, pm->fingerprint()) << "fingerprint must be deterministic";
  common::Rng rng(5);
  dist::MigrationPlan plan;
  do {
    plan = randomPlan(*pm, rng, 0.3);
  } while (std::all_of(plan.begin(), plan.end(),
                       [](const auto& m) { return m.empty(); }));
  pm->migrate(plan);
  EXPECT_NE(pm->fingerprint(), before)
      << "fingerprint must change when elements move";
}

}  // namespace
