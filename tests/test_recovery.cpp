/// \file test_recovery.cpp
/// \brief Tests for the three-tier recovery stack.
///
/// Contract under test (ISSUE: self-healing messaging): with reliable
/// delivery on, any *transient* fault plan (drop/corrupt/dup/delay at
/// p <= 5%) must be invisible — pcu exchanges deliver every payload intact
/// and dist operations commit verify()-clean, across many seeds, with zero
/// aborts. *Permanent* plans must exhaust the bounded retry budget and
/// surface the existing structured pcu::Error, never hang. And a
/// checkpointed mesh killed mid-run must restore fingerprint()-identical.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "dist/checkpoint.hpp"
#include "dist/pario.hpp"
#include "dist/partedmesh.hpp"
#include "meshgen/boxmesh.hpp"
#include "parma/balance.hpp"
#include "part/partition.hpp"
#include "pcu/arq.hpp"
#include "pcu/error.hpp"
#include "pcu/faults.hpp"
#include "pcu/phased.hpp"
#include "pcu/runtime.hpp"

namespace {

using core::Ent;
using dist::PartId;
using pcu::Error;
using pcu::ErrorCode;
namespace faults = pcu::faults;
namespace arq = pcu::arq;

/// Installs a plan for the scope of one test body; always clears on exit so
/// a failing assertion cannot leak fault state into later tests.
struct PlanGuard {
  explicit PlanGuard(const faults::FaultPlan& p) { faults::setPlan(p); }
  ~PlanGuard() { faults::clearPlan(); }
  PlanGuard(const PlanGuard&) = delete;
  PlanGuard& operator=(const PlanGuard&) = delete;
};

/// Turns reliable delivery on for one test body (fresh stats), off on exit.
struct ReliableGuard {
  ReliableGuard() {
    arq::resetStats();
    arq::setReliable(true);
  }
  ~ReliableGuard() { arq::setReliable(false); }
  ReliableGuard(const ReliableGuard&) = delete;
  ReliableGuard& operator=(const ReliableGuard&) = delete;
};

faults::FaultPlan transientPlan(std::uint64_t seed, double p) {
  faults::FaultPlan plan;
  plan.seed = seed;
  plan.corrupt = plan.drop = plan.duplicate = plan.delay = p;
  plan.watchdog_ms = 5000;  // safety net only; recovery should never need it
  return plan;
}

/// --- tier 1: reliable pcu channels ---------------------------------------

/// Deterministic phased exchanges where every payload is accounted for:
/// returns (sum sent, sum received) across all ranks — equal iff delivery
/// was lossless and dedup exact.
std::pair<long, long> accountedExchanges(int n, int rounds,
                                         std::uint64_t seed) {
  std::atomic<long> sent{0};
  std::atomic<long> received{0};
  pcu::run(n, [&](pcu::Comm& c) {
    common::Rng rng(seed + 1000 * static_cast<std::uint64_t>(c.rank()));
    for (int r = 0; r < rounds; ++r) {
      std::vector<std::pair<int, pcu::OutBuffer>> out;
      const int nmsg = 1 + static_cast<int>(rng.below(3));
      for (int m = 0; m < nmsg; ++m) {
        const long v = static_cast<long>(rng.below(1000));
        sent += v;
        pcu::OutBuffer b;
        b.pack<long>(v);
        out.emplace_back(
            static_cast<int>(rng.below(static_cast<std::uint64_t>(n))),
            std::move(b));
      }
      auto msgs = pcu::phasedExchange(c, std::move(out));
      for (auto& m : msgs) received += m.body.unpack<long>();
    }
  });
  return {sent.load(), received.load()};
}

TEST(PcuReliable, TransientChaosDeliversEverySeed) {
  // The exact workload that completes-or-aborts in test_faults must now
  // *always* complete with every payload delivered exactly once: 20 seeds,
  // all four fault kinds live at once.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    ReliableGuard rel;
    PlanGuard g(transientPlan(seed, 0.05));
    const auto [sent, received] = accountedExchanges(4, 5, seed * 31);
    EXPECT_EQ(sent, received) << "seed " << seed
                              << ": payloads lost or duplicated";
  }
}

TEST(PcuReliable, RecoveryIsExercisedNotVacuous) {
  // Drive enough traffic through a lossy plan that the ARQ machinery
  // provably ran: beacons were sent for drops and retransmissions recovered
  // real payloads.
  ReliableGuard rel;
  faults::FaultPlan p;
  p.seed = 11;
  p.drop = 0.15;
  p.watchdog_ms = 5000;
  PlanGuard g(p);
  const auto [sent, received] = accountedExchanges(4, 10, 99);
  EXPECT_EQ(sent, received);
  const auto st = arq::stats();
  EXPECT_GT(st.beacons_sent, 0u);
  EXPECT_GT(st.recovered, 0u);
}

TEST(PcuReliable, PermanentDropExhaustsBudgetStructurally) {
  // drop=1.0 defeats every retransmission: the bounded budget must convert
  // to a structured kMessageLost naming the budget — not a hang, and not an
  // unstructured failure.
  ReliableGuard rel;
  faults::FaultPlan p;
  p.seed = 9;
  p.drop = 1.0;
  p.watchdog_ms = 2000;
  PlanGuard g(p);
  try {
    pcu::run(4, [&](pcu::Comm& c) {
      std::vector<std::pair<int, pcu::OutBuffer>> out;
      pcu::OutBuffer b;
      b.pack<int>(c.rank());
      out.emplace_back((c.rank() + 1) % 4, std::move(b));
      pcu::phasedExchange(c, std::move(out));
    });
    FAIL() << "exchange with every message and retransmission dropped "
              "completed";
  } catch (const Error& e) {
    EXPECT_TRUE(e.code() == ErrorCode::kMessageLost ||
                e.code() == ErrorCode::kRemoteAbort ||
                e.code() == ErrorCode::kTimeout)
        << e.what();
    if (e.code() == ErrorCode::kMessageLost) {
      EXPECT_NE(e.detail().find("budget"), std::string::npos) << e.what();
    }
  }
}

TEST(PcuReliable, PermanentCorruptionExhaustsBudgetStructurally) {
  ReliableGuard rel;
  faults::FaultPlan p;
  p.seed = 4;
  p.corrupt = 1.0;
  p.watchdog_ms = 2000;
  PlanGuard g(p);
  try {
    pcu::run(4, [&](pcu::Comm& c) {
      std::vector<std::pair<int, pcu::OutBuffer>> out;
      pcu::OutBuffer b;
      b.pack<int>(c.rank());
      out.emplace_back((c.rank() + 1) % 4, std::move(b));
      pcu::phasedExchange(c, std::move(out));
    });
    FAIL() << "exchange with every frame corrupted completed";
  } catch (const Error& e) {
    EXPECT_TRUE(e.code() == ErrorCode::kMessageLost ||
                e.code() == ErrorCode::kRemoteAbort ||
                e.code() == ErrorCode::kTimeout)
        << e.what();
  }
}

/// --- tiers 1+2 over dist: the chaos matrix --------------------------------

std::unique_ptr<dist::PartedMesh> makeMesh(const meshgen::Generated& gen,
                                           int nparts) {
  const auto assign = part::partition(*gen.mesh, nparts, part::Method::RCB);
  return dist::PartedMesh::distribute(
      *gen.mesh, gen.model.get(), assign,
      dist::PartMap(nparts, pcu::Machine::flat(nparts)));
}

dist::MigrationPlan randomPlan(dist::PartedMesh& pm, common::Rng& rng,
                               double move_prob) {
  dist::MigrationPlan plan(static_cast<std::size_t>(pm.parts()));
  for (PartId p = 0; p < pm.parts(); ++p)
    for (Ent e : pm.part(p).elements()) {
      if (rng.uniform() >= move_prob) continue;
      const auto dest = static_cast<PartId>(
          rng.below(static_cast<std::uint64_t>(pm.parts())));
      if (dest != p) plan[static_cast<std::size_t>(p)][e] = dest;
    }
  return plan;
}

enum class FaultKind { kDrop, kCorrupt, kDuplicate, kDelay };

struct MatrixCase {
  FaultKind kind;
  bool coalesce;
  bool three_d;
};

class RecoveryMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(RecoveryMatrix, TransientFaultsAreInvisibleToDistOps) {
  const auto [kind, coalesce, three_d] = GetParam();
  auto gen = three_d ? meshgen::boxTets(3, 3, 3) : meshgen::boxTris(5, 5);
  const int nparts = 4;
  auto pm = makeMesh(gen, nparts);
  pm->network().setCoalescing(coalesce);
  const int dim = pm->dim();
  std::vector<std::size_t> counts(static_cast<std::size_t>(dim) + 1);
  for (int d = 0; d <= dim; ++d)
    counts[static_cast<std::size_t>(d)] = pm->globalCount(d);

  faults::FaultPlan p;
  p.seed = 41 + static_cast<std::uint64_t>(static_cast<int>(kind));
  p.watchdog_ms = 5000;
  switch (kind) {
    case FaultKind::kDrop: p.drop = 0.05; break;
    case FaultKind::kCorrupt: p.corrupt = 0.05; break;
    case FaultKind::kDuplicate: p.duplicate = 0.05; break;
    case FaultKind::kDelay: p.delay = 0.05; break;
  }
  ReliableGuard rel;
  PlanGuard g(p);
  common::Rng rng(p.seed);

  // Every operation must COMMIT: under a transient plan with reliability
  // on, aborting (the PR-2 behaviour) is a test failure.
  for (int round = 0; round < 3; ++round) {
    ASSERT_NO_THROW(pm->migrate(randomPlan(*pm, rng, 0.15)))
        << "round " << round;
    ASSERT_NO_THROW(pm->ghostLayers(1)) << "round " << round;
    ASSERT_NO_THROW(pm->syncGhostTags()) << "round " << round;
    ASSERT_NO_THROW(pm->unghost()) << "round " << round;
    ASSERT_NO_THROW(pm->verify()) << "round " << round;
    for (int d = 0; d <= dim; ++d)
      ASSERT_EQ(pm->globalCount(d), counts[static_cast<std::size_t>(d)])
          << "round " << round << " dim " << d;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, RecoveryMatrix, ::testing::ValuesIn([] {
      std::vector<MatrixCase> cases;
      for (FaultKind k : {FaultKind::kDrop, FaultKind::kCorrupt,
                          FaultKind::kDuplicate, FaultKind::kDelay})
        for (bool coalesce : {true, false})
          for (bool three_d : {false, true})
            cases.push_back({k, coalesce, three_d});
      return cases;
    }()),
    [](const ::testing::TestParamInfo<MatrixCase>& info) {
      const char* kind = "";
      switch (info.param.kind) {
        case FaultKind::kDrop: kind = "drop"; break;
        case FaultKind::kCorrupt: kind = "corrupt"; break;
        case FaultKind::kDuplicate: kind = "dup"; break;
        case FaultKind::kDelay: kind = "delay"; break;
      }
      return std::string(kind) +
             (info.param.coalesce ? "_coalesced" : "_uncoalesced") +
             (info.param.three_d ? "_tets" : "_tris");
    });

TEST(DistReliable, TwentySeedsMixedChaosZeroAborts) {
  // The headline acceptance criterion: >= 20 seeds of the full mixed plan
  // at p = 2%, reliability on — migrate/ghostLayers/syncGhostTags all
  // verify()-clean with zero aborts.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    auto gen =
        (seed % 2 == 0) ? meshgen::boxTets(3, 3, 3) : meshgen::boxTris(5, 5);
    auto pm = makeMesh(gen, 4);
    ReliableGuard rel;
    PlanGuard g(transientPlan(seed, 0.02));
    common::Rng rng(seed * 7);
    ASSERT_NO_THROW({
      pm->migrate(randomPlan(*pm, rng, 0.2));
      pm->ghostLayers(1);
      pm->syncGhostTags();
      pm->unghost();
      pm->migrate(randomPlan(*pm, rng, 0.2));
      pm->verify();
    }) << "seed "
       << seed;
  }
}

TEST(DistReliable, PermanentLossStillAbortsWithExactRollback) {
  // Reliability must not turn a permanent failure into a hang or a lie:
  // drop=1.0 exhausts the segment retransmission budget, tier 2 replays
  // the operation op_retries times (each replay failing the same way), and
  // the final error is the structured kMessageLost with the budget named —
  // with the mesh rolled back bit-exactly.
  auto gen = meshgen::boxTets(3, 3, 3);
  auto pm = makeMesh(gen, 4);
  common::Rng rng(17);
  const auto plan = randomPlan(*pm, rng, 0.3);
  const std::uint64_t before = pm->fingerprint();

  ReliableGuard rel;
  faults::FaultPlan p;
  p.seed = 2;
  p.drop = 1.0;
  PlanGuard g(p);
  try {
    pm->migrate(plan);
    FAIL() << "migration with all messages and retransmissions dropped "
              "committed";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kMessageLost) << e.what();
    EXPECT_EQ(e.tag(), dist::kNetChannelTag);
    EXPECT_NE(e.detail().find("budget"), std::string::npos) << e.what();
  }
  EXPECT_EQ(pm->fingerprint(), before);
  EXPECT_NO_THROW(pm->verify());
}

TEST(DistReliable, OperationRetryReplaysUnderFreshFaultEpoch) {
  // Tier 2 alone (no ARQ): with a drop rate high enough that most attempts
  // abort, the retry loop must eventually land an attempt whose (epoch-
  // salted) fault stream lets the operation through — and count the
  // replays.
  // Note the rate: tier 2 replays the WHOLE operation, so it only wins
  // when a full clean replay is likely (here ~0.98^segments per attempt).
  // Higher rates are what tier 1's per-segment retransmission is for.
  auto gen = meshgen::boxTris(5, 5);
  auto pm = makeMesh(gen, 4);
  pm->setOpRetries(100);
  common::Rng rng(13);

  faults::FaultPlan p;
  p.seed = 3;
  p.drop = 0.02;
  PlanGuard g(p);
  for (int round = 0; round < 4; ++round)
    ASSERT_NO_THROW(pm->migrate(randomPlan(*pm, rng, 0.2)))
        << "round " << round << " after " << pm->opsRetried() << " replays";
  EXPECT_NO_THROW(pm->verify());
  // At least one attempt must have aborted and been replayed under a fresh
  // fault epoch (deterministic for this seed).
  EXPECT_GT(pm->opsRetried(), 0u);
}

TEST(DistReliable, ValidationErrorsAreNeverRetried) {
  auto gen = meshgen::boxTris(4, 4);
  auto pm = makeMesh(gen, 3);
  pm->setOpRetries(10);
  pm->setTransactional(true);
  const auto replays_before = pm->opsRetried();
  dist::MigrationPlan bad(static_cast<std::size_t>(pm->parts()));
  bad[0][pm->part(0).elements().front()] = 99;  // out-of-range destination
  EXPECT_THROW(pm->migrate(bad), Error);
  EXPECT_EQ(pm->opsRetried(), replays_before)
      << "a kValidation rejection must not burn retry budget";
}

TEST(DistReliable, BalanceCompletesUnderTransientFaults) {
  auto gen = meshgen::boxTets(4, 4, 4);
  auto pm = makeMesh(gen, 5);
  const auto n3 = pm->globalCount(3);

  ReliableGuard rel;
  PlanGuard g(transientPlan(6, 0.02));
  parma::BalanceOptions opts;
  opts.max_rounds = 3;
  const auto report = parma::balance(*pm, "Rgn", opts);
  EXPECT_EQ(report.rounds_faulted, 0)
      << "transient faults with reliability on must not cost a round: "
      << report.last_error;
  EXPECT_NO_THROW(pm->verify());
  EXPECT_EQ(pm->globalCount(3), n3);
}

TEST(DistReliable, BalanceRetriesRoundsWithoutArq) {
  // Tier 2 at the balancer: with no ARQ and a lossy plan, faulted rounds
  // are re-planned in place and only count as faulted once retries are
  // also lost. rounds_retried surfaces how hard the balancer worked.
  auto gen = meshgen::boxTets(4, 4, 4);
  auto pm = makeMesh(gen, 5);
  const auto n3 = pm->globalCount(3);

  faults::FaultPlan p;
  p.seed = 21;
  p.drop = 0.05;
  PlanGuard g(p);
  parma::BalanceOptions opts;
  opts.max_rounds = 3;
  opts.round_retries = 4;
  const auto report = parma::balance(*pm, "Rgn", opts);
  EXPECT_GE(report.rounds_retried, 0);
  EXPECT_NO_THROW(pm->verify());
  EXPECT_EQ(pm->globalCount(3), n3);
}

/// --- tier 3: checkpoint / restore ----------------------------------------

std::string freshDir(const std::string& leaf) {
  namespace fs = std::filesystem;
  const fs::path d = fs::temp_directory_path() / "pumi_test_recovery" / leaf;
  fs::remove_all(d);
  return d.string();
}

TEST(Checkpoint, RoundTripIsFingerprintIdentical) {
  auto gen = meshgen::boxTets(3, 3, 3);
  auto pm = makeMesh(gen, 4);
  common::Rng rng(5);
  pm->migrate(randomPlan(*pm, rng, 0.25));
  pm->ghostLayers(1);  // ghosts and their records must round-trip too
  const std::uint64_t fp = pm->fingerprint();
  const int dim = pm->dim();

  const auto dir = freshDir("roundtrip");
  dist::checkpoint(*pm, dir);
  EXPECT_TRUE(dist::checkpointValid(dir));

  auto restored =
      dist::restore(dir, gen.model.get(),
                    dist::PartMap(pm->parts(), pcu::Machine::flat(4)));
  EXPECT_EQ(restored->fingerprint(), fp);
  EXPECT_EQ(restored->dim(), dim);
  EXPECT_NO_THROW(restored->verify());
  for (int d = 0; d <= dim; ++d)
    EXPECT_EQ(restored->globalCount(d), pm->globalCount(d)) << "dim " << d;

  // The restored mesh is fully operational, not just structurally equal.
  restored->unghost();
  common::Rng rng2(6);
  EXPECT_NO_THROW(restored->migrate(randomPlan(*restored, rng2, 0.2)));
  EXPECT_NO_THROW(restored->verify());
}

TEST(Checkpoint, TwoDimensionalMeshRoundTrips) {
  auto gen = meshgen::boxTris(6, 6);
  auto pm = makeMesh(gen, 4);
  common::Rng rng(8);
  pm->migrate(randomPlan(*pm, rng, 0.2));
  const std::uint64_t fp = pm->fingerprint();
  const auto dir = freshDir("roundtrip2d");
  dist::checkpoint(*pm, dir);
  auto restored = dist::restore(dir, gen.model.get());
  EXPECT_EQ(restored->fingerprint(), fp);
  EXPECT_NO_THROW(restored->verify());
}

/// Flip one byte inside the chunk payload at `offset` of the image file.
void flipImageByte(const std::string& image_path, std::uint64_t offset) {
  std::fstream f(image_path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good()) << image_path;
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x40);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
}

TEST(Checkpoint, ReadRepairsSingleCorruptedCopy) {
  auto gen = meshgen::boxTris(4, 4);
  auto pm = makeMesh(gen, 3);
  const std::uint64_t fp = pm->fingerprint();
  const auto dir = freshDir("corrupt1");
  dist::checkpoint(*pm, dir);
  ASSERT_TRUE(dist::checkpointValid(dir));

  // Flip one byte in the middle of part 0's primary mesh chunk: the buddy
  // replica is intact, so the checkpoint still validates and restore
  // silently repairs the damage.
  const auto idx = dist::pario::loadIndex(dir);
  const auto& slot = idx.parts[0].mesh;
  flipImageByte(dir + "/" + idx.image,
                slot.primary + dist::pario::kChunkHeaderBytes +
                    slot.length / 2);
  EXPECT_TRUE(dist::checkpointValid(dir));

  dist::pario::RestoreReport report;
  auto restored = dist::pario::restoreImage(
      dir, gen.model.get(), dist::pario::OnLoss::kFail, &report);
  EXPECT_EQ(restored->fingerprint(), fp);
  EXPECT_EQ(report.chunks_repaired, 1u);
  EXPECT_TRUE(report.lost.empty());
  // The repair persisted: a scrub right after finds nothing left to fix.
  EXPECT_EQ(dist::pario::scrub(dir).chunks_repaired, 0u);
}

TEST(Checkpoint, DetectsCorruptedPartChunk) {
  auto gen = meshgen::boxTris(4, 4);
  auto pm = makeMesh(gen, 3);
  const auto dir = freshDir("corrupt2");
  dist::checkpoint(*pm, dir);
  ASSERT_TRUE(dist::checkpointValid(dir));

  // Flip a payload byte in BOTH copies of part 0's mesh chunk: the data is
  // unrecoverable, the checkpoint must not validate, and a full restore
  // must say which part is gone.
  const auto idx = dist::pario::loadIndex(dir);
  const auto& slot = idx.parts[0].mesh;
  const std::string image = dir + "/" + idx.image;
  flipImageByte(image,
                slot.primary + dist::pario::kChunkHeaderBytes +
                    slot.length / 2);
  flipImageByte(image,
                slot.replica + dist::pario::kChunkHeaderBytes +
                    slot.length / 2);

  EXPECT_FALSE(dist::checkpointValid(dir));
  try {
    dist::restore(dir, gen.model.get());
    FAIL() << "restore accepted a checkpoint with both copies corrupted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kValidation);
    EXPECT_NE(e.detail().find("lost part(s) 0"), std::string::npos)
        << e.what();
  }
}

TEST(Checkpoint, InterruptedCheckpointIsInvalid) {
  auto gen = meshgen::boxTris(4, 4);
  auto pm = makeMesh(gen, 3);
  const auto dir = freshDir("interrupted");
  dist::checkpoint(*pm, dir);
  // A kill before the MANIFEST rename leaves the data files with no
  // manifest: the directory must not validate and restore must say why.
  std::filesystem::remove(std::filesystem::path(dir) / "MANIFEST");
  EXPECT_FALSE(dist::checkpointValid(dir));
  try {
    dist::restore(dir, gen.model.get());
    FAIL() << "restore accepted a checkpoint with no MANIFEST";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kValidation);
    EXPECT_NE(e.detail().find("MANIFEST"), std::string::npos) << e.what();
  }
}

TEST(Checkpoint, KilledMidBalanceRestoresCommittedState) {
  // The acceptance scenario: checkpoint after a committed balancing round,
  // keep running, die; the restart restores the committed state exactly
  // and finishes the job.
  auto gen = meshgen::boxTets(3, 3, 3);
  auto pm = makeMesh(gen, 4);
  // Skew so balancing has work.
  dist::MigrationPlan skew(static_cast<std::size_t>(pm->parts()));
  for (Ent e : pm->part(2).elements()) skew[2][e] = 1;
  pm->migrate(skew);

  parma::BalanceOptions opts;
  opts.max_rounds = 1;
  parma::balance(*pm, "Rgn", opts);
  const auto dir = freshDir("midbalance");
  dist::checkpoint(*pm, dir);
  const std::uint64_t committed = pm->fingerprint();

  parma::balance(*pm, "Rgn", opts);  // work the crash will destroy
  pm.reset();                        // the kill

  ASSERT_TRUE(dist::checkpointValid(dir));
  auto restored = dist::restore(dir, gen.model.get());
  EXPECT_EQ(restored->fingerprint(), committed);
  EXPECT_NO_THROW(restored->verify());
  opts.max_rounds = 2;
  const auto report = parma::balance(*restored, "Rgn", opts);
  EXPECT_NO_THROW(restored->verify());
  EXPECT_GE(report.rounds, 1);
}

/// --- PUMI_RELIABLE spec parsing ------------------------------------------

TEST(ReliableSpec, ParsesFormsAndRejectsMalformed) {
  EXPECT_TRUE(arq::parseConfig("1").on);
  EXPECT_TRUE(arq::parseConfig("on").on);
  EXPECT_FALSE(arq::parseConfig("off").on);
  const auto cfg =
      arq::parseConfig("budget=8,rto_us=100,maxrto_us=5000,opretries=2");
  EXPECT_TRUE(cfg.on);
  EXPECT_EQ(cfg.retry_budget, 8);
  EXPECT_EQ(cfg.rto_us, 100);
  EXPECT_EQ(cfg.max_rto_us, 5000);
  EXPECT_EQ(cfg.op_retries, 2);
  for (const char* bad :
       {"maybe", "budget=", "budget=-3", "budget=8x", "rto_us=1e3",
        "unknown=1", "rto_us=500,maxrto_us=100"}) {
    try {
      arq::parseConfig(bad);
      FAIL() << "accepted malformed PUMI_RELIABLE spec: " << bad;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kValidation) << bad;
    }
  }
}

}  // namespace
