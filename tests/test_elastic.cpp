/// \file test_elastic.cpp
/// \brief Elastic scale-OUT: rank join plus heavy-part splitting, verified
/// by a grow/shrink property suite.
///
/// Contract under test (ISSUE: elastic scale-out): a run can absorb new
/// ranks mid-flight. A join=K@P fault-plan token knocks at a deterministic
/// phase boundary; pcu::Comm::grow() is the ULFM-style inverse of
/// shrink() — every rank rendezvouses onto a dense N+K group with fresh
/// transport state and a re-armed failure detector; parma::elasticJoin
/// then admits the newcomers into the parted mesh, carves the heaviest
/// parts onto their empty parts (graph-free RIB), diffuses to tolerance,
/// and gates the result on verify() plus geometric-digest conservation —
/// zero lost or duplicated elements, ever.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "dist/checkpoint.hpp"
#include "dist/digest.hpp"
#include "dist/elastic.hpp"
#include "dist/failover.hpp"
#include "dist/partedmesh.hpp"
#include "meshgen/boxmesh.hpp"
#include "parma/balance.hpp"
#include "parma/elastic.hpp"
#include "parma/heavysplit.hpp"
#include "parma/improve.hpp"
#include "parma/metrics.hpp"
#include "part/partition.hpp"
#include "part/ribsplit.hpp"
#include "pcu/arq.hpp"
#include "pcu/error.hpp"
#include "pcu/failure.hpp"
#include "pcu/faults.hpp"
#include "pcu/phased.hpp"
#include "pcu/runtime.hpp"
#include "pcu/stats.hpp"
#include "pcu/trace.hpp"

namespace {

using core::Ent;
using dist::PartId;
using pcu::Error;
using pcu::ErrorCode;
namespace digest = dist::digest;
namespace failure = pcu::failure;
namespace faults = pcu::faults;
namespace arq = pcu::arq;

/// Installs a plan for the scope of one test body; always clears on exit.
struct PlanGuard {
  explicit PlanGuard(const faults::FaultPlan& p) { faults::setPlan(p); }
  ~PlanGuard() { faults::clearPlan(); }
  PlanGuard(const PlanGuard&) = delete;
  PlanGuard& operator=(const PlanGuard&) = delete;
};

/// Turns reliable delivery on for one test body (fresh stats), off on exit.
struct ReliableGuard {
  ReliableGuard() {
    arq::resetStats();
    arq::setReliable(true);
  }
  ~ReliableGuard() { arq::setReliable(false); }
  ReliableGuard(const ReliableGuard&) = delete;
  ReliableGuard& operator=(const ReliableGuard&) = delete;
};

/// --- PUMI_FAULTS join token parsing (strict) -----------------------------

TEST(JoinSpec, ParsesJoinToken) {
  const auto p = faults::parsePlan("seed=7,join=4@2");
  EXPECT_EQ(p.join.count, 4);
  EXPECT_EQ(p.join.phase, 2);
  EXPECT_TRUE(p.join.scheduled());
  EXPECT_FALSE(p.injects())
      << "a join is a scale-out event, not an injected fault";
}

TEST(JoinSpec, JoinAloneArmsFramingButNotFailureDetection) {
  PlanGuard g(faults::parsePlan("join=2@1"));
  EXPECT_TRUE(faults::hasJoin());
  EXPECT_TRUE(faults::hasPhaseEvent());
  EXPECT_TRUE(faults::framingEnabled())
      << "join needs hardened phase boundaries to count phases";
  EXPECT_FALSE(faults::hasRankFault());
  EXPECT_EQ(faults::deadlineMs(), 0)
      << "a join must not arm the failure detector by itself";
}

TEST(JoinSpec, MalformedJoinTokensAreRejectedByName) {
  for (const char* bad :
       {"join=4", "join=@2", "join=4@", "join=x@2", "join=0@2", "join=-1@2",
        "join=4@-1", "join=4@2x", "join=4@@2", "join="}) {
    try {
      faults::parsePlan(bad);
      FAIL() << "accepted malformed PUMI_FAULTS token: " << bad;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kValidation) << bad;
      EXPECT_NE(e.detail().find("join"), std::string::npos)
          << "error must name the bad token: " << bad << " -> " << e.what();
    }
  }
}

TEST(JoinSpec, JoinComposesWithRankFaults) {
  const auto p = faults::parsePlan("join=2@3,kill=1@5,deadline=25");
  EXPECT_TRUE(p.join.scheduled());
  EXPECT_TRUE(p.kill.scheduled());
  PlanGuard g(p);
  EXPECT_TRUE(faults::hasJoin());
  EXPECT_TRUE(faults::hasRankFault());
}

/// --- pcu: grow(), the inverse of shrink() --------------------------------

/// One ring phased exchange on `c`; returns the payload received.
int ringStep(pcu::Comm& c) {
  std::vector<std::pair<int, pcu::OutBuffer>> out;
  pcu::OutBuffer b;
  b.pack<int>(c.rank());
  out.emplace_back((c.rank() + 1) % c.size(), std::move(b));
  auto msgs = pcu::phasedExchange(c, std::move(out));
  EXPECT_EQ(msgs.size(), 1u);
  return msgs.empty() ? -1 : msgs.front().body.unpack<int>();
}

TEST(PcuGrow, RenumbersDenselyAndNewcomersCommunicate) {
  failure::resetStats();
  std::exception_ptr joiner_error;
  pcu::run(4, [&](pcu::Comm& c) {
    pcu::Comm g2 = c.grow(2);
    EXPECT_EQ(g2.size(), 6);
    EXPECT_EQ(g2.rank(), c.rank()) << "existing ranks keep their numbers";
    std::vector<std::thread> joiners;
    if (c.rank() == 0)
      joiners = pcu::spawnJoined(
          g2, 2,
          [](pcu::Comm& jc) {
            EXPECT_GE(jc.rank(), 4) << "newcomers fill the dense tail";
            EXPECT_LT(jc.rank(), 6);
            EXPECT_EQ(ringStep(jc), (jc.rank() + 5) % 6);
          },
          &joiner_error);
    // One full ring over all 6 ranks proves old and new communicate.
    EXPECT_EQ(ringStep(g2), (g2.rank() + 5) % 6);
    for (auto& t : joiners) t.join();
  });
  if (joiner_error) std::rethrow_exception(joiner_error);
  const auto st = failure::stats();
  EXPECT_EQ(st.grows, 1u);
  EXPECT_EQ(st.ranks_joined, 2u);
}

TEST(PcuGrow, RepeatedGrowReusesTheRendezvous) {
  pcu::run(3, [&](pcu::Comm& c) {
    pcu::Comm g1 = c.grow(2);
    std::vector<std::thread> j1;
    if (c.rank() == 0)
      j1 = pcu::spawnJoined(g1, 2, [](pcu::Comm& jc) {
        pcu::Comm g2 = jc.grow(1);
        EXPECT_EQ(ringStep(g2), (g2.rank() + 5) % 6);
      });
    pcu::Comm g2 = g1.grow(1);
    EXPECT_EQ(g2.size(), 6);
    std::vector<std::thread> j2;
    if (c.rank() == 0)
      j2 = pcu::spawnJoined(g2, 1, [](pcu::Comm& jc) {
        EXPECT_EQ(jc.rank(), 5);
        EXPECT_EQ(ringStep(jc), 4);
      });
    EXPECT_EQ(ringStep(g2), (g2.rank() + 5) % 6);
    for (auto& t : j1) t.join();
    for (auto& t : j2) t.join();
  });
}

TEST(PcuGrow, InvalidJoinerCountThrows) {
  pcu::run(1, [](pcu::Comm& c) {
    try {
      c.grow(0);
      FAIL() << "grow(0) must be rejected";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kValidation);
    }
  });
}

TEST(PcuGrow, RendezvousDisagreementPoisonsEveryRank) {
  std::atomic<int> rejected{0};
  pcu::run(4, [&](pcu::Comm& c) {
    try {
      c.grow(c.rank() == 2 ? 3 : 2);
      ADD_FAILURE() << "rank " << c.rank()
                    << " grew despite a disagreeing peer";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kValidation) << e.what();
      rejected += 1;
    }
  });
  EXPECT_EQ(rejected.load(), 4)
      << "a mismatched joiner count must fail the whole rendezvous, "
         "never hang part of it";
}

TEST(PcuGrow, JoinTokenKnocksOnceAtItsPhaseBoundary) {
  PlanGuard g(faults::parsePlan("seed=3,join=3@1"));
  pcu::run(4, [&](pcu::Comm& c) {
    EXPECT_EQ(c.joinPending(), 0);
    for (int i = 0; i < 3; ++i) ringStep(c);
    // Every rank has passed phase index 1 itself by now, so the (global,
    // consume-once) knock has certainly fired — and only once.
    EXPECT_EQ(c.joinPending(), 3);
    pcu::Comm g2 = c.grow(c.joinPending());
    EXPECT_EQ(g2.size(), 7);
    EXPECT_EQ(c.joinPending(), 0) << "grow() serves the pending join";
    EXPECT_EQ(g2.joinPending(), 0);
    std::vector<std::thread> joiners;
    if (c.rank() == 0)
      joiners = pcu::spawnJoined(g2, 3, [](pcu::Comm& jc) {
        EXPECT_EQ(ringStep(jc), (jc.rank() + 6) % 7);
      });
    EXPECT_EQ(ringStep(g2), (g2.rank() + 6) % 7);
    for (auto& t : joiners) t.join();
  });
}

TEST(PcuGrow, DetectorRearmsAndCatchesNewcomerFailure) {
  // Grow 4 -> 6 with an armed detector, then the fault plan kills rank 5 —
  // a NEWCOMER. Detection proves the expanded group's detector is armed
  // and watching the joined ranks, not just the founders.
  faults::FaultPlan p;
  p.seed = 13;
  p.kill = {5, 1};
  p.deadline_ms = 30;
  PlanGuard g(p);
  failure::resetStats();
  std::atomic<int> survivors{0};
  std::atomic<int> killed{0};
  auto work = [&](pcu::Comm& c) {
    try {
      for (int round = 0; round < 50; ++round) ringStep(c);
      ADD_FAILURE() << "rank " << c.rank() << " never observed the failure";
    } catch (const failure::RankKilled&) {
      killed += 1;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kRankFailed) << e.what();
      EXPECT_EQ(e.peer(), 5) << "the error must name the dead newcomer";
      pcu::Comm sub = c.shrink();
      EXPECT_EQ(sub.size(), 5);
      EXPECT_EQ(ringStep(sub), (sub.rank() + sub.size() - 1) % sub.size());
      survivors += 1;
    }
  };
  std::exception_ptr joiner_error;
  pcu::run(4, [&](pcu::Comm& c) {
    pcu::Comm g2 = c.grow(2);
    std::vector<std::thread> joiners;
    if (c.rank() == 0) joiners = pcu::spawnJoined(g2, 2, work, &joiner_error);
    work(g2);
    for (auto& t : joiners) t.join();
  });
  if (joiner_error) std::rethrow_exception(joiner_error);
  EXPECT_EQ(killed.load(), 1);
  EXPECT_EQ(survivors.load(), 5);
  const auto st = failure::stats();
  EXPECT_EQ(st.grows, 1u);
  EXPECT_GE(st.shrinks, 1u);
}

TEST(PcuGrow, GrowCountersReachTheTraceReport) {
  pcu::trace::clear();
  pcu::trace::setEnabled(true);
  failure::resetStats();
  pcu::run(3, [](pcu::Comm& c) {
    pcu::Comm g2 = c.grow(1);
    std::vector<std::thread> joiners;
    if (c.rank() == 0)
      joiners = pcu::spawnJoined(g2, 1, [](pcu::Comm& jc) { ringStep(jc); });
    ringStep(g2);
    for (auto& t : joiners) t.join();
  });
  const auto report = pcu::buildTraceReport();
  pcu::trace::setEnabled(false);
  pcu::trace::clear();
  std::set<std::string> names;
  for (const auto& c : report.counters) names.insert(c.name);
  EXPECT_TRUE(names.count("fd:grow_events")) << "grow counter missing";
  EXPECT_TRUE(names.count("fd:ranks_joined"));
}

/// --- dist: admission mechanism -------------------------------------------

std::unique_ptr<dist::PartedMesh> makeMesh(const meshgen::Generated& gen,
                                           int nparts) {
  const auto assign = part::partition(*gen.mesh, nparts, part::Method::RCB);
  return dist::PartedMesh::distribute(
      *gen.mesh, gen.model.get(), assign,
      dist::PartMap(nparts, pcu::Machine::flat(nparts)));
}

dist::MigrationPlan randomPlan(dist::PartedMesh& pm, common::Rng& rng,
                               double move_prob) {
  dist::MigrationPlan plan(static_cast<std::size_t>(pm.parts()));
  for (PartId p = 0; p < pm.parts(); ++p)
    for (Ent e : pm.part(p).elements()) {
      if (rng.uniform() >= move_prob) continue;
      const auto dest = static_cast<PartId>(
          rng.below(static_cast<std::uint64_t>(pm.parts())));
      if (dest != p) plan[static_cast<std::size_t>(p)][e] = dest;
    }
  return plan;
}

/// Dense rank numbering: every part lives on a valid rank and every rank
/// hosts at least one part.
void expectDenseRanks(const dist::PartedMesh& pm) {
  const auto& map = pm.network().partMap();
  const int cores = map.machine().totalCores();
  std::vector<int> hosted(static_cast<std::size_t>(cores), 0);
  for (PartId p = 0; p < pm.parts(); ++p) {
    const int r = map.rankOf(p);
    ASSERT_GE(r, 0) << "part " << p;
    ASSERT_LT(r, cores) << "part " << p;
    hosted[static_cast<std::size_t>(r)] += 1;
  }
  for (int r = 0; r < cores; ++r)
    EXPECT_GE(hosted[static_cast<std::size_t>(r)], 1)
        << "rank " << r << " hosts no part: numbering not dense";
}

TEST(DistElastic, AdmitRanksGrowsMachineAndPinsNewParts) {
  auto gen = meshgen::boxTris(4, 4);
  auto pm = makeMesh(gen, 4);
  const auto before = digest::elementDigests(*pm);
  std::vector<int> old_ranks;
  for (PartId p = 0; p < 4; ++p)
    old_ranks.push_back(pm->network().partMap().rankOf(p));

  const auto rep = dist::elastic::admitRanks(*pm, 2);
  EXPECT_EQ(rep.ranks_before, 4);
  EXPECT_EQ(rep.ranks_after, 6);
  ASSERT_EQ(rep.new_parts, (std::vector<PartId>{4, 5}));
  EXPECT_EQ(pm->parts(), 6);
  EXPECT_EQ(pm->network().partMap().machine().totalCores(), 6);
  // Existing parts must not have moved when the machine grew.
  for (PartId p = 0; p < 4; ++p)
    EXPECT_EQ(pm->network().partMap().rankOf(p),
              old_ranks[static_cast<std::size_t>(p)]);
  // Newcomer parts are pinned onto the newcomer ranks, initially empty.
  EXPECT_EQ(pm->network().partMap().rankOf(4), 4);
  EXPECT_EQ(pm->network().partMap().rankOf(5), 5);
  EXPECT_EQ(pm->part(4).elementCount(), 0u);
  EXPECT_EQ(pm->part(5).elementCount(), 0u);
  EXPECT_EQ(digest::elementDigests(*pm), before)
      << "admission is pure mechanism: no element moves";
  EXPECT_NO_THROW(pm->verify());
}

TEST(DistElastic, AdmitRanksRejectsInvalidCount) {
  auto gen = meshgen::boxTris(3, 3);
  auto pm = makeMesh(gen, 2);
  for (int k : {0, -3}) {
    try {
      dist::elastic::admitRanks(*pm, k);
      FAIL() << "admitRanks(" << k << ") must be rejected";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kValidation);
    }
  }
}

TEST(DistElastic, AddPartsOnIdleRanksIsIdempotent) {
  auto gen = meshgen::boxTris(4, 4);
  auto pm = makeMesh(gen, 4);
  EXPECT_TRUE(dist::elastic::addPartsOnIdleRanks(*pm).empty())
      << "no idle rank on a flat(4)/4-part mesh";
  dist::elastic::admitRanks(*pm, 3);
  EXPECT_TRUE(dist::elastic::addPartsOnIdleRanks(*pm).empty())
      << "admitRanks already populated the newcomers";
}

/// --- part: the graph-free RIB splitter -----------------------------------

TEST(RibSplit, SplitsIntoBalancedNonEmptyPieces) {
  auto gen = meshgen::boxTris(8, 8);
  auto pm = makeMesh(gen, 1);
  const auto elems = pm->part(0).elements();
  const auto sub = part::ribSplit(pm->part(0).mesh(), elems, 4);
  ASSERT_EQ(sub.size(), elems.size());
  std::array<int, 4> sizes{};
  for (int s : sub) {
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 4);
    sizes[static_cast<std::size_t>(s)] += 1;
  }
  const int n = static_cast<int>(elems.size());
  for (int s = 0; s < 4; ++s) {
    EXPECT_GT(sizes[static_cast<std::size_t>(s)], 0);
    // Weighted-median cuts: each piece within 30% of the even share.
    EXPECT_NEAR(sizes[static_cast<std::size_t>(s)], n / 4.0, 0.3 * n / 4.0);
  }
  EXPECT_EQ(part::ribSplit(pm->part(0).mesh(), elems, 4), sub)
      << "RIB must be deterministic";
}

TEST(RibSplit, RespectsWeights) {
  auto gen = meshgen::boxTris(8, 8);
  auto pm = makeMesh(gen, 1);
  const auto elems = pm->part(0).elements();
  // All weight on the first half: the 2-way cut must land the heavy half
  // alone-ish — piece loads (by weight) stay near 50/50.
  std::vector<double> w(elems.size(), 1.0);
  for (std::size_t i = 0; i < w.size() / 2; ++i) w[i] = 10.0;
  const auto sub = part::ribSplit(pm->part(0).mesh(), elems, 2, w);
  double load0 = 0.0, total = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    total += w[i];
    if (sub[i] == 0) load0 += w[i];
  }
  EXPECT_NEAR(load0 / total, 0.5, 0.15);
}

TEST(RibSplit, ValidatesItsInputs) {
  auto gen = meshgen::boxTris(3, 3);
  auto pm = makeMesh(gen, 1);
  const auto elems = pm->part(0).elements();
  try {
    part::ribSplit(pm->part(0).mesh(), elems, 0);
    FAIL() << "pieces < 1 must be rejected";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kValidation);
  }
  try {
    part::ribSplit(pm->part(0).mesh(), elems, 2, {1.0});
    FAIL() << "weights length mismatch must be rejected";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kValidation);
  }
}

/// --- parma: heavy-part splitting onto injected targets -------------------

TEST(HeavySplitTargets, CarvesOntoInjectedEmptyParts) {
  auto gen = meshgen::boxTets(3, 3, 3);
  auto pm = makeMesh(gen, 4);
  const auto before = digest::elementDigests(*pm);
  const auto rep0 = dist::elastic::admitRanks(*pm, 2);

  parma::HeavySplitOptions opts;
  opts.tolerance = 0.10;
  opts.split_method = part::Method::RIB;
  opts.targets = rep0.new_parts;
  const auto rep = parma::heavyPartSplit(*pm, opts);
  EXPECT_EQ(pm->parts(), 6) << "injected targets never change part count";
  EXPECT_EQ(rep.merges, 0) << "injected targets skip the merge phase";
  EXPECT_GT(rep.parts_split, 0);
  for (PartId t : rep0.new_parts)
    EXPECT_GT(pm->part(t).elementCount(), 0u)
        << "target part " << t << " stayed empty";
  EXPECT_EQ(digest::elementDigests(*pm), before);
  EXPECT_NO_THROW(pm->verify());
  EXPECT_LT(rep.final_imbalance, rep.initial_imbalance);
}

TEST(HeavySplitTargets, RejectsNonEmptyOrOutOfRangeTargets) {
  auto gen = meshgen::boxTris(5, 5);
  auto pm = makeMesh(gen, 4);
  parma::HeavySplitOptions opts;
  opts.targets = {0};  // part 0 holds elements
  try {
    parma::heavyPartSplit(*pm, opts);
    FAIL() << "non-empty target must be rejected";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kValidation);
    EXPECT_NE(e.detail().find("not empty"), std::string::npos) << e.what();
  }
  opts.targets = {99};
  try {
    parma::heavyPartSplit(*pm, opts);
    FAIL() << "out-of-range target must be rejected";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kValidation);
  }
}

TEST(HeavySplitTargets, LegacyPathKeepsPartCount) {
  // Regression for the injectable-targets change: the historical no-target
  // call must still merge-then-split with an unchanged part count.
  auto gen = meshgen::boxTets(3, 3, 3);
  auto pm = makeMesh(gen, 6);
  common::Rng rng(17);
  // Skew the load so the splitter has actual work.
  dist::MigrationPlan skew(static_cast<std::size_t>(pm->parts()));
  for (PartId p = 1; p < pm->parts(); ++p)
    for (Ent e : pm->part(p).elements())
      if (rng.uniform() < 0.5) skew[static_cast<std::size_t>(p)][e] = 0;
  pm->migrate(skew);
  const int nparts = pm->parts();
  const auto before = digest::elementDigests(*pm);
  const auto rep = parma::heavyPartSplit(*pm, {.tolerance = 0.10});
  EXPECT_EQ(pm->parts(), nparts);
  EXPECT_EQ(digest::elementDigests(*pm), before);
  EXPECT_NO_THROW(pm->verify());
  EXPECT_LT(rep.final_imbalance, rep.initial_imbalance);
}

/// --- parma: the full elastic join ----------------------------------------

TEST(ElasticJoin, EightToTwelveMeetsTheAcceptanceBar) {
  // The ISSUE's acceptance scenario: an 8-rank mesh receives 4 joiners and
  // must end at 12 dense ranks, zero lost elements, element imbalance at
  // or below 1.10, with the join-to-rebalanced latency reported.
  auto gen = meshgen::boxTets(6, 6, 6);
  auto pm = makeMesh(gen, 8);
  const auto before = digest::elementDigests(*pm);

  const auto rep = parma::elasticJoin(*pm, 4, {.tolerance = 0.10});
  EXPECT_EQ(rep.ranks_before, 8);
  EXPECT_EQ(rep.ranks_after, 12);
  ASSERT_EQ(rep.new_parts.size(), 4u);
  EXPECT_EQ(pm->parts(), 12);
  EXPECT_EQ(digest::elementDigests(*pm), before) << "zero lost elements";
  EXPECT_NO_THROW(pm->verify());
  expectDenseRanks(*pm);
  for (PartId t : rep.new_parts) EXPECT_GT(pm->part(t).elementCount(), 0u);
  EXPECT_LE(rep.imbalance_after, 1.10 + 1e-9);
  EXPECT_GT(rep.elements_moved, 0u);
  EXPECT_GE(rep.total_ms, rep.admit_ms);
  EXPECT_GE(rep.total_ms, rep.split_ms);
}

TEST(ElasticJoin, RejectsInvalidCount) {
  auto gen = meshgen::boxTris(3, 3);
  auto pm = makeMesh(gen, 2);
  EXPECT_THROW(parma::elasticJoin(*pm, 0), Error);
}

TEST(ElasticJoin, NoPendingJoinIsANoop) {
  auto gen = meshgen::boxTris(4, 4);
  auto pm = makeMesh(gen, 2);
  const auto maybe = parma::admitPendingJoin(*pm);
  EXPECT_FALSE(maybe.admitted);
  EXPECT_EQ(pm->parts(), 2);
}

/// --- the grow/shrink property suite --------------------------------------

struct CycleCase {
  std::uint64_t seed;
  bool three_d;
};

class GrowShrinkCycle : public ::testing::TestWithParam<CycleCase> {};

TEST_P(GrowShrinkCycle, ConservesEveryElementThroughTheCycle) {
  const auto [seed, three_d] = GetParam();
  namespace fs = std::filesystem;
  const fs::path dirp = fs::temp_directory_path() / "pumi_test_elastic" /
                        ("cycle_" + std::to_string(seed) +
                         (three_d ? "_3d" : "_2d"));
  fs::remove_all(dirp);

  auto gen = three_d ? meshgen::boxTets(4, 4, 4) : meshgen::boxTris(8, 8);
  auto pm = makeMesh(gen, 4);
  const auto covered = digest::elementDigests(*pm);
  common::Rng rng(seed);

  // Perturb: a seeded random migration makes every cycle distinct.
  pm->migrate(randomPlan(*pm, rng, 0.10));
  EXPECT_EQ(digest::elementDigests(*pm), covered);

  // GROW 4 -> 6.
  const auto j1 = parma::elasticJoin(*pm, 2, {.tolerance = 0.20});
  EXPECT_EQ(j1.ranks_after, 6);
  EXPECT_EQ(digest::elementDigests(*pm), covered) << "grow lost elements";
  EXPECT_NO_THROW(pm->verify());
  expectDenseRanks(*pm);

  // BALANCE on the grown machine.
  parma::improve(*pm, three_d ? "Rgn" : "Face", {.tolerance = 0.20});
  EXPECT_EQ(digest::elementDigests(*pm), covered) << "balance lost elements";
  EXPECT_NO_THROW(pm->verify());

  // SHRINK 6 -> 3 ranks: checkpoint, restart on half the machine.
  const std::uint64_t fp = pm->fingerprint();
  dist::checkpoint(*pm, dirp.string());
  auto pm2 = dist::restore(dirp.string(), gen.model.get(), 3);
  ASSERT_NE(pm2, nullptr);
  EXPECT_EQ(pm2->fingerprint(), fp)
      << "restore must reproduce part contents fingerprint-exactly";
  EXPECT_EQ(pm2->network().partMap().machine().totalCores(), 3);
  EXPECT_EQ(digest::elementDigests(*pm2), covered) << "shrink lost elements";
  EXPECT_NO_THROW(pm2->verify());
  expectDenseRanks(*pm2);

  // GROW again 3 -> 5.
  const auto j2 = parma::elasticJoin(*pm2, 2, {.tolerance = 0.20});
  EXPECT_EQ(j2.ranks_after, 5);
  EXPECT_EQ(digest::elementDigests(*pm2), covered) << "regrow lost elements";
  EXPECT_NO_THROW(pm2->verify());
  expectDenseRanks(*pm2);

  fs::remove_all(dirp);
}

INSTANTIATE_TEST_SUITE_P(
    Property, GrowShrinkCycle, ::testing::ValuesIn([] {
      std::vector<CycleCase> cases;
      for (std::uint64_t seed = 0; seed < 10; ++seed)
        for (bool three_d : {false, true}) cases.push_back({seed, three_d});
      return cases;
    }()),
    [](const ::testing::TestParamInfo<CycleCase>& info) {
      return "seed" + std::to_string(info.param.seed) +
             (info.param.three_d ? "_tets" : "_tris");
    });

/// --- join x chaos matrix --------------------------------------------------

struct JoinChaosCase {
  bool corrupt;   ///< corrupt= vs drop= running alongside the join
  bool coalesce;  ///< transport coalescing on/off
  bool reliable;  ///< PUMI_RELIABLE-style ARQ on/off
};

class JoinChaosMatrix : public ::testing::TestWithParam<JoinChaosCase> {};

/// Run the full chaos-join scenario once; returns (fingerprint, digests)
/// for the determinism comparison.
std::pair<std::uint64_t, std::multiset<std::uint64_t>> runJoinChaos(
    const JoinChaosCase& cse) {
  auto gen = meshgen::boxTris(6, 6);
  auto pm = makeMesh(gen, 6);
  pm->network().setCoalescing(cse.coalesce);
  std::optional<ReliableGuard> rel;
  if (cse.reliable) rel.emplace();
  // Without ARQ the transactional retry loop (epoch bump per replay) is
  // the recovery mechanism. Uncoalesced mode sends one physical message
  // per payload, so a migration crosses hundreds of fault draws per
  // attempt — keep the probability low and the budget generous or the
  // plain cases exhaust their retries.
  pm->setOpRetries(25);

  const std::string spec = std::string("seed=21,") +
                           (cse.corrupt ? "corrupt=0.005" : "drop=0.005") +
                           ",join=2@2";
  PlanGuard g(faults::parsePlan(spec));
  const auto covered = digest::elementDigests(*pm);

  common::Rng rng(5);
  int rounds = 0;
  while (pm->network().pendingJoin() == 0 && rounds < 16) {
    try {
      pm->migrate(randomPlan(*pm, rng, 0.08));
    } catch (const Error&) {
      // An exhausted retry budget under chaos aborts the op cleanly; the
      // rollback keeps the mesh intact and the knock, once fired, stays.
    }
    ++rounds;
  }
  EXPECT_GT(pm->network().pendingJoin(), 0)
      << "the join knock must fire at its phase under " << spec;
  EXPECT_EQ(digest::elementDigests(*pm), covered);

  const auto joined = parma::admitPendingJoin(*pm, {.tolerance = 0.20});
  EXPECT_TRUE(joined.admitted);
  EXPECT_EQ(joined.report.ranks_before, 6);
  EXPECT_EQ(joined.report.ranks_after, 8);
  EXPECT_EQ(pm->network().pendingJoin(), 0);
  EXPECT_EQ(digest::elementDigests(*pm), covered) << "chaos join lost elements";
  EXPECT_NO_THROW(pm->verify());
  expectDenseRanks(*pm);

  // The grown mesh keeps operating under the same chaos plan: the new
  // peers inherited the fault epoch and the framed channels.
  common::Rng rng2(11);
  try {
    pm->migrate(randomPlan(*pm, rng2, 0.08));
  } catch (const Error&) {
  }
  EXPECT_EQ(digest::elementDigests(*pm), covered);
  EXPECT_NO_THROW(pm->verify());
  return {pm->fingerprint(), digest::elementDigests(*pm)};
}

TEST_P(JoinChaosMatrix, JoinSurvivesActiveFaultPlanDeterministically) {
  const auto once = runJoinChaos(GetParam());
  // Identical seeds, identical chaos, identical join: the entire run —
  // fault decisions on the new peers included — must replay bit-equal.
  const auto twice = runJoinChaos(GetParam());
  EXPECT_EQ(once.first, twice.first)
      << "join under chaos must be deterministic (fault-epoch inheritance)";
  EXPECT_EQ(once.second, twice.second);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, JoinChaosMatrix, ::testing::ValuesIn([] {
      std::vector<JoinChaosCase> cases;
      for (bool corrupt : {false, true})
        for (bool coalesce : {true, false})
          for (bool reliable : {false, true})
            cases.push_back({corrupt, coalesce, reliable});
      return cases;
    }()),
    [](const ::testing::TestParamInfo<JoinChaosCase>& info) {
      return std::string(info.param.corrupt ? "corrupt" : "drop") +
             (info.param.coalesce ? "_coalesced" : "_uncoalesced") +
             (info.param.reliable ? "_reliable" : "_plain");
    });

/// --- restore onto MORE ranks ---------------------------------------------

TEST(RestoreOntoMore, IdentityAssignmentLeavesNewRanksIdle) {
  namespace fs = std::filesystem;
  const fs::path dirp =
      fs::temp_directory_path() / "pumi_test_elastic" / "more_identity";
  fs::remove_all(dirp);
  auto gen = meshgen::boxTris(5, 5);
  auto pm = makeMesh(gen, 4);
  const std::uint64_t fp = pm->fingerprint();
  dist::checkpoint(*pm, dirp.string());

  auto pm2 = dist::restore(dirp.string(), gen.model.get(), 6);
  ASSERT_NE(pm2, nullptr);
  EXPECT_EQ(pm2->fingerprint(), fp);
  EXPECT_EQ(pm2->parts(), 4);
  EXPECT_EQ(pm2->network().partMap().machine().totalCores(), 6);
  for (PartId p = 0; p < 4; ++p)
    EXPECT_EQ(pm2->network().partMap().rankOf(p), p)
        << "restore onto more ranks is the identity assignment";
  fs::remove_all(dirp);
}

TEST(RestoreOntoMore, ExpandRebalancesOntoTheIdleRanks) {
  namespace fs = std::filesystem;
  const fs::path dirp =
      fs::temp_directory_path() / "pumi_test_elastic" / "more_expand";
  fs::remove_all(dirp);
  auto gen = meshgen::boxTets(5, 5, 5);
  auto pm = makeMesh(gen, 8);
  const auto covered = digest::elementDigests(*pm);
  dist::checkpoint(*pm, dirp.string());

  auto pm2 = dist::restore(dirp.string(), gen.model.get(), 12);
  ASSERT_NE(pm2, nullptr);
  const auto rep = parma::expandToIdleRanks(*pm2, {.tolerance = 0.10});
  EXPECT_EQ(rep.ranks_before, 12);
  EXPECT_EQ(rep.ranks_after, 12);
  ASSERT_EQ(rep.new_parts.size(), 4u);
  EXPECT_EQ(pm2->parts(), 12);
  EXPECT_EQ(digest::elementDigests(*pm2), covered)
      << "expansion after restore lost elements";
  EXPECT_NO_THROW(pm2->verify());
  expectDenseRanks(*pm2);
  EXPECT_LE(rep.imbalance_after, 1.10 + 1e-9)
      << "restored-then-rebalanced mesh must match the N-rank balance bar";
  fs::remove_all(dirp);
}

/// --- grow x failover composition -----------------------------------------

TEST(GrowFailoverComposition, KillingAFreshlyJoinedRankMidBalanceEvacuates) {
  // The elastic x failover composition: grow the machine, then lose one of
  // the ranks that just joined while parma is still balancing onto it. The
  // survivors must evacuate the newcomer's parts from the buddy journal and
  // finish the rebalance with zero element loss.
  auto gen = meshgen::boxTets(4, 4, 4);
  auto pm = makeMesh(gen, 6);
  const auto covered = digest::elementDigests(*pm);

  // GROW 6 -> 8: ranks 6 and 7 join and receive load.
  const auto join = parma::elasticJoin(*pm, 2, {.tolerance = 0.20});
  ASSERT_EQ(join.ranks_after, 8);
  EXPECT_EQ(digest::elementDigests(*pm), covered);
  EXPECT_NO_THROW(pm->verify());

  // Quiescent point after the join: the journal now covers the newcomers'
  // parts too — a buddy holds their state before the incident.
  dist::failover::BuddyJournal journal;
  journal.record(*pm);

  // Newly joined rank 6 dies at the next phase boundary, mid-balance.
  dist::failover::EvacuationReport evac;
  {
    faults::FaultPlan p;
    p.seed = 9;
    p.kill = {6, 1};
    p.deadline_ms = 30;
    PlanGuard g(p);
    try {
      parma::balance(*pm, "Rgn", {.tolerance = 0.10, .max_rounds = 2});
      FAIL() << "balance crossing the dead newcomer completed";
    } catch (const Error& e) {
      ASSERT_EQ(e.code(), ErrorCode::kRankFailed) << e.what();
      EXPECT_EQ(e.peer(), 6) << "the error must name the dead newcomer";
    }
    evac = dist::failover::evacuate(*pm, journal);
  }
  ASSERT_EQ(evac.ranks_lost, std::vector<int>{6});
  ASSERT_EQ(evac.parts_evacuated, std::vector<PartId>{6});
  EXPECT_NO_THROW(pm->verify());
  EXPECT_EQ(digest::elementDigests(*pm), covered)
      << "evacuating a newcomer lost elements";

  // Post-evacuation repair completes the interrupted rebalance on the
  // 7 survivors (the other newcomer keeps its load).
  const auto rep = parma::balanceAfterEvacuation(*pm, "Rgn", evac);
  EXPECT_EQ(rep.ranks_lost, 1);
  EXPECT_GE(rep.rounds, 1);
  EXPECT_NO_THROW(pm->verify());
  EXPECT_EQ(digest::elementDigests(*pm), covered)
      << "repair after the composed incident lost elements";
  // The corpse hosts nothing; every part lives on a survivor.
  for (PartId p = 0; p < pm->parts(); ++p)
    EXPECT_NE(pm->network().partMap().rankOf(p), 6)
        << "part " << p << " is still pinned to the dead rank";
}

TEST(RestoreOntoMore, ExpandWithNoIdleRankIsANoop) {
  auto gen = meshgen::boxTris(4, 4);
  auto pm = makeMesh(gen, 4);
  const std::uint64_t fp = pm->fingerprint();
  const auto rep = parma::expandToIdleRanks(*pm);
  EXPECT_TRUE(rep.new_parts.empty());
  EXPECT_EQ(pm->parts(), 4);
  EXPECT_EQ(pm->fingerprint(), fp);
}

}  // namespace
