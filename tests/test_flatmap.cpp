/// \file test_flatmap.cpp
/// \brief Property tests for common::FlatMap/FlatSet (ISSUE 8 satellite):
/// random insert/erase/find traffic checked against a std::unordered_map
/// oracle, tombstone-reuse bounds, and the documented iterator/reference
/// stability contract.

#include "common/flatmap.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/entity.hpp"
#include "dist/types.hpp"

using common::FlatMap;
using common::FlatSet;

namespace {

/// Deliberately terrible hash: identity. The table's internal splitmix
/// finalizer must still spread these across groups.
struct IdentityHash {
  std::size_t operator()(int k) const { return static_cast<std::size_t>(k); }
};

TEST(FlatMap, BasicInsertFindErase) {
  FlatMap<int, std::string> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.find(7), m.end());

  m[7] = "seven";
  m[11] = "eleven";
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.at(7), "seven");
  EXPECT_EQ(m.find(11)->second, "eleven");
  EXPECT_TRUE(m.contains(7));
  EXPECT_EQ(m.count(13), 0u);
  EXPECT_THROW(m.at(13), std::out_of_range);

  m[7] = "SEVEN";  // overwrite, not duplicate
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.at(7), "SEVEN");

  EXPECT_EQ(m.erase(7), 1u);
  EXPECT_EQ(m.erase(7), 0u);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_FALSE(m.contains(7));
  EXPECT_TRUE(m.contains(11));
}

TEST(FlatMap, EmplaceAndInsertSemantics) {
  FlatMap<int, int> m;
  auto [it1, fresh1] = m.emplace(1, 10);
  EXPECT_TRUE(fresh1);
  EXPECT_EQ(it1->second, 10);
  auto [it2, fresh2] = m.emplace(1, 99);  // existing key: no overwrite
  EXPECT_FALSE(fresh2);
  EXPECT_EQ(it2->second, 10);
  auto [it3, fresh3] = m.try_emplace(2, 20);
  EXPECT_TRUE(fresh3);
  EXPECT_EQ(it3->second, 20);
  auto [it4, fresh4] = m.insert({3, 30});
  EXPECT_TRUE(fresh4);
  EXPECT_EQ(it4->second, 30);
  EXPECT_FALSE(m.insert({3, 99}).second);
  EXPECT_EQ(m.at(3), 30);
}

/// The oracle property test: a long random schedule of insert / erase /
/// overwrite / lookup, mirrored into std::unordered_map, with full-content
/// equality checks along the way. Run with both a good hash and an
/// identity hash (exercises the internal mixer under heavy collision
/// pressure in user-hash space).
template <class Hash>
void runOracle(std::uint32_t seed, int key_space) {
  std::mt19937 rng(seed);
  FlatMap<int, std::uint64_t, Hash> m;
  std::unordered_map<int, std::uint64_t> oracle;

  auto checkEqual = [&] {
    ASSERT_EQ(m.size(), oracle.size());
    for (const auto& [k, v] : oracle) {
      auto it = m.find(k);
      ASSERT_NE(it, m.end()) << "missing key " << k;
      ASSERT_EQ(it->second, v) << "wrong value for key " << k;
    }
    std::size_t n = 0;
    for (const auto& [k, v] : m) {
      auto it = oracle.find(k);
      ASSERT_NE(it, oracle.end()) << "phantom key " << k;
      ASSERT_EQ(it->second, v);
      ++n;
    }
    ASSERT_EQ(n, m.size()) << "iteration count disagrees with size()";
  };

  for (int step = 0; step < 6000; ++step) {
    const int k = static_cast<int>(rng() % key_space);
    switch (rng() % 4) {
      case 0:
      case 1: {  // insert-or-overwrite
        const std::uint64_t v = rng();
        m[k] = v;
        oracle[k] = v;
        break;
      }
      case 2: {  // erase
        ASSERT_EQ(m.erase(k), oracle.erase(k));
        break;
      }
      case 3: {  // lookup
        auto it = m.find(k);
        auto oit = oracle.find(k);
        ASSERT_EQ(it == m.end(), oit == oracle.end());
        if (oit != oracle.end()) {
          ASSERT_EQ(it->second, oit->second);
        }
        break;
      }
    }
    if (step % 500 == 0) checkEqual();
  }
  checkEqual();
  m.clear();
  EXPECT_TRUE(m.empty());
  for (const auto& [k, v] : oracle) EXPECT_FALSE(m.contains(k));
}

TEST(FlatMapProperty, OracleGoodHash) {
  for (std::uint32_t seed = 1; seed <= 5; ++seed) runOracle<std::hash<int>>(seed, 512);
}

TEST(FlatMapProperty, OracleIdentityHash) {
  for (std::uint32_t seed = 1; seed <= 5; ++seed) runOracle<IdentityHash>(seed, 512);
}

TEST(FlatMapProperty, OracleEntKeys) {
  std::mt19937 rng(42);
  FlatMap<core::Ent, int, core::EntHash> m;
  std::unordered_map<core::Ent, int, core::EntHash> oracle;
  for (int step = 0; step < 4000; ++step) {
    const core::Ent e(static_cast<core::Topo>(rng() % core::kTopoCount),
                      rng() % 300);
    if (rng() % 3 == 0) {
      ASSERT_EQ(m.erase(e), oracle.erase(e));
    } else {
      const int v = static_cast<int>(rng());
      m[e] = v;
      oracle[e] = v;
    }
  }
  ASSERT_EQ(m.size(), oracle.size());
  for (const auto& [k, v] : oracle) {
    auto it = m.find(k);
    ASSERT_NE(it, m.end());
    ASSERT_EQ(it->second, v);
  }
}

/// Tombstone reuse: a sustained insert/erase churn over a fixed key set
/// must not grow the table without bound — erased slots become tombstones
/// and inserts on the same probe paths reclaim them (or a same-size rehash
/// clears them). 100k churn steps over 64 keys must keep capacity tiny.
TEST(FlatMapProperty, TombstoneReuseBoundsCapacity) {
  FlatMap<int, int> m;
  std::mt19937 rng(7);
  for (int i = 0; i < 64; ++i) m[i] = i;
  for (int step = 0; step < 100000; ++step) {
    const int k = static_cast<int>(rng() % 64);
    m.erase(k);
    m[k] = step;
  }
  EXPECT_EQ(m.size(), 64u);
  // 64 live keys need >= 128 slots at 7/8 load w/ 16-wide groups; churn must
  // not have inflated this by more than one doubling.
  EXPECT_LE(m.capacity(), 256u) << "tombstones were never reclaimed";
  for (int i = 0; i < 64; ++i) EXPECT_TRUE(m.contains(i));
}

/// The documented iterator/reference stability contract:
///  (a) erase() never rehashes: references to OTHER elements stay valid;
///  (b) any insert may rehash: the test asserts validity only up to the
///      next insert, which is all the contract promises.
TEST(FlatMap, EraseKeepsOtherReferencesValid) {
  FlatMap<int, std::string> m;
  for (int i = 0; i < 100; ++i) m[i] = "v" + std::to_string(i);
  std::vector<const std::string*> refs;
  for (int i = 0; i < 100; i += 2) refs.push_back(&m.at(i));
  for (int i = 1; i < 100; i += 2) m.erase(i);  // erase the odd keys
  for (std::size_t j = 0; j < refs.size(); ++j)
    EXPECT_EQ(*refs[j], "v" + std::to_string(2 * j))
        << "erase moved an unrelated element";
  const std::size_t cap_before = m.capacity();
  for (int i = 1; i < 100; i += 2) m.erase(i);
  EXPECT_EQ(m.capacity(), cap_before) << "erase rehashed";
}

TEST(FlatMap, EraseByIteratorAdvances) {
  FlatMap<int, int> m;
  for (int i = 0; i < 50; ++i) m[i] = i;
  // Erase every element through the iterator API.
  auto it = m.begin();
  std::size_t erased = 0;
  while (it != m.end()) {
    it = m.erase(it);
    ++erased;
  }
  EXPECT_EQ(erased, 50u);
  EXPECT_TRUE(m.empty());
}

TEST(FlatMap, CopyAndMoveSemantics) {
  FlatMap<int, std::string> a;
  for (int i = 0; i < 200; ++i) a[i] = std::to_string(i * i);
  a.erase(13);

  FlatMap<int, std::string> b(a);  // copy
  ASSERT_EQ(b.size(), a.size());
  for (const auto& [k, v] : a) EXPECT_EQ(b.at(k), v);
  b[9999] = "x";
  EXPECT_FALSE(a.contains(9999)) << "copy aliases the original";

  FlatMap<int, std::string> c(std::move(b));  // move steals storage
  EXPECT_TRUE(c.contains(9999));
  EXPECT_EQ(c.at(100), "10000");

  FlatMap<int, std::string> d;
  d[1] = "old";
  d = a;  // copy assign over live contents
  EXPECT_EQ(d.size(), a.size());
  EXPECT_FALSE(d.contains(13));
  d = std::move(c);  // move assign
  EXPECT_TRUE(d.contains(9999));
}

TEST(FlatMap, NonTriviallyCopyableValues) {
  // Remote (vector-bearing) values exercise placement-new construct /
  // destroy and move-on-rehash paths: the dist tables store these.
  FlatMap<core::Ent, std::vector<dist::Copy>, core::EntHash> m;
  for (std::uint32_t i = 0; i < 300; ++i) {
    const core::Ent e(core::Topo::Vertex, i);
    auto& cps = m[e];
    for (std::uint32_t j = 0; j <= i % 5; ++j)
      cps.push_back(dist::Copy{static_cast<dist::PartId>(j), e});
  }
  ASSERT_EQ(m.size(), 300u);
  for (std::uint32_t i = 0; i < 300; ++i) {
    const core::Ent e(core::Topo::Vertex, i);
    ASSERT_EQ(m.at(e).size(), i % 5 + 1);
    EXPECT_EQ(m.at(e).front().ent, e);
  }
}

TEST(FlatMap, ReserveAvoidsRehash) {
  FlatMap<int, int> m;
  m.reserve(1000);
  const std::size_t cap = m.capacity();
  ASSERT_GE(cap * 7 / 8, 1000u);
  for (int i = 0; i < 1000; ++i) m[i] = i;
  EXPECT_EQ(m.capacity(), cap) << "reserve(n) did not prevent rehash";
}

TEST(FlatSet, OracleChurn) {
  FlatSet<int> s;
  std::unordered_set<int> oracle;
  std::mt19937 rng(99);
  for (int step = 0; step < 8000; ++step) {
    const int k = static_cast<int>(rng() % 400);
    if (rng() % 3 == 0) {
      ASSERT_EQ(s.erase(k), oracle.erase(k));
    } else {
      ASSERT_EQ(s.insert(k).second, oracle.insert(k).second);
    }
  }
  ASSERT_EQ(s.size(), oracle.size());
  for (int k : oracle) EXPECT_TRUE(s.contains(k));
  std::size_t n = 0;
  for (int k : s) {
    EXPECT_TRUE(oracle.count(k));
    ++n;
  }
  EXPECT_EQ(n, s.size());
}

TEST(FlatSet, RangeConstructAndGKeys) {
  std::vector<core::Ent> ents;
  for (std::uint32_t i = 0; i < 64; ++i)
    ents.emplace_back(core::Topo::Tet, i);
  const FlatSet<core::Ent, core::EntHash> s(ents.begin(), ents.end());
  EXPECT_EQ(s.size(), 64u);
  for (core::Ent e : ents) EXPECT_TRUE(s.contains(e));

  FlatMap<dist::GKey, core::Ent, dist::GKeyHash> by_key;
  for (std::uint32_t i = 0; i < 500; ++i) {
    const dist::GKey k{static_cast<dist::PartId>(i % 7),
                       core::Ent(core::Topo::Tri, i)};
    by_key.emplace(k, core::Ent(core::Topo::Tri, i));
  }
  EXPECT_EQ(by_key.size(), 500u);
  const dist::GKey probe{3, core::Ent(core::Topo::Tri, 10)};
  ASSERT_NE(by_key.find(probe), by_key.end());
  EXPECT_EQ(by_key.at(probe).index(), 10u);
}

}  // namespace
