#include <gtest/gtest.h>

#include "core/verify.hpp"
#include "dist/partedmesh.hpp"
#include "field/field.hpp"
#include "meshgen/boxmesh.hpp"

namespace {

using common::Vec3;
using core::Ent;
using dist::PartId;

TEST(Field, ScalarRoundTrip) {
  auto gen = meshgen::boxTets(2, 2, 2);
  field::Field f(*gen.mesh, "pressure", field::ValueType::Scalar,
                 field::Location::Vertex);
  EXPECT_EQ(f.nodeDim(), 0);
  const Ent v = *gen.mesh->entities(0).begin();
  EXPECT_FALSE(f.hasValue(v));
  f.setScalar(v, 3.25);
  EXPECT_TRUE(f.hasValue(v));
  EXPECT_EQ(f.getScalar(v), 3.25);
}

TEST(Field, VectorAndMatrixRoundTrip) {
  auto gen = meshgen::boxTets(1, 1, 1);
  field::Field vel(*gen.mesh, "velocity", field::ValueType::Vector,
                   field::Location::Vertex);
  field::Field hess(*gen.mesh, "hessian", field::ValueType::Matrix,
                    field::Location::Element);
  const Ent v = *gen.mesh->entities(0).begin();
  vel.setVector(v, {1, 2, 3});
  EXPECT_EQ(vel.getVector(v), Vec3(1, 2, 3));
  const Ent e = *gen.mesh->entities(3).begin();
  common::Mat3 m = common::Mat3::identity();
  m(0, 2) = 7.0;
  hess.setMatrix(e, m);
  EXPECT_EQ(hess.getMatrix(e)(0, 2), 7.0);
  EXPECT_EQ(hess.getMatrix(e)(1, 1), 1.0);
}

TEST(Field, ReattachFindsExistingTag) {
  auto gen = meshgen::boxTets(1, 1, 1);
  {
    field::Field f(*gen.mesh, "t", field::ValueType::Scalar,
                   field::Location::Vertex);
    f.fillScalar(5.0);
  }
  field::Field again(*gen.mesh, "t", field::ValueType::Scalar,
                     field::Location::Vertex);
  for (Ent v : gen.mesh->entities(0)) EXPECT_EQ(again.getScalar(v), 5.0);
  EXPECT_THROW(field::Field(*gen.mesh, "t", field::ValueType::Vector,
                            field::Location::Vertex),
               std::invalid_argument);
}

TEST(Field, IntegrateConstantIsVolume) {
  auto gen = meshgen::boxTets(3, 3, 3, {0, 0, 0}, {2, 1, 1});
  field::Field f(*gen.mesh, "one", field::ValueType::Scalar,
                 field::Location::Vertex);
  f.fillScalar(1.0);
  EXPECT_NEAR(field::integrate(f), 2.0, 1e-9);
  // Element-located field too.
  field::Field g(*gen.mesh, "two", field::ValueType::Scalar,
                 field::Location::Element);
  g.fillScalar(2.0);
  EXPECT_NEAR(field::integrate(g), 4.0, 1e-9);
}

TEST(Field, IntegrateLinearExact) {
  // Vertex-mean element quadrature integrates linears exactly on tets.
  auto gen = meshgen::boxTets(4, 4, 4);
  field::Field f(*gen.mesh, "lin", field::ValueType::Scalar,
                 field::Location::Vertex);
  f.assign([](const Vec3& x) { return 2.0 * x.x + 3.0 * x.y - x.z + 1.0; });
  // Integral over unit cube: 2*0.5 + 3*0.5 - 0.5 + 1 = 3.0.
  EXPECT_NEAR(field::integrate(f), 3.0, 1e-9);
}

TEST(Field, GradientOfLinearFieldOnTets) {
  auto gen = meshgen::boxTets(2, 2, 2);
  field::Field f(*gen.mesh, "lin", field::ValueType::Scalar,
                 field::Location::Vertex);
  f.assign([](const Vec3& x) { return 4.0 * x.x - 2.0 * x.y + 0.5 * x.z; });
  for (Ent e : gen.mesh->entities(3)) {
    const Vec3 g = field::gradient(f, e);
    EXPECT_NEAR(g.x, 4.0, 1e-10);
    EXPECT_NEAR(g.y, -2.0, 1e-10);
    EXPECT_NEAR(g.z, 0.5, 1e-10);
  }
}

TEST(Field, GradientOnTriangles) {
  auto gen = meshgen::boxTris(3, 3);
  field::Field f(*gen.mesh, "lin", field::ValueType::Scalar,
                 field::Location::Vertex);
  f.assign([](const Vec3& x) { return x.x + 2.0 * x.y; });
  for (Ent e : gen.mesh->entities(2)) {
    const Vec3 g = field::gradient(f, e);
    EXPECT_NEAR(g.x, 1.0, 1e-10);
    EXPECT_NEAR(g.y, 2.0, 1e-10);
    EXPECT_NEAR(g.z, 0.0, 1e-10);
  }
}

TEST(Field, MigratesWithElements) {
  auto gen = meshgen::boxTets(2, 2, 2);
  std::vector<PartId> dest(gen.mesh->count(3), 0);
  auto pm = dist::PartedMesh::distribute(*gen.mesh, gen.model.get(), dest,
                                         dist::PartMap(2, pcu::Machine::flat(2)));
  // Field on part 0's vertices.
  field::Field f(pm->part(0).mesh(), "temp", field::ValueType::Scalar,
                 field::Location::Vertex);
  f.assign([](const Vec3& x) { return x.x + 10.0 * x.y; });
  // Push half the elements to part 1; field values ride along.
  dist::MigrationPlan plan(2);
  for (Ent e : pm->part(0).elements())
    if (core::centroid(pm->part(0).mesh(), e).x > 0.5) plan[0][e] = 1;
  pm->migrate(plan);
  pm->verify();
  field::Field f1(pm->part(1).mesh(), "temp", field::ValueType::Scalar,
                  field::Location::Vertex);
  for (Ent v : pm->part(1).mesh().entities(0)) {
    ASSERT_TRUE(f1.hasValue(v));
    const Vec3 x = pm->part(1).mesh().point(v);
    EXPECT_NEAR(f1.getScalar(v), x.x + 10.0 * x.y, 1e-12);
  }
}

TEST(Field, SyncSharedPushesOwnerValues) {
  auto gen = meshgen::boxTets(2, 2, 2);
  std::vector<PartId> dest;
  for (Ent e : gen.mesh->entities(3))
    dest.push_back(core::centroid(*gen.mesh, e).x < 0.5 ? 0 : 1);
  auto pm = dist::PartedMesh::distribute(*gen.mesh, gen.model.get(), dest,
                                         dist::PartMap(2, pcu::Machine::flat(2)));
  // Owners write 1.0, non-owners 0.0 on shared vertices.
  for (PartId p = 0; p < 2; ++p) {
    field::Field f(pm->part(p).mesh(), "u", field::ValueType::Scalar,
                   field::Location::Vertex);
    for (Ent v : pm->part(p).mesh().entities(0))
      f.setScalar(v, pm->part(p).isOwned(v) ? 1.0 : 0.0);
  }
  pm->syncSharedTags();
  // Every shared vertex now reads 1.0 everywhere.
  for (PartId p = 0; p < 2; ++p) {
    field::Field f(pm->part(p).mesh(), "u", field::ValueType::Scalar,
                   field::Location::Vertex);
    for (Ent v : pm->part(p).mesh().entities(0)) {
      if (pm->part(p).isShared(v)) {
        EXPECT_EQ(f.getScalar(v), 1.0);
      }
    }
  }
}

}  // namespace
