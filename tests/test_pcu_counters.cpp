#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "pcu/counters.hpp"

namespace {

TEST(Counters, NowIsMonotonic) {
  const double a = pcu::now();
  const double b = pcu::now();
  EXPECT_GE(b, a);
}

TEST(Counters, TimerAccumulates) {
  pcu::Timers timers;
  {
    pcu::Timers::Scope s(timers, "work");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  {
    pcu::Timers::Scope s(timers, "work");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(timers.calls("work"), 2u);
  EXPECT_GE(timers.seconds("work"), 0.008);
  EXPECT_EQ(timers.calls("other"), 0u);
  EXPECT_EQ(timers.seconds("other"), 0.0);
}

TEST(Counters, NestedScopesAccumulateIndependently) {
  pcu::Timers timers;
  {
    pcu::Timers::Scope outer(timers, "outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    {
      pcu::Timers::Scope inner(timers, "inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    {
      pcu::Timers::Scope inner(timers, "inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  EXPECT_EQ(timers.calls("outer"), 1u);
  EXPECT_EQ(timers.calls("inner"), 2u);
  // The outer scope contains both inner scopes.
  EXPECT_GE(timers.seconds("outer"), timers.seconds("inner"));
  timers.clear();
  EXPECT_EQ(timers.calls("outer"), 0u);
  EXPECT_EQ(timers.calls("inner"), 0u);
  EXPECT_EQ(timers.entries().size(), 0u);
  // A cleared Timers is immediately reusable.
  timers.add("outer", 1.0);
  EXPECT_DOUBLE_EQ(timers.seconds("outer"), 1.0);
}

TEST(Counters, ScopeTakesStringViewWithoutCopy) {
  // Scope names are string_views over caller storage: literals and any
  // stable buffer work; lookups accept string_view too (no temporary
  // std::string per query).
  pcu::Timers timers;
  const std::string dynamic = "dynamic-phase";
  {
    pcu::Timers::Scope s(timers, std::string_view(dynamic));
  }
  {
    pcu::Timers::Scope s(timers, "literal-phase");
  }
  EXPECT_EQ(timers.calls(std::string_view("dynamic-phase")), 1u);
  EXPECT_EQ(timers.calls("literal-phase"), 1u);
}

TEST(Counters, ManualAddAndEntries) {
  pcu::Timers timers;
  timers.add("phase", 1.5);
  timers.add("phase", 0.5);
  timers.add("io", 0.25);
  EXPECT_DOUBLE_EQ(timers.seconds("phase"), 2.0);
  EXPECT_EQ(timers.entries().size(), 2u);
  timers.clear();
  EXPECT_EQ(timers.entries().size(), 0u);
}

TEST(Counters, MemoryCountersReportSomething) {
  // On Linux /proc/self/status is available; both counters should be
  // positive and peak >= current.
  const auto current = pcu::currentMemoryBytes();
  const auto peak = pcu::peakMemoryBytes();
  EXPECT_GT(current, 0u);
  EXPECT_GE(peak, current / 2);  // loose: VmHWM >= VmRSS modulo accounting
}

TEST(Counters, MemoryGrowsWithAllocation) {
  const auto before = pcu::currentMemoryBytes();
  std::vector<std::vector<double>> hog;
  for (int i = 0; i < 32; ++i) hog.emplace_back(1 << 17, 1.0);  // 32 MB
  const auto after = pcu::currentMemoryBytes();
  EXPECT_GT(after, before);
  EXPECT_GT(hog.back().back(), 0.0);
}

}  // namespace
