#include <gtest/gtest.h>

#include "meshgen/boxmesh.hpp"
#include "meshgen/workloads.hpp"
#include <unordered_set>

#include "part/coloring.hpp"

namespace {

using part::ColorRelation;

struct ColorCase {
  int nx, ny, nz;
  ColorRelation relation;
};

class ColoringGrids : public ::testing::TestWithParam<ColorCase> {};

TEST_P(ColoringGrids, ValidAndCovering) {
  const auto [nx, ny, nz, relation] = GetParam();
  auto gen = meshgen::boxTets(nx, ny, nz);
  const auto c = part::colorElements(*gen.mesh, relation);
  EXPECT_EQ(c.color.size(), gen.mesh->count(3));
  EXPECT_GT(c.colors, 0);
  EXPECT_NO_THROW(part::verifyColoring(*gen.mesh, c, relation));
  // Every color class is non-empty and they partition the elements.
  std::size_t total = 0;
  for (int k = 0; k < c.colors; ++k) {
    const auto members = c.members(k);
    EXPECT_FALSE(members.empty()) << "color " << k;
    total += members.size();
  }
  EXPECT_EQ(total, gen.mesh->count(3));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ColoringGrids,
    ::testing::Values(ColorCase{2, 2, 2, ColorRelation::SharedVertex},
                      ColorCase{4, 3, 2, ColorRelation::SharedVertex},
                      ColorCase{2, 2, 2, ColorRelation::SharedFace},
                      ColorCase{4, 3, 2, ColorRelation::SharedFace}),
    [](const auto& info) {
      return std::to_string(info.param.nx) + std::to_string(info.param.ny) +
             std::to_string(info.param.nz) +
             (info.param.relation == ColorRelation::SharedVertex ? "_vtx"
                                                                 : "_face");
    });

TEST(Coloring, FaceRelationNeedsFewerColors) {
  auto gen = meshgen::boxTets(4, 4, 4);
  const auto by_vertex =
      part::colorElements(*gen.mesh, ColorRelation::SharedVertex);
  const auto by_face =
      part::colorElements(*gen.mesh, ColorRelation::SharedFace);
  // A tet has at most 4 face neighbours but dozens of vertex neighbours.
  EXPECT_LT(by_face.colors, by_vertex.colors);
  EXPECT_LE(by_face.colors, 6);
}

TEST(Coloring, SharedVertexAllowsConcurrentNodalAssembly) {
  // The property the decomposition exists for: within one color, no two
  // elements touch the same vertex, so threads can scatter nodal values
  // without atomics.
  auto gen = meshgen::boxTets(3, 3, 3);
  const auto c =
      part::colorElements(*gen.mesh, ColorRelation::SharedVertex);
  std::vector<core::Ent> elems = gen.mesh->all(3);
  for (int k = 0; k < c.colors; ++k) {
    std::unordered_set<core::Ent, core::EntHash> touched;
    for (std::size_t i : c.members(k)) {
      for (core::Ent v : gen.mesh->verts(elems[i])) {
        EXPECT_TRUE(touched.insert(v).second)
            << "vertex touched twice within color " << k;
      }
    }
  }
}

TEST(Coloring, TwoDimensionalMesh) {
  auto gen = meshgen::boxTris(6, 6);
  const auto c = part::colorElements(*gen.mesh, ColorRelation::SharedVertex);
  part::verifyColoring(*gen.mesh, c, ColorRelation::SharedVertex);
  EXPECT_GE(c.colors, 3);  // triangles around a vertex need >= its degree
}

TEST(Coloring, DeterministicAcrossRuns) {
  auto gen = meshgen::boxTets(3, 3, 3);
  const auto a = part::colorElements(*gen.mesh);
  const auto b = part::colorElements(*gen.mesh);
  EXPECT_EQ(a.color, b.color);
  EXPECT_EQ(a.colors, b.colors);
}

}  // namespace
