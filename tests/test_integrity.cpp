/// \file test_integrity.cpp
/// \brief Tests for the silent-corruption armor: deterministic memory-fault
/// injection, incremental part-state checksum ledgers, and online
/// audit-and-repair at transactional commit points.
///
/// Contract under test (ISSUE: silent-corruption armor): one flipped bit in
/// live part state — an entity pool, the coordinates, a tag payload, a
/// remote/ghost record, a cached CSR array — never propagates silently.
/// The ledger localizes the damage to an exact (part, section, byte range);
/// the armor repairs through an escalation ladder (CSR rebuild -> buddy
/// journal -> checkpoint) or raises a structured kIntegrity naming the
/// damage; and a seeded `memflip` matrix replays bit-identically: every
/// injected flip is repaired to a fingerprint-identical mesh or reported
/// with exact localization. Zero silent digest divergence, ever.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/crc32.hpp"
#include "common/rng.hpp"
#include "core/integrity.hpp"
#include "core/mesh.hpp"
#include "dist/checkpoint.hpp"
#include "dist/failover.hpp"
#include "dist/integrity.hpp"
#include "dist/partedmesh.hpp"
#include "meshgen/boxmesh.hpp"
#include "parma/balance.hpp"
#include "part/partition.hpp"
#include "pcu/error.hpp"
#include "pcu/faults.hpp"
#include "pcu/stats.hpp"
#include "pcu/trace.hpp"
#include "svc/patrol.hpp"
#include "svc/scheduler.hpp"

namespace {

using core::Ent;
using dist::PartId;
using pcu::Error;
using pcu::ErrorCode;
namespace faults = pcu::faults;
namespace failover = dist::failover;
namespace ci = core::integrity;
namespace di = dist::integrity;

/// Installs a plan for the scope of one test body; always clears on exit so
/// a failing assertion cannot leak fault state into later tests.
struct PlanGuard {
  explicit PlanGuard(const faults::FaultPlan& p) { faults::setPlan(p); }
  ~PlanGuard() { faults::clearPlan(); }
  PlanGuard(const PlanGuard&) = delete;
  PlanGuard& operator=(const PlanGuard&) = delete;
};

std::unique_ptr<dist::PartedMesh> makeMesh(const meshgen::Generated& gen,
                                           int nparts) {
  const auto assign = part::partition(*gen.mesh, nparts, part::Method::RCB);
  return dist::PartedMesh::distribute(
      *gen.mesh, gen.model.get(), assign,
      dist::PartMap(nparts, pcu::Machine::flat(nparts)));
}

dist::MigrationPlan randomPlan(dist::PartedMesh& pm, common::Rng& rng,
                               double move_prob) {
  dist::MigrationPlan plan(static_cast<std::size_t>(pm.parts()));
  for (PartId p = 0; p < pm.parts(); ++p)
    for (Ent e : pm.part(p).elements()) {
      if (rng.uniform() >= move_prob) continue;
      const auto dest = static_cast<PartId>(
          rng.below(static_cast<std::uint64_t>(pm.parts())));
      if (dest != p) plan[static_cast<std::size_t>(p)][e] = dest;
    }
  return plan;
}

/// Geometric digest of one element: hash of its sorted vertex coordinates.
/// Stable across handle rebuilds and part moves, so the multiset over the
/// whole mesh is the "nothing lost, nothing mutated" witness.
std::uint64_t elementDigest(const core::Mesh& m, Ent e) {
  std::vector<std::array<double, 3>> pts;
  for (Ent v : m.verts(e)) {
    const auto x = m.point(v);
    pts.push_back({x.x, x.y, x.z});
  }
  std::sort(pts.begin(), pts.end());
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const auto& pt : pts)
    for (double d : pt) {
      std::uint64_t bits = 0;
      std::memcpy(&bits, &d, sizeof bits);
      h = (h ^ bits) * 0x100000001b3ull;
    }
  return h;
}

std::multiset<std::uint64_t> elementDigests(const dist::PartedMesh& pm) {
  std::multiset<std::uint64_t> out;
  for (PartId p = 0; p < pm.parts(); ++p) {
    const core::Mesh& m = pm.part(p).mesh();
    for (Ent e : pm.part(p).elements()) out.insert(elementDigest(m, e));
  }
  return out;
}

/// Flip one byte of a named mesh section WITHOUT bumping any version
/// counter — exactly what a particle strike looks like to the ledger.
void corruptSection(core::Mesh& m, const std::string& name, std::size_t at) {
  auto span = ci::MeshAccess::mutableSection(m, name);
  ASSERT_FALSE(span.empty()) << "no section named " << name;
  ASSERT_LT(at, span.size());
  span[at] ^= std::byte{0x40};
}

/// First sealed section of part p whose name starts with `prefix`.
std::string sectionWithPrefix(di::Armor& armor, PartId p,
                              const std::string& prefix) {
  for (const auto& s : armor.partSections(p))
    if (s.rfind(prefix, 0) == 0) return s;
  return {};
}

/// Give every part's mesh a vertex tag with values (so the `tag` flip
/// family has eligible bytes) and a primed elements->verts CSR view (so
/// the `csr` family does too).
void primeTagAndCsr(dist::PartedMesh& pm, int dim) {
  for (PartId p = 0; p < pm.parts(); ++p) {
    core::Mesh& m = pm.part(p).mesh();
    auto tag = m.tags().create<double>("weight", 1);
    for (Ent v : m.entities(0))
      m.tags().setScalar<double>(tag, v, 1.0 + static_cast<double>(p));
    (void)m.csr(dim, 0);
  }
}

/// --- PUMI_FAULTS memflip grammar (strict parse) --------------------------

TEST(MemFaultSpec, ParsesMemflipToken) {
  const auto p = faults::parsePlan("seed=9,memflip=3@2");
  EXPECT_EQ(p.memflip.bits, 3);
  EXPECT_EQ(p.memflip.phase, 2);
  EXPECT_EQ(p.memflip.target, faults::MemTarget::kAny);
  EXPECT_TRUE(p.memflip.scheduled());
  EXPECT_TRUE(p.memInjects());
  // Memory faults arm neither message framing nor the storage shim.
  EXPECT_FALSE(p.injects());
  EXPECT_FALSE(p.ioInjects());
}

TEST(MemFaultSpec, ParsesEveryTargetFamily) {
  const std::pair<const char*, faults::MemTarget> targets[] = {
      {"pool", faults::MemTarget::kPool},
      {"tag", faults::MemTarget::kTag},
      {"remotes", faults::MemTarget::kRemotes},
      {"csr", faults::MemTarget::kCsr},
  };
  for (const auto& [name, target] : targets) {
    const auto p =
        faults::parsePlan(std::string("memflip=1@0:") + name);
    EXPECT_EQ(p.memflip.target, target) << name;
    EXPECT_STREQ(faults::memTargetName(target), name);
  }
}

TEST(MemFaultSpec, MalformedTokensAreRejectedByName) {
  for (const char* bad :
       {"memflip=", "memflip=3", "memflip=@2", "memflip=3@", "memflip=0@1",
        "memflip=x@2", "memflip=3@y", "memflip=3@-1", "memflip=-1@2",
        "memflip=3@2:disk", "memflip=3@2:", "memflip=3@2:POOL"}) {
    try {
      faults::parsePlan(bad);
      FAIL() << "accepted malformed PUMI_FAULTS token: " << bad;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kValidation) << bad;
      EXPECT_NE(std::string(e.detail()).find("memflip"), std::string::npos)
          << "error must name the bad token: " << bad << " -> " << e.what();
    }
  }
}

TEST(MemFaultSpec, DuplicateMemflipKeysAreRejected) {
  try {
    faults::parsePlan("memflip=1@0,memflip=2@1");
    FAIL() << "accepted a duplicate memflip key";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kValidation);
    EXPECT_NE(std::string(e.detail()).find("memflip"), std::string::npos);
  }
}

TEST(MemFaultSpec, FiresConsumeOnceAtItsBoundary) {
  PlanGuard g(faults::parsePlan("memflip=4@1:tag"));
  EXPECT_TRUE(faults::memEnabled());
  EXPECT_EQ(faults::fireMemFlip(0).bits, 0) << "wrong boundary must not fire";
  const auto burst = faults::fireMemFlip(1);
  EXPECT_EQ(burst.bits, 4);
  EXPECT_EQ(burst.target, faults::MemTarget::kTag);
  EXPECT_EQ(faults::fireMemFlip(1).bits, 0) << "a burst fires exactly once";
}

TEST(MemFaultSpec, FlipKeyIsPureInItsInputs) {
  const std::uint64_t h = faults::ioPathHash("pool");
  const auto k = faults::memFlipKey(7, 0, 2, h, 0);
  EXPECT_EQ(faults::memFlipKey(7, 0, 2, h, 0), k) << "must replay";
  std::set<std::uint64_t> keys;
  for (int part = 0; part < 4; ++part)
    for (int flip = 0; flip < 4; ++flip)
      keys.insert(faults::memFlipKey(7, 0, part, h, flip));
  EXPECT_EQ(keys.size(), 16u) << "distinct inputs must spread";
  EXPECT_NE(faults::memFlipKey(8, 0, 2, h, 0), k) << "seed must matter";
}

/// --- CRC-32C (the in-memory ledger checksum) -----------------------------

TEST(Crc32c, MatchesKnownAnswersAndChains) {
  const char* s = "123456789";
  const auto* b = reinterpret_cast<const std::byte*>(s);
  EXPECT_EQ(common::crc32c(b, 9), 0xE3069283u) << "CRC-32C Castagnoli KAT";
  EXPECT_EQ(common::crc32(b, 9), 0xCBF43926u) << "CRC-32 IEEE KAT";
  // Seeded calls chain: crc32c(b, crc32c(a)) == crc32c(a||b). This is what
  // lets the ledger hash a section in blocks.
  for (std::size_t cut = 0; cut <= 9; ++cut)
    EXPECT_EQ(common::crc32c(b + cut, 9 - cut, common::crc32c(b, cut)),
              0xE3069283u)
        << "chain split at " << cut;
  EXPECT_EQ(common::crc32c(b, 0), 0u);
}

/// --- the sectioned ledger (core::integrity) ------------------------------

TEST(Ledger, SealsMeshSectionsAndAuditsClean) {
  auto gen = meshgen::boxTris(4, 4);
  ci::Ledger led;
  EXPECT_FALSE(led.sealed());
  led.seal(*gen.mesh);
  EXPECT_TRUE(led.sealed());
  const auto names = led.sectionNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "coords"), names.end());
  EXPECT_TRUE(std::any_of(names.begin(), names.end(), [](const auto& n) {
    return n.rfind("pool:", 0) == 0;
  }));
  EXPECT_GT(led.coveredBytes(), 0u);
  std::vector<ci::Mismatch> ms;
  led.audit(*gen.mesh, ms);
  EXPECT_TRUE(ms.empty());
}

TEST(Ledger, FlippedByteIsLocalizedToItsBlock) {
  auto gen = meshgen::boxTris(5, 5);
  ci::Ledger led;
  led.seal(*gen.mesh);
  const auto span = ci::MeshAccess::mutableSection(*gen.mesh, "coords");
  ASSERT_GT(span.size(), ci::kBlockBytes) << "want a multi-block section";
  const std::size_t at = ci::kBlockBytes + 17;  // inside the second block
  span[at] ^= std::byte{0x01};

  std::vector<ci::Mismatch> ms;
  led.audit(*gen.mesh, ms);
  ASSERT_EQ(ms.size(), 1u);
  EXPECT_EQ(ms[0].section, "coords");
  EXPECT_LE(ms[0].first_byte, at);
  EXPECT_GE(ms[0].last_byte, at);
  EXPECT_LT(ms[0].last_byte - ms[0].first_byte, ci::kBlockBytes)
      << "localization must be block-granular, not whole-section";

  span[at] ^= std::byte{0x01};  // heal the flip: the seal is valid again
  ms.clear();
  led.audit(*gen.mesh, ms);
  EXPECT_TRUE(ms.empty());
}

TEST(Ledger, LegitimateWritesAreVersionGatedNotCorruption) {
  auto gen = meshgen::boxTris(4, 4);
  core::Mesh& m = *gen.mesh;
  ci::Ledger led;
  led.seal(m);
  // A legitimate mutation bumps dataVersion: the audit must skip the
  // section (changed versions = legal write), never cry corruption.
  const Ent v = *m.entities(0).begin();
  auto x = m.point(v);
  x.x += 0.25;
  m.setPoint(v, x);
  std::vector<ci::Mismatch> ms;
  led.audit(m, ms);
  EXPECT_TRUE(ms.empty()) << "a setPoint is not corruption";
  led.seal(m);  // re-keys coords at the new version
  ms.clear();
  led.audit(m, ms);
  EXPECT_TRUE(ms.empty());
}

TEST(Ledger, TagPayloadCorruptionIsDetectedAndWritesAreNot) {
  auto gen = meshgen::boxTris(4, 4);
  core::Mesh& m = *gen.mesh;
  auto tag = m.tags().create<double>("w", 1);
  std::vector<Ent> verts;
  for (Ent v : m.entities(0)) verts.push_back(v);
  for (Ent v : verts) m.tags().setScalar<double>(tag, v, 3.5);

  ci::Ledger led;
  led.seal(m);
  const auto names = led.sectionNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "tag:w"), names.end());

  // Corrupt one payload byte through the raw view (no version bump).
  auto bytes = tag->valueBytes(verts.front());
  ASSERT_FALSE(bytes.empty());
  bytes[2] ^= std::byte{0x10};
  std::vector<ci::Mismatch> ms;
  led.audit(m, ms);
  ASSERT_EQ(ms.size(), 1u);
  EXPECT_EQ(ms[0].section, "tag:w");
  bytes[2] ^= std::byte{0x10};

  // A legitimate set() bumps the tag version: gated, not corruption.
  m.tags().setScalar<double>(tag, verts.front(), 9.0);
  ms.clear();
  led.audit(m, ms);
  EXPECT_TRUE(ms.empty());

  // A destroyed tag vanishes from the next seal without a mismatch.
  m.tags().destroy(tag);
  led.seal(m);
  ms.clear();
  led.audit(m, ms);
  EXPECT_TRUE(ms.empty());
  const auto after = led.sectionNames();
  EXPECT_EQ(std::find(after.begin(), after.end(), "tag:w"), after.end());
}

TEST(Ledger, CsrViewsAreCoveredWhileCurrent) {
  auto gen = meshgen::boxTris(4, 4);
  core::Mesh& m = *gen.mesh;
  (void)m.csr(2, 0);  // prime the elements->verts view
  ci::Ledger led;
  led.seal(m);
  const auto span = ci::MeshAccess::mutableSection(m, "csr:2->0:items");
  ASSERT_FALSE(span.empty());
  span[3] ^= std::byte{0x04};
  std::vector<ci::Mismatch> ms;
  led.audit(m, ms);
  ASSERT_EQ(ms.size(), 1u);
  EXPECT_EQ(ms[0].section, "csr:2->0:items");
}

/// --- the armor's repair ladder (dist::integrity) -------------------------

TEST(Armor, CsrCorruptionRebuildsDerivedStateWithoutReplicas) {
  auto gen = meshgen::boxTris(4, 4);
  auto pm = makeMesh(gen, 4);
  pm->setIntegrity(true);
  (void)pm->part(1).mesh().csr(2, 0);
  di::Armor& armor = pm->armor();
  armor.sealAndMaybeInject();
  const std::uint64_t fp = pm->fingerprint();

  const std::string sec = sectionWithPrefix(armor, 1, "csr:");
  ASSERT_FALSE(sec.empty());
  corruptSection(pm->part(1).mesh(), sec, 1);
  EXPECT_NO_THROW(armor.auditAndRepair("test"))
      << "CSR damage is tier 1: derived state, no replica needed";
  const auto rep = armor.report();
  ASSERT_EQ(rep.detected.size(), 1u);
  EXPECT_EQ(rep.detected[0].part, 1);
  EXPECT_EQ(rep.detected[0].section, sec);
  EXPECT_EQ(rep.detected[0].repair_tier, 1);
  EXPECT_EQ(rep.parts_repaired, std::vector<PartId>{1});
  EXPECT_EQ(pm->fingerprint(), fp);
  EXPECT_NO_THROW(pm->verify());
}

TEST(Armor, PoolCorruptionRepairsFromTheBuddyJournal) {
  auto gen = meshgen::boxTris(5, 5);
  auto pm = makeMesh(gen, 4);
  pm->setIntegrity(true);
  failover::BuddyJournal journal;
  di::Armor& armor = pm->armor();
  armor.setJournal(&journal);
  armor.sealAndMaybeInject();  // seals AND records the matching replica
  EXPECT_GT(journal.bytesStreamed(), 0u);
  const std::uint64_t fp = pm->fingerprint();
  const auto digests = elementDigests(*pm);

  const std::string sec = sectionWithPrefix(armor, 2, "pool:");
  ASSERT_FALSE(sec.empty());
  corruptSection(pm->part(2).mesh(), sec, 0);
  EXPECT_NO_THROW(armor.auditAndRepair("test"));
  const auto rep = armor.report();
  ASSERT_GE(rep.detected.size(), 1u);
  EXPECT_EQ(rep.detected[0].part, 2);
  EXPECT_EQ(rep.detected[0].repair_tier, 2) << "journal is tier 2";
  EXPECT_EQ(rep.parts_repaired, std::vector<PartId>{2});
  EXPECT_EQ(pm->fingerprint(), fp)
      << "repair must reproduce the sealed state exactly";
  EXPECT_EQ(elementDigests(*pm), digests);
  EXPECT_NO_THROW(pm->verify());
}

TEST(Armor, FallsBackToTheCheckpointWhenNoJournalIsSet) {
  namespace fs = std::filesystem;
  const fs::path dirp =
      fs::temp_directory_path() / "pumi_test_integrity" / "tier3";
  fs::remove_all(dirp);

  auto gen = meshgen::boxTris(5, 5);
  auto pm = makeMesh(gen, 4);
  pm->setIntegrity(true);
  dist::checkpoint(*pm, dirp.string());
  di::Armor& armor = pm->armor();
  armor.setCheckpointDir(dirp.string());
  armor.sealAndMaybeInject();
  const std::uint64_t fp = pm->fingerprint();

  const std::string sec = sectionWithPrefix(armor, 0, "pool:");
  ASSERT_FALSE(sec.empty());
  corruptSection(pm->part(0).mesh(), sec, 4);
  EXPECT_NO_THROW(armor.auditAndRepair("test"));
  const auto rep = armor.report();
  ASSERT_GE(rep.detected.size(), 1u);
  EXPECT_EQ(rep.detected[0].repair_tier, 3) << "checkpoint is tier 3";
  EXPECT_EQ(pm->fingerprint(), fp);
  EXPECT_NO_THROW(pm->verify());
  fs::remove_all(dirp);
}

TEST(Armor, ExhaustedLadderThrowsKIntegrityWithExactLocalization) {
  auto gen = meshgen::boxTris(4, 4);
  auto pm = makeMesh(gen, 4);
  pm->setIntegrity(true);
  di::Armor& armor = pm->armor();  // no journal, no checkpoint: bare
  armor.sealAndMaybeInject();

  const std::string sec = sectionWithPrefix(armor, 3, "pool:");
  ASSERT_FALSE(sec.empty());
  corruptSection(pm->part(3).mesh(), sec, 2);
  try {
    armor.auditAndRepair("op");
    FAIL() << "unrepairable corruption must raise kIntegrity";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIntegrity);
    const std::string d(e.what());
    EXPECT_NE(d.find("part 3"), std::string::npos) << d;
    EXPECT_NE(d.find(sec), std::string::npos)
        << "the error must name the corrupt section: " << d;
    EXPECT_NE(d.find("bytes ["), std::string::npos)
        << "the error must carry the byte range: " << d;
  }
  const auto rep = armor.report();
  EXPECT_EQ(rep.parts_unrepaired, std::vector<PartId>{3});
  EXPECT_GE(rep.mismatches, 1u);
}

/// --- deterministic injection, per target family --------------------------

class InjectorTarget : public ::testing::TestWithParam<const char*> {};

TEST_P(InjectorTarget, SeededBurstIsPlantedDetectedAndRepaired) {
  const std::string target = GetParam();
  auto gen = meshgen::boxTris(5, 5);
  auto pm = makeMesh(gen, 4);
  primeTagAndCsr(*pm, 2);
  pm->setIntegrity(true);
  failover::BuddyJournal journal;
  di::Armor& armor = pm->armor();
  armor.setJournal(&journal);

  PlanGuard g(faults::parsePlan("seed=31,memflip=3@0:" + target));
  armor.sealAndMaybeInject();  // boundary 0: the burst strikes sealed state

  // NOTE: nothing may serialize (fingerprint, checkpoint, journal) between
  // the strike and the audit — a corrupted pool handle would trip the
  // serializer. The armor's wiring guarantees exactly that: audit first.
  EXPECT_NO_THROW(armor.auditAndRepair("entry"));
  const auto rep = armor.report();
  EXPECT_EQ(rep.flips_injected + rep.flips_skipped, 3u)
      << "every scheduled bit is accounted: planted or skipped, never lost";
  if (rep.flips_injected > 0) {
    EXPECT_GE(rep.mismatches, 1u) << "a planted flip must be detected";
    EXPECT_FALSE(rep.parts_repaired.empty());
    for (const auto& c : rep.detected)
      EXPECT_GT(c.repair_tier, 0) << c.section << " left unrepaired";
  }
  EXPECT_TRUE(rep.parts_unrepaired.empty());
  EXPECT_NO_THROW(pm->verify());
  // Post-repair audit is clean: nothing silent left behind.
  EXPECT_NO_THROW(armor.auditAndRepair("after"));
  EXPECT_EQ(armor.report().mismatches, rep.mismatches);
}

INSTANTIATE_TEST_SUITE_P(Targets, InjectorTarget,
                         ::testing::Values("pool", "tag", "remotes", "csr"),
                         [](const auto& info) { return info.param; });

TEST(Armor, ReportIsDeterministicAcrossReruns) {
  // Same seed, same mesh, same boundary sequence -> bit-identical replay:
  // the detected list (parts, sections, byte ranges, tiers) must match.
  auto runOnce = [] {
    auto gen = meshgen::boxTris(5, 5);
    auto pm = makeMesh(gen, 4);
    primeTagAndCsr(*pm, 2);
    pm->setIntegrity(true);
    failover::BuddyJournal journal;
    di::Armor& armor = pm->armor();
    armor.setJournal(&journal);
    PlanGuard g(faults::parsePlan("seed=77,memflip=4@0"));
    armor.sealAndMaybeInject();
    armor.auditAndRepair("entry");
    return armor.report();
  };
  const auto a = runOnce();
  const auto b = runOnce();
  EXPECT_EQ(a.flips_injected, b.flips_injected);
  EXPECT_EQ(a.flips_skipped, b.flips_skipped);
  EXPECT_EQ(a.mismatches, b.mismatches);
  ASSERT_EQ(a.detected.size(), b.detected.size());
  for (std::size_t i = 0; i < a.detected.size(); ++i)
    EXPECT_TRUE(a.detected[i] == b.detected[i])
        << "replay diverged at detection " << i << ": " <<
        a.detected[i].section << " vs " << b.detected[i].section;
  EXPECT_EQ(a.parts_repaired, b.parts_repaired);
  EXPECT_EQ(a.parts_unrepaired, b.parts_unrepaired);
}

/// --- armor wired into the transactional operations -----------------------

TEST(Armor, OperationEntryAuditRepairsAFlipFromThePreviousBoundary) {
  auto gen = meshgen::boxTris(5, 5);
  auto pm = makeMesh(gen, 4);
  pm->setIntegrity(true);
  failover::BuddyJournal journal;
  pm->armor().setJournal(&journal);
  const auto digests = elementDigests(*pm);

  PlanGuard g(faults::parsePlan("seed=13,memflip=2@0"));
  pm->armor().sealAndMaybeInject();  // boundary 0: flip strikes idle state

  // The next operation's entry audit repairs the strike before the op
  // mutates anything; the op then commits clean.
  common::Rng rng(5);
  EXPECT_NO_THROW(pm->migrate(randomPlan(*pm, rng, 0.2)));
  EXPECT_NO_THROW(pm->verify());
  EXPECT_EQ(elementDigests(*pm), digests) << "zero elements lost or mutated";
  const auto rep = pm->armor().report();
  EXPECT_EQ(rep.flips_injected + rep.flips_skipped, 2u);
  if (rep.flips_injected > 0) {
    EXPECT_GE(rep.mismatches, 1u);
  }
  EXPECT_TRUE(rep.parts_unrepaired.empty());
}

/// --- the memflip matrix --------------------------------------------------
///
/// The tentpole's proof obligation: a 20-seed x {2D,3D} matrix of seeded
/// memory-fault campaigns over real transactional workloads (migrations +
/// balancing). Each case cycles the target family and boundary phase from
/// its seed. Every injected flip must be repaired to a digest-identical
/// mesh — the armor refreshes its journal replica at each seal, so the
/// ladder never meets a stale snapshot — and nothing may diverge silently.

struct MatrixCase {
  std::uint64_t seed;
  bool three_d;
};

class MemflipMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(MemflipMatrix, EveryInjectedFlipIsRepairedOrPreciselyReported) {
  const auto [seed, three_d] = GetParam();
  static const char* kTargets[] = {"pool", "tag", "remotes", "csr"};
  const std::string target = kTargets[seed % 4];
  const int phase = static_cast<int>(seed % 3);  // boundaries 0..2 all exist
  const int bits = 1 + static_cast<int>(seed % 4);

  auto gen = three_d ? meshgen::boxTets(2, 2, 2) : meshgen::boxTris(4, 4);
  auto pm = makeMesh(gen, 4);
  primeTagAndCsr(*pm, three_d ? 3 : 2);
  pm->setIntegrity(true);
  const auto pristine = elementDigests(*pm);

  failover::BuddyJournal journal;
  di::Armor& armor = pm->armor();
  armor.setJournal(&journal);

  PlanGuard g(faults::parsePlan(
      "seed=" + std::to_string(seed) + ",memflip=" + std::to_string(bits) +
      "@" + std::to_string(phase) + ":" + target));
  armor.sealAndMaybeInject();  // boundary 0

  common::Rng rng(seed);
  // Two migrations (boundaries 1, 2) then a balance pass (one boundary per
  // round): every scheduled phase fires, and every fired flip crosses a
  // later audit before anything reads part state. The explicit audit ahead
  // of each plan computation is the client contract the service and
  // balancer layers follow too: a flip planted at the previous commit
  // point must be repaired before handles are harvested from the mesh —
  // plans computed from struck state would be stale after the repair
  // rebuilds the part.
  armor.auditAndRepair("matrix:plan");
  pm->migrate(randomPlan(*pm, rng, 0.25));
  armor.auditAndRepair("matrix:plan");
  pm->migrate(randomPlan(*pm, rng, 0.25));
  parma::balance(*pm, three_d ? "Rgn" : "Face");  // audits each round
  armor.auditAndRepair("matrix:final");

  const auto rep = armor.report();
  EXPECT_EQ(rep.flips_injected + rep.flips_skipped,
            static_cast<std::uint64_t>(bits))
      << "the scheduled burst fired exactly once and is fully accounted";
  if (rep.flips_injected > 0) {
    EXPECT_GE(rep.mismatches, 1u)
        << "a planted flip evaded every audit: silent corruption";
  }
  for (const auto& c : rep.detected) {
    EXPECT_GT(c.repair_tier, 0)
        << "unrepaired detection survived without kIntegrity: part "
        << c.part << " section " << c.section;
    EXPECT_GE(c.last_byte, c.first_byte);
    EXPECT_FALSE(c.section.empty());
  }
  EXPECT_TRUE(rep.parts_unrepaired.empty());
  EXPECT_NO_THROW(pm->verify());
  EXPECT_EQ(elementDigests(*pm), pristine)
      << "zero silent digest divergence across the whole campaign";
}

INSTANTIATE_TEST_SUITE_P(
    Campaign, MemflipMatrix, ::testing::ValuesIn([] {
      std::vector<MatrixCase> cases;
      for (std::uint64_t s = 1; s <= 20; ++s)
        for (bool three_d : {false, true}) cases.push_back({s, three_d});
      return cases;
    }()),
    [](const ::testing::TestParamInfo<MatrixCase>& info) {
      return std::string("seed") + std::to_string(info.param.seed) +
             (info.param.three_d ? "_tets" : "_tris");
    });

/// --- trace counters ------------------------------------------------------

TEST(IntegrityTrace, CountersReachTheTraceReport) {
  pcu::trace::clear();
  pcu::trace::setEnabled(true);
  {
    auto gen = meshgen::boxTris(4, 4);
    auto pm = makeMesh(gen, 4);
    pm->setIntegrity(true);
    failover::BuddyJournal journal;
    di::Armor& armor = pm->armor();
    armor.setJournal(&journal);
    armor.sealAndMaybeInject();
    const std::string sec = sectionWithPrefix(armor, 1, "pool:");
    ASSERT_FALSE(sec.empty());
    corruptSection(pm->part(1).mesh(), sec, 0);
    armor.auditAndRepair("trace-test");
  }
  const auto report = pcu::buildTraceReport();
  pcu::trace::setEnabled(false);
  pcu::trace::clear();
  std::set<std::string> names;
  for (const auto& c : report.counters) names.insert(c.name);
  EXPECT_TRUE(names.count("integrity:seals"));
  EXPECT_TRUE(names.count("integrity:mismatches"));
  EXPECT_TRUE(names.count("integrity:repairs"));
  EXPECT_TRUE(names.count("integrity:repair_journal"));
}

/// --- the background patrol (svc) -----------------------------------------

TEST(Patrol, ScrubsIdleMeshesAndRepairsBetweenOperations) {
  auto gen = meshgen::boxTris(5, 5);
  auto pm = makeMesh(gen, 4);
  pm->setIntegrity(true);
  failover::BuddyJournal journal;
  di::Armor& armor = pm->armor();
  armor.setJournal(&journal);
  armor.sealAndMaybeInject();
  const std::uint64_t fp = pm->fingerprint();

  svc::Patrol patrol(1);
  std::mutex guard;
  const auto id = patrol.watch(pm.get(), &guard);

  // Corrupt while "idle" (guard free): the patrol must find and repair it
  // without any operation running.
  {
    std::lock_guard<std::mutex> hold(guard);
    const std::string sec = sectionWithPrefix(armor, 2, "pool:");
    ASSERT_FALSE(sec.empty());
    corruptSection(pm->part(2).mesh(), sec, 1);
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (patrol.stats().repairs == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  patrol.unwatch(id);

  const auto st = patrol.stats();
  EXPECT_GE(st.sweeps, 1u);
  EXPECT_GE(st.scrubs, 1u);
  EXPECT_GE(st.repairs, 1u) << "the patrol never found the corruption";
  EXPECT_EQ(st.fatals, 0u);
  EXPECT_EQ(pm->fingerprint(), fp) << "scrub must restore the sealed state";
  EXPECT_NO_THROW(pm->verify());
}

TEST(Patrol, NeverTouchesABusyMesh) {
  auto gen = meshgen::boxTris(4, 4);
  auto pm = makeMesh(gen, 4);
  pm->setIntegrity(true);
  pm->armor().sealAndMaybeInject();

  svc::Patrol patrol(1);
  std::mutex guard;
  guard.lock();  // the owner is "mid-operation" for the whole test
  const auto id = patrol.watch(pm.get(), &guard);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (patrol.stats().busy == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  patrol.unwatch(id);
  guard.unlock();
  const auto st = patrol.stats();
  EXPECT_GE(st.busy, 1u);
  EXPECT_EQ(st.scrubs, 0u) << "a held guard must always skip the mesh";
}

/// --- end to end through the service --------------------------------------

TEST(SvcIntegrity, MemflipJobCompletesWithTheSameDigestAsItsCleanTwin) {
  svc::SchedulerOptions opts;
  opts.pool_size = 8;
  opts.workers = 1;
  opts.patrol = true;
  opts.patrol_interval_ms = 1;
  svc::Scheduler sched(opts);

  auto makeJob = [](const std::string& name, const std::string& chaos) {
    svc::JobSpec s;
    s.tenant = "acme";
    s.name = name;
    s.width = 4;
    s.seed = 19;
    s.nx = s.ny = s.nz = 3;
    s.migrate_rounds = 2;
    s.chaos.faults = chaos;
    return s;
  };
  const auto clean = sched.run(makeJob("clean", ""));
  const auto armed =
      sched.run(makeJob("armed", "seed=41,memflip=3@1"));
  ASSERT_EQ(clean.state, svc::JobState::kCompleted) << clean.reason;
  ASSERT_EQ(armed.state, svc::JobState::kCompleted) << armed.reason;
  EXPECT_EQ(armed.digest, clean.digest)
      << "the armored job must land on the exact same mesh";
  EXPECT_EQ(armed.elements, clean.elements);
  EXPECT_EQ(clean.integrity_flips, 0);
  if (armed.integrity_flips > 0) {
    EXPECT_GE(armed.integrity_repairs, 1)
        << "an injected flip must surface as a repair, never silently";
  }

  const auto report = sched.report();
  const auto* t = report.tenant("acme");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->completed, 2);
  EXPECT_EQ(t->integrity_flips, armed.integrity_flips);
  EXPECT_EQ(t->integrity_repairs,
            clean.integrity_repairs + armed.integrity_repairs);
}

}  // namespace
