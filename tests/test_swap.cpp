#include <gtest/gtest.h>

#include "adapt/quality.hpp"
#include "adapt/swap.hpp"
#include "core/measure.hpp"
#include "core/verify.hpp"
#include "gmi/builders.hpp"
#include "gmi/model.hpp"
#include "meshgen/boxmesh.hpp"
#include "meshgen/workloads.hpp"

namespace {

using common::Vec3;
using core::Ent;
using core::Topo;

double totalArea(const core::Mesh& m) {
  double a = 0.0;
  for (Ent e : m.entities(2)) a += core::measure(m, e);
  return a;
}

/// Two triangles forming a convex quad, with a skinny diagonal: flipping
/// improves quality.
struct Quad {
  core::Mesh mesh;
  Ent a, b, c, d, diag;
};

void makeQuad(Quad& q, gmi::Model* model) {
  // Narrow kite: the long (a, b) diagonal makes two slivers; flipping to
  // the short (c, d) diagonal makes two fat triangles.
  q.a = q.mesh.createVertex({0, -1, 0});
  q.b = q.mesh.createVertex({0, 1, 0});
  q.c = q.mesh.createVertex({-0.3, 0, 0});
  q.d = q.mesh.createVertex({0.3, 0, 0});
  gmi::Entity* face = model ? model->find(2, 0) : nullptr;
  q.mesh.buildElement(Topo::Tri, std::array{q.a, q.b, q.c}, face);
  q.mesh.buildElement(Topo::Tri, std::array{q.b, q.a, q.d}, face);
  q.diag = q.mesh.findEntity(Topo::Edge, std::array{q.a, q.b});
  if (face != nullptr)
    for (int dd = 0; dd < 2; ++dd)
      for (Ent e : q.mesh.all(dd)) q.mesh.classify(e, face);
  // Boundary edges of the quad are still classified on the face here,
  // which canFlip allows; only the flip candidates matter for the tests.
}

TEST(Flip, ImprovesSkinnyPair) {
  auto model = gmi::makeRect({-1, -1, 0}, {1, 1, 0});
  Quad q;
  makeQuad(q, model.get());
  const double area = totalArea(q.mesh);
  const double before = adapt::meshQuality(q.mesh).min;
  ASSERT_TRUE(adapt::canFlip(q.mesh, q.diag));
  ASSERT_TRUE(adapt::flipEdge(q.mesh, q.diag));
  core::verify(q.mesh);
  EXPECT_EQ(q.mesh.count(2), 2u);
  EXPECT_NEAR(totalArea(q.mesh), area, 1e-12);
  EXPECT_GT(adapt::meshQuality(q.mesh).min, before);
  // The new diagonal exists, the old is gone.
  EXPECT_TRUE(q.mesh.findEntity(Topo::Edge, std::array{q.c, q.d}));
  EXPECT_FALSE(q.mesh.findEntity(Topo::Edge, std::array{q.a, q.b}));
}

TEST(Flip, RefusesNonConvexQuad) {
  auto model = gmi::makeRect({-1, -1, 0}, {1, 1, 0});
  core::Mesh m;
  gmi::Entity* face = model->find(2, 0);
  // Concave kite: d inside triangle (a, b, c)-ish arrangement.
  const Ent a = m.createVertex({0, -1, 0});
  const Ent b = m.createVertex({0, 1, 0});
  const Ent c = m.createVertex({-2, 0, 0});
  const Ent d = m.createVertex({-0.5, 0, 0});  // same side as c!
  m.buildElement(Topo::Tri, std::array{a, b, c}, face);
  m.buildElement(Topo::Tri, std::array{b, a, d}, face);
  const Ent diag = m.findEntity(Topo::Edge, std::array{a, b});
  for (int dd = 0; dd < 2; ++dd)
    for (Ent e : m.all(dd)) m.classify(e, face);
  EXPECT_FALSE(adapt::canFlip(m, diag));
  EXPECT_FALSE(adapt::flipEdge(m, diag));
  EXPECT_EQ(m.count(2), 2u);  // untouched
}

TEST(Flip, RefusesBoundaryAndGeometryEdges) {
  auto gen = meshgen::boxTris(3, 3);
  auto& m = *gen.mesh;
  for (Ent e : m.entities(1)) {
    if (m.classification(e)->dim() < 2) {
      // Domain-boundary edge: never flippable.
      EXPECT_FALSE(adapt::canFlip(m, e));
      return;
    }
  }
  FAIL() << "no boundary edge found";
}

TEST(Flip, RefusesWhenFlippedEdgeExists) {
  // Two triangles of a quad plus both "diagonal neighbours" so that the
  // flipped edge already exists: build a 1x1 quad grid split both ways is
  // impossible in a conforming mesh, so instead check the simplest guard:
  // a tetrahedral-fan arrangement where (c, d) already exists.
  auto model = gmi::makeRect({-2, -2, 0}, {2, 2, 0});
  gmi::Entity* face = model->find(2, 0);
  core::Mesh m;
  const Ent a = m.createVertex({0, -1, 0});
  const Ent b = m.createVertex({0, 1, 0});
  const Ent c = m.createVertex({-1, 0, 0});
  const Ent d = m.createVertex({1, 0, 0});
  const Ent e2 = m.createVertex({0, 3, 0});
  m.buildElement(Topo::Tri, std::array{a, b, c}, face);
  m.buildElement(Topo::Tri, std::array{b, a, d}, face);
  // Add triangles creating edge (c, d) elsewhere... (c, d) via vertex e2
  // is impossible without crossing; instead create edge (c,d) directly as
  // a standalone mesh edge bounded by a sliver triangle c-d-e2.
  m.buildElement(Topo::Tri, std::array{c, d, e2}, face);
  const Ent diag = m.findEntity(Topo::Edge, std::array{a, b});
  for (int dd = 0; dd < 2; ++dd)
    for (Ent x : m.all(dd)) m.classify(x, face);
  EXPECT_FALSE(adapt::canFlip(m, diag));
}

TEST(SwapPass, ImprovesJiggledMeshQuality) {
  auto gen = meshgen::boxTris(10, 10);
  auto& m = *gen.mesh;
  common::Rng rng(5);
  meshgen::jiggle(m, 0.3, rng);
  const auto before = adapt::meshQuality(m);
  const auto stats = adapt::swapToImproveQuality(m);
  core::verify(m);
  const auto after = adapt::meshQuality(m);
  EXPECT_GT(stats.flips, 0u);
  EXPECT_GE(after.min, before.min);
  EXPECT_GT(after.mean, before.mean);
  EXPECT_NEAR(totalArea(m), 1.0, 1e-9);
  EXPECT_EQ(m.count(2), 200u);  // flips conserve the element count
}

TEST(SwapPass, NoOpOnStructuredMesh) {
  // A fresh structured mesh with the better diagonal everywhere should see
  // few or no improving flips, and never lose quality.
  auto gen = meshgen::boxTris(4, 4);
  const auto before = adapt::meshQuality(*gen.mesh);
  adapt::swapToImproveQuality(*gen.mesh);
  EXPECT_GE(adapt::meshQuality(*gen.mesh).min, before.min);
}

}  // namespace
