#include <gtest/gtest.h>

#include <cmath>

#include "common/vec.hpp"
#include "gmi/builders.hpp"
#include "gmi/model.hpp"
#include "gmi/shapes.hpp"

namespace {

using common::Vec3;

TEST(GmiModel, CreateAndFind) {
  gmi::Model model;
  auto* v = model.create(0, 10);
  EXPECT_EQ(v->dim(), 0);
  EXPECT_EQ(v->tag(), 10);
  EXPECT_EQ(model.find(0, 10), v);
  EXPECT_EQ(model.find(0, 11), nullptr);
  EXPECT_EQ(model.find(1, 10), nullptr);
  EXPECT_THROW(model.create(0, 10), std::invalid_argument);
  EXPECT_THROW(model.create(7, 0), std::invalid_argument);
}

TEST(GmiModel, AutoTagging) {
  gmi::Model model;
  auto* a = model.create(2);
  auto* b = model.create(2);
  EXPECT_NE(a->tag(), b->tag());
  EXPECT_EQ(model.count(2), 2u);
}

TEST(GmiModel, AdjacencySymmetricAndChecked) {
  gmi::Model model;
  auto* v0 = model.create(0, 0);
  auto* v1 = model.create(0, 1);
  auto* e = model.create(1, 0);
  gmi::Model::addAdjacency(e, v0);
  gmi::Model::addAdjacency(e, v1);
  gmi::Model::addAdjacency(e, v0);  // duplicate link is a no-op
  EXPECT_EQ(e->boundary().size(), 2u);
  EXPECT_EQ(v0->bounded().size(), 1u);
  EXPECT_NO_THROW(model.check());
  auto* f = model.create(2, 0);
  EXPECT_THROW(gmi::Model::addAdjacency(f, v0), std::invalid_argument);
}

TEST(GmiModel, MultiLevelAdjacency) {
  auto model = gmi::makeUnitCube();
  auto* region = model->find(3, 0);
  // Region -> vertices: all 8 corners.
  EXPECT_EQ(region->adjacent(0).size(), 8u);
  EXPECT_EQ(region->adjacent(1).size(), 12u);
  EXPECT_EQ(region->adjacent(2).size(), 6u);
  // Vertex -> regions.
  auto* corner = model->find(0, 0);
  EXPECT_EQ(corner->adjacent(3).size(), 1u);
  EXPECT_EQ(corner->adjacent(1).size(), 3u);  // 3 edges meet at a cube corner
  EXPECT_EQ(corner->adjacent(2).size(), 3u);  // 3 faces
}

TEST(GmiBox, Counts) {
  auto model = gmi::makeUnitCube();
  EXPECT_EQ(model->count(0), 8u);
  EXPECT_EQ(model->count(1), 12u);
  EXPECT_EQ(model->count(2), 6u);
  EXPECT_EQ(model->count(3), 1u);
  EXPECT_EQ(model->dim(), 3);
}

TEST(GmiBox, EveryFaceHasFourEdges) {
  auto model = gmi::makeBox(Vec3{0, 0, 0}, Vec3{2, 3, 4});
  for (const auto& f : model->entities(2)) {
    EXPECT_EQ(f->boundary().size(), 4u);
    EXPECT_EQ(f->bounded().size(), 1u);  // the region
  }
  for (const auto& e : model->entities(1)) {
    EXPECT_EQ(e->boundary().size(), 2u);
    EXPECT_EQ(e->bounded().size(), 2u);  // two faces share each edge
  }
  for (const auto& v : model->entities(0))
    EXPECT_EQ(v->bounded().size(), 3u);  // three edges at a corner
}

TEST(GmiBox, FaceSnapProjectsOntoFace) {
  auto model = gmi::makeBox(Vec3{0, 0, 0}, Vec3{1, 1, 1});
  auto* bottom = model->find(2, 0);
  const Vec3 p = bottom->snap(Vec3{0.3, 0.4, 0.7});
  EXPECT_NEAR(p.z, 0.0, 1e-15);
  EXPECT_NEAR(p.x, 0.3, 1e-15);
  EXPECT_NEAR(p.y, 0.4, 1e-15);
  // Snapping clamps to the patch.
  const Vec3 q = bottom->snap(Vec3{2.0, -1.0, 0.5});
  EXPECT_NEAR(q.x, 1.0, 1e-15);
  EXPECT_NEAR(q.y, 0.0, 1e-15);
}

TEST(GmiBox, EdgeAndVertexSnap) {
  auto model = gmi::makeUnitCube();
  auto* e0 = model->find(1, 0);  // from (0,0,0) to (1,0,0)
  const Vec3 p = e0->snap(Vec3{0.5, 3.0, -2.0});
  EXPECT_EQ(p, Vec3(0.5, 0, 0));
  auto* v0 = model->find(0, 0);
  EXPECT_EQ(v0->snap(Vec3{9, 9, 9}), Vec3(0, 0, 0));
}

TEST(GmiRect, TwoDimensionalModel) {
  auto model = gmi::makeRect(Vec3{0, 0, 0}, Vec3{2, 1, 0});
  EXPECT_EQ(model->count(0), 4u);
  EXPECT_EQ(model->count(1), 4u);
  EXPECT_EQ(model->count(2), 1u);
  EXPECT_EQ(model->count(3), 0u);
  EXPECT_EQ(model->dim(), 2);
  auto* face = model->find(2, 0);
  EXPECT_EQ(face->adjacent(0).size(), 4u);
}

TEST(GmiCylinder, StructureAndSnap) {
  auto model = gmi::makeCylinder(Vec3{0, 0, 0}, Vec3{0, 0, 1}, 2.0, 5.0);
  EXPECT_EQ(model->count(2), 3u);
  EXPECT_EQ(model->count(1), 2u);
  EXPECT_EQ(model->count(3), 1u);
  auto* side = model->find(2, 0);
  const Vec3 p = side->snap(Vec3{1.0, 0.0, 2.5});
  EXPECT_NEAR(common::norm(Vec3{p.x, p.y, 0}), 2.0, 1e-12);
  EXPECT_NEAR(p.z, 2.5, 1e-12);
  // Above the top: clamped axially.
  const Vec3 q = side->snap(Vec3{0.0, 3.0, 9.0});
  EXPECT_NEAR(q.z, 5.0, 1e-12);
  EXPECT_NEAR(q.y, 2.0, 1e-12);
  // Normal points radially.
  const Vec3 n = side->shape()->normal(p);
  EXPECT_NEAR(n.z, 0.0, 1e-12);
  EXPECT_NEAR(common::norm(n), 1.0, 1e-12);
}

TEST(GmiSphere, SnapAndNormal) {
  auto model = gmi::makeSphere(Vec3{1, 1, 1}, 2.0);
  auto* surf = model->find(2, 0);
  const Vec3 p = surf->snap(Vec3{5, 1, 1});
  EXPECT_NEAR(common::distance(p, Vec3{1, 1, 1}), 2.0, 1e-12);
  EXPECT_EQ(p, Vec3(3, 1, 1));
  const Vec3 n = surf->shape()->normal(p);
  EXPECT_NEAR(n.x, 1.0, 1e-12);
  // Degenerate: snapping the center lands somewhere on the sphere.
  const Vec3 c = surf->snap(Vec3{1, 1, 1});
  EXPECT_NEAR(common::distance(c, Vec3{1, 1, 1}), 2.0, 1e-12);
}

TEST(GmiShapes, SegmentEval) {
  gmi::SegmentShape seg(Vec3{0, 0, 0}, Vec3{2, 0, 0});
  EXPECT_EQ(seg.eval(0.5, 0), Vec3(1, 0, 0));
  EXPECT_DOUBLE_EQ(seg.length(), 2.0);
  EXPECT_EQ(seg.snap(Vec3{-1, 5, 0}), Vec3(0, 0, 0));  // clamped to endpoint
}

TEST(GmiShapes, CylinderEvalOnSurface) {
  gmi::CylinderShape cyl(Vec3{0, 0, 0}, Vec3{0, 0, 1}, 1.5, 4.0);
  for (double u : {0.0, 1.0, 3.0}) {
    for (double v : {0.0, 0.5, 1.0}) {
      const Vec3 p = cyl.eval(u, v);
      EXPECT_NEAR(common::norm(Vec3{p.x, p.y, 0}), 1.5, 1e-12);
      EXPECT_NEAR(p.z, 4.0 * v, 1e-12);
    }
  }
}

TEST(GmiShapes, SphereEvalOnSurface) {
  gmi::SphereShape s(Vec3{0, 0, 0}, 3.0);
  for (double u : {0.0, 1.0, 2.0}) {
    for (double v : {0.1, 1.0, 3.0}) {
      EXPECT_NEAR(common::norm(s.eval(u, v)), 3.0, 1e-12);
    }
  }
}

TEST(GmiModel, TagsOnModelEntities) {
  auto model = gmi::makeUnitCube();
  auto* bc = model->tags().create<int>("bc_id");
  auto* top = model->find(2, 1);
  model->tags().setScalar<int>(bc, top, 7);
  EXPECT_EQ(model->tags().getScalar<int>(bc, top), 7);
  EXPECT_FALSE(bc->has(model->find(2, 0)));
}

}  // namespace
