/// \file test_pcu_stress.cpp
/// \brief Randomized stress test of the phased message exchange: many ranks,
/// random neighbour sets, message sizes from 0 bytes to 1 MiB, repeated
/// phases. Checks delivery completeness (every byte sent arrives at the
/// right rank with the right content) and termination (no deadlock).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "pcu/phased.hpp"
#include "pcu/runtime.hpp"
#include "pcu/trace.hpp"

namespace {

/// Mix the identifying coordinates of one message into an Rng seed so both
/// endpoints can regenerate the identical payload independently.
std::uint64_t payloadSeed(std::uint64_t seed, int phase, int src, int dst) {
  common::Rng mix(seed ^ (static_cast<std::uint64_t>(phase) << 40) ^
                  (static_cast<std::uint64_t>(src) << 20) ^
                  static_cast<std::uint64_t>(dst));
  return mix.next();
}

/// Log-uniform message size: 0 bytes or 2^k words, up to 1 MiB total.
std::size_t randomWords(common::Rng& rng) {
  const long k = rng.range(-2, 17);  // -2/-1 -> empty payload
  if (k < 0) return 0;
  return static_cast<std::size_t>(1) << k;  // up to 2^17 * 8B = 1 MiB
}

struct StressCase {
  int ranks;
  std::uint64_t seed;
};

class PcuStress : public ::testing::TestWithParam<StressCase> {};

TEST_P(PcuStress, RandomPhasedExchangeDeliversEverything) {
  const auto [ranks, seed] = GetParam();
  const int phases = 5;
  const auto n = static_cast<std::size_t>(ranks);
  // Exercise the trace buffers concurrently while the exchange runs (this
  // test is part of the TSan CI job).
  pcu::trace::clear();
  pcu::trace::setEnabled(true);

  pcu::run(ranks, [&](pcu::Comm& c) {
    const auto me = static_cast<std::size_t>(c.rank());
    common::Rng rng(seed ^ (0xabcdull + me * 0x9e3779b97f4a7c15ull));
    for (int phase = 0; phase < phases; ++phase) {
      // Random neighbour set: each rank talks to 0..ranks-1 random peers
      // (self included — loopback must work too).
      std::vector<long> sent_bytes(n * n, 0);
      std::vector<long> sent_msgs(n * n, 0);
      std::vector<std::pair<int, pcu::OutBuffer>> out;
      const long ndest = rng.range(0, ranks - 1);
      for (long d = 0; d < ndest; ++d) {
        const int dst = static_cast<int>(rng.below(n));
        common::Rng payload(payloadSeed(seed, phase, c.rank(), dst));
        const std::size_t words = randomWords(rng);
        pcu::OutBuffer b;
        b.pack<std::int32_t>(phase);
        std::vector<std::uint64_t> body(words);
        for (auto& w : body) w = payload.next();
        b.packVector(body);
        sent_bytes[me * n + static_cast<std::size_t>(dst)] +=
            static_cast<long>(b.size());
        sent_msgs[me * n + static_cast<std::size_t>(dst)] += 1;
        out.emplace_back(dst, std::move(b));
      }

      auto msgs = pcu::phasedExchange(c, std::move(out));

      // Every received payload regenerates from its (seed, phase, src, dst)
      // coordinates: right sender, right phase, uncorrupted body.
      std::vector<long> got_bytes(n, 0);
      std::vector<long> got_msgs(n, 0);
      for (auto& m : msgs) {
        ASSERT_GE(m.source, 0);
        ASSERT_LT(m.source, ranks);
        got_bytes[static_cast<std::size_t>(m.source)] +=
            static_cast<long>(m.body.size());
        got_msgs[static_cast<std::size_t>(m.source)] += 1;
        ASSERT_EQ(m.body.unpack<std::int32_t>(), phase);
        const auto body = m.body.unpackVector<std::uint64_t>();
        common::Rng payload(payloadSeed(seed, phase, m.source, c.rank()));
        for (std::size_t i = 0; i < body.size(); ++i)
          ASSERT_EQ(body[i], payload.next())
              << "corrupt word " << i << " from rank " << m.source;
      }

      // Completeness: the globally agreed traffic matrix column for this
      // rank must match what actually arrived, per source.
      const auto plus = [](long a, long b) { return a + b; };
      const auto all_bytes = c.allreduce(std::move(sent_bytes), plus);
      const auto all_msgs = c.allreduce(std::move(sent_msgs), plus);
      for (std::size_t src = 0; src < n; ++src) {
        ASSERT_EQ(all_msgs[src * n + me], got_msgs[src])
            << "message count " << src << "->" << me << " phase " << phase;
        ASSERT_EQ(all_bytes[src * n + me], got_bytes[src])
            << "byte count " << src << "->" << me << " phase " << phase;
      }
    }
  });

  // The trace recorded under full concurrency must still balance.
  pcu::trace::setEnabled(false);
  const auto merged = pcu::trace::snapshot();
  EXPECT_GT(merged.totalEvents(), 0u);
  pcu::trace::clear();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PcuStress,
    ::testing::Values(StressCase{8, 1}, StressCase{8, 20260805},
                      StressCase{16, 7}, StressCase{32, 42}),
    [](const ::testing::TestParamInfo<StressCase>& info) {
      return std::to_string(info.param.ranks) + "ranks_seed" +
             std::to_string(info.param.seed);
    });

/// Zero-byte bodies and empty outgoing lists are legal phases; the
/// exchange must terminate with nothing delivered.
TEST(PcuStress, AllRanksSilentPhaseTerminates) {
  pcu::run(16, [](pcu::Comm& c) {
    for (int phase = 0; phase < 3; ++phase) {
      auto msgs = pcu::phasedExchange(c, {});
      EXPECT_TRUE(msgs.empty());
      EXPECT_EQ(c.allreduceSum<long>(1), 16);
    }
  });
}

/// Build one deterministic phase worth of outgoing payloads: `per_peer`
/// messages to each ring neighbour at distance 1 and 2, each payload
/// regenerable from its (src, dst, index) coordinates.
std::vector<std::pair<int, pcu::OutBuffer>> ringPayloads(int rank, int ranks,
                                                         int per_peer) {
  std::vector<std::pair<int, pcu::OutBuffer>> out;
  for (int dist = 1; dist <= 2; ++dist) {
    const int dst = (rank + dist) % ranks;
    for (int i = 0; i < per_peer; ++i) {
      common::Rng payload(payloadSeed(777, i, rank, dst));
      pcu::OutBuffer b;
      b.pack<std::int32_t>(i);
      std::vector<std::uint64_t> body(8);
      for (auto& w : body) w = payload.next();
      b.packVector(body);
      out.emplace_back(dst, std::move(b));
    }
  }
  return out;
}

/// Flatten received messages into a sorted, comparable form.
std::vector<std::pair<int, std::vector<std::uint64_t>>> canonical(
    std::vector<pcu::Message> msgs) {
  std::vector<std::pair<int, std::vector<std::uint64_t>>> flat;
  flat.reserve(msgs.size());
  for (auto& m : msgs) {
    std::vector<std::uint64_t> words;
    words.push_back(static_cast<std::uint64_t>(m.body.unpack<std::int32_t>()));
    for (auto w : m.body.unpackVector<std::uint64_t>()) words.push_back(w);
    flat.emplace_back(m.source, std::move(words));
  }
  std::sort(flat.begin(), flat.end());
  return flat;
}

/// Coalesced and uncoalesced exchanges must deliver the same logical
/// messages (arbitrary order), and coalescing must cut the physical message
/// count at least in half with >= 8 payloads per peer — the headline
/// property of this transport (one segment per neighbour instead of one
/// mailbox message per payload).
TEST(PcuStress, CoalescedMatchesUncoalescedAndHalvesPhysicalMessages) {
  const int ranks = 16;
  const int per_peer = 8;
  pcu::run(ranks, [&](pcu::Comm& c) {
    c.resetStats();
    auto coalesced =
        canonical(pcu::phasedExchange(c, ringPayloads(c.rank(), ranks, per_peer),
                                      pcu::PhasedOptions{true}));
    const auto with = c.stats();
    c.resetStats();
    auto plain =
        canonical(pcu::phasedExchange(c, ringPayloads(c.rank(), ranks, per_peer),
                                      pcu::PhasedOptions{false}));
    const auto without = c.stats();
    // Same logical traffic either way, payload for payload.
    ASSERT_EQ(coalesced, plain);
    EXPECT_EQ(with.messages_sent, without.messages_sent);
    EXPECT_EQ(with.bytes_sent, without.bytes_sent);
    // >= 2x fewer physical messages (16 payloads collapse into 2 segments;
    // the remainder is the shared termination collective).
    EXPECT_LE(with.physical_messages * 2, without.physical_messages)
        << "coalesced " << with.physical_messages << " vs uncoalesced "
        << without.physical_messages;
  });
}

/// Phase termination must cost O(neighbours), not O(P): with a 2-neighbour
/// ring at 32 ranks, the non-payload (collective) bytes a rank sends in one
/// phase must stay below the size of a single size-P long vector — the old
/// allreduce shipped several of those per rank.
TEST(PcuStress, TerminationTrafficScalesWithNeighboursNotRanks) {
  const int ranks = 32;
  pcu::run(ranks, [&](pcu::Comm& c) {
    auto out = ringPayloads(c.rank(), ranks, 1);
    std::uint64_t payload_bytes = 0;
    for (const auto& [dst, buf] : out) payload_bytes += buf.size();
    c.resetStats();
    auto msgs = pcu::phasedExchange(c, std::move(out));
    ASSERT_EQ(msgs.size(), 2u);
    const auto overhead = c.stats().bytes_sent - payload_bytes;
    EXPECT_LT(overhead, static_cast<std::uint64_t>(ranks) * sizeof(long))
        << "termination overhead " << overhead
        << " bytes; a size-P allreduce would send at least "
        << ranks * sizeof(long) << " per message";
  });
}

}  // namespace
