#include <gtest/gtest.h>

#include "adapt/sizefield.hpp"
#include "core/measure.hpp"
#include "core/verify.hpp"
#include "dist/padapt.hpp"
#include "dist/partedmesh.hpp"
#include "field/field.hpp"
#include "meshgen/boxmesh.hpp"
#include "meshgen/workloads.hpp"
#include "parma/metrics.hpp"
#include "part/partition.hpp"

namespace {

using common::Vec3;
using core::Ent;
using dist::PartId;

std::unique_ptr<dist::PartedMesh> parted(meshgen::Generated& gen, int nparts) {
  const auto assign =
      part::partition(*gen.mesh, nparts, part::Method::GraphRB);
  return dist::PartedMesh::distribute(
      *gen.mesh, gen.model.get(), assign,
      dist::PartMap(nparts, pcu::Machine::flat(nparts)));
}

double globalVolume(dist::PartedMesh& pm) {
  double v = 0.0;
  for (PartId p = 0; p < pm.parts(); ++p) {
    const auto& part = pm.part(p);
    for (Ent e : part.elements()) v += core::measure(part.mesh(), e);
  }
  return v;
}

class PartedRefineParts : public ::testing::TestWithParam<int> {};

TEST_P(PartedRefineParts, UniformRefinementVerifies) {
  const int nparts = GetParam();
  auto gen = meshgen::boxTets(3, 3, 3);
  auto pm = parted(gen, nparts);
  const double vol = globalVolume(*pm);
  const std::size_t before = pm->globalCount(3);
  adapt::UniformSize size(0.22);
  const auto stats = dist::refineParted(*pm, size, {.max_passes = 10});
  EXPECT_GT(stats.splits, 0u);
  pm->verify();
  for (PartId p = 0; p < nparts; ++p)
    core::verify(pm->part(p).mesh(), {.check_volumes = true});
  EXPECT_GT(pm->globalCount(3), before);
  EXPECT_NEAR(globalVolume(*pm), vol, 1e-9);
  // Every edge now conforms to the size criterion on every part.
  for (PartId p = 0; p < nparts; ++p) {
    const auto& mesh = pm->part(p).mesh();
    for (Ent e : mesh.entities(1))
      EXPECT_LE(core::measure(mesh, e), 1.5 * 0.22 + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(PartCounts, PartedRefineParts,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(PartedRefine, SimilarResolutionToSerial) {
  // The split order is a global deterministic order over (owner, handle),
  // which differs between partitions — so diagonal choices and follow-up
  // passes may differ — but the achieved resolution must be equivalent:
  // element counts within a band, identical conformance to the criterion.
  adapt::UniformSize size(0.3);
  auto gen1 = meshgen::boxTets(2, 2, 2);
  auto pm1 = parted(gen1, 1);
  dist::refineParted(*pm1, size, {.max_passes = 8});
  auto gen4 = meshgen::boxTets(2, 2, 2);
  auto pm4 = parted(gen4, 4);
  dist::refineParted(*pm4, size, {.max_passes = 8});
  const double n1 = static_cast<double>(pm1->globalCount(3));
  const double n4 = static_cast<double>(pm4->globalCount(3));
  EXPECT_NEAR(n4 / n1, 1.0, 0.15);
  EXPECT_NEAR(globalVolume(*pm4), globalVolume(*pm1), 1e-9);
}

TEST(PartedRefine, LocalizedFrontAcrossBoundary) {
  // Refine a band that deliberately crosses part boundaries.
  auto gen = meshgen::boxTets(4, 4, 4);
  auto pm = parted(gen, 4);
  adapt::ShockFrontSize size({0.5, 0.5, 0.5}, {1, 0, 0}, 0.15, 0.1, 0.6);
  const auto stats = dist::refineParted(*pm, size, {.max_passes = 6});
  EXPECT_GT(stats.splits, 0u);
  pm->verify();
  for (PartId p = 0; p < pm->parts(); ++p)
    core::verify(pm->part(p).mesh(), {.check_volumes = true});
  EXPECT_NEAR(globalVolume(*pm), 1.0, 1e-9);
}

TEST(PartedRefine, CurvedBoundarySnapsConsistently) {
  auto gen = meshgen::vessel({.circumferential = 4, .axial = 8, .bulge = 0.0,
                              .bend = 0.0});
  auto pm = parted(gen, 3);
  adapt::UniformSize size(0.45);
  dist::refineParted(*pm, size, {.max_passes = 6});
  pm->verify();
  // Wall-classified vertices sit on the radius-1 cylinder on every part;
  // shared copies agree bitwise (verify() already checked coordinates).
  for (PartId p = 0; p < pm->parts(); ++p) {
    const auto& mesh = pm->part(p).mesh();
    for (Ent v : mesh.entities(0)) {
      auto* cls = mesh.classification(v);
      if (cls->dim() == 2 && cls->tag() == 0) {
        const Vec3 x = mesh.point(v);
        EXPECT_NEAR(std::hypot(x.x, x.y), 1.0, 1e-9);
      }
    }
  }
}

TEST(PartedRefine, SolutionTransferAcrossParts) {
  auto gen = meshgen::boxTets(3, 3, 3);
  auto pm = parted(gen, 3);
  auto lin = [](const Vec3& x) { return x.x - 2.0 * x.y + 0.25 * x.z; };
  for (PartId p = 0; p < pm->parts(); ++p) {
    field::Field f(pm->part(p).mesh(), "T", field::ValueType::Scalar,
                   field::Location::Vertex);
    f.assign(lin);
  }
  adapt::LinearTransfer transfer;
  dist::refineParted(*pm, adapt::UniformSize(0.25),
                     {.max_passes = 8, .transfer = &transfer});
  pm->verify();
  for (PartId p = 0; p < pm->parts(); ++p) {
    auto& mesh = pm->part(p).mesh();
    field::Field f(mesh, "T", field::ValueType::Scalar,
                   field::Location::Vertex);
    for (Ent v : mesh.entities(0)) {
      ASSERT_TRUE(f.hasValue(v));
      EXPECT_NEAR(f.getScalar(v), lin(mesh.point(v)), 1e-9);
    }
  }
}

TEST(PartedRefine, TwoDimensionalMesh) {
  auto gen = meshgen::boxTris(6, 6);
  auto pm = parted(gen, 3);
  const auto stats =
      dist::refineParted(*pm, adapt::UniformSize(0.08), {.max_passes = 8});
  EXPECT_GT(stats.splits, 0u);
  pm->verify();
  double area = 0.0;
  for (PartId p = 0; p < pm->parts(); ++p)
    for (Ent e : pm->part(p).elements())
      area += core::measure(pm->part(p).mesh(), e);
  EXPECT_NEAR(area, 1.0, 1e-12);
}

TEST(PartedRefine, NoOpWhenFineEnough) {
  auto gen = meshgen::boxTets(3, 3, 3);
  auto pm = parted(gen, 2);
  const auto stats =
      dist::refineParted(*pm, adapt::UniformSize(5.0), {.max_passes = 4});
  EXPECT_EQ(stats.splits, 0u);
  EXPECT_EQ(stats.passes, 0);
}

TEST(PartedCoarsen, UndoesRefinementInteriorOnly) {
  auto gen = meshgen::boxTets(3, 3, 3);
  auto pm = parted(gen, 3);
  dist::refineParted(*pm, adapt::UniformSize(0.2), {.max_passes = 8});
  const std::size_t refined = pm->globalCount(3);
  const auto stats = dist::coarsenParted(*pm, adapt::UniformSize(1.0),
                                         {.ratio = 0.9, .max_passes = 10});
  EXPECT_GT(stats.collapses, 0u);
  pm->verify();
  for (PartId p = 0; p < pm->parts(); ++p)
    core::verify(pm->part(p).mesh(), {.check_volumes = true});
  EXPECT_LT(pm->globalCount(3), refined);
  EXPECT_NEAR(globalVolume(*pm), 1.0, 1e-9);
}

TEST(PartedCoarsen, BoundaryUntouched) {
  auto gen = meshgen::boxTets(3, 3, 3);
  auto pm = parted(gen, 4);
  dist::refineParted(*pm, adapt::UniformSize(0.25), {.max_passes = 6});
  // Snapshot boundary vertex coordinates per part.
  std::vector<std::vector<common::Vec3>> before(4);
  for (PartId p = 0; p < 4; ++p)
    for (const auto& [e, r] : pm->part(p).remotes())
      if (e.topo() == core::Topo::Vertex)
        before[static_cast<std::size_t>(p)].push_back(
            pm->part(p).mesh().point(e));
  dist::coarsenParted(*pm, adapt::UniformSize(1.0),
                      {.ratio = 0.9, .max_passes = 6});
  pm->verify();
  for (PartId p = 0; p < 4; ++p) {
    std::vector<common::Vec3> after;
    for (const auto& [e, r] : pm->part(p).remotes())
      if (e.topo() == core::Topo::Vertex)
        after.push_back(pm->part(p).mesh().point(e));
    EXPECT_EQ(after.size(), before[static_cast<std::size_t>(p)].size());
  }
}

TEST(PartedRefine, RefusesGhostedMesh) {
  auto gen = meshgen::boxTets(2, 2, 2);
  auto pm = parted(gen, 2);
  pm->ghostLayers(1);
  EXPECT_THROW(
      dist::refineParted(*pm, adapt::UniformSize(0.2), {.max_passes = 2}),
      std::logic_error);
}

}  // namespace
