#include <gtest/gtest.h>

#include <cstdio>

#include "core/measure.hpp"
#include "core/verify.hpp"
#include "core/vtk.hpp"
#include "meshgen/boxmesh.hpp"
#include "meshgen/workloads.hpp"

namespace {

using common::Vec3;
using core::Ent;

/// Grid sizes for property sweeps.
struct GridCase {
  int nx, ny, nz;
};

class BoxTetGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(BoxTetGrid, CountsAndInvariants) {
  const auto [nx, ny, nz] = GetParam();
  auto gen = meshgen::boxTets(nx, ny, nz);
  auto& m = *gen.mesh;
  const std::size_t nv = static_cast<std::size_t>(nx + 1) * (ny + 1) * (nz + 1);
  EXPECT_EQ(m.count(0), nv);
  EXPECT_EQ(m.count(3), static_cast<std::size_t>(6) * nx * ny * nz);
  // Euler characteristic of a 3-ball: V - E + F - R = 1.
  const long euler = static_cast<long>(m.count(0)) - static_cast<long>(m.count(1)) +
                     static_cast<long>(m.count(2)) - static_cast<long>(m.count(3));
  EXPECT_EQ(euler, 1);
  core::verify(m, {.check_volumes = true});
}

TEST_P(BoxTetGrid, VolumesSumToBox) {
  const auto [nx, ny, nz] = GetParam();
  auto gen = meshgen::boxTets(nx, ny, nz, {0, 0, 0}, {2, 3, 1});
  double vol = 0.0;
  for (Ent e : gen.mesh->entities(3)) vol += core::measure(*gen.mesh, e);
  EXPECT_NEAR(vol, 6.0, 1e-9);
}

TEST_P(BoxTetGrid, BoundaryClassification) {
  const auto [nx, ny, nz] = GetParam();
  auto gen = meshgen::boxTets(nx, ny, nz);
  auto& m = *gen.mesh;
  // Count boundary faces: 2*(2*nx*ny + 2*ny*nz + 2*nx*nz) triangles
  // (each quad face of the surface grid is split into 2 triangles).
  std::size_t surface_tris = 0;
  for (Ent f : m.entities(2)) {
    ASSERT_NE(m.classification(f), nullptr);
    if (m.classification(f)->dim() == 2) {
      ++surface_tris;
      // A face classified on the model boundary bounds exactly one region.
      EXPECT_EQ(m.up(f).size(), 1u);
    } else {
      EXPECT_EQ(m.classification(f)->dim(), 3);
      EXPECT_EQ(m.up(f).size(), 2u);
    }
  }
  EXPECT_EQ(surface_tris,
            4u * static_cast<std::size_t>(nx * ny + ny * nz + nx * nz));
  // The 8 mesh corners classify on model vertices.
  std::size_t corner_verts = 0;
  for (Ent v : m.entities(0))
    if (m.classification(v)->dim() == 0) ++corner_verts;
  EXPECT_EQ(corner_verts, 8u);
}

INSTANTIATE_TEST_SUITE_P(Grids, BoxTetGrid,
                         ::testing::Values(GridCase{1, 1, 1}, GridCase{2, 2, 2},
                                           GridCase{3, 2, 1},
                                           GridCase{4, 4, 4}),
                         [](const auto& info) {
                           return std::to_string(info.param.nx) + "x" +
                                  std::to_string(info.param.ny) + "x" +
                                  std::to_string(info.param.nz);
                         });

TEST(BoxHexes, CountsAndVolume) {
  auto gen = meshgen::boxHexes(3, 4, 5);
  auto& m = *gen.mesh;
  EXPECT_EQ(m.count(3), 60u);
  EXPECT_EQ(m.count(0), 4u * 5 * 6);
  EXPECT_EQ(m.countTopo(core::Topo::Hex), 60u);
  double vol = 0.0;
  for (Ent e : m.entities(3)) vol += core::measure(m, e);
  EXPECT_NEAR(vol, 1.0, 1e-12);
  core::verify(m, {.check_volumes = true});
}

TEST(BoxTris, CountsEulerAndArea) {
  auto gen = meshgen::boxTris(5, 7);
  auto& m = *gen.mesh;
  EXPECT_EQ(m.dim(), 2);
  EXPECT_EQ(m.count(2), 70u);
  EXPECT_EQ(m.count(0), 48u);
  // Euler characteristic of a disk: V - E + F = 1.
  const long euler = static_cast<long>(m.count(0)) - static_cast<long>(m.count(1)) +
                     static_cast<long>(m.count(2));
  EXPECT_EQ(euler, 1);
  double area = 0.0;
  for (Ent f : m.entities(2)) area += core::measure(m, f);
  EXPECT_NEAR(area, 1.0, 1e-12);
  core::verify(m);
}

TEST(BoxQuads, CountsAndClassification) {
  auto gen = meshgen::boxQuads(4, 4);
  auto& m = *gen.mesh;
  EXPECT_EQ(m.count(2), 16u);
  // Boundary edges classify on model edges; 4 corners on model vertices.
  std::size_t boundary_edges = 0;
  for (Ent e : m.entities(1))
    if (m.classification(e)->dim() == 1) ++boundary_edges;
  EXPECT_EQ(boundary_edges, 16u);
  core::verify(m);
}

TEST(Vessel, BuildsAndVerifies) {
  meshgen::VesselSpec spec;
  spec.circumferential = 4;
  spec.axial = 10;
  auto gen = meshgen::vessel(spec);
  auto& m = *gen.mesh;
  EXPECT_EQ(m.count(3), 6u * 4 * 4 * 10);
  core::verify(m, {.check_volumes = true});
  // Wall vertices classify on the side face or rims.
  std::size_t wall = 0;
  for (Ent v : m.entities(0)) {
    auto* c = m.classification(v);
    ASSERT_NE(c, nullptr);
    if (c->dim() < 3) ++wall;
  }
  EXPECT_GT(wall, 0u);
}

TEST(Vessel, BulgeWidensMidsection) {
  meshgen::VesselSpec spec;
  spec.circumferential = 4;
  spec.axial = 20;
  spec.bend = 0.0;  // isolate the bulge
  auto gen = meshgen::vessel(spec);
  // Max |y| near the bulge center exceeds max |y| near the inlet.
  double y_mid = 0.0, y_inlet = 0.0;
  for (Ent v : gen.mesh->entities(0)) {
    const Vec3 p = gen.mesh->point(v);
    const double t = p.z / spec.length;
    if (std::fabs(t - spec.bulge_center) < 0.05)
      y_mid = std::max(y_mid, std::fabs(p.y));
    if (t < 0.05) y_inlet = std::max(y_inlet, std::fabs(p.y));
  }
  EXPECT_GT(y_mid, 1.5 * y_inlet);
}

TEST(WingBox, Proportions) {
  auto gen = meshgen::wingBox(2);
  EXPECT_EQ(gen.mesh->count(3), 6u * 8 * 4 * 2);
  const auto box = core::bounds(*gen.mesh);
  EXPECT_EQ(box.extent(), Vec3(4, 2, 1));
}

TEST(Jiggle, KeepsVolumesPositiveAndBoundaryFixed) {
  auto gen = meshgen::boxTets(4, 4, 4);
  auto& m = *gen.mesh;
  std::vector<Vec3> boundary_before;
  for (Ent v : m.entities(0))
    if (m.classification(v)->dim() < 3) boundary_before.push_back(m.point(v));
  common::Rng rng(123);
  meshgen::jiggle(m, 0.15, rng);
  std::size_t i = 0;
  for (Ent v : m.entities(0)) {
    if (m.classification(v)->dim() < 3) {
      EXPECT_EQ(m.point(v), boundary_before[i++]);
    }
  }
  core::verify(m, {.check_volumes = true});
}

TEST(Jiggle, DeterministicForSeed) {
  auto a = meshgen::boxTets(3, 3, 3);
  auto b = meshgen::boxTets(3, 3, 3);
  common::Rng ra(9), rb(9);
  meshgen::jiggle(*a.mesh, 0.1, ra);
  meshgen::jiggle(*b.mesh, 0.1, rb);
  auto ita = a.mesh->entities(0).begin();
  for (Ent vb : b.mesh->entities(0)) {
    EXPECT_EQ(a.mesh->point(*ita), b.mesh->point(vb));
    ++ita;
  }
}

TEST(Vtk, WritesFile) {
  auto gen = meshgen::boxTets(2, 2, 2);
  core::CellScalar part_id{"part", {}};
  int i = 0;
  for (Ent e : gen.mesh->entities(3)) part_id.values[e] = i++ % 4;
  const std::string path = testing::TempDir() + "/pumi_repro_test.vtk";
  core::writeVtk(*gen.mesh, path, {part_id});
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char header[64] = {0};
  ASSERT_NE(std::fgets(header, sizeof header, f), nullptr);
  EXPECT_STREQ(header, "# vtk DataFile Version 3.0\n");
  std::fclose(f);
  std::remove(path.c_str());
}

}  // namespace
