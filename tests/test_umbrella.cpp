// Compile-only check that the umbrella header is self-contained, plus a
// smoke test touching one symbol from every module through it.
#include "pumi.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, EveryModuleReachable) {
  common::Rng rng(1);
  (void)rng.next();
  pcu::Machine machine(2, 4);
  EXPECT_EQ(machine.totalCores(), 8);
  auto model = gmi::makeUnitCube();
  EXPECT_EQ(model->count(2), 6u);
  auto gen = meshgen::boxTets(2, 2, 2);
  EXPECT_EQ(gen.mesh->count(3), 48u);
  core::verify(*gen.mesh);
  const auto assign = part::partition(*gen.mesh, 2, part::Method::RCB);
  auto pm = dist::PartedMesh::distribute(*gen.mesh, gen.model.get(), assign,
                                         dist::PartMap(2, machine));
  pm->verify();
  field::Field f(pm->part(0).mesh(), "x", field::ValueType::Scalar,
                 field::Location::Vertex);
  f.fillScalar(1.0);
  EXPECT_GT(adapt::meshQuality(*gen.mesh).min, 0.0);
  EXPECT_LE(parma::entityBalance(*pm, 3).imbalance, 2.0);
  const auto report = solver::solvePoisson(
      *pm, [](const common::Vec3&) { return 0.0; },
      [](const common::Vec3&) { return 1.0; });
  EXPECT_TRUE(report.converged);
}

}  // namespace
