#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "meshgen/boxmesh.hpp"
#include "meshgen/workloads.hpp"
#include "part/reorder.hpp"

namespace {

using core::Ent;

/// Bandwidth of the identity (pool) ordering, as the baseline.
part::Ordering identityOrdering(const core::Mesh& mesh) {
  part::Ordering out;
  for (Ent v : mesh.entities(0)) {
    out.rank.emplace(v, static_cast<int>(out.order.size()));
    out.order.push_back(v);
  }
  return out;
}

TEST(Reorder, PermutationIsComplete) {
  auto gen = meshgen::boxTets(4, 4, 4);
  const auto ord = part::reorderVertices(*gen.mesh);
  EXPECT_EQ(ord.order.size(), gen.mesh->count(0));
  EXPECT_EQ(ord.rank.size(), gen.mesh->count(0));
  std::vector<char> seen(ord.order.size(), 0);
  for (const auto& [e, r] : ord.rank) {
    (void)e;
    ASSERT_GE(r, 0);
    ASSERT_LT(static_cast<std::size_t>(r), seen.size());
    EXPECT_FALSE(seen[static_cast<std::size_t>(r)]);
    seen[static_cast<std::size_t>(r)] = 1;
  }
}

TEST(Reorder, ReducesBandwidthOnElongatedMesh) {
  // A long thin mesh in pool order (created z-major) has poor bandwidth
  // along its length; RCM should shrink it substantially... note the pool
  // order here is x-fastest which is already good for an x-elongated box,
  // so elongate along z instead (created last).
  auto gen = meshgen::boxTets(4, 4, 24, {0, 0, 0}, {1, 1, 6});
  // The generation order is already structured-optimal, so the meaningful
  // baseline is a scrambled ordering (what an adapted/migrated mesh looks
  // like): RCM must get back within a few cross-sections.
  const auto rcm = part::reorderVertices(*gen.mesh);
  const auto bw_rcm = part::bandwidth(*gen.mesh, rcm);
  auto scrambled = identityOrdering(*gen.mesh);
  common::Rng rng(17);
  for (std::size_t i = scrambled.order.size(); i > 1; --i)
    std::swap(scrambled.order[i - 1], scrambled.order[rng.below(i)]);
  scrambled.rank.clear();
  for (std::size_t i = 0; i < scrambled.order.size(); ++i)
    scrambled.rank[scrambled.order[i]] = static_cast<int>(i);
  const auto bw_scrambled = part::bandwidth(*gen.mesh, scrambled);
  EXPECT_LT(bw_rcm, bw_scrambled / 4);
  // A cross-section has 25 vertices; a good ordering keeps the bandwidth
  // within a few cross-sections.
  EXPECT_LE(bw_rcm, 3u * 25u);
}

TEST(Reorder, ElementsFollowVertices) {
  auto gen = meshgen::boxTets(3, 3, 3);
  const auto verts = part::reorderVertices(*gen.mesh);
  const auto elems = part::reorderElements(*gen.mesh, verts);
  EXPECT_EQ(elems.order.size(), gen.mesh->count(3));
  // Element order is monotone in min vertex rank.
  int prev = -1;
  for (Ent e : elems.order) {
    int best = static_cast<int>(verts.order.size());
    for (Ent v : gen.mesh->verts(e)) best = std::min(best, verts.rank.at(v));
    EXPECT_GE(best, prev);
    prev = best;
  }
}

TEST(Reorder, VesselMesh) {
  auto gen = meshgen::vessel({.circumferential = 4, .axial = 16});
  const auto rcm = part::reorderVertices(*gen.mesh);
  EXPECT_EQ(rcm.order.size(), gen.mesh->count(0));
  // Tube cross-section is 25 vertices; bandwidth should be near that.
  EXPECT_LE(part::bandwidth(*gen.mesh, rcm), 3u * 25u);
}

}  // namespace
