#include <gtest/gtest.h>

#include "adapt/metric.hpp"
#include "core/measure.hpp"
#include "core/verify.hpp"
#include "meshgen/boxmesh.hpp"

namespace {

using common::Mat3;
using common::Vec3;
using core::Ent;

TEST(Metric, IsoMetricMatchesSizeField) {
  adapt::UniformSize size(0.25);
  adapt::IsoMetric metric(size);
  const Mat3 m = metric.metric({0, 0, 0});
  EXPECT_NEAR(m(0, 0), 16.0, 1e-12);
  EXPECT_NEAR(m(1, 1), 16.0, 1e-12);
  EXPECT_NEAR(m(0, 1), 0.0, 1e-12);
}

TEST(Metric, StretchMetricDirectionalLengths) {
  // Unit vector in x measured with (h_along=0.1, h_across=1): length 10.
  const Mat3 m = adapt::stretchMetric({1, 0, 0}, 0.1, 1.0);
  const Vec3 ex{1, 0, 0}, ey{0, 1, 0};
  EXPECT_NEAR(std::sqrt(common::dot(ex, m * ex)), 10.0, 1e-9);
  EXPECT_NEAR(std::sqrt(common::dot(ey, m * ey)), 1.0, 1e-9);
  // Oblique direction.
  const Mat3 mo = adapt::stretchMetric({1, 1, 0}, 0.5, 2.0);
  const Vec3 d = common::normalized(Vec3{1, 1, 0});
  EXPECT_NEAR(std::sqrt(common::dot(d, mo * d)), 2.0, 1e-9);
}

TEST(Metric, FromHessianClampsAndScales) {
  // Hessian diag(100, 1, 0): err 1.0 -> h = 0.1, 1.0, h_max.
  Mat3 h = Mat3::zero();
  h(0, 0) = 100.0;
  h(1, 1) = 1.0;
  const Mat3 m = adapt::metricFromHessian(h, 1.0, 0.01, 2.0);
  EXPECT_NEAR(std::sqrt(1.0 / m(0, 0)), 0.1, 1e-9);
  EXPECT_NEAR(std::sqrt(1.0 / m(1, 1)), 1.0, 1e-9);
  EXPECT_NEAR(std::sqrt(1.0 / m(2, 2)), 2.0, 1e-9);  // clamped to h_max
  // Negative curvature uses |lambda|.
  Mat3 hn = Mat3::zero();
  hn(0, 0) = -100.0;
  const Mat3 mn = adapt::metricFromHessian(hn, 1.0, 0.01, 2.0);
  EXPECT_NEAR(std::sqrt(1.0 / mn(0, 0)), 0.1, 1e-9);
}

TEST(Metric, EdgeLengthInMetric) {
  auto gen = meshgen::boxTets(1, 1, 1);
  adapt::AnalyticMetric metric([](const Vec3&) {
    return adapt::stretchMetric({1, 0, 0}, 0.5, 1.0);
  });
  // Find the x-aligned edge from (0,0,0) to (1,0,0): metric length 2.
  for (Ent e : gen.mesh->entities(1)) {
    const auto vs = gen.mesh->verts(e);
    const Vec3 a = gen.mesh->point(vs[0]);
    const Vec3 b = gen.mesh->point(vs[1]);
    if (std::fabs(std::fabs(b.x - a.x) - 1.0) < 1e-12 && a.y == b.y &&
        a.z == b.z) {
      EXPECT_NEAR(adapt::metricEdgeLength(*gen.mesh, e, metric), 2.0, 1e-9);
      return;
    }
  }
  FAIL() << "no x-aligned unit edge found";
}

TEST(MetricRefine, AnisotropicRefinementConcentratesAlongDirection) {
  auto gen = meshgen::boxTets(4, 4, 4);
  auto& m = *gen.mesh;
  // Want fine resolution across x (short x-extents), coarse elsewhere.
  adapt::AnalyticMetric metric([](const Vec3&) {
    return adapt::stretchMetric({1, 0, 0}, 0.08, 0.5);
  });
  const auto stats = adapt::refineMetric(m, metric, {.max_passes = 8});
  EXPECT_GT(stats.splits, 0u);
  core::verify(m, {.check_volumes = true});
  // All edges now conform in metric space.
  for (Ent e : m.entities(1))
    EXPECT_LE(adapt::metricEdgeLength(m, e, metric), 1.5 + 1e-9);
  // Mean edge x-extent is much smaller than mean y-extent.
  double sx = 0.0, sy = 0.0;
  std::size_t n = 0;
  for (Ent e : m.entities(1)) {
    const auto vs = m.verts(e);
    const Vec3 d = m.point(vs[1]) - m.point(vs[0]);
    sx += std::fabs(d.x);
    sy += std::fabs(d.y);
    ++n;
  }
  // Split-only refinement (no edge swaps) cannot realize the full
  // requested 6:1 anisotropy — diagonal splits shorten every axis — but
  // the directional bias must be clearly present.
  EXPECT_LT(sx / n, 0.7 * (sy / n));
}

TEST(MetricRefine, IsoMetricAgreesWithSizeRefine) {
  adapt::UniformSize size(0.3);
  auto a = meshgen::boxTets(2, 2, 2);
  auto b = meshgen::boxTets(2, 2, 2);
  adapt::refine(*a.mesh, size, {.max_passes = 8});
  adapt::IsoMetric metric(size);
  adapt::refineMetric(*b.mesh, metric, {.max_passes = 8});
  // Criterion len/h > 1.5 is identical to metric length > 1.5.
  for (int d = 0; d <= 3; ++d)
    EXPECT_EQ(b.mesh->count(d), a.mesh->count(d)) << "dim " << d;
}

}  // namespace
