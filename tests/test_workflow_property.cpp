#include <gtest/gtest.h>

#include "adapt/quality.hpp"
#include "adapt/refine.hpp"
#include "adapt/sizefield.hpp"
#include "common/rng.hpp"
#include "core/measure.hpp"
#include "core/meshio.hpp"
#include "core/verify.hpp"
#include <set>

#include "dist/numbering.hpp"
#include "dist/padapt.hpp"
#include "dist/partedmesh.hpp"
#include "dist/ptnmodel.hpp"
#include "meshgen/boxmesh.hpp"
#include "meshgen/workloads.hpp"
#include "parma/balance.hpp"
#include "parma/metrics.hpp"
#include "part/partition.hpp"

namespace {

using core::Ent;
using dist::PartId;

/// Whole-workflow property tests: interleave every distributed operation
/// in randomized orders and check the full invariant suite after each.

double globalMeasure(dist::PartedMesh& pm) {
  double v = 0.0;
  for (PartId p = 0; p < pm.parts(); ++p)
    for (Ent e : pm.part(p).elements())
      v += core::measure(pm.part(p).mesh(), e);
  return v;
}

struct FuzzCase {
  int dim;  // 2 or 3
  std::uint64_t seed;
};

class OpFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(OpFuzz, InterleavedOperationsKeepInvariants) {
  const auto [dim, seed] = GetParam();
  common::Rng rng(seed);
  meshgen::Generated gen =
      dim == 3 ? meshgen::boxTets(3, 3, 3) : meshgen::boxTris(8, 8);
  const int nparts = 4;
  const auto assign =
      part::partition(*gen.mesh, nparts, part::Method::GraphRB);
  auto pm = dist::PartedMesh::distribute(
      *gen.mesh, gen.model.get(), assign,
      dist::PartMap(nparts, pcu::Machine(2, 2)));
  const double volume = globalMeasure(*pm);

  for (int step = 0; step < 10; ++step) {
    switch (rng.below(5)) {
      case 0: {  // random migration burst
        dist::MigrationPlan plan(static_cast<std::size_t>(pm->parts()));
        for (PartId p = 0; p < pm->parts(); ++p)
          for (Ent e : pm->part(p).elements())
            if (rng.uniform() < 0.1)
              plan[static_cast<std::size_t>(p)][e] =
                  static_cast<PartId>(rng.below(static_cast<std::uint64_t>(pm->parts())));
        pm->migrate(plan);
        break;
      }
      case 1: {  // ghost + tag sync + unghost
        pm->ghostLayers(1);
        pm->verify();
        pm->syncGhostTags();
        pm->unghost();
        break;
      }
      case 2: {  // a little distributed refinement
        adapt::UniformSize size(dim == 3 ? 0.45 : 0.1);
        dist::refineParted(*pm, size, {.max_passes = 1});
        break;
      }
      case 3: {  // rebalance
        parma::balance(*pm, dim == 3 ? "Rgn" : "Face",
                       {.tolerance = 0.10, .max_rounds = 1});
        break;
      }
      case 4: {  // renumber vertices (exercises shared-tag sync)
        dist::numberEntities(*pm, 0);
        break;
      }
    }
    pm->verify();
    for (PartId p = 0; p < pm->parts(); ++p)
      core::verify(pm->part(p).mesh());
    EXPECT_NEAR(globalMeasure(*pm), volume, 1e-9) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, OpFuzz,
                         ::testing::Values(FuzzCase{3, 11}, FuzzCase{3, 22},
                                           FuzzCase{3, 33}, FuzzCase{2, 44},
                                           FuzzCase{2, 55}),
                         [](const auto& info) {
                           return (info.param.dim == 3 ? "tets_" : "tris_") +
                                  std::to_string(info.param.seed);
                         });

TEST(WorkflowProperty, PtnModelConsistentAfterAdaptAndMigrate) {
  auto gen = meshgen::boxTets(3, 3, 3);
  const auto assign = part::partition(*gen.mesh, 4, part::Method::RCB);
  auto pm = dist::PartedMesh::distribute(
      *gen.mesh, gen.model.get(), assign,
      dist::PartMap(4, pcu::Machine::flat(4)));
  dist::refineParted(*pm, adapt::UniformSize(0.35), {.max_passes = 4});
  dist::MigrationPlan plan(4);
  int i = 0;
  for (Ent e : pm->part(0).elements())
    if (i++ % 3 == 0) plan[0][e] = 1;
  pm->migrate(plan);
  pm->verify();
  // Partition model: every mesh entity's residence matches its partition
  // entity's residence.
  dist::PtnModel ptn(*pm);
  for (PartId p = 0; p < pm->parts(); ++p) {
    const auto& part = pm->part(p);
    for (int d = 0; d <= 3; ++d)
      for (Ent e : part.mesh().entities(d))
        EXPECT_EQ(ptn.classification(p, e).residence, part.residence(e));
  }
}

TEST(WorkflowProperty, MeshIoRoundTripsAdaptedMesh) {
  // An adapted (no longer structured) mesh survives serialization.
  auto gen = meshgen::boxTets(2, 2, 2);
  adapt::ShockFrontSize size({0.5, 0.5, 0.5}, {1, 1, 0}, 0.2, 0.12, 0.8);
  adapt::refine(*gen.mesh, size, {.max_passes = 5});
  core::verify(*gen.mesh, {.check_volumes = true});
  const std::string path = testing::TempDir() + "/adapted.pumi";
  core::writeMesh(*gen.mesh, path);
  auto back = core::readMesh(path, gen.model.get());
  std::remove(path.c_str());
  core::verify(*back, {.check_volumes = true});
  for (int d = 0; d <= 3; ++d)
    EXPECT_EQ(back->count(d), gen.mesh->count(d));
  double va = 0.0, vb = 0.0;
  for (Ent e : gen.mesh->entities(3)) va += core::measure(*gen.mesh, e);
  for (Ent e : back->entities(3)) vb += core::measure(*back, e);
  EXPECT_NEAR(va, vb, 1e-12);
}

TEST(WorkflowProperty, SmoothPartedImprovesQualityKeepsBoundary) {
  auto gen = meshgen::boxTets(4, 4, 4);
  common::Rng rng(21);
  meshgen::jiggle(*gen.mesh, 0.25, rng);
  const auto assign = part::partition(*gen.mesh, 4, part::Method::GraphRB);
  auto pm = dist::PartedMesh::distribute(
      *gen.mesh, gen.model.get(), assign,
      dist::PartMap(4, pcu::Machine::flat(4)));
  double worst_before = 1.0, mean_before = 0.0;
  int n = 0;
  for (PartId p = 0; p < 4; ++p) {
    const auto q = adapt::meshQuality(pm->part(p).mesh());
    worst_before = std::min(worst_before, q.min);
    mean_before += q.mean;
    ++n;
  }
  const auto stats = dist::smoothParted(*pm, []{ adapt::SmoothOptions o; o.passes = 4; return o; }());
  EXPECT_GT(stats.moved, 0u);
  pm->verify();  // boundary untouched: copies still agree bitwise
  double worst_after = 1.0, mean_after = 0.0;
  for (PartId p = 0; p < 4; ++p) {
    const auto q = adapt::meshQuality(pm->part(p).mesh());
    worst_after = std::min(worst_after, q.min);
    mean_after += q.mean;
    core::verify(pm->part(p).mesh(), {.check_volumes = true});
  }
  EXPECT_GE(worst_after, worst_before - 1e-12);
  EXPECT_GT(mean_after, mean_before);
}

TEST(WorkflowProperty, NumberingStableUnderGhosting) {
  auto gen = meshgen::boxTets(3, 3, 3);
  const auto assign = part::partition(*gen.mesh, 3, part::Method::GraphRB);
  auto pm = dist::PartedMesh::distribute(
      *gen.mesh, gen.model.get(), assign,
      dist::PartMap(3, pcu::Machine::flat(3)));
  const std::size_t total = dist::numberEntities(*pm, 0);
  pm->ghostLayers(1);
  // Ghost copies carried the id tag at creation; real ids unchanged.
  std::set<long> owned_ids;
  for (PartId p = 0; p < pm->parts(); ++p) {
    const auto& part = pm->part(p);
    for (Ent v : part.mesh().entities(0)) {
      if (part.isGhost(v) || !part.isOwned(v)) continue;
      owned_ids.insert(dist::globalId(*pm, p, v));
    }
  }
  EXPECT_EQ(owned_ids.size(), total);
  pm->unghost();
  pm->verify();
}

}  // namespace
