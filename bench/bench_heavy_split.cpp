/// \file bench_heavy_split.cpp
/// \brief Reproduces the heavy-part-splitting argument (paper Sec. III-B):
/// greedy diffusion alone fails to meet tolerance when multiple heavy parts
/// neighbour each other; heavy part splitting (knapsack merges + maximal
/// independent set + splits) fixes such partitions, optionally followed by
/// diffusion.
///
/// Workload: predictive-adaptation-style imbalance — a cluster of adjacent
/// parts is overloaded (as happens when a shock front lands on them) while
/// surrounding parts are light.

#include <iostream>

#include "core/measure.hpp"
#include "meshgen/boxmesh.hpp"
#include "parma/heavysplit.hpp"
#include "parma/improve.hpp"
#include "parma/metrics.hpp"
#include "part/partition.hpp"
#include "pcu/counters.hpp"
#include "repro/table.hpp"
#include "repro/workloads.hpp"

namespace {

/// Adjacent-spike partition: stripe the mesh along x into nparts; then
/// fold the elements of every light stripe in the "shock zone" into its
/// left neighbour, creating several adjacent heavy parts.
std::unique_ptr<dist::PartedMesh> adjacentSpikes(meshgen::Generated& gen,
                                                 int nparts) {
  std::vector<std::pair<double, std::size_t>> order;
  std::size_t i = 0;
  for (core::Ent e : gen.mesh->entities(3))
    order.emplace_back(core::centroid(*gen.mesh, e).x, i++);
  std::sort(order.begin(), order.end());
  std::vector<dist::PartId> dest(order.size());
  for (std::size_t k = 0; k < order.size(); ++k)
    dest[order[k].second] =
        static_cast<dist::PartId>(k * static_cast<std::size_t>(nparts) /
                                  order.size());
  // Fold stripes in the middle third pairwise: (4k+1) -> 4k, (4k+3) -> 4k+2
  // inside the zone, doubling those parts' loads and emptying their donors.
  const int zone_lo = nparts / 3, zone_hi = 2 * nparts / 3;
  for (auto& d : dest)
    if (d >= zone_lo && d < zone_hi && (d % 2) == 1) d -= 1;
  return dist::PartedMesh::distribute(
      *gen.mesh, gen.model.get(), dest,
      dist::PartMap(nparts, pcu::Machine::flat(nparts)));
}

}  // namespace

int main() {
  const auto scale = repro::scaleFromEnv();
  int n = 12, nparts = 32;
  if (scale == repro::Scale::Small) {
    n = 8;
    nparts = 16;
  } else if (scale == repro::Scale::Large) {
    n = 18;
    nparts = 64;
  }
  std::cout << "== Heavy part splitting vs diffusion (Sec. III-B), scale: "
            << repro::scaleName(scale) << " ==\n\n";
  std::cout << "box mesh: " << 6 * n * n * n << " tets, " << nparts
            << " parts; middle-third stripes folded pairwise (adjacent "
               "spikes)\n\n";

  repro::Table t({"Strategy", "initial imb", "final imb", "time (s)",
                  "meets 5% tol"});

  auto run = [&](const char* name, auto&& strategy) {
    auto gen = meshgen::boxTets(n, n, n);
    auto pm = adjacentSpikes(gen, nparts);
    const double initial = parma::entityBalance(*pm, 3).imbalance;
    const double start = pcu::now();
    strategy(*pm);
    const double secs = pcu::now() - start;
    pm->verify();
    const double final_imb = parma::entityBalance(*pm, 3).imbalance;
    t.row({name, repro::fmt(initial, 3), repro::fmt(final_imb, 3),
           repro::fmt(secs, 3), final_imb <= 1.05 + 1e-9 ? "yes" : "no"});
  };

  run("diffusion only (ParMA Rgn)", [](dist::PartedMesh& pm) {
    parma::improve(pm, "Rgn", {.tolerance = 0.05});
  });
  run("heavy part splitting", [](dist::PartedMesh& pm) {
    parma::heavyPartSplit(pm, {.tolerance = 0.05});
  });
  run("heavy part splitting + diffusion", [](dist::PartedMesh& pm) {
    parma::heavyPartSplit(pm, {.tolerance = 0.05});
    parma::improve(pm, "Rgn", {.tolerance = 0.05});
  });
  t.print();
  std::cout << "\n(Paper: iterative diffusion alone does not meet the "
               "tolerance when imbalance spikes neighbour each other; heavy "
               "part splitting is the directed, aggressive alternative.)\n";
  return 0;
}
