/// \file bench_fig13_adapt_hist.cpp
/// \brief Reproduces Figure 13: histogram of element imbalance in an
/// adapted mesh when no load balancing is applied prior to adaptation.
///
/// Paper setup: super-sonic viscous flow over an ONERA M6 wing; a shock
/// front resolved by a Hessian-derived size field; 1024 parts; after
/// adaptation the peak imbalance exceeds 400% (>4x average), ~80 parts are
/// over 1.2x, and >120 parts fall below 0.5x the average.
/// Here: a swept-wing-proportioned box, an oblique planar shock-front size
/// field, parts from RCB (balanced before adaptation), with part
/// provenance tracked through refinement by element tags.

#include <iostream>

#include "adapt/refine.hpp"
#include "core/measure.hpp"
#include "parma/metrics.hpp"
#include "part/partition.hpp"
#include "repro/table.hpp"
#include "repro/workloads.hpp"

int main() {
  const auto scale = repro::scaleFromEnv();
  int n = 6, nparts = 128;
  std::size_t max_splits = 400000;
  switch (scale) {
    case repro::Scale::Small:
      n = 4;
      nparts = 64;
      max_splits = 100000;
      break;
    case repro::Scale::Default:
      break;
    case repro::Scale::Large:
      n = 8;
      nparts = 256;
      max_splits = 1200000;
      break;
  }
  std::cout << "== Fig. 13: element imbalance after adaptation with no "
               "prior load balancing (scale: "
            << repro::scaleName(scale) << ") ==\n\n";

  auto gen = meshgen::wingBox(n);
  auto& mesh = *gen.mesh;
  // Break the structured-grid symmetry so parts are not exact mirror
  // images of one another.
  common::Rng rng(20121113);
  meshgen::jiggle(mesh, 0.12, rng);
  std::cout << "wing mesh: " << mesh.count(3) << " tets, " << nparts
            << " parts (paper: 46M->160M tets, 1024 parts)\n";

  // Balanced pre-adaptation partition; provenance tagged on elements so the
  // per-part counts survive refinement (splitEdge copies element tags).
  const auto assignment = part::partition(mesh, nparts, part::Method::RCB);
  auto* tag = mesh.tags().create<int>("part");
  {
    std::size_t i = 0;
    for (core::Ent e : mesh.entities(3))
      mesh.tags().setScalar<int>(tag, e, assignment[i++]);
  }

  // Oblique shock front across the wing (swept: normal tilted in x-z).
  // Target ~3.5x total element growth as in the paper (46M -> 160M): the
  // fine size is ~1/3 of the background element size, in a band whose
  // gaussian tails spread intermediate refinement across parts.
  const double h0 = 1.0 / n;  // background grid cell size
  // The paper's Hessian-of-Mach size field strongly refines the shock band
  // and mildly refines a broad region around the wing (most parts grow
  // somewhat; a few grow enormously). Compose the two effects.
  adapt::ShockFrontSize shock({2.2, 1.0, 0.5}, {1.0, 0.0, 0.45}, 0.30,
                              0.30 * h0, 1.2 * h0);
  adapt::AnalyticSize size([&](const common::Vec3& x) {
    const double broad = x.z < 0.55 ? 0.62 * h0 : 1.2 * h0;  // near-wing
    return std::min(shock.value(x), broad);
  });
  const auto stats = adapt::refine(mesh, size,
                                   {.max_passes = 8, .max_splits = max_splits});
  std::cout << "adapted to " << mesh.count(3) << " tets in " << stats.passes
            << " passes (" << stats.splits << " edge splits)\n\n";

  // Per-part element counts after adaptation.
  parma::Balance b;
  b.per_part.assign(static_cast<std::size_t>(nparts), 0);
  for (core::Ent e : mesh.entities(3))
    b.per_part[static_cast<std::size_t>(
        mesh.tags().getScalar<int>(tag, e))] += 1;
  std::size_t total = 0;
  for (auto c : b.per_part) {
    total += c;
    b.peak = std::max(b.peak, c);
  }
  b.mean = static_cast<double>(total) / nparts;
  b.imbalance = static_cast<double>(b.peak) / b.mean;

  const auto hist = parma::imbalanceHistogram(b, 11);
  repro::Table t({"Imbalance ratio (bin center)", "Frequency"});
  for (std::size_t i = 0; i < hist.centers.size(); ++i)
    t.row({repro::fmt(hist.centers[i], 2), repro::fmt(hist.frequency[i])});
  std::cout << "Histogram: NumRegions/AvgNumRgns per part (paper Fig. 13)\n";
  t.print();

  std::size_t over_12 = 0, under_05 = 0;
  for (auto c : b.per_part) {
    const double r = static_cast<double>(c) / b.mean;
    if (r > 1.2) ++over_12;
    if (r < 0.5) ++under_05;
  }
  std::cout << "\nShape checks (paper: peak >4x, ~80/1024 parts over 1.2x, "
               ">120/1024 parts under 0.5x):\n";
  std::cout << "  peak imbalance: " << repro::fmt(b.imbalance, 2) << "x\n";
  std::cout << "  parts over 1.2x: " << over_12 << " / " << nparts << "\n";
  std::cout << "  parts under 0.5x: " << under_05 << " / " << nparts << "\n";
  return 0;
}
