/// \file bench_adjacency.cpp
/// \brief Validates the complete-representation claim (paper Sec. I): "the
/// complexity of any mesh adjacency interrogation is O(1) (i.e., not a
/// function of mesh size)".
///
/// Measures per-query time of upward, downward and derived adjacency
/// interrogations on box tet meshes from ~1.3k to ~380k elements. The
/// numbers should stay flat as the mesh grows (modulo cache effects).

#include <benchmark/benchmark.h>

#include <map>

#include "core/measure.hpp"
#include "meshgen/boxmesh.hpp"

namespace {

/// Cache of generated meshes so each size is built once.
meshgen::Generated& meshOfSize(int n) {
  static std::map<int, meshgen::Generated> cache;
  auto it = cache.find(n);
  if (it == cache.end())
    it = cache.emplace(n, meshgen::boxTets(n, n, n)).first;
  return it->second;
}

void BM_VertexToRegions(benchmark::State& state) {
  auto& gen = meshOfSize(static_cast<int>(state.range(0)));
  const auto verts = gen.mesh->all(0);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto adj = gen.mesh->adjacent(verts[i], 3);
    benchmark::DoNotOptimize(adj.size());
    i = (i + 97) % verts.size();  // stride to defeat cache-friendly order
  }
  state.SetLabel(std::to_string(gen.mesh->count(3)) + " tets");
}
BENCHMARK(BM_VertexToRegions)->Arg(6)->Arg(12)->Arg(24)->Arg(40);

void BM_VertexToRegionsInto(benchmark::State& state) {
  // Same query through the no-allocation scratch-vector path.
  auto& gen = meshOfSize(static_cast<int>(state.range(0)));
  const auto verts = gen.mesh->all(0);
  core::AdjVec adj;
  std::size_t i = 0;
  for (auto _ : state) {
    const int n = gen.mesh->adjacentInto(verts[i], 3, adj);
    benchmark::DoNotOptimize(n);
    i = (i + 97) % verts.size();
  }
  state.SetLabel(std::to_string(gen.mesh->count(3)) + " tets");
}
BENCHMARK(BM_VertexToRegionsInto)->Arg(6)->Arg(12)->Arg(24)->Arg(40);

void BM_VertexToRegionsSpan(benchmark::State& state) {
  // Same query as a zero-copy row of the CSR adjacency view (built once
  // outside the timed loop; any topology change would invalidate it).
  auto& gen = meshOfSize(static_cast<int>(state.range(0)));
  const auto verts = gen.mesh->all(0);
  gen.mesh->csr(0, 3);  // prime
  std::size_t i = 0;
  for (auto _ : state) {
    const auto adj = gen.mesh->adjacentSpan(verts[i], 3);
    benchmark::DoNotOptimize(adj.data());
    benchmark::DoNotOptimize(adj.size());
    i = (i + 97) % verts.size();
  }
  state.SetLabel(std::to_string(gen.mesh->count(3)) + " tets");
}
BENCHMARK(BM_VertexToRegionsSpan)->Arg(6)->Arg(12)->Arg(24)->Arg(40);

void BM_RegionToVertices(benchmark::State& state) {
  auto& gen = meshOfSize(static_cast<int>(state.range(0)));
  const auto elems = gen.mesh->all(3);
  std::array<core::Ent, core::kMaxDown> buf{};
  std::size_t i = 0;
  for (auto _ : state) {
    const int n = gen.mesh->downward(elems[i], 0, buf.data());
    benchmark::DoNotOptimize(n);
    i = (i + 97) % elems.size();
  }
  state.SetLabel(std::to_string(gen.mesh->count(3)) + " tets");
}
BENCHMARK(BM_RegionToVertices)->Arg(6)->Arg(12)->Arg(24)->Arg(40);

void BM_RegionToEdgesDerived(benchmark::State& state) {
  // Second-order downward adjacency derived through canonical templates.
  auto& gen = meshOfSize(static_cast<int>(state.range(0)));
  const auto elems = gen.mesh->all(3);
  std::array<core::Ent, core::kMaxDown> buf{};
  std::size_t i = 0;
  for (auto _ : state) {
    const int n = gen.mesh->downward(elems[i], 1, buf.data());
    benchmark::DoNotOptimize(n);
    i = (i + 97) % elems.size();
  }
  state.SetLabel(std::to_string(gen.mesh->count(3)) + " tets");
}
BENCHMARK(BM_RegionToEdgesDerived)->Arg(6)->Arg(12)->Arg(24)->Arg(40);

void BM_EdgeToFacesUpward(benchmark::State& state) {
  auto& gen = meshOfSize(static_cast<int>(state.range(0)));
  const auto edges = gen.mesh->all(1);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& up = gen.mesh->up(edges[i]);
    benchmark::DoNotOptimize(up.size());
    i = (i + 97) % edges.size();
  }
  state.SetLabel(std::to_string(gen.mesh->count(3)) + " tets");
}
BENCHMARK(BM_EdgeToFacesUpward)->Arg(6)->Arg(12)->Arg(24)->Arg(40);

void BM_FindEntityByVertices(benchmark::State& state) {
  auto& gen = meshOfSize(static_cast<int>(state.range(0)));
  const auto elems = gen.mesh->all(3);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto vs = gen.mesh->verts(elems[i]);
    const core::Ent found = gen.mesh->findEntity(core::Topo::Tet, vs);
    benchmark::DoNotOptimize(found);
    i = (i + 97) % elems.size();
  }
  state.SetLabel(std::to_string(gen.mesh->count(3)) + " tets");
}
BENCHMARK(BM_FindEntityByVertices)->Arg(6)->Arg(12)->Arg(24)->Arg(40);

void BM_IterateElements(benchmark::State& state) {
  auto& gen = meshOfSize(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::size_t n = 0;
    for (core::Ent e : gen.mesh->entities(3)) {
      benchmark::DoNotOptimize(e);
      ++n;
    }
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(gen.mesh->count(3)));
  state.SetLabel(std::to_string(gen.mesh->count(3)) + " tets");
}
BENCHMARK(BM_IterateElements)->Arg(6)->Arg(12)->Arg(24)->Arg(40);

}  // namespace

BENCHMARK_MAIN();
