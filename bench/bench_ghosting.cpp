/// \file bench_ghosting.cpp
/// \brief Ghosting performance (paper II-C): cost of localizing off-part
/// entity copies, by layer count and part count, plus ghost tag
/// synchronization.

#include <benchmark/benchmark.h>

#include "dist/partedmesh.hpp"
#include "meshgen/boxmesh.hpp"
#include "part/partition.hpp"

namespace {

std::unique_ptr<dist::PartedMesh> makeParted(meshgen::Generated& gen,
                                             int nparts) {
  const auto assignment =
      part::partition(*gen.mesh, nparts, part::Method::RCB);
  return dist::PartedMesh::distribute(
      *gen.mesh, gen.model.get(), assignment,
      dist::PartMap(nparts, pcu::Machine::flat(nparts)));
}

void BM_GhostOneLayer(benchmark::State& state) {
  const int nparts = static_cast<int>(state.range(0));
  auto gen = meshgen::boxTets(12, 12, 12);
  auto pm = makeParted(gen, nparts);
  std::size_t ghosts = 0;
  std::uint64_t logical_msgs = 0, physical_msgs = 0;
  for (auto _ : state) {
    pm->network().resetStats();
    pm->ghostLayers(1);
    ghosts = 0;
    for (dist::PartId p = 0; p < pm->parts(); ++p)
      ghosts += pm->part(p).ghostCount();
    logical_msgs = pm->network().stats().messages_sent;
    physical_msgs = pm->network().stats().physical_messages;
    state.PauseTiming();
    pm->unghost();
    state.ResumeTiming();
  }
  state.SetLabel(std::to_string(ghosts) + " ghost entities");
  state.counters["logical_msgs"] =
      benchmark::Counter(static_cast<double>(logical_msgs));
  state.counters["physical_msgs"] =
      benchmark::Counter(static_cast<double>(physical_msgs));
}
BENCHMARK(BM_GhostOneLayer)
    ->Arg(2)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_GhostLayers(benchmark::State& state) {
  const int layers = static_cast<int>(state.range(0));
  auto gen = meshgen::boxTets(12, 12, 12);
  auto pm = makeParted(gen, 8);
  std::size_t ghosts = 0;
  for (auto _ : state) {
    pm->ghostLayers(layers);
    ghosts = 0;
    for (dist::PartId p = 0; p < pm->parts(); ++p)
      ghosts += pm->part(p).ghostCount();
    state.PauseTiming();
    pm->unghost();
    state.ResumeTiming();
  }
  state.SetLabel(std::to_string(ghosts) + " ghost entities");
}
BENCHMARK(BM_GhostLayers)->Arg(1)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

void BM_GhostTagSync(benchmark::State& state) {
  auto gen = meshgen::boxTets(12, 12, 12);
  auto pm = makeParted(gen, 8);
  // Attach a per-element tag everywhere, ghost once, then measure syncing.
  for (dist::PartId p = 0; p < pm->parts(); ++p) {
    auto& m = pm->part(p).mesh();
    auto* t = m.tags().create<double>("load");
    for (core::Ent e : pm->part(p).elements())
      m.tags().setScalar<double>(t, e, static_cast<double>(p));
  }
  pm->ghostLayers(1);
  for (auto _ : state) {
    pm->syncGhostTags();
  }
  pm->unghost();
}
BENCHMARK(BM_GhostTagSync)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
