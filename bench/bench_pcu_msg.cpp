/// \file bench_pcu_msg.cpp
/// \brief Benchmarks the hybrid inter-thread message-passing layer
/// (paper Sec. II-D: "this hybrid multi-threaded/MPI communication
/// capability has been tested using up to 32 communicating threads in a
/// single node of a Blue Gene/Q").
///
/// Google-benchmark micro-measurements over 2..32 thread-backed ranks:
/// point-to-point ping-pong, barrier, allreduce, and the phased neighbour
/// exchange that underlies all PUMI distributed operations.

#include <benchmark/benchmark.h>

#include <atomic>

#include "pcu/arq.hpp"
#include "pcu/comm.hpp"
#include "pcu/faults.hpp"
#include "pcu/phased.hpp"
#include "pcu/runtime.hpp"

namespace {

namespace faults = pcu::faults;

void BM_PingPong(benchmark::State& state) {
  const auto payload = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    pcu::run(2, [&](pcu::Comm& c) {
      std::vector<std::byte> data(payload);
      for (int i = 0; i < 8; ++i) {
        if (c.rank() == 0) {
          c.send(1, 1, std::vector<std::byte>(data));
          (void)c.recv(1, 2);
        } else {
          (void)c.recv(0, 1);
          c.send(0, 2, std::vector<std::byte>(data));
        }
      }
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16 *
                          static_cast<std::int64_t>(payload));
}
BENCHMARK(BM_PingPong)->Arg(64)->Arg(4096)->Arg(262144);

void BM_Barrier(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    pcu::run(ranks, [](pcu::Comm& c) {
      for (int i = 0; i < 16; ++i) c.barrier();
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_Barrier)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_AllreduceSum(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    pcu::run(ranks, [&](pcu::Comm& c) {
      long acc = 0;
      for (int i = 0; i < 8; ++i) acc += c.allreduceSum<long>(c.rank() + i);
      benchmark::DoNotOptimize(acc);
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8);
}
BENCHMARK(BM_AllreduceSum)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_PhasedExchangeNeighbors(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  // Each rank exchanges a small payload with its two ring neighbours —
  // the traffic pattern of a mesh part boundary update.
  for (auto _ : state) {
    pcu::run(ranks, [&](pcu::Comm& c) {
      for (int round = 0; round < 4; ++round) {
        std::vector<std::pair<int, pcu::OutBuffer>> out;
        for (int d : {(c.rank() + 1) % ranks,
                      (c.rank() + ranks - 1) % ranks}) {
          pcu::OutBuffer b;
          b.pack<int>(c.rank());
          std::vector<double> payload(64, 1.0);
          b.packVector(payload);
          out.emplace_back(d, std::move(b));
        }
        auto msgs = pcu::phasedExchange(c, std::move(out));
        benchmark::DoNotOptimize(msgs.size());
      }
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4 *
                          ranks * 2);
}
BENCHMARK(BM_PhasedExchangeNeighbors)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

/// A/B measurement of per-peer coalescing: 8 payloads to each of two ring
/// neighbours per phase — the bursty pattern of migration/ghosting traffic.
/// The counters record logical vs physical messages and bytes per phase, so
/// the headline ">= 2x fewer physical messages" claim is checked from the
/// bench output itself (physical also includes the termination collective's
/// internal messages).
void phasedBurst(benchmark::State& state, bool coalesce) {
  const int ranks = static_cast<int>(state.range(0));
  const int per_peer = 8;
  std::atomic<std::uint64_t> logical_msgs{0}, physical_msgs{0};
  std::atomic<std::uint64_t> logical_bytes{0}, physical_bytes{0};
  std::uint64_t phases = 0;
  for (auto _ : state) {
    pcu::run(ranks, [&](pcu::Comm& c) {
      c.resetStats();
      for (int round = 0; round < 4; ++round) {
        std::vector<std::pair<int, pcu::OutBuffer>> out;
        for (int d : {(c.rank() + 1) % ranks,
                      (c.rank() + ranks - 1) % ranks}) {
          for (int i = 0; i < per_peer; ++i) {
            pcu::OutBuffer b;
            b.pack<int>(c.rank());
            std::vector<double> payload(16, 1.0);
            b.packVector(payload);
            out.emplace_back(d, std::move(b));
          }
        }
        auto msgs = pcu::phasedExchange(c, std::move(out),
                                        pcu::PhasedOptions{coalesce});
        benchmark::DoNotOptimize(msgs.size());
      }
      logical_msgs += c.stats().messages_sent;
      physical_msgs += c.stats().physical_messages;
      logical_bytes += c.stats().bytes_sent;
      physical_bytes += c.stats().physical_bytes;
    });
    phases += 4;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4 *
                          ranks * 2 * per_peer);
  const auto per_phase = [&](const std::atomic<std::uint64_t>& v) {
    return benchmark::Counter(static_cast<double>(v.load()) /
                              static_cast<double>(phases ? phases : 1));
  };
  state.counters["logical_msgs_per_phase"] = per_phase(logical_msgs);
  state.counters["physical_msgs_per_phase"] = per_phase(physical_msgs);
  state.counters["logical_bytes_per_phase"] = per_phase(logical_bytes);
  state.counters["physical_bytes_per_phase"] = per_phase(physical_bytes);
}

void BM_PhasedExchangeCoalesced(benchmark::State& state) {
  phasedBurst(state, true);
}
BENCHMARK(BM_PhasedExchangeCoalesced)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_PhasedExchangeUncoalesced(benchmark::State& state) {
  phasedBurst(state, false);
}
BENCHMARK(BM_PhasedExchangeUncoalesced)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

/// Framing/CRC overhead guard: the same ping-pong with checksum-verify mode
/// on (frame + CRC32 + verified receive, no fault injection). Comparing
/// bytes_per_second against BM_PingPong at the same payload measures the
/// hardening tax; the counter `framing_bytes` records the per-message
/// header cost. With no plan active the hot path pays one relaxed atomic
/// load, so default-mode numbers are unchanged.
void BM_PingPongChecksum(benchmark::State& state) {
  const auto payload = static_cast<std::size_t>(state.range(0));
  faults::FaultPlan plan;
  plan.checksum_only = true;
  faults::setPlan(plan);
  for (auto _ : state) {
    pcu::run(2, [&](pcu::Comm& c) {
      std::vector<std::byte> data(payload);
      for (int i = 0; i < 8; ++i) {
        if (c.rank() == 0) {
          c.send(1, 1, std::vector<std::byte>(data));
          (void)c.recv(1, 2);
        } else {
          (void)c.recv(0, 1);
          c.send(0, 2, std::vector<std::byte>(data));
        }
      }
    });
  }
  faults::clearPlan();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16 *
                          static_cast<std::int64_t>(payload));
  state.counters["framing_bytes"] = benchmark::Counter(
      static_cast<double>(faults::kFrameHeaderBytes));
}
BENCHMARK(BM_PingPongChecksum)->Arg(64)->Arg(4096)->Arg(262144);

/// Reliable-delivery (ARQ) overhead guard. Args are {payload bytes, drop
/// probability in permille}: at 0‰ this measures the pure bookkeeping tax
/// of reliable mode (frame store + ack pruning) over BM_PingPongChecksum;
/// at 10‰ (the 1% acceptance point) the loss beacons and retransmissions
/// are live, and comparing bytes_per_second against the 0‰ run of the same
/// payload yields the retransmit tax that tools/bench_recovery.sh asserts
/// stays under 10%. Counters export the recovery activity so a vacuous run
/// (nothing dropped, nothing recovered) is visible in the output.
void BM_PingPongReliable(benchmark::State& state) {
  const auto payload = static_cast<std::size_t>(state.range(0));
  const double drop =
      static_cast<double>(state.range(1)) / 1000.0;
  pcu::arq::resetStats();
  pcu::Comm::setReliable(true);
  faults::FaultPlan plan;
  if (drop > 0.0) {
    plan.seed = 12;
    plan.drop = drop;
  } else {
    plan.checksum_only = true;  // framing on either way: isolate the ARQ tax
  }
  faults::setPlan(plan);
  for (auto _ : state) {
    pcu::run(2, [&](pcu::Comm& c) {
      std::vector<std::byte> data(payload);
      for (int i = 0; i < 8; ++i) {
        if (c.rank() == 0) {
          c.send(1, 1, std::vector<std::byte>(data));
          (void)c.recv(1, 2);
        } else {
          (void)c.recv(0, 1);
          c.send(0, 2, std::vector<std::byte>(data));
        }
      }
    });
  }
  faults::clearPlan();
  pcu::Comm::setReliable(false);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16 *
                          static_cast<std::int64_t>(payload));
  const auto st = pcu::arq::stats();
  state.counters["beacons"] =
      benchmark::Counter(static_cast<double>(st.beacons_sent));
  state.counters["retransmits"] =
      benchmark::Counter(static_cast<double>(st.retransmits));
  state.counters["recovered"] =
      benchmark::Counter(static_cast<double>(st.recovered));
}
BENCHMARK(BM_PingPongReliable)
    ->Args({64, 0})
    ->Args({64, 10})
    ->Args({4096, 0})
    ->Args({4096, 10})
    ->Args({262144, 0})
    ->Args({262144, 10});

void BM_SpawnTeardown(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    pcu::run(ranks, [](pcu::Comm& c) { benchmark::DoNotOptimize(c.rank()); });
  }
}
BENCHMARK(BM_SpawnTeardown)->Arg(2)->Arg(8)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
