/// \file bench_predictive.cpp
/// \brief Predictive load balancing ahead of adaptation — the remedy for
/// Fig. 13's imbalance (paper Sec. III-B: "large imbalance spikes are also
/// observed when predictively load balancing for mesh adaptation based on
/// the estimated target mesh resolution at each mesh vertex").
///
/// Compares three pre-adaptation strategies on the wing/shock workload:
///   a) balanced partition of the *input* mesh (no prediction) — Fig. 13,
///   b) partition weighted by the predicted post-adaptation element count,
///   c) (b) followed by ParMA on the adapted mesh.

#include <iostream>

#include "adapt/refine.hpp"
#include "dist/partedmesh.hpp"
#include "core/measure.hpp"
#include <map>
#include <tuple>

#include "parma/heavysplit.hpp"
#include "parma/improve.hpp"
#include "parma/metrics.hpp"
#include "part/partition.hpp"
#include "repro/table.hpp"
#include "repro/workloads.hpp"

namespace {

struct Outcome {
  double peak_imbalance = 0.0;
  std::size_t elements = 0;
};

}  // namespace

int main() {
  const auto scale = repro::scaleFromEnv();
  int n = 6, nparts = 64;
  if (scale == repro::Scale::Small) {
    n = 4;
    nparts = 32;
  } else if (scale == repro::Scale::Large) {
    n = 8;
    nparts = 128;
  }
  std::cout << "== Predictive load balancing for adaptation (Sec. III-B), "
               "scale: "
            << repro::scaleName(scale) << " ==\n\n";

  const double h0 = 1.0 / n;
  repro::Table t({"Strategy", "adapted elements", "peak elem imbalance"});

  auto makeSize = [&]() {
    return adapt::ShockFrontSize({2.2, 1.0, 0.5}, {1.0, 0.0, 0.45}, 0.30,
                                 0.30 * h0, 1.2 * h0);
  };

  auto adaptAndMeasure = [&](core::Mesh& mesh,
                             const std::vector<dist::PartId>& assignment)
      -> Outcome {
    auto* tag = mesh.tags().create<int>("part");
    std::size_t i = 0;
    for (core::Ent e : mesh.entities(3))
      mesh.tags().setScalar<int>(tag, e, assignment[i++]);
    auto size = makeSize();
    adapt::refine(mesh, size, {.max_passes = 8});
    std::vector<std::size_t> counts(static_cast<std::size_t>(nparts), 0);
    for (core::Ent e : mesh.entities(3))
      counts[static_cast<std::size_t>(mesh.tags().getScalar<int>(tag, e))]++;
    std::size_t total = 0, peak = 0;
    for (auto c : counts) {
      total += c;
      peak = std::max(peak, c);
    }
    Outcome o;
    o.elements = total;
    o.peak_imbalance =
        static_cast<double>(peak) * nparts / static_cast<double>(total);
    return o;
  };

  // (a) no prediction: balance the input mesh.
  {
    auto gen = meshgen::wingBox(n);
    const auto assign = part::partition(*gen.mesh, nparts, part::Method::RCB);
    const auto o = adaptAndMeasure(*gen.mesh, assign);
    t.row({"no prediction (Fig. 13)", repro::fmt(o.elements),
           repro::fmt(o.peak_imbalance, 2)});
  }

  // (b) predictive: weight elements by predicted post-adaptation counts.
  std::vector<dist::PartId> predictive_assign;
  {
    auto gen = meshgen::wingBox(n);
    auto size = makeSize();
    auto g = part::buildElemGraph(*gen.mesh);
    for (int i = 0; i < g.size(); ++i)
      g.weights[static_cast<std::size_t>(i)] = adapt::predictedElements(
          *gen.mesh, g.elems[static_cast<std::size_t>(i)], size);
    predictive_assign = part::partitionGraph(g, nparts, part::Method::RCB);
    const auto o = adaptAndMeasure(*gen.mesh, predictive_assign);
    t.row({"predictive weights", repro::fmt(o.elements),
           repro::fmt(o.peak_imbalance, 2)});
  }

  // (b2) predictive via ParMA: keep the count-balanced partition but
  // rebalance by the *predicted* weights with diffusive migration (the
  // application-defined imbalance criterion) before adapting.
  {
    auto gen = meshgen::wingBox(n);
    const auto assign = part::partition(*gen.mesh, nparts, part::Method::RCB);
    auto pm = dist::PartedMesh::distribute(
        *gen.mesh, gen.model.get(), assign,
        dist::PartMap(nparts, pcu::Machine::flat(nparts)));
    auto size = makeSize();
    // Predicted weights as a double element tag on every part.
    for (dist::PartId p = 0; p < pm->parts(); ++p) {
      auto& mesh = pm->part(p).mesh();
      auto* w = mesh.tags().create<double>("predicted");
      for (core::Ent e : pm->part(p).elements())
        mesh.tags().setScalar<double>(
            w, e, adapt::predictedElements(mesh, e, size));
    }
    parma::ImproveOptions opts{.tolerance = 0.08, .max_iterations = 80};
    opts.element_weight_tag = "predicted";
    parma::improve(*pm, "Rgn", opts);
    pm->verify();
    // Re-extract the element->part map, adapt serially with provenance.
    auto gen2 = meshgen::wingBox(n);
    // Match elements by centroid between the two identical meshes.
    std::map<std::tuple<double, double, double>, dist::PartId> where;
    for (dist::PartId p = 0; p < pm->parts(); ++p) {
      auto& mesh = pm->part(p).mesh();
      for (core::Ent e : pm->part(p).elements()) {
        const auto c = core::centroid(mesh, e);
        where[{c.x, c.y, c.z}] = p;
      }
    }
    std::vector<dist::PartId> parma_assign;
    for (core::Ent e : gen2.mesh->entities(3)) {
      const auto c = core::centroid(*gen2.mesh, e);
      parma_assign.push_back(where.at({c.x, c.y, c.z}));
    }
    const auto o = adaptAndMeasure(*gen2.mesh, parma_assign);
    t.row({"predictive via ParMA diffusion", repro::fmt(o.elements),
           repro::fmt(o.peak_imbalance, 2)});
  }

  // (c) predictive + ParMA on the adapted, redistributed mesh.
  {
    auto gen = meshgen::wingBox(n);
    auto* tag = gen.mesh->tags().create<int>("part");
    std::size_t i = 0;
    for (core::Ent e : gen.mesh->entities(3))
      gen.mesh->tags().setScalar<int>(tag, e, predictive_assign[i++]);
    auto size = makeSize();
    adapt::refine(*gen.mesh, size, {.max_passes = 8});
    std::vector<dist::PartId> adapted_assign;
    for (core::Ent e : gen.mesh->entities(3))
      adapted_assign.push_back(gen.mesh->tags().getScalar<int>(tag, e));
    auto pm = dist::PartedMesh::distribute(
        *gen.mesh, gen.model.get(), adapted_assign,
        dist::PartMap(nparts, pcu::Machine::flat(nparts)));
    parma::heavyPartSplit(*pm, {.tolerance = 0.05});
    parma::improve(*pm, "Rgn", {.tolerance = 0.05});
    pm->verify();
    t.row({"predictive + ParMA", repro::fmt(gen.mesh->count(3)),
           repro::fmt(parma::entityBalance(*pm, 3).imbalance, 2)});
  }

  t.print();
  std::cout << "\n(Expected: prediction removes most of the Fig. 13 spike; "
               "ParMA finishes the job after the adapted mesh exists.)\n";
  return 0;
}
