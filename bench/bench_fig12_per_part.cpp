/// \file bench_fig12_per_part.cpp
/// \brief Reproduces Figure 12: per-part normalized vertex (a) and edge (b)
/// counts before and after ParMA test T2 (Vtx=Edge>Rgn).
///
/// Paper shape: the "before" series has spikes up to ~1.25x the average
/// vertex count (and a wide spread for edges); the "after" series is
/// clipped into a tight band at ~1.05. We print the series (one row per
/// part) plus a summary of the band.

#include <algorithm>
#include <iostream>

#include "parma/improve.hpp"
#include "parma/metrics.hpp"
#include "repro/table.hpp"
#include "repro/workloads.hpp"

int main() {
  const auto scale = repro::scaleFromEnv();
  std::cout << "== Fig. 12: per-part normalized vertex/edge counts before "
               "and after ParMA T2 (scale: "
            << repro::scaleName(scale) << ") ==\n\n";

  auto w = repro::makeAaa(scale);
  auto pm = repro::distributeT0(w, nullptr);

  const auto vtx_before = parma::entityBalance(*pm, 0);
  const auto edge_before = parma::entityBalance(*pm, 1);

  parma::improve(*pm, "Vtx=Edge>Rgn", {.tolerance = 0.05});
  pm->verify();

  const auto vtx_after = parma::entityBalance(*pm, 0);
  const auto edge_after = parma::entityBalance(*pm, 1);

  // Normalize against the *before* means (the figure's y axis is
  // count / average of the input partition).
  repro::Table t({"part", "Vtx/VtxAve before", "Vtx/VtxAve after",
                  "Edge/EdgeAve before", "Edge/EdgeAve after"});
  for (int p = 0; p < pm->parts(); ++p) {
    t.row({repro::fmt(p),
           repro::fmt(vtx_before.per_part[static_cast<std::size_t>(p)] /
                          vtx_before.mean,
                      3),
           repro::fmt(vtx_after.per_part[static_cast<std::size_t>(p)] /
                          vtx_before.mean,
                      3),
           repro::fmt(edge_before.per_part[static_cast<std::size_t>(p)] /
                          edge_before.mean,
                      3),
           repro::fmt(edge_after.per_part[static_cast<std::size_t>(p)] /
                          edge_before.mean,
                      3)});
  }
  t.print();

  auto peak = [](const parma::Balance& b, double mean) {
    return static_cast<double>(b.peak) / mean;
  };
  std::cout << "\nSummary (paper: before-spikes ~1.2+, after confined to a "
               "band near 1.05):\n";
  std::cout << "  vertex peak before: " << repro::fmt(peak(vtx_before, vtx_before.mean), 3)
            << "  after: " << repro::fmt(peak(vtx_after, vtx_before.mean), 3) << "\n";
  std::cout << "  edge   peak before: " << repro::fmt(peak(edge_before, edge_before.mean), 3)
            << "  after: " << repro::fmt(peak(edge_after, edge_before.mean), 3) << "\n";
  return 0;
}
