/// \file bench_parma_ablation.cpp
/// \brief Ablations of ParMA's design choices (DESIGN.md "ablation benches
/// for the design choices"):
///
///   1. Candidate categories (paper III-A-1): absolute-only vs
///      absolute+relative lightly loaded neighbours. The relative category
///      lets spikes diffuse through moderately loaded regions.
///   2. Element selection (paper III-A-2, Figs. 9-10): boundary-improving
///      cavities vs naive boundary elements. The heuristic protects the
///      part boundary (and thus the vertex/edge counts) while balancing.
///   3. Diffusion damping: full-surplus steps vs half-surplus steps.

#include <iostream>

#include "parma/improve.hpp"
#include "parma/metrics.hpp"
#include "pcu/counters.hpp"
#include "repro/table.hpp"
#include "repro/workloads.hpp"

int main() {
  const auto scale = repro::scaleFromEnv();
  std::cout << "== ParMA design ablations (Vtx>Rgn on the AAA workload), "
               "scale: "
            << repro::scaleName(scale) << " ==\n\n";

  auto w = repro::makeAaa(scale);
  const auto base_assignment =
      part::partition(*w.gen.mesh, w.nparts, part::Method::HypergraphRB);

  repro::Table t({"Variant", "vtx imb before", "vtx imb after", "rgn imb after",
                  "boundary verts", "migrated", "time (s)"});

  auto run = [&](const char* name, parma::ImproveOptions opts) {
    auto pm = repro::distributeWith(w, base_assignment);
    const double before =
        parma::entityBalance(*pm, 0).imbalancePercent();
    const double start = pcu::now();
    const auto report = parma::improve(*pm, "Vtx>Rgn", opts);
    const double secs = pcu::now() - start;
    pm->verify();
    t.row({name, repro::fmt(before, 2),
           repro::fmt(parma::entityBalance(*pm, 0).imbalancePercent(), 2),
           repro::fmt(parma::entityBalance(*pm, 3).imbalancePercent(), 2),
           repro::fmt(parma::boundaryCopies(*pm, 0)),
           repro::fmt(report.totalMigrated()), repro::fmt(secs, 3)});
  };

  run("full ParMA", {});
  run("candidates: absolute only", {.relative_candidates = false});
  run("selection: naive boundary", {.heuristic_selection = false});
  run("damping 1.0 (full surplus)", {.damping = 1.0});
  run("damping 0.25", {.damping = 0.25});
  t.print();

  std::cout << "\n(Expected: disabling the relative candidate category or "
               "the Figs. 9-10 selection heuristics worsens the final "
               "imbalance and/or the boundary size; aggressive damping "
               "overshoots.)\n";
  return 0;
}
