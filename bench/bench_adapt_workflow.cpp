/// \file bench_adapt_workflow.cpp
/// \brief Timing of the full parallel adaptive workflow the paper motivates
/// (Sec. I: generation -> analysis -> adaptation -> dynamic load balancing
/// -> analysis). Reports per-stage wall time and the balance trajectory;
/// the point of ParMA's speed (Table III) is that the "balance" stage is a
/// negligible slice of this loop.

#include <iostream>

#include "adapt/sizefield.hpp"
#include "dist/padapt.hpp"
#include "dist/partedmesh.hpp"
#include "meshgen/workloads.hpp"
#include "parma/balance.hpp"
#include "parma/metrics.hpp"
#include "part/partition.hpp"
#include "pcu/counters.hpp"
#include "repro/table.hpp"
#include "repro/workloads.hpp"
#include "solver/poisson.hpp"

int main() {
  const auto scale = repro::scaleFromEnv();
  meshgen::VesselSpec spec{.circumferential = 8, .axial = 32};
  int nparts = 32;
  if (scale == repro::Scale::Small) {
    spec = {.circumferential = 6, .axial = 20};
    nparts = 16;
  } else if (scale == repro::Scale::Large) {
    spec = {.circumferential = 10, .axial = 48};
    nparts = 64;
  }
  std::cout << "== Parallel adaptive workflow (Sec. I), scale: "
            << repro::scaleName(scale) << " ==\n\n";

  pcu::Timers timers;
  auto gen = meshgen::vessel(spec);
  std::cout << "vessel mesh: " << gen.mesh->count(3) << " tets, " << nparts
            << " parts\n\n";

  std::unique_ptr<dist::PartedMesh> pm;
  {
    pcu::Timers::Scope s(timers, "1 partition+distribute");
    const auto assign =
        part::partition(*gen.mesh, nparts, part::Method::GraphRB);
    pm = dist::PartedMesh::distribute(
        *gen.mesh, gen.model.get(), assign,
        dist::PartMap(nparts, pcu::Machine(4, 8)));
  }
  {
    pcu::Timers::Scope s(timers, "2 analysis (Poisson)");
    solver::solvePoisson(
        *pm, [](const common::Vec3&) { return 1.0; },
        [](const common::Vec3&) { return 0.0; },
        {.max_iterations = 600, .tolerance = 1e-6});
  }
  const double zc = 0.55 * spec.length;
  adapt::AnalyticSize size([&](const common::Vec3& x) {
    const double dz = (x.z - zc) / (0.12 * spec.length);
    return 1.1 - 0.62 * std::exp(-dz * dz);
  });
  {
    pcu::Timers::Scope s(timers, "3 distributed adaptation");
    dist::refineParted(*pm, size, {.max_passes = 6});
  }
  const double imb_after_adapt = parma::entityBalance(*pm, 3).imbalance;
  {
    pcu::Timers::Scope s(timers, "4 ParMA rebalance");
    parma::BalanceOptions b{.tolerance = 0.05};
    b.improve.max_iterations = 60;
    parma::balance(*pm, "Rgn", b);
  }
  const double imb_after_parma = parma::entityBalance(*pm, 3).imbalance;
  {
    pcu::Timers::Scope s(timers, "5 analysis on adapted mesh");
    solver::solvePoisson(
        *pm, [](const common::Vec3&) { return 1.0; },
        [](const common::Vec3&) { return 0.0; },
        {.max_iterations = 1500, .tolerance = 1e-6});
  }
  pm->verify();

  repro::Table t({"Stage", "time (s)"});
  double total = 0.0;
  for (const auto& [name, entry] : timers.entries()) {
    t.row({name, repro::fmt(entry.seconds, 2)});
    total += entry.seconds;
  }
  t.row({"total", repro::fmt(total, 2)});
  t.print();
  std::cout << "\nadapted to " << pm->globalCount(3)
            << " tets; element imbalance " << repro::fmt(imb_after_adapt, 2)
            << " after adaptation, " << repro::fmt(imb_after_parma, 2)
            << " after ParMA (" << repro::fmt(100.0 * timers.seconds("4 ParMA rebalance") / total, 1)
            << "% of the workflow spent balancing)\n";
  return 0;
}
