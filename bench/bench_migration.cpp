/// \file bench_migration.cpp
/// \brief Migration performance (paper II-C): cost of moving elements
/// between parts while maintaining the distributed representation.
///
/// Measures end-to-end migrate() time for (a) a fixed-fraction boundary
/// shift at several part counts and (b) several moved fractions at a fixed
/// part count — migration cost should track the amount of data moved, not
/// the mesh size (the touched-entity protocol).

#include <benchmark/benchmark.h>

#include <unordered_map>
#include <unordered_set>

#include "common/flatmap.hpp"
#include "core/measure.hpp"
#include "dist/partedmesh.hpp"
#include "meshgen/boxmesh.hpp"
#include "part/partition.hpp"
#include "pcu/stats.hpp"
#include "pcu/trace.hpp"

namespace {

std::unique_ptr<dist::PartedMesh> makeParted(meshgen::Generated& gen,
                                             int nparts) {
  const auto assignment =
      part::partition(*gen.mesh, nparts, part::Method::RCB);
  return dist::PartedMesh::distribute(
      *gen.mesh, gen.model.get(), assignment,
      dist::PartMap(nparts, pcu::Machine::flat(nparts)));
}

/// Plan moving `fraction` of part 0's elements (geometric slab) to part 1.
dist::MigrationPlan slabPlan(dist::PartedMesh& pm, double fraction) {
  dist::MigrationPlan plan(static_cast<std::size_t>(pm.parts()));
  auto elems = pm.part(0).elements();
  std::vector<std::pair<double, core::Ent>> order;
  for (core::Ent e : elems)
    order.emplace_back(core::centroid(pm.part(0).mesh(), e).x, e);
  std::sort(order.begin(), order.end());
  const auto target = pm.parts() > 1 ? 1 : 0;
  const std::size_t n = static_cast<std::size_t>(fraction * order.size());
  for (std::size_t i = order.size() - n; i < order.size(); ++i)
    plan[0][order[i].second] = target;
  return plan;
}

void BM_MigrateSlabAcrossParts(benchmark::State& state) {
  const int nparts = static_cast<int>(state.range(0));
  auto gen = meshgen::boxTets(16, 16, 16);  // 24576 tets
  std::size_t moved = 0;
  std::uint64_t logical_msgs = 0, physical_msgs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto pm = makeParted(gen, nparts);
    auto plan = slabPlan(*pm, 0.25);
    moved = plan[0].size();
    pm->network().resetStats();
    state.ResumeTiming();
    pm->migrate(plan);
    benchmark::DoNotOptimize(pm->part(0).elementCount());
    logical_msgs = pm->network().stats().messages_sent;
    physical_msgs = pm->network().stats().physical_messages;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(moved));
  state.SetLabel(std::to_string(moved) + " elems moved");
  // Migration posts one tiny payload per touched entity; coalescing folds
  // them into one physical message per neighbour pair per superstep.
  state.counters["logical_msgs"] =
      benchmark::Counter(static_cast<double>(logical_msgs));
  state.counters["physical_msgs"] =
      benchmark::Counter(static_cast<double>(physical_msgs));
}
BENCHMARK(BM_MigrateSlabAcrossParts)
    ->Arg(2)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_MigrateFraction(benchmark::State& state) {
  const double fraction = static_cast<double>(state.range(0)) / 100.0;
  auto gen = meshgen::boxTets(16, 16, 16);
  std::size_t moved = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto pm = makeParted(gen, 8);
    auto plan = slabPlan(*pm, fraction);
    moved = plan[0].size();
    state.ResumeTiming();
    pm->migrate(plan);
    benchmark::DoNotOptimize(pm->part(1).elementCount());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(moved));
  state.SetLabel(std::to_string(moved) + " elems moved");
}
BENCHMARK(BM_MigrateFraction)
    ->Arg(5)
    ->Arg(25)
    ->Arg(75)
    ->Unit(benchmark::kMillisecond);

/// --- plan application: legacy node-based tables vs flat layout -----------
///
/// The phase-A inner loop of migrate(): for every entity in the closure of
/// a moving element, union the destinations of its adjacent elements. The
/// legacy variant uses std::unordered_map/set and the allocating adjacent();
/// the flat variant uses the SIMD open-addressing tables and adjacentInto()
/// — exactly what migrate() runs today. Both fold to one order-independent
/// checksum, compared at setup so the variants are proven equivalent.

struct PlanFixture {
  meshgen::Generated gen;
  std::unique_ptr<dist::PartedMesh> pm;
  // Plan as plain sorted (element, destination) lists per part.
  std::vector<std::vector<std::pair<core::Ent, dist::PartId>>> entries;
};

PlanFixture& planFixture() {
  static PlanFixture* f = [] {
    auto* x = new PlanFixture{meshgen::boxTets(16, 16, 16), nullptr, {}};
    x->pm = makeParted(x->gen, 8);
    auto plan = slabPlan(*x->pm, 0.25);
    x->entries.resize(plan.size());
    for (std::size_t i = 0; i < plan.size(); ++i) {
      for (const auto& [e, d] : plan[i]) x->entries[i].emplace_back(e, d);
      std::sort(x->entries[i].begin(), x->entries[i].end());
    }
    return x;
  }();
  return *f;
}

template <class Map, class Set, bool kUseInto>
std::uint64_t planApply(const PlanFixture& f) {
  const int dim = f.pm->dim();
  std::uint64_t acc = 0;
  core::AdjVec adj;
  std::array<core::Ent, core::kMaxDown> buf{};
  for (std::size_t pi = 0; pi < f.entries.size(); ++pi) {
    const auto& mesh = f.pm->part(static_cast<dist::PartId>(pi)).mesh();
    Map m;
    for (const auto& [e, d] : f.entries[pi]) m.emplace(e, d);
    Set participating;
    for (const auto& [elem, dest] : f.entries[pi]) {
      (void)dest;
      for (int d = 0; d < dim; ++d) {
        const int n = mesh.downward(elem, d, buf.data());
        for (int k = 0; k < n; ++k)
          participating.insert(buf[static_cast<std::size_t>(k)]);
      }
    }
    for (core::Ent e : participating) {
      std::uint64_t r = 0;
      auto fold = [&](core::Ent elem) {
        auto it = m.find(elem);
        const dist::PartId d =
            it == m.end() ? static_cast<dist::PartId>(pi) : it->second;
        r = r * 31 + static_cast<std::uint64_t>(d) + 1;
      };
      if constexpr (kUseInto) {
        const int n = mesh.adjacentInto(e, dim, adj);
        for (int k = 0; k < n; ++k) fold(adj[static_cast<std::size_t>(k)]);
      } else {
        for (core::Ent elem : mesh.adjacent(e, dim)) fold(elem);
      }
      // Commutative fold: set iteration order differs between table types.
      acc += r * (core::EntHash{}(e) | 1);
    }
  }
  return acc;
}

using LegacyMap = std::unordered_map<core::Ent, dist::PartId, core::EntHash>;
using LegacySet = std::unordered_set<core::Ent, core::EntHash>;
using FlatMap = common::FlatMap<core::Ent, dist::PartId, core::EntHash>;
using FlatSet = common::FlatSet<core::Ent, core::EntHash>;

void BM_PlanApplyLegacy(benchmark::State& state) {
  auto& f = planFixture();
  if (planApply<LegacyMap, LegacySet, false>(f) !=
      planApply<FlatMap, FlatSet, true>(f)) {
    state.SkipWithError("legacy/flat plan application disagree");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(planApply<LegacyMap, LegacySet, false>(f));
  }
  state.SetLabel(std::to_string(f.entries[0].size()) + " plan entries");
}
BENCHMARK(BM_PlanApplyLegacy)->Unit(benchmark::kMillisecond);

void BM_PlanApplyFlat(benchmark::State& state) {
  auto& f = planFixture();
  if (planApply<LegacyMap, LegacySet, false>(f) !=
      planApply<FlatMap, FlatSet, true>(f)) {
    state.SkipWithError("legacy/flat plan application disagree");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(planApply<FlatMap, FlatSet, true>(f));
  }
  state.SetLabel(std::to_string(f.entries[0].size()) + " plan entries");
}
BENCHMARK(BM_PlanApplyFlat)->Unit(benchmark::kMillisecond);

void BM_DistributeFromSerial(benchmark::State& state) {
  // Initial distribution cost (mesh loading path).
  const int nparts = static_cast<int>(state.range(0));
  auto gen = meshgen::boxTets(12, 12, 12);
  const auto assignment =
      part::partition(*gen.mesh, nparts, part::Method::RCB);
  for (auto _ : state) {
    auto pm = dist::PartedMesh::distribute(
        *gen.mesh, gen.model.get(), assignment,
        dist::PartMap(nparts, pcu::Machine::flat(nparts)));
    benchmark::DoNotOptimize(pm->parts());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(gen.mesh->count(3)));
}
BENCHMARK(BM_DistributeFromSerial)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// BENCHMARK_MAIN, plus trace surfacing: under PUMI_TRACE=1 the benchmark
// run doubles as a profiling session — print the per-phase imbalance
// report and flush the Chrome trace on exit.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (pcu::trace::enabled()) {
    pcu::printTraceReport(pcu::buildTraceReport());
    pcu::trace::flushNow();
  }
  return 0;
}
