/// \file bench_migration.cpp
/// \brief Migration performance (paper II-C): cost of moving elements
/// between parts while maintaining the distributed representation.
///
/// Measures end-to-end migrate() time for (a) a fixed-fraction boundary
/// shift at several part counts and (b) several moved fractions at a fixed
/// part count — migration cost should track the amount of data moved, not
/// the mesh size (the touched-entity protocol).

#include <benchmark/benchmark.h>

#include "core/measure.hpp"
#include "dist/partedmesh.hpp"
#include "meshgen/boxmesh.hpp"
#include "part/partition.hpp"
#include "pcu/stats.hpp"
#include "pcu/trace.hpp"

namespace {

std::unique_ptr<dist::PartedMesh> makeParted(meshgen::Generated& gen,
                                             int nparts) {
  const auto assignment =
      part::partition(*gen.mesh, nparts, part::Method::RCB);
  return dist::PartedMesh::distribute(
      *gen.mesh, gen.model.get(), assignment,
      dist::PartMap(nparts, pcu::Machine::flat(nparts)));
}

/// Plan moving `fraction` of part 0's elements (geometric slab) to part 1.
dist::MigrationPlan slabPlan(dist::PartedMesh& pm, double fraction) {
  dist::MigrationPlan plan(static_cast<std::size_t>(pm.parts()));
  auto elems = pm.part(0).elements();
  std::vector<std::pair<double, core::Ent>> order;
  for (core::Ent e : elems)
    order.emplace_back(core::centroid(pm.part(0).mesh(), e).x, e);
  std::sort(order.begin(), order.end());
  const auto target = pm.parts() > 1 ? 1 : 0;
  const std::size_t n = static_cast<std::size_t>(fraction * order.size());
  for (std::size_t i = order.size() - n; i < order.size(); ++i)
    plan[0][order[i].second] = target;
  return plan;
}

void BM_MigrateSlabAcrossParts(benchmark::State& state) {
  const int nparts = static_cast<int>(state.range(0));
  auto gen = meshgen::boxTets(16, 16, 16);  // 24576 tets
  std::size_t moved = 0;
  std::uint64_t logical_msgs = 0, physical_msgs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto pm = makeParted(gen, nparts);
    auto plan = slabPlan(*pm, 0.25);
    moved = plan[0].size();
    pm->network().resetStats();
    state.ResumeTiming();
    pm->migrate(plan);
    benchmark::DoNotOptimize(pm->part(0).elementCount());
    logical_msgs = pm->network().stats().messages_sent;
    physical_msgs = pm->network().stats().physical_messages;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(moved));
  state.SetLabel(std::to_string(moved) + " elems moved");
  // Migration posts one tiny payload per touched entity; coalescing folds
  // them into one physical message per neighbour pair per superstep.
  state.counters["logical_msgs"] =
      benchmark::Counter(static_cast<double>(logical_msgs));
  state.counters["physical_msgs"] =
      benchmark::Counter(static_cast<double>(physical_msgs));
}
BENCHMARK(BM_MigrateSlabAcrossParts)
    ->Arg(2)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_MigrateFraction(benchmark::State& state) {
  const double fraction = static_cast<double>(state.range(0)) / 100.0;
  auto gen = meshgen::boxTets(16, 16, 16);
  std::size_t moved = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto pm = makeParted(gen, 8);
    auto plan = slabPlan(*pm, fraction);
    moved = plan[0].size();
    state.ResumeTiming();
    pm->migrate(plan);
    benchmark::DoNotOptimize(pm->part(1).elementCount());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(moved));
  state.SetLabel(std::to_string(moved) + " elems moved");
}
BENCHMARK(BM_MigrateFraction)
    ->Arg(5)
    ->Arg(25)
    ->Arg(75)
    ->Unit(benchmark::kMillisecond);

void BM_DistributeFromSerial(benchmark::State& state) {
  // Initial distribution cost (mesh loading path).
  const int nparts = static_cast<int>(state.range(0));
  auto gen = meshgen::boxTets(12, 12, 12);
  const auto assignment =
      part::partition(*gen.mesh, nparts, part::Method::RCB);
  for (auto _ : state) {
    auto pm = dist::PartedMesh::distribute(
        *gen.mesh, gen.model.get(), assignment,
        dist::PartMap(nparts, pcu::Machine::flat(nparts)));
    benchmark::DoNotOptimize(pm->parts());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(gen.mesh->count(3)));
}
BENCHMARK(BM_DistributeFromSerial)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// BENCHMARK_MAIN, plus trace surfacing: under PUMI_TRACE=1 the benchmark
// run doubles as a profiling session — print the per-phase imbalance
// report and flush the Chrome trace on exit.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (pcu::trace::enabled()) {
    pcu::printTraceReport(pcu::buildTraceReport());
    pcu::trace::flushNow();
  }
  return 0;
}
