/// \file bench_local_split.cpp
/// \brief Reproduces the large-part-count scenario (paper end of
/// Sec. III-A): a 3B-element mesh is taken from 16,384 to 1.5M parts by
/// locally partitioning each part (Zoltan hypergraph to 96 subparts); the
/// local stage raises the peak vertex imbalance from 9% to 54%, and ParMA
/// Vtx>Rgn then improves the vertex imbalance by more than 10%.
///
/// Scaled here: global hypergraph partition to G parts, local split by
/// factor F (G*F parts total), then ParMA Vtx>Rgn.

#include <iostream>

#include "parma/improve.hpp"
#include "parma/metrics.hpp"
#include "part/localsplit.hpp"
#include "pcu/counters.hpp"
#include "repro/table.hpp"
#include "repro/workloads.hpp"

int main() {
  const auto scale = repro::scaleFromEnv();
  int global_parts = 8, factor = 16;
  meshgen::VesselSpec spec;
  switch (scale) {
    case repro::Scale::Small:
      spec.circumferential = 6;
      spec.axial = 24;
      global_parts = 4;
      factor = 8;
      break;
    case repro::Scale::Default:
      spec.circumferential = 10;
      spec.axial = 56;
      break;
    case repro::Scale::Large:
      spec.circumferential = 12;
      spec.axial = 80;
      global_parts = 16;
      factor = 16;
      break;
  }
  std::cout << "== Two-stage partitioning to extreme part counts "
               "(Sec. III-A end), scale: "
            << repro::scaleName(scale) << " ==\n\n";

  auto gen = meshgen::vessel(spec);
  common::Rng rng(77);
  meshgen::jiggle(*gen.mesh, 0.1, rng);
  std::cout << "vessel mesh: " << gen.mesh->count(3) << " tets; global "
            << global_parts << " parts, local split x" << factor << " -> "
            << global_parts * factor
            << " parts (paper: 16384 -> 1.5M parts)\n\n";

  const auto assignment =
      part::partition(*gen.mesh, global_parts, part::Method::HypergraphRB);
  auto pm = dist::PartedMesh::distribute(
      *gen.mesh, gen.model.get(), assignment,
      dist::PartMap(global_parts, pcu::Machine::flat(global_parts)));

  const double vtx_global = parma::entityBalance(*pm, 0).imbalancePercent();

  part::localSplit(*pm, factor, part::Method::HypergraphRB);
  pm->verify();
  const double vtx_split = parma::entityBalance(*pm, 0).imbalancePercent();

  const double start = pcu::now();
  parma::improve(*pm, "Vtx>Rgn", {.tolerance = 0.05});
  const double secs = pcu::now() - start;
  pm->verify();
  const double vtx_final = parma::entityBalance(*pm, 0).imbalancePercent();
  const double rgn_final = parma::entityBalance(*pm, 3).imbalancePercent();

  repro::Table t({"Stage", "parts", "peak vtx imb %"});
  t.row({"global hypergraph", repro::fmt(global_parts),
         repro::fmt(vtx_global, 1)});
  t.row({"after local split", repro::fmt(global_parts * factor),
         repro::fmt(vtx_split, 1)});
  t.row({"after ParMA Vtx>Rgn", repro::fmt(global_parts * factor),
         repro::fmt(vtx_final, 1)});
  t.print();
  std::cout << "\nParMA time: " << repro::fmt(secs, 2)
            << " s; final region imbalance " << repro::fmt(rgn_final, 1)
            << "%\n";
  std::cout << "improvement: " << repro::fmt(vtx_split - vtx_final, 1)
            << " percentage points (paper: initial peak 9% -> 54% after "
               "local split; ParMA improves by more than 10%)\n";
  return 0;
}
