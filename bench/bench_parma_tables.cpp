/// \file bench_parma_tables.cpp
/// \brief Reproduces Tables I, II and III of the paper (Sec. III-A-3):
/// ParMA multi-criteria partition improvement on the AAA workload.
///
/// Paper setup: 133M-tet abdominal aortic aneurysm mesh, Zoltan PHG to
/// 16,384 parts on 512 cores of Jaguar (32 parts/process), 5% tolerance.
/// Here: parametric AAA-surrogate vessel (see DESIGN.md substitutions),
/// PHG stand-in = hypergraph-refined recursive bisection, default 64 parts.
/// Shape targets: T0 has low region imbalance but vertex imbalance well
/// over 5%; each ParMA test drives its targeted entity types under the 5%
/// tolerance with only a small region-imbalance cost; mean vertex counts do
/// not grow; ParMA runs 1-2 orders of magnitude faster than the global
/// partitioner (Table III).

#include <iostream>
#include <optional>

#include "parma/improve.hpp"
#include "parma/metrics.hpp"
#include "pcu/counters.hpp"
#include "pcu/stats.hpp"
#include "pcu/trace.hpp"
#include "repro/table.hpp"
#include "repro/workloads.hpp"

namespace {

struct TestResult {
  std::string name;
  std::string method;
  std::array<std::optional<double>, 4> mean;  // per dim, nullopt = untested
  std::array<std::optional<double>, 4> imb_pct;
  double seconds = 0.0;
  std::size_t boundary_verts = 0;
};

/// Imbalance percent relative to the T0 means, as the paper computes it
/// ("the imbalance ratios are all computed based on the mean values of the
/// partition created in T0").
double imbPct(const parma::Balance& b, double t0_mean) {
  return (static_cast<double>(b.peak) / t0_mean - 1.0) * 100.0;
}

}  // namespace

int main() {
  const auto scale = repro::scaleFromEnv();
  std::cout << "== ParMA multi-criteria partition improvement "
               "(Tables I-III), scale: "
            << repro::scaleName(scale) << " ==\n\n";

  auto w = repro::makeAaa(scale);
  std::cout << "AAA-surrogate mesh: " << w.gen.mesh->count(3) << " tets, "
            << w.gen.mesh->count(0) << " vertices, " << w.nparts
            << " parts (paper: 133M tets, 16384 parts)\n\n";

  // --- T0: the hypergraph baseline ----------------------------------------
  // T0's cost is a full global repartition: computing the assignment AND
  // redistributing every element. ParMA's cost (below) likewise includes
  // its (much smaller) migrations, so the comparison is end-to-end.
  const double t0_start = pcu::now();
  const auto base_assignment =
      part::partition(*w.gen.mesh, w.nparts, part::Method::HypergraphRB);
  const auto t0_mesh = repro::distributeWith(w, base_assignment);
  const double t0_seconds = pcu::now() - t0_start;

  const auto t0_bal = parma::allBalances(*t0_mesh);
  std::array<double, 4> t0_mean{};
  for (int d = 0; d <= 3; ++d)
    t0_mean[static_cast<std::size_t>(d)] =
        t0_bal[static_cast<std::size_t>(d)].mean;

  // --- Table I: the test matrix -------------------------------------------
  struct Spec {
    const char* name;
    const char* priority;  // empty = baseline
  };
  const Spec specs[] = {
      {"T0", ""},
      {"T1", "Vtx>Rgn"},
      {"T2", "Vtx=Edge>Rgn"},
      {"T3", "Edge>Rgn"},
      {"T4", "Edge=Face>Rgn"},
  };
  {
    repro::Table t({"Test", "Method"});
    t.row({"T0", "Hypergraph (PHG stand-in)"});
    for (int i = 1; i <= 4; ++i)
      t.row({specs[i].name, std::string("ParMA ") + specs[i].priority});
    std::cout << "Table I: tests and parameters\n";
    t.print();
    std::cout << "\n";
  }

  // Which dims each test reports (matching the dashes in Table II).
  auto dimsOf = [](const std::string& priority) {
    std::array<bool, 4> dims{};
    dims[3] = true;  // regions always reported
    if (priority.find("Vtx") != std::string::npos) dims[0] = true;
    if (priority.find("Edge") != std::string::npos) dims[1] = true;
    if (priority.find("Face") != std::string::npos) dims[2] = true;
    return dims;
  };

  std::vector<TestResult> results;

  // T0 row: all four dims.
  {
    TestResult r;
    r.name = "T0";
    r.method = "Hypergraph";
    for (int d = 0; d <= 3; ++d) {
      r.mean[static_cast<std::size_t>(d)] = t0_bal[static_cast<std::size_t>(d)].mean;
      r.imb_pct[static_cast<std::size_t>(d)] =
          imbPct(t0_bal[static_cast<std::size_t>(d)], t0_mean[static_cast<std::size_t>(d)]);
    }
    r.seconds = t0_seconds;
    r.boundary_verts = parma::boundaryCopies(*t0_mesh, 0);
    results.push_back(r);
  }

  for (int i = 1; i <= 4; ++i) {
    auto pm = repro::distributeWith(w, base_assignment);
    const double start = pcu::now();
    const auto report =
        parma::improve(*pm, specs[i].priority, {.tolerance = 0.05});
    const double seconds = pcu::now() - start;
    pm->verify();

    TestResult r;
    r.name = specs[i].name;
    r.method = specs[i].priority;
    const auto dims = dimsOf(specs[i].priority);
    const auto bal = parma::allBalances(*pm);
    for (int d = 0; d <= 3; ++d) {
      if (!dims[static_cast<std::size_t>(d)]) continue;
      r.mean[static_cast<std::size_t>(d)] = bal[static_cast<std::size_t>(d)].mean;
      r.imb_pct[static_cast<std::size_t>(d)] =
          imbPct(bal[static_cast<std::size_t>(d)], t0_mean[static_cast<std::size_t>(d)]);
    }
    r.seconds = seconds;
    r.boundary_verts = parma::boundaryCopies(*pm, 0);
    results.push_back(r);
    (void)report;
  }

  // --- Table II ------------------------------------------------------------
  {
    repro::Table t({"AAA " + std::to_string(w.gen.mesh->count(3) / 1000) + "k",
                    "T0", "T1", "T2", "T3", "T4"});
    const char* dim_name[4] = {"Vtx", "Edge", "Face", "Rgn"};
    for (int d = 3; d >= 0; --d) {
      std::vector<std::string> mean_row{std::string("Mean") + dim_name[d]};
      std::vector<std::string> imb_row{std::string(dim_name[d]) + " Imb.%"};
      for (const auto& r : results) {
        const auto& m = r.mean[static_cast<std::size_t>(d)];
        const auto& i = r.imb_pct[static_cast<std::size_t>(d)];
        mean_row.push_back(m ? repro::fmt(*m, 0) : "-");
        imb_row.push_back(i ? repro::fmt(*i, 2) : "-");
      }
      t.row(mean_row).row(imb_row);
    }
    std::cout << "Table II: entity balance per test (imbalance % vs T0 "
                 "means; paper tolerance 5%)\n";
    t.print();
    std::cout << "\n";
  }

  // Boundary reduction claim.
  {
    repro::Table t({"Test", "Shared boundary vertices"});
    for (const auto& r : results)
      t.row({r.name, repro::fmt(r.boundary_verts)});
    std::cout << "Part-boundary size (paper: 'the total number of mesh "
                 "entities on part boundaries are reduced')\n";
    t.print();
    std::cout << "\n";
  }

  // --- Table III -----------------------------------------------------------
  {
    repro::Table t({"Test", "Time (sec.)"});
    for (const auto& r : results) t.row({r.name, repro::fmt(r.seconds, 3)});
    std::cout << "Table III: time usage, end-to-end rebalance (paper: T0 "
                 "249s, T1-T4 5.5-8.8s)\n";
    t.print();
  }
  // Under PUMI_TRACE=1 the table run doubles as a profiling session: show
  // where balancing time went per phase and flush the Chrome trace.
  if (pcu::trace::enabled()) {
    std::cout << "\n";
    pcu::printTraceReport(pcu::buildTraceReport());
    pcu::trace::flushNow();
  }
  return 0;
}
