/// \file bench_twolevel.cpp
/// \brief Reproduces the two-level, architecture-aware partitioning
/// experiment (paper Sec. II-D, Figs. 5-6).
///
/// The hybrid design partitions the mesh first across nodes, then across
/// the cores of each node; on-node part boundaries live in shared memory
/// (cheap, implicit) while off-node boundaries are explicit messages. We
/// compare a flat one-level partition against the two-level hybrid on the
/// same machine model and report (a) how many part-boundary entity copies
/// are on-node vs off-node and (b) measured message traffic for a ghosting
/// exchange — the reduction in off-node traffic is the benefit the paper's
/// design targets.

#include <iostream>

#include "meshgen/boxmesh.hpp"
#include "parma/metrics.hpp"
#include "part/localsplit.hpp"
#include "part/partition.hpp"
#include "repro/table.hpp"
#include "repro/workloads.hpp"

namespace {

struct Traffic {
  std::size_t on_node_boundary = 0;   // boundary copies shared on-node
  std::size_t off_node_boundary = 0;  // boundary copies shared off-node
  pcu::CommStats ghost_stats;
  double vtx_imbalance = 0.0;
};

/// Classify every boundary vertex copy as on-node or off-node, then run a
/// ghosting exchange and record its traffic.
Traffic measure(dist::PartedMesh& pm) {
  Traffic t;
  const auto& map = pm.network().partMap();
  for (dist::PartId p = 0; p < pm.parts(); ++p) {
    const auto& part = pm.part(p);
    for (const auto& [e, r] : part.remotes()) {
      if (core::topoDim(e.topo()) != 0) continue;
      for (const dist::Copy& c : r.copies) {
        if (map.sameNode(p, c.part))
          ++t.on_node_boundary;
        else
          ++t.off_node_boundary;
      }
    }
  }
  pm.network().resetStats();
  pm.ghostLayers(1);
  t.ghost_stats = pm.network().stats();
  pm.unghost();
  t.vtx_imbalance = parma::entityBalance(pm, 0).imbalance;
  return t;
}

}  // namespace

int main() {
  const auto scale = repro::scaleFromEnv();
  int n = 16, nodes = 8, cores = 8;
  switch (scale) {
    case repro::Scale::Small:
      n = 10;
      nodes = 4;
      cores = 4;
      break;
    case repro::Scale::Default:
      break;
    case repro::Scale::Large:
      n = 24;
      nodes = 8;
      cores = 16;
      break;
  }
  const int nparts = nodes * cores;
  std::cout << "== Two-level architecture-aware partitioning (Figs. 5-6), "
               "machine: "
            << nodes << " nodes x " << cores << " cores, " << nparts
            << " parts (scale: " << repro::scaleName(scale) << ") ==\n\n";

  auto gen = meshgen::boxTets(n, n, n);
  std::cout << "box mesh: " << gen.mesh->count(3) << " tets\n\n";
  const pcu::Machine machine(nodes, cores);

  // --- flat partition, topology-oblivious placement ----------------------
  // A scheduler that ignores the machine scatters consecutive parts across
  // nodes (round-robin) — the situation architecture awareness fixes.
  auto flat_assign =
      part::partition(*gen.mesh, nparts, part::Method::GraphRB);
  auto naive = dist::PartedMesh::distribute(*gen.mesh, gen.model.get(),
                                            flat_assign,
                                            dist::PartMap(nparts, machine));
  {
    std::vector<int> scattered(static_cast<std::size_t>(nparts));
    for (int p = 0; p < nparts; ++p)
      scattered[static_cast<std::size_t>(p)] =
          (p % nodes) * cores + (p / nodes);
    naive->network().setPartRanks(std::move(scattered));
  }
  const Traffic naive_t = measure(*naive);

  // --- flat partition, block (architecture-aware) placement ---------------
  auto flat = dist::PartedMesh::distribute(*gen.mesh, gen.model.get(),
                                           flat_assign,
                                           dist::PartMap(nparts, machine));
  const Traffic flat_t = measure(*flat);

  // --- two-level: partition to nodes, then split each node's part to its
  // cores (parts stay block-contiguous per node, matching Fig. 5) ---------
  auto node_assign = part::partition(*gen.mesh, nodes, part::Method::GraphRB);
  auto hybrid = dist::PartedMesh::distribute(*gen.mesh, gen.model.get(),
                                             node_assign,
                                             dist::PartMap(nodes, machine));
  const auto created = part::localSplit(*hybrid, cores, part::Method::GraphRB);
  // Pin every subpart to its parent node: node part p keeps rank p*cores
  // (core 0); its children (created in order, cores-1 per node) take the
  // node's remaining cores.
  {
    std::vector<int> ranks(static_cast<std::size_t>(hybrid->parts()), 0);
    for (int p = 0; p < nodes; ++p)
      ranks[static_cast<std::size_t>(p)] = p * cores;
    for (std::size_t i = 0; i < created.size(); ++i) {
      const int parent = static_cast<int>(i) / (cores - 1);
      const int child = static_cast<int>(i) % (cores - 1);
      ranks[static_cast<std::size_t>(created[i])] = parent * cores + child + 1;
    }
    hybrid->network().setPartRanks(std::move(ranks));
  }
  hybrid->verify();
  const Traffic hybrid_t = measure(*hybrid);

  repro::Table t({"Partition", "on-node boundary copies",
                  "off-node boundary copies", "ghost msgs off-node",
                  "ghost bytes off-node", "ghost bytes on-node",
                  "vtx imbalance"});
  t.row({"flat, scattered placement", repro::fmt(naive_t.on_node_boundary),
         repro::fmt(naive_t.off_node_boundary),
         repro::fmt(static_cast<std::size_t>(naive_t.ghost_stats.off_node_messages)),
         repro::fmt(static_cast<std::size_t>(naive_t.ghost_stats.off_node_bytes)),
         repro::fmt(static_cast<std::size_t>(naive_t.ghost_stats.on_node_bytes)),
         repro::fmt(naive_t.vtx_imbalance, 3)});
  t.row({"flat, block placement", repro::fmt(flat_t.on_node_boundary),
         repro::fmt(flat_t.off_node_boundary),
         repro::fmt(static_cast<std::size_t>(flat_t.ghost_stats.off_node_messages)),
         repro::fmt(static_cast<std::size_t>(flat_t.ghost_stats.off_node_bytes)),
         repro::fmt(static_cast<std::size_t>(flat_t.ghost_stats.on_node_bytes)),
         repro::fmt(flat_t.vtx_imbalance, 3)});
  t.row({"two-level (hybrid)", repro::fmt(hybrid_t.on_node_boundary),
         repro::fmt(hybrid_t.off_node_boundary),
         repro::fmt(static_cast<std::size_t>(hybrid_t.ghost_stats.off_node_messages)),
         repro::fmt(static_cast<std::size_t>(hybrid_t.ghost_stats.off_node_bytes)),
         repro::fmt(static_cast<std::size_t>(hybrid_t.ghost_stats.on_node_bytes)),
         repro::fmt(hybrid_t.vtx_imbalance, 3)});
  t.print();

  auto reduction = [&](const Traffic& base) {
    return base.ghost_stats.off_node_bytes > 0
               ? 100.0 * (1.0 - static_cast<double>(
                                    hybrid_t.ghost_stats.off_node_bytes) /
                                    static_cast<double>(
                                        base.ghost_stats.off_node_bytes))
               : 0.0;
  };
  std::cout << "\nOff-node ghost-exchange traffic reduction of two-level "
               "vs scattered placement: "
            << repro::fmt(reduction(naive_t), 1)
            << "%; vs block placement: " << repro::fmt(reduction(flat_t), 1)
            << "%\n";
  std::cout << "(Paper: on-node boundaries become implicit in shared memory; "
               "off-node boundaries shrink because nodes, not cores, are the "
               "first-level parts.)\n";
  return 0;
}
