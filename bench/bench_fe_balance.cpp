/// \file bench_fe_balance.cpp
/// \brief Why multi-criteria balance matters (paper Sec. I: "one step may
/// be using second order FE on the same mesh where vertex and edge balance
/// is more important to scaling than region balance").
///
/// The FE work a part performs tracks its degree-of-freedom count (vertex
/// stencil size), not its element count. We measure, per partition, the
/// peak per-part FE proxy work (stiffness nonzeros) and the actual
/// measured wall time of assembly+solve restricted to the peak part, for
/// the element-balanced baseline vs the ParMA vertex-balanced partition.

#include <iostream>

#include "parma/improve.hpp"
#include "parma/metrics.hpp"
#include "pcu/counters.hpp"
#include "repro/table.hpp"
#include "repro/workloads.hpp"
#include "solver/poisson.hpp"

namespace {

/// Peak per-part count of stiffness nonzeros (vertex + its edge
/// neighbours), the P1 FE work proxy.
std::size_t peakStencil(dist::PartedMesh& pm) {
  std::size_t peak = 0;
  for (dist::PartId p = 0; p < pm.parts(); ++p) {
    std::size_t nnz = 0;
    auto& mesh = pm.part(p).mesh();
    for (core::Ent v : mesh.entities(0)) nnz += 1 + mesh.up(v).size();
    peak = std::max(peak, nnz);
  }
  return peak;
}

double meanStencil(dist::PartedMesh& pm) {
  double total = 0.0;
  for (dist::PartId p = 0; p < pm.parts(); ++p) {
    auto& mesh = pm.part(p).mesh();
    for (core::Ent v : mesh.entities(0)) total += 1.0 + mesh.up(v).size();
  }
  return total / pm.parts();
}

}  // namespace

int main() {
  const auto scale = repro::scaleFromEnv();
  std::cout << "== FE work balance: why analyses want Vtx balance "
               "(Sec. I), scale: "
            << repro::scaleName(scale) << " ==\n\n";

  auto w = repro::makeAaa(scale);
  const auto assignment =
      part::partition(*w.gen.mesh, w.nparts, part::Method::HypergraphRB);

  repro::Table t({"Partition", "rgn imb %", "vtx imb %",
                  "peak FE stencil / mean", "solve time (s)"});

  auto measure = [&](const char* name, bool run_parma) {
    auto pm = repro::distributeWith(w, assignment);
    if (run_parma) parma::improve(*pm, "Vtx>Rgn", {.tolerance = 0.05});
    const double rgn = parma::entityBalance(*pm, 3).imbalancePercent();
    const double vtx = parma::entityBalance(*pm, 0).imbalancePercent();
    const double ratio = static_cast<double>(peakStencil(*pm)) / meanStencil(*pm);
    const double start = pcu::now();
    solver::solvePoisson(
        *pm, [](const common::Vec3&) { return 1.0; },
        [](const common::Vec3&) { return 0.0; },
        {.max_iterations = 400, .tolerance = 1e-8});
    const double secs = pcu::now() - start;
    t.row({name, repro::fmt(rgn, 2), repro::fmt(vtx, 2),
           repro::fmt(ratio, 3), repro::fmt(secs, 2)});
  };

  measure("hypergraph (element balanced)", false);
  measure("+ ParMA Vtx>Rgn", true);
  t.print();
  std::cout << "\n(The peak-to-mean FE stencil ratio bounds strong scaling "
               "of the analysis: the vertex-balanced partition lowers it "
               "while element balance stays within tolerance.)\n";
  return 0;
}
