/// \file chaos_checkpoint.cpp
/// \brief CI damage injector: writes a real checkpoint, then vandalizes it
/// in a named, deterministic way so the fsck exit-code contract (0 intact /
/// 1 lost / 2 malformed) can be asserted end to end against genuine bytes.
///
/// Usage:
///   chaos_checkpoint <mode> <dir> [seed]
///
/// Modes (what a later `fsck_checkpoint <dir>` must conclude):
///   clean       checkpoint a mesh, damage nothing           -> exit 0
///   repairable  flip one byte in ONE copy of one chunk      -> exit 0,
///               chunks_repaired >= 1 (the buddy replica heals it)
///   lost        flip a byte in BOTH copies of one chunk     -> exit 1,
///               lost_parts names the victim
///   malformed   truncate the MANIFEST mid-record            -> exit 2
///
/// Prints a one-object JSON description of the damage on stdout so CI can
/// cross-check fsck's report (victim part, chunk kind, byte offsets). The
/// victim choice is pure in the seed: the same invocation always damages
/// the same bytes.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "dist/checkpoint.hpp"
#include "dist/pario.hpp"
#include "dist/partedmesh.hpp"
#include "meshgen/boxmesh.hpp"
#include "part/partition.hpp"
#include "pcu/error.hpp"
#include "pcu/machine.hpp"

namespace {

namespace pario = dist::pario;

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s clean|repairable|lost|malformed <dir> [seed]\n",
               argv0);
}

void flipByte(const std::string& path, std::uint64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  if (!f) throw pcu::Error(pcu::ErrorCode::kValidation, -1,
                           "chaos_checkpoint: cannot open " + path);
  f.seekg(static_cast<std::streamoff>(offset));
  char b = 0;
  f.read(&b, 1);
  b = static_cast<char>(b ^ 0x5a);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&b, 1);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3 || argc > 4) {
    usage(argv[0]);
    return 2;
  }
  const std::string mode = argv[1];
  const std::string dir = argv[2];
  const std::uint64_t seed = argc == 4 ? std::strtoull(argv[3], nullptr, 10)
                                       : 7;
  if (mode != "clean" && mode != "repairable" && mode != "lost" &&
      mode != "malformed") {
    usage(argv[0]);
    return 2;
  }

  try {
    // A real mesh, really partitioned, really checkpointed: the damage
    // lands in bytes the restore path genuinely depends on.
    const int nparts = 4;
    auto gen = meshgen::boxTris(6, 6);
    const auto assign =
        part::partition(*gen.mesh, nparts, part::Method::RCB);
    auto pm = dist::PartedMesh::distribute(
        *gen.mesh, gen.model.get(), assign,
        dist::PartMap(nparts, pcu::Machine::flat(nparts)));
    std::filesystem::remove_all(dir);
    dist::checkpoint(*pm, dir);

    const auto idx = pario::loadIndex(dir);
    const std::string image = dir + "/" + idx.image;
    const int victim = static_cast<int>(seed % nparts);
    const auto& slot =
        (seed / nparts) % 2 == 0
            ? idx.parts[static_cast<std::size_t>(victim)].mesh
            : idx.parts[static_cast<std::size_t>(victim)].meta;
    const char* kind = (seed / nparts) % 2 == 0 ? "mesh" : "meta";
    const std::uint64_t payload_at =
        pario::kChunkHeaderBytes + (slot.length > 0 ? seed % slot.length : 0);

    std::uint64_t damaged_primary = 0;
    std::uint64_t damaged_replica = 0;
    if (mode == "repairable") {
      damaged_primary = slot.primary + payload_at;
      flipByte(image, damaged_primary);
    } else if (mode == "lost") {
      damaged_primary = slot.primary + payload_at;
      damaged_replica = slot.replica + payload_at;
      flipByte(image, damaged_primary);
      flipByte(image, damaged_replica);
    } else if (mode == "malformed") {
      const auto manifest = dir + "/MANIFEST";
      const auto size = std::filesystem::file_size(manifest);
      std::filesystem::resize_file(manifest, size / 2);
    }

    std::printf("{\n");
    std::printf("  \"dir\": \"%s\",\n", dir.c_str());
    std::printf("  \"mode\": \"%s\",\n", mode.c_str());
    std::printf("  \"seed\": %llu,\n",
                static_cast<unsigned long long>(seed));
    std::printf("  \"parts\": %d,\n", nparts);
    std::printf("  \"victim_part\": %d,\n",
                mode == "clean" || mode == "malformed" ? -1 : victim);
    std::printf("  \"victim_chunk\": \"%s\",\n", kind);
    std::printf("  \"damaged_offsets\": [");
    if (damaged_primary != 0)
      std::printf("%llu", static_cast<unsigned long long>(damaged_primary));
    if (damaged_replica != 0)
      std::printf(", %llu", static_cast<unsigned long long>(damaged_replica));
    std::printf("]\n");
    std::printf("}\n");
    return 0;
  } catch (const pcu::Error& e) {
    std::fprintf(stderr, "chaos_checkpoint: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "chaos_checkpoint: %s\n", e.what());
    return 2;
  }
}
