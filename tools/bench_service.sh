#!/usr/bin/env bash
# Multi-tenant service benchmark smoke: runs the service acceptance demo
# and the svc isolation/overload test suites, and merges the results into
# one BENCH_SERVICE.json.
#
#   * service_demo measures the uncontended baseline p50/p99, replays the
#     tenant-isolation digest matrix (chaotic tenant A + clean tenant B,
#     concurrent, seeds replayed twice), runs the blast-radius incident
#     (rank killed inside one tenant), and offers ~2x sustained capacity.
#   * The merge script asserts the ISSUE acceptance lines: every clean-
#     tenant digest identical to its solo run with zero observed faults,
#     exactly one rank lost (and reclaimed) in the blast-radius incident,
#     no aborts under overload, the queue bound held, every shed job named,
#     and admitted p99 <= 3x the uncontended p99.
#   * test_svc's isolation + overload suites are replayed and their
#     pass/fail becomes suite_success_rate (asserted == 1.0).
#
# Usage: tools/bench_service.sh <build-dir> [out.json]
# The build dir must contain examples/service_demo and tests/test_svc
# (build with -DCMAKE_BUILD_TYPE=Release for meaningful numbers).
set -euo pipefail

BUILD="${1:?usage: tools/bench_service.sh <build-dir> [out.json]}"
OUT="${2:-BENCH_SERVICE.json}"

# Fail fast, clearly: a missing build tree or binary means "build first",
# not a python traceback halfway through the merge.
if [[ ! -d "$BUILD" ]]; then
  echo "error: build dir '$BUILD' not found; configure and build first:" >&2
  echo "  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j" >&2
  exit 1
fi
for bin in examples/service_demo tests/test_svc; do
  if [[ ! -x "$BUILD/$bin" ]]; then
    echo "error: missing binary '$BUILD/$bin'; rebuild: cmake --build \"$BUILD\" -j" >&2
    exit 1
  fi
done

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# The acceptance scenario: one JSON object on stdout. The demo exits
# nonzero if any of its own invariants fail; keep its verdict.
DEMO_OK=1
"$BUILD/examples/service_demo" > "$TMP/service.json" || DEMO_OK=0

# The isolation digest matrix and the overload suite, replayed.
SUITE_OK=1
"$BUILD/tests/test_svc" --gtest_filter=\
'Isolation.ChaoticTenantNeverPerturbsCleanSiblingAcrossSeedMatrix:'\
'BlastRadius.RankFailureShrinksThePoolAndSparesTheSibling:'\
'Overload.TwoXCapacityDegradesStructurallyNotByAborting:'\
'SplitDomains.*' >&2 || SUITE_OK=0

python3 - "$TMP/service.json" "$DEMO_OK" "$SUITE_OK" "$OUT" <<'EOF'
import json, sys

src, demo_ok, suite_ok, out = (
    sys.argv[1], int(sys.argv[2]), int(sys.argv[3]), sys.argv[4])
demo = json.load(open(src))
summary = {"description": (
    "Multi-tenant mesh service: tenant isolation, admission control and "
    "overload shedding. isolation replays a seed matrix with a chaotic "
    "tenant (drop+corrupt, tenant-scoped reliable delivery) concurrent "
    "with a clean tenant and compares the clean tenant's element digest "
    "against its solo run; blast_radius kills a rank inside one tenant; "
    "overload offers ~2x sustained capacity against the bounded queue. "
    "Produced by tools/bench_service.sh.")}

iso = demo["isolation"]
assert iso["digest_matches"] == iso["expected_matches"], (
    f"only {iso['digest_matches']}/{iso['expected_matches']} clean-tenant "
    "digests matched the solo run: tenant isolation is broken")
assert iso["clean_failovers"] == 0 and iso["clean_faults_recovered"] == 0, \
    "the clean tenant observed its sibling's faults"
assert iso["chaotic_completed"] == iso["expected_matches"], \
    "the chaotic tenant did not recover every seeded run"

blast = demo["blast_radius"]
assert blast["failovers"] == 1, \
    f"expected exactly 1 absorbed failover, saw {blast['failovers']}"
assert blast["ranks_dead"] == 1, \
    f"the ledger reclaimed {blast['ranks_dead']} ranks, expected 1"
assert blast["sibling_digest_match"], \
    "the bystander tenant was disturbed by the sibling's rank failure"

ov = demo["overload"]
assert ov["aborts"] == 0, f"{ov['aborts']} aborts under overload"
assert ov["completed"] + ov["shed"] + ov["rejected"] == ov["offered"], \
    "overload lost track of a job"
assert ov["peak_queue_depth"] <= ov["queue_capacity"], (
    f"queue bound broken: peak {ov['peak_queue_depth']} > "
    f"capacity {ov['queue_capacity']}")
assert len(ov["shed_jobs"]) == ov["shed"], \
    "shed jobs were not all named"
base_p99 = demo["uncontended"]["p99_ms"]
assert ov["admitted_p99_ms"] <= 3 * base_p99, (
    f"admitted p99 {ov['admitted_p99_ms']} ms > 3x uncontended "
    f"{base_p99} ms")

summary["uncontended"] = demo["uncontended"]
summary["isolation"] = iso
summary["blast_radius"] = blast
summary["overload"] = ov
summary["demo_success"] = 1.0 if demo_ok else 0.0
summary["suite_success_rate"] = 1.0 if suite_ok else 0.0
assert summary["demo_success"] == 1.0, \
    "service_demo reported a violated invariant"
assert summary["suite_success_rate"] == 1.0, \
    "the svc isolation/overload suites did not pass"

json.dump(summary, open(out, "w"), indent=2)
print(f"wrote {out}")
EOF
