#!/usr/bin/env bash
# Data-layout benchmark gate: measures the CSR/flat-table hot paths against
# their legacy node-based counterparts and asserts the ISSUE 8 speedup bars.
#
#   * bench_adjacency: BM_VertexToRegions (allocating adjacent()) vs
#     BM_VertexToRegionsSpan (zero-copy CSR row) and BM_VertexToRegionsInto
#     (no-allocation scratch vector) at the 24^3 box (~83k tets).
#     Gate: span >= 2x over legacy.
#   * bench_migration: BM_PlanApplyLegacy (std::unordered_map/set +
#     allocating adjacent()) vs BM_PlanApplyFlat (SIMD open-addressing
#     FlatMap/FlatSet + adjacentInto()) on the phase-A plan-application
#     workload. The binary itself verifies both variants fold to the same
#     checksum before timing. Gate: flat >= 1.5x over legacy.
#
# Usage: tools/bench_layout.sh <build-dir> [out.json]
# Build Release for meaningful numbers:
#   cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j
set -euo pipefail

BUILD="${1:?usage: tools/bench_layout.sh <build-dir> [out.json]}"
OUT="${2:-BENCH_LAYOUT.json}"

if [[ ! -d "$BUILD" ]]; then
  echo "error: build dir '$BUILD' not found; configure and build first:" >&2
  echo "  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j" >&2
  exit 1
fi
for bin in bench/bench_adjacency bench/bench_migration; do
  if [[ ! -x "$BUILD/$bin" ]]; then
    echo "error: missing binary '$BUILD/$bin'; rebuild: cmake --build \"$BUILD\" -j" >&2
    exit 1
  fi
done

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

REPS="${PUMI_BENCH_REPS:-5}"

"$BUILD/bench/bench_adjacency" \
  --benchmark_filter='BM_VertexToRegions(Span|Into)?/24$' \
  --benchmark_repetitions="$REPS" \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json > "$TMP/adjacency.json"

"$BUILD/bench/bench_migration" \
  --benchmark_filter='BM_PlanApply(Legacy|Flat)$' \
  --benchmark_repetitions="$REPS" \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json > "$TMP/migration.json"

python3 - "$TMP/adjacency.json" "$TMP/migration.json" "$OUT" <<'EOF'
import json, sys

adj_path, mig_path, out = sys.argv[1], sys.argv[2], sys.argv[3]

def median_cpu(path, name):
    doc = json.load(open(path))
    rows = [b for b in doc["benchmarks"] if b["name"].startswith(name)]
    for b in rows:
        assert not b.get("error_occurred"), (
            f"{b['name']} errored: {b.get('error_message')}")
    med = [b for b in rows if b["name"] == name + "_median"]
    if not med:  # single-repetition runs emit no aggregates
        med = [b for b in rows if b["name"] == name]
    assert med, f"benchmark {name} missing from {path}"
    return float(med[0]["cpu_time"]), med[0]["time_unit"]

legacy, u0 = median_cpu(adj_path, "BM_VertexToRegions/24")
span, u1 = median_cpu(adj_path, "BM_VertexToRegionsSpan/24")
into, u2 = median_cpu(adj_path, "BM_VertexToRegionsInto/24")
assert u0 == u1 == u2, "adjacency benches use mixed time units"

plan_legacy, u3 = median_cpu(mig_path, "BM_PlanApplyLegacy")
plan_flat, u4 = median_cpu(mig_path, "BM_PlanApplyFlat")
assert u3 == u4, "migration benches use mixed time units"

adj_speedup = legacy / span
into_speedup = legacy / into
plan_speedup = plan_legacy / plan_flat

summary = {
    "description": (
        "Hot-path data layout: CSR adjacency view + SIMD open-addressing "
        "tables vs the legacy allocating adjacent() and std::unordered "
        "containers. adjacency_* is per-query vertex->regions time on the "
        "24^3 box tet mesh (~83k tets, median of repeated runs); "
        "plan_apply_* is the migrate() phase-A plan-application workload "
        "on a 8-part 24.5k-tet mesh, checksum-verified equivalent inside "
        "the binary. Produced by tools/bench_layout.sh."),
    "adjacency": {
        "legacy_cpu": legacy, "span_cpu": span, "into_cpu": into,
        "time_unit": u0,
        "span_speedup": adj_speedup, "into_speedup": into_speedup,
    },
    "plan_apply": {
        "legacy_cpu": plan_legacy, "flat_cpu": plan_flat, "time_unit": u3,
        "flat_speedup": plan_speedup,
    },
}

assert adj_speedup >= 2.0, (
    f"CSR span adjacency speedup {adj_speedup:.2f}x < required 2.0x")
assert plan_speedup >= 1.5, (
    f"flat plan-application speedup {plan_speedup:.2f}x < required 1.5x")

json.dump(summary, open(out, "w"), indent=2)
print(f"adjacency span {adj_speedup:.2f}x (into {into_speedup:.2f}x), "
      f"plan apply {plan_speedup:.2f}x")
print(f"wrote {out}")
EOF
