/// \file fsck_checkpoint.cpp
/// \brief Offline checkpoint scrubber CLI over dist::pario::scrub.
///
/// Verifies every chunk copy of a checkpoint image against its MANIFEST
/// (header fields, payload CRC) and rewrites any bad copy from its good
/// buddy replica. Prints a one-object JSON report on stdout.
///
/// Usage:
///   fsck_checkpoint <checkpoint-dir>        verify and repair
///   fsck_checkpoint --check <checkpoint-dir> verify only (no writes)
///
/// Exit status: 0 when the checkpoint is fully intact (possibly after
/// repairs), 1 when at least one chunk lost both copies (a subsequent
/// restore needs OnLoss::kPartial), 2 for a missing/malformed checkpoint
/// or bad usage.
#include <cstdio>
#include <cstring>
#include <string>

#include "dist/pario.hpp"
#include "pcu/error.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [--check] <checkpoint-dir>\n", argv0);
}

int report(const char* dir, const dist::pario::ScrubReport& r, bool checked) {
  std::printf("{\n");
  std::printf("  \"dir\": \"%s\",\n", dir);
  std::printf("  \"mode\": \"%s\",\n", checked ? "check" : "repair");
  std::printf("  \"chunks_ok\": %llu,\n",
              static_cast<unsigned long long>(r.chunks_ok));
  std::printf("  \"chunks_repaired\": %llu,\n",
              static_cast<unsigned long long>(r.chunks_repaired));
  std::printf("  \"chunks_lost\": %llu,\n",
              static_cast<unsigned long long>(r.chunks_lost));
  std::printf("  \"lost_parts\": [");
  for (std::size_t i = 0; i < r.lost_parts.size(); ++i)
    std::printf("%s%d", i ? ", " : "", r.lost_parts[i]);
  std::printf("],\n");
  std::printf("  \"clean\": %s\n", r.clean() ? "true" : "false");
  std::printf("}\n");
  return r.clean() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool check_only = false;
  const char* dir = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check_only = true;
    } else if (argv[i][0] == '-') {
      usage(argv[0]);
      return 2;
    } else if (dir == nullptr) {
      dir = argv[i];
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (dir == nullptr) {
    usage(argv[0]);
    return 2;
  }

  try {
    if (check_only) {
      // valid() never repairs; report shape matches the scrub path so
      // callers can parse one format. Lost detail needs the repair mode.
      const bool ok = dist::pario::valid(dir);
      dist::pario::ScrubReport r;
      r.chunks_lost = ok ? 0 : 1;
      if (!ok) {
        // Distinguish "damaged" from "not a checkpoint at all".
        (void)dist::pario::loadIndex(dir);  // throws kValidation if malformed
      }
      return report(dir, r, true);
    }
    const auto r = dist::pario::scrub(dir);
    return report(dir, r, false);
  } catch (const pcu::Error& e) {
    std::fprintf(stderr, "fsck_checkpoint: %s\n", e.what());
    return 2;
  }
}
