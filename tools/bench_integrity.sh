#!/usr/bin/env bash
# Memory-integrity benchmark smoke: the cost of wearing the
# silent-corruption armor, plus the seeded memflip repair matrix, merged
# into one BENCH_INTEGRITY.json.
#
#   * examples/integrity_demo runs the same svc-job-shaped rebalance
#     epochs (migrate + bounded balance + fixed-iteration solves) bare
#     and armored. The armor self-times its audit and seal passes on
#     every exit path, so the headline overhead is a direct measurement
#     — armor_self / (armored_total - armor_self) — not a noisy A/B
#     subtraction (the A/B delta is recorded alongside as a
#     cross-check). The merge asserts audit overhead <= 5%.
#   * The same binary replays the 20-seed memflip matrix (target family
#     and boundary phase cycled from the seed, flips planted in live
#     sealed state mid-workload): every injected flip must be detected
#     and repaired through the ladder to a digest-identical mesh. The
#     merge asserts success_rate == 1.0 with a nonzero injected count.
#
# Usage: tools/bench_integrity.sh <build-dir> [out.json]
# Build with -DCMAKE_BUILD_TYPE=Release for meaningful numbers.
set -euo pipefail

BUILD="${1:?usage: tools/bench_integrity.sh <build-dir> [out.json]}"
OUT="${2:-BENCH_INTEGRITY.json}"

if [[ ! -d "$BUILD" ]]; then
  echo "error: build dir '$BUILD' not found; configure and build first:" >&2
  echo "  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j" >&2
  exit 1
fi
if [[ ! -x "$BUILD/examples/integrity_demo" ]]; then
  echo "error: missing binary '$BUILD/examples/integrity_demo'; rebuild: cmake --build \"$BUILD\" -j" >&2
  exit 1
fi
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

"$BUILD/examples/integrity_demo" > "$TMP/integrity.json"

python3 - "$TMP/integrity.json" "$OUT" <<'EOF'
import json, sys

src, out = sys.argv[1], sys.argv[2]
demo = json.load(open(src))
summary = {"description": (
    "Silent-corruption armor priced over svc-job-shaped rebalance epochs "
    "(one seeded migration, a two-round balance pass, then a block of "
    "fixed-iteration Poisson solves per epoch — adaptive codes solve "
    "every timestep and rebalance every ten-or-so). audit.overhead_pct "
    "is the armor's self-timed wall share: every auditAndRepair and "
    "sealAndMaybeInject accumulates its own time, so the number prices "
    "the version-gated incremental rehash, the canonical external "
    "streams, and the block-CRC ledgers directly; ab_delta_pct is the "
    "whole-run A/B subtraction, recorded as a cross-check only. "
    "full_armor adds the buddy-journal replica refresh at every seal "
    "(the tier-2 repair source; replication proper is priced by the "
    "failover bench). repair replays the 20-seed memflip matrix: "
    "deterministic flip bursts planted in live sealed state "
    "mid-workload, target family (pool/tag/remotes/csr) and boundary "
    "phase cycled from the seed; every seed must end digest-identical "
    "to its pristine mesh with zero unrepaired parts. Produced by "
    "tools/bench_integrity.sh."),
    **demo}

# The headline claims, asserted rather than just recorded: wearing the
# armor costs <= 5% of the application's wall time, and the memflip
# matrix repairs every seed.
overhead = demo["audit"]["overhead_pct"]
assert overhead <= 5.0, \
    f"audit overhead {overhead:.2f}% > 5% of armored application time"
assert demo["audit"]["audits"] > 0 and demo["audit"]["seals"] > 0, \
    "the armored run crossed no commit points: nothing was measured"
assert demo["audit"]["bytes_hashed"] > 0, \
    "the ledgers hashed nothing: integrity was not actually active"

rep = demo["repair"]
assert rep["success_rate"] == 1.0, (
    f"memflip repair succeeded on only {rep['successes']}/{rep['seeds']} "
    "seeds")
assert rep["flips_injected"] > 0, \
    "the matrix injected no flips: the campaign tested nothing"
assert rep["mismatches"] > 0, \
    "flips were injected but never detected: silent corruption"

json.dump(summary, open(out, "w"), indent=2)
print(f"wrote {out}: audit overhead {overhead:.2f}%, "
      f"repair {rep['successes']}/{rep['seeds']}, "
      f"{rep['flips_injected']} flips injected")
EOF
