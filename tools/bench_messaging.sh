#!/usr/bin/env bash
# Messaging benchmark smoke: runs the pcu phased-exchange A/B benches and
# the migration bench with quick settings and merges the results into one
# BENCH_MESSAGING.json summarizing messages/phase, bytes/phase and ns/op
# for the coalesced vs uncoalesced transport.
#
# Usage: tools/bench_messaging.sh <build-dir> [out.json]
# The build dir must contain bench/bench_pcu_msg and bench/bench_migration
# (build with -DCMAKE_BUILD_TYPE=Release for meaningful numbers).
set -euo pipefail

BUILD="${1:?usage: tools/bench_messaging.sh <build-dir> [out.json]}"
OUT="${2:-BENCH_MESSAGING.json}"

# Fail fast, clearly: a missing build tree or binary means "build first",
# not a python traceback halfway through the merge.
if [[ ! -d "$BUILD" ]]; then
  echo "error: build dir '$BUILD' not found; configure and build first:" >&2
  echo "  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j" >&2
  exit 1
fi
for bin in bench/bench_pcu_msg bench/bench_migration; do
  if [[ ! -x "$BUILD/$bin" ]]; then
    echo "error: missing binary '$BUILD/$bin'; rebuild: cmake --build \"$BUILD\" -j" >&2
    exit 1
  fi
done
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# Note: this google-benchmark build takes --benchmark_min_time as a plain
# double (seconds), not the newer "0.05x"/"0.05s" suffixed forms.
"$BUILD/bench/bench_pcu_msg" \
  --benchmark_filter='BM_PhasedExchange(Coalesced|Uncoalesced)' \
  --benchmark_min_time=0.05 \
  --benchmark_out="$TMP/pcu.json" --benchmark_out_format=json >&2
"$BUILD/bench/bench_migration" \
  --benchmark_filter='BM_MigrateSlabAcrossParts' \
  --benchmark_min_time=0.05 \
  --benchmark_out="$TMP/migration.json" --benchmark_out_format=json >&2

python3 - "$TMP/pcu.json" "$TMP/migration.json" "$OUT" <<'EOF'
import json, sys

pcu, migration, out = sys.argv[1], sys.argv[2], sys.argv[3]
summary = {"description": (
    "Per-peer message coalescing A/B: logical = payloads posted by the "
    "operations, physical = transport messages after coalescing (segments "
    "of length-prefixed sub-messages). Produced by tools/bench_messaging.sh."),
    "phased_exchange": [], "migration": []}

for b in json.load(open(pcu))["benchmarks"]:
    name, _, arg = b["name"].partition("/")
    summary["phased_exchange"].append({
        "bench": name,
        "ranks": int(arg),
        "coalesced": "Uncoalesced" not in name,
        "ns_per_op": round(b["real_time"], 1),
        "logical_msgs_per_phase": b["logical_msgs_per_phase"],
        "physical_msgs_per_phase": b["physical_msgs_per_phase"],
        "logical_bytes_per_phase": b["logical_bytes_per_phase"],
        "physical_bytes_per_phase": b["physical_bytes_per_phase"],
    })

for b in json.load(open(migration))["benchmarks"]:
    name, _, arg = b["name"].partition("/")
    summary["migration"].append({
        "bench": name,
        "parts": int(arg),
        "ms_per_op": round(b["real_time"] / 1e6, 2),
        "logical_msgs": b["logical_msgs"],
        "physical_msgs": b["physical_msgs"],
    })

# The headline claim: >= 2x fewer physical messages per phase with >= 8
# payloads per peer. Fail the smoke run if it ever stops holding.
by_ranks = {}
for row in summary["phased_exchange"]:
    by_ranks.setdefault(row["ranks"], {})[row["coalesced"]] = row
for ranks, ab in sorted(by_ranks.items()):
    if True in ab and False in ab:
        reduction = (ab[False]["physical_msgs_per_phase"] /
                     ab[True]["physical_msgs_per_phase"])
        ab[True]["physical_reduction_vs_uncoalesced"] = round(reduction, 2)
        assert reduction >= 2.0, (
            f"{ranks} ranks: physical reduction {reduction:.2f}x < 2x")

json.dump(summary, open(out, "w"), indent=2)
print(f"wrote {out}")
EOF
