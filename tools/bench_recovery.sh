#!/usr/bin/env bash
# Recovery benchmark smoke: measures the reliable-delivery (ARQ) tax, the
# end-to-end recovery success rate, and the rank-failure MTTR, and merges
# them into one BENCH_RECOVERY.json.
#
#   * BM_PingPongReliable/{payload}/{drop_permille} runs the hardened
#     ping-pong with reliable mode on; comparing the 10-permille (1% drop)
#     median against the 0-permille median of the same payload yields the
#     retransmit tax. The merge script asserts it stays under 10%.
#   * The 20-seed chaos suites from test_recovery are replayed and their
#     pass/fail becomes success_rate (asserted == 1.0): every seeded
#     transient fault schedule must complete with zero aborts.
#   * failover_demo runs the rank-failure acceptance scenario (kill 1 of 16
#     mid-migrate, hang 1 of 16 mid-balance) and reports the measured
#     mean-time-to-recovery breakdown (detect + evacuate + rebalance) as
#     rank_failure_mttr. The merge asserts zero lost elements and that hang
#     detection stays within 3x the configured heartbeat deadline.
#
# Usage: tools/bench_recovery.sh <build-dir> [out.json]
# The build dir must contain bench/bench_pcu_msg, tests/test_recovery and
# examples/failover_demo (build with -DCMAKE_BUILD_TYPE=Release for
# meaningful numbers).
set -euo pipefail

BUILD="${1:?usage: tools/bench_recovery.sh <build-dir> [out.json]}"
OUT="${2:-BENCH_RECOVERY.json}"

# Fail fast, clearly: a missing build tree or binary means "build first",
# not a python traceback halfway through the merge.
if [[ ! -d "$BUILD" ]]; then
  echo "error: build dir '$BUILD' not found; configure and build first:" >&2
  echo "  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j" >&2
  exit 1
fi
for bin in bench/bench_pcu_msg tests/test_recovery examples/failover_demo; do
  if [[ ! -x "$BUILD/$bin" ]]; then
    echo "error: missing binary '$BUILD/$bin'; rebuild: cmake --build \"$BUILD\" -j" >&2
    exit 1
  fi
done
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# Note: this google-benchmark build takes --benchmark_min_time as a plain
# double (seconds), not the newer "0.05x"/"0.05s" suffixed forms.
"$BUILD/bench/bench_pcu_msg" \
  --benchmark_filter='BM_PingPongReliable' \
  --benchmark_min_time=0.05 \
  --benchmark_repetitions=5 \
  --benchmark_out="$TMP/reliable.json" --benchmark_out_format=json >&2

# The acceptance chaos matrix: 20 seeds of mixed transient faults at the
# pcu layer and the dist layer, reliability on, zero aborts tolerated.
SUCCESS=1
"$BUILD/tests/test_recovery" --gtest_filter=\
'PcuReliable.TransientChaosDeliversEverySeed:'\
'DistReliable.TwentySeedsMixedChaosZeroAborts' >&2 || SUCCESS=0

# Rank-failure MTTR: the demo prints one JSON object on stdout with the
# detect/evacuate/rebalance breakdown for both incidents.
"$BUILD/examples/failover_demo" > "$TMP/failover.json"

python3 - "$TMP/reliable.json" "$SUCCESS" "$OUT" "$TMP/failover.json" <<'EOF'
import json, sys

src, success, out = sys.argv[1], int(sys.argv[2]), sys.argv[3]
failover_src = sys.argv[4]
summary = {"description": (
    "Reliable-delivery (ARQ) overhead and recovery success rate. "
    "retransmit_tax compares the median reliable ping-pong time at 1% "
    "message drop against the same run with no injected loss; "
    "success_rate is the fraction of seeded 20-seed chaos suites that "
    "complete with zero aborts; rank_failure_mttr is the measured "
    "detect/evacuate/rebalance breakdown of the kill-1-of-16-mid-migrate "
    "and hang-1-of-16-mid-balance acceptance scenario. Produced by "
    "tools/bench_recovery.sh."),
    "ping_pong_reliable": [], "success_rate": None}

# With --benchmark_repetitions the JSON carries per-repetition rows plus
# aggregate rows; keep the medians.
rows = {}
for b in json.load(open(src))["benchmarks"]:
    if b.get("aggregate_name") != "median":
        continue
    name = b["run_name"]  # BM_PingPongReliable/<payload>/<permille>
    _, payload, permille = name.split("/")
    rows[(int(payload), int(permille))] = b
    summary["ping_pong_reliable"].append({
        "payload_bytes": int(payload),
        "drop_permille": int(permille),
        "median_ns_per_op": round(b["real_time"], 1),
    })

# The headline claim: <= 10% retransmit tax at 1% drop. Fail the smoke
# run if it ever stops holding.
for (payload, permille), b in sorted(rows.items()):
    if permille == 0:
        continue
    clean = rows.get((payload, 0))
    assert clean is not None, f"no clean baseline for payload {payload}"
    tax = b["real_time"] / clean["real_time"] - 1.0
    for row in summary["ping_pong_reliable"]:
        if (row["payload_bytes"], row["drop_permille"]) == (payload, permille):
            row["retransmit_tax_vs_clean"] = round(tax, 4)
    assert tax < 0.10, (
        f"payload {payload} at {permille/10:.1f}% drop: "
        f"retransmit tax {tax:.1%} >= 10%")

summary["success_rate"] = 1.0 if success else 0.0
assert summary["success_rate"] == 1.0, \
    "seeded chaos suites did not complete with zero aborts"

# Rank-failure MTTR: zero lost elements is the hard line; hang detection
# must not wildly overshoot the heartbeat deadline either (3x covers CI
# scheduling noise, not a broken detector).
mttr = json.load(open(failover_src))
assert mttr["elements_lost"] == 0, \
    f"rank-failure scenario lost {mttr['elements_lost']} elements"
deadline = mttr["deadline_ms"]
hang_detect = mttr["hang_mid_balance"]["detect_ms"]
assert hang_detect >= deadline, \
    f"hang detected in {hang_detect} ms, before the {deadline} ms deadline"
assert hang_detect <= 3 * deadline, \
    f"hang detection took {hang_detect} ms vs {deadline} ms deadline"
summary["rank_failure_mttr"] = mttr

json.dump(summary, open(out, "w"), indent=2)
print(f"wrote {out}")
EOF
