#!/usr/bin/env bash
# Elastic scale-out benchmark smoke: measures the join-to-rebalanced
# latency of rank join + heavy-part splitting and merges it into one
# BENCH_ELASTIC.json.
#
#   * elastic_demo runs the acceptance scenario at two scales: 8 -> 12
#     ranks triggered by a join=4@2 fault-plan token firing mid-migrate,
#     and 16 -> 24 via a direct elasticJoin call. For each scale it
#     reports the admit/split breakdown and the total join-to-rebalanced
#     latency.
#   * The merge script asserts the hard acceptance lines at BOTH scales:
#     elements_lost == 0 (geometric digest gate) and post-join element
#     imbalance <= 1.10.
#   * test_elastic's property suite (20 seeded grow/balance/shrink/grow
#     cycles on 2D and 3D meshes) is replayed and its pass/fail becomes
#     cycle_success_rate (asserted == 1.0).
#
# Usage: tools/bench_elastic.sh <build-dir> [out.json]
# The build dir must contain examples/elastic_demo and tests/test_elastic
# (build with -DCMAKE_BUILD_TYPE=Release for meaningful numbers).
set -euo pipefail

BUILD="${1:?usage: tools/bench_elastic.sh <build-dir> [out.json]}"
OUT="${2:-BENCH_ELASTIC.json}"

# Fail fast, clearly: a missing build tree or binary means "build first",
# not a python traceback halfway through the merge.
if [[ ! -d "$BUILD" ]]; then
  echo "error: build dir '$BUILD' not found; configure and build first:" >&2
  echo "  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j" >&2
  exit 1
fi
for bin in examples/elastic_demo tests/test_elastic; do
  if [[ ! -x "$BUILD/$bin" ]]; then
    echo "error: missing binary '$BUILD/$bin'; rebuild: cmake --build \"$BUILD\" -j" >&2
    exit 1
  fi
done
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# The acceptance scenario: both scales, one JSON object on stdout.
"$BUILD/examples/elastic_demo" > "$TMP/elastic.json"

# The grow/shrink property suite: 20 seeded cycles, zero losses tolerated.
SUCCESS=1
"$BUILD/tests/test_elastic" \
  --gtest_filter='Property/GrowShrinkCycle.*' >&2 || SUCCESS=0

python3 - "$TMP/elastic.json" "$SUCCESS" "$OUT" <<'EOF'
import json, sys

src, success, out = sys.argv[1], int(sys.argv[2]), sys.argv[3]
demo = json.load(open(src))
summary = {"description": (
    "Elastic scale-out: join-to-rebalanced latency of rank join + "
    "heavy-part splitting. join_8_to_12 is an 8-rank mesh receiving "
    "join=4@2 mid-migrate; join_16_to_24 is a direct elasticJoin(8) on "
    "16 ranks. Hard lines at both scales: elements_lost == 0 and "
    "post-join element imbalance <= 1.10. cycle_success_rate is the "
    "20-seed grow/balance/shrink/grow property suite. Produced by "
    "tools/bench_elastic.sh.")}

for key in ("join_8_to_12", "join_16_to_24"):
    scale = demo[key]
    assert scale["elements_lost"] == 0, \
        f"{key}: lost {scale['elements_lost']} elements"
    assert scale["imbalance_after"] <= 1.10, (
        f"{key}: post-join element imbalance {scale['imbalance_after']:.4f}"
        " > 1.10")
    assert scale["join_to_rebalanced_ms"] > 0, f"{key}: missing latency"
    summary[key] = scale

summary["cycle_success_rate"] = 1.0 if success else 0.0
assert summary["cycle_success_rate"] == 1.0, \
    "grow/shrink property cycles did not all pass"

json.dump(summary, open(out, "w"), indent=2)
print(f"wrote {out}")
EOF
