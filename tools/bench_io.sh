#!/usr/bin/env bash
# Parallel-I/O benchmark smoke: chunked-image checkpoint vs the durable
# per-part-file baseline, plus the seeded read-repair matrix, merged into
# one BENCH_IO.json.
#
#   * examples/io_demo writes and restores the same 16-part mesh both
#     ways under a deterministic storage model (every File op pays a
#     fixed device latency via the iostall fault token, so the A/B
#     measures I/O-path structure — serialized per-part commits with a
#     post-write CRC read-back and a double-read restore vs 16
#     concurrent chunk writers, write-verify, two durability barriers
#     and a single-pass CRC-gated read — not the runner's page cache).
#     The merge asserts the headline claims: write, read and full-cycle
#     speedups >= 2x at 16 parts. Raw unmodeled wall clock is recorded
#     alongside.
#   * The same binary replays the 20-seed single-copy damage matrix (bit
#     flips on even seeds, torn chunk tails on odd): every seed must
#     read-repair to a fingerprint-identical mesh. The merge asserts
#     success_rate == 1.0.
#
# Usage: tools/bench_io.sh <build-dir> [out.json]
# Build with -DCMAKE_BUILD_TYPE=Release for meaningful numbers.
set -euo pipefail

BUILD="${1:?usage: tools/bench_io.sh <build-dir> [out.json]}"
OUT="${2:-BENCH_IO.json}"

if [[ ! -d "$BUILD" ]]; then
  echo "error: build dir '$BUILD' not found; configure and build first:" >&2
  echo "  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j" >&2
  exit 1
fi
if [[ ! -x "$BUILD/examples/io_demo" ]]; then
  echo "error: missing binary '$BUILD/examples/io_demo'; rebuild: cmake --build \"$BUILD\" -j" >&2
  exit 1
fi
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

"$BUILD/examples/io_demo" > "$TMP/io.json"

python3 - "$TMP/io.json" "$OUT" <<'EOF'
import json, sys

src, out = sys.argv[1], sys.argv[2]
demo = json.load(open(src))
summary = {"description": (
    "Chunked-image parallel checkpoint I/O vs the seed implementation's "
    "serialized per-part-file baseline at 16 parts, under a "
    "deterministic storage model (iostall: every File op pays a fixed "
    "device latency, making the A/B reproducible across machines). The "
    "baseline commits parts one at a time — each mesh stream written to "
    "its own durable file (temp + fdatasync + rename; 33 barriers "
    "including its MANIFEST) then read back for the manifest CRC — and "
    "restores in two serial passes (CRC-validate, then deserialize), "
    "reading every byte twice. pario streams 16 concurrent writers into "
    "one image (one fdatasync) with buddy-replicated chunks, verifies "
    "the written extents before committing the MANIFEST last (second "
    "fdatasync), and restores with 16 concurrent single-pass CRC-gated "
    "readers. repair replays the 20-seed single-copy damage matrix: one "
    "chunk copy bit-flipped (even seeds) or torn (odd seeds), restore "
    "must read-repair to a fingerprint-identical mesh. Produced by "
    "tools/bench_io.sh."),
    **demo}

# The headline claims. These are asserted, not just recorded: the PR's
# acceptance bar is >= 2x parallel read and write speedup over the
# serialized per-part baseline at 16 parts, and repair success on every
# seed of the damage matrix.
write_speedup = demo["write"]["speedup"]
read_speedup = demo["read"]["speedup"]
cycle_speedup = demo["cycle"]["speedup"]
assert write_speedup >= 2.0, \
    f"write speedup {write_speedup:.2f}x < 2x over per-part baseline"
assert read_speedup >= 2.0, \
    f"read speedup {read_speedup:.2f}x < 2x over per-part baseline"
assert cycle_speedup >= 2.0, \
    f"cycle speedup {cycle_speedup:.2f}x < 2x over per-part baseline"

rep = demo["repair"]
assert rep["success_rate"] == 1.0, (
    f"read-repair succeeded on only {rep['successes']}/{rep['seeds']} "
    "seeds under single-copy loss")

# The baseline's restore reads every byte twice; the chunked image must
# not regress that reduction.
assert demo["bytes"]["pario_read"] < demo["bytes"]["baseline_read"], \
    "chunked restore no longer reads less than the double-pass baseline"

json.dump(summary, open(out, "w"), indent=2)
print(f"wrote {out}: write {write_speedup:.1f}x, cycle {cycle_speedup:.1f}x, "
      f"repair {rep['successes']}/{rep['seeds']}")
EOF
