/// \file partition_report.cpp
/// \brief A partition diagnostics tool: run every partitioner on a
/// workload and print the full quality picture — per-entity-type balance,
/// boundary sizes, cut metrics, neighbour counts, and the partition model
/// summary. Usage: partition_report [nparts] (default 16).

#include <cstdlib>
#include <iostream>

#include "core/measure.hpp"
#include "dist/partedmesh.hpp"
#include "dist/ptnmodel.hpp"
#include "meshgen/workloads.hpp"
#include "parma/metrics.hpp"
#include "part/partition.hpp"
#include "repro/table.hpp"

int main(int argc, char** argv) {
  const int nparts = argc > 1 ? std::atoi(argv[1]) : 16;
  auto gen = meshgen::vessel({.circumferential = 6, .axial = 24});
  common::Rng rng(1);
  meshgen::jiggle(*gen.mesh, 0.1, rng);
  std::cout << "workload: vessel, " << gen.mesh->count(3) << " tets, "
            << nparts << " parts\n\n";

  const auto g = part::buildElemGraph(*gen.mesh);
  repro::Table t({"method", "rgn imb%", "vtx imb%", "edge cut",
                  "hyperedge cut", "boundary verts", "max neighbors",
                  "ptn entities"});

  for (auto method : {part::Method::RCB, part::Method::RIB,
                      part::Method::GreedyGrow, part::Method::GraphRB,
                      part::Method::HypergraphRB}) {
    const auto assign = part::partitionGraph(g, nparts, method);
    auto pm = dist::PartedMesh::distribute(
        *gen.mesh, gen.model.get(), assign,
        dist::PartMap(nparts, pcu::Machine::flat(nparts)));
    pm->verify();
    int max_neighbors = 0;
    for (dist::PartId p = 0; p < nparts; ++p)
      max_neighbors = std::max(
          max_neighbors,
          static_cast<int>(pm->part(p).neighborParts(0).size()));
    dist::PtnModel ptn(*pm);
    t.row({part::methodName(method),
           repro::fmt(parma::entityBalance(*pm, 3).imbalancePercent(), 2),
           repro::fmt(parma::entityBalance(*pm, 0).imbalancePercent(), 2),
           repro::fmt(part::edgeCut(g, assign)),
           repro::fmt(part::hyperedgeCut(g, assign)),
           repro::fmt(parma::boundaryCopies(*pm, 0)),
           repro::fmt(max_neighbors),
           repro::fmt(ptn.entities().size())});
  }
  t.print();
  std::cout << "\n(rgn/vtx imb%: peak over mean; edge cut: faces crossing "
               "parts; hyperedge cut: the connectivity metric PHG "
               "minimizes; boundary verts: duplicated vertex copies)\n";
  return 0;
}
