/// \file adaptive_workflow.cpp
/// \brief The paper's motivating loop, end-to-end and fully parallel:
/// distribute -> analyze -> error-driven *distributed* adaptation (with
/// solution transfer) -> ParMA dynamic load balancing -> ghost -> next
/// analysis step.

#include <iostream>

#include "adapt/sizefield.hpp"
#include "dist/padapt.hpp"
#include "dist/partedmesh.hpp"
#include "field/field.hpp"
#include "meshgen/workloads.hpp"
#include "parma/balance.hpp"
#include "parma/metrics.hpp"
#include "part/partition.hpp"
#include "solver/poisson.hpp"

int main() {
  const int nparts = 16;

  // 1. The domain: a bulged vessel (AAA surrogate), meshed, classified,
  //    and distributed.
  auto gen = meshgen::vessel({.circumferential = 6, .axial = 24});
  std::cout << "initial mesh: " << gen.mesh->count(3) << " tets on "
            << nparts << " parts\n";
  const auto assign =
      part::partition(*gen.mesh, nparts, part::Method::GraphRB);
  auto pm = dist::PartedMesh::distribute(
      *gen.mesh, gen.model.get(), assign,
      dist::PartMap(nparts, pcu::Machine(2, 8)));

  // 2. Analysis step: solve a Poisson problem on the distributed mesh
  //    (stand-in for the flow solve), giving a field to adapt to.
  solver::solvePoisson(
      *pm, [](const common::Vec3&) { return 1.0; },
      [](const common::Vec3&) { return 0.0; },
      {.max_iterations = 1000, .tolerance = 1e-8});
  std::cout << "analysis solved on the initial mesh\n";

  // 3. Error-driven size field: refine where the solution is largest
  //    (around the aneurysm bulge), carrying the solution through
  //    adaptation by linear transfer.
  const double zc = 0.55 * 10.0;
  adapt::AnalyticSize size([&](const common::Vec3& x) {
    const double dz = (x.z - zc) / 1.2;
    return 0.85 - 0.45 * std::exp(-dz * dz);
  });
  adapt::LinearTransfer transfer({"u"});
  const auto stats =
      dist::refineParted(*pm, size, {.max_passes = 6, .transfer = &transfer});
  pm->verify();
  std::cout << "distributed adaptation: " << stats.splits << " splits -> "
            << pm->globalCount(3) << " tets\n";
  double imb = parma::entityBalance(*pm, 3).imbalance;
  std::cout << "element imbalance after adaptation: " << imb << "\n";

  // 4. Dynamic load balancing: heavy part splitting for the spikes, ParMA
  //    diffusion to finish, respecting vertex balance for the FE step.
  parma::BalanceOptions bopts{.tolerance = 0.05};
  bopts.improve.max_iterations = 60;
  parma::balance(*pm, "Rgn", bopts);
  pm->verify();
  imb = parma::entityBalance(*pm, 3).imbalance;
  std::cout << "element imbalance after ParMA: " << imb
            << " (vertex imbalance "
            << parma::entityBalance(*pm, 0).imbalance << ")\n";

  // 5. Next analysis step on the adapted, rebalanced mesh.
  const auto report = solver::solvePoisson(
      *pm, [](const common::Vec3&) { return 1.0; },
      [](const common::Vec3&) { return 0.0; },
      {.max_iterations = 4000, .tolerance = 1e-7});
  std::cout << "analysis re-solved on the adapted mesh: "
            << report.iterations << " CG iterations, "
            << (report.converged ? "converged" : "NOT converged") << "\n";

  // 6. Ghost a layer for halo-based post-processing.
  pm->ghostLayers(1);
  std::size_t ghosts = 0;
  for (dist::PartId p = 0; p < pm->parts(); ++p)
    ghosts += pm->part(p).ghostCount();
  std::cout << "ghosted " << ghosts << " entities for post-processing\n";
  pm->verify();
  return 0;
}
