/// \file quickstart.cpp
/// \brief First steps with the library: build a classified tet mesh of a
/// box, interrogate adjacencies, attach tags and a field, verify, and
/// write a VTK file for visualization.

#include <iostream>

#include "core/measure.hpp"
#include "core/verify.hpp"
#include "core/vtk.hpp"
#include "field/field.hpp"
#include "gmi/model.hpp"
#include "meshgen/boxmesh.hpp"

int main() {
  // A mesh is always classified against a geometric model; boxTets builds
  // both (8 model vertices, 12 edges, 6 faces, 1 region for the box).
  auto gen = meshgen::boxTets(8, 8, 8);
  core::Mesh& mesh = *gen.mesh;
  std::cout << "mesh of the unit box: " << mesh.count(3) << " tets, "
            << mesh.count(2) << " faces, " << mesh.count(1) << " edges, "
            << mesh.count(0) << " vertices\n";

  // Adjacency queries are O(1) — bounded work per query.
  const core::Ent v = *mesh.entities(0).begin();
  std::cout << "first vertex at " << mesh.point(v) << " touches "
            << mesh.adjacent(v, 3).size() << " regions and "
            << mesh.up(v).size() << " edges\n";

  // Geometric classification links mesh entities to the model.
  std::size_t surface_faces = 0;
  for (core::Ent f : mesh.entities(2))
    if (mesh.classification(f)->dim() == 2) ++surface_faces;
  std::cout << "faces classified on the model boundary: " << surface_faces
            << "\n";

  // Tags attach arbitrary user data to any entity.
  auto* material = mesh.tags().create<int>("material");
  for (core::Ent e : mesh.entities(3))
    mesh.tags().setScalar<int>(material, e,
                               core::centroid(mesh, e).x < 0.5 ? 1 : 2);

  // Fields are tensor quantities over mesh entities, backed by tags.
  field::Field temperature(mesh, "temperature", field::ValueType::Scalar,
                           field::Location::Vertex);
  temperature.assign([](const common::Vec3& x) {
    return 300.0 + 50.0 * x.x + 20.0 * x.y * x.z;
  });
  std::cout << "integral of temperature over the box: "
            << field::integrate(temperature) << "\n";

  // Structural validation of the whole representation.
  core::verify(mesh, {.check_volumes = true});
  std::cout << "mesh verifies\n";

  // Dump for ParaView with the material id as cell data.
  core::CellScalar mat{"material", {}};
  for (core::Ent e : mesh.entities(3))
    mat.values[e] = mesh.tags().getScalar<int>(material, e);
  core::writeVtk(mesh, "quickstart.vtk", {mat});
  std::cout << "wrote quickstart.vtk\n";
  return 0;
}
