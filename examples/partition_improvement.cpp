/// \file partition_improvement.cpp
/// \brief Multi-criteria partition improvement in five lines: take a
/// hypergraph partition, tell ParMA what matters to your solver
/// ("Vtx=Edge>Rgn" for a second-order FE analysis), get a partition whose
/// spikes are gone.

#include <iostream>

#include "parma/improve.hpp"
#include "parma/metrics.hpp"
#include "repro/workloads.hpp"

int main() {
  // The AAA-surrogate workload at small scale.
  auto w = repro::makeAaa(repro::Scale::Small);
  auto pm = repro::distributeT0(w, nullptr);

  std::cout << "input: " << w.gen.mesh->count(3) << " tets on " << w.nparts
            << " parts (hypergraph partition)\n";
  for (int d : {0, 1, 3})
    std::cout << "  dim " << d << " imbalance: "
              << parma::entityBalance(*pm, d).imbalancePercent() << "%\n";

  // A second-order finite element analysis scales with vertex and edge
  // balance; regions matter less. One call:
  const auto report = parma::improve(*pm, "Vtx=Edge>Rgn", {.tolerance = 0.05});
  pm->verify();

  std::cout << "\nafter ParMA Vtx=Edge>Rgn ("
            << report.totalMigrated() << " elements migrated):\n";
  for (int d : {0, 1, 3})
    std::cout << "  dim " << d << " imbalance: "
              << parma::entityBalance(*pm, d).imbalancePercent() << "%\n";
  for (const auto& level : report.levels)
    std::cout << "  balanced dim " << level.dim << " in " << level.iterations
              << " iterations: " << level.initial_imbalance << " -> "
              << level.final_imbalance
              << (level.converged ? " (converged)" : " (stalled)") << "\n";
  return 0;
}
