/// \file io_demo.cpp
/// \brief Parallel-I/O benchmark: chunked-image checkpoint vs the
/// serialized per-part-file baseline, plus the 20-seed read-repair matrix.
///
/// Two contenders write and restore the same 16-part mesh:
///
///   * baseline — the seed implementation's per-part-file discipline,
///     faithfully reproduced: parts committed one at a time, each part's
///     mesh stream written to its own file and then read back to compute
///     the MANIFEST CRC, the metadata stream written next to it, every
///     file individually made durable (temp file + fdatasync + rename).
///     Restore is two serial passes: CRC-validate every file, then read
///     the payloads again to deserialize — every byte read twice.
///   * pario — the chunked image: all 16 logical writers stream their
///     (buddy-replicated) chunks into one IMAGE concurrently, verify the
///     written extents in the same parallel shape, and pay two
///     durability barriers total (image, MANIFEST). Restore reads each
///     chunk once, CRC-gated, 16 readers concurrent.
///
/// Storage latency is modeled through the deterministic I/O fault shim
/// (iostall = 1.0: every File op sleeps a fixed iostall_ms first). That
/// makes the A/B reproducible and hardware-independent — it measures the
/// structure of the two I/O paths (op counts, serialization vs
/// concurrency, barrier counts), not the whims of a CI runner's page
/// cache. Raw un-modeled wall clock is reported alongside for reference.
///
/// The demo then replays the acceptance repair matrix: 20 seeds, each
/// damaging one randomly chosen chunk copy (bit flip on even seeds, torn
/// tail on odd), restore must read-repair to a fingerprint-identical
/// mesh.
///
/// Prints one JSON object on stdout; tools/bench_io.sh asserts the
/// headline claims (write/read/cycle speedups >= 2x, repair success_rate
/// == 1.0) and merges the numbers into BENCH_IO.json.
///
///   ./build/examples/io_demo
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/meshio.hpp"
#include "dist/pario.hpp"
#include "dist/partedmesh.hpp"
#include "dist/partio.hpp"
#include "meshgen/boxmesh.hpp"
#include "part/partition.hpp"
#include "pcu/faults.hpp"
#include "pcu/machine.hpp"

namespace fs = std::filesystem;

namespace {

double msSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// One durable file commit, legacy style: temp file, full write,
/// fdatasync, atomic rename. Routed through pario::File so the storage
/// model (iostall) applies to the baseline and to pario identically.
std::uint64_t durableWrite(const fs::path& path,
                           const std::vector<std::byte>& payload) {
  const fs::path tmp = path.string() + ".tmp";
  {
    auto f = dist::pario::File::create(tmp.string());
    f.pwriteAll(payload.data(), payload.size(), 0);
    f.sync();
  }
  fs::rename(tmp, path);
  return payload.size();
}

std::vector<std::byte> readAll(const fs::path& path) {
  auto f = dist::pario::File::openRead(path.string());
  std::vector<std::byte> buf(f.size());
  std::size_t got = 0;
  while (got < buf.size())
    got += f.preadSome(buf.data() + got, buf.size() - got, got);
  return buf;
}

struct BaselineStats {
  double write_ms = 0;
  double read_ms = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
};

/// The seed implementation's write path: serial per-part commits, each
/// mesh file re-read after writing to CRC it for the MANIFEST.
void baselineWrite(const dist::PartedMesh& pm, const fs::path& dir,
                   BaselineStats* st) {
  fs::remove_all(dir);
  fs::create_directories(dir);
  const int n = static_cast<int>(pm.parts());

  std::vector<dist::partio::OrdinalMap> ords(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p)
    ords[static_cast<std::size_t>(p)] =
        dist::partio::buildOrdinals(pm.part(p).mesh());

  const auto t0 = std::chrono::steady_clock::now();
  for (int p = 0; p < n; ++p) {
    const auto& part = pm.part(p);
    const fs::path mesh_path = dir / ("part" + std::to_string(p) + ".mesh");
    st->bytes_written += durableWrite(mesh_path, core::meshToBytes(part.mesh()));
    // The legacy discipline CRC'd the file as written, not the buffer.
    const auto echo = readAll(mesh_path);
    st->bytes_read += echo.size();
    (void)pcu::faults::crc32(echo.data(), echo.size());
    st->bytes_written += durableWrite(
        dir / ("part" + std::to_string(p) + ".meta"),
        dist::partio::buildMeta(part, ords[static_cast<std::size_t>(p)],
                                ords));
  }
  std::vector<std::byte> manifest(64, std::byte{0x4d});
  st->bytes_written += durableWrite(dir / "MANIFEST", manifest);
  st->write_ms = msSince(t0);
}

/// The seed implementation's restore read path: pass 1 CRC-validates
/// every file, pass 2 reads the payloads again and deserializes the mesh
/// streams — the double read the chunked image retires.
void baselineRead(const fs::path& dir, int nparts, gmi::Model* model,
                  BaselineStats* st) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int p = 0; p < nparts; ++p) {
    for (const char* suffix : {".mesh", ".meta"}) {
      const auto buf = readAll(dir / ("part" + std::to_string(p) + suffix));
      st->bytes_read += buf.size();
      (void)pcu::faults::crc32(buf.data(), buf.size());
    }
  }
  for (int p = 0; p < nparts; ++p) {
    auto mesh = readAll(dir / ("part" + std::to_string(p) + ".mesh"));
    auto meta = readAll(dir / ("part" + std::to_string(p) + ".meta"));
    st->bytes_read += mesh.size() + meta.size();
    auto rebuilt = core::meshFromBytes(std::move(mesh), model);
    (void)dist::partio::buildEntTable(*rebuilt);
  }
  st->read_ms = msSince(t0);
}

}  // namespace

int main() {
  const fs::path base = fs::temp_directory_path() / "pumi_io_demo";
  fs::remove_all(base);
  fs::create_directories(base);

  // --- the workload: a 16-part tet mesh -----------------------------------
  const int nparts = 16;
  auto gen = meshgen::boxTets(10, 10, 10);
  const auto assign = part::partition(*gen.mesh, nparts, part::Method::RCB);
  auto pm = dist::PartedMesh::distribute(
      *gen.mesh, gen.model.get(), assign,
      dist::PartMap(nparts, pcu::Machine::flat(nparts)));
  const std::uint64_t fp = pm->fingerprint();

  // --- A/B under the deterministic storage model, best of 2 ---------------
  const int kStallMs = 5;
  const auto runAB = [&](bool modeled, double& bw, double& br, double& pw,
                         double& pr, BaselineStats& bs_out,
                         std::uint64_t& pbw, std::uint64_t& pbr) {
    if (modeled) {
      pcu::faults::FaultPlan plan;
      plan.seed = 1;
      plan.iostall = 1.0;  // every File op pays the modeled device latency
      plan.iostall_ms = kStallMs;
      pcu::faults::setPlan(plan);
    }
    bw = br = pw = pr = 1e30;
    const int reps = modeled ? 2 : 3;
    for (int rep = 0; rep < reps; ++rep) {
      BaselineStats bs;
      baselineWrite(*pm, base / "legacy", &bs);
      baselineRead(base / "legacy", nparts, gen.model.get(), &bs);
      bw = std::min(bw, bs.write_ms);
      br = std::min(br, bs.read_ms);
      bs_out = bs;

      const fs::path pdir = base / "pario";
      fs::remove_all(pdir);
      auto t0 = std::chrono::steady_clock::now();
      const auto ws = dist::pario::checkpointImage(*pm, pdir.string());
      pw = std::min(pw, msSince(t0));
      pbw = ws.bytes;

      t0 = std::chrono::steady_clock::now();
      dist::pario::RestoreReport rr;
      auto restored = dist::pario::restoreImage(
          pdir.string(), gen.model.get(), dist::pario::OnLoss::kFail, &rr);
      pr = std::min(pr, msSince(t0));
      pbr = rr.bytes_read;
      if (restored->fingerprint() != fp) {
        std::cerr << "restore fingerprint mismatch\n";
        std::exit(1);
      }
    }
    if (modeled) pcu::faults::clearPlan();
  };

  double base_write = 0, base_read = 0, pario_write = 0, pario_read = 0;
  BaselineStats bs{};
  std::uint64_t pario_bytes_written = 0, pario_bytes_read = 0;
  runAB(true, base_write, base_read, pario_write, pario_read, bs,
        pario_bytes_written, pario_bytes_read);

  double raw_bw = 0, raw_br = 0, raw_pw = 0, raw_pr = 0;
  BaselineStats raw_bs{};
  std::uint64_t dummy_w = 0, dummy_r = 0;
  runAB(false, raw_bw, raw_br, raw_pw, raw_pr, raw_bs, dummy_w, dummy_r);

  // --- the 20-seed single-copy damage repair matrix -----------------------
  int repair_ok = 0;
  const int kSeeds = 20;
  std::uint64_t chunks_repaired = 0;
  for (int seed = 0; seed < kSeeds; ++seed) {
    const fs::path dir = base / ("repair" + std::to_string(seed));
    fs::remove_all(dir);
    dist::pario::checkpointImage(*pm, dir.string());
    const auto idx = dist::pario::loadIndex(dir.string());

    // Pick one chunk copy and damage it: even seeds flip a payload byte,
    // odd seeds tear the copy's tail off.
    common::Rng rng(0x10deedull + static_cast<std::uint64_t>(seed));
    const int victim = static_cast<int>(rng.below(
        static_cast<std::uint64_t>(nparts)));
    const auto& slots = idx.parts[static_cast<std::size_t>(victim)];
    const auto& slot = rng.below(2) == 0 ? slots.mesh : slots.meta;
    const std::uint64_t off = rng.below(2) == 0 ? slot.primary : slot.replica;
    const fs::path img = dir / idx.image;
    std::fstream f(img, std::ios::in | std::ios::out | std::ios::binary);
    if (seed % 2 == 0) {
      const std::uint64_t at = off + dist::pario::kChunkHeaderBytes +
                               rng.below(slot.length > 0 ? slot.length : 1);
      f.seekg(static_cast<std::streamoff>(at));
      char c = 0;
      f.get(c);
      f.seekp(static_cast<std::streamoff>(at));
      f.put(static_cast<char>(c ^ 0x5A));
    } else {
      const std::uint64_t tail =
          off + (dist::pario::kChunkHeaderBytes + slot.length) / 2;
      const std::uint64_t end =
          off + dist::pario::kChunkHeaderBytes + slot.length;
      f.seekp(static_cast<std::streamoff>(tail));
      for (std::uint64_t i = tail; i < end; ++i) f.put('\0');
    }
    f.close();

    dist::pario::RestoreReport rr;
    try {
      auto restored = dist::pario::restoreImage(
          dir.string(), gen.model.get(), dist::pario::OnLoss::kFail, &rr);
      if (restored->fingerprint() == fp && rr.lost.empty()) {
        ++repair_ok;
        chunks_repaired += rr.chunks_repaired;
      }
    } catch (const std::exception& e) {
      std::cerr << "seed " << seed << ": " << e.what() << "\n";
    }
  }

  fs::remove_all(base);

  // --- report -------------------------------------------------------------
  const double base_cycle = base_write + base_read;
  const double pario_cycle = pario_write + pario_read;
  std::printf("{\n");
  std::printf("  \"parts\": %d,\n", nparts);
  std::printf("  \"storage_model\": {\"iostall_ms_per_op\": %d, "
              "\"note\": \"deterministic per-op device latency via the "
              "I/O fault shim; raw numbers below are unmodeled\"},\n",
              kStallMs);
  std::printf("  \"write\": {\"baseline_ms\": %.3f, \"pario_ms\": %.3f, "
              "\"speedup\": %.2f},\n",
              base_write, pario_write, base_write / pario_write);
  std::printf("  \"read\": {\"baseline_ms\": %.3f, \"pario_ms\": %.3f, "
              "\"speedup\": %.2f},\n",
              base_read, pario_read, base_read / pario_read);
  std::printf("  \"cycle\": {\"baseline_ms\": %.3f, \"pario_ms\": %.3f, "
              "\"speedup\": %.2f},\n",
              base_cycle, pario_cycle, base_cycle / pario_cycle);
  std::printf("  \"raw\": {\"baseline_write_ms\": %.3f, "
              "\"pario_write_ms\": %.3f, \"baseline_read_ms\": %.3f, "
              "\"pario_read_ms\": %.3f},\n",
              raw_bw, raw_pw, raw_br, raw_pr);
  std::printf("  \"bytes\": {\"baseline_written\": %llu, "
              "\"pario_written\": %llu, \"baseline_read\": %llu, "
              "\"pario_read\": %llu},\n",
              static_cast<unsigned long long>(bs.bytes_written),
              static_cast<unsigned long long>(pario_bytes_written),
              static_cast<unsigned long long>(bs.bytes_read),
              static_cast<unsigned long long>(pario_bytes_read));
  std::printf("  \"durability_barriers\": {\"baseline\": %d, \"pario\": 2},\n",
              2 * nparts + 1);
  std::printf("  \"repair\": {\"seeds\": %d, \"successes\": %d, "
              "\"chunks_repaired\": %llu, \"success_rate\": %.2f}\n",
              kSeeds, repair_ok,
              static_cast<unsigned long long>(chunks_repaired),
              static_cast<double>(repair_ok) / kSeeds);
  std::printf("}\n");
  return repair_ok == kSeeds ? 0 : 1;
}
