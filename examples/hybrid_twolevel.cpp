/// \file hybrid_twolevel.cpp
/// \brief Two-level, architecture-aware partitioning (paper Sec. II-D):
/// partition across nodes first, then across each node's cores, and watch
/// the off-node share of the communication drop. Also demonstrates the
/// thread-backed message-passing runtime that the hybrid design relies on.

#include <iostream>

#include "dist/partedmesh.hpp"
#include "meshgen/boxmesh.hpp"
#include "part/localsplit.hpp"
#include "part/partition.hpp"
#include "pcu/phased.hpp"
#include "pcu/runtime.hpp"

int main() {
  const pcu::Machine machine(4, 8);  // 4 nodes x 8 cores
  const int nparts = machine.totalCores();

  // --- the pcu layer: ranks as threads, MPI-like messaging ---------------
  std::cout << "machine: " << machine.describe() << "\n";
  pcu::run(8, machine, [](pcu::Comm& c) {
    // Each rank greets its ring neighbour through the mailbox layer.
    pcu::OutBuffer b;
    b.pack<int>(c.rank());
    c.send((c.rank() + 1) % c.size(), 0, b);
    pcu::Message m = c.recv((c.rank() + c.size() - 1) % c.size(), 0);
    const long sum = c.allreduceSum<long>(m.body.unpack<int>());
    if (c.rank() == 0)
      std::cout << "pcu: " << c.size()
                << " thread ranks exchanged messages (checksum " << sum
                << ")\n";
  });

  // --- two-level mesh partitioning ----------------------------------------
  auto gen = meshgen::boxTets(12, 12, 12);
  std::cout << "mesh: " << gen.mesh->count(3) << " tets, " << nparts
            << " parts\n";

  // Level 1: one part per node.
  auto node_assign =
      part::partition(*gen.mesh, machine.nodes(), part::Method::GraphRB);
  auto pm = dist::PartedMesh::distribute(
      *gen.mesh, gen.model.get(), node_assign,
      dist::PartMap(machine.nodes(), machine));

  // Level 2: split each node part across the node's cores, pinning the
  // subparts onto their node.
  const auto created =
      part::localSplit(*pm, machine.coresPerNode(), part::Method::GraphRB);
  std::vector<int> ranks(static_cast<std::size_t>(pm->parts()), 0);
  for (int p = 0; p < machine.nodes(); ++p)
    ranks[static_cast<std::size_t>(p)] = p * machine.coresPerNode();
  for (std::size_t i = 0; i < created.size(); ++i) {
    const int parent = static_cast<int>(i) / (machine.coresPerNode() - 1);
    const int child = static_cast<int>(i) % (machine.coresPerNode() - 1);
    ranks[static_cast<std::size_t>(created[i])] =
        parent * machine.coresPerNode() + child + 1;
  }
  pm->network().setPartRanks(std::move(ranks));
  pm->verify();

  // Exercise a halo exchange and report the traffic split.
  pm->network().resetStats();
  pm->ghostLayers(1);
  const auto& s = pm->network().stats();
  std::cout << "ghost-layer exchange traffic:\n";
  std::cout << "  on-node  (shared memory in the hybrid design): "
            << s.on_node_bytes << " bytes in " << s.on_node_messages
            << " messages\n";
  std::cout << "  off-node (explicit message passing):          "
            << s.off_node_bytes << " bytes in " << s.off_node_messages
            << " messages\n";
  const double frac =
      100.0 * static_cast<double>(s.on_node_bytes) /
      static_cast<double>(s.on_node_bytes + s.off_node_bytes);
  std::cout << "  " << frac
            << "% of the traffic stays inside nodes — the share the "
               "two-level design services through shared memory (Fig. 5)\n";
  pm->unghost();
  return 0;
}
