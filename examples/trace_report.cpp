/// \file trace_report.cpp
/// \brief Observability demo: trace a small parallel session end to end.
///
/// Runs (a) an 8-rank phased ring exchange over pcu and (b) a 4-part mesh
/// workflow (migrate, ghost, balance) over dist, with tracing force-enabled.
/// Prints the aggregated per-phase imbalance report and writes the Chrome
/// trace JSON — open it at https://ui.perfetto.dev (or about://tracing) to
/// see one timeline lane per rank/part.
///
///   ./build/examples/trace_report
///   PUMI_TRACE_FILE=/tmp/session.json ./build/examples/trace_report

#include <fstream>
#include <iostream>

#include "dist/partedmesh.hpp"
#include "meshgen/boxmesh.hpp"
#include "parma/balance.hpp"
#include "part/partition.hpp"
#include "pcu/phased.hpp"
#include "pcu/runtime.hpp"
#include "pcu/stats.hpp"
#include "pcu/trace.hpp"

int main() {
  pcu::trace::setEnabled(true);

  // --- (a) message passing: ring exchange on 8 thread-backed ranks -------
  const int ranks = 8;
  pcu::run(ranks, [&](pcu::Comm& c) {
    pcu::trace::Scope work("example:ring-exchange");
    for (int round = 0; round < 4; ++round) {
      std::vector<std::pair<int, pcu::OutBuffer>> out;
      pcu::OutBuffer b;
      // Uneven payloads make the imbalance column informative.
      std::vector<double> payload(
          64 + 512 * static_cast<std::size_t>(c.rank()), 1.0);
      b.packVector(payload);
      out.emplace_back((c.rank() + 1) % ranks, std::move(b));
      (void)pcu::phasedExchange(c, std::move(out));
      (void)c.allreduceSum<long>(1);
    }
  });

  // --- (b) distributed mesh: migrate, ghost, balance over 4 parts --------
  auto gen = meshgen::boxTets(6, 6, 6);
  const int nparts = 4;
  const auto assign = part::partition(*gen.mesh, nparts, part::Method::RCB);
  auto pm = dist::PartedMesh::distribute(
      *gen.mesh, gen.model.get(), assign,
      dist::PartMap(nparts, pcu::Machine(2, nparts / 2)));

  dist::MigrationPlan plan(static_cast<std::size_t>(nparts));
  int i = 0;
  for (core::Ent e : pm->part(0).elements())
    if (i++ % 3 == 0) plan[0][e] = 1;
  pm->migrate(plan);
  pm->ghostLayers(1);
  pm->syncGhostTags();
  pm->unghost();
  parma::balance(*pm, "Rgn", {.tolerance = 0.05, .max_rounds = 2});
  pm->verify();

  // --- report & trace -----------------------------------------------------
  pcu::printTraceReport(pcu::buildTraceReport());

  const std::string path = pcu::trace::defaultTracePath();
  std::ofstream os(path);
  pcu::trace::writeChromeTrace(os, pcu::trace::snapshot());
  std::cout << "\nChrome trace written to " << path << "\n"
            << "Open https://ui.perfetto.dev and drag the file in: each\n"
            << "rank (and each mesh part) gets its own timeline lane;\n"
            << "message sends/receives appear as instant events with\n"
            << "byte counts in their args.\n";
  return 0;
}
