/// \file elastic_demo.cpp
/// \brief Elastic scale-OUT demo + join-to-rebalanced latency measurement.
///
/// The ISSUE acceptance scenario, end to end:
///   1. an 8-rank tet mesh runs with PUMI_FAULTS-style plan "join=4@2"
///      armed — four new ranks knock at migration phase boundary 2; the
///      transport records the (consume-once, deterministic) knock, the
///      in-flight migration completes untouched, and
///      parma::admitPendingJoin grows the machine to 12 dense ranks,
///      carves the heaviest parts onto the newcomers (graph-free RIB) and
///      diffuses to tolerance — zero lost elements, post-join element
///      imbalance at or below 1.10;
///   2. the same pipeline at 16 -> 24 ranks via a direct elasticJoin call.
///
/// Human-readable progress goes to stderr; stdout carries one JSON object
/// with the join-to-rebalanced latency breakdown at both scales, which
/// tools/bench_elastic.sh merges into BENCH_ELASTIC.json.
///
///   ./build/examples/elastic_demo
#include <cstdlib>
#include <iostream>

#include "common/rng.hpp"
#include "dist/digest.hpp"
#include "dist/partedmesh.hpp"
#include "meshgen/boxmesh.hpp"
#include "parma/elastic.hpp"
#include "parma/metrics.hpp"
#include "part/partition.hpp"
#include "pcu/error.hpp"
#include "pcu/faults.hpp"

namespace {

std::unique_ptr<dist::PartedMesh> makeMesh(const meshgen::Generated& gen,
                                           int nparts) {
  const auto assign = part::partition(*gen.mesh, nparts, part::Method::RCB);
  return dist::PartedMesh::distribute(
      *gen.mesh, gen.model.get(), assign,
      dist::PartMap(nparts, pcu::Machine::flat(nparts)));
}

dist::MigrationPlan somePlan(dist::PartedMesh& pm, std::uint64_t seed) {
  common::Rng rng(seed);
  dist::MigrationPlan plan(static_cast<std::size_t>(pm.parts()));
  for (dist::PartId p = 0; p < pm.parts(); ++p)
    for (core::Ent e : pm.part(p).elements()) {
      if (rng.uniform() >= 0.05) continue;
      const auto dest = static_cast<dist::PartId>(
          rng.below(static_cast<std::uint64_t>(pm.parts())));
      if (dest != p) plan[static_cast<std::size_t>(p)][e] = dest;
    }
  return plan;
}

void emitScale(std::ostream& os, const char* key, const parma::JoinReport& r,
               std::size_t elements, std::size_t lost, bool last) {
  os << "  \"" << key << "\": {\"ranks_before\": " << r.ranks_before
     << ", \"ranks_after\": " << r.ranks_after
     << ", \"elements\": " << elements << ", \"elements_lost\": " << lost
     << ", \"imbalance_before\": " << r.imbalance_before
     << ", \"imbalance_after\": " << r.imbalance_after
     << ", \"elements_moved\": " << r.elements_moved
     << ", \"admit_ms\": " << r.admit_ms << ", \"split_ms\": " << r.split_ms
     << ", \"join_to_rebalanced_ms\": " << r.total_ms << "}"
     << (last ? "\n" : ",\n");
}

}  // namespace

int main() {
  // --- scale 1: 8 -> 12 via the join=4@2 token, mid-migrate --------------
  auto gen8 = meshgen::boxTets(6, 6, 6);
  auto pm8 = makeMesh(gen8, 8);
  const auto covered8 = dist::digest::elementDigests(*pm8);
  std::cerr << "scale 1: " << covered8.size() << " tets on 8 ranks, plan "
            << "join=4@2 armed\n";

  pcu::faults::setPlan(pcu::faults::parsePlan("seed=2026,join=4@2"));
  int rounds = 0;
  while (pm8->network().pendingJoin() == 0 && rounds < 8) {
    pm8->migrate(somePlan(*pm8, 40 + static_cast<std::uint64_t>(rounds)));
    ++rounds;
  }
  if (pm8->network().pendingJoin() != 4) {
    std::cerr << "ERROR: join knock never fired\n";
    return 1;
  }
  std::cerr << "  join knock consumed at a migrate phase boundary (round "
            << rounds << "): 4 ranks pending\n";

  const auto joined = parma::admitPendingJoin(*pm8, {.tolerance = 0.10});
  pcu::faults::clearPlan();
  if (!joined.admitted) {
    std::cerr << "ERROR: pending join was not admitted\n";
    return 1;
  }
  const auto& r8 = joined.report;
  pm8->verify();
  const auto after8 = dist::digest::elementDigests(*pm8);
  const std::size_t lost8 =
      covered8 == after8 ? 0 : covered8.size();  // digest gate: all or nothing
  std::cerr << "  12 dense ranks, imbalance " << r8.imbalance_before << " -> "
            << r8.imbalance_after << ", " << r8.elements_moved
            << " elements moved, join-to-rebalanced " << r8.total_ms
            << " ms\n";
  if (lost8 != 0 || r8.imbalance_after > 1.10) {
    std::cerr << "ERROR: acceptance bar missed (lost=" << lost8
              << ", imbalance=" << r8.imbalance_after << ")\n";
    return 1;
  }

  // --- scale 2: 16 -> 24 via a direct elasticJoin ------------------------
  auto gen16 = meshgen::boxTets(8, 8, 8);
  auto pm16 = makeMesh(gen16, 16);
  const auto covered16 = dist::digest::elementDigests(*pm16);
  std::cerr << "scale 2: " << covered16.size()
            << " tets on 16 ranks, direct elasticJoin(8)\n";
  const auto r16 = parma::elasticJoin(*pm16, 8, {.tolerance = 0.10});
  pm16->verify();
  const auto after16 = dist::digest::elementDigests(*pm16);
  const std::size_t lost16 = covered16 == after16 ? 0 : covered16.size();
  std::cerr << "  24 dense ranks, imbalance " << r16.imbalance_before
            << " -> " << r16.imbalance_after << ", join-to-rebalanced "
            << r16.total_ms << " ms\n";
  if (lost16 != 0 || r16.imbalance_after > 1.10) {
    std::cerr << "ERROR: acceptance bar missed at 16->24 (lost=" << lost16
              << ", imbalance=" << r16.imbalance_after << ")\n";
    return 1;
  }

  std::cerr << "elastic demo: OK (zero lost elements at both scales)\n";
  std::cout << "{\n";
  emitScale(std::cout, "join_8_to_12", r8, covered8.size(), lost8, false);
  emitScale(std::cout, "join_16_to_24", r16, covered16.size(), lost16, true);
  std::cout << "}\n";
  return 0;
}
