/// \file poisson_demo.cpp
/// \brief End-to-end PDE analysis on the distributed mesh: partition a
/// vessel, balance it for a finite-element solve (vertex balance is what
/// FE scaling cares about — paper Sec. I), solve a Poisson problem, and
/// export the solution.

#include <iostream>

#include "core/vtk.hpp"
#include "dist/partedmesh.hpp"
#include "field/field.hpp"
#include "meshgen/workloads.hpp"
#include "parma/improve.hpp"
#include "parma/metrics.hpp"
#include "part/partition.hpp"
#include "solver/poisson.hpp"

int main() {
  const int nparts = 8;
  auto gen = meshgen::vessel({.circumferential = 6, .axial = 24});
  std::cout << "vessel mesh: " << gen.mesh->count(3) << " tets, "
            << gen.mesh->count(0) << " vertices\n";

  const auto assign =
      part::partition(*gen.mesh, nparts, part::Method::HypergraphRB);
  auto pm = dist::PartedMesh::distribute(
      *gen.mesh, gen.model.get(), assign,
      dist::PartMap(nparts, pcu::Machine(2, 4)));

  // FE analyses scale with the balance of entities holding degrees of
  // freedom — vertices for P1 — so balance those first.
  std::cout << "vertex imbalance before ParMA: "
            << parma::entityBalance(*pm, 0).imbalancePercent() << "%\n";
  parma::improve(*pm, "Vtx>Rgn", {.tolerance = 0.05});
  std::cout << "vertex imbalance after ParMA:  "
            << parma::entityBalance(*pm, 0).imbalancePercent() << "%\n";

  // -lap(u) = 1 with u = 0 on the vessel wall and caps.
  const auto report = solver::solvePoisson(
      *pm, [](const common::Vec3&) { return 1.0; },
      [](const common::Vec3&) { return 0.0; },
      {.max_iterations = 2000, .tolerance = 1e-9});
  std::cout << "CG " << (report.converged ? "converged" : "did NOT converge")
            << " in " << report.iterations
            << " iterations (residual " << report.residual << ")\n";

  // Export part 0's piece with the solution as point data via a cell
  // average (legacy-VTK cell scalars keep the example dependency-free).
  auto& mesh = pm->part(0).mesh();
  field::Field u(mesh, "u", field::ValueType::Scalar,
                 field::Location::Vertex);
  core::CellScalar avg{"u_avg", {}};
  for (core::Ent e : pm->part(0).elements())
    avg.values[e] = u.elementScalar(e);
  core::writeVtk(mesh, "poisson_part0.vtk", {avg});
  std::cout << "wrote poisson_part0.vtk (part 0 of " << nparts << ")\n";
  return 0;
}
