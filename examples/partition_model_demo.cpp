/// \file partition_model_demo.cpp
/// \brief The paper's running example (Figs. 3-4): a 2D mesh distributed
/// to three parts over two nodes, its part boundaries, residence sets,
/// ownership, and the derived partition model.

#include <iostream>

#include "core/measure.hpp"
#include "dist/partedmesh.hpp"
#include "dist/ptnmodel.hpp"
#include "meshgen/boxmesh.hpp"

int main() {
  // A small triangle mesh of the unit square, split into thirds along x.
  auto gen = meshgen::boxTris(6, 6);
  std::vector<dist::PartId> dest;
  for (core::Ent e : gen.mesh->entities(2)) {
    const double x = core::centroid(*gen.mesh, e).x;
    dest.push_back(x < 1.0 / 3 ? 0 : (x < 2.0 / 3 ? 1 : 2));
  }
  // Parts 0 and 1 share node i; part 2 lives on node j (Fig. 3).
  dist::PartMap map(3, pcu::Machine(2, 2));
  auto pm = dist::PartedMesh::distribute(*gen.mesh, gen.model.get(), dest,
                                         map);
  pm->verify();

  std::cout << "three-part distributed mesh on two nodes (paper Fig. 3)\n";
  for (dist::PartId p = 0; p < pm->parts(); ++p) {
    const auto& part = pm->part(p);
    std::size_t shared_verts = 0, owned_shared = 0;
    for (core::Ent v : part.mesh().entities(0)) {
      if (!part.isShared(v)) continue;
      ++shared_verts;
      if (part.isOwned(v)) ++owned_shared;
    }
    std::cout << "  part " << p << " on node " << map.nodeOf(p) << ": "
              << part.elementCount() << " faces, " << shared_verts
              << " boundary vertices (" << owned_shared << " owned), "
              << "neighbors over vertices:";
    for (dist::PartId q : part.neighborParts(0)) std::cout << " " << q;
    std::cout << "\n";
  }

  // Residence sets: boundary entities exist on every part whose elements
  // they bound (paper Sec. II-B).
  const auto& part0 = pm->part(0);
  for (core::Ent v : part0.mesh().entities(0)) {
    if (part0.residence(v).size() >= 3) {
      std::cout << "\nvertex at " << part0.mesh().point(v)
                << " is duplicated on parts:";
      for (dist::PartId q : part0.residence(v)) std::cout << " " << q;
      std::cout << " (like M0_i in Fig. 3)\n";
      break;
    }
  }

  // The partition model groups entities by residence set (Fig. 4).
  dist::PtnModel ptn(*pm);
  std::cout << "\npartition model (paper Fig. 4):\n";
  for (const auto& pe : ptn.entities()) {
    std::cout << "  P^" << pe.dim << "_" << pe.id << "  residence {";
    for (std::size_t i = 0; i < pe.residence.size(); ++i)
      std::cout << (i ? "," : "") << pe.residence[i];
    std::cout << "}  owner P" << pe.owner << "\n";
  }

  // Architecture awareness (Fig. 6): classify boundaries on/off node.
  std::size_t on_node = 0, off_node = 0;
  for (dist::PartId p = 0; p < pm->parts(); ++p) {
    for (const auto& [e, r] : pm->part(p).remotes()) {
      (void)e;
      for (const dist::Copy& c : r.copies)
        (map.sameNode(p, c.part) ? on_node : off_node) += 1;
    }
  }
  std::cout << "\nboundary entity copies shared on-node: " << on_node
            << ", off-node: " << off_node
            << " (on-node copies can live implicitly in shared memory, "
               "Fig. 6)\n";
  return 0;
}
