/// \file failover_demo.cpp
/// \brief Rank-failure tolerance demo + MTTR measurement.
///
/// The ISSUE acceptance scenario, end to end: a 16-part tet mesh survives
/// two rank failures without losing an element or restarting.
///   1. rank 5 is killed mid-migrate — the heartbeat detector declares it
///      dead within the configured deadline, the migration aborts
///      transactionally (kRankFailed naming the rank), and
///      dist::failover::evacuate rebuilds its parts from the buddy journal
///      onto the next surviving rank;
///   2. rank 11 hangs mid-balance — same detection, evacuation, then
///      parma::balanceAfterEvacuation repairs the adoption imbalance.
///
/// Human-readable progress goes to stderr; stdout carries one JSON object
/// with the measured mean-time-to-recovery breakdown (detect, evacuate,
/// rebalance) that tools/bench_recovery.sh merges into BENCH_RECOVERY.json.
///
///   ./build/examples/failover_demo
#include <chrono>
#include <cstdlib>
#include <iostream>

#include "dist/checkpoint.hpp"
#include "dist/failover.hpp"
#include "dist/partedmesh.hpp"
#include "meshgen/boxmesh.hpp"
#include "parma/balance.hpp"
#include "part/partition.hpp"
#include "pcu/error.hpp"
#include "pcu/faults.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Arm `plan`, run `op` expecting it to abort with kRankFailed, then
/// evacuate. Returns the evacuation report; `op_ms` gets the time from the
/// operation start to the completed evacuation (the full outage window).
template <class Op>
dist::failover::EvacuationReport incident(
    dist::PartedMesh& pm, const dist::failover::BuddyJournal& journal,
    const pcu::faults::FaultPlan& plan, Op&& op, double& op_ms) {
  pcu::faults::setPlan(plan);
  const auto t0 = Clock::now();
  try {
    op();
    std::cerr << "ERROR: operation crossing the dead rank completed\n";
    std::exit(1);
  } catch (const pcu::Error& e) {
    if (e.code() != pcu::ErrorCode::kRankFailed) throw;
    std::cerr << "  detected: " << e.what() << "\n";
  }
  auto rep = dist::failover::evacuate(pm, journal);
  op_ms = msSince(t0);
  pcu::faults::clearPlan();
  return rep;
}

}  // namespace

int main() {
  auto gen = meshgen::boxTets(6, 6, 6);
  const int nparts = 16;
  const auto assign = part::partition(*gen.mesh, nparts, part::Method::RCB);
  auto pm = dist::PartedMesh::distribute(
      *gen.mesh, gen.model.get(), assign,
      dist::PartMap(nparts, pcu::Machine::flat(nparts)));

  std::size_t total_elems = 0;
  for (dist::PartId p = 0; p < pm->parts(); ++p)
    total_elems += pm->part(p).elements().size();
  std::cerr << "mesh: " << total_elems << " tets on " << nparts
            << " parts, one rank each\n";

  dist::failover::BuddyJournal journal;

  // Incident 1: kill rank 5 at migration phase 2.
  journal.record(*pm);
  pcu::faults::FaultPlan plan;
  plan.seed = 2026;
  plan.kill = {5, 2};
  plan.deadline_ms = 30;
  std::cerr << "incident 1: kill rank 5 mid-migrate (deadline 30 ms)\n";
  double mttr1 = 0.0;
  dist::MigrationPlan skew(static_cast<std::size_t>(nparts));
  int i = 0;
  for (core::Ent e : pm->part(2).elements())
    if (i++ % 3 == 0) skew[2][e] = 9;
  const auto rep1 = incident(
      *pm, journal, plan, [&] { pm->migrate(skew); }, mttr1);
  pm->verify();
  std::cerr << "  evacuated " << rep1.entities_adopted << " entities of part "
            << rep1.parts_evacuated.front() << " onto rank "
            << pm->network().partMap().rankOf(rep1.parts_evacuated.front())
            << " (detect " << rep1.detect_ms << " ms, evacuate "
            << rep1.evacuate_ms << " ms)\n";

  // The run continues: the survivors commit the migration that the dead
  // rank aborted.
  pm->migrate(skew);
  pm->verify();

  // Incident 2: rank 11 hangs at balance phase 1.
  journal.record(*pm);
  plan = {};
  plan.seed = 2027;
  plan.hang = {11, 1};
  plan.deadline_ms = 30;
  std::cerr << "incident 2: hang rank 11 mid-balance (deadline 30 ms)\n";
  double mttr2 = 0.0;
  parma::BalanceOptions opts;
  opts.max_rounds = 2;
  const auto rep2 = incident(
      *pm, journal, plan, [&] { parma::balance(*pm, "Rgn", opts); }, mttr2);
  pm->verify();

  // Post-evacuation repair on the 14 survivors.
  const auto t0 = Clock::now();
  const auto bal = parma::balanceAfterEvacuation(*pm, "Rgn", rep2, opts);
  const double rebalance_ms = msSince(t0);
  pm->verify();
  std::cerr << "  evacuated " << rep2.entities_adopted
            << " entities, rebalance " << bal.initial_imbalance << " -> "
            << bal.final_imbalance << " (" << rebalance_ms << " ms), "
            << bal.ranks_lost << " ranks lost total\n";

  std::size_t final_elems = 0;
  for (dist::PartId p = 0; p < pm->parts(); ++p)
    final_elems += pm->part(p).elements().size();
  if (final_elems != total_elems) {
    std::cerr << "ERROR: element count changed: " << total_elems << " -> "
              << final_elems << "\n";
    return 1;
  }
  std::cerr << "failover demo: OK (" << final_elems
            << " elements, zero lost)\n";

  std::cout << "{\n"
            << "  \"parts\": " << nparts << ",\n"
            << "  \"elements\": " << total_elems << ",\n"
            << "  \"deadline_ms\": 30,\n"
            << "  \"kill_mid_migrate\": {\"detect_ms\": " << rep1.detect_ms
            << ", \"evacuate_ms\": " << rep1.evacuate_ms
            << ", \"entities_adopted\": " << rep1.entities_adopted
            << ", \"mttr_ms\": " << mttr1 << "},\n"
            << "  \"hang_mid_balance\": {\"detect_ms\": " << rep2.detect_ms
            << ", \"evacuate_ms\": " << rep2.evacuate_ms
            << ", \"entities_adopted\": " << rep2.entities_adopted
            << ", \"mttr_ms\": " << mttr2
            << ", \"rebalance_ms\": " << rebalance_ms << "},\n"
            << "  \"elements_lost\": " << (total_elems - final_elems) << "\n"
            << "}\n";
  return 0;
}
