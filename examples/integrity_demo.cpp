/// \file integrity_demo.cpp
/// \brief Memory-integrity benchmark: the cost of wearing the armor, and
/// the seeded memflip repair matrix.
///
/// Two measurements over the same timestep loop (per step: a seeded
/// random migration, a bounded balance pass, a Poisson solve — the shape
/// of a svc job) on an RCB-partitioned tet mesh:
///
///   * audit overhead — the loop runs bare (integrity off) and armored
///     (per-part checksum ledgers audited and resealed at every
///     transactional commit point). Commit points bound the
///     mesh-modifying operations; the solve compute between them is what
///     amortizes the audits, exactly as in a production timestep loop.
///     The version-gated incremental rehash keeps each boundary paying
///     only for sections the operation actually touched. The headline is
///     the armored run's relative overhead, asserted <= 5% by
///     tools/bench_integrity.sh. A third run adds the buddy-journal
///     replica refresh at each seal (the failover feature the repair
///     ladder's tier 2 draws on); its cost is reported separately as
///     full_armor — replication is priced by the failover bench, not by
///     the audit claim.
///
///   * repair matrix — 20 seeds, each planting a deterministic memflip
///     burst (target family and boundary phase cycled from the seed)
///     into live sealed state mid-workload. Every seed must end with all
///     injected flips detected, repaired through the ladder (CSR rebuild
///     -> buddy journal -> checkpoint), and an element-digest multiset
///     identical to the pristine mesh: 20/20 or the demo exits nonzero.
///
/// Prints one JSON object on stdout; tools/bench_integrity.sh asserts
/// the headline claims and merges the numbers into BENCH_INTEGRITY.json.
/// Scale via PUMI_REPRO_SCALE=small|default|large.
///
///   ./build/examples/integrity_demo
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/mesh.hpp"
#include "dist/failover.hpp"
#include "dist/integrity.hpp"
#include "dist/partedmesh.hpp"
#include "meshgen/boxmesh.hpp"
#include "parma/balance.hpp"
#include "part/partition.hpp"
#include "pcu/faults.hpp"
#include "pcu/machine.hpp"
#include "repro/workloads.hpp"
#include "solver/poisson.hpp"

namespace {

using core::Ent;
using dist::PartId;
namespace faults = pcu::faults;

double msSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

std::unique_ptr<dist::PartedMesh> makeMesh(const meshgen::Generated& gen,
                                           int nparts) {
  const auto assign = part::partition(*gen.mesh, nparts, part::Method::RCB);
  return dist::PartedMesh::distribute(
      *gen.mesh, gen.model.get(), assign,
      dist::PartMap(nparts, pcu::Machine::flat(nparts)));
}

dist::MigrationPlan randomPlan(dist::PartedMesh& pm, common::Rng& rng,
                               double move_prob) {
  dist::MigrationPlan plan(static_cast<std::size_t>(pm.parts()));
  for (PartId p = 0; p < pm.parts(); ++p)
    for (Ent e : pm.part(p).elements()) {
      if (rng.uniform() >= move_prob) continue;
      const auto dest = static_cast<PartId>(
          rng.below(static_cast<std::uint64_t>(pm.parts())));
      if (dest != p) plan[static_cast<std::size_t>(p)][e] = dest;
    }
  return plan;
}

/// Tag + primed CSR so every memflip target family has eligible bytes.
void primeTagAndCsr(dist::PartedMesh& pm, int dim) {
  for (PartId p = 0; p < pm.parts(); ++p) {
    core::Mesh& m = pm.part(p).mesh();
    auto tag = m.tags().create<double>("weight", 1);
    for (Ent v : m.entities(0))
      m.tags().setScalar<double>(tag, v, 1.0 + static_cast<double>(p));
    (void)m.csr(dim, 0);
  }
}

/// Geometric digest multiset: the "nothing lost, nothing mutated" witness,
/// invariant under migration, balancing and in-place repair.
std::uint64_t elementDigest(const core::Mesh& m, Ent e) {
  std::vector<std::array<double, 3>> pts;
  for (Ent v : m.verts(e)) {
    const auto x = m.point(v);
    pts.push_back({x.x, x.y, x.z});
  }
  std::sort(pts.begin(), pts.end());
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const auto& pt : pts)
    for (double d : pt) {
      std::uint64_t bits = 0;
      std::memcpy(&bits, &d, sizeof bits);
      h = (h ^ bits) * 0x100000001b3ull;
    }
  return h;
}

std::multiset<std::uint64_t> elementDigests(const dist::PartedMesh& pm) {
  std::multiset<std::uint64_t> out;
  for (PartId p = 0; p < pm.parts(); ++p) {
    const core::Mesh& m = pm.part(p).mesh();
    for (Ent e : pm.part(p).elements()) out.insert(elementDigest(m, e));
  }
  return out;
}

struct WorkloadSpec {
  int nx = 0, ny = 0, nz = 0;
  int nparts = 0;
  int epochs = 0;  ///< rebalance epochs: migrate + balance + K solves each
  int solves = 0;  ///< solver timesteps per epoch
};

/// One rebalance epoch of an adaptive application: a migration, a bounded
/// balance pass, then K solver timesteps — adaptive codes solve every
/// step and rebalance every ten-or-so. When armored, the armor audits at
/// each operation entry and seals at each commit; the solver compute
/// between commit points is what amortizes them, exactly as in
/// production. The solves run a fixed iteration count (tolerance 0) so
/// both sides of the A/B do identical arithmetic.
void runWorkload(dist::PartedMesh& pm, std::uint64_t seed, int epochs,
                 int solves, dist::integrity::Armor* armor) {
  common::Rng rng(seed);
  for (int s = 0; s < epochs; ++s) {
    if (armor != nullptr) armor->auditAndRepair("bench:plan");
    pm.migrate(randomPlan(pm, rng, 0.05));
    parma::BalanceOptions bopts;
    bopts.max_rounds = 2;
    parma::balance(pm, "Rgn", bopts);
    // Audit-before-read: a flip planted at balance's final commit point
    // must be repaired before the solve walks the pools.
    if (armor != nullptr) armor->auditAndRepair("bench:solve");
    for (int k = 0; k < solves; ++k) {
      solver::PoissonOptions popts;
      popts.max_iterations = 120;
      popts.tolerance = 0.0;  // fixed work per timestep
      solver::solvePoisson(
          pm, [](const common::Vec3&) { return 1.0; },
          [](const common::Vec3&) { return 0.0; }, popts);
    }
  }
}

}  // namespace

int main() {
  const auto scale = repro::scaleFromEnv();
  WorkloadSpec spec;
  switch (scale) {
    case repro::Scale::Small:
      spec = {10, 10, 10, 8, 2, 10};
      break;
    case repro::Scale::Default:
      spec = {12, 12, 12, 8, 2, 14};
      break;
    case repro::Scale::Large:
      spec = {16, 16, 16, 16, 3, 16};
      break;
  }

  auto gen = meshgen::boxTets(spec.nx, spec.ny, spec.nz);

  // --- A/B/C: the same loop bare, armored, and armored + replication ------
  //
  // The headline overhead is measured directly: the armor accumulates its
  // own wall time (audit_ms + seal_ms, on every exit path), so
  // overhead = armor_self / (armored_total - armor_self). An A/B
  // subtraction of two multi-second runs is reported as a cross-check but
  // is too noisy on a shared CI core to assert against.
  const int reps = scale == repro::Scale::Large ? 2 : 3;
  double bare_ms = 1e30, armored_ms = 1e30, full_ms = 1e30;
  double armor_self_ms = 0, full_self_ms = 0;
  std::uint64_t bytes_hashed = 0, sections_rehashed = 0, audits = 0,
                seals = 0;
  const auto timeArmored = [&](bool with_journal, double& best_total,
                               double& best_self) {
    auto pm = makeMesh(gen, spec.nparts);
    primeTagAndCsr(*pm, 3);
    pm->setIntegrity(true);
    dist::failover::BuddyJournal journal;
    dist::integrity::Armor& armor = pm->armor();
    if (with_journal) armor.setJournal(&journal);
    armor.sealAndMaybeInject();  // boundary 0: baseline seal
    const auto before = armor.report();
    const auto t0 = std::chrono::steady_clock::now();
    runWorkload(*pm, 42, spec.epochs, spec.solves, &armor);
    armor.auditAndRepair("bench:final");
    const double total = msSince(t0);
    const auto after = armor.report();
    if (total < best_total) {
      best_total = total;
      best_self = (after.audit_ms + after.seal_ms) -
                  (before.audit_ms + before.seal_ms);
      if (!with_journal) {
        bytes_hashed = after.bytes_hashed;
        sections_rehashed = after.sections_rehashed;
        audits = after.audits;
        seals = after.seals;
      }
    }
  };
  for (int rep = 0; rep < reps; ++rep) {
    {
      auto pm = makeMesh(gen, spec.nparts);
      primeTagAndCsr(*pm, 3);
      const auto t0 = std::chrono::steady_clock::now();
      runWorkload(*pm, 42, spec.epochs, spec.solves, nullptr);
      bare_ms = std::min(bare_ms, msSince(t0));
    }
    timeArmored(false, armored_ms, armor_self_ms);
    timeArmored(true, full_ms, full_self_ms);
  }
  const double overhead_pct =
      100.0 * armor_self_ms / (armored_ms - armor_self_ms);
  const double full_pct = 100.0 * full_self_ms / (full_ms - full_self_ms);
  const double ab_delta_pct = 100.0 * (armored_ms - bare_ms) / bare_ms;

  // --- the 20-seed memflip repair matrix ----------------------------------
  static const char* kTargets[] = {"pool", "tag", "remotes", "csr"};
  const int kSeeds = 20;
  int repaired_ok = 0;
  std::uint64_t flips_injected = 0, mismatches = 0;
  std::array<std::uint64_t, 4> tiers{};  // [0] unused, 1..3 per ladder tier
  auto matrix_gen = meshgen::boxTets(3, 3, 3);
  for (int seed = 1; seed <= kSeeds; ++seed) {
    const std::string target = kTargets[seed % 4];
    const int phase = seed % 3;
    const int bits = 1 + seed % 4;

    auto pm = makeMesh(matrix_gen, 4);
    primeTagAndCsr(*pm, 3);
    pm->setIntegrity(true);
    const auto pristine = elementDigests(*pm);

    dist::failover::BuddyJournal journal;
    dist::integrity::Armor& armor = pm->armor();
    armor.setJournal(&journal);

    faults::setPlan(faults::parsePlan(
        "seed=" + std::to_string(seed) + ",memflip=" + std::to_string(bits) +
        "@" + std::to_string(phase) + ":" + target));
    armor.sealAndMaybeInject();  // boundary 0

    bool ok = true;
    try {
      runWorkload(*pm, static_cast<std::uint64_t>(seed), 2, 1, &armor);
      armor.auditAndRepair("matrix:final");
      pm->verify();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "seed %d: %s\n", seed, e.what());
      ok = false;
    }
    faults::clearPlan();

    const auto rep = armor.report();
    flips_injected += rep.flips_injected;
    mismatches += rep.mismatches;
    for (const auto& c : rep.detected)
      if (c.repair_tier >= 1 && c.repair_tier <= 3)
        ++tiers[static_cast<std::size_t>(c.repair_tier)];
    ok = ok && rep.parts_unrepaired.empty() &&
         rep.flips_injected + rep.flips_skipped ==
             static_cast<std::uint64_t>(bits) &&
         (rep.flips_injected == 0 || rep.mismatches >= 1) &&
         elementDigests(*pm) == pristine;
    if (ok) ++repaired_ok;
  }

  // --- report -------------------------------------------------------------
  std::printf("{\n");
  std::printf("  \"scale\": \"%s\",\n", repro::scaleName(scale));
  std::printf("  \"workload\": {\"box\": [%d, %d, %d], \"parts\": %d, "
              "\"epochs\": %d, \"solves_per_epoch\": %d, \"per_epoch\": "
              "\"migrate + balance + %d fixed-iteration solves\"},\n",
              spec.nx, spec.ny, spec.nz, spec.nparts, spec.epochs,
              spec.solves, spec.solves);
  std::printf("  \"audit\": {\"bare_ms\": %.3f, \"armored_ms\": %.3f, "
              "\"armor_self_ms\": %.3f, \"overhead_pct\": %.2f, "
              "\"ab_delta_pct\": %.2f, \"audits\": %llu, \"seals\": %llu, "
              "\"bytes_hashed\": %llu, \"sections_rehashed\": %llu},\n",
              bare_ms, armored_ms, armor_self_ms, overhead_pct, ab_delta_pct,
              static_cast<unsigned long long>(audits),
              static_cast<unsigned long long>(seals),
              static_cast<unsigned long long>(bytes_hashed),
              static_cast<unsigned long long>(sections_rehashed));
  std::printf("  \"full_armor\": {\"armored_journal_ms\": %.3f, "
              "\"armor_self_ms\": %.3f, \"overhead_pct\": %.2f, \"note\": "
              "\"adds the buddy-journal replica refresh at every seal; "
              "replication cost, priced by the failover bench\"},\n",
              full_ms, full_self_ms, full_pct);
  std::printf("  \"repair\": {\"seeds\": %d, \"successes\": %d, "
              "\"flips_injected\": %llu, \"mismatches\": %llu, "
              "\"tier_csr_rebuild\": %llu, \"tier_journal\": %llu, "
              "\"tier_checkpoint\": %llu, \"success_rate\": %.2f}\n",
              kSeeds, repaired_ok,
              static_cast<unsigned long long>(flips_injected),
              static_cast<unsigned long long>(mismatches),
              static_cast<unsigned long long>(tiers[1]),
              static_cast<unsigned long long>(tiers[2]),
              static_cast<unsigned long long>(tiers[3]),
              static_cast<double>(repaired_ok) / kSeeds);
  std::printf("}\n");
  return repaired_ok == kSeeds ? 0 : 1;
}
