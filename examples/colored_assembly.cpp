/// \file colored_assembly.cpp
/// \brief The paper's second decomposition form (Sec. I): "coloring into
/// the small independent sets ... advantageous for on-node threaded
/// operations using a shared memory".
///
/// Assembles a lumped mass vector (per-vertex volume shares) with multiple
/// threads and NO atomics or locks: elements of one color never share a
/// vertex, so each color is processed as a parallel-for, colors in
/// sequence. The result is verified against a serial assembly.

#include <iostream>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/measure.hpp"
#include "meshgen/boxmesh.hpp"
#include "part/coloring.hpp"

int main() {
  auto gen = meshgen::boxTets(12, 12, 12);
  core::Mesh& mesh = *gen.mesh;
  std::cout << "mesh: " << mesh.count(3) << " tets, " << mesh.count(0)
            << " vertices\n";

  const auto coloring =
      part::colorElements(mesh, part::ColorRelation::SharedVertex);
  std::cout << "colored into " << coloring.colors
            << " independent sets (max conflict degree bound)\n";

  // Dense vertex indexing for the assembly target.
  std::unordered_map<core::Ent, std::size_t, core::EntHash> vidx;
  for (core::Ent v : mesh.entities(0)) vidx.emplace(v, vidx.size());
  const std::vector<core::Ent> elems = mesh.all(3);

  // --- serial reference ----------------------------------------------------
  std::vector<double> serial(vidx.size(), 0.0);
  for (core::Ent e : elems) {
    const double share = core::measure(mesh, e) / 4.0;
    for (core::Ent v : mesh.verts(e)) serial[vidx.at(v)] += share;
  }

  // --- threaded, lock-free assembly by color ------------------------------
  const int nthreads = 4;
  std::vector<double> threaded(vidx.size(), 0.0);
  for (int c = 0; c < coloring.colors; ++c) {
    const auto members = coloring.members(c);
    std::vector<std::thread> pool;
    for (int t = 0; t < nthreads; ++t) {
      pool.emplace_back([&, t] {
        // Strided parallel-for over this color's elements; within a color
        // no two elements touch the same vertex, so the scatter is safe.
        for (std::size_t i = static_cast<std::size_t>(t); i < members.size();
             i += nthreads) {
          const core::Ent e = elems[members[i]];
          const double share = core::measure(mesh, e) / 4.0;
          for (core::Ent v : mesh.verts(e)) threaded[vidx.at(v)] += share;
        }
      });
    }
    for (auto& th : pool) th.join();
  }

  double max_diff = 0.0, total = 0.0;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(serial[i] - threaded[i]));
    total += threaded[i];
  }
  std::cout << "threaded assembly with " << nthreads
            << " threads, no atomics: max deviation from serial = "
            << max_diff << "\n";
  std::cout << "assembled total volume = " << total
            << " (box volume 1)\n";
  return max_diff < 1e-12 ? 0 : 1;
}
