/// \file recovery_demo.cpp
/// \brief Kill-and-restart recovery demo: the three self-healing tiers.
///
/// Runs dynamic load balancing on a distributed tet mesh while a transient
/// fault plan drops and corrupts transport messages, with all three
/// recovery tiers on:
///   1. reliable delivery (pcu::arq) re-fetches lost/corrupt segments, so
///      rounds complete instead of aborting;
///   2. the transactional layer retries any round the faults still manage
///      to abort;
///   3. a checkpoint is written after every balancing round, alternating
///      between two directories — then the process "crashes" mid-way
///      through writing the next checkpoint, and the restart path picks
///      the newest directory that still validates, restores a
///      fingerprint-identical mesh, and resumes balancing to completion.
///
///   ./build/examples/recovery_demo
#include <cassert>
#include <filesystem>
#include <iostream>

#include "dist/checkpoint.hpp"
#include "dist/partedmesh.hpp"
#include "meshgen/boxmesh.hpp"
#include "parma/balance.hpp"
#include "part/partition.hpp"
#include "pcu/arq.hpp"
#include "pcu/faults.hpp"

int main() {
  namespace fs = std::filesystem;

  // --- build and distribute the mesh --------------------------------------
  auto gen = meshgen::boxTets(8, 8, 8);
  const int nparts = 4;
  const auto assign = part::partition(*gen.mesh, nparts, part::Method::RCB);
  const dist::PartMap map(nparts, pcu::Machine(2, 2));
  auto pm =
      dist::PartedMesh::distribute(*gen.mesh, gen.model.get(), assign, map);

  // --- arm the fault plan and the recovery stack ---------------------------
  pcu::arq::setReliable(true);  // tier 1 (and tier 2's default retry budget)
  pcu::faults::FaultPlan plan;
  plan.seed = 2026;
  plan.drop = 0.02;
  plan.corrupt = 0.02;
  pcu::faults::setPlan(plan);

  // Skew the partition so balancing has real work — and real transport
  // traffic crossing the faulty links. This migration itself runs under
  // the fault plan: tier 1 is already recovering segments here.
  dist::MigrationPlan skew(static_cast<std::size_t>(nparts));
  int i = 0;
  for (core::Ent e : pm->part(1).elements())
    if (i++ % 2 == 0) skew[1][e] = 0;
  for (core::Ent e : pm->part(3).elements()) skew[3][e] = 2;
  pm->migrate(skew);

  const fs::path base = fs::temp_directory_path() / "pumi_recovery_demo";
  fs::remove_all(base);
  const std::string dirs[2] = {(base / "ckpt-A").string(),
                               (base / "ckpt-B").string()};

  parma::BalanceOptions opts;
  opts.tolerance = 0.05;
  opts.max_rounds = 1;  // one round per call so we checkpoint between rounds

  // --- rounds with per-round checkpoints, then a simulated crash -----------
  auto report = parma::balance(*pm, "Rgn", opts);
  dist::checkpoint(*pm, dirs[0]);
  std::cout << "round 1: imbalance " << report.initial_imbalance << " -> "
            << report.final_imbalance << ", checkpoint -> " << dirs[0]
            << "\n";
  const std::uint64_t fp_committed = pm->fingerprint();

  report = parma::balance(*pm, "Rgn", opts);
  // The crash: the process dies while writing round 2's checkpoint. We
  // emulate it by removing the MANIFEST — exactly the state a real kill
  // leaves, since the MANIFEST is renamed in last.
  dist::checkpoint(*pm, dirs[1]);
  fs::remove(fs::path(dirs[1]) / "MANIFEST");
  std::cout << "round 2: checkpoint to " << dirs[1]
            << " interrupted (no MANIFEST)\n";
  pm.reset();  // the dead process took its in-memory mesh with it

  // --- restart: pick the newest directory that validates -------------------
  std::string latest;
  for (const auto& d : dirs)
    if (dist::checkpointValid(d)) latest = d;
  assert(!latest.empty() && "no valid checkpoint to restart from");
  std::cout << "restart: restoring from " << latest << "\n";
  auto restored = dist::restore(latest, gen.model.get(), map);
  assert(restored->fingerprint() == fp_committed &&
         "restored mesh must be fingerprint-identical to the checkpoint");
  restored->verify();

  // --- resume balancing on the restored mesh to completion -----------------
  opts.max_rounds = 3;
  report = parma::balance(*restored, "Rgn", opts);
  restored->verify();
  pcu::faults::clearPlan();

  const auto st = pcu::arq::stats();
  std::cout << "resume:  imbalance " << report.initial_imbalance << " -> "
            << report.final_imbalance << " in " << report.rounds
            << " round(s), " << report.rounds_retried << " retried, "
            << report.rounds_faulted << " faulted\n"
            << "arq:     " << st.retransmits << " retransmit(s), "
            << st.recovered << " recovered, " << st.corrupt_dropped
            << " corrupt dropped, " << st.duplicates_dropped
            << " duplicate(s) dropped\n"
            << "recovery demo: OK\n";
  return 0;
}
