/// \file service_demo.cpp
/// \brief Multi-tenant mesh-service demo: the ISSUE acceptance proofs, end
/// to end, against svc::Scheduler.
///
///   1. uncontended baseline — clean jobs run back to back; their p50/p99
///      latency is the bar the overload proof is measured against;
///   2. tenant isolation — tenant "alpha" runs drop+corrupt chaos (with a
///      tenant-scoped reliable-delivery override) while tenant "bravo" runs
///      clean, concurrently, across a seed matrix replayed twice: bravo's
///      element digest must be bit-identical to its solo run every time;
///   3. blast radius — alpha loses a rank mid-job: the worker evacuates,
///      the ledger permanently reclaims the corpse, bravo is untouched;
///   4. overload — ~2x sustained capacity: the bounded queue holds, excess
///      is shed/rejected by name (never silently dropped, never aborted),
///      and the admitted p99 stays within 3x of the uncontended p99.
///
/// Human-readable progress goes to stderr; stdout carries one JSON object
/// that tools/bench_service.sh merges into BENCH_SERVICE.json.
///
///   ./build/examples/service_demo
#include <chrono>
#include <cstdint>
#include <future>
#include <iostream>
#include <thread>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "pcu/error.hpp"
#include "svc/job.hpp"
#include "svc/report.hpp"
#include "svc/scheduler.hpp"

namespace {

svc::JobSpec cleanJob(const std::string& tenant, const std::string& name,
                      std::uint64_t seed) {
  svc::JobSpec s;
  s.tenant = tenant;
  s.name = name;
  s.width = 4;
  s.seed = seed;
  s.nx = s.ny = s.nz = 4;
  s.migrate_rounds = 2;
  s.balance = true;
  return s;
}

bool fail(const char* what) {
  std::cerr << "ERROR: " << what << "\n";
  return false;
}

}  // namespace

int main() {
  int exit_code = 0;

  // --- 1. uncontended baseline -------------------------------------------
  // Uncontended = no queueing, at the service's natural concurrency: jobs
  // are offered in waves of `workers`, so both executors stay busy but no
  // job ever waits. This is the latency bar overload is measured against.
  std::cerr << "baseline: 12 clean jobs, no queueing\n";
  constexpr int kBaselineJobs = 12;
  constexpr int kSeeds = 8;
  constexpr int kReplays = 2;
  double base_p50 = 0.0;
  double base_p99 = 0.0;
  std::map<std::uint64_t, std::uint64_t> solo_digest;
  {
    svc::Scheduler sched({.pool_size = 8, .workers = 2});
    for (int j = 0; j < kBaselineJobs; j += 2) {
      auto f0 = sched.submit(cleanJob("baseline", "warm-" + std::to_string(j),
                                      static_cast<std::uint64_t>(j)));
      auto f1 =
          sched.submit(cleanJob("baseline", "warm-" + std::to_string(j + 1),
                                static_cast<std::uint64_t>(j + 1)));
      for (auto* f : {&f0, &f1}) {
        const auto r = f->get();
        if (r.state != svc::JobState::kCompleted) {
          std::cerr << "ERROR: baseline job failed: " << r.reason << "\n";
          return 1;
        }
      }
    }
    // Solo reference digests for the isolation matrix.
    for (int s = 0; s < kSeeds; ++s) {
      const auto seed = 100 + static_cast<std::uint64_t>(s);
      const auto r =
          sched.run(cleanJob("bravo", "solo-" + std::to_string(s), seed));
      if (r.state != svc::JobState::kCompleted) return 1;
      solo_digest[seed] = r.digest;
    }
    const auto rep = sched.report();
    const auto* base = rep.tenant("baseline");
    base_p50 = base->p50_ms;
    base_p99 = base->p99_ms;
    std::cerr << "  p50 " << base_p50 << " ms, p99 " << base_p99 << " ms\n";
  }

  // --- 2. isolation: chaos in alpha, bravo byte-identical ------------------
  std::cerr << "isolation: " << kSeeds << " seeds x " << kReplays
            << " replays, alpha chaotic + bravo clean, concurrent\n";
  int digest_matches = 0;
  int chaotic_completed = 0;
  int clean_failovers = 0;
  int clean_faults = 0;
  for (int replay = 0; replay < kReplays; ++replay) {
    svc::Scheduler sched({.pool_size = 8, .workers = 2});
    for (int s = 0; s < kSeeds; ++s) {
      const auto seed = 100 + static_cast<std::uint64_t>(s);
      auto chaotic = cleanJob("alpha", "chaos-" + std::to_string(s), seed);
      chaotic.chaos.faults =
          "seed=" + std::to_string(1000 + s) + ",drop=0.2,corrupt=0.1";
      chaotic.chaos.reliable = true;
      auto fa = sched.submit(std::move(chaotic));
      auto fb =
          sched.submit(cleanJob("bravo", "clean-" + std::to_string(s), seed));
      const auto ra = fa.get();
      const auto rb = fb.get();
      if (ra.state == svc::JobState::kCompleted) ++chaotic_completed;
      if (rb.state != svc::JobState::kCompleted) {
        std::cerr << "ERROR: clean tenant failed: " << rb.reason << "\n";
        exit_code = 1;
        continue;
      }
      clean_failovers += rb.failovers;
      clean_faults += rb.faults_recovered;
      if (rb.digest == solo_digest[seed]) {
        ++digest_matches;
      } else {
        std::cerr << "ERROR: seed " << seed << " replay " << replay
                  << ": bravo digest drifted under alpha chaos\n";
        exit_code = 1;
      }
    }
    sched.drain();
  }
  std::cerr << "  " << digest_matches << "/" << kSeeds * kReplays
            << " digests identical to solo, clean tenant saw "
            << clean_failovers << " failovers / " << clean_faults
            << " faults\n";
  if (clean_failovers != 0 || clean_faults != 0) {
    (void)fail("clean tenant observed its sibling's chaos");
    exit_code = 1;
  }

  // --- 3. blast radius: a rank failure stays inside its tenant ------------
  std::cerr << "blast radius: kill one of alpha's ranks mid-job\n";
  bool sibling_match = false;
  int blast_failovers = 0;
  int ranks_dead = 0;
  {
    svc::Scheduler sched({.pool_size = 8, .workers = 2});
    auto doomed = cleanJob("alpha", "doomed", 7);
    doomed.chaos.faults = "seed=7,kill=2@1,deadline=30";
    auto fa = sched.submit(std::move(doomed));
    auto fb = sched.submit(cleanJob("bravo", "bystander", 100));
    const auto ra = fa.get();
    const auto rb = fb.get();
    sched.drain();
    blast_failovers = ra.failovers;
    ranks_dead = sched.ledger().deadCount();
    sibling_match = rb.state == svc::JobState::kCompleted &&
                    rb.digest == solo_digest[100] && rb.failovers == 0;
    if (ra.state != svc::JobState::kCompleted || blast_failovers != 1) {
      (void)fail("the kill was not absorbed as exactly one failover");
      exit_code = 1;
    }
    if (ranks_dead != 1) {
      (void)fail("the ledger did not reclaim the dead rank");
      exit_code = 1;
    }
    if (!sibling_match) {
      (void)fail("the bystander tenant was disturbed by alpha's failure");
      exit_code = 1;
    }
    std::cerr << "  alpha absorbed " << blast_failovers
              << " failover, pool lost " << ranks_dead
              << " rank, bystander digest "
              << (sibling_match ? "identical" : "DRIFTED") << "\n";
  }

  // --- 4. overload: 2x capacity degrades structurally ----------------------
  // Sustained rate, not an instantaneous burst: the service absorbs one
  // job per (p50 / workers) ms, so offering at twice that rate is 2x
  // sustained capacity.
  const auto offer_interval =
      std::chrono::microseconds(static_cast<long>(base_p50 / 2 / 2 * 1000));
  std::cerr << "overload: offer 24 jobs at ~2x sustained capacity\n";
  constexpr int kOffered = 24;
  int completed = 0;
  int shed = 0;
  int rejected = 0;
  int aborts = 0;
  double overload_p99 = 0.0;
  std::size_t peak_depth = 0;
  std::size_t queue_capacity = 0;
  std::vector<std::string> shed_named;
  {
    svc::SchedulerOptions opts;
    opts.pool_size = 8;
    opts.workers = 2;
    opts.queue_capacity = 2;
    opts.max_resubmits = 3;
    opts.backoff_ms = 2;
    opts.max_backoff_ms = 10;
    opts.pack_same_tenant = false;
    svc::Scheduler sched(opts);
    queue_capacity = opts.queue_capacity;
    std::vector<std::future<svc::JobResult>> futures;
    for (int j = 0; j < kOffered; ++j) {
      auto spec = cleanJob("burst", "burst-" + std::to_string(j),
                           static_cast<std::uint64_t>(j));
      spec.priority = (j % 4 == 0) ? svc::Priority::kHigh
                                   : (j % 4 == 1 ? svc::Priority::kLow
                                                 : svc::Priority::kNormal);
      std::this_thread::sleep_for(offer_interval);
      try {
        futures.push_back(sched.submitWithRetry(std::move(spec)));
      } catch (const pcu::Error& e) {
        if (e.code() != pcu::ErrorCode::kAdmission) {
          std::cerr << "ERROR: non-admission abort: " << e.what() << "\n";
          ++aborts;
        } else {
          ++rejected;
        }
      } catch (const std::exception& e) {
        std::cerr << "ERROR: unstructured abort: " << e.what() << "\n";
        ++aborts;
      }
    }
    for (auto& f : futures) {
      const auto r = f.get();
      if (r.state == svc::JobState::kCompleted) {
        ++completed;
      } else if (r.state == svc::JobState::kShed) {
        ++shed;
        if (r.reason.empty()) {
          (void)fail("a shed job carried no reason");
          exit_code = 1;
        }
      } else {
        std::cerr << "ERROR: unexpected outcome for " << r.name << ": "
                  << r.reason << "\n";
        ++aborts;
      }
    }
    sched.drain();
    const auto rep = sched.report();
    peak_depth = rep.peak_queue_depth;
    shed_named = rep.shed_jobs;
    if (const auto* burst = rep.tenant("burst")) overload_p99 = burst->p99_ms;
  }
  const double p99_ratio = base_p99 > 0.0 ? overload_p99 / base_p99 : 0.0;
  std::cerr << "  " << completed << " completed, " << shed << " shed, "
            << rejected << " rejected, " << aborts << " aborts; admitted p99 "
            << overload_p99 << " ms (" << p99_ratio << "x uncontended)\n";
  if (completed + shed + rejected != kOffered || aborts != 0) {
    (void)fail("overload produced an abort or an unaccounted job");
    exit_code = 1;
  }
  if (peak_depth > queue_capacity) {
    (void)fail("the queue bound did not hold");
    exit_code = 1;
  }
  if (static_cast<int>(shed_named.size()) != shed) {
    (void)fail("shed jobs were not all named in the report");
    exit_code = 1;
  }
  if (p99_ratio > 3.0) {
    (void)fail("admitted p99 exceeded 3x the uncontended p99");
    exit_code = 1;
  }

  std::cerr << (exit_code == 0 ? "service demo: OK\n"
                               : "service demo: FAILED\n");

  std::cout << "{\n"
            << "  \"uncontended\": {\"jobs\": " << kBaselineJobs
            << ", \"p50_ms\": " << base_p50 << ", \"p99_ms\": " << base_p99
            << "},\n"
            << "  \"isolation\": {\"seeds\": " << kSeeds
            << ", \"replays\": " << kReplays
            << ", \"digest_matches\": " << digest_matches
            << ", \"expected_matches\": " << kSeeds * kReplays
            << ", \"chaotic_completed\": " << chaotic_completed
            << ", \"clean_failovers\": " << clean_failovers
            << ", \"clean_faults_recovered\": " << clean_faults << "},\n"
            << "  \"blast_radius\": {\"failovers\": " << blast_failovers
            << ", \"ranks_dead\": " << ranks_dead
            << ", \"sibling_digest_match\": "
            << (sibling_match ? "true" : "false") << "},\n"
            << "  \"overload\": {\"offered\": " << kOffered
            << ", \"completed\": " << completed << ", \"shed\": " << shed
            << ", \"rejected\": " << rejected << ", \"aborts\": " << aborts
            << ", \"queue_capacity\": " << queue_capacity
            << ", \"peak_queue_depth\": " << peak_depth
            << ", \"admitted_p99_ms\": " << overload_p99
            << ", \"p99_ratio_vs_uncontended\": " << p99_ratio
            << ", \"shed_jobs\": [";
  for (std::size_t i = 0; i < shed_named.size(); ++i)
    std::cout << (i ? ", " : "") << "\"" << svc::jsonEscape(shed_named[i])
              << "\"";
  std::cout << "]}\n}\n";
  return exit_code;
}
