#include "field/field.hpp"

#include <array>
#include <stdexcept>

#include "core/measure.hpp"

namespace field {

Field::Field(core::Mesh& mesh, std::string name, ValueType type,
             Location location)
    : mesh_(mesh), name_(std::move(name)), type_(type), location_(location) {
  const std::string tag_name = "field:" + name_;
  tag_ = mesh_.tags().find(tag_name);
  if (tag_ == nullptr)
    tag_ = mesh_.tags().create<double>(tag_name, componentsOf(type_));
  else if (tag_->components() != componentsOf(type_))
    throw std::invalid_argument("field tag exists with different shape: " +
                                name_);
}

int Field::nodeDim() const {
  return location_ == Location::Vertex ? 0 : mesh_.dim();
}

void Field::setScalar(core::Ent node, double v) {
  assert(type_ == ValueType::Scalar);
  mesh_.tags().setScalar<double>(tag_, node, v);
}

double Field::getScalar(core::Ent node) const {
  assert(type_ == ValueType::Scalar);
  return mesh_.tags().getScalar<double>(tag_, node);
}

void Field::setVector(core::Ent node, const Vec3& v) {
  assert(type_ == ValueType::Vector);
  mesh_.tags().set<double>(tag_, node, {v.x, v.y, v.z});
}

Vec3 Field::getVector(core::Ent node) const {
  assert(type_ == ValueType::Vector);
  const auto& v = mesh_.tags().get<double>(tag_, node);
  return {v[0], v[1], v[2]};
}

void Field::setMatrix(core::Ent node, const common::Mat3& m) {
  assert(type_ == ValueType::Matrix);
  mesh_.tags().set<double>(tag_, node,
                           std::vector<double>(m.a.begin(), m.a.end()));
}

common::Mat3 Field::getMatrix(core::Ent node) const {
  assert(type_ == ValueType::Matrix);
  const auto& v = mesh_.tags().get<double>(tag_, node);
  common::Mat3 m;
  std::copy(v.begin(), v.end(), m.a.begin());
  return m;
}

void Field::fillScalar(double v) {
  for (core::Ent e : mesh_.entities(nodeDim())) setScalar(e, v);
}

double Field::elementScalar(core::Ent elem) const {
  if (location_ == Location::Element) return getScalar(elem);
  const auto vs = mesh_.verts(elem);
  double sum = 0.0;
  for (core::Ent v : vs) sum += getScalar(v);
  return sum / static_cast<double>(vs.size());
}

double integrate(const Field& f) {
  double total = 0.0;
  core::Mesh& m = f.mesh();
  for (core::Ent e : m.entities(m.dim()))
    total += f.elementScalar(e) * core::measure(m, e);
  return total;
}

Vec3 gradient(const Field& f, core::Ent elem) {
  assert(f.location() == Location::Vertex);
  core::Mesh& m = f.mesh();
  const auto vs = m.verts(elem);
  if (elem.topo() == core::Topo::Tet) {
    // grad phi solves J^T g = du where J columns are edge vectors from v0.
    const Vec3 p0 = m.point(vs[0]);
    const Vec3 e1 = m.point(vs[1]) - p0;
    const Vec3 e2 = m.point(vs[2]) - p0;
    const Vec3 e3 = m.point(vs[3]) - p0;
    const double u0 = f.getScalar(vs[0]);
    const Vec3 du{f.getScalar(vs[1]) - u0, f.getScalar(vs[2]) - u0,
                  f.getScalar(vs[3]) - u0};
    // Solve with the adjugate: g = (1/det) * (c23, c31, c12) combination.
    const double det = common::dot(e1, common::cross(e2, e3));
    assert(det != 0.0);
    const Vec3 g = (common::cross(e2, e3) * du.x + common::cross(e3, e1) * du.y +
                    common::cross(e1, e2) * du.z) /
                   det;
    return g;
  }
  if (elem.topo() == core::Topo::Tri) {
    // In-plane gradient of the linear interpolant.
    const Vec3 p0 = m.point(vs[0]);
    const Vec3 e1 = m.point(vs[1]) - p0;
    const Vec3 e2 = m.point(vs[2]) - p0;
    const double u1 = f.getScalar(vs[1]) - f.getScalar(vs[0]);
    const double u2 = f.getScalar(vs[2]) - f.getScalar(vs[0]);
    // Solve 2x2 in the (e1, e2) basis via Gram matrix.
    const double a = common::dot(e1, e1), b = common::dot(e1, e2),
                 c = common::dot(e2, e2);
    const double det = a * c - b * b;
    assert(det != 0.0);
    const double x = (u1 * c - u2 * b) / det;
    const double y = (u2 * a - u1 * b) / det;
    return e1 * x + e2 * y;
  }
  throw std::invalid_argument("gradient: only simplex elements supported");
}

}  // namespace field
