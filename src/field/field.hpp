#ifndef PUMI_FIELD_FIELD_HPP
#define PUMI_FIELD_FIELD_HPP

/// \file field.hpp
/// \brief Fields: tensor quantities distributed over mesh entities
/// (paper Sec. II: "the fields are tensor quantities that define the
/// distributions of the physical parameters of the PDE over domain
/// entities").
///
/// A Field stores one tensor (scalar / 3-vector / 3x3-matrix) per node,
/// where nodes live on vertices (linear Lagrange shape functions) or on
/// elements (piecewise constant). Values are backed by a mesh double tag
/// named "field:<name>", which makes fields transport automatically with
/// migration and ghosting and synchronize with the dist tag-sync calls.

#include <string>

#include "common/mat.hpp"
#include "common/vec.hpp"
#include "core/measure.hpp"
#include "core/mesh.hpp"

namespace field {

using common::Vec3;

/// Tensor order of the field value.
enum class ValueType { Scalar, Vector, Matrix };

/// Where the nodes (value holders) live.
enum class Location {
  Vertex,   ///< one node per vertex; linear Lagrange interpolation
  Element,  ///< one node per element; piecewise constant
};

[[nodiscard]] constexpr std::size_t componentsOf(ValueType t) {
  switch (t) {
    case ValueType::Scalar: return 1;
    case ValueType::Vector: return 3;
    case ValueType::Matrix: return 9;
  }
  return 1;
}

class Field {
 public:
  /// Create (or re-attach to) the field's backing tag on `mesh`.
  /// The mesh must outlive the Field.
  Field(core::Mesh& mesh, std::string name, ValueType type,
        Location location);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] ValueType valueType() const { return type_; }
  [[nodiscard]] Location location() const { return location_; }
  [[nodiscard]] core::Mesh& mesh() const { return mesh_; }
  [[nodiscard]] core::Mesh::Tag tag() const { return tag_; }

  /// Node entity dimension: 0 for vertex fields, mesh dim for element
  /// fields.
  [[nodiscard]] int nodeDim() const;

  [[nodiscard]] bool hasValue(core::Ent node) const { return tag_->has(node); }

  void setScalar(core::Ent node, double v);
  [[nodiscard]] double getScalar(core::Ent node) const;
  void setVector(core::Ent node, const Vec3& v);
  [[nodiscard]] Vec3 getVector(core::Ent node) const;
  void setMatrix(core::Ent node, const common::Mat3& m);
  [[nodiscard]] common::Mat3 getMatrix(core::Ent node) const;

  /// Assign every node the given scalar (scalar fields only).
  void fillScalar(double v);
  /// Evaluate an analytic function at every node position (vertex fields)
  /// or element centroid (element fields).
  template <typename Fn>
  void assign(Fn&& f);

  /// Interpolated scalar value at barycentric-uniform center of an element
  /// (vertex fields: mean of vertex values; element fields: the value).
  [[nodiscard]] double elementScalar(core::Ent elem) const;

 private:
  core::Mesh& mesh_;
  std::string name_;
  ValueType type_;
  Location location_;
  core::Mesh::Tag tag_;
};

template <typename Fn>
void Field::assign(Fn&& f) {
  const int d = nodeDim();
  for (core::Ent e : mesh_.entities(d)) {
    const Vec3 x = d == 0 ? mesh_.point(e) : core::centroid(mesh_, e);
    setScalar(e, f(x));
  }
}

/// Integral of a scalar field over the mesh: vertex fields are integrated
/// with the vertex-mean per element (exact for constants, second-order for
/// linear fields on simplices); element fields exactly.
[[nodiscard]] double integrate(const Field& f);

/// Gradient of a scalar vertex field on a simplex element (tri in-plane or
/// tet), exact for the linear interpolant.
[[nodiscard]] Vec3 gradient(const Field& f, core::Ent elem);

}  // namespace field

#endif  // PUMI_FIELD_FIELD_HPP
