#ifndef PUMI_PARMA_HEAVYSPLIT_HPP
#define PUMI_PARMA_HEAVYSPLIT_HPP

/// \file heavysplit.hpp
/// \brief ParMA heavy part splitting (paper Sec. III-B).
///
/// Iterative diffusion cannot fix partitions where several heavily loaded
/// parts neighbour each other (or where parts are tiny and a few hundred
/// extra vertices already mean a 50% spike). Heavy part splitting is the
/// directed, aggressive alternative: (1) each part independently solves a
/// 0-1 knapsack over its neighbours to find the largest group that can
/// merge into it while staying under the average load; (2) a maximal
/// independent set of non-conflicting merges is chosen and performed,
/// creating empty parts; (3) heavy parts are split into the emptied parts
/// until no heavy (or no empty) parts remain. Iterative improvement
/// (improve.hpp) follows as needed.

#include "dist/partedmesh.hpp"
#include "part/partition.hpp"

namespace parma {

struct HeavySplitOptions {
  /// A part is heavy when its element count exceeds (1+tolerance)*avg.
  double tolerance = 0.05;
  /// Local partitioner used to split heavy parts. Method::RIB uses the
  /// graph-free splitter (part/ribsplit.hpp) — no adjacency build; every
  /// other method goes through buildElemGraph + partitionGraph.
  part::Method split_method = part::Method::GraphRB;
  /// Safety cap on merge/split rounds.
  int max_rounds = 8;
  /// Injected split targets. Empty (the legacy path): targets are the
  /// parts emptied by the knapsack merge phase, and the part count is
  /// unchanged. Non-empty: the merge phase is skipped entirely and heavy
  /// parts are carved into exactly these parts — which must currently be
  /// empty (pcu::Error(kValidation) otherwise). This is how elastic
  /// scale-out points the splitter at newcomer parts.
  std::vector<dist::PartId> targets;
};

struct HeavySplitReport {
  int merges = 0;          ///< merge groups executed
  int parts_emptied = 0;   ///< parts emptied by merging
  int parts_split = 0;     ///< heavy parts split
  std::size_t elements_moved = 0;  ///< total elements migrated
  double initial_imbalance = 0.0;
  double final_imbalance = 0.0;
};

/// Run heavy part splitting on the element balance of `pm`. The part count
/// is unchanged: merging empties existing parts, splitting refills them.
HeavySplitReport heavyPartSplit(dist::PartedMesh& pm,
                                const HeavySplitOptions& opts = {});

}  // namespace parma

#endif  // PUMI_PARMA_HEAVYSPLIT_HPP
