#include "parma/improve.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <utility>

#include "common/flatmap.hpp"
#include "pcu/trace.hpp"

namespace parma {

using core::Ent;
using core::EntHash;

namespace {

/// A cavity: a small group of elements on the heavy part selected to move
/// together to one candidate part.
using Cavity = std::vector<Ent>;

/// True when the entity is shared with part q.
bool sharedWith(const dist::Part& p, Ent e, PartId q) {
  const dist::Remote* r = p.remote(e);
  if (r == nullptr) return false;
  return std::any_of(r->copies.begin(), r->copies.end(),
                     [&](const dist::Copy& c) { return c.part == q; });
}

/// Layout-invariant total order: an entity keyed by the bit patterns of
/// its sorted vertex coordinates. Distinct entities of one dimension never
/// share a vertex set, so the key orders candidates identically no matter
/// how handles were assigned — every balancing decision (greedy cavity
/// selection under a budget) then gives the same answer with locality
/// reordering on or off.
using GeomKey = std::array<std::uint64_t, 3 * core::kMaxDown>;

GeomKey geomKey(const core::Mesh& mesh, Ent e) {
  GeomKey key;
  key.fill(~std::uint64_t{0});
  const auto bits = [](const common::Vec3& x) {
    return std::array<std::uint64_t, 3>{std::bit_cast<std::uint64_t>(x.x),
                                        std::bit_cast<std::uint64_t>(x.y),
                                        std::bit_cast<std::uint64_t>(x.z)};
  };
  if (core::topoDim(e.topo()) == 0) {
    const auto v = bits(mesh.point(e));
    std::copy(v.begin(), v.end(), key.begin());
    return key;
  }
  const auto vs = mesh.verts(e);
  std::array<std::array<std::uint64_t, 3>, core::kMaxDown> vk{};
  for (std::size_t i = 0; i < vs.size(); ++i) vk[i] = bits(mesh.point(vs[i]));
  std::sort(vk.begin(), vk.begin() + static_cast<std::ptrdiff_t>(vs.size()));
  for (std::size_t i = 0; i < vs.size(); ++i)
    std::copy(vk[i].begin(), vk[i].end(), key.begin() + 3 * static_cast<std::ptrdiff_t>(i));
  return key;
}

/// Spread the low 21 bits of x so three coordinates interleave into one
/// 63-bit Morton code.
std::uint64_t spreadBits(std::uint64_t x) {
  x &= 0x1fffff;
  x = (x | x << 32) & 0x1f00000000ffffULL;
  x = (x | x << 16) & 0x1f0000ff0000ffULL;
  x = (x | x << 8) & 0x100f00f00f00f00fULL;
  x = (x | x << 4) & 0x10c30c30c30c30c3ULL;
  x = (x | x << 2) & 0x1249249249249249ULL;
  return x;
}

common::Vec3 centroidOf(const core::Mesh& mesh, Ent e) {
  if (core::topoDim(e.topo()) == 0) return mesh.point(e);
  common::Vec3 c{0, 0, 0};
  const auto vs = mesh.verts(e);
  for (Ent v : vs) c = c + mesh.point(v);
  return c * (1.0 / static_cast<double>(vs.size()));
}

/// Sort entities along a Morton (Z-order) curve over their centroids,
/// exact geomKey as tie-break. Greedy selection with budget cutoffs then
/// sweeps the boundary in spatially coherent runs (as the old
/// creation-handle order did for structured meshes) instead of jumping
/// around it, while staying layout-invariant.
void sortGeom(const core::Mesh& mesh, std::vector<Ent>& es) {
  if (es.size() < 2) return;
  std::vector<common::Vec3> cs;
  cs.reserve(es.size());
  common::Vec3 lo = centroidOf(mesh, es[0]), hi = lo;
  for (Ent e : es) {
    const auto c = centroidOf(mesh, e);
    cs.push_back(c);
    lo = {std::min(lo.x, c.x), std::min(lo.y, c.y), std::min(lo.z, c.z)};
    hi = {std::max(hi.x, c.x), std::max(hi.y, c.y), std::max(hi.z, c.z)};
  }
  const auto cell = [&](double v, double l, double h) {
    constexpr double kCells = 1 << 21;
    if (h <= l) return std::uint64_t{0};
    const double t = (v - l) / (h - l) * (kCells - 1.0);
    return static_cast<std::uint64_t>(std::max(0.0, std::min(t, kCells - 1.0)));
  };
  std::vector<std::tuple<std::uint64_t, GeomKey, Ent>> keyed;
  keyed.reserve(es.size());
  for (std::size_t i = 0; i < es.size(); ++i) {
    const std::uint64_t m = spreadBits(cell(cs[i].x, lo.x, hi.x)) |
                            spreadBits(cell(cs[i].y, lo.y, hi.y)) << 1 |
                            spreadBits(cell(cs[i].z, lo.z, hi.z)) << 2;
    keyed.emplace_back(m, geomKey(mesh, es[i]), es[i]);
  }
  std::sort(keyed.begin(), keyed.end());
  for (std::size_t i = 0; i < es.size(); ++i) es[i] = std::get<2>(keyed[i]);
}

/// Part-boundary entities of dimension `dim` shared with part q, in
/// layout-invariant geometric order. Touches only the boundary, never the
/// whole part mesh.
std::vector<Ent> boundaryWith(const dist::Part& p, PartId q, int dim) {
  std::vector<Ent> out;
  for (const auto& [e, r] : p.remotes()) {
    if (core::topoDim(e.topo()) != dim) continue;
    for (const dist::Copy& c : r.copies)
      if (c.part == q) {
        out.push_back(e);
        break;
      }
  }
  sortGeom(p.mesh(), out);
  return out;
}

/// Upward adjacency of `f` in geometric order (the pool order of up() is
/// layout-dependent).
std::vector<Ent> upSorted(const core::Mesh& mesh, Ent f) {
  const auto& up = mesh.up(f);
  std::vector<Ent> out(up.begin(), up.end());
  sortGeom(mesh, out);
  return out;
}

/// Fig. 9 selection (element balancing): elements next to the q-boundary
/// with more boundary faces than interior faces.
std::vector<Cavity> selectForElements(const dist::Part& p, PartId q,
                                      int elem_dim) {
  std::vector<Cavity> out;
  common::FlatSet<Ent, EntHash> chosen;
  const auto& mesh = p.mesh();
  const auto shared_faces = boundaryWith(p, q, elem_dim - 1);
  for (Ent f : shared_faces) {
    for (Ent e : upSorted(mesh, f)) {
      if (p.isGhost(e) || chosen.count(e)) continue;
      std::array<Ent, core::kMaxDown> faces{};
      const int nf = mesh.downward(e, elem_dim - 1, faces.data());
      int boundary = 0;
      for (int i = 0; i < nf; ++i)
        if (p.isShared(faces[static_cast<std::size_t>(i)])) ++boundary;
      if (boundary > nf - boundary) {
        chosen.insert(e);
        out.push_back(Cavity{e});
      }
    }
  }
  // Fallback for progress when the boundary is too smooth for the
  // heuristic: any element touching the q-boundary.
  if (out.empty()) {
    for (Ent f : shared_faces) {
      for (Ent e : upSorted(mesh, f))
        if (!p.isGhost(e) && chosen.insert(e).second) out.push_back(Cavity{e});
    }
  }
  return out;
}

/// Fig. 10 selection (edge/face balancing): part-boundary edges shared with
/// q that bound at most two local faces; the adjacent elements form the
/// cavity (case (a) — case (b), three or more faces, is skipped because it
/// would grow the boundary).
std::vector<Cavity> selectForEdgesFaces(const dist::Part& p, PartId q,
                                        int elem_dim) {
  std::vector<Cavity> out;
  common::FlatSet<Ent, EntHash> chosen;
  const auto& mesh = p.mesh();
  core::AdjVec adj;
  for (Ent e : boundaryWith(p, q, 1)) {
    if (mesh.up(e).size() > 2) continue;
    Cavity cav;
    bool clash = false;
    const int na = mesh.adjacentInto(e, elem_dim, adj);
    for (int k = 0; k < na; ++k) {
      const Ent elem = adj[static_cast<std::size_t>(k)];
      if (p.isGhost(elem)) continue;
      if (chosen.count(elem)) clash = true;
      cav.push_back(elem);
    }
    if (clash || cav.empty()) continue;
    for (Ent elem : cav) chosen.insert(elem);
    out.push_back(std::move(cav));
  }
  return out;
}

/// Vertex balancing (Zhou's strategy): boundary vertices shared with q
/// whose local element cavity is small; moving the whole cavity removes
/// the vertex from this part.
std::vector<Cavity> selectForVertices(const dist::Part& p, PartId q,
                                      int elem_dim, int max_cavity) {
  std::vector<Cavity> out;
  common::FlatSet<Ent, EntHash> chosen;
  const auto& mesh = p.mesh();
  core::AdjVec adj;
  for (Ent v : boundaryWith(p, q, 0)) {
    Cavity cav;
    bool clash = false;
    const int na = mesh.adjacentInto(v, elem_dim, adj);
    for (int k = 0; k < na; ++k) {
      const Ent elem = adj[static_cast<std::size_t>(k)];
      if (p.isGhost(elem)) continue;
      if (chosen.count(elem)) clash = true;
      cav.push_back(elem);
    }
    if (clash || cav.empty() ||
        cav.size() > static_cast<std::size_t>(max_cavity))
      continue;
    for (Ent elem : cav) chosen.insert(elem);
    out.push_back(std::move(cav));
  }
  // Smallest vertex stars first (stable: equal sizes keep the coherent
  // geometric sweep): each removes its vertex at the least element churn,
  // so the greedy budget converges closer to the mean.
  std::stable_sort(out.begin(), out.end(),
                   [](const Cavity& a, const Cavity& b) {
                     return a.size() < b.size();
                   });
  // Fallback: when no vertex has a small enough local star, fall back to
  // boundary-hugging single elements (still shifts boundary vertices).
  if (out.empty()) return selectForElements(p, q, elem_dim);
  return out;
}

/// Ablation selection: every element touching the q-boundary, one per
/// cavity, with no boundary-quality consideration.
std::vector<Cavity> selectNaive(const dist::Part& p, PartId q, int elem_dim) {
  std::vector<Cavity> out;
  common::FlatSet<Ent, EntHash> chosen;
  const auto& mesh = p.mesh();
  for (Ent f : boundaryWith(p, q, elem_dim - 1)) {
    for (Ent e : upSorted(mesh, f))
      if (!p.isGhost(e) && chosen.insert(e).second) out.push_back(Cavity{e});
  }
  return out;
}

std::vector<Cavity> selectCavities(const dist::Part& p, PartId q, int dim,
                                   int elem_dim, const ImproveOptions& opts) {
  if (!opts.heuristic_selection) return selectNaive(p, q, elem_dim);
  if (dim == elem_dim) return selectForElements(p, q, elem_dim);
  if (dim == 0) return selectForVertices(p, q, elem_dim, opts.max_cavity);
  return selectForEdgesFaces(p, q, elem_dim);
}

/// Closure entities of `cav` per dimension, split into those that would be
/// *new* to q (not already shared with it) and those that would *leave* p
/// (no local adjacent element outside the selection).
struct CavityEffect {
  std::array<int, 4> adds{};    ///< entities new to q, per dim
  std::array<int, 4> leaves{};  ///< entities leaving p, per dim
};

/// Element weight under the application-defined criterion (1 when no tag).
double elementWeight(const core::Mesh& mesh, core::Mesh::Tag tag, Ent e) {
  if (tag == nullptr || !tag->has(e)) return 1.0;
  return mesh.tags().getScalar<double>(tag, e);
}

CavityEffect cavityEffect(const dist::Part& p, const Cavity& cav, PartId q,
                          int elem_dim,
                          const common::FlatSet<Ent, EntHash>& selected,
                          core::Mesh::Tag weight_tag) {
  CavityEffect fx;
  double w = 0.0;
  for (Ent e : cav) w += elementWeight(p.mesh(), weight_tag, e);
  fx.adds[static_cast<std::size_t>(elem_dim)] = static_cast<int>(w + 0.5);
  fx.leaves[static_cast<std::size_t>(elem_dim)] = static_cast<int>(w + 0.5);
  const auto& mesh = p.mesh();
  common::FlatSet<Ent, EntHash> in_cavity(cav.begin(), cav.end());
  std::array<Ent, core::kMaxDown> buf{};
  common::FlatSet<Ent, EntHash> seen;
  core::AdjVec adj;
  for (Ent elem : cav) {
    for (int d = 0; d < elem_dim; ++d) {
      const int n = mesh.downward(elem, d, buf.data());
      for (int i = 0; i < n; ++i) {
        const Ent c = buf[static_cast<std::size_t>(i)];
        if (!seen.insert(c).second) continue;
        if (!sharedWith(p, c, q)) fx.adds[static_cast<std::size_t>(d)] += 1;
        bool all_leaving = true;
        const int na = mesh.adjacentInto(c, elem_dim, adj);
        for (int k = 0; k < na; ++k) {
          const Ent up_elem = adj[static_cast<std::size_t>(k)];
          if (p.isGhost(up_elem)) continue;
          if (!in_cavity.count(up_elem) && !selected.count(up_elem))
            all_leaving = false;
        }
        if (all_leaving) fx.leaves[static_cast<std::size_t>(d)] += 1;
      }
    }
  }
  return fx;
}

}  // namespace

ImproveReport improve(dist::PartedMesh& pm, const Priority& priority,
                      const ImproveOptions& opts) {
  pcu::trace::Scope trace_scope("parma:improve");
  ImproveReport report;
  const int elem_dim = pm.dim();
  const int nparts = pm.parts();

  // Reference means, fixed at entry. The paper measures imbalance against
  // the input (T0) partition's means; converging against a drifting mean
  // would silently accept boundary growth.
  std::array<double, 4> ref_mean{};
  {
    const auto entry = allBalances(pm);
    for (int d = 0; d <= 3; ++d)
      ref_mean[static_cast<std::size_t>(d)] =
          entry[static_cast<std::size_t>(d)].mean;
  }
  auto meanOf = [&](int d, const std::array<Balance, 4>& balances) {
    const double now = balances[static_cast<std::size_t>(d)].mean;
    const double ref = ref_mean[static_cast<std::size_t>(d)];
    return ref > 0.0 ? std::min(now, ref) : now;
  };

  for (std::size_t li = 0; li < priority.levels.size(); ++li) {
    // Dimensions whose balance this level must not harm: all higher levels
    // plus the other members of this level.
    for (int dim : priority.levels[li]) {
      static const char* kDimScope[4] = {
          "parma:improve-vtx", "parma:improve-edge", "parma:improve-face",
          "parma:improve-rgn"};
      pcu::trace::Scope dim_scope(kDimScope[static_cast<std::size_t>(dim)]);
      std::vector<int> harm = priority.higherThan(li);
      for (int other : priority.levels[li])
        if (other != dim) harm.push_back(other);

      LevelReport lr;
      lr.dim = dim;
      auto imbNow = [&]() {
        auto bb = allBalances(pm);
        if (dim == elem_dim && !opts.element_weight_tag.empty())
          bb[static_cast<std::size_t>(elem_dim)] =
              weightedElementBalance(pm, opts.element_weight_tag);
        return static_cast<double>(bb[static_cast<std::size_t>(dim)].peak) /
               meanOf(dim, bb);
      };
      lr.initial_imbalance = imbNow();
      double prev_imbalance = lr.initial_imbalance;
      int stalls = 0;

      for (int iter = 0; iter < opts.max_iterations; ++iter) {
        auto balances = allBalances(pm);
        if (dim == elem_dim && !opts.element_weight_tag.empty())
          balances[static_cast<std::size_t>(elem_dim)] =
              weightedElementBalance(pm, opts.element_weight_tag);
        const Balance& b = balances[static_cast<std::size_t>(dim)];
        const double mean_d = meanOf(dim, balances);
        if (static_cast<double>(b.peak) / mean_d <= 1.0 + opts.tolerance)
          break;

        dist::MigrationPlan plan(static_cast<std::size_t>(nparts));
        // Projected count changes at destinations during this round.
        std::vector<std::array<int, 4>> planned(
            static_cast<std::size_t>(nparts), std::array<int, 4>{});
        std::size_t planned_moves = 0;

        for (PartId p = 0; p < nparts; ++p) {
          const double count_p =
              static_cast<double>(b.per_part[static_cast<std::size_t>(p)]);
          if (count_p <= (1.0 + opts.tolerance) * mean_d) continue;  // light
          const double surplus = count_p - mean_d;
          const int budget =
              std::max(1, static_cast<int>(std::ceil(surplus * opts.damping)));

          // Candidate parts (paper III-A-1): lightly loaded neighbours,
          // absolutely (below average) or relatively (below this part),
          // in the balanced dimension and in all lesser-priority ones.
          std::vector<PartId> cands;
          for (PartId q : pm.part(p).neighborParts(0)) {
            auto light = [&](int d) {
              const auto& bd = balances[static_cast<std::size_t>(d)];
              const double cq = static_cast<double>(
                  bd.per_part[static_cast<std::size_t>(q)]);
              const double cp = static_cast<double>(
                  bd.per_part[static_cast<std::size_t>(p)]);
              if (cq < meanOf(d, balances)) return true;  // absolute
              return opts.relative_candidates && cq < cp;  // relative
            };
            bool ok = light(dim);
            for (int dl : priority.lowerThan(li)) ok = ok && light(dl);
            if (ok) cands.push_back(q);
          }
          if (cands.empty()) continue;
          // Tie-break by part id so candidate order never depends on the
          // (layout-sensitive) neighborParts iteration order.
          std::sort(cands.begin(), cands.end(), [&](PartId x, PartId y) {
            const auto cx = b.per_part[static_cast<std::size_t>(x)];
            const auto cy = b.per_part[static_cast<std::size_t>(y)];
            if (cx != cy) return cx < cy;
            return x < y;
          });

          common::FlatSet<Ent, EntHash> selected;
          int moved = 0;
          for (PartId q : cands) {
            if (moved >= budget) break;
            const auto cavities =
                selectCavities(pm.part(p), q, dim, elem_dim, opts);
            for (const Cavity& cav : cavities) {
              if (moved >= budget) break;
              bool overlap = false;
              for (Ent e : cav)
                if (selected.count(e)) overlap = true;
              if (overlap) continue;
              core::Mesh::Tag weight_tag =
                  opts.element_weight_tag.empty()
                      ? nullptr
                      : pm.part(p).mesh().tags().find(
                            opts.element_weight_tag);
              const CavityEffect fx = cavityEffect(pm.part(p), cav, q,
                                                   elem_dim, selected,
                                                   weight_tag);
              auto projectedAt = [&](int d) {
                const auto& bd = balances[static_cast<std::size_t>(d)];
                return static_cast<double>(
                           bd.per_part[static_cast<std::size_t>(q)]) +
                       planned[static_cast<std::size_t>(q)]
                              [static_cast<std::size_t>(d)] +
                       fx.adds[static_cast<std::size_t>(d)];
              };
              // Balanced type: diffusion must flow downhill — the
              // destination stays strictly below the source's load.
              bool ok =
                  projectedAt(dim) <
                  static_cast<double>(
                      b.per_part[static_cast<std::size_t>(p)]) -
                      moved;
              // Protected (higher/equal priority) types: the move must not
              // raise their global peak (that is what "no harm" means).
              for (int dh : harm) {
                const auto& bd = balances[static_cast<std::size_t>(dh)];
                ok = ok && projectedAt(dh) <=
                               std::max((1.0 + opts.tolerance) *
                                            meanOf(dh, balances),
                                        static_cast<double>(bd.peak));
              }
              if (!ok) continue;
              for (Ent e : cav) {
                plan[static_cast<std::size_t>(p)][e] = q;
                selected.insert(e);
              }
              for (int d = 0; d <= 3; ++d)
                planned[static_cast<std::size_t>(q)]
                       [static_cast<std::size_t>(d)] +=
                    fx.adds[static_cast<std::size_t>(d)];
              moved += fx.leaves[static_cast<std::size_t>(dim)];
              planned_moves += cav.size();
            }
          }
        }

        if (planned_moves == 0) break;  // no admissible move anywhere
        pm.migrate(plan);
        lr.iterations = iter + 1;
        lr.elements_migrated += planned_moves;

        const double now = imbNow();
        if (now >= prev_imbalance - 1e-12) {
          if (++stalls >= opts.max_stalls) break;
        } else {
          stalls = 0;
        }
        prev_imbalance = now;
      }

      lr.final_imbalance = imbNow();
      lr.converged = lr.final_imbalance <= 1.0 + opts.tolerance;
      report.levels.push_back(lr);
    }
  }
  return report;
}

ImproveReport improve(dist::PartedMesh& pm, const std::string& priority,
                      const ImproveOptions& opts) {
  return improve(pm, parsePriority(priority), opts);
}

}  // namespace parma
