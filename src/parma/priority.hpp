#ifndef PUMI_PARMA_PRIORITY_HPP
#define PUMI_PARMA_PRIORITY_HPP

/// \file priority.hpp
/// \brief Application priority lists over mesh entity types (paper
/// Sec. III-A): e.g. "Rgn > Face = Edge > Vtx" yields three levels; higher
/// levels are balanced first, and balancing a lower level must not harm
/// any higher level. Types of equal priority are processed in increasing
/// topological dimension.

#include <string>
#include <vector>

namespace parma {

/// One priority level: entity dimensions of equal priority, sorted
/// ascending (the paper's traversal order within a level).
using Level = std::vector<int>;

struct Priority {
  /// Levels in decreasing priority.
  std::vector<Level> levels;

  /// All dimensions of strictly lower priority than level `li`.
  [[nodiscard]] std::vector<int> lowerThan(std::size_t li) const;
  /// All dimensions of strictly higher priority than level `li`.
  [[nodiscard]] std::vector<int> higherThan(std::size_t li) const;
  /// Every dimension mentioned.
  [[nodiscard]] std::vector<int> allDims() const;

  [[nodiscard]] std::string describe() const;
};

/// Parse a priority expression: dimensions named Vtx/Edge/Face/Rgn (case
/// insensitive), combined with '>' (strictly higher priority) and '='
/// (equal priority), e.g. "Vtx=Edge>Rgn". Throws std::invalid_argument on
/// malformed input or repeated types.
Priority parsePriority(const std::string& expr);

}  // namespace parma

#endif  // PUMI_PARMA_PRIORITY_HPP
