#include "parma/balance.hpp"

#include "dist/integrity.hpp"
#include "parma/metrics.hpp"
#include "pcu/error.hpp"
#include "pcu/trace.hpp"

namespace parma {

BalanceReport balance(dist::PartedMesh& pm, const std::string& priority,
                      const BalanceOptions& opts) {
  const Priority parsed = parsePriority(priority);
  const int first_dim = parsed.levels.front().front();

  pcu::trace::Scope trace_scope("parma:balance");
  BalanceReport report;
  report.initial_imbalance = entityBalance(pm, first_dim).imbalance;
  const pcu::CommStats net_before = pm.network().stats();

  ImproveOptions improve_opts = opts.improve;
  improve_opts.tolerance = opts.tolerance;
  HeavySplitOptions split_opts = opts.split;
  split_opts.tolerance = opts.tolerance;

  for (int round = 0; round < opts.max_rounds; ++round) {
    pcu::trace::Scope round_scope("parma:balance-round");
    // A flip planted at the previous commit point (operation-exit seal or
    // round boundary) sits in sealed state right now — repair it BEFORE the
    // round reads part state to compute weights and diffusion plans, or a
    // corrupted handle could be dereferenced outside any audit's reach.
    if (auto* armor = pm.armorIfActive()) armor->auditAndRepair("parma:round");
    // A faulted round aborts transactionally inside the migration layer:
    // the mesh is already rolled back, so re-plan and re-run the same round
    // up to round_retries times (rollback means the retry sees clean state
    // and fresh imbalance metrics); only once every retry is also lost does
    // the round count as faulted and balancing move on.
    bool round_ok = false;
    for (int tries = 0; tries <= opts.round_retries; ++tries) {
      try {
        const auto split_report = heavyPartSplit(pm, split_opts);
        const auto improved = improve(pm, parsed, improve_opts);
        report.elements_migrated +=
            split_report.elements_moved + improved.totalMigrated();
        round_ok = true;
        break;
      } catch (const pcu::Error& e) {
        // A dead rank is not a transient fault: nothing can communicate
        // with its parts until they are evacuated, so retrying the round
        // would only re-hit the transport's dead-rank gate. Propagate for
        // the caller's evacuate + balanceAfterEvacuation sequence.
        // Unrepairable corruption (kIntegrity) is equally permanent: the
        // armor already exhausted its repair ladder.
        if (e.code() == pcu::ErrorCode::kRankFailed ||
            e.code() == pcu::ErrorCode::kIntegrity)
          throw;
        report.last_error = e.what();
        if (tries < opts.round_retries) report.rounds_retried += 1;
      }
    }
    if (!round_ok) {
      report.rounds_faulted += 1;
      report.rounds = round + 1;
      continue;
    }
    report.rounds = round + 1;
    // Round end is a commit point: audit-and-repair the whole mesh, reseal
    // the ledgers, and fire any memflip scheduled for this boundary. The
    // next reader of part state (the round-entry audit above, or the
    // caller's own boundary) repairs whatever this plants.
    if (auto* armor = pm.armorIfActive()) armor->boundary("parma:round");
    bool all_ok = true;
    for (int d : parsed.allDims())
      all_ok = all_ok &&
               entityBalance(pm, d).imbalance <= 1.0 + opts.tolerance + 1e-12;
    if (all_ok) {
      report.converged = true;
      break;
    }
  }
  report.final_imbalance = entityBalance(pm, first_dim).imbalance;
  const pcu::CommStats& net_after = pm.network().stats();
  report.messages_logical = net_after.messages_sent - net_before.messages_sent;
  report.messages_physical =
      net_after.physical_messages - net_before.physical_messages;
  return report;
}

BalanceReport balanceAfterEvacuation(
    dist::PartedMesh& pm, const std::string& priority,
    const dist::failover::EvacuationReport& evac,
    const BalanceOptions& opts) {
  pcu::trace::Scope trace_scope("parma:balance-after-evacuation");
  BalanceReport report = balance(pm, priority, opts);
  report.ranks_lost = static_cast<int>(evac.ranks_lost.size());
  report.entities_adopted = evac.entities_adopted;
  return report;
}

}  // namespace parma
