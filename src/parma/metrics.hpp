#ifndef PUMI_PARMA_METRICS_HPP
#define PUMI_PARMA_METRICS_HPP

/// \file metrics.hpp
/// \brief Partition quality metrics: per-entity-type balance and boundary
/// size (the quantities reported by the paper's Tables II and Fig. 12-13).
///
/// Counts are per-part *local* counts (part-boundary entities counted on
/// every part holding them), matching how analysis codes experience load:
/// a vertex duplicated on four parts contributes degrees of freedom to all
/// four. Peaks determine performance (paper Sec. III): imbalance is
/// peak / average.

#include <vector>

#include "dist/partedmesh.hpp"

namespace parma {

using dist::PartId;

struct Balance {
  std::vector<std::size_t> per_part;  ///< local count on each part
  double mean = 0.0;                  ///< average over parts
  std::size_t peak = 0;               ///< heaviest part
  double imbalance = 0.0;             ///< peak / mean

  /// Imbalance expressed the way Table II reports it: percent over the
  /// mean, optionally against a reference mean (the T0 partition's).
  [[nodiscard]] double imbalancePercent() const {
    return (imbalance - 1.0) * 100.0;
  }
};

/// Balance of dimension-d entities (ghosts excluded).
Balance entityBalance(const dist::PartedMesh& pm, int d);

/// Weighted element balance: per-part sums of a double element tag
/// (elements without a value weigh 1). This is how applications express
/// their own imbalance criteria — e.g. predicted post-adaptation element
/// counts, or per-element cost models. Counts are rounded sums.
Balance weightedElementBalance(const dist::PartedMesh& pm,
                               const std::string& tag_name);

/// Balance of all four entity dimensions at once (cheaper than four calls).
std::array<Balance, 4> allBalances(const dist::PartedMesh& pm);

/// Total number of part-boundary (shared) entity copies of dimension d,
/// summed over parts. The quantity ParMA reduces alongside the imbalance
/// ("the total number of mesh entities on part boundaries are reduced").
std::size_t boundaryCopies(const dist::PartedMesh& pm, int d);

/// Histogram of x = count/mean over parts with `bins` equal-width bins
/// spanning [min, max] (Fig. 13). Returns bin centers and frequencies.
struct Histogram {
  std::vector<double> centers;
  std::vector<std::size_t> frequency;
};
Histogram imbalanceHistogram(const Balance& b, int bins);

}  // namespace parma

#endif  // PUMI_PARMA_METRICS_HPP
