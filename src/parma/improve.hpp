#ifndef PUMI_PARMA_IMPROVE_HPP
#define PUMI_PARMA_IMPROVE_HPP

/// \file improve.hpp
/// \brief ParMA multi-criteria greedy diffusive partition improvement
/// (paper Sec. III-A).
///
/// Takes a partition with moderate imbalance spikes and reduces them to the
/// application-specified tolerance, traversing the priority list in order
/// of decreasing priority. For each entity type: compute the migration
/// schedule (how much load each heavy part diffuses to which lightly loaded
/// neighbour), select elements whose departure shrinks the boundary
/// (Figs. 9-10), and migrate — one iteration. Balancing a type never harms
/// the balance of higher-priority types.

#include <string>

#include "dist/partedmesh.hpp"
#include "parma/metrics.hpp"
#include "parma/priority.hpp"

namespace parma {

struct ImproveOptions {
  /// Target imbalance: peak/mean <= 1 + tolerance (paper uses 5%).
  double tolerance = 0.05;
  /// Iteration cap per entity type.
  int max_iterations = 40;
  /// Fraction of a heavy part's surplus attempted per iteration; diffusive
  /// half-steps avoid overshooting past neighbours.
  double damping = 0.5;
  /// Cavity size cap for vertex-balancing selection (Zhou's small-cavity
  /// rule).
  int max_cavity = 10;
  /// Consecutive non-improving iterations tolerated before giving up on a
  /// type.
  int max_stalls = 5;
  /// Ablation: when false, only absolutely lightly loaded neighbours are
  /// candidates (paper III-A-1 defines both categories; the relative
  /// category lets spikes diffuse through moderately loaded regions).
  bool relative_candidates = true;
  /// Ablation: when false, skip the boundary-improving selection heuristics
  /// (Figs. 9-10) and move arbitrary boundary-adjacent elements.
  bool heuristic_selection = true;
  /// Application-defined imbalance criterion: when non-empty, element
  /// (region/face) balancing weighs each element by this double tag
  /// (missing values weigh 1) instead of counting elements — e.g.
  /// predicted post-adaptation counts for predictive load balancing.
  std::string element_weight_tag;
};

struct LevelReport {
  int dim = -1;                     ///< entity dimension balanced
  double initial_imbalance = 0.0;   ///< peak/mean before
  double final_imbalance = 0.0;     ///< peak/mean after
  int iterations = 0;               ///< migrate rounds executed
  std::size_t elements_migrated = 0;
  bool converged = false;           ///< reached tolerance
};

struct ImproveReport {
  std::vector<LevelReport> levels;
  [[nodiscard]] bool allConverged() const {
    for (const auto& l : levels)
      if (!l.converged) return false;
    return true;
  }
  [[nodiscard]] std::size_t totalMigrated() const {
    std::size_t n = 0;
    for (const auto& l : levels) n += l.elements_migrated;
    return n;
  }
};

/// Run the multi-criteria improvement on `pm` per `priority`.
ImproveReport improve(dist::PartedMesh& pm, const Priority& priority,
                      const ImproveOptions& opts = {});

/// Convenience: parse the priority expression ("Vtx=Edge>Rgn") and run.
ImproveReport improve(dist::PartedMesh& pm, const std::string& priority,
                      const ImproveOptions& opts = {});

}  // namespace parma

#endif  // PUMI_PARMA_IMPROVE_HPP
