#include "parma/heavysplit.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>

#include "parma/metrics.hpp"
#include "part/ribsplit.hpp"
#include "pcu/error.hpp"

namespace parma {

using core::Ent;

namespace {

/// 0-1 knapsack: choose items maximizing total weight under `capacity`
/// (weights are both cost and value here: we want the heaviest feasible
/// merge group). Returns chosen item indices.
std::vector<std::size_t> knapsack(const std::vector<long>& weights,
                                  long capacity) {
  std::vector<std::size_t> chosen;
  if (capacity <= 0 || weights.empty()) return chosen;
  const std::size_t n = weights.size();
  const std::size_t w = static_cast<std::size_t>(capacity);
  // dp[i][c]: best value using items [0, i) under capacity c.
  std::vector<std::vector<long>> dp(n + 1, std::vector<long>(w + 1, 0));
  for (std::size_t i = 1; i <= n; ++i) {
    const long wi = weights[i - 1];
    for (std::size_t c = 0; c <= w; ++c) {
      dp[i][c] = dp[i - 1][c];
      if (wi >= 0 && static_cast<std::size_t>(wi) <= c)
        dp[i][c] = std::max(dp[i][c],
                            dp[i - 1][c - static_cast<std::size_t>(wi)] + wi);
    }
  }
  // Trace back.
  std::size_t c = w;
  for (std::size_t i = n; i > 0; --i) {
    if (dp[i][c] != dp[i - 1][c]) {
      chosen.push_back(i - 1);
      c -= static_cast<std::size_t>(weights[i - 1]);
    }
  }
  std::reverse(chosen.begin(), chosen.end());
  return chosen;
}

struct MergeProposal {
  dist::PartId target = -1;
  std::vector<dist::PartId> donors;
  long total = 0;  ///< merged element count (target + donors)
};

}  // namespace

HeavySplitReport heavyPartSplit(dist::PartedMesh& pm,
                                const HeavySplitOptions& opts) {
  HeavySplitReport report;
  const int nparts = pm.parts();
  report.initial_imbalance = entityBalance(pm, pm.dim()).imbalance;

  // Injected split targets (elastic scale-out): skip the merge phase and
  // carve heavy parts into exactly these — they must be empty going in.
  const bool injected = !opts.targets.empty();
  if (injected) {
    const Balance b0 = entityBalance(pm, pm.dim());
    for (dist::PartId t : opts.targets) {
      if (t < 0 || t >= nparts)
        throw pcu::Error(pcu::ErrorCode::kValidation, static_cast<int>(t),
                         "heavyPartSplit target part " + std::to_string(t) +
                             " out of range [0, " + std::to_string(nparts) +
                             ")");
      if (b0.per_part[static_cast<std::size_t>(t)] != 0)
        throw pcu::Error(pcu::ErrorCode::kValidation, static_cast<int>(t),
                         "heavyPartSplit target part " + std::to_string(t) +
                             " is not empty");
    }
  }

  for (int round = 0; round < opts.max_rounds; ++round) {
    const Balance b = entityBalance(pm, pm.dim());
    const double heavy_cutoff = (1.0 + opts.tolerance) * b.mean;
    bool any_heavy = false;
    for (std::size_t p = 0; p < b.per_part.size(); ++p)
      if (static_cast<double>(b.per_part[p]) > heavy_cutoff) any_heavy = true;
    if (!any_heavy) break;

    // Parts already empty are split targets too (e.g. after a pathological
    // input partition or a previous round's merges); with injected targets
    // only the still-empty injected parts qualify.
    std::vector<dist::PartId> empties;
    if (injected) {
      for (dist::PartId t : opts.targets)
        if (b.per_part[static_cast<std::size_t>(t)] == 0) empties.push_back(t);
    } else {
      for (dist::PartId p = 0; p < nparts; ++p)
        if (b.per_part[static_cast<std::size_t>(p)] == 0) empties.push_back(p);
    }

    // --- (1) knapsack merge proposals on every part --------------------
    std::vector<MergeProposal> proposals;
    for (dist::PartId p = 0; !injected && p < nparts; ++p) {
      const long own = static_cast<long>(b.per_part[static_cast<std::size_t>(p)]);
      const long capacity = static_cast<long>(std::floor(b.mean)) - own;
      if (capacity <= 0 || own == 0) continue;
      std::vector<dist::PartId> nbrs;
      std::vector<long> weights;
      for (dist::PartId q : pm.part(p).neighborParts(0)) {
        const long wq = static_cast<long>(b.per_part[static_cast<std::size_t>(q)]);
        if (wq == 0 || wq > capacity) continue;
        nbrs.push_back(q);
        weights.push_back(wq);
      }
      const auto chosen = knapsack(weights, capacity);
      if (chosen.empty()) continue;
      MergeProposal mp;
      mp.target = p;
      mp.total = own;
      for (std::size_t i : chosen) {
        mp.donors.push_back(nbrs[i]);
        mp.total += weights[i];
      }
      proposals.push_back(std::move(mp));
    }

    // --- (2) maximal independent set of non-conflicting merges ---------
    // Greedy by number of emptied parts, then merged weight (deterministic).
    std::sort(proposals.begin(), proposals.end(),
              [](const MergeProposal& a, const MergeProposal& c) {
                if (a.donors.size() != c.donors.size())
                  return a.donors.size() > c.donors.size();
                if (a.total != c.total) return a.total > c.total;
                return a.target < c.target;
              });
    std::vector<char> used(static_cast<std::size_t>(pm.parts()), 0);
    dist::MigrationPlan merge_plan(static_cast<std::size_t>(pm.parts()));
    int merges_this_round = 0;
    for (const auto& mp : proposals) {
      bool free = !used[static_cast<std::size_t>(mp.target)];
      for (dist::PartId d : mp.donors)
        free = free && !used[static_cast<std::size_t>(d)];
      if (!free) continue;
      used[static_cast<std::size_t>(mp.target)] = 1;
      for (dist::PartId d : mp.donors) {
        used[static_cast<std::size_t>(d)] = 1;
        for (Ent e : pm.part(d).elements())
          merge_plan[static_cast<std::size_t>(d)][e] = mp.target;
        empties.push_back(d);
        report.parts_emptied += 1;
      }
      merges_this_round += 1;
      report.merges += 1;
    }
    if (merges_this_round > 0) {
      for (const auto& m : merge_plan) report.elements_moved += m.size();
      pm.migrate(merge_plan);
    }
    if (empties.empty()) break;  // nothing to split into

    // --- (3) split heavy parts into the emptied parts -------------------
    const Balance after = entityBalance(pm, pm.dim());
    std::vector<std::pair<long, dist::PartId>> heavies;
    for (dist::PartId p = 0; p < nparts; ++p) {
      const long c = static_cast<long>(after.per_part[static_cast<std::size_t>(p)]);
      if (static_cast<double>(c) > (1.0 + opts.tolerance) * after.mean)
        heavies.emplace_back(c, p);
    }
    std::sort(heavies.rbegin(), heavies.rend());
    dist::MigrationPlan split_plan(static_cast<std::size_t>(pm.parts()));
    for (const auto& [count, h] : heavies) {
      if (empties.empty()) break;
      int pieces = static_cast<int>(
          std::lround(static_cast<double>(count) / after.mean));
      pieces = std::clamp(pieces, 2, static_cast<int>(empties.size()) + 1);
      // Method::RIB goes through the graph-free splitter: inertial
      // bisection never needs adjacency, so skip the ElemGraph build.
      std::vector<Ent> elems;
      std::vector<int> sub;
      if (opts.split_method == part::Method::RIB) {
        elems = pm.part(h).elements();
        if (static_cast<int>(elems.size()) < pieces) continue;
        sub = part::ribSplit(pm.part(h).mesh(), elems, pieces);
      } else {
        const auto g = part::buildElemGraph(pm.part(h).mesh());
        if (g.size() < pieces) continue;
        const auto gsub = part::partitionGraph(g, pieces, opts.split_method);
        elems = g.elems;
        sub.assign(gsub.begin(), gsub.end());
      }
      std::vector<dist::PartId> targets(static_cast<std::size_t>(pieces), h);
      for (int s = 1; s < pieces; ++s) {
        targets[static_cast<std::size_t>(s)] = empties.back();
        empties.pop_back();
      }
      for (std::size_t i = 0; i < elems.size(); ++i) {
        const dist::PartId dest =
            targets[static_cast<std::size_t>(sub[i])];
        if (dest != h) split_plan[static_cast<std::size_t>(h)][elems[i]] = dest;
      }
      report.parts_split += 1;
    }
    bool any_split = false;
    for (const auto& m : split_plan) {
      any_split = any_split || !m.empty();
      report.elements_moved += m.size();
    }
    if (any_split) pm.migrate(split_plan);
    if (!any_split && merges_this_round == 0) break;  // stuck
  }

  report.final_imbalance = entityBalance(pm, pm.dim()).imbalance;
  return report;
}

}  // namespace parma
