#ifndef PUMI_PARMA_BALANCE_HPP
#define PUMI_PARMA_BALANCE_HPP

/// \file balance.hpp
/// \brief One-call dynamic load balancing: heavy part splitting for the
/// spikes diffusion cannot reach, multi-criteria diffusive improvement for
/// the rest, iterated until the application tolerance holds (the paper's
/// Sec. III procedures "work independently of, or in conjunction with",
/// each other — this is the conjunction).

#include <cstdint>

#include "dist/failover.hpp"
#include "parma/heavysplit.hpp"
#include "parma/improve.hpp"

namespace parma {

struct BalanceOptions {
  double tolerance = 0.05;
  int max_rounds = 3;       ///< heavy-split + diffusion rounds
  /// How many times a faulted round is re-planned and re-run (the mesh was
  /// rolled back transactionally, so the retry starts from clean state)
  /// before the round is skipped and counted in rounds_faulted.
  int round_retries = 2;
  ImproveOptions improve{}; ///< per-round diffusion settings
  HeavySplitOptions split{};
};

struct BalanceReport {
  int rounds = 0;
  double initial_imbalance = 0.0;  ///< of the first priority type
  double final_imbalance = 0.0;
  bool converged = false;
  std::size_t elements_migrated = 0;
  /// Rounds whose migrations aborted under a fault (pcu::Error). Each
  /// aborted round rolled the mesh back transactionally and was skipped;
  /// balancing degrades gracefully instead of corrupting the mesh.
  int rounds_faulted = 0;
  /// Faulted rounds that were re-planned and re-run in place (they only
  /// count in rounds_faulted once every retry was also lost).
  int rounds_retried = 0;
  std::string last_error;  ///< what() of the most recent aborted round
  /// Transport traffic this balance run generated, from the Network stats
  /// delta: payloads the rounds posted (logical) vs coalesced messages
  /// that actually crossed the transport (physical ≤ logical).
  std::uint64_t messages_logical = 0;
  std::uint64_t messages_physical = 0;
  /// Rank-failure context (non-zero only via balanceAfterEvacuation):
  /// ranks declared dead before this balance and the entities their
  /// evacuated parts brought onto the survivors.
  int ranks_lost = 0;
  std::size_t entities_adopted = 0;
};

/// Balance `pm` for `priority` (e.g. "Vtx>Rgn"); alternates heavy part
/// splitting on the element balance with priority-driven diffusion until
/// every priority type is within tolerance or rounds are exhausted.
///
/// A round aborted by pcu::ErrorCode::kRankFailed is never retried or
/// absorbed: the failure is not transient and the mesh cannot communicate
/// until the dead rank's parts are evacuated, so the error propagates to
/// the caller (who runs dist::failover::evacuate, then
/// balanceAfterEvacuation).
BalanceReport balance(dist::PartedMesh& pm, const std::string& priority,
                      const BalanceOptions& opts = {});

/// Post-evacuation repair: a dead rank's parts were just adopted by their
/// buddy ranks (dist::failover::evacuate), which concentrates their load
/// on the buddies. Re-balances `pm` and stamps the report with the
/// incident context (ranks_lost, entities_adopted) from `evac`.
BalanceReport balanceAfterEvacuation(
    dist::PartedMesh& pm, const std::string& priority,
    const dist::failover::EvacuationReport& evac,
    const BalanceOptions& opts = {});

}  // namespace parma

#endif  // PUMI_PARMA_BALANCE_HPP
