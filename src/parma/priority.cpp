#include "parma/priority.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace parma {

std::vector<int> Priority::lowerThan(std::size_t li) const {
  std::vector<int> out;
  for (std::size_t i = li + 1; i < levels.size(); ++i)
    out.insert(out.end(), levels[i].begin(), levels[i].end());
  return out;
}

std::vector<int> Priority::higherThan(std::size_t li) const {
  std::vector<int> out;
  for (std::size_t i = 0; i < li; ++i)
    out.insert(out.end(), levels[i].begin(), levels[i].end());
  return out;
}

std::vector<int> Priority::allDims() const {
  std::vector<int> out;
  for (const auto& l : levels) out.insert(out.end(), l.begin(), l.end());
  return out;
}

std::string Priority::describe() const {
  static const char* names[4] = {"Vtx", "Edge", "Face", "Rgn"};
  std::string s;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    if (i > 0) s += " > ";
    for (std::size_t j = 0; j < levels[i].size(); ++j) {
      if (j > 0) s += " = ";
      s += names[levels[i][j]];
    }
  }
  return s;
}

Priority parsePriority(const std::string& expr) {
  Priority out;
  Level current;
  std::string token;
  std::vector<bool> seen(4, false);

  auto flushToken = [&]() {
    if (token.empty())
      throw std::invalid_argument("priority: empty entity name in '" + expr +
                                  "'");
    std::string lower;
    for (char c : token) lower += static_cast<char>(std::tolower(c));
    int dim;
    if (lower == "vtx" || lower == "vertex")
      dim = 0;
    else if (lower == "edge")
      dim = 1;
    else if (lower == "face")
      dim = 2;
    else if (lower == "rgn" || lower == "region")
      dim = 3;
    else
      throw std::invalid_argument("priority: unknown entity type '" + token +
                                  "'");
    if (seen[static_cast<std::size_t>(dim)])
      throw std::invalid_argument("priority: repeated entity type '" + token +
                                  "'");
    seen[static_cast<std::size_t>(dim)] = true;
    current.push_back(dim);
    token.clear();
  };
  auto flushLevel = [&]() {
    flushToken();
    std::sort(current.begin(), current.end());
    out.levels.push_back(current);
    current.clear();
  };

  for (char c : expr) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    if (c == '>')
      flushLevel();
    else if (c == '=')
      flushToken();
    else
      token += c;
  }
  flushLevel();
  return out;
}

}  // namespace parma
