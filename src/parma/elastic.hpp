#ifndef PUMI_PARMA_ELASTIC_HPP
#define PUMI_PARMA_ELASTIC_HPP

/// \file elastic.hpp
/// \brief Elastic scale-OUT: grow a live partition onto newly joined ranks.
///
/// The policy half of rank join (the mechanism lives in dist/elastic.hpp).
/// elasticJoin() runs the full pipeline for "k ranks just appeared":
///
///   1. digest the mesh (dist/digest.hpp) — the conservation witness;
///   2. admit the newcomers: machine grows to N+k dense ranks, each
///      newcomer receives one fresh empty part pinned to it;
///   3. carve load onto them: heavyPartSplit with the newcomer parts
///      injected as split targets (merge phase skipped — newcomers must
///      end up non-empty, not merged away), graph-free RIB by default;
///   4. diffuse to tolerance: parma::improve shaves the carve's remainder
///      spikes down to the requested element imbalance;
///   5. gate: pm.verify() plus digest-multiset equality — one lost or
///      duplicated element throws pcu::Error(kValidation).
///
/// admitPendingJoin() is the same pipeline triggered by a consumed
/// join=K@P fault-plan token (Network::takePendingJoin), and
/// expandToIdleRanks() the restore-onto-MORE-ranks variant: no machine
/// growth, just populate + carve + diffuse (checkpoint taken at N ranks,
/// restored at n > N).

#include <cstdint>
#include <vector>

#include "dist/elastic.hpp"
#include "dist/partedmesh.hpp"
#include "part/partition.hpp"

namespace parma {

struct JoinOptions {
  /// Target element imbalance after the join: peak/mean <= 1 + tolerance.
  double tolerance = 0.10;
  /// Splitter for carving heavy parts onto newcomers. RIB (graph-free
  /// inertial bisection) by default — no adjacency build on the hot path.
  part::Method split_method = part::Method::RIB;
  /// Run the diffusive improvement stage after the carve. The carve alone
  /// lands near ceil-division imbalance; diffusion does the final shave.
  bool diffuse = true;
  /// Iteration budget for the diffusion stage.
  int max_iterations = 60;
};

struct JoinReport {
  int ranks_before = 0;
  int ranks_after = 0;
  std::vector<dist::PartId> new_parts;  ///< one per admitted rank
  int parts_split = 0;                  ///< heavy parts carved
  std::size_t elements_moved = 0;       ///< carve + diffusion migrations
  double imbalance_before = 0.0;        ///< element peak/mean at entry
  double imbalance_after = 0.0;         ///< element peak/mean at exit
  double admit_ms = 0.0;                ///< machine growth + part creation
  double split_ms = 0.0;                ///< carve + diffusion
  double total_ms = 0.0;                ///< join-to-rebalanced latency
};

/// Grow `pm` onto `k` newly joined ranks: admit, carve, diffuse, verify.
/// Throws pcu::Error(kValidation) when k < 1 or when the post-join mesh
/// fails verify() or loses/duplicates any element (geometric digest gate).
JoinReport elasticJoin(dist::PartedMesh& pm, int k,
                       const JoinOptions& opts = {});

/// Run elasticJoin for a join=K@P token the transport consumed, if any.
/// Returns a report with ranks_after == ranks_before (all zero fields)
/// when no join was pending; check `admitted`.
struct MaybeJoin {
  bool admitted = false;
  JoinReport report;
};
MaybeJoin admitPendingJoin(dist::PartedMesh& pm, const JoinOptions& opts = {});

/// Restore-onto-more-ranks expansion: give every idle machine rank one
/// fresh empty part, then carve + diffuse + verify exactly like
/// elasticJoin (no machine growth — restore(dir, model, n) already built
/// the n-rank machine). No-op report (admitted-style all-zero new_parts)
/// when no rank is idle.
JoinReport expandToIdleRanks(dist::PartedMesh& pm,
                             const JoinOptions& opts = {});

}  // namespace parma

#endif  // PUMI_PARMA_ELASTIC_HPP
