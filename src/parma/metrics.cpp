#include "parma/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace parma {

namespace {

Balance finish(std::vector<std::size_t> per_part) {
  Balance b;
  b.per_part = std::move(per_part);
  std::size_t total = 0;
  for (std::size_t c : b.per_part) {
    total += c;
    b.peak = std::max(b.peak, c);
  }
  b.mean = b.per_part.empty()
               ? 0.0
               : static_cast<double>(total) / static_cast<double>(b.per_part.size());
  b.imbalance = b.mean > 0.0 ? static_cast<double>(b.peak) / b.mean : 0.0;
  return b;
}

}  // namespace

Balance entityBalance(const dist::PartedMesh& pm, int d) {
  std::vector<std::size_t> counts(static_cast<std::size_t>(pm.parts()), 0);
  for (PartId p = 0; p < pm.parts(); ++p)
    counts[static_cast<std::size_t>(p)] = pm.part(p).countLocal(d);
  return finish(std::move(counts));
}

Balance weightedElementBalance(const dist::PartedMesh& pm,
                               const std::string& tag_name) {
  const int dim = pm.dim();
  std::vector<std::size_t> counts(static_cast<std::size_t>(pm.parts()), 0);
  for (PartId p = 0; p < pm.parts(); ++p) {
    const dist::Part& part = pm.part(p);
    const auto& mesh = part.mesh();
    core::Mesh::Tag tag = mesh.tags().find(tag_name);
    double sum = 0.0;
    for (core::Ent e : mesh.entities(dim)) {
      if (part.isGhost(e)) continue;
      sum += (tag != nullptr && tag->has(e))
                 ? mesh.tags().getScalar<double>(tag, e)
                 : 1.0;
    }
    counts[static_cast<std::size_t>(p)] =
        static_cast<std::size_t>(sum + 0.5);
  }
  return finish(std::move(counts));
}

std::array<Balance, 4> allBalances(const dist::PartedMesh& pm) {
  std::array<Balance, 4> out;
  for (int d = 0; d <= 3; ++d) out[static_cast<std::size_t>(d)] = entityBalance(pm, d);
  return out;
}

std::size_t boundaryCopies(const dist::PartedMesh& pm, int d) {
  std::size_t n = 0;
  for (PartId p = 0; p < pm.parts(); ++p) {
    const dist::Part& pt = pm.part(p);
    for (core::Ent e : pt.mesh().entities(d))
      if (!pt.isGhost(e) && pt.isShared(e)) ++n;
  }
  return n;
}

Histogram imbalanceHistogram(const Balance& b, int bins) {
  Histogram h;
  if (b.per_part.empty() || b.mean <= 0.0 || bins < 1) return h;
  double lo = 1e300, hi = -1e300;
  std::vector<double> ratios;
  ratios.reserve(b.per_part.size());
  for (std::size_t c : b.per_part) {
    const double r = static_cast<double>(c) / b.mean;
    ratios.push_back(r);
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  if (hi <= lo) hi = lo + 1e-9;
  const double width = (hi - lo) / bins;
  h.centers.resize(static_cast<std::size_t>(bins));
  h.frequency.assign(static_cast<std::size_t>(bins), 0);
  for (int i = 0; i < bins; ++i)
    h.centers[static_cast<std::size_t>(i)] = lo + (i + 0.5) * width;
  for (double r : ratios) {
    int bin = static_cast<int>((r - lo) / width);
    bin = std::clamp(bin, 0, bins - 1);
    h.frequency[static_cast<std::size_t>(bin)] += 1;
  }
  return h;
}

}  // namespace parma
