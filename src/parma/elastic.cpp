#include "parma/elastic.hpp"

#include <chrono>
#include <string>

#include "dist/digest.hpp"
#include "parma/heavysplit.hpp"
#include "parma/improve.hpp"
#include "parma/metrics.hpp"
#include "pcu/error.hpp"
#include "pcu/trace.hpp"

namespace parma {

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

const char* elementPriority(const dist::PartedMesh& pm) {
  return pm.dim() == 3 ? "Rgn" : "Face";
}

/// Carve + diffuse + verify + conservation gate: everything after the
/// newcomer parts exist. Shared by the join and restore-onto-more paths.
void rebalanceOntoNewParts(dist::PartedMesh& pm, const JoinOptions& opts,
                           JoinReport& report) {
  const auto digests_before = dist::digest::elementDigests(pm);
  const auto t_split = Clock::now();

  if (!report.new_parts.empty()) {
    HeavySplitOptions split;
    split.tolerance = opts.tolerance;
    split.split_method = opts.split_method;
    split.targets = report.new_parts;
    const HeavySplitReport carve = heavyPartSplit(pm, split);
    report.parts_split = carve.parts_split;
    report.elements_moved += carve.elements_moved;
  }

  if (opts.diffuse) {
    ImproveOptions diffuse;
    // Aim slightly inside the requested tolerance: improve() stops as soon
    // as it meets its own target, and integer element granularity would
    // otherwise park the result epsilon above the caller's bar.
    diffuse.tolerance = 0.9 * opts.tolerance;
    diffuse.max_iterations = opts.max_iterations;
    const ImproveReport shave = improve(pm, elementPriority(pm), diffuse);
    report.elements_moved += shave.totalMigrated();
  }
  report.split_ms = msSince(t_split);

  pm.verify();
  if (dist::digest::elementDigests(pm) != digests_before)
    throw pcu::Error(pcu::ErrorCode::kValidation, pm.parts(),
                     "elasticJoin: element digest multiset changed across "
                     "the join (element lost or duplicated)");
  report.imbalance_after = entityBalance(pm, pm.dim()).imbalance;
  if (pcu::trace::enabled()) {
    pcu::trace::counter("elastic:parts_split",
                        static_cast<std::int64_t>(report.parts_split));
    pcu::trace::counter("elastic:elements_moved",
                        static_cast<std::int64_t>(report.elements_moved));
  }
}

}  // namespace

JoinReport elasticJoin(dist::PartedMesh& pm, int k, const JoinOptions& opts) {
  const auto t0 = Clock::now();
  JoinReport report;
  report.imbalance_before = entityBalance(pm, pm.dim()).imbalance;

  const auto t_admit = Clock::now();
  dist::elastic::AdmitReport admitted = dist::elastic::admitRanks(pm, k);
  report.ranks_before = admitted.ranks_before;
  report.ranks_after = admitted.ranks_after;
  report.new_parts = std::move(admitted.new_parts);
  report.admit_ms = msSince(t_admit);

  rebalanceOntoNewParts(pm, opts, report);
  report.total_ms = msSince(t0);
  return report;
}

MaybeJoin admitPendingJoin(dist::PartedMesh& pm, const JoinOptions& opts) {
  MaybeJoin out;
  const int k = pm.network().takePendingJoin();
  if (k <= 0) return out;
  out.admitted = true;
  out.report = elasticJoin(pm, k, opts);
  return out;
}

JoinReport expandToIdleRanks(dist::PartedMesh& pm, const JoinOptions& opts) {
  const auto t0 = Clock::now();
  JoinReport report;
  const int cores = pm.network().partMap().machine().totalCores();
  report.ranks_before = cores;
  report.ranks_after = cores;
  report.imbalance_before = entityBalance(pm, pm.dim()).imbalance;

  const auto t_admit = Clock::now();
  report.new_parts = dist::elastic::addPartsOnIdleRanks(pm);
  report.admit_ms = msSince(t_admit);
  if (report.new_parts.empty()) {
    report.imbalance_after = report.imbalance_before;
    report.total_ms = msSince(t0);
    return report;
  }

  rebalanceOntoNewParts(pm, opts, report);
  report.total_ms = msSince(t0);
  return report;
}

}  // namespace parma
