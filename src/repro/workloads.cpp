#include "repro/workloads.hpp"

#include <cstdlib>
#include <cstring>

#include "pcu/counters.hpp"

namespace repro {

Scale scaleFromEnv() {
  const char* env = std::getenv("PUMI_REPRO_SCALE");
  if (env == nullptr) return Scale::Default;
  if (std::strcmp(env, "small") == 0) return Scale::Small;
  if (std::strcmp(env, "large") == 0) return Scale::Large;
  return Scale::Default;
}

const char* scaleName(Scale s) {
  switch (s) {
    case Scale::Small: return "small";
    case Scale::Default: return "default";
    case Scale::Large: return "large";
  }
  return "?";
}

AaaWorkload makeAaa(Scale s) {
  meshgen::VesselSpec spec;
  switch (s) {
    case Scale::Small:
      spec.circumferential = 6;
      spec.axial = 24;  // 5,184 tets
      break;
    case Scale::Default:
      spec.circumferential = 10;
      spec.axial = 56;  // 33,600 tets
      break;
    case Scale::Large:
      spec.circumferential = 14;
      spec.axial = 96;  // 112,896 tets
      break;
  }
  AaaWorkload w{meshgen::vessel(spec), 0};
  switch (s) {
    case Scale::Small: w.nparts = 16; break;
    case Scale::Default: w.nparts = 64; break;
    case Scale::Large: w.nparts = 128; break;
  }
  // Perturb interior vertices so the workload is not structured-regular.
  common::Rng rng(20120101);
  meshgen::jiggle(*w.gen.mesh, 0.12, rng);
  return w;
}

std::unique_ptr<dist::PartedMesh> distributeT0(const AaaWorkload& w,
                                               double* partition_seconds) {
  const double t0 = pcu::now();
  const auto assignment =
      part::partition(*w.gen.mesh, w.nparts, part::Method::HypergraphRB);
  if (partition_seconds != nullptr) *partition_seconds = pcu::now() - t0;
  return distributeWith(w, assignment);
}

std::unique_ptr<dist::PartedMesh> distributeWith(
    const AaaWorkload& w, const std::vector<dist::PartId>& assignment) {
  // 32 parts per process in the paper's runs: model nodes of 32 cores.
  const int cores = 32;
  const int nodes = (w.nparts + cores - 1) / cores;
  return dist::PartedMesh::distribute(
      *w.gen.mesh, w.gen.model.get(), assignment,
      dist::PartMap(w.nparts, pcu::Machine(std::max(nodes, 1), cores)));
}

}  // namespace repro
