#ifndef PUMI_REPRO_TABLE_HPP
#define PUMI_REPRO_TABLE_HPP

/// \file table.hpp
/// \brief Fixed-width console tables for the bench harness, shaped like the
/// paper's tables so paper-vs-measured comparison is line-by-line.

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace repro {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)), widths_(headers_.size()) {
    for (std::size_t i = 0; i < headers_.size(); ++i)
      widths_[i] = headers_[i].size();
  }

  Table& row(std::vector<std::string> cells) {
    cells.resize(headers_.size());
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths_[i] = std::max(widths_[i], cells[i].size());
    rows_.push_back(std::move(cells));
    return *this;
  }

  void print(std::ostream& os = std::cout) const {
    auto line = [&](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < cells.size(); ++i)
        os << (i ? "  " : "") << std::left << std::setw(static_cast<int>(widths_[i]))
           << cells[i];
      os << "\n";
    };
    line(headers_);
    std::string rule;
    for (std::size_t i = 0; i < widths_.size(); ++i)
      rule += std::string(widths_[i], '-') + (i + 1 < widths_.size() ? "  " : "");
    os << rule << "\n";
    for (const auto& r : rows_) line(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::size_t> widths_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed decimals.
inline std::string fmt(double v, int decimals = 2) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

inline std::string fmt(std::size_t v) { return std::to_string(v); }
inline std::string fmt(int v) { return std::to_string(v); }

}  // namespace repro

#endif  // PUMI_REPRO_TABLE_HPP
