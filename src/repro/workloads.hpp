#ifndef PUMI_REPRO_WORKLOADS_HPP
#define PUMI_REPRO_WORKLOADS_HPP

/// \file workloads.hpp
/// \brief Shared experiment setups for the bench harness (see DESIGN.md's
/// per-experiment index). Scales are reduced from the paper's testbed
/// (133M-element AAA on 16,384 parts of Jaguar; 3B elements on Mira) to
/// workstation size; the reported quantities are ratios, which transfer.

#include <memory>
#include <string>

#include "dist/partedmesh.hpp"
#include "meshgen/workloads.hpp"
#include "part/partition.hpp"

namespace repro {

/// Experiment scale knob, settable via the PUMI_REPRO_SCALE environment
/// variable ("small" for CI-speed runs, "default", "large").
enum class Scale { Small, Default, Large };
Scale scaleFromEnv();
const char* scaleName(Scale s);

/// The AAA surrogate workload: a bulged, bowed vessel tet mesh
/// (see meshgen::vessel and the substitution table in DESIGN.md).
struct AaaWorkload {
  meshgen::Generated gen;
  int nparts = 0;
};
AaaWorkload makeAaa(Scale s);

/// Distribute the workload with the PHG stand-in (test T0 of Table I):
/// hypergraph-refined recursive bisection.
std::unique_ptr<dist::PartedMesh> distributeT0(const AaaWorkload& w,
                                               double* partition_seconds);

/// Re-distribute with a precomputed assignment (used to replay T0 for each
/// ParMA test without re-running the partitioner).
std::unique_ptr<dist::PartedMesh> distributeWith(
    const AaaWorkload& w, const std::vector<dist::PartId>& assignment);

}  // namespace repro

#endif  // PUMI_REPRO_WORKLOADS_HPP
