#include "dist/partedmesh.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/crc32.hpp"
#include "core/order.hpp"
#include "dist/integrity.hpp"
#include "dist/tagio.hpp"
#include "gmi/model.hpp"
#include "pcu/arq.hpp"
#include "pcu/error.hpp"
#include "pcu/faults.hpp"
#include "pcu/trace.hpp"

namespace dist {

/// --- Part ------------------------------------------------------------------

std::vector<PartId> Part::residence(Ent e) const {
  std::vector<PartId> res{id_};
  if (const Remote* r = remote(e))
    for (const Copy& c : r->copies) res.push_back(c.part);
  std::sort(res.begin(), res.end());
  return res;
}

std::size_t Part::countLocal(int d) const {
  if (ghost_source_.empty()) return mesh_.count(d);  // O(1) fast path
  std::size_t n = 0;
  for (Ent e : mesh_.entities(d))
    if (!isGhost(e)) ++n;
  return n;
}

std::size_t Part::countOwned(int d) const {
  std::size_t n = 0;
  for (Ent e : mesh_.entities(d))
    if (!isGhost(e) && isOwned(e)) ++n;
  return n;
}

std::vector<Ent> Part::elements() const { return locals(mesh_.dim()); }

std::size_t Part::elementCount() const {
  const int d = mesh_.dim();
  return d < 0 ? 0 : countLocal(d);
}

std::vector<Ent> Part::locals(int d) const {
  std::vector<Ent> out;
  out.reserve(mesh_.count(d));
  for (Ent e : mesh_.entities(d))
    if (!isGhost(e)) out.push_back(e);
  return out;
}

std::vector<PartId> Part::neighborParts(int d) const {
  std::vector<PartId> out;
  for (const auto& [e, r] : remotes_) {
    if (core::topoDim(e.topo()) != d) continue;
    for (const Copy& c : r.copies)
      if (std::find(out.begin(), out.end(), c.part) == out.end())
        out.push_back(c.part);
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// --- PartedMesh basics ------------------------------------------------------

PartedMesh::PartedMesh(gmi::Model* model, int nparts, PartMap map,
                       OwnerRule rule)
    : model_(model), map_(map), net_(map), rule_(rule) {
  assert(nparts > 0);
  parts_.reserve(static_cast<std::size_t>(nparts));
  for (PartId p = 0; p < nparts; ++p)
    parts_.push_back(std::make_unique<Part>(p, model));
}

PartedMesh::~PartedMesh() = default;

bool PartedMesh::integrityEnabled() const {
  if (integrity_override_ >= 0) return integrity_override_ != 0;
  if (pcu::faults::memEnabled()) return true;
  const char* env = std::getenv("PUMI_INTEGRITY");
  return env != nullptr && *env != '\0' && *env != '0';
}

integrity::Armor& PartedMesh::armor() {
  if (!armor_) armor_ = std::make_unique<integrity::Armor>(*this);
  return *armor_;
}

integrity::Armor* PartedMesh::armorIfActive() {
  if (!integrityEnabled()) return nullptr;
  return &armor();
}

PartId PartedMesh::addPart() {
  const PartId p = static_cast<PartId>(parts_.size());
  parts_.push_back(std::make_unique<Part>(p, model_));
  net_.addPart();
  return p;
}

std::size_t PartedMesh::globalCount(int d) const {
  std::size_t n = 0;
  for (const auto& p : parts_) n += p->countOwned(d);
  return n;
}

GKey PartedMesh::keyOf(const Part& p, Ent e) const {
  const Remote* r = p.remote(e);
  if (r == nullptr || r->owner == p.id()) return GKey{p.id(), e};
  for (const Copy& c : r->copies)
    if (c.part == r->owner) return GKey{c.part, c.ent};
  throw std::logic_error("keyOf: owner copy not found in remote list");
}

/// --- distribute --------------------------------------------------------------

std::unique_ptr<PartedMesh> PartedMesh::distribute(
    const core::Mesh& serial, gmi::Model* model,
    const std::vector<PartId>& elem_dest, PartMap map, OwnerRule rule) {
  const int dim = serial.dim();
  if (dim < 2) throw std::invalid_argument("distribute: mesh has no elements");
  if (elem_dest.size() != serial.count(dim))
    throw std::invalid_argument("distribute: one destination per element");
  auto out = std::make_unique<PartedMesh>(model, map.parts(), map, rule);
  out->dim_ = dim;

  // Residence of every serial entity: the parts of its adjacent elements
  // (paper II-B). Sorted unique lists. Computed on serial iteration order
  // either way — elem_dest[i] is bound to it by contract.
  common::FlatMap<Ent, std::vector<PartId>, EntHash> res;
  res.reserve(serial.count(0) + serial.count(1) + serial.count(2) +
              serial.count(3));
  {
    std::size_t i = 0;
    std::array<Ent, core::kMaxDown> buf{};
    for (Ent elem : serial.entities(dim)) {
      const PartId dest = elem_dest[i++];
      if (dest < 0 || dest >= map.parts())
        throw std::invalid_argument("distribute: destination out of range");
      res[elem].push_back(dest);
      for (int d = 0; d < dim; ++d) {
        const int n = serial.downward(elem, d, buf.data());
        for (int k = 0; k < n; ++k) {
          auto& r = res[buf[static_cast<std::size_t>(k)]];
          if (std::find(r.begin(), r.end(), dest) == r.end())
            r.push_back(dest);
        }
      }
    }
  }
  for (auto& [e, r] : res) std::sort(r.begin(), r.end());

  // Entity creation order per dimension. By default each part's pools are
  // laid out in locality (RCM) order — the CSR views and SoA pools reward
  // neighbours that sit close in memory — with element order following the
  // vertex order. PUMI_NO_REORDER=1 restores serial iteration order (the
  // A/B baseline for the layout benches); the two layouts are digest- and
  // fingerprint-identical, only handle assignment differs.
  const bool reorder = std::getenv("PUMI_NO_REORDER") == nullptr;
  std::vector<std::vector<Ent>> order(static_cast<std::size_t>(dim) + 1);
  if (reorder) {
    pcu::trace::Scope span("layout:reorder");
    const auto vorder = core::order::rcmVertices(serial);
    const auto vranks = core::order::ranksOf(serial, vorder);
    order[0] = vorder;
    for (int d = 1; d <= dim; ++d)
      order[static_cast<std::size_t>(d)] =
          core::order::byMinVertexRank(serial, d, vranks);
  } else {
    for (int d = 0; d <= dim; ++d)
      order[static_cast<std::size_t>(d)] = serial.all(d);
  }

  // Per-part copies of each serial entity, created dimension-ascending.
  common::FlatMap<Ent, std::vector<Copy>, EntHash> copies;
  copies.reserve(res.size());
  std::array<Ent, core::kMaxDown> vbuf{};
  for (int d = 0; d <= dim; ++d) {
    for (Ent e : order[static_cast<std::size_t>(d)]) {
      auto rit = res.find(e);
      if (rit == res.end()) continue;  // entity not in any element's closure
      auto& cps = copies[e];
      for (PartId pid : rit->second) {
        Part& part = out->part(pid);
        Ent local;
        if (d == 0) {
          local = part.mesh_.createVertex(serial.point(e),
                                          serial.classification(e));
        } else {
          const int nv = serial.downward(e, 0, vbuf.data());
          std::array<Ent, 8> lverts{};
          for (int k = 0; k < nv; ++k) {
            const auto& vcopies = copies.at(vbuf[static_cast<std::size_t>(k)]);
            auto it = std::find_if(
                vcopies.begin(), vcopies.end(),
                [&](const Copy& c) { return c.part == pid; });
            assert(it != vcopies.end());
            lverts[static_cast<std::size_t>(k)] = it->ent;
          }
          local = part.mesh_.buildElement(
              e.topo(), {lverts.data(), static_cast<std::size_t>(nv)},
              serial.classification(e));
        }
        // Transport serial tags to each copy.
        pcu::OutBuffer tags;
        packTags(serial, e, tags);
        pcu::InBuffer in(std::move(tags).take());
        unpackTags(part.mesh_, local, in);
        cps.push_back(Copy{pid, local});
      }
    }
  }

  // Remote-copy records and ownership for shared entities.
  for (const auto& [e, cps] : copies) {
    if (cps.size() < 2) continue;
    const PartId owner = cps.front().part;  // lists are sorted by part id
    for (const Copy& self : cps) {
      Remote r;
      r.owner = owner;
      for (const Copy& other : cps)
        if (other.part != self.part) r.copies.push_back(other);
      out->part(self.part).remotes_.emplace(self.ent, std::move(r));
    }
  }
  return out;
}

/// --- transactional execution -------------------------------------------------

void PartedMesh::runTransactional(const char* opname,
                                  const std::function<void()>& body) {
  const bool active = transactional_ || pcu::faults::enabled();
  // Armor entry audit: catch (and repair) any bit flipped since the last
  // boundary BEFORE the snapshot below copies it, and before the operation
  // masks it under legitimate version bumps. The exit seal after the commit
  // gate re-keys the ledgers against the new state, then plants any memflip
  // scheduled for this boundary — so an injected flip sits in *sealed* live
  // state until the next entry audit finds it.
  integrity::Armor* armor = armorIfActive();
  if (armor != nullptr) armor->auditAndRepair(opname);
  if (!active) {
    body();
    if (armor != nullptr) armor->sealAndMaybeInject();
    return;
  }
  // Retry budget: explicit setOpRetries() wins; otherwise reliable mode
  // (PUMI_RELIABLE) supplies a default, and plain transactional mode keeps
  // the historical abort-on-first-failure behaviour.
  const int retries =
      op_retries_ >= 0
          ? op_retries_
          : (pcu::arq::enabled() ? pcu::arq::config().op_retries : 0);
  for (int attempt = 0;; ++attempt) {
    // Stage: deep-copy every part's full state (mesh, boundary and ghost
    // records) so an abort can restore it exactly.
    struct Saved {
      std::unique_ptr<core::Mesh> mesh;
      common::FlatMap<Ent, Remote, EntHash> remotes;
      common::FlatMap<Ent, Copy, EntHash> ghost_source;
      common::FlatMap<Ent, std::vector<Copy>, EntHash> ghosted_on;
    };
    std::vector<Saved> saved;
    saved.reserve(parts_.size());
    for (const auto& pp : parts_) {
      Saved s;
      s.mesh = std::make_unique<core::Mesh>(model_);
      s.mesh->copyFrom(pp->mesh_);
      s.remotes = pp->remotes_;
      s.ghost_source = pp->ghost_source_;
      s.ghosted_on = pp->ghosted_on_;
      saved.push_back(std::move(s));
    }
    const auto nparts_before = parts_.size();
    const int dim_before = dim_;
    try {
      body();
      verify();  // commit gate: structural invariants must hold
      if (armor != nullptr) armor->sealAndMaybeInject();
      return;
    } catch (...) {
      // Abort: restore every part, drop parts added mid-operation, and
      // clear any messages or channel state the failed phases left behind.
      while (parts_.size() > nparts_before) parts_.pop_back();
      for (std::size_t i = 0; i < saved.size(); ++i) {
        Part& p = *parts_[i];
        p.mesh_.copyFrom(*saved[i].mesh);
        p.remotes_ = std::move(saved[i].remotes);
        p.ghost_source_ = std::move(saved[i].ghost_source);
        p.ghosted_on_ = std::move(saved[i].ghosted_on);
      }
      dim_ = dim_before;
      net_.resetTransport();
      std::optional<pcu::Error> err;
      try {
        throw;
      } catch (const pcu::Error& e) {
        err.emplace(e);
      } catch (const std::exception& e) {
        err.emplace(pcu::ErrorCode::kProtocol, -1,
                    std::string(opname) + " aborted: " + e.what());
      }
      // Validation errors reject the operation's *input* — retrying can
      // never succeed. A rank failure is not transient either: the dead
      // rank stays dead, so the rolled-back state must propagate to the
      // caller for evacuation instead of burning the retry budget.
      // Everything else may be a transient fault: roll the fault epoch (so
      // the replay does not deterministically re-draw the same injected
      // failures) and try again while budget remains.
      if (err->code() == pcu::ErrorCode::kValidation ||
          err->code() == pcu::ErrorCode::kRankFailed || attempt >= retries)
        throw *err;
      ++ops_retried_;
      net_.bumpFaultEpoch();
    }
  }
}

std::uint64_t PartedMesh::fingerprint() const {
  auto mix = [](std::uint64_t& h, std::uint64_t v) {
    v *= 0x9e3779b97f4a7c15ull;
    v ^= v >> 32;
    h = (h ^ v) * 0xff51afd7ed558ccdull;
    h ^= h >> 29;
  };
  std::uint64_t h = 0x243f6a8885a308d3ull;
  mix(h, parts_.size());
  mix(h, static_cast<std::uint64_t>(dim_ + 1));
  // The digest must survive a checkpoint/restore (entity handles and
  // classification pointers are rebuilt) AND a change of storage layout
  // (distribute's locality reordering assigns different handles/iteration
  // positions to the same mesh). Entities are therefore named by content:
  // vertices by the bit patterns of their coordinates, higher entities by
  // (type, sorted vertex names) — invariant under any relabeling.
  // Classification is named by its model (dim, tag). Exact-coordinate ties
  // fall back to iteration order, which keeps the digest deterministic for
  // a fixed layout (duplicate vertex positions do not occur within a part
  // of a verified distributed mesh).
  std::vector<common::FlatMap<Ent, std::uint64_t, EntHash>> ord(parts_.size());
  std::vector<std::array<std::vector<Ent>, 4>> canon(parts_.size());
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    const core::Mesh& m = parts_[i]->mesh();
    std::size_t total = 0;
    for (int d = 0; d <= m.dim(); ++d) total += m.count(d);
    ord[i].reserve(total);
    auto coordKey = [&m](Ent v) {
      const common::Vec3 x = m.point(v);
      return std::array<std::uint64_t, 3>{std::bit_cast<std::uint64_t>(x.x),
                                          std::bit_cast<std::uint64_t>(x.y),
                                          std::bit_cast<std::uint64_t>(x.z)};
    };
    std::vector<Ent> vs = m.all(0);
    std::stable_sort(vs.begin(), vs.end(), [&](Ent a, Ent b) {
      return coordKey(a) < coordKey(b);
    });
    std::uint64_t k = 0;
    for (Ent v : vs) ord[i].emplace(v, k++);
    canon[i][0] = std::move(vs);
    std::array<Ent, core::kMaxDown> vbuf{};
    for (int d = 1; d <= m.dim(); ++d) {
      using Key = std::array<std::uint64_t, 9>;  // topo + up to 8 vertices
      std::vector<std::pair<Key, Ent>> keyed;
      keyed.reserve(m.count(d));
      for (Ent e : m.entities(d)) {
        Key key;
        key.fill(~std::uint64_t{0});
        key[0] = static_cast<std::uint64_t>(e.topo());
        const int nv = m.downward(e, 0, vbuf.data());
        for (int v = 0; v < nv; ++v)
          key[static_cast<std::size_t>(v) + 1] =
              ord[i].at(vbuf[static_cast<std::size_t>(v)]);
        std::sort(key.begin() + 1, key.begin() + 1 + nv);
        keyed.emplace_back(key, e);
      }
      std::stable_sort(
          keyed.begin(), keyed.end(),
          [](const auto& a, const auto& b) { return a.first < b.first; });
      auto& list = canon[i][static_cast<std::size_t>(d)];
      list.reserve(keyed.size());
      std::uint64_t kk = 0;
      for (const auto& [key, e] : keyed) {
        ord[i].emplace(e, (static_cast<std::uint64_t>(d) << 48) | kk++);
        list.push_back(e);
      }
    }
  }
  auto refOf = [&ord](PartId part, Ent e) -> std::uint64_t {
    const auto& map = ord[static_cast<std::size_t>(part)];
    const auto it = map.find(e);
    // Dead cross-part handle (never in a verified mesh): fall back to the
    // raw handle so the digest stays total instead of crashing.
    return it == map.end() ? e.packed() : it->second;
  };
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    const Part& p = *parts_[i];
    const int pd = p.mesh().dim();
    for (int d = 0; d <= pd; ++d) {
      // Entities are visited in canonical-name order, so the byte stream
      // mixed below is identical for any storage layout of the same mesh.
      for (Ent e : canon[i][static_cast<std::size_t>(d)]) {
        mix(h, static_cast<std::uint64_t>(e.topo()) + 1);
        if (d == 0) {
          const common::Vec3 x = p.mesh().point(e);
          mix(h, std::bit_cast<std::uint64_t>(x.x));
          mix(h, std::bit_cast<std::uint64_t>(x.y));
          mix(h, std::bit_cast<std::uint64_t>(x.z));
        }
        const gmi::Entity* cls = p.mesh().classification(e);
        mix(h, cls ? static_cast<std::uint64_t>(cls->dim()) + 1 : 0);
        mix(h, cls ? static_cast<std::uint64_t>(cls->tag()) + 1 : 0);
        if (const Remote* r = p.remote(e)) {
          mix(h, static_cast<std::uint64_t>(r->owner) + 1);
          for (const Copy& c : r->copies) {
            mix(h, static_cast<std::uint64_t>(c.part));
            mix(h, refOf(c.part, c.ent));
          }
        }
        if (p.isGhost(e)) {
          const Copy src = p.ghostSource(e);
          mix(h, static_cast<std::uint64_t>(src.part) + 2);
          mix(h, refOf(src.part, src.ent));
        }
        if (const auto* gcopies = p.ghostCopies(e)) {
          // The tracked list accumulates in message-arrival order, which is
          // layout-dependent; mix it in canonical (part, name) order.
          std::vector<Copy> gs(*gcopies);
          std::sort(gs.begin(), gs.end(), [&](const Copy& a, const Copy& b) {
            if (a.part != b.part) return a.part < b.part;
            return refOf(a.part, a.ent) < refOf(b.part, b.ent);
          });
          for (const Copy& c : gs) {
            mix(h, static_cast<std::uint64_t>(c.part) + 3);
            mix(h, refOf(c.part, c.ent));
          }
        }
        pcu::OutBuffer tags;
        packTags(p.mesh(), e, tags);
        const auto bytes = std::move(tags).take();
        mix(h, bytes.size());
        mix(h, common::crc32(bytes.data(), bytes.size()));
      }
    }
  }
  return h;
}

/// --- verify -------------------------------------------------------------------

namespace {

[[noreturn]] void vfail(const std::string& what, PartId p, Ent e,
                        const std::string& detail = "") {
  std::ostringstream os;
  os << "parallel verify failed: " << what << " [part " << p << ", "
     << core::topoName(e.topo()) << " #" << e.index() << "]";
  if (!detail.empty()) os << " (" << detail << ")";
  throw std::logic_error(os.str());
}

}  // namespace

void PartedMesh::verify() const {
  const int dim = dim_;
  for (const auto& pp : parts_) {
    const Part& p = *pp;
    for (int d = 0; d <= dim; ++d) {
      for (Ent e : p.mesh().entities(d)) {
        const Remote* r = p.remote(e);
        if (p.isGhost(e)) {
          if (r != nullptr) vfail("ghost entity has remote record", p.id(), e);
          const Copy src = p.ghostSource(e);
          const Part& sp = part(src.part);
          if (!sp.mesh().alive(src.ent))
            vfail("ghost source entity is dead", p.id(), e);
          const auto* gcopies = sp.ghostCopies(src.ent);
          if (gcopies == nullptr ||
              std::find(gcopies->begin(), gcopies->end(),
                        Copy{p.id(), e}) == gcopies->end())
            vfail("ghost source does not track this ghost", p.id(), e);
          continue;
        }
        if (r != nullptr) {
          if (r->copies.empty())
            vfail("shared entity with empty copy list", p.id(), e);
          // Copies sorted by part, unique, and symmetric.
          for (std::size_t i = 0; i + 1 < r->copies.size(); ++i)
            if (!(r->copies[i].part < r->copies[i + 1].part))
              vfail("copy list not sorted/unique", p.id(), e);
          const auto res = p.residence(e);
          if (std::find(res.begin(), res.end(), r->owner) == res.end())
            vfail("owner not in residence set", p.id(), e);
          for (const Copy& c : r->copies) {
            if (c.part == p.id()) vfail("copy list contains self", p.id(), e);
            const Part& q = part(c.part);
            if (!q.mesh().alive(c.ent)) vfail("dead remote copy", p.id(), e);
            if (c.ent.topo() != e.topo())
              vfail("remote copy topology mismatch", p.id(), e);
            const Remote* rq = q.remote(c.ent);
            if (rq == nullptr) vfail("remote copy not shared", p.id(), e);
            if (rq->owner != r->owner)
              vfail("owner disagreement across copies", p.id(), e);
            const bool back =
                std::find(rq->copies.begin(), rq->copies.end(),
                          Copy{p.id(), e}) != rq->copies.end();
            if (!back) vfail("copy symmetry broken", p.id(), e);
            if (q.residence(c.ent) != res)
              vfail("residence disagreement across copies", p.id(), e);
            // Geometric agreement.
            if (d == 0 && !(q.mesh().point(c.ent) == p.mesh().point(e)))
              vfail("vertex coordinate disagreement", p.id(), e);
            if (q.mesh().classification(c.ent) != p.mesh().classification(e))
              vfail("classification disagreement", p.id(), e);
          }
        }
        // Residence rule: this part must host an adjacent non-ghost element
        // (entities exist exactly where adjacent elements are).
        if (d < dim) {
          bool has_elem = false;
          for (Ent u : p.mesh().adjacentSpan(e, dim))
            if (!p.isGhost(u)) has_elem = true;
          if (!has_elem)
            vfail("entity resides on part without adjacent element", p.id(),
                  e);
        } else {
          if (r != nullptr) vfail("element is shared", p.id(), e);
        }
        // Owned ghost-copy tracking only on real entities; checked above.
      }
    }
    // Ghost-map consistency beyond what live-entity iteration covers: the
    // maps themselves must not reference dead entities or invalid parts,
    // and every tracked ghost copy (a syncGhostTags target) must exist, be
    // a ghost, and point back at its source.
    for (const auto& [g, src] : p.ghost_source_) {
      if (!p.mesh().alive(g))
        vfail("ghost-source record for dead entity", p.id(), g);
      if (src.part < 0 || src.part >= parts() || src.part == p.id())
        vfail("ghost source names invalid part", p.id(), g,
              "source part " + std::to_string(src.part));
    }
    for (const auto& [e, gcopies] : p.ghosted_on_) {
      if (!p.mesh().alive(e))
        vfail("ghost-copy record for dead entity", p.id(), e);
      if (p.isGhost(e))
        vfail("ghost entity tracks ghost copies of its own", p.id(), e);
      for (const Copy& c : gcopies) {
        if (c.part < 0 || c.part >= parts() || c.part == p.id())
          vfail("tracked ghost copy names invalid part", p.id(), e,
                "ghost part " + std::to_string(c.part));
        const Part& q = part(c.part);
        if (!q.mesh().alive(c.ent))
          vfail("tracked ghost copy is dead", p.id(), e,
                "on part " + std::to_string(c.part));
        if (!q.isGhost(c.ent))
          vfail("tracked ghost copy is not a ghost", p.id(), e,
                "on part " + std::to_string(c.part));
        const Copy back = q.ghostSource(c.ent);
        if (back.part != p.id() || !(back.ent == e))
          vfail("ghost copy does not point back at its source", p.id(), e,
                "on part " + std::to_string(c.part));
      }
    }
  }
}

}  // namespace dist
