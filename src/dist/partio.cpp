#include "dist/partio.hpp"

#include <algorithm>
#include <utility>

#include "pcu/buffer.hpp"
#include "pcu/error.hpp"

namespace dist {
namespace partio {

namespace {

[[noreturn]] void failValidation(const std::string& what) {
  throw pcu::Error(pcu::ErrorCode::kValidation, -1, what);
}

}  // namespace

OrdinalMap buildOrdinals(const core::Mesh& m) {
  OrdinalMap ord;
  for (int d = 0; d <= m.dim(); ++d) {
    std::uint64_t k = 0;
    for (Ent e : m.entities(d)) ord.emplace(e, entref(d, k++));
  }
  return ord;
}

EntTable buildEntTable(const core::Mesh& m) {
  EntTable table(4);
  for (int d = 0; d <= m.dim(); ++d)
    for (Ent e : m.entities(d))
      table[static_cast<std::size_t>(d)].push_back(e);
  return table;
}

std::vector<std::byte> buildMeta(const Part& p, const OrdinalMap& ord,
                                 const std::vector<OrdinalMap>& all) {
  auto refIn = [&all](PartId part, Ent e) {
    return all[static_cast<std::size_t>(part)].at(e);
  };
  pcu::OutBuffer b;
  b.pack(kMetaMagic);

  std::vector<std::pair<std::uint64_t, const Remote*>> remotes;
  remotes.reserve(p.remotes().size());
  for (const auto& [e, r] : p.remotes()) remotes.emplace_back(ord.at(e), &r);
  std::sort(remotes.begin(), remotes.end());
  b.pack<std::uint64_t>(remotes.size());
  for (const auto& [ref, r] : remotes) {
    b.pack<std::uint64_t>(ref);
    b.pack<std::int32_t>(r->owner);
    b.pack<std::uint64_t>(r->copies.size());
    for (const Copy& c : r->copies) {
      b.pack<std::int32_t>(c.part);
      b.pack<std::uint64_t>(refIn(c.part, c.ent));
    }
  }

  std::vector<std::pair<std::uint64_t, Copy>> ghosts;
  ghosts.reserve(CheckpointAccess::ghostSource(p).size());
  for (const auto& [e, src] : CheckpointAccess::ghostSource(p))
    ghosts.emplace_back(ord.at(e), src);
  std::sort(ghosts.begin(), ghosts.end(),
            [](const auto& a, const auto& b2) { return a.first < b2.first; });
  b.pack<std::uint64_t>(ghosts.size());
  for (const auto& [ref, src] : ghosts) {
    b.pack<std::uint64_t>(ref);
    b.pack<std::int32_t>(src.part);
    b.pack<std::uint64_t>(refIn(src.part, src.ent));
  }

  std::vector<std::pair<std::uint64_t, const std::vector<Copy>*>> ghosted;
  ghosted.reserve(CheckpointAccess::ghostedOn(p).size());
  for (const auto& [e, cps] : CheckpointAccess::ghostedOn(p))
    ghosted.emplace_back(ord.at(e), &cps);
  std::sort(ghosted.begin(), ghosted.end());
  b.pack<std::uint64_t>(ghosted.size());
  for (const auto& [ref, cps] : ghosted) {
    b.pack<std::uint64_t>(ref);
    b.pack<std::uint64_t>(cps->size());
    for (const Copy& c : *cps) {
      b.pack<std::int32_t>(c.part);
      b.pack<std::uint64_t>(refIn(c.part, c.ent));
    }
  }
  return std::move(b).take();
}

void applyMeta(Part& part, PartId p, std::vector<std::byte> meta,
               const std::function<Ent(PartId, std::uint64_t)>& entOf,
               const std::string& ctx) {
  pcu::InBuffer b(std::move(meta));
  if (b.remaining() < sizeof(std::uint64_t) ||
      b.unpack<std::uint64_t>() != kMetaMagic)
    failValidation(ctx + " is not a part metadata stream");
  const auto nremotes = b.unpack<std::uint64_t>();
  for (std::uint64_t i = 0; i < nremotes; ++i) {
    const Ent e = entOf(p, b.unpack<std::uint64_t>());
    Remote r;
    r.owner = b.unpack<std::int32_t>();
    const auto ncopies = b.unpack<std::uint64_t>();
    r.copies.reserve(ncopies);
    for (std::uint64_t c = 0; c < ncopies; ++c) {
      const auto cpart = b.unpack<std::int32_t>();
      r.copies.push_back(Copy{cpart, entOf(cpart, b.unpack<std::uint64_t>())});
    }
    part.setRemote(e, std::move(r));
  }
  const auto nghosts = b.unpack<std::uint64_t>();
  for (std::uint64_t i = 0; i < nghosts; ++i) {
    const Ent e = entOf(p, b.unpack<std::uint64_t>());
    const auto spart = b.unpack<std::int32_t>();
    CheckpointAccess::setGhost(
        part, e, Copy{spart, entOf(spart, b.unpack<std::uint64_t>())});
  }
  const auto nghosted = b.unpack<std::uint64_t>();
  for (std::uint64_t i = 0; i < nghosted; ++i) {
    const Ent e = entOf(p, b.unpack<std::uint64_t>());
    const auto ncopies = b.unpack<std::uint64_t>();
    std::vector<Copy> cps;
    cps.reserve(ncopies);
    for (std::uint64_t c = 0; c < ncopies; ++c) {
      const auto cpart = b.unpack<std::int32_t>();
      cps.push_back(Copy{cpart, entOf(cpart, b.unpack<std::uint64_t>())});
    }
    CheckpointAccess::setGhostedOn(part, e, std::move(cps));
  }
  if (!b.done()) failValidation(ctx + ": trailing bytes in metadata stream");
}

void applyMetaPartial(Part& part, PartId p, std::vector<std::byte> meta,
                      const std::function<Ent(PartId, std::uint64_t)>& entOf,
                      const std::string& ctx, const std::vector<bool>& lost,
                      std::vector<Ent>& dropped_ghosts) {
  auto isLost = [&lost](std::int32_t q) {
    return q >= 0 && static_cast<std::size_t>(q) < lost.size() &&
           lost[static_cast<std::size_t>(q)];
  };
  pcu::InBuffer b(std::move(meta));
  if (b.remaining() < sizeof(std::uint64_t) ||
      b.unpack<std::uint64_t>() != kMetaMagic)
    failValidation(ctx + " is not a part metadata stream");
  const auto nremotes = b.unpack<std::uint64_t>();
  for (std::uint64_t i = 0; i < nremotes; ++i) {
    const Ent e = entOf(p, b.unpack<std::uint64_t>());
    const auto owner = b.unpack<std::int32_t>();
    const auto ncopies = b.unpack<std::uint64_t>();
    Remote r;
    r.copies.reserve(ncopies);
    for (std::uint64_t c = 0; c < ncopies; ++c) {
      const auto cpart = b.unpack<std::int32_t>();
      const auto ref = b.unpack<std::uint64_t>();
      if (isLost(cpart)) continue;
      r.copies.push_back(Copy{cpart, entOf(cpart, ref)});
    }
    if (r.copies.empty()) continue;  // every other copy vanished: interior
    if (!isLost(owner)) {
      r.owner = owner;
    } else {
      // Deterministic symmetric reassignment: the minimum surviving part
      // of the residence set ({self} ∪ copies — identical on every copy).
      r.owner = p;
      for (const Copy& c : r.copies) r.owner = std::min(r.owner, c.part);
    }
    part.setRemote(e, std::move(r));
  }
  const auto nghosts = b.unpack<std::uint64_t>();
  for (std::uint64_t i = 0; i < nghosts; ++i) {
    const Ent e = entOf(p, b.unpack<std::uint64_t>());
    (void)b.unpack<std::int32_t>();   // source part (possibly lost)
    (void)b.unpack<std::uint64_t>();  // source entref (never resolved)
    dropped_ghosts.push_back(e);
  }
  const auto nghosted = b.unpack<std::uint64_t>();
  for (std::uint64_t i = 0; i < nghosted; ++i) {
    (void)entOf(p, b.unpack<std::uint64_t>());  // validate the local ref
    const auto ncopies = b.unpack<std::uint64_t>();
    for (std::uint64_t c = 0; c < ncopies; ++c) {
      (void)b.unpack<std::int32_t>();   // ghost part — records dropped
      (void)b.unpack<std::uint64_t>();  // mesh-wide, resolve nothing
    }
  }
  if (!b.done()) failValidation(ctx + ": trailing bytes in metadata stream");
}

}  // namespace partio
}  // namespace dist
