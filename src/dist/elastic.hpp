#ifndef PUMI_DIST_ELASTIC_HPP
#define PUMI_DIST_ELASTIC_HPP

/// \file elastic.hpp
/// \brief Elastic scale-out machinery: admit newly joined ranks.
///
/// The inverse of failover: where evacuate() re-homes a dead rank's parts
/// onto fewer ranks, this layer expands a live mesh onto *more*. A
/// join=K@P fault-plan token (consumed at a transport phase boundary,
/// Network::pendingJoin) or an explicit call announces K new ranks; the
/// machine model grows densely (existing ranks keep their numbers,
/// newcomers take the next K), and each newcomer receives one fresh empty
/// part pinned to it. Carving actual load onto those parts is the
/// balancing layer's job (parma's elastic join) — this header is pure
/// mechanism, no policy.

#include <vector>

#include "dist/partedmesh.hpp"

namespace dist::elastic {

/// What one admission did.
struct AdmitReport {
  int ranks_before = 0;
  int ranks_after = 0;
  std::vector<PartId> new_parts;  ///< one fresh empty part per newcomer rank
};

/// Admit `k` new ranks into `pm`'s machine: freeze the current part->rank
/// pinning (the block-layout fallback must not shift under existing
/// parts), grow the machine to totalCores()+k (Network::growRanks), and
/// give every rank that hosts no part one fresh empty part pinned to it.
/// Throws pcu::Error(kValidation) when k < 1. The mesh's element content
/// is untouched — new parts are empty until the balancer carves into them.
AdmitReport admitRanks(PartedMesh& pm, int k);

/// Give every machine rank that currently hosts no part one fresh empty
/// part pinned to it (no machine growth). This is admitRanks' second half,
/// exposed for restore-onto-more-ranks: restore(dir, model, n) with n
/// greater than the checkpoint's part count leaves ranks idle until this
/// populates them. Returns the new parts (empty when no rank was idle).
std::vector<PartId> addPartsOnIdleRanks(PartedMesh& pm);

/// Admit any join=K@P knock the transport consumed (Network::pendingJoin):
/// returns the admission when one was pending, nothing otherwise.
struct MaybeAdmit {
  bool admitted = false;
  AdmitReport report;
};
MaybeAdmit admitPendingJoin(PartedMesh& pm);

}  // namespace dist::elastic

#endif  // PUMI_DIST_ELASTIC_HPP
