#include "dist/ptnmodel.hpp"

#include <algorithm>

namespace dist {

PtnModel::PtnModel(const PartedMesh& mesh) {
  const int dim = mesh.dim();
  classification_.resize(static_cast<std::size_t>(mesh.parts()));
  for (PartId pid = 0; pid < mesh.parts(); ++pid) {
    const Part& p = mesh.part(pid);
    for (int d = 0; d <= dim; ++d) {
      for (Ent e : p.mesh().entities(d)) {
        if (p.isGhost(e)) continue;
        auto res = p.residence(e);
        auto it = by_residence_.find(res);
        int idx;
        if (it == by_residence_.end()) {
          PtnEntity pe;
          pe.dim = std::max(dim + 1 - static_cast<int>(res.size()), 0);
          pe.id = static_cast<int>(entities_.size());
          pe.owner = p.ownerOf(e);
          pe.residence = res;
          idx = pe.id;
          by_residence_.emplace(std::move(res), idx);
          entities_.push_back(std::move(pe));
        } else {
          idx = it->second;
        }
        classification_[static_cast<std::size_t>(pid)].emplace(e, idx);
      }
    }
  }
}

std::size_t PtnModel::count(int dim) const {
  std::size_t n = 0;
  for (const auto& e : entities_)
    if (e.dim == dim) ++n;
  return n;
}

const PtnEntity& PtnModel::classification(PartId part, Ent e) const {
  return entities_.at(static_cast<std::size_t>(
      classification_.at(static_cast<std::size_t>(part)).at(e)));
}

const PtnEntity* PtnModel::find(const std::vector<PartId>& residence) const {
  auto it = by_residence_.find(residence);
  return it == by_residence_.end() ? nullptr : &entities_[static_cast<std::size_t>(it->second)];
}

}  // namespace dist
