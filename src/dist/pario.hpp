#ifndef PUMI_DIST_PARIO_HPP
#define PUMI_DIST_PARIO_HPP

/// \file pario.hpp
/// \brief Crash-consistent parallel streaming mesh I/O (recovery tier 3).
///
/// One checkpoint is one chunked image file plus a MANIFEST index:
///
///   dir/IMAGE.<g>   [image header | region 0 | region 1 | ... ]
///   dir/MANIFEST    chunk index: per part, both copies' extents + CRCs
///
/// Every part's payloads (serial mesh stream, boundary/ghost metadata
/// stream — the partio format) become fixed-header chunks:
///
///   chunk := magic("PIOC") type(u32) part(u32) crc32(u32) length(u64)
///            payload[length]
///
/// Writer w owns one contiguous, 4 KiB-aligned extent region of the image
/// (one logical writer per part), so all writers stream their chunks
/// concurrently with no coordination and no rank-0 fan-out. Each chunk is
/// additionally buddy-replicated into writer (w+1) % W's region — the
/// cyclic pairing failover's buddy journals use — so restore can
/// read-repair a corrupted or torn copy from its replica instead of
/// failing. Reading back is partition-on-read: part p is deserialized by
/// reader p % M for any target rank count M (N writers → M readers with no
/// redistribution pass), cross-part references resolving through the
/// partio (dim, ordinal) entrefs.
///
/// Durability discipline (carried over from dist/checkpoint and tightened):
/// the image and the MANIFEST are each written to a temp file, fdatasync'd
/// and atomically renamed, MANIFEST strictly last — a crash anywhere
/// leaves the previous checkpoint's MANIFEST (still naming the previous,
/// untouched IMAGE.<g-1>) or none at all. Stale images and temp files are
/// swept only after the new MANIFEST committed, so two checkpoints into
/// one directory never share bytes. A pcu::Error mid-checkpoint (e.g.
/// injected ENOSPC) removes everything the failed attempt created.
///
/// All reads and writes route through pario::File, the storage shim the
/// pcu::faults I/O tokens (iobitrot/iotorn/ioshort/ioenospc/iostall) hook;
/// decisions are pure in (seed, path-hash, op, offset), so storage chaos
/// replays bit-identically.
///
/// Degradation contract: a chunk whose two copies are both bad names its
/// part in a RestoreReport; OnLoss::kFail turns that into a structured
/// kValidation error, OnLoss::kPartial loads every surviving part, drops
/// boundary records referencing lost parts (owners deterministically
/// reassigned to the minimum surviving resident part) and drops all
/// ghosts mesh-wide (a ghost whose source may be lost cannot satisfy the
/// verify() invariants), then verify()s what remains. scrub() is the
/// offline variant: verify and repair every chunk, reporting what it fixed.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dist/partedmesh.hpp"

namespace dist::pario {

/// --- storage shim --------------------------------------------------------

/// A positional-I/O file handle. Every pario/checkpoint byte moves through
/// this shim, which consults pcu::faults::decideIo (pure in seed, path
/// hash, op, offset) before touching the kernel: reads can come back
/// bit-rotted or short, writes can tear (prefix persists, success
/// reported), fail with an injected ENOSPC, or stall. Real I/O errors
/// surface as pcu::Error(kIoFault); open failures as kValidation naming
/// the path.
class File {
 public:
  /// Create/truncate for writing (0644), read-write.
  static File create(const std::string& path);
  /// Open read-only.
  static File openRead(const std::string& path);
  /// Open read-write (read-repair, scrub).
  static File openRw(const std::string& path);

  File(File&& other) noexcept;
  File& operator=(File&& other) noexcept;
  File(const File&) = delete;
  File& operator=(const File&) = delete;
  ~File();

  /// Write all n bytes at `off`. Loops on genuine short writes; injected
  /// faults tear (silent prefix), throw kIoFault (enospc / short), or
  /// stall per the ambient plan.
  void pwriteAll(const void* data, std::size_t n, std::uint64_t off);
  /// Read up to n bytes at `off`; returns the count actually read (short
  /// at end-of-file or under an injected short read). Injected bitrot
  /// flips one byte of the returned buffer.
  std::size_t preadSome(void* data, std::size_t n, std::uint64_t off);
  /// fdatasync: the write path's one durability barrier per file.
  void sync();
  [[nodiscard]] std::uint64_t size() const;
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  File(int fd, std::string path);
  int fd_ = -1;
  std::string path_;
  std::uint64_t path_hash_ = 0;
};

/// --- chunk index (the MANIFEST, parsed) ----------------------------------

inline constexpr std::uint32_t kChunkMagic = 0x50494F43u;  // "PIOC"
inline constexpr std::size_t kChunkHeaderBytes = 24;
inline constexpr std::uint32_t kChunkMesh = 0;
inline constexpr std::uint32_t kChunkMeta = 1;

/// Both copies of one chunk: primary extent in its writer's region,
/// replica in the buddy writer's region. Offsets locate the chunk header.
struct ChunkSlot {
  std::uint64_t primary = 0;
  std::uint64_t replica = 0;
  std::uint64_t length = 0;  ///< payload bytes (header excluded)
  std::uint32_t crc = 0;     ///< CRC32 of the payload
};

struct PartSlots {
  ChunkSlot mesh;
  ChunkSlot meta;
};

/// A parsed MANIFEST. Public so tests and fsck can locate chunk extents
/// (e.g. to corrupt one copy deliberately, or to report per-part damage).
struct Index {
  int nparts = 0;
  int dim = -1;
  OwnerRule rule = OwnerRule::MinPartId;
  int writers = 0;
  std::uint64_t generation = 0;
  std::uint64_t fingerprint = 0;
  std::string image;  ///< image file name within the directory
  std::vector<PartSlots> parts;
};

/// Parse and CRC-verify dir/MANIFEST. Throws kValidation for a missing,
/// unreadable or malformed checkpoint, naming the path and reason — an
/// unreadable directory is reported the same way, never a crash or hang.
Index loadIndex(const std::string& dir);

/// --- write path ----------------------------------------------------------

struct WriteStats {
  std::uint64_t bytes = 0;   ///< image + manifest bytes written (both copies)
  std::uint64_t chunks = 0;  ///< chunk copies written
  std::uint64_t generation = 0;
};

/// Write `pm` as a chunked image checkpoint into `dir` (created if
/// missing). All logical writers (one per part) stream their extents
/// concurrently; the MANIFEST commits last, atomically. On any error the
/// attempt's files are removed and the directory still holds the previous
/// valid checkpoint (or none).
WriteStats checkpointImage(const PartedMesh& pm, const std::string& dir);

/// --- read path -----------------------------------------------------------

/// What a restore did about damage.
struct RestoreReport {
  std::vector<PartId> lost;           ///< parts with an unrecoverable chunk
  std::uint64_t chunks_repaired = 0;  ///< copies rewritten from their buddy
  std::uint64_t chunks_lost = 0;      ///< chunks with both copies bad
  std::uint64_t bytes_read = 0;
  [[nodiscard]] bool partial() const { return !lost.empty(); }
};

/// Caller's choice when both copies of some chunk are gone.
enum class OnLoss : std::uint8_t {
  kFail,     ///< throw kValidation naming the lost parts (default)
  kPartial,  ///< load the surviving parts, report the lost ones
};

/// Rebuild a PartedMesh from a checkpoint image; `map` assigns parts to
/// target ranks (partition-on-read). Single-copy damage is read-repaired
/// in place from the buddy replica; unrecoverable chunks follow `on_loss`.
/// Fingerprint equality with the MANIFEST is enforced unless parts were
/// lost (a partial mesh fingerprints differently by construction);
/// verify() always runs. `report`, when non-null, receives the repair
/// counters and lost-part list.
std::unique_ptr<PartedMesh> restoreImage(const std::string& dir,
                                         gmi::Model* model, PartMap map,
                                         OnLoss on_loss = OnLoss::kFail,
                                         RestoreReport* report = nullptr);

/// Default part map: flat machine sized to the checkpoint's part count.
std::unique_ptr<PartedMesh> restoreImage(const std::string& dir,
                                         gmi::Model* model,
                                         OnLoss on_loss = OnLoss::kFail,
                                         RestoreReport* report = nullptr);

/// N→M partition-on-read: part p lands on rank p % target_ranks of a flat
/// machine (fewer ranks than wrote the image, or more — extra ranks start
/// idle). Throws kValidation when target_ranks < 1.
std::unique_ptr<PartedMesh> restoreImage(const std::string& dir,
                                         gmi::Model* model, int target_ranks,
                                         OnLoss on_loss = OnLoss::kFail,
                                         RestoreReport* report = nullptr);

/// Validated payloads (mesh stream, metadata stream) of one part,
/// read-repairing single-copy damage on the way. Throws kValidation for a
/// malformed checkpoint or part out of range, kCorruptPayload when both
/// copies of a chunk are bad.
std::pair<std::vector<std::byte>, std::vector<std::byte>> partBytes(
    const std::string& dir, PartId p);

/// True when `dir` restores without data loss: MANIFEST parses and every
/// chunk has at least one good copy. Never repairs, never throws.
bool valid(const std::string& dir);

/// --- offline scrub -------------------------------------------------------

struct ScrubReport {
  std::uint64_t chunks_ok = 0;
  std::uint64_t chunks_repaired = 0;  ///< bad copies rewritten from buddy
  std::uint64_t chunks_lost = 0;      ///< both copies bad
  std::vector<PartId> lost_parts;     ///< parts owning a lost chunk, sorted
  [[nodiscard]] bool clean() const { return chunks_lost == 0; }
};

/// Verify every chunk copy of the checkpoint in `dir` and rewrite any bad
/// copy from its good buddy. Throws kValidation for a missing/malformed
/// checkpoint; damage is reported, not thrown.
ScrubReport scrub(const std::string& dir);

}  // namespace dist::pario

#endif  // PUMI_DIST_PARIO_HPP
