#include "dist/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/meshio.hpp"
#include "dist/partio.hpp"
#include "pcu/buffer.hpp"
#include "pcu/error.hpp"
#include "pcu/faults.hpp"

namespace dist {

namespace {

using partio::OrdinalMap;
using partio::buildMeta;
using partio::buildOrdinals;

constexpr std::uint64_t kManifestMagic = 0x50554d494d414e31ull;  // "PUMIMAN1"
constexpr std::uint32_t kVersion = 1;

std::string meshPath(const std::string& dir, int i) {
  return dir + "/part" + std::to_string(i) + ".mesh";
}
std::string metaPath(const std::string& dir, int i) {
  return dir + "/part" + std::to_string(i) + ".meta";
}
std::string manifestPath(const std::string& dir) { return dir + "/MANIFEST"; }

[[noreturn]] void failValidation(const std::string& what) {
  throw pcu::Error(pcu::ErrorCode::kValidation, -1, what);
}

std::vector<std::byte> readFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) failValidation("checkpoint: cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  const std::size_t got = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (got != bytes.size())
    failValidation("checkpoint: short read from " + path);
  return bytes;
}

void writeFileBytes(const std::string& path,
                    const std::vector<std::byte>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) failValidation("checkpoint: cannot open " + path);
  const std::size_t put = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (put != bytes.size())
    failValidation("checkpoint: short write to " + path);
}

struct FileRecord {
  std::uint64_t mesh_size = 0;
  std::uint32_t mesh_crc = 0;
  std::uint64_t meta_size = 0;
  std::uint32_t meta_crc = 0;
};

struct Manifest {
  int nparts = 0;
  int dim = -1;
  OwnerRule rule = OwnerRule::MinPartId;
  std::uint64_t fingerprint = 0;
  std::vector<FileRecord> files;
};

constexpr std::size_t kManifestHeaderBytes =
    8 + 4 + 4 + 4 + 1 + 8;                       // magic..fingerprint
constexpr std::size_t kManifestRecordBytes = 24;  // per-part sizes + CRCs

Manifest loadManifest(const std::string& dir) {
  const std::string path = manifestPath(dir);
  if (!std::filesystem::exists(path))
    failValidation("restore: no MANIFEST in " + dir);
  std::vector<std::byte> bytes = readFileBytes(path);
  if (bytes.size() < kManifestHeaderBytes)
    failValidation("restore: truncated MANIFEST in " + dir);
  pcu::InBuffer b(std::move(bytes));
  if (b.unpack<std::uint64_t>() != kManifestMagic)
    failValidation("restore: " + path + " is not a checkpoint manifest");
  const auto version = b.unpack<std::uint32_t>();
  if (version != kVersion)
    failValidation("restore: " + path + " has unsupported version " +
                   std::to_string(version));
  Manifest m;
  m.nparts = static_cast<int>(b.unpack<std::uint32_t>());
  m.dim = b.unpack<std::int32_t>();
  const auto rule = b.unpack<std::uint8_t>();
  if (m.nparts < 1 || m.nparts > (1 << 24))
    failValidation("restore: " + path + " has bad part count " +
                   std::to_string(m.nparts));
  if (rule > 1)
    failValidation("restore: " + path + " has bad owner rule " +
                   std::to_string(rule));
  m.rule = static_cast<OwnerRule>(rule);
  m.fingerprint = b.unpack<std::uint64_t>();
  if (b.remaining() !=
      static_cast<std::size_t>(m.nparts) * kManifestRecordBytes)
    failValidation("restore: " + path + " has wrong length for " +
                   std::to_string(m.nparts) + " parts");
  m.files.resize(static_cast<std::size_t>(m.nparts));
  for (auto& f : m.files) {
    f.mesh_size = b.unpack<std::uint64_t>();
    f.mesh_crc = b.unpack<std::uint32_t>();
    f.meta_size = b.unpack<std::uint64_t>();
    f.meta_crc = b.unpack<std::uint32_t>();
  }
  return m;
}

/// Re-read every per-part file and compare size and CRC32 to the MANIFEST;
/// throws kCorruptPayload naming the first disagreeing file.
std::vector<std::vector<std::byte>> validateFiles(const std::string& dir,
                                                  const Manifest& m,
                                                  bool keep_meta) {
  std::vector<std::vector<std::byte>> metas;
  for (int i = 0; i < m.nparts; ++i) {
    const auto& rec = m.files[static_cast<std::size_t>(i)];
    const auto check = [&](const std::string& path, std::uint64_t want_size,
                           std::uint32_t want_crc) {
      if (!std::filesystem::exists(path))
        failValidation("restore: missing " + path);
      std::vector<std::byte> bytes = readFileBytes(path);
      if (bytes.size() != want_size ||
          pcu::faults::crc32(bytes.data(), bytes.size()) != want_crc)
        throw pcu::Error(pcu::ErrorCode::kCorruptPayload, -1,
                         "restore: " + path +
                             " does not match its MANIFEST size/CRC");
      return bytes;
    };
    check(meshPath(dir, i), rec.mesh_size, rec.mesh_crc);
    auto meta = check(metaPath(dir, i), rec.meta_size, rec.meta_crc);
    if (keep_meta) metas.push_back(std::move(meta));
  }
  return metas;
}

}  // namespace

void checkpoint(const PartedMesh& pm, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec)
    failValidation("checkpoint: cannot create directory " + dir + ": " +
                   ec.message());

  const int nparts = pm.parts();
  std::vector<OrdinalMap> ords;
  ords.reserve(static_cast<std::size_t>(nparts));
  for (PartId p = 0; p < nparts; ++p)
    ords.push_back(buildOrdinals(pm.part(p).mesh()));

  pcu::OutBuffer man;
  man.pack(kManifestMagic);
  man.pack<std::uint32_t>(kVersion);
  man.pack<std::uint32_t>(static_cast<std::uint32_t>(nparts));
  man.pack<std::int32_t>(pm.dim());
  man.pack<std::uint8_t>(static_cast<std::uint8_t>(pm.ownerRule()));
  man.pack<std::uint64_t>(pm.fingerprint());
  for (PartId p = 0; p < nparts; ++p) {
    const Part& part = pm.part(p);
    core::writeMesh(part.mesh(), meshPath(dir, p));
    const auto mesh_bytes = readFileBytes(meshPath(dir, p));
    const auto meta_bytes =
        buildMeta(part, ords[static_cast<std::size_t>(p)], ords);
    writeFileBytes(metaPath(dir, p), meta_bytes);
    man.pack<std::uint64_t>(mesh_bytes.size());
    man.pack<std::uint32_t>(
        pcu::faults::crc32(mesh_bytes.data(), mesh_bytes.size()));
    man.pack<std::uint64_t>(meta_bytes.size());
    man.pack<std::uint32_t>(
        pcu::faults::crc32(meta_bytes.data(), meta_bytes.size()));
  }
  // The MANIFEST commits the checkpoint: write it last, atomically, so a
  // crash anywhere above leaves either the previous valid checkpoint's
  // manifest or none at all — never a manifest describing partial files.
  const std::string tmp = manifestPath(dir) + ".tmp";
  writeFileBytes(tmp, std::move(man).take());
  if (std::rename(tmp.c_str(), manifestPath(dir).c_str()) != 0)
    failValidation("checkpoint: cannot commit " + manifestPath(dir));
}

std::unique_ptr<PartedMesh> restore(const std::string& dir,
                                    gmi::Model* model) {
  const Manifest m = loadManifest(dir);
  return restore(dir, model, PartMap(m.nparts, pcu::Machine()));
}

std::unique_ptr<PartedMesh> restore(const std::string& dir, gmi::Model* model,
                                    PartMap map) {
  const Manifest man = loadManifest(dir);
  auto metas = validateFiles(dir, man, /*keep_meta=*/true);

  auto pm = std::make_unique<PartedMesh>(model, man.nparts, std::move(map),
                                         man.rule);
  // Rebuild each part's serial mesh, then the (part, ordinal) -> entity
  // tables the metadata references are resolved against.
  std::vector<partio::EntTable> ents;
  ents.reserve(static_cast<std::size_t>(man.nparts));
  for (PartId p = 0; p < man.nparts; ++p) {
    auto loaded = core::readMesh(meshPath(dir, p), model);
    Part& part = pm->part(p);
    part.mesh().copyFrom(*loaded);
    ents.push_back(partio::buildEntTable(part.mesh()));
  }
  auto entOf = [&ents, &dir](PartId part, std::uint64_t ref) -> Ent {
    const int d = static_cast<int>(ref >> 48);
    const std::uint64_t k = ref & ((std::uint64_t{1} << 48) - 1);
    const auto& table = ents[static_cast<std::size_t>(part)];
    if (d < 0 || d > 3 || k >= table[static_cast<std::size_t>(d)].size())
      failValidation("restore: " + dir + " references entity (dim " +
                     std::to_string(d) + ", ordinal " + std::to_string(k) +
                     ") absent from part " + std::to_string(part));
    return table[static_cast<std::size_t>(d)][k];
  };

  for (PartId p = 0; p < man.nparts; ++p)
    partio::applyMeta(pm->part(p), p,
                      std::move(metas[static_cast<std::size_t>(p)]), entOf,
                      "restore: " + metaPath(dir, p));

  CheckpointAccess::setDim(*pm, man.dim);
  pm->verify();
  if (pm->fingerprint() != man.fingerprint)
    throw pcu::Error(pcu::ErrorCode::kCorruptPayload, -1,
                     "restore: " + dir +
                         " rebuilt to a different fingerprint than its "
                         "MANIFEST records");
  return pm;
}

std::unique_ptr<PartedMesh> restore(const std::string& dir, gmi::Model* model,
                                    int target_ranks) {
  if (target_ranks < 1)
    failValidation("restore: target rank count " +
                   std::to_string(target_ranks) + " is not positive");
  const Manifest m = loadManifest(dir);
  // Deterministic orphan assignment: part p lands on rank p % target_ranks,
  // so a checkpoint written by N ranks restores cleanly onto any smaller
  // group and every survivor computes the same map without communicating.
  std::vector<int> ranks(static_cast<std::size_t>(m.nparts));
  for (int p = 0; p < m.nparts; ++p)
    ranks[static_cast<std::size_t>(p)] = p % target_ranks;
  PartMap map(m.nparts, pcu::Machine::flat(target_ranks));
  map.setPartRanks(std::move(ranks));
  return restore(dir, model, std::move(map));
}

std::pair<std::vector<std::byte>, std::vector<std::byte>> checkpointPartBytes(
    const std::string& dir, PartId p) {
  const Manifest m = loadManifest(dir);
  if (p < 0 || p >= m.nparts)
    failValidation("checkpointPartBytes: part " + std::to_string(p) +
                   " out of range for " + dir + " (" + std::to_string(m.nparts) +
                   " parts)");
  const auto& rec = m.files[static_cast<std::size_t>(p)];
  const auto check = [&](const std::string& path, std::uint64_t want_size,
                         std::uint32_t want_crc) {
    if (!std::filesystem::exists(path))
      failValidation("checkpointPartBytes: missing " + path);
    std::vector<std::byte> bytes = readFileBytes(path);
    if (bytes.size() != want_size ||
        pcu::faults::crc32(bytes.data(), bytes.size()) != want_crc)
      throw pcu::Error(
          pcu::ErrorCode::kCorruptPayload, -1,
          "checkpointPartBytes: " + path +
              " does not match its MANIFEST size/CRC");
    return bytes;
  };
  auto mesh = check(meshPath(dir, p), rec.mesh_size, rec.mesh_crc);
  auto meta = check(metaPath(dir, p), rec.meta_size, rec.meta_crc);
  return {std::move(mesh), std::move(meta)};
}

bool checkpointValid(const std::string& dir) {
  try {
    const Manifest m = loadManifest(dir);
    validateFiles(dir, m, /*keep_meta=*/false);
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace dist
