#include "dist/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/meshio.hpp"
#include "pcu/buffer.hpp"
#include "pcu/error.hpp"
#include "pcu/faults.hpp"

namespace dist {

/// Private-state backdoor for (de)serialization: checkpointing must read
/// and rebuild the ghost maps and the cached element dimension, which have
/// no public mutators (and should not grow any for this one internal use).
struct CheckpointAccess {
  static const std::unordered_map<Ent, Copy, EntHash>& ghostSource(
      const Part& p) {
    return p.ghost_source_;
  }
  static const std::unordered_map<Ent, std::vector<Copy>, EntHash>& ghostedOn(
      const Part& p) {
    return p.ghosted_on_;
  }
  static void setGhost(Part& p, Ent ghost, Copy source) {
    p.ghost_source_[ghost] = source;
  }
  static void setGhostedOn(Part& p, Ent real, std::vector<Copy> copies) {
    p.ghosted_on_[real] = std::move(copies);
  }
  static void setDim(PartedMesh& pm, int dim) { pm.dim_ = dim; }
};

namespace {

constexpr std::uint64_t kManifestMagic = 0x50554d494d414e31ull;  // "PUMIMAN1"
constexpr std::uint64_t kMetaMagic = 0x50554d43504b5031ull;      // "PUMCPKP1"
constexpr std::uint32_t kVersion = 1;

/// Cross-restart entity reference: (dim << 48) | ordinal, where ordinal is
/// the entity's position in its part's entities(dim) iteration order.
/// writeMesh/readMesh preserve that order, so references stay valid after
/// the handle rebuild on restore.
constexpr std::uint64_t entref(int dim, std::uint64_t ordinal) {
  return (static_cast<std::uint64_t>(dim) << 48) | ordinal;
}

using OrdinalMap = std::unordered_map<Ent, std::uint64_t, EntHash>;

OrdinalMap buildOrdinals(const core::Mesh& m) {
  OrdinalMap ord;
  for (int d = 0; d <= m.dim(); ++d) {
    std::uint64_t k = 0;
    for (Ent e : m.entities(d)) ord.emplace(e, entref(d, k++));
  }
  return ord;
}

std::string meshPath(const std::string& dir, int i) {
  return dir + "/part" + std::to_string(i) + ".mesh";
}
std::string metaPath(const std::string& dir, int i) {
  return dir + "/part" + std::to_string(i) + ".meta";
}
std::string manifestPath(const std::string& dir) { return dir + "/MANIFEST"; }

[[noreturn]] void failValidation(const std::string& what) {
  throw pcu::Error(pcu::ErrorCode::kValidation, -1, what);
}

std::vector<std::byte> readFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) failValidation("checkpoint: cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  const std::size_t got = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (got != bytes.size())
    failValidation("checkpoint: short read from " + path);
  return bytes;
}

void writeFileBytes(const std::string& path,
                    const std::vector<std::byte>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) failValidation("checkpoint: cannot open " + path);
  const std::size_t put = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (put != bytes.size())
    failValidation("checkpoint: short write to " + path);
}

/// Serialize one part's boundary/ghost records. All three maps are written
/// sorted by entity reference so the byte stream (and therefore its CRC in
/// the MANIFEST) is deterministic.
std::vector<std::byte> buildMeta(const Part& p, const OrdinalMap& ord,
                                 const std::vector<OrdinalMap>& all) {
  auto refIn = [&all](PartId part, Ent e) {
    return all[static_cast<std::size_t>(part)].at(e);
  };
  pcu::OutBuffer b;
  b.pack(kMetaMagic);

  std::vector<std::pair<std::uint64_t, const Remote*>> remotes;
  remotes.reserve(p.remotes().size());
  for (const auto& [e, r] : p.remotes()) remotes.emplace_back(ord.at(e), &r);
  std::sort(remotes.begin(), remotes.end());
  b.pack<std::uint64_t>(remotes.size());
  for (const auto& [ref, r] : remotes) {
    b.pack<std::uint64_t>(ref);
    b.pack<std::int32_t>(r->owner);
    b.pack<std::uint64_t>(r->copies.size());
    for (const Copy& c : r->copies) {
      b.pack<std::int32_t>(c.part);
      b.pack<std::uint64_t>(refIn(c.part, c.ent));
    }
  }

  std::vector<std::pair<std::uint64_t, Copy>> ghosts;
  ghosts.reserve(CheckpointAccess::ghostSource(p).size());
  for (const auto& [e, src] : CheckpointAccess::ghostSource(p))
    ghosts.emplace_back(ord.at(e), src);
  std::sort(ghosts.begin(), ghosts.end(),
            [](const auto& a, const auto& b2) { return a.first < b2.first; });
  b.pack<std::uint64_t>(ghosts.size());
  for (const auto& [ref, src] : ghosts) {
    b.pack<std::uint64_t>(ref);
    b.pack<std::int32_t>(src.part);
    b.pack<std::uint64_t>(refIn(src.part, src.ent));
  }

  std::vector<std::pair<std::uint64_t, const std::vector<Copy>*>> ghosted;
  ghosted.reserve(CheckpointAccess::ghostedOn(p).size());
  for (const auto& [e, cps] : CheckpointAccess::ghostedOn(p))
    ghosted.emplace_back(ord.at(e), &cps);
  std::sort(ghosted.begin(), ghosted.end());
  b.pack<std::uint64_t>(ghosted.size());
  for (const auto& [ref, cps] : ghosted) {
    b.pack<std::uint64_t>(ref);
    b.pack<std::uint64_t>(cps->size());
    for (const Copy& c : *cps) {
      b.pack<std::int32_t>(c.part);
      b.pack<std::uint64_t>(refIn(c.part, c.ent));
    }
  }
  return std::move(b).take();
}

struct FileRecord {
  std::uint64_t mesh_size = 0;
  std::uint32_t mesh_crc = 0;
  std::uint64_t meta_size = 0;
  std::uint32_t meta_crc = 0;
};

struct Manifest {
  int nparts = 0;
  int dim = -1;
  OwnerRule rule = OwnerRule::MinPartId;
  std::uint64_t fingerprint = 0;
  std::vector<FileRecord> files;
};

constexpr std::size_t kManifestHeaderBytes =
    8 + 4 + 4 + 4 + 1 + 8;                       // magic..fingerprint
constexpr std::size_t kManifestRecordBytes = 24;  // per-part sizes + CRCs

Manifest loadManifest(const std::string& dir) {
  const std::string path = manifestPath(dir);
  if (!std::filesystem::exists(path))
    failValidation("restore: no MANIFEST in " + dir);
  std::vector<std::byte> bytes = readFileBytes(path);
  if (bytes.size() < kManifestHeaderBytes)
    failValidation("restore: truncated MANIFEST in " + dir);
  pcu::InBuffer b(std::move(bytes));
  if (b.unpack<std::uint64_t>() != kManifestMagic)
    failValidation("restore: " + path + " is not a checkpoint manifest");
  const auto version = b.unpack<std::uint32_t>();
  if (version != kVersion)
    failValidation("restore: " + path + " has unsupported version " +
                   std::to_string(version));
  Manifest m;
  m.nparts = static_cast<int>(b.unpack<std::uint32_t>());
  m.dim = b.unpack<std::int32_t>();
  const auto rule = b.unpack<std::uint8_t>();
  if (m.nparts < 1 || m.nparts > (1 << 24))
    failValidation("restore: " + path + " has bad part count " +
                   std::to_string(m.nparts));
  if (rule > 1)
    failValidation("restore: " + path + " has bad owner rule " +
                   std::to_string(rule));
  m.rule = static_cast<OwnerRule>(rule);
  m.fingerprint = b.unpack<std::uint64_t>();
  if (b.remaining() !=
      static_cast<std::size_t>(m.nparts) * kManifestRecordBytes)
    failValidation("restore: " + path + " has wrong length for " +
                   std::to_string(m.nparts) + " parts");
  m.files.resize(static_cast<std::size_t>(m.nparts));
  for (auto& f : m.files) {
    f.mesh_size = b.unpack<std::uint64_t>();
    f.mesh_crc = b.unpack<std::uint32_t>();
    f.meta_size = b.unpack<std::uint64_t>();
    f.meta_crc = b.unpack<std::uint32_t>();
  }
  return m;
}

/// Re-read every per-part file and compare size and CRC32 to the MANIFEST;
/// throws kCorruptPayload naming the first disagreeing file.
std::vector<std::vector<std::byte>> validateFiles(const std::string& dir,
                                                  const Manifest& m,
                                                  bool keep_meta) {
  std::vector<std::vector<std::byte>> metas;
  for (int i = 0; i < m.nparts; ++i) {
    const auto& rec = m.files[static_cast<std::size_t>(i)];
    const auto check = [&](const std::string& path, std::uint64_t want_size,
                           std::uint32_t want_crc) {
      if (!std::filesystem::exists(path))
        failValidation("restore: missing " + path);
      std::vector<std::byte> bytes = readFileBytes(path);
      if (bytes.size() != want_size ||
          pcu::faults::crc32(bytes.data(), bytes.size()) != want_crc)
        throw pcu::Error(pcu::ErrorCode::kCorruptPayload, -1,
                         "restore: " + path +
                             " does not match its MANIFEST size/CRC");
      return bytes;
    };
    check(meshPath(dir, i), rec.mesh_size, rec.mesh_crc);
    auto meta = check(metaPath(dir, i), rec.meta_size, rec.meta_crc);
    if (keep_meta) metas.push_back(std::move(meta));
  }
  return metas;
}

}  // namespace

void checkpoint(const PartedMesh& pm, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec)
    failValidation("checkpoint: cannot create directory " + dir + ": " +
                   ec.message());

  const int nparts = pm.parts();
  std::vector<OrdinalMap> ords;
  ords.reserve(static_cast<std::size_t>(nparts));
  for (PartId p = 0; p < nparts; ++p)
    ords.push_back(buildOrdinals(pm.part(p).mesh()));

  pcu::OutBuffer man;
  man.pack(kManifestMagic);
  man.pack<std::uint32_t>(kVersion);
  man.pack<std::uint32_t>(static_cast<std::uint32_t>(nparts));
  man.pack<std::int32_t>(pm.dim());
  man.pack<std::uint8_t>(static_cast<std::uint8_t>(pm.ownerRule()));
  man.pack<std::uint64_t>(pm.fingerprint());
  for (PartId p = 0; p < nparts; ++p) {
    const Part& part = pm.part(p);
    core::writeMesh(part.mesh(), meshPath(dir, p));
    const auto mesh_bytes = readFileBytes(meshPath(dir, p));
    const auto meta_bytes =
        buildMeta(part, ords[static_cast<std::size_t>(p)], ords);
    writeFileBytes(metaPath(dir, p), meta_bytes);
    man.pack<std::uint64_t>(mesh_bytes.size());
    man.pack<std::uint32_t>(
        pcu::faults::crc32(mesh_bytes.data(), mesh_bytes.size()));
    man.pack<std::uint64_t>(meta_bytes.size());
    man.pack<std::uint32_t>(
        pcu::faults::crc32(meta_bytes.data(), meta_bytes.size()));
  }
  // The MANIFEST commits the checkpoint: write it last, atomically, so a
  // crash anywhere above leaves either the previous valid checkpoint's
  // manifest or none at all — never a manifest describing partial files.
  const std::string tmp = manifestPath(dir) + ".tmp";
  writeFileBytes(tmp, std::move(man).take());
  if (std::rename(tmp.c_str(), manifestPath(dir).c_str()) != 0)
    failValidation("checkpoint: cannot commit " + manifestPath(dir));
}

std::unique_ptr<PartedMesh> restore(const std::string& dir,
                                    gmi::Model* model) {
  const Manifest m = loadManifest(dir);
  return restore(dir, model, PartMap(m.nparts, pcu::Machine()));
}

std::unique_ptr<PartedMesh> restore(const std::string& dir, gmi::Model* model,
                                    PartMap map) {
  const Manifest man = loadManifest(dir);
  auto metas = validateFiles(dir, man, /*keep_meta=*/true);

  auto pm = std::make_unique<PartedMesh>(model, man.nparts, std::move(map),
                                         man.rule);
  // Rebuild each part's serial mesh, then the (part, ordinal) -> entity
  // tables the metadata references are resolved against.
  std::vector<std::vector<std::vector<Ent>>> ents(
      static_cast<std::size_t>(man.nparts));
  for (PartId p = 0; p < man.nparts; ++p) {
    auto loaded = core::readMesh(meshPath(dir, p), model);
    Part& part = pm->part(p);
    part.mesh().copyFrom(*loaded);
    auto& table = ents[static_cast<std::size_t>(p)];
    table.resize(4);
    for (int d = 0; d <= part.mesh().dim(); ++d)
      for (Ent e : part.mesh().entities(d))
        table[static_cast<std::size_t>(d)].push_back(e);
  }
  auto entOf = [&ents, &dir](PartId part, std::uint64_t ref) -> Ent {
    const int d = static_cast<int>(ref >> 48);
    const std::uint64_t k = ref & ((std::uint64_t{1} << 48) - 1);
    const auto& table = ents[static_cast<std::size_t>(part)];
    if (d < 0 || d > 3 || k >= table[static_cast<std::size_t>(d)].size())
      failValidation("restore: " + dir + " references entity (dim " +
                     std::to_string(d) + ", ordinal " + std::to_string(k) +
                     ") absent from part " + std::to_string(part));
    return table[static_cast<std::size_t>(d)][k];
  };

  for (PartId p = 0; p < man.nparts; ++p) {
    Part& part = pm->part(p);
    pcu::InBuffer b(std::move(metas[static_cast<std::size_t>(p)]));
    if (b.remaining() < sizeof(std::uint64_t) ||
        b.unpack<std::uint64_t>() != kMetaMagic)
      failValidation("restore: " + metaPath(dir, p) +
                     " is not a checkpoint metadata file");
    const auto nremotes = b.unpack<std::uint64_t>();
    for (std::uint64_t i = 0; i < nremotes; ++i) {
      const Ent e = entOf(p, b.unpack<std::uint64_t>());
      Remote r;
      r.owner = b.unpack<std::int32_t>();
      const auto ncopies = b.unpack<std::uint64_t>();
      r.copies.reserve(ncopies);
      for (std::uint64_t c = 0; c < ncopies; ++c) {
        const auto cpart = b.unpack<std::int32_t>();
        r.copies.push_back(Copy{cpart, entOf(cpart, b.unpack<std::uint64_t>())});
      }
      part.setRemote(e, std::move(r));
    }
    const auto nghosts = b.unpack<std::uint64_t>();
    for (std::uint64_t i = 0; i < nghosts; ++i) {
      const Ent e = entOf(p, b.unpack<std::uint64_t>());
      const auto spart = b.unpack<std::int32_t>();
      CheckpointAccess::setGhost(
          part, e, Copy{spart, entOf(spart, b.unpack<std::uint64_t>())});
    }
    const auto nghosted = b.unpack<std::uint64_t>();
    for (std::uint64_t i = 0; i < nghosted; ++i) {
      const Ent e = entOf(p, b.unpack<std::uint64_t>());
      const auto ncopies = b.unpack<std::uint64_t>();
      std::vector<Copy> cps;
      cps.reserve(ncopies);
      for (std::uint64_t c = 0; c < ncopies; ++c) {
        const auto cpart = b.unpack<std::int32_t>();
        cps.push_back(Copy{cpart, entOf(cpart, b.unpack<std::uint64_t>())});
      }
      CheckpointAccess::setGhostedOn(part, e, std::move(cps));
    }
    if (!b.done())
      failValidation("restore: trailing bytes in " + metaPath(dir, p));
  }

  CheckpointAccess::setDim(*pm, man.dim);
  pm->verify();
  if (pm->fingerprint() != man.fingerprint)
    throw pcu::Error(pcu::ErrorCode::kCorruptPayload, -1,
                     "restore: " + dir +
                         " rebuilt to a different fingerprint than its "
                         "MANIFEST records");
  return pm;
}

bool checkpointValid(const std::string& dir) {
  try {
    const Manifest m = loadManifest(dir);
    validateFiles(dir, m, /*keep_meta=*/false);
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace dist
