#include "dist/checkpoint.hpp"

#include <utility>

#include "dist/pario.hpp"

namespace dist {

// The stable checkpoint/restart entry points are a thin facade over
// dist/pario, the chunked parallel image format. Policy here is fixed:
// full restores fail fast on unrecoverable loss (OnLoss::kFail); callers
// that want damage reports or partial restore use pario directly.

void checkpoint(const PartedMesh& pm, const std::string& dir) {
  pario::checkpointImage(pm, dir);
}

std::unique_ptr<PartedMesh> restore(const std::string& dir,
                                    gmi::Model* model) {
  return pario::restoreImage(dir, model, pario::OnLoss::kFail);
}

std::unique_ptr<PartedMesh> restore(const std::string& dir, gmi::Model* model,
                                    PartMap map) {
  return pario::restoreImage(dir, model, std::move(map),
                             pario::OnLoss::kFail);
}

std::unique_ptr<PartedMesh> restore(const std::string& dir, gmi::Model* model,
                                    int target_ranks) {
  return pario::restoreImage(dir, model, target_ranks, pario::OnLoss::kFail);
}

std::pair<std::vector<std::byte>, std::vector<std::byte>> checkpointPartBytes(
    const std::string& dir, PartId p) {
  return pario::partBytes(dir, p);
}

bool checkpointValid(const std::string& dir) { return pario::valid(dir); }

}  // namespace dist
