#ifndef PUMI_DIST_DIGEST_HPP
#define PUMI_DIST_DIGEST_HPP

/// \file digest.hpp
/// \brief Geometric element digests: the "no element lost" witness.
///
/// A handle-based fingerprint cannot survive rebuilds (restore, evacuation,
/// elastic redistribution rebuild entities in new memory), so conservation
/// proofs hash geometry instead: each element digests to a hash of its
/// sorted vertex coordinates, stable across handle rebuilds and part moves.
/// The multiset of digests over the whole mesh is then equal before and
/// after any redistribution iff no element was lost or duplicated — the
/// gate elastic scale-out, failover and the chaos tests all check.

#include <cstdint>
#include <set>

#include "dist/partedmesh.hpp"

namespace dist::digest {

/// Geometric digest of one element: FNV-1a over its sorted vertex
/// coordinate triples.
std::uint64_t elementDigest(const core::Mesh& m, core::Ent e);

/// Digest multiset over every non-ghost element of every part.
std::multiset<std::uint64_t> elementDigests(const PartedMesh& pm);

}  // namespace dist::digest

#endif  // PUMI_DIST_DIGEST_HPP
