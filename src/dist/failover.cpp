#include "dist/failover.hpp"

#include <algorithm>
#include <chrono>
#include <set>
#include <utility>

#include "common/crc32.hpp"
#include "core/meshio.hpp"
#include "dist/checkpoint.hpp"
#include "dist/partio.hpp"
#include "pcu/error.hpp"
#include "pcu/failure.hpp"
#include "pcu/faults.hpp"
#include "pcu/trace.hpp"

namespace dist {
namespace failover {

namespace {

[[noreturn]] void failValidation(const std::string& what) {
  throw pcu::Error(pcu::ErrorCode::kValidation, -1, what);
}

double msSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

void BuddyJournal::record(const PartedMesh& pm) {
  const int nparts = pm.parts();
  std::vector<partio::OrdinalMap> ords;
  ords.reserve(static_cast<std::size_t>(nparts));
  for (PartId p = 0; p < nparts; ++p)
    ords.push_back(partio::buildOrdinals(pm.part(p).mesh()));
  ++records_;
  std::uint64_t streamed = 0;
  for (PartId p = 0; p < nparts; ++p) {
    auto mesh = core::meshToBytes(pm.part(p).mesh());
    auto meta = partio::buildMeta(pm.part(p),
                                  ords[static_cast<std::size_t>(p)], ords);
    const std::uint32_t mesh_crc = common::crc32(mesh.data(), mesh.size());
    const std::uint32_t meta_crc = common::crc32(meta.data(), meta.size());
    auto it = parts_.find(p);
    if (it != parts_.end() && it->second.mesh_crc == mesh_crc &&
        it->second.meta_crc == meta_crc &&
        it->second.mesh.size() == mesh.size() &&
        it->second.meta.size() == meta.size()) {
      ++records_skipped_;  // unchanged since the last record: no traffic
      continue;
    }
    streamed += mesh.size() + meta.size();
    parts_[p] = Snapshot{std::move(mesh), std::move(meta), mesh_crc, meta_crc};
  }
  bytes_streamed_ += streamed;
  if (pcu::trace::enabled() && streamed > 0)
    pcu::trace::counter("fo:journal_bytes",
                        static_cast<std::int64_t>(streamed));
}

int buddyOf(int r, int nranks, const std::vector<int>& dead) {
  const std::set<int> gone(dead.begin(), dead.end());
  for (int step = 1; step <= nranks; ++step) {
    const int cand = (r + step) % nranks;
    if (gone.count(cand) == 0) return cand;
  }
  failValidation("buddyOf: all " + std::to_string(nranks) +
                 " ranks are dead; nothing can adopt rank " +
                 std::to_string(r) + "'s parts");
}

EvacuationReport evacuate(PartedMesh& pm, const BuddyJournal& journal,
                          const std::string& checkpoint_dir) {
  const auto t0 = std::chrono::steady_clock::now();
  EvacuationReport rep;
  rep.ranks_lost = pm.network().deadRanks();
  if (rep.ranks_lost.empty())
    failValidation("evacuate: no rank is dead");
  const std::set<int> gone(rep.ranks_lost.begin(), rep.ranks_lost.end());

  const PartMap& map = pm.network().partMap();
  const int nparts = pm.parts();
  for (PartId p = 0; p < nparts; ++p)
    if (gone.count(map.rankOf(p)) > 0) rep.parts_evacuated.push_back(p);
  if (rep.parts_evacuated.empty())
    failValidation("evacuate: dead ranks host no parts");

  // 1. Fetch every dead part's newest replica — the buddy journal first,
  //    the checkpoint directory as fallback — BEFORE touching the mesh, so
  //    a missing or corrupt replica aborts with nothing wiped.
  std::vector<std::vector<std::byte>> meshes(static_cast<std::size_t>(nparts));
  std::vector<std::vector<std::byte>> metas(static_cast<std::size_t>(nparts));
  for (PartId p : rep.parts_evacuated) {
    std::vector<std::byte> mesh_bytes;
    std::vector<std::byte> meta_bytes;
    if (const BuddyJournal::Snapshot* snap = journal.find(p)) {
      mesh_bytes = snap->mesh;
      meta_bytes = snap->meta;
    } else if (!checkpoint_dir.empty()) {
      std::tie(mesh_bytes, meta_bytes) =
          checkpointPartBytes(checkpoint_dir, p);
    } else {
      failValidation("evacuate: part " + std::to_string(p) +
                     " (dead rank " + std::to_string(map.rankOf(p)) +
                     ") has no journal replica and no checkpoint fallback");
    }
    rep.journal_bytes_replayed += mesh_bytes.size() + meta_bytes.size();
    meshes[static_cast<std::size_t>(p)] = std::move(mesh_bytes);
    metas[static_cast<std::size_t>(p)] = std::move(meta_bytes);
  }
  for (PartId p : rep.parts_evacuated) {
    auto rebuilt = core::meshFromBytes(
        std::move(meshes[static_cast<std::size_t>(p)]), pm.model());
    CheckpointAccess::resetPart(pm.part(p), *rebuilt);
  }

  // 2. Resolve the replicas' (part, ordinal) references against the
  //    rebuilt handles. Survivor tables are built from their CURRENT
  //    meshes: the transactional rollback landed them on the same
  //    quiescent state the journal recorded, so their ordinals agree.
  std::vector<partio::EntTable> ents;
  ents.reserve(static_cast<std::size_t>(nparts));
  for (PartId p = 0; p < nparts; ++p)
    ents.push_back(partio::buildEntTable(pm.part(p).mesh()));
  auto entOf = [&ents](PartId part, std::uint64_t ref) -> Ent {
    const int d = static_cast<int>(ref >> 48);
    const std::uint64_t k = ref & ((std::uint64_t{1} << 48) - 1);
    const auto& table = ents[static_cast<std::size_t>(part)];
    if (d < 0 || d > 3 || k >= table[static_cast<std::size_t>(d)].size())
      failValidation(
          "evacuate: replica references entity (dim " + std::to_string(d) +
          ", ordinal " + std::to_string(k) + ") absent from part " +
          std::to_string(part) +
          " — the journal is stale relative to the rollback point");
    return table[static_cast<std::size_t>(d)][k];
  };
  for (PartId p : rep.parts_evacuated)
    partio::applyMeta(pm.part(p), p,
                      std::move(metas[static_cast<std::size_t>(p)]), entOf,
                      "evacuate: part " + std::to_string(p) + " replica");

  // 3. Patch the survivors' mirror records through copy symmetry: their
  //    stored handles into each dead part died with the old mesh, but the
  //    dead part's rebuilt records name the same links from the other end
  //    (with valid handles on both sides).
  const std::set<PartId> evac(rep.parts_evacuated.begin(),
                              rep.parts_evacuated.end());
  for (PartId p : rep.parts_evacuated) {
    const Part& dp = pm.part(p);
    for (const auto& [e, r] : dp.remotes()) {
      for (const Copy& c : r.copies) {
        if (evac.count(c.part) > 0) continue;  // both ends already rebuilt
        Part& sq = pm.part(c.part);
        const Remote* mirror = sq.remote(c.ent);
        if (mirror == nullptr) continue;  // verify() reports the asymmetry
        Remote patched = *mirror;
        for (Copy& mc : patched.copies)
          if (mc.part == p) mc.ent = e;
        sq.setRemote(c.ent, std::move(patched));
      }
    }
    for (const auto& [g, src] : CheckpointAccess::ghostSource(dp)) {
      if (evac.count(src.part) > 0) continue;
      Part& sq = pm.part(src.part);
      const auto& ghosted = CheckpointAccess::ghostedOn(sq);
      auto it = ghosted.find(src.ent);
      if (it == ghosted.end()) continue;
      std::vector<Copy> patched = it->second;
      for (Copy& mc : patched)
        if (mc.part == p) mc.ent = g;
      CheckpointAccess::setGhostedOn(sq, src.ent, std::move(patched));
    }
    for (const auto& [e, cps] : CheckpointAccess::ghostedOn(dp)) {
      for (const Copy& c : cps) {
        if (evac.count(c.part) > 0) continue;
        Part& sq = pm.part(c.part);
        if (sq.isGhost(c.ent))
          CheckpointAccess::setGhost(sq, c.ent, Copy{p, e});
      }
    }
  }

  // 4. Re-pin every evacuated part to its buddy rank. This is what lifts
  //    the transport's dead-rank gate: from here on the whole mesh lives
  //    on surviving ranks only.
  const int nranks = map.machine().totalCores();
  std::vector<int> ranks(static_cast<std::size_t>(nparts));
  for (PartId p = 0; p < nparts; ++p) {
    const int r = map.rankOf(p);
    ranks[static_cast<std::size_t>(p)] =
        gone.count(r) > 0 ? buddyOf(r, nranks, rep.ranks_lost) : r;
  }
  pm.network().setPartRanks(std::move(ranks));

  for (PartId p : rep.parts_evacuated) {
    const core::Mesh& m = pm.part(p).mesh();
    for (int d = 0; d <= m.dim(); ++d) rep.entities_adopted += m.count(d);
  }

  pm.verify();

  rep.detect_ms =
      static_cast<double>(pcu::failure::stats().last_detect_us) / 1000.0;
  rep.evacuate_ms = msSince(t0);
  if (pcu::trace::enabled()) {
    pcu::trace::counter(
        "fo:parts_evacuated",
        static_cast<std::int64_t>(rep.parts_evacuated.size()));
    pcu::trace::counter("fo:entities_adopted",
                        static_cast<std::int64_t>(rep.entities_adopted));
    pcu::trace::counter(
        "fo:bytes_replayed",
        static_cast<std::int64_t>(rep.journal_bytes_replayed));
  }
  return rep;
}

}  // namespace failover
}  // namespace dist
