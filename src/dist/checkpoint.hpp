#ifndef PUMI_DIST_CHECKPOINT_HPP
#define PUMI_DIST_CHECKPOINT_HPP

/// \file checkpoint.hpp
/// \brief Checkpoint/restart for the distributed mesh (recovery tier 3).
///
/// checkpoint() writes one directory holding the full distributed state:
/// per part a serial mesh file (core::writeMesh — entities, coordinates,
/// classification, transportable tags) plus a metadata file with the
/// part-boundary and ghost records, and a MANIFEST binding them together.
/// Cross-part entity references are stored as (dim, ordinal) pairs —
/// the entity's position in its part's entities(dim) iteration order —
/// which the mesh file format preserves, so references survive the handle
/// rebuild on restore.
///
/// Durability and integrity:
///  - the MANIFEST is written last, via a temp file + atomic rename, so a
///    crash mid-checkpoint leaves no directory that validates;
///  - the MANIFEST records every file's size and CRC32, and the mesh
///    fingerprint() at checkpoint time; restore() re-verifies all of them
///    and runs verify(), so a restored mesh is bit-equivalent (fingerprint-
///    equal) to the checkpointed one or restore throws.
///
/// Errors are structured pcu::Error values: kValidation for a missing or
/// malformed checkpoint (names the file and reason), kCorruptPayload for a
/// file whose size or CRC disagrees with the MANIFEST.

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dist/partedmesh.hpp"

namespace dist {

/// Write `pm`'s full distributed state into directory `dir` (created if
/// missing; an existing valid checkpoint there is replaced atomically from
/// the reader's point of view — the old MANIFEST stays valid until the new
/// one is renamed in).
void checkpoint(const PartedMesh& pm, const std::string& dir);

/// Rebuild a PartedMesh from a checkpoint directory, classifying against
/// `model` (the same model — or an equivalent one — that was active at
/// checkpoint time). The part map defaults to a flat machine sized to the
/// checkpoint's part count; the second overload supplies an explicit map.
/// Validates the MANIFEST, every per-part file CRC, the distributed
/// invariants (verify()) and fingerprint equality before returning.
std::unique_ptr<PartedMesh> restore(const std::string& dir, gmi::Model* model);
std::unique_ptr<PartedMesh> restore(const std::string& dir, gmi::Model* model,
                                    PartMap map);

/// Restore onto `target_ranks` ranks — fewer than wrote the checkpoint (a
/// post-shrink restart) or MORE (a scale-out restart). Every part p,
/// including those whose writing rank no longer exists, is
/// deterministically assigned to rank p % target_ranks over a flat
/// machine, so orphaned parts land on surviving ranks and every rank
/// computes the same assignment without communicating. With target_ranks
/// greater than the checkpoint's part count the assignment is the
/// identity and the extra ranks start idle — follow with
/// parma::expandToIdleRanks() to populate and rebalance onto them.
/// Throws kValidation when target_ranks < 1.
std::unique_ptr<PartedMesh> restore(const std::string& dir, gmi::Model* model,
                                    int target_ranks);

/// Validated raw bytes of one part in a checkpoint: (mesh stream, metadata
/// stream), each checked against the MANIFEST's size and CRC32. Used by
/// failover evacuation as the fallback source for parts the buddy journal
/// lacks. Throws kValidation for a missing/malformed checkpoint or part id
/// out of range, kCorruptPayload on a CRC mismatch.
std::pair<std::vector<std::byte>, std::vector<std::byte>> checkpointPartBytes(
    const std::string& dir, PartId p);

/// True when `dir` holds a complete, CRC-clean checkpoint (cheap scan: no
/// mesh rebuild). A crash mid-checkpoint yields false, so a restart loop
/// can pick the newest directory that answers true.
bool checkpointValid(const std::string& dir);

}  // namespace dist

#endif  // PUMI_DIST_CHECKPOINT_HPP
