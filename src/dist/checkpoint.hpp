#ifndef PUMI_DIST_CHECKPOINT_HPP
#define PUMI_DIST_CHECKPOINT_HPP

/// \file checkpoint.hpp
/// \brief Checkpoint/restart for the distributed mesh (recovery tier 3).
///
/// This is the stable entry-point facade over dist/pario, the chunked
/// parallel image format: one checkpoint directory holds one IMAGE.<g>
/// file (every part's serial mesh stream and boundary/ghost metadata
/// stream as CRC'd, buddy-replicated chunks in disjoint per-writer
/// extents) plus a MANIFEST chunk index, written last via temp file +
/// atomic rename. Cross-part entity references are stored as
/// (dim, ordinal) pairs — the entity's position in its part's
/// entities(dim) iteration order — which the mesh stream format
/// preserves, so references survive the handle rebuild on restore.
///
/// Durability and integrity:
///  - the MANIFEST commits the checkpoint atomically; a crash anywhere
///    mid-checkpoint leaves the previous valid checkpoint (or nothing),
///    and a failed attempt's temp files are cleaned up;
///  - every chunk carries a CRC32 recorded in the MANIFEST and a buddy
///    replica in another writer's extent; restore() validates each chunk,
///    silently read-repairs a bad copy from its replica, re-runs
///    verify() and enforces fingerprint equality.
///
/// Errors are structured pcu::Error values: kValidation for a missing,
/// unreadable or malformed checkpoint and for unrecoverable data loss on
/// restore (naming the path, reason and lost parts), kCorruptPayload for
/// a rebuilt mesh whose fingerprint disagrees with the MANIFEST,
/// kIoFault for storage-level write failures. For damage reports,
/// partial restore of a degraded checkpoint, and offline scrub/repair,
/// use dist/pario directly.

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dist/partedmesh.hpp"

namespace dist {

/// Write `pm`'s full distributed state into directory `dir` (created if
/// missing; an existing valid checkpoint there is replaced atomically from
/// the reader's point of view — the old MANIFEST stays valid until the new
/// one is renamed in).
void checkpoint(const PartedMesh& pm, const std::string& dir);

/// Rebuild a PartedMesh from a checkpoint directory, classifying against
/// `model` (the same model — or an equivalent one — that was active at
/// checkpoint time). The part map defaults to a flat machine sized to the
/// checkpoint's part count; the second overload supplies an explicit map.
/// Validates the MANIFEST, every chunk CRC (read-repairing single-copy
/// damage from the buddy replica), the distributed invariants (verify())
/// and fingerprint equality before returning.
std::unique_ptr<PartedMesh> restore(const std::string& dir, gmi::Model* model);
std::unique_ptr<PartedMesh> restore(const std::string& dir, gmi::Model* model,
                                    PartMap map);

/// Restore onto `target_ranks` ranks — fewer than wrote the checkpoint (a
/// post-shrink restart) or MORE (a scale-out restart). Every part p,
/// including those whose writing rank no longer exists, is
/// deterministically assigned to rank p % target_ranks over a flat
/// machine, so orphaned parts land on surviving ranks and every rank
/// computes the same assignment without communicating (partition-on-read:
/// N writers → M readers with no redistribution pass). With target_ranks
/// greater than the checkpoint's part count the assignment is the
/// identity and the extra ranks start idle — follow with
/// parma::expandToIdleRanks() to populate and rebalance onto them.
/// Throws kValidation when target_ranks < 1.
std::unique_ptr<PartedMesh> restore(const std::string& dir, gmi::Model* model,
                                    int target_ranks);

/// Validated raw bytes of one part in a checkpoint: (mesh stream, metadata
/// stream), each checked against the MANIFEST's chunk CRCs and
/// read-repaired from the buddy replica when one copy is bad. Used by
/// failover evacuation as the fallback source for parts the buddy journal
/// lacks. Throws kValidation for a missing/malformed checkpoint or part id
/// out of range, kCorruptPayload when both copies of a chunk are bad.
std::pair<std::vector<std::byte>, std::vector<std::byte>> checkpointPartBytes(
    const std::string& dir, PartId p);

/// True when `dir` holds a checkpoint that restores without data loss:
/// the MANIFEST parses and every chunk has at least one good copy (cheap
/// scan: no mesh rebuild, no repair). A crash mid-checkpoint yields false,
/// so a restart loop can pick the newest directory that answers true.
bool checkpointValid(const std::string& dir);

}  // namespace dist

#endif  // PUMI_DIST_CHECKPOINT_HPP
