#include "dist/padapt.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <map>
#include <stdexcept>

#include "adapt/collapse.hpp"
#include "common/flatmap.hpp"
#include "adapt/split.hpp"
#include "core/measure.hpp"
#include "gmi/model.hpp"
#include "pcu/trace.hpp"

namespace dist {

using core::Ent;
using core::EntHash;

namespace {

/// Canonical key of an entity through its owner copy (public-API variant
/// of PartedMesh::keyOf).
GKey keyOf(const Part& p, Ent e) {
  const Remote* r = p.remote(e);
  if (r == nullptr || r->owner == p.id()) return GKey{p.id(), e};
  for (const Copy& c : r->copies)
    if (c.part == r->owner) return GKey{c.part, c.ent};
  throw std::logic_error("padapt: owner copy not found");
}

/// One split this part must perform.
struct Split {
  GKey key;        ///< the edge's global identity (owner part + handle)
  Ent local_edge;  ///< this part's copy
  common::Vec3 position;

  /// Geometric execution order: the snapped midpoint is identical on every
  /// holding part AND invariant under storage layout (handles differ
  /// across partitionings and pool reorderings, coordinates do not), so
  /// all parts — and all layouts of the same mesh — refine in the same
  /// sequence. Exact midpoint ties (degenerate) fall back to the key.
  friend bool operator<(const Split& a, const Split& b) {
    const auto bits = [](const common::Vec3& x) {
      return std::array<std::uint64_t, 3>{std::bit_cast<std::uint64_t>(x.x),
                                          std::bit_cast<std::uint64_t>(x.y),
                                          std::bit_cast<std::uint64_t>(x.z)};
    };
    const auto ka = bits(a.position);
    const auto kb = bits(b.position);
    if (ka != kb) return ka < kb;
    if (a.key.part != b.key.part) return a.key.part < b.key.part;
    return a.key.ent.packed() < b.key.ent.packed();
  }
};

/// Signature of a candidate shared entity: its sorted vertex keys.
using Signature = std::vector<std::uint64_t>;

std::size_t hashSignature(const Signature& sig) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  for (std::uint64_t v : sig) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return static_cast<std::size_t>(h);
}

}  // namespace

PartedRefineStats refineParted(PartedMesh& pm, const adapt::SizeField& size,
                               const PartedRefineOptions& opts) {
  const int dim = pm.dim();
  if (dim < 2) throw std::logic_error("refineParted: mesh not distributed");
  for (PartId p = 0; p < pm.parts(); ++p)
    if (pm.part(p).ghostCount() > 0)
      throw std::logic_error("refineParted: unghost first");

  PartedRefineStats stats;
  Network& net = pm.network();
  const std::size_t nparts = static_cast<std::size_t>(pm.parts());

  pcu::trace::Scope trace_scope("dist:refineParted");
  for (int pass = 0; pass < opts.max_passes; ++pass) {
    pcu::trace::Scope pass_scope("padapt:refine-pass");
    // --- 1. mark & decide ------------------------------------------------
    std::vector<common::FlatSet<Ent, EntHash>> decided(nparts);
    for (PartId p = 0; p < pm.parts(); ++p) {
      auto& part = pm.part(p);
      auto& mesh = part.mesh();
      for (Ent e : mesh.entities(1)) {
        const auto vs = mesh.verts(e);
        const common::Vec3 mid =
            (mesh.point(vs[0]) + mesh.point(vs[1])) * 0.5;
        if (core::measure(mesh, e) <= opts.ratio * size.value(mid)) continue;
        const GKey key = keyOf(part, e);
        if (key.part == p) {
          decided[static_cast<std::size_t>(p)].insert(e);
        } else {
          pcu::OutBuffer b;
          b.pack<std::uint64_t>(key.ent.packed());
          net.send(p, key.part, std::move(b));
        }
      }
    }
    net.deliverAll([&](PartId to, PartId, pcu::InBuffer body) {
      decided[static_cast<std::size_t>(to)].insert(
          Ent::unpack(body.unpack<std::uint64_t>()));
    });

    // Owners compute the (snapped) midpoints once and broadcast the splits.
    std::vector<std::vector<Split>> splits(nparts);
    std::size_t global_splits = 0;
    for (PartId p = 0; p < pm.parts(); ++p) {
      auto& part = pm.part(p);
      auto& mesh = part.mesh();
      for (Ent e : decided[static_cast<std::size_t>(p)]) {
        const auto vs = mesh.verts(e);
        common::Vec3 mid = (mesh.point(vs[0]) + mesh.point(vs[1])) * 0.5;
        if (gmi::Entity* cls = mesh.classification(e)) mid = cls->snap(mid);
        splits[static_cast<std::size_t>(p)].push_back(
            Split{GKey{p, e}, e, mid});
        ++global_splits;
        if (const Remote* r = part.remote(e)) {
          for (const Copy& c : r->copies) {
            pcu::OutBuffer b;
            b.pack<std::int32_t>(p);
            b.pack<std::uint64_t>(e.packed());
            b.pack<std::uint64_t>(c.ent.packed());
            b.pack(mid);
            net.send(p, c.part, std::move(b));
          }
        }
      }
    }
    net.deliverAll([&](PartId to, PartId, pcu::InBuffer body) {
      Split s;
      s.key.part = body.unpack<std::int32_t>();
      s.key.ent = Ent::unpack(body.unpack<std::uint64_t>());
      s.local_edge = Ent::unpack(body.unpack<std::uint64_t>());
      s.position = body.unpack<common::Vec3>();
      splits[static_cast<std::size_t>(to)].push_back(s);
    });
    if (global_splits == 0) break;
    stats.passes = pass + 1;
    stats.splits += global_splits;

    // --- 2. execute in the global deterministic order ---------------------
    // The order is shared by all parts, so when several edges of one
    // shared face split in a pass, every holding part produces the same
    // triangulation.
    std::vector<std::vector<std::pair<GKey, Ent>>> mids(nparts);
    for (PartId p = 0; p < pm.parts(); ++p) {
      auto& list = splits[static_cast<std::size_t>(p)];
      std::sort(list.begin(), list.end());
      Part& part = pm.part(p);
      auto& mesh = part.mesh();
      for (const Split& s : list) {
        // Drop the boundary records of everything this split destroys (the
        // edge and, in 3D, its adjacent faces) *before* splitting: their
        // storage slots may be reused immediately by new entities, and a
        // stale record would silently attach to the newcomer.
        part.eraseRemote(s.local_edge);
        if (dim == 3)
          for (Ent f : mesh.up(s.local_edge)) part.eraseRemote(f);
        const Ent m =
            adapt::splitEdgeAt(mesh, s.local_edge, s.position, opts.transfer);
        mids[static_cast<std::size_t>(p)].emplace_back(s.key, m);
      }
    }

    // --- 3. link midpoint vertices of shared edges ------------------------
    struct MidGroup {
      std::vector<Copy> copies;  ///< every part's midpoint, incl. owner's
    };
    std::vector<std::map<std::uint64_t, MidGroup>> groups(nparts);
    for (PartId p = 0; p < pm.parts(); ++p) {
      for (const auto& [key, m] : mids[static_cast<std::size_t>(p)]) {
        if (key.part == p) {
          groups[static_cast<std::size_t>(p)][key.ent.packed()]
              .copies.push_back(Copy{p, m});
        } else {
          pcu::OutBuffer b;
          b.pack<std::uint64_t>(key.ent.packed());
          b.pack<std::uint64_t>(m.packed());
          net.send(p, key.part, std::move(b));
        }
      }
    }
    net.deliverAll([&](PartId to, PartId from, pcu::InBuffer body) {
      const auto edge_bits = body.unpack<std::uint64_t>();
      const Ent m = Ent::unpack(body.unpack<std::uint64_t>());
      groups[static_cast<std::size_t>(to)][edge_bits].copies.push_back(
          Copy{from, m});
    });
    for (PartId p = 0; p < pm.parts(); ++p) {
      for (auto& [edge_bits, group] : groups[static_cast<std::size_t>(p)]) {
        (void)edge_bits;
        if (group.copies.size() < 2) continue;  // interior midpoint
        std::sort(group.copies.begin(), group.copies.end(),
                  [](const Copy& a, const Copy& b) { return a.part < b.part; });
        const PartId owner = group.copies.front().part;
        for (const Copy& member : group.copies) {
          pcu::OutBuffer b;
          b.pack<std::uint64_t>(member.ent.packed());
          b.pack<std::int32_t>(owner);
          b.pack<std::uint32_t>(
              static_cast<std::uint32_t>(group.copies.size()));
          for (const Copy& c : group.copies) {
            b.pack<std::int32_t>(c.part);
            b.pack<std::uint64_t>(c.ent.packed());
          }
          net.send(p, member.part, std::move(b));
        }
      }
    }
    auto applyRemote = [&](PartId to, pcu::InBuffer& body) {
      Part& part = pm.part(to);
      const Ent local = Ent::unpack(body.unpack<std::uint64_t>());
      Remote r;
      r.owner = body.unpack<std::int32_t>();
      const auto n = body.unpack<std::uint32_t>();
      for (std::uint32_t i = 0; i < n; ++i) {
        Copy c;
        c.part = body.unpack<std::int32_t>();
        c.ent = Ent::unpack(body.unpack<std::uint64_t>());
        if (c.part != to) r.copies.push_back(c);
      }
      part.setRemote(local, std::move(r));
    };
    net.deliverAll([&](PartId to, PartId, pcu::InBuffer body) {
      applyRemote(to, body);
    });

    // --- 4. signature rendezvous for the other new boundary entities ------
    for (PartId p = 0; p < pm.parts(); ++p) {
      Part& part = pm.part(p);
      auto& mesh = part.mesh();
      common::FlatSet<Ent, EntHash> seen;
      core::AdjVec adj;
      for (const auto& [key, m] : mids[static_cast<std::size_t>(p)]) {
        (void)key;
        if (!part.isShared(m)) continue;  // interior split: nothing new shared
        for (int d = 1; d < dim; ++d) {
          const int na = mesh.adjacentInto(m, d, adj);
          for (int ai = 0; ai < na; ++ai) {
            const Ent cand = adj[static_cast<std::size_t>(ai)];
            if (!seen.insert(cand).second) continue;
            std::array<Ent, core::kMaxDown> vbuf{};
            const int nv = mesh.downward(cand, 0, vbuf.data());
            bool all_shared = true;
            for (int i = 0; i < nv; ++i)
              all_shared =
                  all_shared && part.isShared(vbuf[static_cast<std::size_t>(i)]);
            if (!all_shared) continue;
            Signature sig;
            sig.reserve(static_cast<std::size_t>(nv) * 2);
            std::vector<std::pair<std::int32_t, std::uint64_t>> vkeys;
            for (int i = 0; i < nv; ++i) {
              const GKey k = keyOf(part, vbuf[static_cast<std::size_t>(i)]);
              vkeys.emplace_back(k.part, k.ent.packed());
            }
            std::sort(vkeys.begin(), vkeys.end());
            for (const auto& [kp, kb] : vkeys) {
              sig.push_back(static_cast<std::uint64_t>(
                  static_cast<std::uint32_t>(kp)));
              sig.push_back(kb);
            }
            const PartId rendezvous =
                static_cast<PartId>(hashSignature(sig) % nparts);
            pcu::OutBuffer b;
            b.packVector(sig);
            b.pack<std::uint64_t>(cand.packed());
            net.send(p, rendezvous, std::move(b));
          }
        }
      }
    }
    std::vector<std::map<Signature, std::vector<Copy>>> match(nparts);
    net.deliverAll([&](PartId to, PartId from, pcu::InBuffer body) {
      Signature sig = body.unpackVector<std::uint64_t>();
      const Ent handle = Ent::unpack(body.unpack<std::uint64_t>());
      match[static_cast<std::size_t>(to)][std::move(sig)].push_back(
          Copy{from, handle});
    });
    for (PartId r = 0; r < pm.parts(); ++r) {
      for (auto& [sig, members] : match[static_cast<std::size_t>(r)]) {
        (void)sig;
        if (members.size() < 2) continue;
        std::sort(members.begin(), members.end(),
                  [](const Copy& a, const Copy& b) { return a.part < b.part; });
        const PartId owner = members.front().part;
        for (const Copy& member : members) {
          pcu::OutBuffer b;
          b.pack<std::uint64_t>(member.ent.packed());
          b.pack<std::int32_t>(owner);
          b.pack<std::uint32_t>(static_cast<std::uint32_t>(members.size()));
          for (const Copy& c : members) {
            b.pack<std::int32_t>(c.part);
            b.pack<std::uint64_t>(c.ent.packed());
          }
          net.send(r, member.part, std::move(b));
        }
      }
    }
    net.deliverAll([&](PartId to, PartId, pcu::InBuffer body) {
      applyRemote(to, body);
    });

    // --- 5. sweep boundary records of the split (destroyed) entities ------
    for (PartId p = 0; p < pm.parts(); ++p) pm.part(p).sweepDeadRemotes();
  }
  return stats;
}

PartedCoarsenStats coarsenParted(PartedMesh& pm, const adapt::SizeField& size,
                                 const PartedCoarsenOptions& opts) {
  const int dim = pm.dim();
  if (dim < 2) throw std::logic_error("coarsenParted: mesh not distributed");
  for (PartId p = 0; p < pm.parts(); ++p)
    if (pm.part(p).ghostCount() > 0)
      throw std::logic_error("coarsenParted: unghost first");

  PartedCoarsenStats stats;
  pcu::trace::Scope trace_scope("dist:coarsenParted");
  for (int pass = 0; pass < opts.max_passes; ++pass) {
    std::size_t done = 0;
    for (PartId p = 0; p < pm.parts(); ++p) {
      Part& part = pm.part(p);
      auto& mesh = part.mesh();
      // Short edges whose whole collapse cavity is part-interior: the
      // removed vertex and everything adjacent to it must be unshared.
      std::vector<std::pair<double, Ent>> marked;
      for (Ent e : mesh.entities(1)) {
        const auto vs = mesh.verts(e);
        const common::Vec3 mid =
            (mesh.point(vs[0]) + mesh.point(vs[1])) * 0.5;
        const double len = core::measure(mesh, e);
        if (len < opts.ratio * size.value(mid)) marked.emplace_back(len, e);
      }
      std::sort(marked.begin(), marked.end());
      for (const auto& [len, e] : marked) {
        (void)len;
        if (!mesh.alive(e)) continue;
        const auto vs = mesh.verts(e);
        for (Ent remove : {vs[0], vs[1]}) {
          if (part.isShared(remove)) continue;
          bool interior = true;
          core::AdjVec star;
          for (int d = 1; d <= dim && interior; ++d) {
            const int na = mesh.adjacentInto(remove, d, star);
            for (int ai = 0; ai < na; ++ai)
              if (part.isShared(star[static_cast<std::size_t>(ai)])) {
                interior = false;
                break;
              }
          }
          if (!interior) continue;
          if (adapt::collapseEdge(mesh, e, remove, opts.transfer)) {
            ++done;
            break;
          }
        }
      }
    }
    if (done == 0) break;
    stats.passes = pass + 1;
    stats.collapses += done;
  }
  return stats;
}

adapt::SmoothStats smoothParted(PartedMesh& pm,
                                const adapt::SmoothOptions& opts) {
  adapt::SmoothStats total;
  for (PartId p = 0; p < pm.parts(); ++p) {
    Part& part = pm.part(p);
    adapt::SmoothOptions local = opts;
    local.skip = [&part, base = opts.skip](Ent v) {
      if (part.isShared(v) || part.isGhost(v)) return true;
      return base ? base(v) : false;
    };
    const auto s = adapt::smooth(part.mesh(), local);
    total.moved += s.moved;
    total.rejected += s.rejected;
  }
  return total;
}

}  // namespace dist
