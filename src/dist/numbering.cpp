#include "dist/numbering.hpp"

#include <stdexcept>

namespace dist {

std::size_t numberEntities(PartedMesh& pm, int d,
                           const std::string& tag_name) {
  // Exclusive scan of owned counts over parts.
  std::vector<long> offset(static_cast<std::size_t>(pm.parts()) + 1, 0);
  for (PartId p = 0; p < pm.parts(); ++p)
    offset[static_cast<std::size_t>(p) + 1] =
        offset[static_cast<std::size_t>(p)] +
        static_cast<long>(pm.part(p).countOwned(d));

  // Owners number their entities; then one shared-tag sync pushes the ids
  // to every remote copy.
  for (PartId p = 0; p < pm.parts(); ++p) {
    Part& part = pm.part(p);
    auto& m = part.mesh();
    core::Mesh::Tag tag = m.tags().find(tag_name);
    if (tag == nullptr) tag = m.tags().create<long>(tag_name, 1);
    long next = offset[static_cast<std::size_t>(p)];
    for (Ent e : m.entities(d)) {
      if (part.isGhost(e)) continue;
      if (part.isOwned(e)) m.tags().setScalar<long>(tag, e, next++);
    }
  }
  pm.syncSharedTags(tag_name);
  return static_cast<std::size_t>(offset.back());
}

long globalId(const PartedMesh& pm, PartId part, Ent e,
              const std::string& tag_name) {
  const auto& m = pm.part(part).mesh();
  core::Mesh::Tag tag = m.tags().find(tag_name);
  if (tag == nullptr)
    throw std::invalid_argument("globalId: no numbering named " + tag_name);
  return m.tags().getScalar<long>(tag, e);
}

}  // namespace dist
