#ifndef PUMI_DIST_PADAPT_HPP
#define PUMI_DIST_PADAPT_HPP

/// \file padapt.hpp
/// \brief Parallel mesh adaptation: size-field-driven refinement of a
/// distributed mesh (the paper's central workflow — "the application of
/// operations like mesh adaptation will change the mesh in general ways",
/// Sec. I; parallel mesh modification per Alauzet/Li/Seol/Shephard [15]).
///
/// Each refinement pass:
///  1. every part marks its over-long edges; marks on shared edges are
///     forwarded to the owning part, which decides and broadcasts the
///     split (with the snapped midpoint coordinates computed once, so all
///     copies create bitwise-identical vertices);
///  2. every part executes its splits in a global deterministic order
///     (sorted by owner key), which guarantees parts triangulate shared
///     faces identically when several edges of one face split in a pass;
///  3. midpoint vertices of shared edges are linked across parts (the
///     owner gathers and redistributes the copy lists);
///  4. the remaining new part-boundary entities (sub-edges, face children,
///     face-interior edges) are discovered by signature rendezvous: every
///     new entity whose vertices are all shared sends its sorted
///     vertex-key signature to a rendezvous part; matching signatures are
///     linked as remote copies;
///  5. stale boundary records of split (destroyed) entities are swept.
///
/// The result verifies under PartedMesh::verify() and conforms across
/// parts: a shared face's children agree on every holding part.

#include "adapt/quality.hpp"
#include "adapt/sizefield.hpp"
#include "adapt/transfer.hpp"
#include "dist/partedmesh.hpp"

namespace dist {

struct PartedRefineOptions {
  double ratio = 1.5;  ///< split edges longer than ratio * size(midpoint)
  int max_passes = 12;
  adapt::SolutionTransfer* transfer = nullptr;
};

struct PartedRefineStats {
  int passes = 0;
  std::size_t splits = 0;  ///< total splits, counting each edge once
};

/// Refine the distributed mesh under `size`. Requires no ghosts.
PartedRefineStats refineParted(PartedMesh& pm, const adapt::SizeField& size,
                               const PartedRefineOptions& opts = {});

struct PartedCoarsenOptions {
  double ratio = 0.6;  ///< collapse edges shorter than ratio * size
  int max_passes = 8;
  adapt::SolutionTransfer* transfer = nullptr;
};

struct PartedCoarsenStats {
  int passes = 0;
  std::size_t collapses = 0;
};

/// Coarsen the distributed mesh under `size` with part-local edge
/// collapses: only cavities with no part-boundary entity are collapsed, so
/// no coordination is needed and the boundary is untouched (the standard
/// strategy — interleave with migration/ParMA to move boundaries off
/// over-refined regions when deeper coarsening is required).
PartedCoarsenStats coarsenParted(PartedMesh& pm, const adapt::SizeField& size,
                                 const PartedCoarsenOptions& opts = {});

/// Parallel mesh optimization: smart Laplacian smoothing on every part
/// with part-boundary vertices held fixed (their copies could not move
/// consistently without coordination); interior quality improves, the
/// distributed representation is untouched.
adapt::SmoothStats smoothParted(PartedMesh& pm,
                                const adapt::SmoothOptions& opts = {});

}  // namespace dist

#endif  // PUMI_DIST_PADAPT_HPP
