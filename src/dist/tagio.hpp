#ifndef PUMI_DIST_TAGIO_HPP
#define PUMI_DIST_TAGIO_HPP

/// \file tagio.hpp
/// \brief Forwarding header: tag (de)serialization lives in core/tagio.hpp
/// so serial mesh I/O can reuse it; dist code keeps its spelling.

#include "core/tagio.hpp"

namespace dist {
using core::packTags;
using core::skipTags;
using core::unpackTags;
}  // namespace dist

#endif  // PUMI_DIST_TAGIO_HPP
