#include "dist/elastic.hpp"

#include "pcu/error.hpp"
#include "pcu/trace.hpp"

namespace dist::elastic {

std::vector<PartId> addPartsOnIdleRanks(PartedMesh& pm) {
  Network& net = pm.network();
  const int cores = net.partMap().machine().totalCores();
  // Freeze every current assignment: the fresh parts below pin explicitly,
  // and mixing explicit pins with block-layout fallback entries would let
  // the fallback shift under existing parts on the next part-count change.
  std::vector<int> pins(static_cast<std::size_t>(pm.parts()));
  std::vector<char> hosted(static_cast<std::size_t>(cores), 0);
  for (PartId p = 0; p < pm.parts(); ++p) {
    const int r = net.partMap().rankOf(p);
    pins[static_cast<std::size_t>(p)] = r;
    if (r >= 0 && r < cores) hosted[static_cast<std::size_t>(r)] = 1;
  }
  std::vector<PartId> fresh;
  for (int rank = 0; rank < cores; ++rank) {
    if (hosted[static_cast<std::size_t>(rank)] != 0) continue;
    fresh.push_back(pm.addPart());
    pins.push_back(rank);
  }
  if (!fresh.empty()) {
    net.setPartRanks(std::move(pins));
    if (pcu::trace::enabled())
      pcu::trace::counter("elastic:parts_added",
                          static_cast<std::int64_t>(fresh.size()));
  }
  return fresh;
}

AdmitReport admitRanks(PartedMesh& pm, int k) {
  if (k < 1)
    throw pcu::Error(pcu::ErrorCode::kValidation, k,
                     "admitRanks: joiner count must be >= 1, got " +
                         std::to_string(k));
  AdmitReport report;
  Network& net = pm.network();
  report.ranks_before = net.partMap().machine().totalCores();
  // Pin every part to the rank it occupies today BEFORE the machine grows:
  // the block-layout fallback divides by totalCores(), so without the pins
  // existing parts would silently "move" to other ranks.
  std::vector<int> pins(static_cast<std::size_t>(pm.parts()));
  for (PartId p = 0; p < pm.parts(); ++p)
    pins[static_cast<std::size_t>(p)] = net.partMap().rankOf(p);
  net.setPartRanks(std::move(pins));
  net.growRanks(k);
  report.ranks_after = report.ranks_before + k;
  report.new_parts = addPartsOnIdleRanks(pm);
  return report;
}

MaybeAdmit admitPendingJoin(PartedMesh& pm) {
  MaybeAdmit out;
  const int k = pm.network().takePendingJoin();
  if (k <= 0) return out;
  out.admitted = true;
  out.report = admitRanks(pm, k);
  return out;
}

}  // namespace dist::elastic
