#ifndef PUMI_DIST_TYPES_HPP
#define PUMI_DIST_TYPES_HPP

/// \file types.hpp
/// \brief Basic vocabulary of the distributed mesh: part ids, global entity
/// keys, remote-copy records, ownership rules.

#include <cstdint>
#include <functional>
#include <vector>

#include "core/entity.hpp"

namespace dist {

/// Part identifier P_i, 0 <= i < part count (paper Sec. II-A).
using PartId = std::int32_t;

/// A globally unique name for a mesh entity during one distributed
/// operation: the handle of its copy on its owning part. Keys are only
/// stable between ownership changes, so distributed operations rebuild
/// their key maps on entry.
struct GKey {
  PartId part = -1;
  core::Ent ent;

  friend bool operator==(const GKey& a, const GKey& b) {
    return a.part == b.part && a.ent == b.ent;
  }
  friend bool operator<(const GKey& a, const GKey& b) {
    if (a.part != b.part) return a.part < b.part;
    return a.ent < b.ent;
  }
};

struct GKeyHash {
  std::size_t operator()(const GKey& k) const {
    const std::uint64_t mix =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.part)) << 40) ^
        k.ent.packed();
    std::uint64_t z = mix + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};

/// One remote copy of a part-boundary entity.
struct Copy {
  PartId part = -1;
  core::Ent ent;
  friend bool operator==(const Copy& a, const Copy& b) {
    return a.part == b.part && a.ent == b.ent;
  }
};

/// Parallel metadata of a part-boundary entity as stored by one part:
/// copies on all *other* parts plus the owning part id. Interior entities
/// have no record (implicitly: no copies, owner = resident part).
struct Remote {
  std::vector<Copy> copies;  ///< copies on other parts, sorted by part id
  PartId owner = -1;
};

/// How the owning part of a shared entity is chosen (paper II-A: "one part
/// is designated as owning part").
enum class OwnerRule {
  MinPartId,   ///< lowest part id in the residence set (FMDB default)
  LeastLoaded, ///< resident part currently holding the fewest elements
};

}  // namespace dist

#endif  // PUMI_DIST_TYPES_HPP
