#ifndef PUMI_DIST_KEYMAPS_IMPL_HPP
#define PUMI_DIST_KEYMAPS_IMPL_HPP

/// \file keymaps_impl.hpp
/// \brief Shared internal definition of PartedMesh::KeyMaps, the per-part
/// canonical-key -> local-handle resolution tables used by migration and
/// ghosting. Internal to the dist module.

#include <vector>

#include "common/flatmap.hpp"
#include "dist/partedmesh.hpp"

namespace dist {

struct PartedMesh::KeyMaps {
  /// Per part: canonical key -> local handle, for remote-owned shared
  /// entities plus entities created during the current operation.
  /// SIMD-probed open addressing: resolve() runs once per vertex key of
  /// every creation payload on the migration/ghosting hot path.
  std::vector<common::FlatMap<GKey, Ent, GKeyHash>> by_key;

  [[nodiscard]] Ent resolve(PartId self, const GKey& k) const {
    if (k.part == self) return k.ent;
    return by_key[static_cast<std::size_t>(self)].at(k);
  }
};

}  // namespace dist

#endif  // PUMI_DIST_KEYMAPS_IMPL_HPP
