#ifndef PUMI_DIST_PARTIO_HPP
#define PUMI_DIST_PARTIO_HPP

/// \file partio.hpp
/// \brief Shared (de)serialization of one part's parallel state.
///
/// Both durability layers serialize a part the same way: a serial mesh
/// stream (core::meshToBytes) plus a metadata stream holding the
/// part-boundary and ghost records with cross-part entity references as
/// (dim, ordinal) pairs — the entity's position in its part's
/// entities(dim) iteration order, which the mesh stream format preserves.
/// checkpoint.cpp writes these streams to files under a MANIFEST;
/// failover.cpp streams them to a buddy rank's journal and replays them to
/// rebuild a dead rank's parts in place. This header is the single home of
/// the format so the two layers can consume each other's bytes (evacuation
/// falls back to the newest checkpoint for parts the journal lacks).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dist/partedmesh.hpp"

namespace dist {

/// Private-state backdoor for (de)serialization: checkpointing and
/// evacuation must read and rebuild the ghost maps, the cached element
/// dimension, and (for evacuation) wipe a dead part in place — none of
/// which should grow public mutators for these internal uses.
struct CheckpointAccess {
  static const common::FlatMap<Ent, Copy, EntHash>& ghostSource(
      const Part& p) {
    return p.ghost_source_;
  }
  static const common::FlatMap<Ent, std::vector<Copy>, EntHash>& ghostedOn(
      const Part& p) {
    return p.ghosted_on_;
  }
  static void setGhost(Part& p, Ent ghost, Copy source) {
    p.ghost_source_[ghost] = source;
  }
  static void setGhostedOn(Part& p, Ent real, std::vector<Copy> copies) {
    p.ghosted_on_[real] = std::move(copies);
  }
  static void setDim(PartedMesh& pm, int dim) { pm.dim_ = dim; }
  /// Replace `p`'s mesh with `content` and drop every boundary/ghost
  /// record — the first step of rebuilding a dead rank's part in place.
  static void resetPart(Part& p, const core::Mesh& content) {
    p.mesh_.copyFrom(content);
    p.remotes_.clear();
    p.ghost_source_.clear();
    p.ghosted_on_.clear();
  }
};

namespace partio {

/// Magic word of the part metadata stream ("PUMCPKP1").
inline constexpr std::uint64_t kMetaMagic = 0x50554d43504b5031ull;

/// Cross-restart entity reference: (dim << 48) | ordinal, where ordinal is
/// the entity's position in its part's entities(dim) iteration order.
/// meshToBytes/meshFromBytes preserve that order, so references stay valid
/// after the handle rebuild on restore/evacuation.
constexpr std::uint64_t entref(int dim, std::uint64_t ordinal) {
  return (static_cast<std::uint64_t>(dim) << 48) | ordinal;
}

using OrdinalMap = std::unordered_map<Ent, std::uint64_t, EntHash>;

/// entity -> entref for every entity of `m`.
OrdinalMap buildOrdinals(const core::Mesh& m);

/// [dim][ordinal] -> entity: the inverse of buildOrdinals against a
/// (re)built mesh, for resolving metadata references.
using EntTable = std::vector<std::vector<Ent>>;
EntTable buildEntTable(const core::Mesh& m);

/// Serialize one part's boundary/ghost records. All three maps are written
/// sorted by entity reference so the byte stream (and therefore its CRC)
/// is deterministic. `ord` is this part's ordinal map; `all` holds every
/// part's (for cross-part references).
std::vector<std::byte> buildMeta(const Part& p, const OrdinalMap& ord,
                                 const std::vector<OrdinalMap>& all);

/// Parse a buildMeta stream and install the records into `part`, resolving
/// each (part, entref) through `entOf`. Throws pcu::Error(kValidation)
/// naming `ctx` on malformed input.
void applyMeta(Part& part, PartId p, std::vector<std::byte> meta,
               const std::function<Ent(PartId, std::uint64_t)>& entOf,
               const std::string& ctx);

/// applyMeta for a partial restore (pario, OnLoss::kPartial): parts with
/// `lost[part] == true` no longer exist, so their records are filtered out
/// symmetrically on every surviving part instead of installed:
///  - remote copies on lost parts are dropped; a record whose copies all
///    vanished is skipped (the entity became interior);
///  - a lost owner is deterministically reassigned to the minimum
///    surviving part of the entity's residence set, so every survivor
///    computes the same owner without communicating;
///  - NO ghost records are installed. Ghost sources (and ghost-copy
///    back-pointers) may name lost parts, and a dangling ghost cannot
///    satisfy verify()'s ghost invariants — instead every parsed ghost
///    entity handle is appended to `dropped_ghosts` for the caller to
///    destroy (descending dimension, exactly like unghost()).
/// `entOf` is never called for a lost part. Throws kValidation naming
/// `ctx` on malformed input.
void applyMetaPartial(Part& part, PartId p, std::vector<std::byte> meta,
                      const std::function<Ent(PartId, std::uint64_t)>& entOf,
                      const std::string& ctx, const std::vector<bool>& lost,
                      std::vector<Ent>& dropped_ghosts);

}  // namespace partio
}  // namespace dist

#endif  // PUMI_DIST_PARTIO_HPP
