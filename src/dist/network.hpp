#ifndef PUMI_DIST_NETWORK_HPP
#define PUMI_DIST_NETWORK_HPP

/// \file network.hpp
/// \brief Part-to-part message transport with architecture awareness.
///
/// All distributed-mesh operations (migration, ghosting, ParMA diffusion)
/// communicate exclusively through this transport in bulk-synchronous
/// phases: every part posts messages, then deliverAll() hands each message
/// to the receiving part's handler in a deterministic order. The machine
/// model maps parts to (node, core); traffic is accounted as on-node
/// (shared memory in the paper's hybrid design, Figs. 5-6) or off-node
/// (explicit message passing), which the two-level benches report.

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "pcu/buffer.hpp"
#include "pcu/comm.hpp"
#include "pcu/machine.hpp"
#include "pcu/trace.hpp"

#include "dist/types.hpp"

namespace dist {

/// Maps parts onto the machine: part p runs on core (p % coresTotal) by
/// default (block layout over nodes is applied by the caller choosing the
/// machine shape).
class PartMap {
 public:
  PartMap() = default;
  PartMap(int parts, pcu::Machine machine)
      : parts_(parts), machine_(machine) {}

  [[nodiscard]] int parts() const { return parts_; }
  [[nodiscard]] const pcu::Machine& machine() const { return machine_; }

  /// Core rank hosting part p. By default parts are laid out block-wise so
  /// consecutive parts share nodes (matching the hybrid partitioning in
  /// Fig. 5); an explicit mapping (setPartRanks) overrides this, e.g. to
  /// pin locally split subparts onto their parent part's node.
  [[nodiscard]] int rankOf(PartId p) const {
    if (static_cast<std::size_t>(p) < explicit_ranks_.size())
      return explicit_ranks_[static_cast<std::size_t>(p)];
    const int per_rank =
        (parts_ + machine_.totalCores() - 1) / machine_.totalCores();
    return static_cast<int>(p) / per_rank;
  }

  /// Pin parts to ranks explicitly (one entry per part; parts beyond the
  /// vector fall back to the block layout).
  void setPartRanks(std::vector<int> ranks) {
    explicit_ranks_ = std::move(ranks);
  }

  /// Grow the part count (dynamic parts; see PartedMesh::addPart). Existing
  /// part->rank assignments may shift, which only affects traffic
  /// accounting, not correctness.
  void setParts(int parts) { parts_ = parts; }
  [[nodiscard]] int nodeOf(PartId p) const {
    return machine_.nodeOf(rankOf(p));
  }
  [[nodiscard]] bool sameNode(PartId a, PartId b) const {
    return nodeOf(a) == nodeOf(b);
  }

 private:
  int parts_ = 1;
  pcu::Machine machine_ = pcu::Machine();
  std::vector<int> explicit_ranks_;
};

/// Bulk-synchronous message transport between parts.
class Network {
 public:
  explicit Network(PartMap map) : map_(map), boxes_(map.parts()) {}

  [[nodiscard]] const PartMap& partMap() const { return map_; }
  [[nodiscard]] int parts() const { return map_.parts(); }

  /// Post a message; it is delivered at the next deliverAll(). Thread-safe
  /// when called from concurrent part handlers (deliverAllThreaded).
  void send(PartId from, PartId to, pcu::OutBuffer buf) {
    if (pcu::trace::enabled())
      pcu::trace::sendAs(from, to, static_cast<std::int64_t>(buf.size()),
                         "net");
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.messages_sent += 1;
    stats_.bytes_sent += buf.size();
    if (map_.sameNode(from, to)) {
      stats_.on_node_messages += 1;
      stats_.on_node_bytes += buf.size();
    } else {
      stats_.off_node_messages += 1;
      stats_.off_node_bytes += buf.size();
    }
    boxes_[static_cast<std::size_t>(to)].push_back(
        Pending{from, std::move(buf).take()});
  }

  /// True when any message is pending.
  [[nodiscard]] bool pending() const {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& box : boxes_)
      if (!box.empty()) return true;
    return false;
  }

  /// Deliver every pending message: handler(to, from, body). Messages are
  /// handed over in (destination part, posting order); when delivery
  /// threads are enabled (setDeliveryThreads), destination parts are
  /// processed concurrently instead. Messages posted by the handler are
  /// queued for the next deliverAll.
  void deliverAll(
      const std::function<void(PartId to, PartId from, pcu::InBuffer body)>&
          handler) {
    if (delivery_threads_ > 1) {
      deliverAllThreaded(handler, delivery_threads_);
      return;
    }
    std::vector<std::deque<Pending>> taken(boxes_.size());
    {
      std::lock_guard<std::mutex> lock(mutex_);
      taken.swap(boxes_);
    }
    for (std::size_t to = 0; to < taken.size(); ++to)
      deliverTo(static_cast<PartId>(to), taken[to], handler);
  }

  /// Enable (n > 1) or disable (n <= 1) threaded delivery for every
  /// subsequent deliverAll. All of this library's distributed operations
  /// mutate only per-destination state in their handlers, so they run
  /// correctly in either mode; entity handle values may differ between
  /// modes (creation order within a part changes), the mesh semantics do
  /// not.
  void setDeliveryThreads(int n) { delivery_threads_ = n; }
  [[nodiscard]] int deliveryThreads() const { return delivery_threads_; }

  /// Threaded delivery (the paper's hybrid mode, Sec. II-D: "part
  /// manipulations take place in parallel threads"): destination parts are
  /// processed concurrently by `threads` workers; within one destination
  /// the posting order is preserved. Safe when the handler only mutates
  /// per-destination state and posts replies through send() — the
  /// contract every distributed operation in this library honours.
  void deliverAllThreaded(
      const std::function<void(PartId to, PartId from, pcu::InBuffer body)>&
          handler,
      int threads) {
    std::vector<std::deque<Pending>> taken(boxes_.size());
    {
      std::lock_guard<std::mutex> lock(mutex_);
      taken.swap(boxes_);
    }
    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
      for (;;) {
        const std::size_t to = next.fetch_add(1);
        if (to >= taken.size()) return;
        deliverTo(static_cast<PartId>(to), taken[to], handler);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }

  [[nodiscard]] const pcu::CommStats& stats() const { return stats_; }
  void resetStats() { stats_.reset(); }

  /// Add one part (empty mailbox) to the transport.
  void addPart() {
    boxes_.emplace_back();
    map_.setParts(static_cast<int>(boxes_.size()));
  }

  /// Pin parts to ranks explicitly (see PartMap::setPartRanks).
  void setPartRanks(std::vector<int> ranks) {
    map_.setPartRanks(std::move(ranks));
  }

 private:
  struct Pending {
    PartId from;
    std::vector<std::byte> bytes;
  };

  /// Hand one destination part its pending messages, attributing the
  /// delivery scope and each received message to that part ("rank" = part
  /// id in the trace). Used by both sequential and threaded delivery, so
  /// per-part trace events exist in either mode.
  void deliverTo(
      PartId to, std::deque<Pending>& box,
      const std::function<void(PartId, PartId, pcu::InBuffer)>& handler) {
    if (box.empty()) return;
    const bool traced = pcu::trace::enabled();
    if (traced) pcu::trace::beginAs(to, "net:deliver");
    for (auto& msg : box) {
      if (traced)
        pcu::trace::recvAs(to, msg.from,
                           static_cast<std::int64_t>(msg.bytes.size()),
                           "net");
      handler(to, msg.from, pcu::InBuffer(std::move(msg.bytes)));
    }
    if (traced) pcu::trace::endAs(to, "net:deliver");
  }
  PartMap map_;
  mutable std::mutex mutex_;
  std::vector<std::deque<Pending>> boxes_;
  pcu::CommStats stats_;
  int delivery_threads_ = 0;
};

}  // namespace dist

#endif  // PUMI_DIST_NETWORK_HPP
