#ifndef PUMI_DIST_NETWORK_HPP
#define PUMI_DIST_NETWORK_HPP

/// \file network.hpp
/// \brief Part-to-part message transport with architecture awareness.
///
/// All distributed-mesh operations (migration, ghosting, ParMA diffusion)
/// communicate exclusively through this transport in bulk-synchronous
/// phases: every part posts messages, then deliverAll() hands each message
/// to the receiving part's handler in a deterministic order. The machine
/// model maps parts to (node, core); traffic is accounted as on-node
/// (shared memory in the paper's hybrid design, Figs. 5-6) or off-node
/// (explicit message passing), which the two-level benches report.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "pcu/buffer.hpp"
#include "pcu/comm.hpp"
#include "pcu/error.hpp"
#include "pcu/faults.hpp"
#include "pcu/machine.hpp"
#include "pcu/trace.hpp"

#include "dist/types.hpp"

namespace dist {

/// Pseudo-tag identifying the part-to-part transport in fault-injection
/// decisions and error reports (decorrelates its deterministic fault
/// stream from same-numbered pcu::Comm channels).
inline constexpr int kNetChannelTag = 1 << 20;

/// Maps parts onto the machine: part p runs on core (p % coresTotal) by
/// default (block layout over nodes is applied by the caller choosing the
/// machine shape).
class PartMap {
 public:
  PartMap() = default;
  PartMap(int parts, pcu::Machine machine)
      : parts_(parts), machine_(machine) {}

  [[nodiscard]] int parts() const { return parts_; }
  [[nodiscard]] const pcu::Machine& machine() const { return machine_; }

  /// Core rank hosting part p. By default parts are laid out block-wise so
  /// consecutive parts share nodes (matching the hybrid partitioning in
  /// Fig. 5); an explicit mapping (setPartRanks) overrides this, e.g. to
  /// pin locally split subparts onto their parent part's node.
  [[nodiscard]] int rankOf(PartId p) const {
    if (static_cast<std::size_t>(p) < explicit_ranks_.size())
      return explicit_ranks_[static_cast<std::size_t>(p)];
    const int per_rank =
        (parts_ + machine_.totalCores() - 1) / machine_.totalCores();
    return static_cast<int>(p) / per_rank;
  }

  /// Pin parts to ranks explicitly (one entry per part; parts beyond the
  /// vector fall back to the block layout).
  void setPartRanks(std::vector<int> ranks) {
    explicit_ranks_ = std::move(ranks);
  }

  /// Grow the part count (dynamic parts; see PartedMesh::addPart). Existing
  /// part->rank assignments may shift, which only affects traffic
  /// accounting, not correctness.
  void setParts(int parts) { parts_ = parts; }
  [[nodiscard]] int nodeOf(PartId p) const {
    return machine_.nodeOf(rankOf(p));
  }
  [[nodiscard]] bool sameNode(PartId a, PartId b) const {
    return nodeOf(a) == nodeOf(b);
  }

 private:
  int parts_ = 1;
  pcu::Machine machine_ = pcu::Machine();
  std::vector<int> explicit_ranks_;
};

/// Bulk-synchronous message transport between parts.
///
/// While a fault plan or checksum-verify mode is active
/// (pcu::faults::framingEnabled()) every message is framed with a
/// per-(from,to)-channel sequence number and payload CRC. Delivery then
/// verifies each destination's batch before any handler runs: corruption,
/// duplication and loss are surfaced as structured pcu::Error values, and
/// per-channel FIFO order is restored under injected reordering. Because
/// the transport is bulk-synchronous, loss is detected deterministically at
/// the phase boundary (a sequence gap against the sender's counter) — no
/// timeout needed at this layer.
class Network {
 public:
  explicit Network(PartMap map)
      : map_(map), boxes_(map.parts()), recv_seq_(boxes_.size()) {}

  [[nodiscard]] const PartMap& partMap() const { return map_; }
  [[nodiscard]] int parts() const { return map_.parts(); }

  /// Post a message; it is delivered at the next deliverAll(). Thread-safe
  /// when called from concurrent part handlers (deliverAllThreaded).
  void send(PartId from, PartId to, pcu::OutBuffer buf) {
    if (pcu::trace::enabled())
      pcu::trace::sendAs(from, to, static_cast<std::int64_t>(buf.size()),
                         "net");
    std::lock_guard<std::mutex> lock(mutex_);
    // Stats account the payload the operation posted, framed or not.
    stats_.messages_sent += 1;
    stats_.bytes_sent += buf.size();
    if (map_.sameNode(from, to)) {
      stats_.on_node_messages += 1;
      stats_.on_node_bytes += buf.size();
    } else {
      stats_.off_node_messages += 1;
      stats_.off_node_bytes += buf.size();
    }
    auto& box = boxes_[static_cast<std::size_t>(to)];
    if (!pcu::faults::framingEnabled()) {
      box.push_back(Pending{from, std::move(buf).take(), 0});
      return;
    }
    const std::uint64_t seq = send_seq_[channelKey(from, to)]++;
    auto framed = pcu::faults::frame(seq, std::move(buf).take());
    switch (pcu::faults::decide(from, to, kNetChannelTag, seq)) {
      case pcu::faults::Action::kDeliver:
        break;
      case pcu::faults::Action::kCorrupt:
        pcu::faults::corruptFrame(framed, from, to, kNetChannelTag, seq);
        break;
      case pcu::faults::Action::kDrop:
        return;  // detected at delivery as a sequence gap
      case pcu::faults::Action::kDuplicate:
        box.push_back(Pending{from, std::vector<std::byte>(framed), seq});
        break;
      case pcu::faults::Action::kDelay:
        // Deliver behind the message currently at the back of the box (a
        // per-channel reorder when that message shares the channel).
        if (!box.empty()) {
          box.insert(box.end() - 1, Pending{from, std::move(framed), seq});
          return;
        }
        break;
    }
    box.push_back(Pending{from, std::move(framed), seq});
  }

  /// True when any message is pending.
  [[nodiscard]] bool pending() const {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& box : boxes_)
      if (!box.empty()) return true;
    return false;
  }

  /// Deliver every pending message: handler(to, from, body). Messages are
  /// handed over in (destination part, posting order); when delivery
  /// threads are enabled (setDeliveryThreads), destination parts are
  /// processed concurrently instead. Messages posted by the handler are
  /// queued for the next deliverAll.
  void deliverAll(
      const std::function<void(PartId to, PartId from, pcu::InBuffer body)>&
          handler) {
    if (delivery_threads_ > 1) {
      deliverAllThreaded(handler, delivery_threads_);
      return;
    }
    auto taken = takeVerified();
    for (std::size_t to = 0; to < taken.size(); ++to)
      deliverTo(static_cast<PartId>(to), taken[to], handler);
  }

  /// Enable (n > 1) or disable (n <= 1) threaded delivery for every
  /// subsequent deliverAll. All of this library's distributed operations
  /// mutate only per-destination state in their handlers, so they run
  /// correctly in either mode; entity handle values may differ between
  /// modes (creation order within a part changes), the mesh semantics do
  /// not.
  void setDeliveryThreads(int n) { delivery_threads_ = n; }
  [[nodiscard]] int deliveryThreads() const { return delivery_threads_; }

  /// Threaded delivery (the paper's hybrid mode, Sec. II-D: "part
  /// manipulations take place in parallel threads"): destination parts are
  /// processed concurrently by `threads` workers; within one destination
  /// the posting order is preserved. Safe when the handler only mutates
  /// per-destination state and posts replies through send() — the
  /// contract every distributed operation in this library honours.
  void deliverAllThreaded(
      const std::function<void(PartId to, PartId from, pcu::InBuffer body)>&
          handler,
      int threads) {
    auto taken = takeVerified();
    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
      for (;;) {
        const std::size_t to = next.fetch_add(1);
        if (to >= taken.size()) return;
        deliverTo(static_cast<PartId>(to), taken[to], handler);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }

  [[nodiscard]] const pcu::CommStats& stats() const { return stats_; }
  void resetStats() { stats_.reset(); }

  /// Add one part (empty mailbox) to the transport.
  void addPart() {
    boxes_.emplace_back();
    recv_seq_.emplace_back();
    map_.setParts(static_cast<int>(boxes_.size()));
  }

  /// Forget every pending message and all channel sequence state. Used by
  /// the transactional abort path (PartedMesh) so a rolled-back operation
  /// leaves the transport exactly as if it had never run.
  void resetTransport() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& box : boxes_) box.clear();
    send_seq_.clear();
    for (auto& chan : recv_seq_) chan.clear();
  }

  /// Pin parts to ranks explicitly (see PartMap::setPartRanks).
  void setPartRanks(std::vector<int> ranks) {
    map_.setPartRanks(std::move(ranks));
  }

 private:
  struct Pending {
    PartId from;
    std::vector<std::byte> bytes;
    std::uint64_t seq = 0;
  };

  [[nodiscard]] static std::uint64_t channelKey(PartId from, PartId to) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from))
            << 32) |
           static_cast<std::uint32_t>(to);
  }

  /// Swap out the pending boxes and, while framing is active, verify every
  /// destination's batch before any handler runs. Verification is
  /// single-threaded and happens up front in both delivery modes, so a bad
  /// batch aborts the phase deterministically with no handler side effects.
  std::vector<std::deque<Pending>> takeVerified() {
    std::vector<std::deque<Pending>> taken(boxes_.size());
    const bool framed = pcu::faults::framingEnabled();
    std::vector<std::unordered_map<PartId, std::uint64_t>> posted;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      taken.swap(boxes_);
      if (framed) {
        // Snapshot the per-channel send counters: bulk synchrony means
        // everything posted before this point must be in `taken`, so a
        // receiver-side sequence short of the snapshot is a lost message.
        posted.resize(taken.size());
        for (const auto& [key, count] : send_seq_) {
          const auto to = static_cast<std::size_t>(
              static_cast<std::uint32_t>(key & 0xffffffffu));
          if (to < posted.size())
            posted[to][static_cast<PartId>(key >> 32)] = count;
        }
      }
    }
    if (framed)
      for (std::size_t to = 0; to < taken.size(); ++to)
        verifyBatch(static_cast<PartId>(to), taken[to], posted[to]);
    return taken;
  }

  /// Verify one destination's batch: unframe (magic + CRC), restore
  /// per-channel FIFO order, reject duplicates, and check the batch is
  /// contiguous up to the sender-side counter snapshot. Leaves plain
  /// payloads in the box on success.
  void verifyBatch(PartId to, std::deque<Pending>& box,
                   const std::unordered_map<PartId, std::uint64_t>& posted) {
    for (auto& msg : box)
      msg.bytes = pcu::faults::unframe(std::move(msg.bytes), msg.seq,
                                       static_cast<int>(to),
                                       static_cast<int>(msg.from),
                                       kNetChannelTag);
    // Group the box slots by source channel, sources in deterministic order.
    std::unordered_map<PartId, std::vector<std::size_t>> slots;
    std::vector<PartId> sources;
    for (std::size_t i = 0; i < box.size(); ++i) {
      auto& idx = slots[box[i].from];
      if (idx.empty()) sources.push_back(box[i].from);
      idx.push_back(i);
    }
    std::sort(sources.begin(), sources.end());
    auto& expected_map = recv_seq_[static_cast<std::size_t>(to)];
    for (PartId from : sources) {
      auto& idx = slots[from];
      // Sort this channel's messages by verified sequence number back into
      // the slots the channel occupies: per-channel FIFO is restored while
      // the cross-channel interleave of the box is preserved.
      std::vector<Pending> chan;
      chan.reserve(idx.size());
      for (std::size_t i : idx) chan.push_back(std::move(box[i]));
      std::sort(chan.begin(), chan.end(),
                [](const Pending& a, const Pending& b) {
                  return a.seq < b.seq;
                });
      std::uint64_t expect = expected_map[from];
      for (const auto& m : chan) {
        if (m.seq < expect)
          throw pcu::Error(pcu::ErrorCode::kDuplicateMessage,
                           static_cast<int>(to), static_cast<int>(from),
                           kNetChannelTag,
                           "channel seq " + std::to_string(m.seq) +
                               " already delivered");
        if (m.seq > expect)
          throw pcu::Error(pcu::ErrorCode::kMessageLost, static_cast<int>(to),
                           static_cast<int>(from), kNetChannelTag,
                           "sequence gap: expected " + std::to_string(expect) +
                               ", got " + std::to_string(m.seq));
        ++expect;
      }
      expected_map[from] = expect;
      for (std::size_t k = 0; k < idx.size(); ++k)
        box[idx[k]] = std::move(chan[k]);
    }
    // A fully-dropped channel (or dropped batch tail) leaves no frame to
    // flag a gap; the sender-side counter snapshot catches it.
    std::vector<PartId> senders;
    senders.reserve(posted.size());
    for (const auto& [from, count] : posted) {
      (void)count;
      senders.push_back(from);
    }
    std::sort(senders.begin(), senders.end());
    for (PartId from : senders) {
      const std::uint64_t need = posted.at(from);
      const std::uint64_t got = expected_map[from];
      if (got < need)
        throw pcu::Error(pcu::ErrorCode::kMessageLost, static_cast<int>(to),
                         static_cast<int>(from), kNetChannelTag,
                         std::to_string(need - got) +
                             " message(s) posted but never delivered");
    }
  }

  /// Hand one destination part its pending messages, attributing the
  /// delivery scope and each received message to that part ("rank" = part
  /// id in the trace). Used by both sequential and threaded delivery, so
  /// per-part trace events exist in either mode.
  void deliverTo(
      PartId to, std::deque<Pending>& box,
      const std::function<void(PartId, PartId, pcu::InBuffer)>& handler) {
    if (box.empty()) return;
    const bool traced = pcu::trace::enabled();
    if (traced) pcu::trace::beginAs(to, "net:deliver");
    for (auto& msg : box) {
      if (traced)
        pcu::trace::recvAs(to, msg.from,
                           static_cast<std::int64_t>(msg.bytes.size()),
                           "net");
      handler(to, msg.from, pcu::InBuffer(std::move(msg.bytes)));
    }
    if (traced) pcu::trace::endAs(to, "net:deliver");
  }
  PartMap map_;
  mutable std::mutex mutex_;
  std::vector<std::deque<Pending>> boxes_;
  pcu::CommStats stats_;
  int delivery_threads_ = 0;
  // Framed-channel state (active only while faults::framingEnabled()).
  // send_seq_ is guarded by mutex_ (handlers send concurrently in threaded
  // delivery); recv_seq_ is touched only by the single-threaded
  // verification pass in takeVerified().
  std::unordered_map<std::uint64_t, std::uint64_t> send_seq_;
  std::vector<std::unordered_map<PartId, std::uint64_t>> recv_seq_;
};

}  // namespace dist

#endif  // PUMI_DIST_NETWORK_HPP
