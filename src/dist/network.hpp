#ifndef PUMI_DIST_NETWORK_HPP
#define PUMI_DIST_NETWORK_HPP

/// \file network.hpp
/// \brief Part-to-part message transport with architecture awareness.
///
/// All distributed-mesh operations (migration, ghosting, ParMA diffusion)
/// communicate exclusively through this transport in bulk-synchronous
/// phases: every part posts messages, then deliverAll() hands each message
/// to the receiving part's handler in a deterministic order. The machine
/// model maps parts to (node, core); traffic is accounted as on-node
/// (shared memory in the paper's hybrid design, Figs. 5-6) or off-node
/// (explicit message passing), which the two-level benches report.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <map>

#include "pcu/arq.hpp"
#include "pcu/buffer.hpp"
#include "pcu/comm.hpp"
#include "pcu/error.hpp"
#include "pcu/failure.hpp"
#include "pcu/faults.hpp"
#include "pcu/machine.hpp"
#include "pcu/trace.hpp"

#include "dist/types.hpp"

namespace dist {

/// Pseudo-tag identifying the part-to-part transport in fault-injection
/// decisions and error reports (decorrelates its deterministic fault
/// stream from same-numbered pcu::Comm channels).
inline constexpr int kNetChannelTag = 1 << 20;

/// Maps parts onto the machine: part p runs on core (p % coresTotal) by
/// default (block layout over nodes is applied by the caller choosing the
/// machine shape).
class PartMap {
 public:
  PartMap() = default;
  PartMap(int parts, pcu::Machine machine)
      : parts_(parts), machine_(machine) {}

  [[nodiscard]] int parts() const { return parts_; }
  [[nodiscard]] const pcu::Machine& machine() const { return machine_; }

  /// Core rank hosting part p. By default parts are laid out block-wise so
  /// consecutive parts share nodes (matching the hybrid partitioning in
  /// Fig. 5); an explicit mapping (setPartRanks) overrides this, e.g. to
  /// pin locally split subparts onto their parent part's node.
  [[nodiscard]] int rankOf(PartId p) const {
    if (static_cast<std::size_t>(p) < explicit_ranks_.size())
      return explicit_ranks_[static_cast<std::size_t>(p)];
    const int per_rank =
        (parts_ + machine_.totalCores() - 1) / machine_.totalCores();
    return static_cast<int>(p) / per_rank;
  }

  /// Pin parts to ranks explicitly (one entry per part; parts beyond the
  /// vector fall back to the block layout).
  void setPartRanks(std::vector<int> ranks) {
    explicit_ranks_ = std::move(ranks);
  }

  /// Grow the part count (dynamic parts; see PartedMesh::addPart). Existing
  /// part->rank assignments may shift, which only affects traffic
  /// accounting, not correctness.
  void setParts(int parts) { parts_ = parts; }
  /// Replace the machine model (elastic scale-out: newly joined ranks give
  /// the same parts more cores to live on). Explicit part->rank pins are
  /// kept; block-layout fallback assignments may shift, which only affects
  /// traffic accounting.
  void setMachine(pcu::Machine machine) { machine_ = machine; }
  [[nodiscard]] int nodeOf(PartId p) const {
    return machine_.nodeOf(rankOf(p));
  }
  [[nodiscard]] bool sameNode(PartId a, PartId b) const {
    return nodeOf(a) == nodeOf(b);
  }

 private:
  int parts_ = 1;
  pcu::Machine machine_ = pcu::Machine();
  std::vector<int> explicit_ranks_;
};

/// Bulk-synchronous message transport between parts.
///
/// Posting is cheap and delivery is batched: send() stages the payload in a
/// per-thread vector (no lock from handler threads), and the next phase
/// boundary merges all stages, coalescing every payload bound for the same
/// (from, to) pair into one *physical* message — a segment of
/// length-prefixed sub-messages, split back into individual handler calls
/// on delivery. Stats follow the same contract as pcu::CommStats:
/// logical/on-node/off-node counters always count the payloads the
/// operation posted; `physical_*` counts coalesced segments.
///
/// While a fault plan or checksum-verify mode is active
/// (pcu::faults::framingEnabled()) every physical message is framed with a
/// per-(from,to)-channel sequence number and payload CRC — one seq/CRC per
/// coalesced segment. Delivery then verifies each destination's batch
/// before any handler runs: corruption, duplication and loss are surfaced
/// as structured pcu::Error values, and per-channel FIFO order is restored
/// under injected reordering. Because the transport is bulk-synchronous,
/// loss is detected deterministically at the phase boundary (a sequence gap
/// against the sender's counter) — no timeout needed at this layer.
///
/// With reliable delivery on (pcu::arq::enabled()) the phase boundary
/// *recovers* instead of aborting: every framed segment keeps a clean copy
/// in a resend buffer until its receiver verifies it, and verification
/// re-fetches corrupt segments, silently drops duplicates, and pulls every
/// missing sequence number from the buffer — each retransmission attempt
/// re-running the fault plan's decision under an attempt salt, so only a
/// permanent fault exhausts the bounded budget and surfaces as
/// pcu::Error(kMessageLost). The transactional layer bumps a fault epoch
/// between operation replays (bumpFaultEpoch) so a retried operation does
/// not deterministically replay the exact faults that aborted it.
class Network {
 public:
  explicit Network(PartMap map)
      : map_(map), boxes_(map.parts()), recv_seq_(boxes_.size()) {}

  [[nodiscard]] const PartMap& partMap() const { return map_; }
  [[nodiscard]] int parts() const { return map_.parts(); }

  /// Post a message; it is delivered at the next deliverAll(). Thread-safe
  /// when called from concurrent part handlers (deliverAllThreaded): a
  /// worker thread's sends go to its private staging vector without
  /// touching the transport mutex; sends from any other thread stage under
  /// the mutex. Per-channel posting order is preserved either way (one
  /// destination part's handler runs entirely on one worker).
  void send(PartId from, PartId to, pcu::OutBuffer buf) {
    if (pcu::trace::enabled())
      pcu::trace::sendAs(from, to, static_cast<std::int64_t>(buf.size()),
                         "net");
    auto& slot = tlsSlot();
    if (slot.net == this) {
      slot.stage->push_back(StagedMsg{from, to, std::move(buf).take()});
      return;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    stageLocked(from, to, std::move(buf).take());
  }

  /// Enable (default) or disable per-(from,to) coalescing of staged
  /// payloads into one physical message. With coalescing off each payload
  /// travels as its own physical message (physical == logical), which is
  /// the A/B baseline the benches and equivalence tests compare against.
  void setCoalescing(bool on) { coalesce_ = on; }
  [[nodiscard]] bool coalescing() const { return coalesce_; }

  /// Pre-size the staging for `count` upcoming payloads on (from, to):
  /// opens the coalescing group up front and reserves its payload vector,
  /// so a phase that knows its send counts (migration creation, keymap
  /// exchange) avoids regrow churn inside the send loop. Purely an
  /// optimization hint — a reserved channel that ends up unused posts
  /// nothing. No-op with coalescing off (payloads travel individually).
  void reserveStage(PartId from, PartId to, std::size_t count) {
    if (!coalesce_ || count == 0) return;
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t key = channelKey(from, to);
    auto [it, fresh] = group_of_.try_emplace(key, staged_groups_.size());
    if (fresh) {
      staged_groups_.emplace_back();
      staged_groups_.back().from = from;
      staged_groups_.back().to = to;
    }
    auto& g = staged_groups_[it->second];
    g.bodies.reserve(g.bodies.size() + count);
  }

  /// True when any message is pending (staged or already flushed).
  [[nodiscard]] bool pending() const {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!staged_groups_.empty()) return true;
    for (const auto& box : boxes_)
      if (!box.empty()) return true;
    return false;
  }

  /// Deliver every pending message: handler(to, from, body). Messages are
  /// handed over in (destination part, posting order); when delivery
  /// threads are enabled (setDeliveryThreads), destination parts are
  /// processed concurrently instead. Messages posted by the handler are
  /// queued for the next deliverAll.
  void deliverAll(
      const std::function<void(PartId to, PartId from, pcu::InBuffer body)>&
          handler) {
    if (delivery_threads_ > 1) {
      deliverAllThreaded(handler, delivery_threads_);
      return;
    }
    auto taken = takeVerified();
    for (std::size_t to = 0; to < taken.size(); ++to)
      deliverTo(static_cast<PartId>(to), taken[to], handler);
  }

  /// Enable (n > 1) or disable (n <= 1) threaded delivery for every
  /// subsequent deliverAll. All of this library's distributed operations
  /// mutate only per-destination state in their handlers, so they run
  /// correctly in either mode; entity handle values may differ between
  /// modes (creation order within a part changes), the mesh semantics do
  /// not.
  void setDeliveryThreads(int n) { delivery_threads_ = n; }
  [[nodiscard]] int deliveryThreads() const { return delivery_threads_; }

  /// Threaded delivery (the paper's hybrid mode, Sec. II-D: "part
  /// manipulations take place in parallel threads"): destination parts are
  /// processed concurrently by `threads` workers; within one destination
  /// the posting order is preserved. Safe when the handler only mutates
  /// per-destination state and posts replies through send() — the
  /// contract every distributed operation in this library honours.
  void deliverAllThreaded(
      const std::function<void(PartId to, PartId from, pcu::InBuffer body)>&
          handler,
      int threads) {
    auto taken = takeVerified();
    // Each worker stages its handlers' replies privately; the stages are
    // merged (in worker order) after the join, so handler sends never
    // contend on the transport mutex.
    std::vector<std::vector<StagedMsg>> stages(
        static_cast<std::size_t>(threads));
    std::atomic<std::size_t> next{0};
    auto worker = [&](std::vector<StagedMsg>* stage) {
      TlsGuard guard(this, stage);
      for (;;) {
        const std::size_t to = next.fetch_add(1);
        if (to >= taken.size()) return;
        deliverTo(static_cast<PartId>(to), taken[to], handler);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t)
      pool.emplace_back(worker, &stages[static_cast<std::size_t>(t)]);
    for (auto& t : pool) t.join();
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& stage : stages)
      for (auto& m : stage) stageLocked(m.from, m.to, std::move(m.bytes));
  }

  [[nodiscard]] const pcu::CommStats& stats() const { return stats_; }
  void resetStats() { stats_.reset(); }

  /// Add one part (empty mailbox) to the transport.
  void addPart() {
    boxes_.emplace_back();
    recv_seq_.emplace_back();
    map_.setParts(static_cast<int>(boxes_.size()));
  }

  /// Forget every pending message (staged or flushed), all channel
  /// sequence state and the reliable-mode resend buffer. Used by the
  /// transactional abort path (PartedMesh) so a rolled-back operation
  /// leaves the transport exactly as if it had never run.
  void resetTransport() {
    std::lock_guard<std::mutex> lock(mutex_);
    staged_groups_.clear();
    group_of_.clear();
    last_key_ = kNoKey;
    for (auto& box : boxes_) box.clear();
    send_seq_.clear();
    for (auto& chan : recv_seq_) chan.clear();
    resend_.clear();
  }

  /// Advance the fault-decision epoch. resetTransport() clears the channel
  /// sequence counters, so a replayed operation would re-run the exact
  /// (src, dst, tag, seq) decision stream that just aborted it; the epoch
  /// salts every post-replay decision so retries see fresh (still
  /// deterministic) draws. Epoch 0 reproduces the historical stream
  /// bit-for-bit.
  void bumpFaultEpoch() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++fault_epoch_;
  }
  [[nodiscard]] std::uint64_t faultEpoch() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return fault_epoch_;
  }

  /// Pin parts to ranks explicitly (see PartMap::setPartRanks).
  void setPartRanks(std::vector<int> ranks) {
    map_.setPartRanks(std::move(ranks));
  }

  /// --- rank-failure tolerance ------------------------------------------
  /// Ranks (of the part map's machine) declared dead by a kill=/hang= fault.
  /// Deliberately NOT cleared by resetTransport(): a transactional rollback
  /// must not resurrect a dead rank — only re-pinning its parts onto
  /// survivors (failover::evacuate) lifts the poison gate.
  [[nodiscard]] std::vector<int> deadRanks() const {
    return {dead_ranks_.begin(), dead_ranks_.end()};
  }

  /// --- elastic scale-out ------------------------------------------------
  /// Newcomer ranks announced by a consumed join=K@P token and not yet
  /// admitted. A join is not a fault: the boundary that consumes it keeps
  /// delivering (the in-flight operation completes untouched) and the
  /// caller admits the pending ranks at the next quiescent point
  /// (dist::elastic / parma's join path).
  [[nodiscard]] int pendingJoin() const { return pending_join_; }
  /// Consume the pending joiner count (returns it, then zeroes it).
  int takePendingJoin() {
    const int k = pending_join_;
    pending_join_ = 0;
    return k;
  }
  /// Grow the machine by `k` newly joined ranks: the dist-layer analogue of
  /// pcu::Comm::grow's dense renumbering — existing ranks keep their
  /// numbers, newcomers take totalCores()..totalCores()+k-1 on a flat
  /// topology. Existing per-channel ARQ/coalescing state is untouched
  /// (channels are keyed by part, not rank); channels to parts later pinned
  /// on the newcomers start from sequence zero by construction.
  void growRanks(int k) {
    std::lock_guard<std::mutex> lock(mutex_);
    const int total = map_.machine().totalCores();
    map_.setMachine(pcu::Machine::flat(total + k));
    pcu::failure::noteGrow(k);
  }

 private:
  /// One physical (possibly coalesced) message queued for delivery. In the
  /// fast path (no fault framing) the logical payloads ride in `bodies`,
  /// moved end to end with zero copies; while framing is active they are
  /// serialized into `bytes` as one contiguous length-prefixed segment so a
  /// single seq/CRC covers the whole physical message.
  struct Pending {
    PartId from;
    std::vector<std::byte> bytes;
    std::vector<std::vector<std::byte>> bodies;
    std::uint64_t seq = 0;
  };

  /// One logical payload as posted by send() from a worker thread, before
  /// it is merged into the staged groups.
  struct StagedMsg {
    PartId from;
    PartId to;
    std::vector<std::byte> bytes;
  };

  /// One open coalescing group: every payload staged for (from, to) since
  /// the last flush, in posting order.
  struct Group {
    PartId from = 0;
    PartId to = 0;
    std::vector<std::vector<std::byte>> bodies;
    std::uint64_t logical_bytes = 0;
  };

  /// Thread-local binding of a worker thread to its staging vector; set by
  /// deliverAllThreaded for the duration of the worker loop.
  struct TlsSlot {
    const Network* net = nullptr;
    std::vector<StagedMsg>* stage = nullptr;
  };
  static TlsSlot& tlsSlot() {
    thread_local TlsSlot slot;
    return slot;
  }
  class TlsGuard {
   public:
    TlsGuard(const Network* net, std::vector<StagedMsg>* stage)
        : saved_(tlsSlot()) {
      tlsSlot() = TlsSlot{net, stage};
    }
    ~TlsGuard() { tlsSlot() = saved_; }
    TlsGuard(const TlsGuard&) = delete;
    TlsGuard& operator=(const TlsGuard&) = delete;

   private:
    TlsSlot saved_;
  };

  [[nodiscard]] static std::uint64_t channelKey(PartId from, PartId to) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from))
            << 32) |
           static_cast<std::uint32_t>(to);
  }

  /// Salt parameter for fault decisions: epoch 0 / attempt 0 degenerates
  /// to the unsalted historical stream (arq::saltSeq(seq, 0) == seq), so
  /// every seeded test written before reliability existed replays
  /// bit-identically. Retransmission attempts occupy [1, budget]; epochs
  /// shift by 2^20 to stay clear of them. Caller holds mutex_.
  [[nodiscard]] std::uint64_t epochSalt(std::uint64_t attempt) const {
    return fault_epoch_ * (std::uint64_t{1} << 20) + attempt;
  }

  /// Stage one logical payload, coalescing it into the open (from, to)
  /// group — created on first appearance, so groups keep first-appearance
  /// order and payloads within a group keep posting order. The payload is
  /// moved straight into its group (no intermediate queue); a one-entry
  /// channel cache skips the map lookup for the common case of consecutive
  /// sends to the same destination. Caller holds mutex_.
  void stageLocked(PartId from, PartId to, std::vector<std::byte> bytes) {
    std::size_t gi;
    if (coalesce_) {
      const std::uint64_t key = channelKey(from, to);
      if (key == last_key_) {
        gi = last_group_;
      } else {
        auto [it, fresh] = group_of_.try_emplace(key, staged_groups_.size());
        if (fresh) {
          staged_groups_.emplace_back();
          staged_groups_.back().from = from;
          staged_groups_.back().to = to;
        }
        gi = it->second;
        last_key_ = key;
        last_group_ = gi;
      }
    } else {
      gi = staged_groups_.size();
      staged_groups_.emplace_back();
      staged_groups_.back().from = from;
      staged_groups_.back().to = to;
    }
    auto& g = staged_groups_[gi];
    g.logical_bytes += bytes.size();
    g.bodies.push_back(std::move(bytes));
  }

  /// Post every staged group as one physical message (stats, framing, and
  /// fault injection apply per physical message). Caller holds mutex_.
  void flushStageLocked() {
    if (staged_groups_.empty()) return;
    for (auto& g : staged_groups_) {
      if (g.bodies.empty()) continue;  // reserved via reserveStage, unused
      postSegmentLocked(g.from, g.to, std::move(g.bodies), g.logical_bytes);
    }
    staged_groups_.clear();
    group_of_.clear();
    last_key_ = kNoKey;
  }

  /// Account and enqueue one physical (coalesced) message. Caller holds
  /// mutex_.
  void postSegmentLocked(PartId from, PartId to,
                         std::vector<std::vector<std::byte>> bodies,
                         std::uint64_t logical_bytes) {
    // Logical counters account what the operations posted; physical
    // counters account what crosses the transport (see class comment). The
    // physical byte size is the segment form either way: payload bytes plus
    // one u32 length prefix per logical sub-message.
    const auto logical_count = static_cast<std::uint64_t>(bodies.size());
    stats_.messages_sent += logical_count;
    stats_.bytes_sent += logical_bytes;
    stats_.physical_messages += 1;
    stats_.physical_bytes += logical_bytes + sizeof(std::uint32_t) * logical_count;
    if (map_.sameNode(from, to)) {
      stats_.on_node_messages += logical_count;
      stats_.on_node_bytes += logical_bytes;
    } else {
      stats_.off_node_messages += logical_count;
      stats_.off_node_bytes += logical_bytes;
    }
    auto& box = boxes_[static_cast<std::size_t>(to)];
    if (!pcu::faults::framingEnabled()) {
      // Fast path: logical payloads are moved, never re-serialized.
      box.push_back(Pending{from, {}, std::move(bodies), 0});
      return;
    }
    // Framed path: one contiguous segment so a single seq/CRC covers the
    // whole physical message.
    pcu::OutBuffer segment;
    segment.reserve(static_cast<std::size_t>(logical_bytes) +
                    sizeof(std::uint32_t) * bodies.size());
    for (const auto& b : bodies) {
      segment.pack<std::uint32_t>(static_cast<std::uint32_t>(b.size()));
      segment.packBytes(b.data(), b.size());
    }
    bodies.clear();
    const std::uint64_t seq = send_seq_[channelKey(from, to)]++;
    auto framed = pcu::faults::frame(seq, std::move(segment).take());
    if (pcu::arq::enabled())
      // Keep the clean framed segment until its receiver verifies it: the
      // phase-boundary recovery pulls retransmissions from here. One copy,
      // one CRC, whole coalesced segments — never re-split for resend.
      resend_[channelKey(from, to)][seq] = framed;
    switch (pcu::faults::decide(from, to, kNetChannelTag,
                                pcu::arq::saltSeq(seq, epochSalt(0)))) {
      case pcu::faults::Action::kDeliver:
        break;
      case pcu::faults::Action::kCorrupt:
        pcu::faults::corruptFrame(framed, from, to, kNetChannelTag, seq);
        break;
      case pcu::faults::Action::kDrop:
        return;  // detected at delivery as a sequence gap
      case pcu::faults::Action::kDuplicate:
        box.push_back(Pending{from, std::vector<std::byte>(framed), {}, seq});
        break;
      case pcu::faults::Action::kDelay:
        // Deliver behind the message currently at the back of the box (a
        // per-channel reorder when that message shares the channel).
        if (!box.empty()) {
          box.insert(box.end() - 1,
                     Pending{from, std::move(framed), {}, seq});
          return;
        }
        break;
    }
    box.push_back(Pending{from, std::move(framed), {}, seq});
  }

  /// Flush the stage, swap out the pending boxes and, while framing is
  /// active, verify every destination's batch before any handler runs.
  /// Verification is single-threaded and happens up front in both delivery
  /// modes, so a bad batch aborts the phase deterministically with no
  /// handler side effects.
  /// Every phase on a part map that still pins a part to a dead rank fails:
  /// the dead rank's parts are unreachable until evacuation re-owns them.
  void checkDeadRanks() const {
    if (dead_ranks_.empty()) return;
    for (PartId p = 0; p < parts(); ++p)
      if (dead_ranks_.count(map_.rankOf(p)) > 0)
        throw pcu::Error(pcu::ErrorCode::kRankFailed, static_cast<int>(p),
                         map_.rankOf(p), kNetChannelTag,
                         "part " + std::to_string(p) +
                             " is pinned to dead rank " +
                             std::to_string(map_.rankOf(p)) +
                             "; evacuate before communicating");
  }

  /// Phase-boundary rank-fault hook (the dist-layer analogue of
  /// pcu::Comm::rankFaultPoint): enforce the dead-rank gate, then consume a
  /// scheduled kill=/hang= fault whose phase index matches the number of
  /// boundaries passed under the current plan. A hang first sleeps out the
  /// heartbeat deadline — in this single-driver transport the silence of a
  /// hung rank is only observable as that detection latency — then both
  /// kinds declare the rank dead and abort the phase with kRankFailed.
  void maybeFireRankFault() {
    checkDeadRanks();
    if (!pcu::faults::hasPhaseEvent()) return;
    const pcu::faults::FaultPlan plan = pcu::faults::plan();
    // Phase indices are per installed plan: re-zero the counter whenever
    // the scheduled phase events (rank faults or join) change identity.
    std::uint64_t sig =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
             plan.kill.rank * 31 + plan.kill.phase))
         << 32) |
        static_cast<std::uint32_t>(plan.hang.rank * 31 + plan.hang.phase);
    sig ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(
               plan.join.count * 131 + plan.join.phase)) *
           0x9e3779b97f4a7c15ull;
    if (sig != rank_fault_sig_ || !rank_fault_seen_) {
      rank_fault_sig_ = sig;
      rank_fault_seen_ = true;
      phase_counter_ = 0;
    }
    const std::uint64_t phase = phase_counter_++;
    // Record the join knock before any fault can abort this phase: scale-out
    // must not be forgotten because the same boundary also killed a rank.
    if (plan.join.scheduled()) {
      const int joiners = pcu::faults::fireJoin(phase);
      if (joiners > 0) {
        pending_join_ += joiners;
        if (pcu::trace::enabled())
          pcu::trace::counter("net:pending_join",
                              static_cast<std::int64_t>(pending_join_));
      }
    }
    if (plan.kill.scheduled() && pcu::faults::fireKill(plan.kill.rank, phase))
      declareRankDead(plan.kill.rank, /*hang=*/false, phase);
    if (plan.hang.scheduled() && pcu::faults::fireHang(plan.hang.rank, phase))
      declareRankDead(plan.hang.rank, /*hang=*/true, phase);
  }

  [[noreturn]] void declareRankDead(int rank, bool hang, std::uint64_t phase) {
    std::int64_t latency_us = 0;
    if (hang) {
      const int dl = std::max(pcu::faults::deadlineMs(), 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(dl));
      latency_us = static_cast<std::int64_t>(dl) * 1000;
    }
    dead_ranks_.insert(rank);
    pcu::failure::noteSuspicion(latency_us);
    throw pcu::Error(pcu::ErrorCode::kRankFailed, -1, rank, kNetChannelTag,
                     "rank " + std::to_string(rank) +
                         (hang ? " went silent" : " died") +
                         " at phase boundary " + std::to_string(phase));
  }

  std::vector<std::deque<Pending>> takeVerified() {
    maybeFireRankFault();
    std::vector<std::deque<Pending>> taken(boxes_.size());
    const bool framed = pcu::faults::framingEnabled();
    std::vector<std::unordered_map<PartId, std::uint64_t>> posted;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      flushStageLocked();
      taken.swap(boxes_);
      if (framed) {
        // Snapshot the per-channel send counters: bulk synchrony means
        // everything posted before this point must be in `taken`, so a
        // receiver-side sequence short of the snapshot is a lost message.
        posted.resize(taken.size());
        for (const auto& [key, count] : send_seq_) {
          const auto to = static_cast<std::size_t>(
              static_cast<std::uint32_t>(key & 0xffffffffu));
          if (to < posted.size())
            posted[to][static_cast<PartId>(key >> 32)] = count;
        }
      }
    }
    if (framed)
      for (std::size_t to = 0; to < taken.size(); ++to)
        verifyBatch(static_cast<PartId>(to), taken[to], posted[to]);
    return taken;
  }

  /// Verify one destination's batch: unframe (magic + CRC), restore
  /// per-channel FIFO order, reject duplicates, and check the batch is
  /// contiguous up to the sender-side counter snapshot. Leaves plain
  /// payloads in the box on success. In reliable mode the batch is
  /// salvaged (recoverBatch) instead of aborted.
  void verifyBatch(PartId to, std::deque<Pending>& box,
                   const std::unordered_map<PartId, std::uint64_t>& posted) {
    if (pcu::arq::enabled()) {
      recoverBatch(to, box, posted);
      return;
    }
    for (auto& msg : box)
      msg.bytes = pcu::faults::unframe(std::move(msg.bytes), msg.seq,
                                       static_cast<int>(to),
                                       static_cast<int>(msg.from),
                                       kNetChannelTag);
    // Group the box slots by source channel, sources in deterministic order.
    std::unordered_map<PartId, std::vector<std::size_t>> slots;
    std::vector<PartId> sources;
    for (std::size_t i = 0; i < box.size(); ++i) {
      auto& idx = slots[box[i].from];
      if (idx.empty()) sources.push_back(box[i].from);
      idx.push_back(i);
    }
    std::sort(sources.begin(), sources.end());
    auto& expected_map = recv_seq_[static_cast<std::size_t>(to)];
    for (PartId from : sources) {
      auto& idx = slots[from];
      // Sort this channel's messages by verified sequence number back into
      // the slots the channel occupies: per-channel FIFO is restored while
      // the cross-channel interleave of the box is preserved.
      std::vector<Pending> chan;
      chan.reserve(idx.size());
      for (std::size_t i : idx) chan.push_back(std::move(box[i]));
      std::sort(chan.begin(), chan.end(),
                [](const Pending& a, const Pending& b) {
                  return a.seq < b.seq;
                });
      std::uint64_t expect = expected_map[from];
      for (const auto& m : chan) {
        if (m.seq < expect)
          throw pcu::Error(pcu::ErrorCode::kDuplicateMessage,
                           static_cast<int>(to), static_cast<int>(from),
                           kNetChannelTag,
                           "channel seq " + std::to_string(m.seq) +
                               " already delivered");
        if (m.seq > expect)
          throw pcu::Error(pcu::ErrorCode::kMessageLost, static_cast<int>(to),
                           static_cast<int>(from), kNetChannelTag,
                           "sequence gap: expected " + std::to_string(expect) +
                               ", got " + std::to_string(m.seq));
        ++expect;
      }
      expected_map[from] = expect;
      for (std::size_t k = 0; k < idx.size(); ++k)
        box[idx[k]] = std::move(chan[k]);
    }
    // A fully-dropped channel (or dropped batch tail) leaves no frame to
    // flag a gap; the sender-side counter snapshot catches it.
    std::vector<PartId> senders;
    senders.reserve(posted.size());
    for (const auto& [from, count] : posted) {
      (void)count;
      senders.push_back(from);
    }
    std::sort(senders.begin(), senders.end());
    for (PartId from : senders) {
      const std::uint64_t need = posted.at(from);
      const std::uint64_t got = expected_map[from];
      if (got < need)
        throw pcu::Error(pcu::ErrorCode::kMessageLost, static_cast<int>(to),
                         static_cast<int>(from), kNetChannelTag,
                         std::to_string(need - got) +
                             " message(s) posted but never delivered");
    }
  }

  /// Reliable-mode phase boundary: instead of aborting on the first bad
  /// frame, salvage the whole batch. Corrupt frames are discarded (their
  /// seq field cannot be trusted) and re-fetched as missing; duplicate
  /// sequence numbers are silently dropped; every sequence the sender
  /// counters say was posted but did not survive is pulled from the resend
  /// buffer under attempt-salted fault decisions. The rebuilt box is
  /// ordered (sender, seq) — per-channel FIFO exactly as posted; the
  /// cross-channel interleave is normalized, which the handlers tolerate
  /// by the same contract that makes threaded delivery legal.
  void recoverBatch(PartId to, std::deque<Pending>& box,
                    const std::unordered_map<PartId, std::uint64_t>& posted) {
    const pcu::arq::Config cfg = pcu::arq::config();
    auto& expected_map = recv_seq_[static_cast<std::size_t>(to)];
    std::unordered_map<PartId, std::map<std::uint64_t, Pending>> chans;
    for (auto& msg : box) {
      try {
        msg.bytes = pcu::faults::unframe(std::move(msg.bytes), msg.seq,
                                         static_cast<int>(to),
                                         static_cast<int>(msg.from),
                                         kNetChannelTag);
      } catch (const pcu::Error&) {
        pcu::arq::noteCorruptDropped();
        continue;  // recovered below as a missing sequence number
      }
      if (msg.seq < expected_map[msg.from]) {
        pcu::arq::noteDuplicateDropped();
        continue;
      }
      const PartId from = msg.from;
      const std::uint64_t seq = msg.seq;
      if (!chans[from].try_emplace(seq, std::move(msg)).second)
        pcu::arq::noteDuplicateDropped();
    }
    box.clear();
    std::vector<PartId> senders;
    senders.reserve(posted.size());
    for (const auto& [from, count] : posted) {
      (void)count;
      senders.push_back(from);
    }
    std::sort(senders.begin(), senders.end());
    for (PartId from : senders) {
      const std::uint64_t need = posted.at(from);
      auto& have = chans[from];
      for (std::uint64_t seq = expected_map[from]; seq < need; ++seq) {
        auto hit = have.find(seq);
        if (hit != have.end())
          box.push_back(std::move(hit->second));
        else
          box.push_back(recoverSegment(to, from, seq, cfg));
      }
      expected_map[from] = need;
      // Acknowledge the verified prefix: the resend buffer can forget it.
      std::lock_guard<std::mutex> lock(mutex_);
      auto cit = resend_.find(channelKey(from, to));
      if (cit != resend_.end()) {
        cit->second.erase(cit->second.begin(), cit->second.lower_bound(need));
        if (cit->second.empty()) resend_.erase(cit);
        pcu::arq::noteAcked();
      }
    }
  }

  /// Pull one lost/corrupt segment back from the resend buffer, modelling
  /// each retransmission crossing the same faulty transport (attempt-salted
  /// decisions). Throws pcu::Error(kMessageLost) when the budget runs out.
  Pending recoverSegment(PartId to, PartId from, std::uint64_t seq,
                         const pcu::arq::Config& cfg) {
    std::vector<std::byte> framed;
    std::uint64_t salt0 = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      salt0 = epochSalt(0);
      auto cit = resend_.find(channelKey(from, to));
      auto fit = cit != resend_.end() ? cit->second.find(seq)
                                      : std::map<std::uint64_t,
                                                 std::vector<std::byte>>::
                                            iterator{};
      if (cit == resend_.end() || fit == cit->second.end())
        throw pcu::Error(pcu::ErrorCode::kMessageLost, static_cast<int>(to),
                         static_cast<int>(from), kNetChannelTag,
                         "channel seq " + std::to_string(seq) +
                             " lost and absent from the resend buffer");
      framed = fit->second;
    }
    for (int attempt = 1; attempt <= cfg.retry_budget; ++attempt) {
      pcu::arq::noteRetransmit();
      const auto action = pcu::faults::decide(
          from, to, kNetChannelTag,
          pcu::arq::saltSeq(seq, salt0 + static_cast<std::uint64_t>(attempt)));
      if (action == pcu::faults::Action::kCorrupt ||
          action == pcu::faults::Action::kDrop)
        continue;  // this retransmission was lost too
      std::uint64_t got = 0;
      auto payload =
          pcu::faults::unframe(std::move(framed), got, static_cast<int>(to),
                               static_cast<int>(from), kNetChannelTag);
      pcu::arq::noteRecovered();
      return Pending{from, std::move(payload), {}, got};
    }
    throw pcu::Error(pcu::ErrorCode::kMessageLost, static_cast<int>(to),
                     static_cast<int>(from), kNetChannelTag,
                     "retransmission budget exhausted after " +
                         std::to_string(cfg.retry_budget) +
                         " attempts (channel seq " + std::to_string(seq) +
                         ")");
  }

  /// Hand one destination part its pending messages, splitting each
  /// physical segment back into its logical sub-messages and attributing
  /// the delivery scope and each logical message to that part ("rank" =
  /// part id in the trace, in logical units). Used by both sequential and
  /// threaded delivery, so per-part trace events exist in either mode.
  void deliverTo(
      PartId to, std::deque<Pending>& box,
      const std::function<void(PartId, PartId, pcu::InBuffer)>& handler) {
    if (box.empty()) return;
    const bool traced = pcu::trace::enabled();
    if (traced) pcu::trace::beginAs(to, "net:deliver");
    for (auto& msg : box) {
      if (!msg.bodies.empty()) {
        // Fast path: logical payloads arrive pre-split, moved with no copy.
        for (auto& b : msg.bodies) {
          if (traced)
            pcu::trace::recvAs(to, msg.from,
                               static_cast<std::int64_t>(b.size()), "net");
          handler(to, msg.from, pcu::InBuffer(std::move(b)));
        }
        continue;
      }
      // Framed path: split the verified contiguous segment.
      pcu::InBuffer segment(std::move(msg.bytes));
      while (!segment.done()) {
        const auto len = segment.unpack<std::uint32_t>();
        pcu::InBuffer body(segment.unpackRaw(len));
        if (traced)
          pcu::trace::recvAs(to, msg.from,
                             static_cast<std::int64_t>(body.size()), "net");
        handler(to, msg.from, std::move(body));
      }
    }
    if (traced) pcu::trace::endAs(to, "net:deliver");
  }
  PartMap map_;
  mutable std::mutex mutex_;
  std::vector<std::deque<Pending>> boxes_;
  /// Payloads staged since the last flush, already coalesced into
  /// per-(from, to) groups: driver-thread sends stage directly, worker-stage
  /// replies merge in after each threaded delivery. Guarded by mutex_, with
  /// a one-entry cache for the channel of the previous send.
  static constexpr std::uint64_t kNoKey = ~std::uint64_t{0};
  std::vector<Group> staged_groups_;
  std::unordered_map<std::uint64_t, std::size_t> group_of_;
  std::uint64_t last_key_ = kNoKey;
  std::size_t last_group_ = 0;
  pcu::CommStats stats_;
  bool coalesce_ = true;
  int delivery_threads_ = 0;
  // Framed-channel state (active only while faults::framingEnabled()).
  // send_seq_ is guarded by mutex_ (handlers send concurrently in threaded
  // delivery); recv_seq_ is touched only by the single-threaded
  // verification pass in takeVerified().
  std::unordered_map<std::uint64_t, std::uint64_t> send_seq_;
  std::vector<std::unordered_map<PartId, std::uint64_t>> recv_seq_;
  /// Reliable-mode resend buffer: clean framed segments kept per channel
  /// until their receiver verifies the phase (guarded by mutex_). Cleared
  /// by resetTransport().
  std::unordered_map<std::uint64_t,
                     std::map<std::uint64_t, std::vector<std::byte>>>
      resend_;
  /// Fault-decision epoch (see bumpFaultEpoch); guarded by mutex_.
  std::uint64_t fault_epoch_ = 0;
  /// Rank-fault state (driver thread only: touched at phase boundaries).
  std::set<int> dead_ranks_;
  /// Joiners announced by a consumed join=K@P token, awaiting admission
  /// (driver thread only).
  int pending_join_ = 0;
  std::uint64_t phase_counter_ = 0;
  std::uint64_t rank_fault_sig_ = 0;
  bool rank_fault_seen_ = false;
};

}  // namespace dist

#endif  // PUMI_DIST_NETWORK_HPP
