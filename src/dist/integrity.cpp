#include "dist/integrity.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <functional>
#include <string>
#include <utility>

#include "common/crc32.hpp"
#include "core/meshio.hpp"
#include "dist/checkpoint.hpp"
#include "dist/partio.hpp"
#include "pcu/error.hpp"
#include "pcu/trace.hpp"

namespace dist {
namespace integrity {

namespace {

void appendU64(std::vector<std::byte>& out, std::uint64_t v) {
  const std::size_t at = out.size();
  out.resize(at + 8);
  std::memcpy(out.data() + at, &v, 8);
}

std::uint64_t u64(PartId p) {
  return static_cast<std::uint64_t>(static_cast<std::uint32_t>(p));
}

/// Accumulates the enclosing scope's wall time into a report field — on
/// every exit path, including the kIntegrity throw. The self-timing is what
/// lets the integrity bench price the armor directly instead of through a
/// noisy A/B subtraction.
struct MsAccum {
  double& into;
  std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
  ~MsAccum() {
    into += std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
  }
};

/// One flippable field of a remote/ghost record: the meaningful bits only
/// (padding bytes are invisible to the canonical streams, so a flip there
/// would be genuinely silent — exactly what the armor must never produce).
struct FieldFlip {
  std::function<void(int)> flip;  ///< flip bit `b` (0-based) of the field
  int bits = 0;
};

void flipPartId(PartId* p, int b) {
  *p = static_cast<PartId>(static_cast<std::uint32_t>(*p) ^
                           (std::uint32_t{1} << b));
}

void pushCopyFields(std::vector<FieldFlip>& fields, Copy* c) {
  fields.push_back({[c](int b) { flipPartId(&c->part, b); }, 32});
  fields.push_back(
      {[c](int b) { c->ent = Ent::unpack(c->ent.packed() ^ (1ull << b)); },
       40});  // 32 index bits + 8 topo bits; padding excluded by design
}

template <class Map>
std::vector<Ent> sortedKeys(const Map& m) {
  std::vector<Ent> keys;
  keys.reserve(m.size());
  for (const auto& [e, v] : m) keys.push_back(e);
  std::sort(keys.begin(), keys.end(),
            [](Ent a, Ent b) { return a.packed() < b.packed(); });
  return keys;
}

/// The meaningful fields of a part's boundary/ghost tables in sorted-key
/// order. The returned lambdas point into the live maps: use before any
/// insertion (a rehash would invalidate them). The maps are passed in from
/// Armor's friend context (this helper has no access of its own).
std::vector<FieldFlip> remoteFields(
    common::FlatMap<Ent, Remote, EntHash>& remotes,
    common::FlatMap<Ent, Copy, EntHash>& ghost_source,
    common::FlatMap<Ent, std::vector<Copy>, EntHash>& ghosted_on) {
  std::vector<FieldFlip> fields;
  for (Ent e : sortedKeys(remotes)) {
    Remote* r = &remotes.find(e)->second;
    fields.push_back({[r](int b) { flipPartId(&r->owner, b); }, 32});
    for (Copy& c : r->copies) pushCopyFields(fields, &c);
  }
  for (Ent g : sortedKeys(ghost_source)) {
    pushCopyFields(fields, &ghost_source.find(g)->second);
  }
  for (Ent e : sortedKeys(ghosted_on)) {
    for (Copy& c : ghosted_on.find(e)->second) pushCopyFields(fields, &c);
  }
  return fields;
}

}  // namespace

/// --- canonical streams of the external (non-mesh) sections -----------------

std::vector<std::byte> Armor::remotesStream(const Part& p) const {
  std::vector<std::byte> out;
  for (Ent e : sortedKeys(p.remotes_)) {
    const Remote& r = p.remotes_.find(e)->second;
    appendU64(out, e.packed());
    appendU64(out, u64(r.owner));
    appendU64(out, r.copies.size());
    for (const Copy& c : r.copies) {
      appendU64(out, u64(c.part));
      appendU64(out, c.ent.packed());
    }
  }
  return out;
}

std::vector<std::byte> Armor::ghostSourceStream(const Part& p) const {
  std::vector<std::byte> out;
  for (Ent g : sortedKeys(p.ghost_source_)) {
    const Copy& c = p.ghost_source_.find(g)->second;
    appendU64(out, g.packed());
    appendU64(out, u64(c.part));
    appendU64(out, c.ent.packed());
  }
  return out;
}

std::vector<std::byte> Armor::ghostedOnStream(const Part& p) const {
  std::vector<std::byte> out;
  for (Ent e : sortedKeys(p.ghosted_on_)) {
    const auto& copies = p.ghosted_on_.find(e)->second;
    appendU64(out, e.packed());
    appendU64(out, copies.size());
    for (const Copy& c : copies) {
      appendU64(out, u64(c.part));
      appendU64(out, c.ent.packed());
    }
  }
  return out;
}

/// --- seal / audit -----------------------------------------------------------

void Armor::ensureParts() {
  if (ledgers_.size() < static_cast<std::size_t>(pm_.parts()))
    ledgers_.resize(static_cast<std::size_t>(pm_.parts()));
}

void Armor::sealPart(PartId p) {
  auto& led = ledgers_[static_cast<std::size_t>(p)];
  const Part& part = pm_.part(p);
  led.seal(part.mesh());
  led.sealExternal("remotes", remotesStream(part));
  led.sealExternal("ghost-src", ghostSourceStream(part));
  led.sealExternal("ghost-on", ghostedOnStream(part));
}

void Armor::auditPart(PartId p, std::vector<core::integrity::Mismatch>& out) {
  auto& led = ledgers_[static_cast<std::size_t>(p)];
  const Part& part = pm_.part(p);
  led.audit(part.mesh(), out);
  led.auditExternal("remotes", remotesStream(part), out);
  led.auditExternal("ghost-src", ghostSourceStream(part), out);
  led.auditExternal("ghost-on", ghostedOnStream(part), out);
}

void Armor::sealAndMaybeInject() {
  MsAccum timer{rep_.seal_ms};
  ensureParts();
  for (PartId p = 0; p < pm_.parts(); ++p) sealPart(p);
  ++rep_.seals;
  // Seal, then replicate, then corrupt: refreshing the journal here — after
  // the seal, before the flip — guarantees every boundary's sealed state
  // has a matching replica, so a tier-2 repair never meets a stale
  // snapshot. Dedup makes unchanged parts free.
  if (journal_ != nullptr) journal_->record(pm_);
  const std::uint64_t phase = boundary_++;
  const pcu::faults::MemFlip burst = pcu::faults::fireMemFlip(phase);
  if (burst.bits > 0) injectFlips(burst);
  if (pcu::trace::enabled()) pcu::trace::counter("integrity:seals", 1);
}

void Armor::auditAndRepair(const char* where) {
  MsAccum timer{rep_.audit_ms};
  ensureParts();
  ++rep_.audits;
  const int nparts = pm_.parts();

  // Detect first across ALL parts, then repair: a tier-2/3 rebuild patches
  // mirror records on *other* parts (whose external streams then legally
  // change), so interleaving detection with repair would report phantom
  // corruption on parts audited after a rebuild.
  std::vector<std::pair<PartId, std::vector<core::integrity::Mismatch>>> bad;
  for (PartId p = 0; p < nparts; ++p) {
    std::vector<core::integrity::Mismatch> ms;
    auditPart(p, ms);
    if (!ms.empty()) bad.emplace_back(p, std::move(ms));
  }
  if (bad.empty()) return;

  bool rebuilt = false;
  for (auto& [p, ms] : bad) {
    const std::size_t at = rep_.detected.size();
    for (const auto& m : ms)
      rep_.detected.push_back(
          {p, m.section, m.first_byte, m.last_byte, 0, where});
    rep_.mismatches += ms.size();
    if (pcu::trace::enabled())
      pcu::trace::counter("integrity:mismatches",
                          static_cast<std::int64_t>(ms.size()));

    // The escalation ladder. Tier 1 applies only when every mismatch is in
    // derived CSR state — rebuilt for free from the (clean) pools.
    int tier = 0;
    const bool all_csr =
        std::all_of(ms.begin(), ms.end(), [](const auto& m) {
          return m.section.rfind("csr:", 0) == 0;
        });
    if (all_csr) {
      core::integrity::MeshAccess::invalidateCsr(pm_.part(p).mesh());
      tier = 1;
    } else if (repairFromJournal(p)) {
      tier = 2;
      rebuilt = true;
    } else if (repairFromCheckpoint(p)) {
      tier = 3;
      rebuilt = true;
    }
    if (tier == 0) {
      rep_.parts_unrepaired.push_back(p);
      std::sort(rep_.parts_unrepaired.begin(), rep_.parts_unrepaired.end());
      if (pcu::trace::enabled()) pcu::trace::counter("integrity:fatal", 1);
      const auto& m0 = ms.front();
      throw pcu::Error(
          pcu::ErrorCode::kIntegrity, pm_.network().partMap().rankOf(p),
          std::string(where) + ": part " + std::to_string(p) + " section '" +
              m0.section + "' corrupt in bytes [" +
              std::to_string(m0.first_byte) + ", " +
              std::to_string(m0.last_byte) + "]" +
              (ms.size() > 1
                   ? " (+" + std::to_string(ms.size() - 1) + " more sections)"
                   : "") +
              "; repair exhausted (journal " +
              (journal_ != nullptr ? "stale or missing part" : "unset") +
              ", checkpoint " +
              (checkpoint_dir_.empty() ? "unset" : "unusable") + ")");
    }
    for (std::size_t k = at; k < rep_.detected.size(); ++k)
      rep_.detected[k].repair_tier = tier;
    rep_.parts_repaired.push_back(p);
    if (pcu::trace::enabled()) {
      pcu::trace::counter("integrity:repairs", 1);
      pcu::trace::counter(
          tier == 1 ? "integrity:repair_csr"
                    : (tier == 2 ? "integrity:repair_journal"
                                 : "integrity:repair_checkpoint"),
          1);
    }
  }

  // A rebuild re-indexed the part's entities and patched survivor mirrors:
  // gate on the structural invariants before trusting the repaired state.
  if (rebuilt) {
    try {
      pm_.verify();
    } catch (const std::exception& e) {
      throw pcu::Error(pcu::ErrorCode::kIntegrity, -1,
                       std::string(where) +
                           ": post-repair verify failed: " + e.what());
    }
  }
  // Re-key every ledger against the repaired bytes (raw layout differs
  // after a rebuild even though the content is fingerprint-identical), and
  // refresh the replica: a rebuild re-indexed handles in survivor mirror
  // records, so the journal's copies of those parts are now stale.
  for (PartId p = 0; p < nparts; ++p) sealPart(p);
  if (journal_ != nullptr) journal_->record(pm_);
}

/// --- repair tiers -----------------------------------------------------------

bool Armor::repairFromJournal(PartId p) {
  if (journal_ == nullptr) return false;
  const failover::BuddyJournal::Snapshot* snap = journal_->find(p);
  if (snap == nullptr) return false;
  // CRC gate: the replica is only trustworthy if its own bytes still match
  // the CRCs recorded when it was streamed (the journal lives in the same
  // fallible memory as the mesh).
  if (common::crc32(snap->mesh.data(), snap->mesh.size()) != snap->mesh_crc ||
      common::crc32(snap->meta.data(), snap->meta.size()) != snap->meta_crc)
    return false;
  try {
    rebuildPart(p, snap->mesh, snap->meta, "journal");
  } catch (const pcu::Error&) {
    return false;  // stale replica (kValidation): escalate to checkpoint
  }
  return true;
}

bool Armor::repairFromCheckpoint(PartId p) {
  if (checkpoint_dir_.empty()) return false;
  std::vector<std::byte> mesh_bytes;
  std::vector<std::byte> meta_bytes;
  try {
    std::tie(mesh_bytes, meta_bytes) =
        checkpointPartBytes(checkpoint_dir_, p);
  } catch (const std::exception&) {
    return false;  // missing/damaged checkpoint: ladder exhausted
  }
  try {
    rebuildPart(p, std::move(mesh_bytes), std::move(meta_bytes),
                "checkpoint");
  } catch (const pcu::Error&) {
    return false;
  }
  return true;
}

void Armor::rebuildPart(PartId p, std::vector<std::byte> mesh_bytes,
                        std::vector<std::byte> meta_bytes, const char* src) {
  const std::uint64_t replayed = mesh_bytes.size() + meta_bytes.size();
  auto content = core::meshFromBytes(std::move(mesh_bytes), pm_.model());
  CheckpointAccess::resetPart(pm_.part(p), *content);

  // Resolve the replica's (part, ordinal) references against the rebuilt
  // handles; survivor tables come from their current (clean) meshes, whose
  // ordinals the replica recorded at the same sealed boundary.
  const int nparts = pm_.parts();
  std::vector<partio::EntTable> ents;
  ents.reserve(static_cast<std::size_t>(nparts));
  for (PartId q = 0; q < nparts; ++q)
    ents.push_back(partio::buildEntTable(pm_.part(q).mesh()));
  const std::string ctx = std::string("integrity repair: part ") +
                          std::to_string(p) + " " + src + " replica";
  auto entOf = [&ents, &ctx](PartId part, std::uint64_t ref) -> Ent {
    const int d = static_cast<int>(ref >> 48);
    const std::uint64_t k = ref & ((std::uint64_t{1} << 48) - 1);
    const auto& table = ents[static_cast<std::size_t>(part)];
    if (d < 0 || d > 3 || k >= table[static_cast<std::size_t>(d)].size())
      throw pcu::Error(
          pcu::ErrorCode::kValidation, -1,
          ctx + " references entity (dim " + std::to_string(d) +
              ", ordinal " + std::to_string(k) + ") absent from part " +
              std::to_string(part) +
              " — the replica is stale relative to the sealed state");
    return table[static_cast<std::size_t>(d)][k];
  };
  partio::applyMeta(pm_.part(p), p, std::move(meta_bytes), entOf, ctx);

  // Patch the survivors' mirror records through copy symmetry: their
  // stored handles into part p died with the wiped mesh, but p's rebuilt
  // records name the same links from the other end (valid on both sides).
  const Part& dp = pm_.part(p);
  for (const auto& [e, r] : dp.remotes()) {
    for (const Copy& c : r.copies) {
      if (c.part == p) continue;
      Part& sq = pm_.part(c.part);
      const Remote* mirror = sq.remote(c.ent);
      if (mirror == nullptr) continue;  // verify() reports the asymmetry
      Remote patched = *mirror;
      for (Copy& mc : patched.copies)
        if (mc.part == p) mc.ent = e;
      sq.setRemote(c.ent, std::move(patched));
    }
  }
  for (const auto& [g, gsrc] : CheckpointAccess::ghostSource(dp)) {
    if (gsrc.part == p) continue;
    Part& sq = pm_.part(gsrc.part);
    const auto& ghosted = CheckpointAccess::ghostedOn(sq);
    auto it = ghosted.find(gsrc.ent);
    if (it == ghosted.end()) continue;
    std::vector<Copy> patched = it->second;
    for (Copy& mc : patched)
      if (mc.part == p) mc.ent = g;
    CheckpointAccess::setGhostedOn(sq, gsrc.ent, std::move(patched));
  }
  for (const auto& [e, cps] : CheckpointAccess::ghostedOn(dp)) {
    for (const Copy& c : cps) {
      if (c.part == p) continue;
      Part& sq = pm_.part(c.part);
      if (sq.isGhost(c.ent)) CheckpointAccess::setGhost(sq, c.ent, Copy{p, e});
    }
  }
  if (pcu::trace::enabled())
    pcu::trace::counter("integrity:bytes_replayed",
                        static_cast<std::int64_t>(replayed));
}

/// --- deterministic fault injection ------------------------------------------

void Armor::injectFlips(const pcu::faults::MemFlip& burst) {
  const std::uint64_t seed = pcu::faults::plan().seed;
  const int nparts = pm_.parts();
  if (nparts == 0) {
    rep_.flips_skipped += static_cast<std::uint64_t>(burst.bits);
    return;
  }
  for (int i = 0; i < burst.bits; ++i) {
    const PartId p = static_cast<PartId>(
        pcu::faults::memFlipKey(seed, 0, -1, pcu::faults::ioPathHash("part"),
                                i) %
        static_cast<std::uint64_t>(nparts));
    const int rank = pm_.network().partMap().rankOf(p);
    if (flipOne(burst.target, seed, rank, p, i))
      ++rep_.flips_injected;
    else
      ++rep_.flips_skipped;
  }
  if (pcu::trace::enabled())
    pcu::trace::counter("integrity:flips",
                        static_cast<std::int64_t>(burst.bits));
}

bool Armor::flipOne(pcu::faults::MemTarget target, std::uint64_t seed,
                    int rank, PartId p, int flip_index) {
  using MT = pcu::faults::MemTarget;
  Part& part = pm_.part(p);
  core::Mesh& mesh = part.mesh();
  auto key = [&](const std::string& what) {
    return pcu::faults::memFlipKey(seed, rank, p,
                                   pcu::faults::ioPathHash(what), flip_index);
  };
  auto meshSections = [&](const char* prefix, bool with_coords) {
    std::vector<std::string> names;
    for (const auto& s : core::integrity::MeshAccess::sections(mesh))
      if ((with_coords && s.name == "coords") ||
          s.name.rfind(prefix, 0) == 0)
        names.push_back(s.name);
    return names;
  };
  auto flipInSection = [&](const std::vector<std::string>& names,
                           const char* pick) {
    if (names.empty()) return false;
    const std::string& name = names[key(pick) % names.size()];
    auto span = core::integrity::MeshAccess::mutableSection(mesh, name);
    if (span.empty()) return false;
    const std::uint64_t bit = key(name) % (span.size() * 8);
    span[bit / 8] ^= std::byte{1} << static_cast<int>(bit % 8);
    return true;
  };
  auto eligibleTags = [&]() {
    auto tags = mesh.tags().list();
    std::sort(tags.begin(), tags.end(), [](const auto* a, const auto* b) {
      return a->name() < b->name();
    });
    std::vector<core::Mesh::Tag> out;
    for (auto* t : tags) {
      const auto items = t->items();
      if (items.empty()) continue;
      if (t->valueBytes(items.front()).empty()) continue;  // non-POD payload
      out.push_back(t);
    }
    return out;
  };
  auto flipTag = [&]() {
    const auto tags = eligibleTags();
    if (tags.empty()) return false;
    auto* tag = tags[key("tag") % tags.size()];
    auto items = tag->items();
    std::sort(items.begin(), items.end(),
              [](Ent a, Ent b) { return a.packed() < b.packed(); });
    const Ent item = items[key("tag:" + tag->name()) % items.size()];
    auto span = tag->valueBytes(item);
    if (span.empty()) return false;
    const std::uint64_t bit =
        key("tagbit:" + tag->name()) % (span.size() * 8);
    span[bit / 8] ^= std::byte{1} << static_cast<int>(bit % 8);
    return true;
  };
  auto flipRemotes = [&]() {
    const std::vector<FieldFlip> fields = remoteFields(part.remotes_, part.ghost_source_, part.ghosted_on_);
    if (fields.empty()) return false;
    std::uint64_t total = 0;
    for (const FieldFlip& f : fields) total += static_cast<std::uint64_t>(f.bits);
    std::uint64_t bit = key("remotes") % total;
    for (const FieldFlip& f : fields) {
      if (bit < static_cast<std::uint64_t>(f.bits)) {
        f.flip(static_cast<int>(bit));
        return true;
      }
      bit -= static_cast<std::uint64_t>(f.bits);
    }
    return false;
  };
  auto tryFamily = [&](MT f) {
    switch (f) {
      case MT::kPool:
        return flipInSection(meshSections("pool:", true), "pool");
      case MT::kCsr:
        return flipInSection(meshSections("csr:", false), "csr");
      case MT::kTag:
        return flipTag();
      case MT::kRemotes:
        return flipRemotes();
      case MT::kAny:
        break;
    }
    return false;
  };
  if (target != MT::kAny) return tryFamily(target);
  std::vector<MT> fams;
  if (!meshSections("pool:", true).empty()) fams.push_back(MT::kPool);
  if (!eligibleTags().empty()) fams.push_back(MT::kTag);
  if (!remoteFields(part.remotes_, part.ghost_source_, part.ghosted_on_).empty()) fams.push_back(MT::kRemotes);
  if (!meshSections("csr:", false).empty()) fams.push_back(MT::kCsr);
  if (fams.empty()) return false;
  return tryFamily(fams[key("family") % fams.size()]);
}

/// --- report -----------------------------------------------------------------

IntegrityReport Armor::report() const {
  IntegrityReport out = rep_;
  for (const auto& led : ledgers_) {
    out.bytes_hashed += led.bytesHashed();
    out.sections_rehashed += led.sectionsRehashed();
  }
  auto dedupe = [](std::vector<PartId>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  dedupe(out.parts_repaired);
  dedupe(out.parts_unrepaired);
  return out;
}

std::vector<std::string> Armor::partSections(PartId p) const {
  return ledgers_.at(static_cast<std::size_t>(p)).sectionNames();
}

}  // namespace integrity
}  // namespace dist
