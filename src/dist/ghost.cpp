/// \file ghost.cpp
/// \brief Ghosting (paper II-C): localize off-part entity copies so
/// computations near part boundaries avoid communication.
///
/// A ghost is a read-only, duplicated, off-part internal entity copy,
/// including tag data. Layers grow from the part boundary: layer 1 is every
/// remote element adjacent (through shared vertices) to the boundary;
/// layer k+1 adds elements adjacent to layer-k vertices. The sending part
/// computes all requested layers locally, then ships each neighbour one
/// self-contained closure payload; receivers deduplicate shared closure
/// entities by their canonical (owner part, owner handle) key.

#include <algorithm>
#include <array>
#include <cassert>
#include <stdexcept>

#include "common/flatmap.hpp"
#include "dist/keymaps_impl.hpp"
#include "dist/partedmesh.hpp"
#include "dist/tagio.hpp"
#include "gmi/model.hpp"
#include "pcu/trace.hpp"

namespace dist {

namespace {

void packKey(pcu::OutBuffer& b, const GKey& k) {
  b.pack<std::int32_t>(k.part);
  b.pack<std::uint64_t>(k.ent.packed());
}

GKey unpackKey(pcu::InBuffer& b) {
  GKey k;
  k.part = b.unpack<std::int32_t>();
  k.ent = core::Ent::unpack(b.unpack<std::uint64_t>());
  return k;
}

}  // namespace

void PartedMesh::ghostLayers(int layers) {
  if (layers < 1) throw std::invalid_argument("ghostLayers: layers >= 1");
  for (const auto& pp : parts_)
    if (pp->ghostCount() > 0)
      throw std::logic_error("ghostLayers: already ghosted; unghost first");
  if (dim_ < 2) throw std::logic_error("ghostLayers: mesh not distributed");
  runTransactional("ghostLayers", [&] { ghostLayersBody(layers); });
}

void PartedMesh::ghostLayersBody(int layers) {
  const int dim = dim_;
  pcu::trace::Scope trace_scope("dist:ghostLayers");
  KeyMaps keys;
  buildKeyMaps(keys);
  std::array<Ent, core::kMaxDown> buf{};

  // Post one closure payload per (part, neighbour) pair.
  for (const auto& pp : parts_) {
    Part& p = *pp;
    // Boundary vertices shared with each neighbour.
    common::FlatMap<PartId, std::vector<Ent>> seeds;
    for (const auto& [e, r] : p.remotes_) {
      if (e.topo() != core::Topo::Vertex) continue;
      for (const Copy& c : r.copies) seeds[c.part].push_back(e);
    }
    core::AdjVec adj;
    for (auto& [q, verts] : seeds) {
      // Grow `layers` element layers from the seed vertices.
      common::FlatSet<Ent, EntHash> elems;
      common::FlatSet<Ent, EntHash> known_verts(verts.begin(), verts.end());
      std::vector<Ent> frontier(verts.begin(), verts.end());
      for (int layer = 0; layer < layers && !frontier.empty(); ++layer) {
        std::vector<Ent> new_elems;
        for (Ent v : frontier) {
          const int na = p.mesh().adjacentInto(v, dim, adj);
          for (int k = 0; k < na; ++k) {
            const Ent elem = adj[static_cast<std::size_t>(k)];
            if (elems.insert(elem).second) new_elems.push_back(elem);
          }
        }
        frontier.clear();
        for (Ent elem : new_elems) {
          const int nv = p.mesh().downward(elem, 0, buf.data());
          for (int k = 0; k < nv; ++k)
            if (known_verts.insert(buf[static_cast<std::size_t>(k)]).second)
              frontier.push_back(buf[static_cast<std::size_t>(k)]);
        }
      }
      if (elems.empty()) continue;
      // Closure of the element set, dimension-ascending, skipping entities
      // the neighbour already holds as real copies.
      auto held_by_q = [&](Ent e) {
        const Remote* r = p.remote(e);
        if (r == nullptr) return false;
        return std::any_of(r->copies.begin(), r->copies.end(),
                           [&](const Copy& c) { return c.part == q; });
      };
      std::vector<std::vector<Ent>> closure(static_cast<std::size_t>(dim) + 1);
      common::FlatSet<Ent, EntHash> in_closure;
      for (Ent elem : elems) {
        for (int d = 0; d < dim; ++d) {
          const int n = p.mesh().downward(elem, d, buf.data());
          for (int k = 0; k < n; ++k) {
            const Ent e = buf[static_cast<std::size_t>(k)];
            if (held_by_q(e)) continue;
            if (in_closure.insert(e).second)
              closure[static_cast<std::size_t>(d)].push_back(e);
          }
        }
        closure[static_cast<std::size_t>(dim)].push_back(elem);
      }
      pcu::OutBuffer b;
      std::uint32_t total = 0;
      for (const auto& level : closure)
        total += static_cast<std::uint32_t>(level.size());
      b.pack(total);
      for (int d = 0; d <= dim; ++d) {
        for (Ent e : closure[static_cast<std::size_t>(d)]) {
          packKey(b, keyOf(p, e));
          b.pack<std::uint8_t>(static_cast<std::uint8_t>(e.topo()));
          gmi::Entity* cls = p.mesh().classification(e);
          b.pack<std::int32_t>(cls ? cls->dim() : -1);
          b.pack<std::int32_t>(cls ? cls->tag() : -1);
          if (e.topo() == core::Topo::Vertex) {
            b.pack(p.mesh().point(e));
          } else {
            const int nv = p.mesh().downward(e, 0, buf.data());
            b.pack<std::uint32_t>(static_cast<std::uint32_t>(nv));
            for (int k = 0; k < nv; ++k)
              packKey(b, keyOf(p, buf[static_cast<std::size_t>(k)]));
          }
          packTags(p.mesh(), e, b);
        }
      }
      net_.send(p.id(), q, std::move(b));
    }
  }

  // Receivers create ghosts (deduplicating by key) and notify owners.
  net_.deliverAll([&](PartId to, PartId, pcu::InBuffer body) {
    Part& p = *parts_[static_cast<std::size_t>(to)];
    auto& by_key = keys.by_key[static_cast<std::size_t>(to)];
    std::array<Ent, 8> lv{};
    const auto total = body.unpack<std::uint32_t>();
    for (std::uint32_t i = 0; i < total; ++i) {
      const GKey key = unpackKey(body);
      const auto topo = static_cast<core::Topo>(body.unpack<std::uint8_t>());
      const auto cls_dim = body.unpack<std::int32_t>();
      const auto cls_tag = body.unpack<std::int32_t>();
      gmi::Entity* cls =
          cls_dim >= 0 ? model_->find(cls_dim, cls_tag) : nullptr;
      // Consume the geometric payload regardless of deduplication.
      common::Vec3 x;
      std::uint32_t nv = 0;
      std::array<GKey, 8> vkeys{};
      if (topo == core::Topo::Vertex) {
        x = body.unpack<common::Vec3>();
      } else {
        nv = body.unpack<std::uint32_t>();
        for (std::uint32_t k = 0; k < nv; ++k) vkeys[k] = unpackKey(body);
      }
      const bool duplicate = key.part == to || by_key.count(key) > 0;
      if (duplicate) {
        skipTags(body);
        continue;
      }
      Ent local;
      if (topo == core::Topo::Vertex) {
        local = p.mesh().createVertex(x, cls);
      } else {
        for (std::uint32_t k = 0; k < nv; ++k)
          lv[k] = keys.resolve(to, vkeys[k]);
        local = p.mesh().buildElement(topo, {lv.data(), nv}, cls);
      }
      unpackTags(p.mesh(), local, body);
      by_key.emplace(key, local);
      p.ghost_source_.emplace(local, Copy{key.part, key.ent});
      pcu::OutBuffer reply;
      reply.pack<std::uint64_t>(key.ent.packed());
      reply.pack<std::uint64_t>(local.packed());
      net_.send(to, key.part, std::move(reply));
    }
  });

  // Owners record where their entities are ghosted (for tag sync).
  net_.deliverAll([&](PartId to, PartId from, pcu::InBuffer body) {
    Part& p = *parts_[static_cast<std::size_t>(to)];
    const Ent real = Ent::unpack(body.unpack<std::uint64_t>());
    const Ent ghost = Ent::unpack(body.unpack<std::uint64_t>());
    p.ghosted_on_[real].push_back(Copy{from, ghost});
  });
}

void PartedMesh::unghost() {
  pcu::trace::Scope trace_scope("dist:unghost");
  for (const auto& pp : parts_) {
    Part& p = *pp;
    std::vector<Ent> ghosts;
    ghosts.reserve(p.ghost_source_.size());
    for (const auto& [e, src] : p.ghost_source_) {
      (void)src;
      ghosts.push_back(e);
    }
    std::sort(ghosts.begin(), ghosts.end(), [](Ent a, Ent b) {
      if (core::topoDim(a.topo()) != core::topoDim(b.topo()))
        return core::topoDim(a.topo()) > core::topoDim(b.topo());
      return b < a;
    });
    for (Ent e : ghosts) p.mesh().destroy(e);
    p.ghost_source_.clear();
    p.ghosted_on_.clear();
  }
}

void PartedMesh::syncSharedTags(const std::string& only) {
  runTransactional("syncSharedTags", [&] { syncSharedTagsBody(only); });
}

void PartedMesh::syncSharedTagsBody(const std::string& only) {
  pcu::trace::Scope trace_scope("dist:syncSharedTags");
  for (const auto& pp : parts_) {
    Part& p = *pp;
    for (const auto& [e, r] : p.remotes_) {
      if (r.owner != p.id()) continue;
      for (const Copy& c : r.copies) {
        pcu::OutBuffer b;
        b.pack<std::uint64_t>(c.ent.packed());
        packTags(p.mesh(), e, b, only);
        net_.send(p.id(), c.part, std::move(b));
      }
    }
  }
  net_.deliverAll([&](PartId to, PartId, pcu::InBuffer body) {
    Part& p = *parts_[static_cast<std::size_t>(to)];
    const Ent local = Ent::unpack(body.unpack<std::uint64_t>());
    unpackTags(p.mesh(), local, body);
  });
}

void PartedMesh::syncGhostTags() {
  runTransactional("syncGhostTags", [&] { syncGhostTagsBody(); });
}

void PartedMesh::syncGhostTagsBody() {
  pcu::trace::Scope trace_scope("dist:syncGhostTags");
  for (const auto& pp : parts_) {
    Part& p = *pp;
    for (const auto& [real, ghosts] : p.ghosted_on_) {
      for (const Copy& g : ghosts) {
        pcu::OutBuffer b;
        b.pack<std::uint64_t>(g.ent.packed());
        packTags(p.mesh(), real, b);
        net_.send(p.id(), g.part, std::move(b));
      }
    }
  }
  net_.deliverAll([&](PartId to, PartId, pcu::InBuffer body) {
    Part& p = *parts_[static_cast<std::size_t>(to)];
    const Ent ghost = Ent::unpack(body.unpack<std::uint64_t>());
    unpackTags(p.mesh(), ghost, body);
  });
}

}  // namespace dist
