#ifndef PUMI_DIST_PARTEDMESH_HPP
#define PUMI_DIST_PARTEDMESH_HPP

/// \file partedmesh.hpp
/// \brief The distributed mesh: parts, part boundaries, ownership,
/// migration and ghosting (paper Secs. II-A..II-C).
///
/// A PartedMesh holds N parts. Each part is a serial mesh (core::Mesh) plus
/// the parallel metadata of its part-boundary entities: the remote copies
/// on other parts and the owning part. Residence follows the paper's rule:
/// an entity resides on exactly the parts of its adjacent elements. All
/// distributed operations (migration, ghosting) are implemented as
/// bulk-synchronous message exchanges over dist::Network, whose machine
/// model classifies traffic on-node vs off-node (two-level design,
/// Figs. 5-6). "Multiple parts per process" is first-class: every part
/// lives in this process; addPart() grows the part set dynamically.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/flatmap.hpp"
#include "core/mesh.hpp"
#include "dist/network.hpp"
#include "dist/types.hpp"

namespace gmi {
class Model;
}

namespace dist {

using core::Ent;
using core::EntHash;

namespace integrity {
class Armor;
}

/// Element-migration plan: for each part (by index), the elements leaving
/// it and their destination parts. Elements not listed stay. Open-addressing
/// tables (common::FlatMap): plan application probes these once per adjacent
/// element on the migration hot path.
using MigrationPlan = std::vector<common::FlatMap<Ent, PartId, EntHash>>;

class PartedMesh;

/// One part: a serial mesh plus part-boundary metadata.
class Part {
 public:
  Part(PartId id, gmi::Model* model) : id_(id), mesh_(model) {}
  Part(const Part&) = delete;
  Part& operator=(const Part&) = delete;

  [[nodiscard]] PartId id() const { return id_; }
  [[nodiscard]] core::Mesh& mesh() { return mesh_; }
  [[nodiscard]] const core::Mesh& mesh() const { return mesh_; }

  /// --- part boundary metadata (paper II-B) ----------------------------

  /// True when the entity is duplicated on other parts.
  [[nodiscard]] bool isShared(Ent e) const { return remotes_.count(e) > 0; }
  /// The owning part imbues the right to modify the entity (paper II-A).
  [[nodiscard]] PartId ownerOf(Ent e) const {
    auto it = remotes_.find(e);
    return it == remotes_.end() ? id_ : it->second.owner;
  }
  [[nodiscard]] bool isOwned(Ent e) const { return ownerOf(e) == id_; }
  /// Remote copies (excluding this part); nullptr for interior entities.
  [[nodiscard]] const Remote* remote(Ent e) const {
    auto it = remotes_.find(e);
    return it == remotes_.end() ? nullptr : &it->second;
  }
  /// All part-boundary entities with their remote records (iteration order
  /// is unspecified; callers needing determinism must sort).
  [[nodiscard]] const common::FlatMap<Ent, Remote, EntHash>& remotes() const {
    return remotes_;
  }

  /// --- low-level boundary-record mutators -----------------------------
  /// For distributed algorithms (parallel adaptation) that create new
  /// part-boundary entities and must register their links. Misuse breaks
  /// the invariants verify() checks; normal users never call these.
  void setRemote(Ent e, Remote r) { remotes_[e] = std::move(r); }
  void eraseRemote(Ent e) { remotes_.erase(e); }
  /// Drop records whose entity has been destroyed (after local mesh
  /// modification).
  void sweepDeadRemotes() {
    for (auto it = remotes_.begin(); it != remotes_.end();) {
      if (!mesh_.alive(it->first))
        it = remotes_.erase(it);
      else
        ++it;
    }
  }
  /// Residence part set: this part plus every part with a copy, sorted.
  [[nodiscard]] std::vector<PartId> residence(Ent e) const;

  /// --- ghosts (paper II-C) --------------------------------------------

  /// True for read-only off-part copies localized by ghosting.
  [[nodiscard]] bool isGhost(Ent e) const { return ghost_source_.count(e) > 0; }
  /// The real copy this ghost mirrors.
  [[nodiscard]] Copy ghostSource(Ent e) const { return ghost_source_.at(e); }
  /// Ghost copies of a local real entity on other parts (tracked by the
  /// owner for tag synchronization).
  [[nodiscard]] const std::vector<Copy>* ghostCopies(Ent e) const {
    auto it = ghosted_on_.find(e);
    return it == ghosted_on_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] std::size_t ghostCount() const { return ghost_source_.size(); }

  /// --- counts & iteration ----------------------------------------------

  /// Non-ghost entities of dimension d on this part.
  [[nodiscard]] std::size_t countLocal(int d) const;
  /// Entities of dimension d owned by this part (excludes ghosts and
  /// remote-owned boundary copies).
  [[nodiscard]] std::size_t countOwned(int d) const;
  /// Non-ghost elements (entities of the mesh's element dimension).
  [[nodiscard]] std::vector<Ent> elements() const;
  [[nodiscard]] std::size_t elementCount() const;
  /// Non-ghost entities of dimension d.
  [[nodiscard]] std::vector<Ent> locals(int d) const;

  /// Parts sharing at least one d-dimensional boundary entity with this
  /// part (paper II-D: "neighboring part recognition"), sorted.
  [[nodiscard]] std::vector<PartId> neighborParts(int d) const;

 private:
  friend class PartedMesh;
  friend struct CheckpointAccess;  ///< checkpoint.cpp (de)serializes the maps
  friend class integrity::Armor;   ///< ledger streams + memory-fault spans
  PartId id_;
  core::Mesh mesh_;
  // Open-addressing tables (SIMD-probed; see common/flatmap.hpp): the
  // remote/ghost lookups these serve are the per-entity inner loops of
  // migration, ghosting and tag sync.
  common::FlatMap<Ent, Remote, EntHash> remotes_;
  common::FlatMap<Ent, Copy, EntHash> ghost_source_;
  common::FlatMap<Ent, std::vector<Copy>, EntHash> ghosted_on_;
};

/// The distributed mesh.
class PartedMesh {
 public:
  /// Create an empty parted mesh (parts filled by migration from a peer or
  /// by distribute()).
  PartedMesh(gmi::Model* model, int nparts, PartMap map,
             OwnerRule rule = OwnerRule::MinPartId);
  ~PartedMesh();  ///< out of line: armor_ holds an incomplete type here

  /// Split a serial mesh into parts: element i (in iteration order of
  /// serial.entities(dim)) goes to part elem_dest[i]. The serial mesh is
  /// left untouched; classification pointers are shared with it.
  static std::unique_ptr<PartedMesh> distribute(
      const core::Mesh& serial, gmi::Model* model,
      const std::vector<PartId>& elem_dest, PartMap map,
      OwnerRule rule = OwnerRule::MinPartId);

  [[nodiscard]] int parts() const { return static_cast<int>(parts_.size()); }
  [[nodiscard]] Part& part(PartId p) { return *parts_.at(static_cast<std::size_t>(p)); }
  [[nodiscard]] const Part& part(PartId p) const {
    return *parts_.at(static_cast<std::size_t>(p));
  }
  [[nodiscard]] gmi::Model* model() const { return model_; }
  [[nodiscard]] Network& network() { return net_; }
  [[nodiscard]] const Network& network() const { return net_; }
  [[nodiscard]] OwnerRule ownerRule() const { return rule_; }

  /// Element dimension (3 for tet/hex meshes, 2 for tri/quad meshes).
  [[nodiscard]] int dim() const { return dim_; }

  /// Add an empty part (dynamic part count: local splitting, heavy part
  /// splitting). Returns the new part's id.
  PartId addPart();

  /// Total owned entities of dimension d across parts (each entity counted
  /// once, on its owner).
  [[nodiscard]] std::size_t globalCount(int d) const;

  /// --- distributed operations -------------------------------------------

  /// Migrate elements per the plan, maintaining part boundaries, remote
  /// copies, ownership and transportable tags. Requires no ghosts.
  void migrate(const MigrationPlan& plan);

  /// Localize `layers` layers of off-part elements adjacent (through
  /// vertices) to each part boundary as read-only ghost copies, including
  /// their closure and transportable tags.
  void ghostLayers(int layers = 1);

  /// Remove all ghost entities.
  void unghost();

  /// Re-send transportable tag values of ghosted entities from their real
  /// copy to every ghost copy (ghosts are read-only: updates flow one way).
  void syncGhostTags();

  /// Push transportable tag values of every owned shared entity from the
  /// owner to all remote copies (the owner imbues the right to modify; this
  /// re-establishes agreement after owner-side updates, e.g. field
  /// assembly on part boundaries). When `only` is non-empty, restrict to
  /// the tag of that name.
  void syncSharedTags(const std::string& only = "");

  /// Validate all distributed invariants (copy symmetry, ownership
  /// agreement, residence rule, coordinate/classification agreement,
  /// ghost link symmetry, ghost-map consistency). Throws std::logic_error
  /// naming the failed invariant with part/entity context.
  void verify() const;

  /// --- transactional execution ------------------------------------------
  /// When transactional mode is on (or a fault plan is active,
  /// pcu::faults::enabled()), every distributed operation above runs as a
  /// transaction: the full per-part state is snapshotted up front, verify()
  /// gates the commit, and any failure — injected fault, validation error,
  /// broken invariant — rolls the mesh back bit-identically to its pre-op
  /// state (fingerprint()-equal), resets the transport, and rethrows a
  /// structured pcu::Error. Caveat: rollback re-creates tag storage, so
  /// cached Tag pointers must be re-find()-ed by name afterwards.
  void setTransactional(bool on) { transactional_ = on; }
  [[nodiscard]] bool transactional() const { return transactional_; }

  /// How many times an aborted transactional operation is automatically
  /// replayed (rollback, fault-epoch bump, re-run) before its error
  /// propagates. -1 (default) = automatic: use the PUMI_RELIABLE
  /// `opretries` budget when reliable mode is on, else 0 (historical
  /// abort-on-first-failure). kValidation errors are never retried.
  void setOpRetries(int n) { op_retries_ = n; }
  [[nodiscard]] int opRetries() const { return op_retries_; }
  /// Total operation replays performed by the retry loop so far.
  [[nodiscard]] std::uint64_t opsRetried() const { return ops_retried_; }

  /// Deterministic digest of the full distributed state (entities, coords,
  /// classification, remote/ghost records, tag payloads). Equal before and
  /// after an aborted transaction; valid for comparisons within one
  /// process run.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// --- silent-corruption armor (dist/integrity.hpp) ---------------------
  /// When integrity is active, every transactional commit point audits the
  /// per-part checksum ledgers, repairs what it can (CSR rebuild, buddy-
  /// journal refetch, checkpoint restore) and reseals, so a flipped bit in
  /// live state is caught at the next boundary instead of propagating into
  /// checkpoints and journals. Activation: setIntegrity(true)/false to
  /// force, else on when a memflip fault plan is armed
  /// (pcu::faults::memEnabled()) or PUMI_INTEGRITY=1 is set.
  void setIntegrity(bool on) { integrity_override_ = on ? 1 : 0; }
  [[nodiscard]] bool integrityEnabled() const;
  /// The armor, created on first use (regardless of integrityEnabled();
  /// explicit callers configure and drive it directly).
  [[nodiscard]] integrity::Armor& armor();
  /// The armor when integrity is active, else nullptr. Lazily created.
  /// This is the hook runTransactional and the balancing/service layers
  /// poll at their boundaries.
  [[nodiscard]] integrity::Armor* armorIfActive();

 private:
  friend struct CheckpointAccess;  ///< checkpoint.cpp restores dim_
  struct KeyMaps;
  void buildKeyMaps(KeyMaps& maps) const;
  [[nodiscard]] GKey keyOf(const Part& p, Ent e) const;
  /// Run `body` under the transactional protocol described at
  /// setTransactional(); plain pass-through when inactive.
  void runTransactional(const char* opname, const std::function<void()>& body);
  /// Migration phases A0..D (migrate() validates, then runs this
  /// transactionally).
  void migrateBody(const MigrationPlan& plan);
  void ghostLayersBody(int layers);
  void syncSharedTagsBody(const std::string& only);
  void syncGhostTagsBody();

  gmi::Model* model_;
  PartMap map_;
  Network net_;
  OwnerRule rule_;
  int dim_ = -1;
  bool transactional_ = false;
  int op_retries_ = -1;
  std::uint64_t ops_retried_ = 0;
  int integrity_override_ = -1;  ///< -1 auto (env/fault plan), 0 off, 1 on
  std::unique_ptr<integrity::Armor> armor_;
  std::vector<std::unique_ptr<Part>> parts_;
};

}  // namespace dist

#endif  // PUMI_DIST_PARTEDMESH_HPP
