/// \file migrate.cpp
/// \brief Mesh migration (paper II-C): move elements between parts while
/// maintaining the full distributed representation.
///
/// The algorithm follows FMDB's residence-based migration, expressed as
/// bulk-synchronous message phases over dist::Network:
///
///   A. Every part computes, for each participating entity (shared, or in
///      the closure of a moving element), the destinations of its adjacent
///      elements, and reports them to the entity's owner. The union at the
///      owner is the entity's *new residence* (paper II-B).
///   B. (per dimension, ascending) Owners send creation payloads — topology
///      by vertex keys, coordinates, classification, tags — to residence
///      parts lacking a copy; receivers create entities and reply with the
///      new local handles.
///   C. Owners broadcast the final copy lists and the new owning part to
///      every residence part; parts dropped from the residence receive a
///      release message instead.
///   D. Each part deletes moved-out elements, then released entities in
///      descending dimension order (at which point nothing bounds them).

#include <algorithm>
#include <array>
#include <cassert>
#include <stdexcept>

#include "common/flatmap.hpp"
#include "dist/keymaps_impl.hpp"
#include "dist/partedmesh.hpp"
#include "dist/tagio.hpp"
#include "gmi/model.hpp"
#include "pcu/error.hpp"
#include "pcu/trace.hpp"

namespace dist {

namespace {

void packKey(pcu::OutBuffer& b, const GKey& k) {
  b.pack<std::int32_t>(k.part);
  b.pack<std::uint64_t>(k.ent.packed());
}

GKey unpackKey(pcu::InBuffer& b) {
  GKey k;
  k.part = b.unpack<std::int32_t>();
  k.ent = core::Ent::unpack(b.unpack<std::uint64_t>());
  return k;
}

void addUnique(std::vector<PartId>& v, PartId p) {
  if (std::find(v.begin(), v.end(), p) == v.end()) v.push_back(p);
}

/// Owner-side bookkeeping for one participating entity.
struct Record {
  std::vector<PartId> new_res;   // accumulating union of contributions
  std::vector<Copy> new_copies;  // copies created this migration
};

}  // namespace

void PartedMesh::buildKeyMaps(KeyMaps& maps) const {
  maps.by_key.assign(parts_.size(), {});
  for (const auto& pp : parts_) {
    auto& map = maps.by_key[static_cast<std::size_t>(pp->id())];
    // Count first so the rebuild is a single allocation, not a rehash chain.
    std::size_t n = 0;
    for (const auto& [e, r] : pp->remotes_)
      if (r.owner != pp->id()) ++n;
    map.reserve(n);
    for (const auto& [e, r] : pp->remotes_) {
      if (r.owner == pp->id()) continue;
      map.emplace(keyOf(*pp, e), e);
    }
  }
}

void PartedMesh::migrate(const MigrationPlan& plan) {
  const int dim = dim_;
  if (dim < 2) throw std::logic_error("migrate: mesh not distributed");
  if (plan.size() != parts_.size())
    throw std::invalid_argument("migrate: plan must cover every part");
  for (const auto& pp : parts_)
    if (pp->ghostCount() > 0)
      throw std::logic_error("migrate: unghost before migrating");

  // Validate plan contents up front, before any message or mutation: a bad
  // plan is a structured validation error naming the offending part and
  // entry, and the mesh is untouched.
  for (std::size_t pi = 0; pi < parts_.size(); ++pi) {
    const Part& p = *parts_[pi];
    for (const auto& [elem, dest] : plan[pi]) {
      const auto where = std::string(core::topoName(elem.topo())) + " #" +
                         std::to_string(elem.index());
      if (dest < 0 || dest >= static_cast<PartId>(parts_.size()))
        throw pcu::Error(pcu::ErrorCode::kValidation,
                         static_cast<int>(pi),
                         "migrate: destination part " + std::to_string(dest) +
                             " out of range [0, " +
                             std::to_string(parts_.size()) + ") for " + where);
      if (!p.mesh().alive(elem))
        throw pcu::Error(pcu::ErrorCode::kValidation, static_cast<int>(pi),
                         "migrate: plan names dead entity " + where);
      if (core::topoDim(elem.topo()) != dim)
        throw pcu::Error(
            pcu::ErrorCode::kValidation, static_cast<int>(pi),
            "migrate: plan entry " + where + " is not an element (dim " +
                std::to_string(core::topoDim(elem.topo())) + ", expected " +
                std::to_string(dim) + ")");
    }
  }

  runTransactional("migrate", [&] { migrateBody(plan); });
}

void PartedMesh::migrateBody(const MigrationPlan& plan) {
  const int dim = dim_;
  pcu::trace::Scope trace_scope("dist:migrate");
  const std::size_t nparts = parts_.size();
  KeyMaps keys;
  buildKeyMaps(keys);

  // Element loads before migration (for the LeastLoaded owner rule).
  std::vector<std::size_t> load(nparts, 0);
  for (std::size_t p = 0; p < nparts; ++p) load[p] = parts_[p]->elementCount();
  auto chooseOwner = [&](const std::vector<PartId>& res) -> PartId {
    assert(!res.empty());
    if (rule_ == OwnerRule::MinPartId)
      return *std::min_element(res.begin(), res.end());
    PartId best = res.front();
    for (PartId p : res)
      if (load[static_cast<std::size_t>(p)] <
          load[static_cast<std::size_t>(best)])
        best = p;
    return best;
  };

  // Per-part element destinations (defaulting to stay).
  auto destOf = [&](PartId p, Ent elem) -> PartId {
    const auto& m = plan[static_cast<std::size_t>(p)];
    auto it = m.find(elem);
    return it == m.end() ? p : it->second;
  };

  // --- Phase A0: find the participating entities ---------------------------
  pcu::trace::begin("migrate:A0-participants");
  // Only entities in the closure of a moving element ("touched"), plus
  // every copy of a touched shared entity, take part in the protocol. This
  // keeps migration cost proportional to the data moved, not to the part
  // boundary size.
  std::vector<common::FlatMap<Ent, Record, EntHash>> records(nparts);
  std::vector<std::vector<Ent>> to_delete(nparts);
  std::vector<std::vector<std::pair<Ent, PartId>>> moving(nparts);
  std::vector<common::FlatSet<Ent, EntHash>> participating(nparts);

  for (std::size_t pi = 0; pi < nparts; ++pi) {
    Part& p = *parts_[pi];
    std::array<Ent, core::kMaxDown> buf{};
    for (const auto& [elem, dest] : plan[pi]) {
      if (dest == p.id()) continue;  // contents validated by migrate()
      moving[pi].emplace_back(elem, dest);
      for (int d = 0; d < dim; ++d) {
        const int n = p.mesh().downward(elem, d, buf.data());
        for (int k = 0; k < n; ++k)
          participating[pi].insert(buf[static_cast<std::size_t>(k)]);
      }
    }
    // Notify owners of touched shared entities.
    for (Ent e : participating[pi]) {
      const GKey key = keyOf(p, e);
      if (key.part == p.id()) continue;
      pcu::OutBuffer b;
      b.pack<std::uint64_t>(key.ent.packed());
      net_.send(p.id(), key.part, std::move(b));
    }
  }
  net_.deliverAll([&](PartId to, PartId, pcu::InBuffer body) {
    participating[static_cast<std::size_t>(to)].insert(
        Ent::unpack(body.unpack<std::uint64_t>()));
  });
  // Owners pull every copy of a touched shared entity into the protocol.
  for (std::size_t pi = 0; pi < nparts; ++pi) {
    Part& p = *parts_[pi];
    for (Ent e : participating[pi]) {
      const Remote* r = p.remote(e);
      if (r == nullptr || r->owner != p.id()) continue;
      for (const Copy& c : r->copies) {
        pcu::OutBuffer b;
        b.pack<std::uint64_t>(c.ent.packed());
        net_.send(p.id(), c.part, std::move(b));
      }
    }
  }
  net_.deliverAll([&](PartId to, PartId, pcu::InBuffer body) {
    participating[static_cast<std::size_t>(to)].insert(
        Ent::unpack(body.unpack<std::uint64_t>()));
  });
  pcu::trace::end("migrate:A0-participants");

  // --- Phase A: local residence contributions -> owners -------------------
  pcu::trace::begin("migrate:A-residence");
  core::AdjVec adj;
  for (std::size_t pi = 0; pi < nparts; ++pi) {
    Part& p = *parts_[pi];
    common::FlatMap<Ent, std::vector<PartId>, EntHash> local_res;
    local_res.reserve(participating[pi].size());
    for (Ent e : participating[pi]) local_res.emplace(e, std::vector<PartId>{});
    // Destinations of adjacent elements.
    for (auto& [e, res] : local_res) {
      const int na = p.mesh().adjacentInto(e, dim, adj);
      for (int k = 0; k < na; ++k)
        addUnique(res, destOf(p.id(), adj[static_cast<std::size_t>(k)]));
      assert(!res.empty() && "entity with no adjacent element");
      const GKey key = keyOf(p, e);
      if (key.part == p.id()) {
        auto& rec = records[pi][e];
        for (PartId d : res) addUnique(rec.new_res, d);
      } else {
        pcu::OutBuffer b;
        b.pack<std::uint64_t>(key.ent.packed());
        b.packVector(res);
        net_.send(p.id(), key.part, std::move(b));
      }
    }
  }
  net_.deliverAll([&](PartId to, PartId, pcu::InBuffer body) {
    const Ent e = Ent::unpack(body.unpack<std::uint64_t>());
    auto res = body.unpackVector<PartId>();
    auto& rec = records[static_cast<std::size_t>(to)][e];
    for (PartId d : res) addUnique(rec.new_res, d);
  });
  for (auto& m : records)
    for (auto& [e, rec] : m) std::sort(rec.new_res.begin(), rec.new_res.end());
  pcu::trace::end("migrate:A-residence");

  // --- Phase B: creation payloads per dimension ----------------------------
  pcu::trace::begin("migrate:B-create");
  std::array<Ent, core::kMaxDown> vbuf{};
  auto packCreation = [&](Part& p, Ent e, pcu::OutBuffer& b) {
    packKey(b, keyOf(p, e));
    b.pack<std::uint8_t>(static_cast<std::uint8_t>(e.topo()));
    gmi::Entity* cls = p.mesh().classification(e);
    b.pack<std::int32_t>(cls ? cls->dim() : -1);
    b.pack<std::int32_t>(cls ? cls->tag() : -1);
    if (e.topo() == core::Topo::Vertex) {
      b.pack(p.mesh().point(e));
    } else {
      const int nv = p.mesh().downward(e, 0, vbuf.data());
      b.pack<std::uint32_t>(static_cast<std::uint32_t>(nv));
      for (int k = 0; k < nv; ++k)
        packKey(b, keyOf(p, vbuf[static_cast<std::size_t>(k)]));
    }
    packTags(p.mesh(), e, b);
  };
  auto createFromPayload = [&](PartId to, pcu::InBuffer& body) {
    const GKey key = unpackKey(body);
    const auto topo = static_cast<core::Topo>(body.unpack<std::uint8_t>());
    const auto cls_dim = body.unpack<std::int32_t>();
    const auto cls_tag = body.unpack<std::int32_t>();
    gmi::Entity* cls =
        cls_dim >= 0 ? model_->find(cls_dim, cls_tag) : nullptr;
    Part& p = *parts_[static_cast<std::size_t>(to)];
    Ent local;
    if (topo == core::Topo::Vertex) {
      const auto x = body.unpack<common::Vec3>();
      local = p.mesh().createVertex(x, cls);
    } else {
      const auto nv = body.unpack<std::uint32_t>();
      std::array<Ent, 8> lv{};
      for (std::uint32_t k = 0; k < nv; ++k)
        lv[k] = keys.resolve(to, unpackKey(body));
      local = p.mesh().buildElement(topo, {lv.data(), nv}, cls);
    }
    unpackTags(p.mesh(), local, body);
    keys.by_key[static_cast<std::size_t>(to)][key] = local;
    return std::pair{key, local};
  };

  for (int d = 0; d <= dim; ++d) {
    // Post creation payloads.
    if (d < dim) {
      for (std::size_t pi = 0; pi < nparts; ++pi) {
        Part& p = *parts_[pi];
        for (auto& [e, rec] : records[pi]) {
          if (core::topoDim(e.topo()) != d) continue;
          const auto current = p.residence(e);
          for (PartId t : rec.new_res) {
            if (std::find(current.begin(), current.end(), t) != current.end())
              continue;
            pcu::OutBuffer b;
            packCreation(p, e, b);
            net_.send(p.id(), t, std::move(b));
          }
        }
      }
    } else {
      for (std::size_t pi = 0; pi < nparts; ++pi) {
        Part& p = *parts_[pi];
        // Element counts per destination are known exactly — pre-size the
        // transport staging so the send loop never regrows a group.
        std::vector<std::size_t> ndest(nparts, 0);
        for (const auto& [elem, dest] : moving[pi])
          ++ndest[static_cast<std::size_t>(dest)];
        for (std::size_t t = 0; t < nparts; ++t)
          net_.reserveStage(p.id(), static_cast<PartId>(t), ndest[t]);
        for (const auto& [elem, dest] : moving[pi]) {
          pcu::OutBuffer b;
          packCreation(p, elem, b);
          net_.send(p.id(), dest, std::move(b));
        }
      }
    }
    // Deliver creations; receivers reply with their new handles.
    net_.deliverAll([&](PartId to, PartId, pcu::InBuffer body) {
      const auto [key, local] = createFromPayload(to, body);
      if (d < dim) {
        pcu::OutBuffer reply;
        reply.pack<std::uint64_t>(key.ent.packed());
        reply.pack<std::uint64_t>(local.packed());
        net_.send(to, key.part, std::move(reply));
      }
    });
    // Deliver handle replies to owners.
    net_.deliverAll([&](PartId to, PartId from, pcu::InBuffer body) {
      const Ent e = Ent::unpack(body.unpack<std::uint64_t>());
      const Ent handle = Ent::unpack(body.unpack<std::uint64_t>());
      records[static_cast<std::size_t>(to)]
          .at(e)
          .new_copies.push_back(Copy{from, handle});
    });
  }
  pcu::trace::end("migrate:B-create");

  // --- Phase C: finalize copies & ownership --------------------------------
  pcu::trace::begin("migrate:C-finalize");
  for (std::size_t pi = 0; pi < nparts; ++pi) {
    Part& p = *parts_[pi];
    for (auto& [e, rec] : records[pi]) {
      // All copies: pre-existing (self + remotes) plus newly created.
      std::vector<Copy> all{Copy{p.id(), e}};
      if (const Remote* r = p.remote(e))
        all.insert(all.end(), r->copies.begin(), r->copies.end());
      all.insert(all.end(), rec.new_copies.begin(), rec.new_copies.end());
      // Filter to the new residence and sort by part.
      std::vector<Copy> final_copies;
      for (const Copy& c : all)
        if (std::find(rec.new_res.begin(), rec.new_res.end(), c.part) !=
            rec.new_res.end())
          final_copies.push_back(c);
      std::sort(final_copies.begin(), final_copies.end(),
                [](const Copy& a, const Copy& b) { return a.part < b.part; });
      const PartId new_owner = chooseOwner(rec.new_res);
      // Retained residence parts get the final record.
      for (const Copy& c : final_copies) {
        pcu::OutBuffer b;
        b.pack<std::uint8_t>(1);  // kind: finalize
        b.pack<std::uint64_t>(c.ent.packed());
        b.pack<std::int32_t>(new_owner);
        b.pack<std::uint32_t>(static_cast<std::uint32_t>(final_copies.size()));
        for (const Copy& o : final_copies) {
          b.pack<std::int32_t>(o.part);
          b.pack<std::uint64_t>(o.ent.packed());
        }
        net_.send(p.id(), c.part, std::move(b));
      }
      // Dropped parts get a release.
      for (const Copy& c : all) {
        if (std::find(rec.new_res.begin(), rec.new_res.end(), c.part) !=
            rec.new_res.end())
          continue;
        pcu::OutBuffer b;
        b.pack<std::uint8_t>(0);  // kind: release
        b.pack<std::uint64_t>(c.ent.packed());
        net_.send(p.id(), c.part, std::move(b));
      }
    }
  }
  net_.deliverAll([&](PartId to, PartId, pcu::InBuffer body) {
    Part& p = *parts_[static_cast<std::size_t>(to)];
    const auto kind = body.unpack<std::uint8_t>();
    const Ent local = Ent::unpack(body.unpack<std::uint64_t>());
    if (kind == 0) {
      p.remotes_.erase(local);
      to_delete[static_cast<std::size_t>(to)].push_back(local);
      return;
    }
    const PartId owner = body.unpack<std::int32_t>();
    const auto n = body.unpack<std::uint32_t>();
    Remote r;
    r.owner = owner;
    for (std::uint32_t i = 0; i < n; ++i) {
      Copy c;
      c.part = body.unpack<std::int32_t>();
      c.ent = Ent::unpack(body.unpack<std::uint64_t>());
      if (c.part != to) r.copies.push_back(c);
    }
    if (r.copies.empty())
      p.remotes_.erase(local);  // became interior
    else
      p.remotes_[local] = std::move(r);
  });
  pcu::trace::end("migrate:C-finalize");

  // --- Phase D: deletion ----------------------------------------------------
  pcu::trace::Scope delete_scope("migrate:D-delete");
  for (std::size_t pi = 0; pi < nparts; ++pi) {
    Part& p = *parts_[pi];
    for (const auto& [elem, dest] : moving[pi]) {
      (void)dest;
      p.mesh().destroy(elem);
    }
    auto& dels = to_delete[pi];
    std::sort(dels.begin(), dels.end(), [](Ent a, Ent b) {
      return core::topoDim(a.topo()) > core::topoDim(b.topo());
    });
    for (Ent e : dels) p.mesh().destroy(e);
  }
}

}  // namespace dist
