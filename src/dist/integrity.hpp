#ifndef PUMI_DIST_INTEGRITY_HPP
#define PUMI_DIST_INTEGRITY_HPP

/// \file integrity.hpp
/// \brief Silent-corruption armor for a parted mesh: per-part checksum
/// ledgers, deterministic memory-fault injection, and online audit-and-
/// repair at every transactional commit point.
///
/// The Armor owns one core::integrity::Ledger per part. At each boundary
/// (operation entry/exit, balancing round end, service phase) it:
///   * audits every part — the mesh-owned sections through the ledger's
///     version-gated byte hashes, the remote/ghost tables through
///     canonical serialized streams — localizing any mismatch to an exact
///     (part, section, byte range);
///   * repairs what it can, escalating through a ladder:
///       tier 1  mismatch confined to CSR adjacency views: derived state —
///               drop the views, the next query rebuilds from the pools;
///       tier 2  refetch the part from its BuddyJournal replica (CRC-gated,
///               evacuation-style in-place rebuild, survivor mirrors
///               patched through copy symmetry);
///       tier 3  restore the part from the configured checkpoint directory;
///       tier 4  nothing left — throw pcu::Error(kIntegrity) naming the
///               part, section and byte range;
///   * reseals the ledgers against the (possibly repaired) state, then
///     consumes any `memflip` burst scheduled for this boundary index and
///     plants the flips in live state — so an injected flip sits in sealed
///     state until the next entry audit finds it, exactly like a real
///     particle strike between operations.
///
/// Flip placement is pure in (plan seed, rank, part, section, flip index)
/// via pcu::faults::memFlipKey, so a seeded memflip matrix replays
/// bit-identically. Flips land only in bytes the ledger covers (entity
/// pools, coordinates, tag payloads, CSR arrays, remote/ghost records) —
/// never in derived heap structure — so every flip is either repaired to a
/// fingerprint-identical mesh or reported with exact localization; none is
/// silent.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/integrity.hpp"
#include "dist/failover.hpp"
#include "dist/partedmesh.hpp"
#include "pcu/faults.hpp"

namespace dist {
namespace integrity {

/// One detected corruption: where it localized and how it was resolved.
struct Corruption {
  PartId part = -1;
  std::string section;         ///< ledger section name
  std::size_t first_byte = 0;  ///< localized byte range within the section's
  std::size_t last_byte = 0;   ///< canonical stream, inclusive
  int repair_tier = 0;  ///< 1 CSR rebuild, 2 journal, 3 checkpoint, 0 none
  std::string where;    ///< boundary label ("migrate", "parma:round", ...)

  friend bool operator==(const Corruption& a, const Corruption& b) {
    return a.part == b.part && a.section == b.section &&
           a.first_byte == b.first_byte && a.last_byte == b.last_byte &&
           a.repair_tier == b.repair_tier && a.where == b.where;
  }
};

/// What the armor saw and did so far. Lists are deterministic for a given
/// (plan seed, operation sequence): detected in detection order (boundaries
/// in time order, parts ascending, sections in ledger order),
/// parts_repaired / parts_unrepaired sorted and deduplicated.
struct IntegrityReport {
  std::uint64_t audits = 0;          ///< audit passes (all parts each)
  std::uint64_t seals = 0;           ///< seal passes == boundaries crossed
  std::uint64_t mismatches = 0;      ///< corruptions detected
  std::uint64_t flips_injected = 0;  ///< memflip bits planted
  std::uint64_t flips_skipped = 0;   ///< no eligible bytes for the target
  std::uint64_t bytes_hashed = 0;    ///< cumulative ledger hash work
  std::uint64_t sections_rehashed = 0;
  double audit_ms = 0;  ///< wall time inside auditAndRepair (incl. repairs)
  double seal_ms = 0;   ///< wall time inside sealAndMaybeInject (incl.
                        ///< journal refresh and flip planting)
  std::vector<Corruption> detected;
  std::vector<PartId> parts_repaired;
  std::vector<PartId> parts_unrepaired;
};

/// The armor of one PartedMesh (created lazily via PartedMesh::armor()).
class Armor {
 public:
  explicit Armor(PartedMesh& pm) : pm_(pm) {}

  /// Repair sources, in escalation order. Without a journal tier 2 is
  /// skipped; without a checkpoint dir tier 3 is skipped. The armor
  /// *refreshes* the journal at every seal — after sealing, before any
  /// flip can strike — so each boundary's sealed state always has a
  /// matching replica and a tier-2 repair never meets a stale snapshot.
  void setJournal(failover::BuddyJournal* journal) { journal_ = journal; }
  void setCheckpointDir(std::string dir) { checkpoint_dir_ = std::move(dir); }

  /// Audit every part and run the repair ladder on every mismatch. `where`
  /// labels the boundary in the report and in error messages. Throws
  /// pcu::Error(kIntegrity) when a corrupt part exhausts the ladder.
  void auditAndRepair(const char* where);

  /// Reseal every part's ledger, refresh the journal replica (dedup makes
  /// unchanged parts free), then consume any memflip scheduled for this
  /// boundary index and plant the flips in live state. The order is the
  /// armor's core invariant: seal, then replicate, then corrupt — so the
  /// repair source always matches the sealed state a flip lands in.
  void sealAndMaybeInject();

  /// One full boundary: audit/repair, then seal and maybe inject. The
  /// balancing and service layers call this between rounds/phases.
  void boundary(const char* where) {
    auditAndRepair(where);
    sealAndMaybeInject();
  }

  /// Boundaries crossed so far == the phase index the NEXT seal will use
  /// (memflip=N@P fires at the P-th boundary, 0-based).
  [[nodiscard]] std::uint64_t boundaryIndex() const { return boundary_; }

  /// Snapshot of the armor's activity; lists sorted/deduplicated as
  /// documented on IntegrityReport.
  [[nodiscard]] IntegrityReport report() const;

  /// Sealed section names of one part's ledger (diagnostics, tests).
  [[nodiscard]] std::vector<std::string> partSections(PartId p) const;

 private:
  void ensureParts();
  void sealPart(PartId p);
  /// Appends this part's mismatches (mesh sections + external tables).
  void auditPart(PartId p, std::vector<core::integrity::Mismatch>& out);

  // Canonical byte streams of the part-boundary tables (sorted by entity
  // handle, so deterministic regardless of hash-map layout).
  [[nodiscard]] std::vector<std::byte> remotesStream(const Part& p) const;
  [[nodiscard]] std::vector<std::byte> ghostSourceStream(const Part& p) const;
  [[nodiscard]] std::vector<std::byte> ghostedOnStream(const Part& p) const;

  bool repairFromJournal(PartId p);     // tier 2
  bool repairFromCheckpoint(PartId p);  // tier 3
  /// Shared tier-2/3 body: wipe the part, rebuild it from the two partio
  /// streams, patch survivor mirror records through copy symmetry
  /// (evacuation steps 1-3 for a single part, without the re-pinning: the
  /// part's rank is alive, only its bytes were bad).
  void rebuildPart(PartId p, std::vector<std::byte> mesh_bytes,
                   std::vector<std::byte> meta_bytes, const char* src);

  void injectFlips(const pcu::faults::MemFlip& burst);
  bool flipOne(pcu::faults::MemTarget target, std::uint64_t seed, int rank,
               PartId p, int flip_index);

  PartedMesh& pm_;
  failover::BuddyJournal* journal_ = nullptr;
  std::string checkpoint_dir_;
  std::vector<core::integrity::Ledger> ledgers_;  // one per part
  std::uint64_t boundary_ = 0;
  IntegrityReport rep_;
};

}  // namespace integrity
}  // namespace dist

#endif  // PUMI_DIST_INTEGRITY_HPP
