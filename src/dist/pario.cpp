#include "dist/pario.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "common/crc32.hpp"
#include "core/meshio.hpp"
#include "core/topo.hpp"
#include "dist/partio.hpp"
#include "pcu/buffer.hpp"
#include "pcu/error.hpp"
#include "pcu/faults.hpp"
#include "pcu/trace.hpp"

namespace dist::pario {

namespace {

constexpr std::uint64_t kManifestMagic = 0x50554d4950494f31ull;  // "PUMIPIO1"
constexpr std::uint32_t kVersion = 1;
constexpr std::uint64_t kImageMagic = 0x50554d49494d4731ull;  // "PUMIIMG1"
constexpr std::uint64_t kRegionAlign = 4096;  // writer extents: page-aligned
constexpr std::uint64_t kChunkAlign = 8;
// magic..fingerprint + image-name length prefix (the variable name and the
// per-part slot table follow).
constexpr std::size_t kManifestHeadBytes = 8 + 4 + 4 + 4 + 1 + 4 + 8 + 8 + 8;
constexpr std::size_t kManifestSlotBytes = 2 * (8 + 8 + 8 + 4);
// Concurrency cap for the logical writers/readers. The extent layout and
// every byte written depend only on the logical writer count (== parts),
// never on this, so images are machine-independent.
constexpr int kMaxIoThreads = 16;

[[noreturn]] void failValidation(const std::string& what) {
  throw pcu::Error(pcu::ErrorCode::kValidation, -1, what);
}

[[noreturn]] void failIo(const std::string& what) {
  throw pcu::Error(pcu::ErrorCode::kIoFault, -1, what);
}

std::uint64_t alignUp(std::uint64_t v, std::uint64_t a) {
  return (v + a - 1) / a * a;
}

std::string manifestPath(const std::string& dir) { return dir + "/MANIFEST"; }

/// Run fn(0..n-1) on up to kMaxIoThreads workers. Workers inherit the
/// caller's ambient fault domain (DomainScope is thread-local), so a
/// tenant's storage chaos plan follows its I/O onto the pool. The first
/// exception is rethrown in the caller after all workers drain.
void parallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  const int nthreads = std::min(n, kMaxIoThreads);
  if (nthreads <= 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  auto domain = pcu::faults::currentHandle();
  std::atomic<int> next{0};
  std::mutex err_mutex;
  std::exception_ptr err;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(nthreads));
  for (int t = 0; t < nthreads; ++t) {
    workers.emplace_back([&] {
      pcu::faults::DomainScope scope(domain);
      for (;;) {
        const int i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(err_mutex);
          if (!err) err = std::current_exception();
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  if (err) std::rethrow_exception(err);
}

void put32(std::byte* p, std::uint32_t v) { std::memcpy(p, &v, 4); }
void put64(std::byte* p, std::uint64_t v) { std::memcpy(p, &v, 8); }
std::uint32_t get32(const std::byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
std::uint64_t get64(const std::byte* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

/// Serialize a chunk header into a 24-byte buffer.
void packChunkHeader(std::byte* h, std::uint32_t type, std::uint32_t part,
                     std::uint32_t crc, std::uint64_t length) {
  put32(h, kChunkMagic);
  put32(h + 4, type);
  put32(h + 8, part);
  put32(h + 12, crc);
  put64(h + 16, length);
}

/// One full chunk (header + payload) as contiguous bytes, for writes and
/// for rewriting a bad copy from a good one.
std::vector<std::byte> chunkBytes(std::uint32_t type, std::uint32_t part,
                                  std::uint32_t crc,
                                  const std::vector<std::byte>& payload) {
  std::vector<std::byte> out(kChunkHeaderBytes + payload.size());
  packChunkHeader(out.data(), type, part, crc, payload.size());
  if (!payload.empty())
    std::memcpy(out.data() + kChunkHeaderBytes, payload.data(),
                payload.size());
  return out;
}

/// Read and validate one chunk copy: header fields must match the
/// manifest's expectation and the payload CRC must agree. Any shortfall or
/// disagreement returns nullopt — the caller falls over to the buddy copy.
std::optional<std::vector<std::byte>> tryReadChunk(File& img,
                                                   std::uint64_t off,
                                                   std::uint32_t type,
                                                   std::uint32_t part,
                                                   const ChunkSlot& slot) {
  const std::size_t total =
      kChunkHeaderBytes + static_cast<std::size_t>(slot.length);
  std::vector<std::byte> buf(total);
  if (img.preadSome(buf.data(), total, off) != total) return std::nullopt;
  if (get32(buf.data()) != kChunkMagic || get32(buf.data() + 4) != type ||
      get32(buf.data() + 8) != part || get32(buf.data() + 12) != slot.crc ||
      get64(buf.data() + 16) != slot.length)
    return std::nullopt;
  if (common::crc32(buf.data() + kChunkHeaderBytes, slot.length) !=
      slot.crc)
    return std::nullopt;
  buf.erase(buf.begin(),
            buf.begin() + static_cast<std::ptrdiff_t>(kChunkHeaderBytes));
  return buf;
}

/// Load one chunk with read-repair: primary first, then the buddy replica;
/// a good replica is written back over the bad primary (best-effort — the
/// data in hand is already good, so a failed repair write only leaves the
/// damage for the next scrub). Returns nullopt when both copies are bad.
std::optional<std::vector<std::byte>> loadChunk(
    File& img, File* rw, std::uint32_t type, std::uint32_t part,
    const ChunkSlot& slot, std::atomic<std::uint64_t>& repaired,
    std::atomic<std::uint64_t>& lost) {
  if (auto primary = tryReadChunk(img, slot.primary, type, part, slot))
    return primary;
  auto replica = tryReadChunk(img, slot.replica, type, part, slot);
  if (!replica) {
    lost.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  {
    pcu::trace::Scope scope("io:repair");
    if (rw != nullptr) {
      const auto fixed = chunkBytes(type, part, slot.crc, *replica);
      try {
        rw->pwriteAll(fixed.data(), fixed.size(), slot.primary);
      } catch (const pcu::Error&) {
        // repair write failed; the replica bytes are still good
      }
    }
  }
  repaired.fetch_add(1, std::memory_order_relaxed);
  return replica;
}

std::vector<std::byte> buildManifestBytes(const Index& idx) {
  pcu::OutBuffer b;
  b.pack(kManifestMagic);
  b.pack<std::uint32_t>(kVersion);
  b.pack<std::uint32_t>(static_cast<std::uint32_t>(idx.nparts));
  b.pack<std::int32_t>(idx.dim);
  b.pack<std::uint8_t>(static_cast<std::uint8_t>(idx.rule));
  b.pack<std::uint32_t>(static_cast<std::uint32_t>(idx.writers));
  b.pack<std::uint64_t>(idx.generation);
  b.pack<std::uint64_t>(idx.fingerprint);
  b.packString(idx.image);
  for (const PartSlots& ps : idx.parts) {
    for (const ChunkSlot* s : {&ps.mesh, &ps.meta}) {
      b.pack<std::uint64_t>(s->primary);
      b.pack<std::uint64_t>(s->replica);
      b.pack<std::uint64_t>(s->length);
      b.pack<std::uint32_t>(s->crc);
    }
  }
  auto bytes = std::move(b).take();
  std::byte trailer[4];
  put32(trailer, common::crc32(bytes.data(), bytes.size()));
  bytes.insert(bytes.end(), trailer, trailer + 4);
  return bytes;
}

/// Compute the image layout for the given payload sizes: writer w's
/// 4 KiB-aligned region holds its own part's primary chunks followed by
/// the replica chunks of part (w-1+n) % n — equivalently, part p's
/// replicas land in buddy (p+1) % n's region, the cyclic pairing failover
/// uses. Pure in the sizes, so every writer computes identical extents.
std::uint64_t computeLayout(const std::vector<std::uint64_t>& mesh_len,
                            const std::vector<std::uint64_t>& meta_len,
                            std::vector<PartSlots>& slots) {
  const int n = static_cast<int>(mesh_len.size());
  slots.assign(static_cast<std::size_t>(n), PartSlots{});
  std::uint64_t off = kRegionAlign;  // region 0 starts past the image header
  for (int w = 0; w < n; ++w) {
    off = alignUp(off, kRegionAlign);
    const int prev = (w - 1 + n) % n;
    const auto place = [&off](ChunkSlot& s, bool primary,
                              std::uint64_t length) {
      off = alignUp(off, kChunkAlign);
      (primary ? s.primary : s.replica) = off;
      s.length = length;
      off += kChunkHeaderBytes + length;
    };
    auto& own = slots[static_cast<std::size_t>(w)];
    auto& buddy = slots[static_cast<std::size_t>(prev)];
    place(own.mesh, true, mesh_len[static_cast<std::size_t>(w)]);
    place(own.meta, true, meta_len[static_cast<std::size_t>(w)]);
    place(buddy.mesh, false, mesh_len[static_cast<std::size_t>(prev)]);
    place(buddy.meta, false, meta_len[static_cast<std::size_t>(prev)]);
  }
  return off;
}

/// Remove stale "*.tmp" files — a crashed or failed earlier attempt's
/// leavings (the historical temp-file leak). Never touches committed
/// files; best-effort, called only by the writer side.
void sweepTmpFiles(const std::string& dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return;
  std::vector<std::string> doomed;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0)
      doomed.push_back(entry.path().string());
  }
  for (const auto& path : doomed) std::filesystem::remove(path, ec);
}

/// After a successful commit, sweep image files the new MANIFEST does not
/// reference (the previous generation, or a crashed attempt's orphan).
void sweepStaleImages(const std::string& dir, const std::string& keep) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return;
  std::vector<std::string> doomed;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("IMAGE.", 0) == 0 && name != keep)
      doomed.push_back(entry.path().string());
  }
  for (const auto& path : doomed) std::filesystem::remove(path, ec);
}

void renameOrFail(const std::string& from, const std::string& to) {
  if (std::rename(from.c_str(), to.c_str()) != 0)
    failValidation("checkpoint: cannot commit " + to + ": " +
                   std::strerror(errno));
}

/// Shared read-side setup: parse the index and open the image, read-write
/// when possible so read-repair can persist, read-only otherwise.
struct OpenedImage {
  Index idx;
  File img;
  bool can_repair;
};

OpenedImage openForRead(const std::string& dir) {
  Index idx = loadIndex(dir);
  const std::string path = dir + "/" + idx.image;
  if (!std::filesystem::exists(path))
    failValidation("restore: " + dir + "/MANIFEST names missing image " +
                   idx.image);
  try {
    return OpenedImage{std::move(idx), File::openRw(path), true};
  } catch (const pcu::Error&) {
    // read-only media: restore still works, repairs just don't persist
    return OpenedImage{std::move(idx), File::openRead(path), false};
  }
}

std::string joinParts(const std::vector<PartId>& parts) {
  std::string s;
  for (PartId p : parts) {
    if (!s.empty()) s += ",";
    s += std::to_string(p);
  }
  return s;
}

}  // namespace

/// --- File ---------------------------------------------------------------

File::File(int fd, std::string path)
    : fd_(fd),
      path_(std::move(path)),
      path_hash_(pcu::faults::ioPathHash(path_)) {}

File::File(File&& other) noexcept
    : fd_(other.fd_),
      path_(std::move(other.path_)),
      path_hash_(other.path_hash_) {
  other.fd_ = -1;
}

File& File::operator=(File&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    path_hash_ = other.path_hash_;
    other.fd_ = -1;
  }
  return *this;
}

File::~File() {
  if (fd_ >= 0) ::close(fd_);
}

File File::create(const std::string& path) {
  const int fd = ::open(path.c_str(), O_CREAT | O_RDWR | O_TRUNC, 0644);
  if (fd < 0)
    failValidation("pario: cannot create " + path + ": " +
                   std::strerror(errno));
  return File(fd, path);
}

File File::openRead(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0)
    failValidation("pario: cannot open " + path + ": " + std::strerror(errno));
  return File(fd, path);
}

File File::openRw(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0)
    failValidation("pario: cannot open " + path + " read-write: " +
                   std::strerror(errno));
  return File(fd, path);
}

namespace {

/// pwrite/pread loop handling EINTR and genuine short transfers; real
/// errors surface as kIoFault naming the path, operation and offset.
std::size_t rawWrite(int fd, const std::string& path, const void* data,
                     std::size_t n, std::uint64_t off) {
  const auto* p = static_cast<const char*>(data);
  std::size_t done = 0;
  while (done < n) {
    const ssize_t w = ::pwrite(fd, p + done, n - done,
                               static_cast<off_t>(off + done));
    if (w < 0) {
      if (errno == EINTR) continue;
      failIo("pario: write to " + path + " at offset " +
             std::to_string(off + done) + " failed: " + std::strerror(errno));
    }
    if (w == 0) break;
    done += static_cast<std::size_t>(w);
  }
  return done;
}

std::size_t rawRead(int fd, const std::string& path, void* data, std::size_t n,
                    std::uint64_t off) {
  auto* p = static_cast<char*>(data);
  std::size_t done = 0;
  while (done < n) {
    const ssize_t r =
        ::pread(fd, p + done, n - done, static_cast<off_t>(off + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      failIo("pario: read from " + path + " at offset " +
             std::to_string(off + done) + " failed: " + std::strerror(errno));
    }
    if (r == 0) break;  // end of file
    done += static_cast<std::size_t>(r);
  }
  return done;
}

}  // namespace

void File::pwriteAll(const void* data, std::size_t n, std::uint64_t off) {
  using pcu::faults::IoAction;
  std::size_t want = n;
  switch (pcu::faults::decideIo(pcu::faults::IoOp::kWrite, path_hash_, off)) {
    case IoAction::kEnospc:
      failIo("pario: injected ENOSPC writing " + path_ + " at offset " +
             std::to_string(off));
    case IoAction::kTorn:
      // A torn write persists a prefix yet reports success — the silent
      // failure mode CRC validation + read-repair exist for.
      want = n / 2;
      break;
    case IoAction::kShort: {
      // An honest short transfer: a prefix persists and the failure is
      // reported, like a device running dry mid-write.
      const std::size_t prefix = n - n / 4;
      rawWrite(fd_, path_, data, prefix, off);
      failIo("pario: injected short write to " + path_ + " at offset " +
             std::to_string(off) + " (" + std::to_string(prefix) + " of " +
             std::to_string(n) + " bytes)");
    }
    case IoAction::kStall:
      std::this_thread::sleep_for(
          std::chrono::milliseconds(pcu::faults::ioStallMs()));
      break;
    default:
      break;
  }
  const std::size_t done = rawWrite(fd_, path_, data, want, off);
  if (done < want)
    failIo("pario: short write to " + path_ + " at offset " +
           std::to_string(off) + " (" + std::to_string(done) + " of " +
           std::to_string(want) + " bytes)");
}

std::size_t File::preadSome(void* data, std::size_t n, std::uint64_t off) {
  using pcu::faults::IoAction;
  std::size_t want = n;
  bool rot = false;
  switch (pcu::faults::decideIo(pcu::faults::IoOp::kRead, path_hash_, off)) {
    case IoAction::kBitrot:
      rot = true;
      break;
    case IoAction::kShort:
      want = n / 2;
      break;
    case IoAction::kStall:
      std::this_thread::sleep_for(
          std::chrono::milliseconds(pcu::faults::ioStallMs()));
      break;
    default:
      break;
  }
  const std::size_t got = rawRead(fd_, path_, data, want, off);
  if (rot && got > 0)
    static_cast<std::byte*>(data)[got / 2] ^= std::byte{0x5A};
  return got;
}

void File::sync() {
  if (::fdatasync(fd_) != 0)
    failIo("pario: fdatasync of " + path_ + " failed: " +
           std::strerror(errno));
}

std::uint64_t File::size() const {
  const off_t end = ::lseek(fd_, 0, SEEK_END);
  if (end < 0)
    failIo("pario: cannot size " + path_ + ": " + std::strerror(errno));
  return static_cast<std::uint64_t>(end);
}

/// --- MANIFEST ------------------------------------------------------------

Index loadIndex(const std::string& dir) {
  // An unreadable or absent directory must be a structured validation
  // error naming the path — never a crash or a hang (restore is the last
  // recovery tier; it runs when everything else already went wrong).
  std::error_code ec;
  const auto st = std::filesystem::status(dir, ec);
  if (ec || !std::filesystem::exists(st))
    failValidation("restore: checkpoint directory " + dir +
                   " does not exist or is not readable" +
                   (ec ? " (" + ec.message() + ")" : ""));
  if (!std::filesystem::is_directory(st))
    failValidation("restore: " + dir + " is not a directory");
  std::filesystem::directory_iterator probe(dir, ec);
  if (ec)
    failValidation("restore: checkpoint directory " + dir +
                   " is not readable (" + ec.message() + ")");
  const std::string path = manifestPath(dir);
  if (!std::filesystem::exists(path, ec) || ec)
    failValidation("restore: no MANIFEST in " + dir);

  File f = File::openRead(path);
  const std::uint64_t size = f.size();
  if (size < kManifestHeadBytes + 4 || size > (std::uint64_t{1} << 30))
    failValidation("restore: truncated MANIFEST in " + dir);
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  if (f.preadSome(bytes.data(), bytes.size(), 0) != bytes.size())
    failValidation("restore: short read from " + path);
  const std::uint32_t want_crc = get32(bytes.data() + bytes.size() - 4);
  if (common::crc32(bytes.data(), bytes.size() - 4) != want_crc)
    failValidation("restore: " + path + " fails its own CRC (corrupt)");

  pcu::InBuffer b(std::move(bytes));
  if (b.unpack<std::uint64_t>() != kManifestMagic)
    failValidation("restore: " + path + " is not a checkpoint manifest");
  const auto version = b.unpack<std::uint32_t>();
  if (version != kVersion)
    failValidation("restore: " + path + " has unsupported version " +
                   std::to_string(version));
  Index idx;
  idx.nparts = static_cast<int>(b.unpack<std::uint32_t>());
  idx.dim = b.unpack<std::int32_t>();
  const auto rule = b.unpack<std::uint8_t>();
  idx.writers = static_cast<int>(b.unpack<std::uint32_t>());
  idx.generation = b.unpack<std::uint64_t>();
  idx.fingerprint = b.unpack<std::uint64_t>();
  if (idx.nparts < 1 || idx.nparts > (1 << 24))
    failValidation("restore: " + path + " has bad part count " +
                   std::to_string(idx.nparts));
  if (rule > 1)
    failValidation("restore: " + path + " has bad owner rule " +
                   std::to_string(rule));
  idx.rule = static_cast<OwnerRule>(rule);
  if (idx.writers < 1 || idx.writers > idx.nparts)
    failValidation("restore: " + path + " has bad writer count " +
                   std::to_string(idx.writers));
  if (b.remaining() < 8) failValidation("restore: truncated MANIFEST in " + dir);
  const auto name_len = b.unpack<std::uint64_t>();
  if (name_len == 0 || name_len > 255 || name_len > b.remaining())
    failValidation("restore: " + path + " has a bad image name");
  const auto name_bytes = b.unpackRaw(static_cast<std::size_t>(name_len));
  idx.image.assign(reinterpret_cast<const char*>(name_bytes.data()),
                   name_bytes.size());
  if (idx.image.find('/') != std::string::npos)
    failValidation("restore: " + path + " has a bad image name");
  if (b.remaining() !=
      static_cast<std::size_t>(idx.nparts) * kManifestSlotBytes + 4)
    failValidation("restore: " + path + " has wrong length for " +
                   std::to_string(idx.nparts) + " parts");
  idx.parts.resize(static_cast<std::size_t>(idx.nparts));
  for (PartSlots& ps : idx.parts) {
    for (ChunkSlot* s : {&ps.mesh, &ps.meta}) {
      s->primary = b.unpack<std::uint64_t>();
      s->replica = b.unpack<std::uint64_t>();
      s->length = b.unpack<std::uint64_t>();
      s->crc = b.unpack<std::uint32_t>();
      if (s->length > (std::uint64_t{1} << 40) ||
          s->primary > (std::uint64_t{1} << 50) ||
          s->replica > (std::uint64_t{1} << 50))
        failValidation("restore: " + path + " has an implausible chunk slot");
    }
  }
  return idx;
}

/// --- write path ----------------------------------------------------------

WriteStats checkpointImage(const PartedMesh& pm, const std::string& dir) {
  pcu::trace::Scope scope("io:write");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec)
    failValidation("checkpoint: cannot create directory " + dir + ": " +
                   ec.message());
  sweepTmpFiles(dir);

  const int n = pm.parts();
  if (n < 1) failValidation("checkpoint: mesh has no parts");
  std::uint64_t generation = 1;
  try {
    generation = loadIndex(dir).generation + 1;
  } catch (const pcu::Error&) {
    // no previous valid checkpoint here; start at generation 1
  }
  const std::string image_name = "IMAGE." + std::to_string(generation);
  const std::string image_path = dir + "/" + image_name;
  const std::string image_tmp = image_path + ".tmp";
  const std::string man_tmp = manifestPath(dir) + ".tmp";

  // Serialize every part (mesh stream + ordinals in one parallel pass,
  // then metadata, which needs every part's ordinal map).
  std::vector<std::vector<std::byte>> mesh_bytes(static_cast<std::size_t>(n));
  std::vector<std::vector<std::byte>> meta_bytes(static_cast<std::size_t>(n));
  std::vector<partio::OrdinalMap> ords(static_cast<std::size_t>(n));
  parallelFor(n, [&](int p) {
    mesh_bytes[static_cast<std::size_t>(p)] =
        core::meshToBytes(pm.part(p).mesh());
    ords[static_cast<std::size_t>(p)] =
        partio::buildOrdinals(pm.part(p).mesh());
  });
  parallelFor(n, [&](int p) {
    meta_bytes[static_cast<std::size_t>(p)] = partio::buildMeta(
        pm.part(p), ords[static_cast<std::size_t>(p)], ords);
  });

  Index idx;
  idx.nparts = n;
  idx.dim = pm.dim();
  idx.rule = pm.ownerRule();
  idx.writers = n;
  idx.generation = generation;
  idx.fingerprint = pm.fingerprint();
  idx.image = image_name;
  std::vector<std::uint64_t> mesh_len(static_cast<std::size_t>(n));
  std::vector<std::uint64_t> meta_len(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) {
    mesh_len[static_cast<std::size_t>(p)] =
        mesh_bytes[static_cast<std::size_t>(p)].size();
    meta_len[static_cast<std::size_t>(p)] =
        meta_bytes[static_cast<std::size_t>(p)].size();
  }
  computeLayout(mesh_len, meta_len, idx.parts);
  for (int p = 0; p < n; ++p) {
    auto& ps = idx.parts[static_cast<std::size_t>(p)];
    ps.mesh.crc = common::crc32(
        mesh_bytes[static_cast<std::size_t>(p)].data(), ps.mesh.length);
    ps.meta.crc = common::crc32(
        meta_bytes[static_cast<std::size_t>(p)].data(), ps.meta.length);
  }

  std::atomic<std::uint64_t> bytes{0};
  std::atomic<std::uint64_t> chunks{0};
  try {
    File img = File::create(image_tmp);
    std::byte header[16];
    put64(header, kImageMagic);
    put64(header + 8, generation);
    img.pwriteAll(header, sizeof header, 0);

    // All logical writers stream their extents concurrently: writer p
    // writes its part's primary chunks into its own region and the
    // replicas into buddy (p+1) % n's region — disjoint extents, no
    // coordination, no rank-0 fan-out.
    parallelFor(n, [&](int p) {
      pcu::trace::Scope wscope("io:write", p);
      const auto& ps = idx.parts[static_cast<std::size_t>(p)];
      const auto put = [&](const ChunkSlot& s, std::uint32_t type,
                           const std::vector<std::byte>& payload,
                           bool primary) {
        const auto full = chunkBytes(type, static_cast<std::uint32_t>(p),
                                     s.crc, payload);
        img.pwriteAll(full.data(), full.size(), primary ? s.primary
                                                        : s.replica);
        bytes.fetch_add(full.size(), std::memory_order_relaxed);
        chunks.fetch_add(1, std::memory_order_relaxed);
      };
      put(ps.mesh, kChunkMesh, mesh_bytes[static_cast<std::size_t>(p)], true);
      put(ps.meta, kChunkMeta, meta_bytes[static_cast<std::size_t>(p)], true);
      put(ps.mesh, kChunkMesh, mesh_bytes[static_cast<std::size_t>(p)],
          false);
      put(ps.meta, kChunkMeta, meta_bytes[static_cast<std::size_t>(p)],
          false);
    });
    // One durability barrier for the whole image (vs one per part file in
    // the per-part layout), then make it visible under its final name.
    img.sync();
    // Write-then-verify: a torn write is silent (the write path — like a
    // lying disk — reports success), so nothing is committed until every
    // chunk copy reads back intact against the manifest-to-be. One bad
    // copy aborts the whole attempt; the previous checkpoint survives.
    parallelFor(n, [&](int p) {
      const auto& ps = idx.parts[static_cast<std::size_t>(p)];
      const auto up = static_cast<std::uint32_t>(p);
      for (const ChunkSlot* s : {&ps.mesh, &ps.meta}) {
        const std::uint32_t type = s == &ps.mesh ? kChunkMesh : kChunkMeta;
        for (const std::uint64_t off : {s->primary, s->replica}) {
          if (!tryReadChunk(img, off, type, up, *s))
            failIo("checkpoint: " + image_tmp + ": part " +
                   std::to_string(p) +
                   " chunk failed post-write verification (torn write)");
        }
      }
    });
    renameOrFail(image_tmp, image_path);

    // The MANIFEST commits the checkpoint: written last, atomically, so a
    // crash anywhere above leaves the previous checkpoint's manifest (still
    // naming the previous image, which this attempt never touched) or none.
    const auto man = buildManifestBytes(idx);
    {
      File mf = File::create(man_tmp);
      mf.pwriteAll(man.data(), man.size(), 0);
      mf.sync();
      // Same discipline for the commit record itself: a torn MANIFEST
      // renamed into place would destroy the previous checkpoint.
      std::vector<std::byte> echo(man.size());
      if (mf.preadSome(echo.data(), echo.size(), 0) != man.size() ||
          echo != man)
        failIo("checkpoint: " + man_tmp +
               " failed post-write verification (torn write)");
    }
    bytes.fetch_add(man.size(), std::memory_order_relaxed);
    renameOrFail(man_tmp, manifestPath(dir));
  } catch (...) {
    // A failed attempt must strand nothing: remove everything it may have
    // created. The previous checkpoint (older image + MANIFEST) survives.
    std::filesystem::remove(image_tmp, ec);
    std::filesystem::remove(image_path, ec);
    std::filesystem::remove(man_tmp, ec);
    throw;
  }
  // Only after the commit: garbage-collect images the new MANIFEST does
  // not reference.
  sweepStaleImages(dir, image_name);

  pcu::trace::counter("io:bytes",
                      static_cast<std::int64_t>(bytes.load()));
  WriteStats stats;
  stats.bytes = bytes.load();
  stats.chunks = chunks.load();
  stats.generation = generation;
  return stats;
}

/// --- read path -----------------------------------------------------------

std::unique_ptr<PartedMesh> restoreImage(const std::string& dir,
                                         gmi::Model* model, PartMap map,
                                         OnLoss on_loss,
                                         RestoreReport* report) {
  pcu::trace::Scope scope("io:read");
  OpenedImage opened = openForRead(dir);
  const Index& idx = opened.idx;
  const int n = idx.nparts;
  if (map.parts() != n)
    failValidation("restore: part map covers " + std::to_string(map.parts()) +
                   " parts but " + dir + " holds " + std::to_string(n));
  std::vector<int> reader(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p)
    reader[static_cast<std::size_t>(p)] = map.rankOf(p);

  // Partition-on-read: every part's chunks are pulled, validated and
  // repaired by its target rank's reader, concurrently over disjoint
  // extents of the one image.
  std::vector<std::vector<std::byte>> mesh_bytes(static_cast<std::size_t>(n));
  std::vector<std::vector<std::byte>> meta_bytes(static_cast<std::size_t>(n));
  std::vector<char> part_lost(static_cast<std::size_t>(n), 0);
  std::atomic<std::uint64_t> repaired{0};
  std::atomic<std::uint64_t> lost{0};
  std::atomic<std::uint64_t> bytes_read{0};
  File* rw = opened.can_repair ? &opened.img : nullptr;
  parallelFor(n, [&](int p) {
    pcu::trace::Scope rscope("io:read", reader[static_cast<std::size_t>(p)]);
    const auto& ps = idx.parts[static_cast<std::size_t>(p)];
    auto mesh = loadChunk(opened.img, rw, kChunkMesh,
                          static_cast<std::uint32_t>(p), ps.mesh, repaired,
                          lost);
    auto meta = loadChunk(opened.img, rw, kChunkMeta,
                          static_cast<std::uint32_t>(p), ps.meta, repaired,
                          lost);
    if (!mesh || !meta) {
      part_lost[static_cast<std::size_t>(p)] = 1;
      return;
    }
    bytes_read.fetch_add(mesh->size() + meta->size(),
                         std::memory_order_relaxed);
    mesh_bytes[static_cast<std::size_t>(p)] = std::move(*mesh);
    meta_bytes[static_cast<std::size_t>(p)] = std::move(*meta);
  });

  std::vector<PartId> lost_parts;
  for (int p = 0; p < n; ++p)
    if (part_lost[static_cast<std::size_t>(p)] != 0) lost_parts.push_back(p);
  if (repaired.load() > 0)
    pcu::trace::counter("io:chunks_repaired",
                        static_cast<std::int64_t>(repaired.load()));
  if (lost.load() > 0)
    pcu::trace::counter("io:chunks_lost",
                        static_cast<std::int64_t>(lost.load()));
  pcu::trace::counter("io:bytes",
                      static_cast<std::int64_t>(bytes_read.load()));
  if (report != nullptr) {
    report->lost = lost_parts;
    report->chunks_repaired = repaired.load();
    report->chunks_lost = lost.load();
    report->bytes_read = bytes_read.load();
  }
  if (!lost_parts.empty() && on_loss == OnLoss::kFail)
    failValidation("restore: " + dir + " lost part(s) " +
                   joinParts(lost_parts) +
                   " (both copies of a chunk are bad); re-run with "
                   "OnLoss::kPartial to load the survivors");

  auto pm =
      std::make_unique<PartedMesh>(model, n, std::move(map), idx.rule);
  std::vector<partio::EntTable> ents(static_cast<std::size_t>(n));
  parallelFor(n, [&](int p) {
    if (part_lost[static_cast<std::size_t>(p)] != 0) return;
    auto loaded = core::meshFromBytes(
        std::move(mesh_bytes[static_cast<std::size_t>(p)]), model);
    Part& part = pm->part(p);
    part.mesh().copyFrom(*loaded);
    ents[static_cast<std::size_t>(p)] = partio::buildEntTable(part.mesh());
  });

  auto entOf = [&ents, &dir](PartId part, std::uint64_t ref) -> Ent {
    const int d = static_cast<int>(ref >> 48);
    const std::uint64_t k = ref & ((std::uint64_t{1} << 48) - 1);
    const auto& table = ents[static_cast<std::size_t>(part)];
    if (d < 0 || d > 3 || k >= table[static_cast<std::size_t>(d)].size())
      failValidation("restore: " + dir + " references entity (dim " +
                     std::to_string(d) + ", ordinal " + std::to_string(k) +
                     ") absent from part " + std::to_string(part));
    return table[static_cast<std::size_t>(d)][k];
  };

  if (lost_parts.empty()) {
    parallelFor(n, [&](int p) {
      partio::applyMeta(pm->part(p), p,
                        std::move(meta_bytes[static_cast<std::size_t>(p)]),
                        entOf, "restore: " + dir + " part " +
                                   std::to_string(p) + " metadata");
    });
  } else {
    // Partial restore: filter records referencing lost parts and drop all
    // ghosts mesh-wide — a ghost whose source may be gone cannot satisfy
    // the verify() invariants — destroying ghost entities exactly like
    // unghost() does (descending dimension).
    std::vector<bool> lost_mask(static_cast<std::size_t>(n), false);
    for (PartId p : lost_parts) lost_mask[static_cast<std::size_t>(p)] = true;
    parallelFor(n, [&](int p) {
      if (part_lost[static_cast<std::size_t>(p)] != 0) return;
      Part& part = pm->part(p);
      std::vector<Ent> ghosts;
      partio::applyMetaPartial(
          part, p, std::move(meta_bytes[static_cast<std::size_t>(p)]), entOf,
          "restore: " + dir + " part " + std::to_string(p) + " metadata",
          lost_mask, ghosts);
      std::sort(ghosts.begin(), ghosts.end(), [](Ent a, Ent b) {
        if (core::topoDim(a.topo()) != core::topoDim(b.topo()))
          return core::topoDim(a.topo()) > core::topoDim(b.topo());
        return b < a;
      });
      for (Ent e : ghosts) part.mesh().destroy(e);
    });
  }

  CheckpointAccess::setDim(*pm, idx.dim);
  pm->verify();
  if (lost_parts.empty() && pm->fingerprint() != idx.fingerprint)
    throw pcu::Error(pcu::ErrorCode::kCorruptPayload, -1,
                     "restore: " + dir +
                         " rebuilt to a different fingerprint than its "
                         "MANIFEST records");
  return pm;
}

std::unique_ptr<PartedMesh> restoreImage(const std::string& dir,
                                         gmi::Model* model, OnLoss on_loss,
                                         RestoreReport* report) {
  const Index idx = loadIndex(dir);
  return restoreImage(dir, model, PartMap(idx.nparts, pcu::Machine()),
                      on_loss, report);
}

std::unique_ptr<PartedMesh> restoreImage(const std::string& dir,
                                         gmi::Model* model, int target_ranks,
                                         OnLoss on_loss,
                                         RestoreReport* report) {
  if (target_ranks < 1)
    failValidation("restore: target rank count " +
                   std::to_string(target_ranks) + " is not positive");
  const Index idx = loadIndex(dir);
  // Partition-on-read: part p lands on rank p % target_ranks, so any rank
  // count M — smaller after a shrink, larger before an expand — computes
  // the same assignment without communicating.
  std::vector<int> ranks(static_cast<std::size_t>(idx.nparts));
  for (int p = 0; p < idx.nparts; ++p)
    ranks[static_cast<std::size_t>(p)] = p % target_ranks;
  PartMap map(idx.nparts, pcu::Machine::flat(target_ranks));
  map.setPartRanks(std::move(ranks));
  return restoreImage(dir, model, std::move(map), on_loss, report);
}

std::pair<std::vector<std::byte>, std::vector<std::byte>> partBytes(
    const std::string& dir, PartId p) {
  OpenedImage opened = openForRead(dir);
  const Index& idx = opened.idx;
  if (p < 0 || p >= idx.nparts)
    failValidation("checkpointPartBytes: part " + std::to_string(p) +
                   " out of range for " + dir + " (" +
                   std::to_string(idx.nparts) + " parts)");
  File* rw = opened.can_repair ? &opened.img : nullptr;
  std::atomic<std::uint64_t> repaired{0};
  std::atomic<std::uint64_t> lost{0};
  const auto& ps = idx.parts[static_cast<std::size_t>(p)];
  auto mesh = loadChunk(opened.img, rw, kChunkMesh,
                        static_cast<std::uint32_t>(p), ps.mesh, repaired,
                        lost);
  auto meta = loadChunk(opened.img, rw, kChunkMeta,
                        static_cast<std::uint32_t>(p), ps.meta, repaired,
                        lost);
  if (!mesh || !meta)
    throw pcu::Error(pcu::ErrorCode::kCorruptPayload, -1,
                     "checkpointPartBytes: part " + std::to_string(p) +
                         " of " + dir +
                         " does not match its MANIFEST size/CRC in either "
                         "copy");
  if (repaired.load() > 0)
    pcu::trace::counter("io:chunks_repaired",
                        static_cast<std::int64_t>(repaired.load()));
  return {std::move(*mesh), std::move(*meta)};
}

bool valid(const std::string& dir) {
  try {
    const Index idx = loadIndex(dir);
    const std::string path = dir + "/" + idx.image;
    File img = File::openRead(path);
    for (int p = 0; p < idx.nparts; ++p) {
      const auto& ps = idx.parts[static_cast<std::size_t>(p)];
      for (const auto& [slot, type] :
           {std::pair<const ChunkSlot&, std::uint32_t>{ps.mesh, kChunkMesh},
            std::pair<const ChunkSlot&, std::uint32_t>{ps.meta,
                                                       kChunkMeta}}) {
        if (!tryReadChunk(img, slot.primary, type,
                          static_cast<std::uint32_t>(p), slot) &&
            !tryReadChunk(img, slot.replica, type,
                          static_cast<std::uint32_t>(p), slot))
          return false;
      }
    }
    return true;
  } catch (...) {
    return false;
  }
}

/// --- offline scrub -------------------------------------------------------

ScrubReport scrub(const std::string& dir) {
  OpenedImage opened = openForRead(dir);
  const Index& idx = opened.idx;
  ScrubReport report;
  for (int p = 0; p < idx.nparts; ++p) {
    const auto& ps = idx.parts[static_cast<std::size_t>(p)];
    bool part_lost = false;
    for (const auto& [slot, type] :
         {std::pair<const ChunkSlot&, std::uint32_t>{ps.mesh, kChunkMesh},
          std::pair<const ChunkSlot&, std::uint32_t>{ps.meta, kChunkMeta}}) {
      auto primary = tryReadChunk(opened.img, slot.primary, type,
                                  static_cast<std::uint32_t>(p), slot);
      auto replica = tryReadChunk(opened.img, slot.replica, type,
                                  static_cast<std::uint32_t>(p), slot);
      if (primary && replica) {
        ++report.chunks_ok;
        continue;
      }
      if (!primary && !replica) {
        ++report.chunks_lost;
        part_lost = true;
        continue;
      }
      pcu::trace::Scope rscope("io:repair");
      const auto& good = primary ? *primary : *replica;
      const std::uint64_t bad_off = primary ? slot.replica : slot.primary;
      if (opened.can_repair) {
        const auto fixed =
            chunkBytes(type, static_cast<std::uint32_t>(p), slot.crc, good);
        try {
          opened.img.pwriteAll(fixed.data(), fixed.size(), bad_off);
          ++report.chunks_repaired;
        } catch (const pcu::Error&) {
          ++report.chunks_ok;  // copy still bad, but the chunk is readable
        }
      } else {
        ++report.chunks_ok;
      }
    }
    if (part_lost) report.lost_parts.push_back(p);
  }
  if (report.chunks_repaired > 0) {
    opened.img.sync();
    pcu::trace::counter("io:chunks_repaired",
                        static_cast<std::int64_t>(report.chunks_repaired));
  }
  if (report.chunks_lost > 0)
    pcu::trace::counter("io:chunks_lost",
                        static_cast<std::int64_t>(report.chunks_lost));
  return report;
}

}  // namespace dist::pario
