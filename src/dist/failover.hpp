#ifndef PUMI_DIST_FAILOVER_HPP
#define PUMI_DIST_FAILOVER_HPP

/// \file failover.hpp
/// \brief Live part evacuation after a rank failure (recovery tier 4).
///
/// When the failure detector declares a rank dead mid-operation, the
/// transactional layer rolls every surviving part back to the last
/// quiescent point and the transport poisons all traffic to the dead
/// rank's parts (Network::deadRanks). This layer finishes the job without
/// a restart: survivors rebuild the dead rank's parts from replicated
/// state and adopt them.
///
/// BuddyJournal is the replication side: record(pm) at every quiescent
/// point (between distributed operations) serializes each part — mesh
/// stream plus partio metadata stream — and retains the newest copy,
/// attributing the bytes to the part's buddy rank (the next rank
/// cyclically). A CRC-based dedup skips parts unchanged since the last
/// record, so steady-state phases stream only deltas.
///
/// evacuate(pm, journal[, checkpoint_dir]) runs on the survivors after an
/// operation aborts with pcu::ErrorCode::kRankFailed:
///  1. every part pinned to a dead rank is wiped and rebuilt in place from
///     the journal (falling back to `checkpoint_dir` for parts the journal
///     lacks);
///  2. its boundary/ghost records are re-resolved against the rebuilt
///     handles, and the surviving parts' mirror records — whose stored
///     handles died with the old mesh — are patched through copy symmetry;
///  3. the parts are re-pinned to their buddy ranks (lifting the
///     transport's dead-rank gate) and the whole mesh is verify()-ed.
///
/// Correctness contract: the journal (or checkpoint) must hold the same
/// quiescent state the transactional rollback restored — i.e. record (or
/// checkpoint) at each phase boundary, exactly where the rollback lands.
/// Evacuation then reproduces the pre-fault state bit-identically
/// (fingerprint-equal), just hosted on fewer ranks.

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "dist/partedmesh.hpp"

namespace dist {
namespace failover {

/// Newest serialized copy of every part, replicated for its buddy rank.
class BuddyJournal {
 public:
  /// One part's replicated state: the two partio streams plus their CRCs
  /// (used for delta dedup between records).
  struct Snapshot {
    std::vector<std::byte> mesh;
    std::vector<std::byte> meta;
    std::uint32_t mesh_crc = 0;
    std::uint32_t meta_crc = 0;
  };

  /// Serialize every part of `pm` at a quiescent point, keeping the newest
  /// copy. Parts whose streams are byte-identical to the previous record
  /// are skipped (delta dedup) and counted in recordsSkipped().
  void record(const PartedMesh& pm);

  [[nodiscard]] bool hasPart(PartId p) const {
    return parts_.count(p) > 0;
  }
  [[nodiscard]] const Snapshot* find(PartId p) const {
    auto it = parts_.find(p);
    return it == parts_.end() ? nullptr : &it->second;
  }
  /// Total bytes streamed to buddies across all record() calls (dedup'd
  /// parts stream nothing).
  [[nodiscard]] std::uint64_t bytesStreamed() const { return bytes_streamed_; }
  /// Per-part records skipped because the part was unchanged.
  [[nodiscard]] std::uint64_t recordsSkipped() const {
    return records_skipped_;
  }
  [[nodiscard]] std::uint64_t records() const { return records_; }

 private:
  std::unordered_map<PartId, Snapshot> parts_;
  std::uint64_t bytes_streamed_ = 0;
  std::uint64_t records_skipped_ = 0;
  std::uint64_t records_ = 0;
};

/// What one evacuation did, for operators and the parma repair pass.
struct EvacuationReport {
  std::vector<int> ranks_lost;          ///< ranks declared dead
  std::vector<PartId> parts_evacuated;  ///< parts rebuilt onto survivors
  std::size_t entities_adopted = 0;     ///< entities (all dims) re-hosted
  std::uint64_t journal_bytes_replayed = 0;
  double detect_ms = 0;    ///< failure-detector latency for this incident
  double evacuate_ms = 0;  ///< rebuild + re-pin + verify wall time
};

/// Rebuild every part pinned to a dead rank from `journal` (falling back
/// to the checkpoint in `checkpoint_dir` when non-empty), patch the
/// surviving parts' mirror records, re-pin the rebuilt parts to their
/// buddy ranks and verify() the result. Throws kValidation when no rank is
/// dead or a dead part has no replica anywhere; propagates verify()
/// failures. On return the mesh is fully operational on the surviving
/// ranks.
EvacuationReport evacuate(PartedMesh& pm, const BuddyJournal& journal,
                          const std::string& checkpoint_dir = "");

/// The rank adopting dead rank `r`'s parts: the next rank cyclically that
/// is not in `dead`. Throws kValidation when every rank is dead.
int buddyOf(int r, int nranks, const std::vector<int>& dead);

}  // namespace failover
}  // namespace dist

#endif  // PUMI_DIST_FAILOVER_HPP
