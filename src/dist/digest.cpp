#include "dist/digest.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <vector>

namespace dist::digest {

std::uint64_t elementDigest(const core::Mesh& m, core::Ent e) {
  std::vector<std::array<double, 3>> pts;
  for (core::Ent v : m.verts(e)) {
    const auto x = m.point(v);
    pts.push_back({x.x, x.y, x.z});
  }
  std::sort(pts.begin(), pts.end());
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const auto& pt : pts)
    for (double d : pt) {
      std::uint64_t bits = 0;
      std::memcpy(&bits, &d, sizeof bits);
      h = (h ^ bits) * 0x100000001b3ull;
    }
  return h;
}

std::multiset<std::uint64_t> elementDigests(const PartedMesh& pm) {
  std::multiset<std::uint64_t> out;
  for (PartId p = 0; p < pm.parts(); ++p) {
    const core::Mesh& m = pm.part(p).mesh();
    for (core::Ent e : pm.part(p).elements()) out.insert(elementDigest(m, e));
  }
  return out;
}

}  // namespace dist::digest
