#ifndef PUMI_DIST_NUMBERING_HPP
#define PUMI_DIST_NUMBERING_HPP

/// \file numbering.hpp
/// \brief Global numbering of distributed mesh entities.
///
/// Solvers need globally unique, contiguous ids for the entities carrying
/// degrees of freedom. Each part numbers the entities it owns (offset by
/// an exclusive scan of owned counts across parts), then pushes the ids to
/// the remote copies — so a shared entity has the same global id on every
/// part. Ids are stored as a long tag, which also makes them transport
/// with subsequent migrations (they stay valid until the next renumber).

#include <string>

#include "dist/partedmesh.hpp"

namespace dist {

/// Assign 0-based contiguous global ids to all dimension-d entities, owned
/// first by part order. Stores them under a long tag of the given name on
/// every part (creating or overwriting it). Returns the global count.
std::size_t numberEntities(PartedMesh& pm, int d,
                           const std::string& tag_name = "global_id");

/// Read back an entity's global id (throws if not numbered).
long globalId(const PartedMesh& pm, PartId part, Ent e,
              const std::string& tag_name = "global_id");

}  // namespace dist

#endif  // PUMI_DIST_NUMBERING_HPP
