#ifndef PUMI_DIST_PTNMODEL_HPP
#define PUMI_DIST_PTNMODEL_HPP

/// \file ptnmodel.hpp
/// \brief The partition model (paper II-C, Figs. 3-4).
///
/// A partition (model) entity P^d_i represents the group of mesh entities
/// sharing one residence part set; the partition classification maps each
/// mesh entity to its partition entity. The dimension of a partition entity
/// follows the interface geometry: the interior of one part is a partition
/// entity of the mesh dimension; the interface of two parts has dimension
/// mesh_dim - 1; each additional sharing part lowers the dimension by one
/// (floored at zero) — e.g. in Fig. 4 the vertex shared by three parts
/// classifies on partition vertex P^0_1.

#include <map>
#include <unordered_map>
#include <vector>

#include "dist/partedmesh.hpp"

namespace dist {

struct PtnEntity {
  int dim = -1;                   ///< partition entity dimension
  int id = -1;                    ///< index within the model
  std::vector<PartId> residence;  ///< sorted residence part set
  PartId owner = -1;              ///< owning part of the group
};

/// Snapshot of the partition model of a PartedMesh. Rebuild after any
/// migration (the model is derived data).
class PtnModel {
 public:
  /// Group every mesh entity by residence set and derive partition
  /// entities. Ghost entities are skipped.
  explicit PtnModel(const PartedMesh& mesh);

  [[nodiscard]] const std::vector<PtnEntity>& entities() const {
    return entities_;
  }
  [[nodiscard]] std::size_t count(int dim) const;

  /// Partition classification of a mesh entity on a part.
  [[nodiscard]] const PtnEntity& classification(PartId part, Ent e) const;

  /// The partition entity with exactly this residence set, or nullptr.
  [[nodiscard]] const PtnEntity* find(const std::vector<PartId>& residence)
      const;

 private:
  std::vector<PtnEntity> entities_;
  std::map<std::vector<PartId>, int> by_residence_;
  std::vector<std::unordered_map<Ent, int, EntHash>> classification_;
};

}  // namespace dist

#endif  // PUMI_DIST_PTNMODEL_HPP
