#ifndef PUMI_COMMON_RNG_HPP
#define PUMI_COMMON_RNG_HPP

/// \file rng.hpp
/// \brief Deterministic, seedable pseudo-random numbers.
///
/// Every stochastic choice in the library (mesh perturbation, workload
/// synthesis) goes through this generator so that tests and benches are
/// exactly reproducible across runs and platforms.

#include <cstdint>

namespace common {

/// splitmix64: tiny, fast, and excellent statistical quality for the
/// non-cryptographic uses here.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) { return n ? next() % n : 0; }

  /// Uniform integer in [lo, hi] inclusive.
  long range(long lo, long hi) {
    return lo + static_cast<long>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

 private:
  std::uint64_t state_;
};

}  // namespace common

#endif  // PUMI_COMMON_RNG_HPP
